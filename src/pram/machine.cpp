#include "pram/machine.hpp"

namespace copath::pram {

namespace detail {

ArrayBase::ArrayBase(Machine& machine) : machine_(&machine) {
  slot_ = machine_->register_array(this);
}

ArrayBase::ArrayBase(ArrayBase&& other) noexcept
    : machine_(other.machine_), slot_(other.slot_) {
  other.machine_ = nullptr;
  if (machine_ != nullptr) machine_->reregister_array(slot_, this);
}

ArrayBase::~ArrayBase() {
  if (machine_ != nullptr) machine_->unregister_array(slot_);
}

}  // namespace detail

Machine::Machine() : Machine(Config{}) {}

Machine::Machine(Config cfg)
    : policy_(cfg.policy),
      processors_(cfg.processors),
      pool_(cfg.workers == 0 ? 1 : cfg.workers) {}

Machine::~Machine() = default;

std::size_t Machine::register_array(detail::ArrayBase* a) {
  if (!free_slots_.empty()) {
    const std::size_t slot = free_slots_.back();
    free_slots_.pop_back();
    arrays_[slot] = a;
    return slot;
  }
  arrays_.push_back(a);
  return arrays_.size() - 1;
}

void Machine::reregister_array(std::size_t slot, detail::ArrayBase* a) {
  COPATH_DCHECK(slot < arrays_.size());
  arrays_[slot] = a;
}

void Machine::unregister_array(std::size_t slot) {
  COPATH_DCHECK(slot < arrays_.size());
  arrays_[slot] = nullptr;
  free_slots_.push_back(slot);
}

void Machine::add_cells(std::int64_t delta) {
  stats_.cells = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(stats_.cells) + delta);
}

void Machine::report_violation(const std::string& message) {
  bool expected = false;
  if (violated_.compare_exchange_strong(expected, true)) {
    std::lock_guard lock(violation_mu_);
    violation_message_ = message;
  }
}

void Machine::commit_all() {
  for (detail::ArrayBase* a : arrays_) {
    if (a != nullptr) a->commit_pending(policy_);
  }
}

void Machine::throw_pending_violation() {
  if (!violated_.load(std::memory_order_acquire)) return;
  std::string message;
  {
    std::lock_guard lock(violation_mu_);
    message = violation_message_;
  }
  violated_.store(false, std::memory_order_release);
  throw PramViolation(message);
}

}  // namespace copath::pram
