// PRAM memory-access policies and the violation exception.
//
// The paper's results are stated for the EREW PRAM (upper bound) and the
// CREW PRAM (lower bound). The simulator supports the whole family so the
// test suite can demonstrate that the implemented algorithms really respect
// the exclusive-access contract they claim (an EREW violation throws).
#pragma once

#include <stdexcept>
#include <string>

namespace copath::pram {

/// Memory access discipline enforced (or not) by the machine.
enum class Policy {
  /// Exclusive Read Exclusive Write: no memory cell may be accessed by two
  /// distinct processors in the same step, in any read/write combination.
  EREW,
  /// Concurrent Read Exclusive Write: concurrent reads are allowed; a cell
  /// written in a step must not be read or written by any other processor
  /// in that step.
  CREW,
  /// Concurrent Read Concurrent Write, Common rule: concurrent writes are
  /// allowed only if all writers write the same value.
  CRCW_Common,
  /// Concurrent Read Concurrent Write, Arbitrary rule: one of the written
  /// values survives. (This simulator deterministically keeps the write of
  /// the highest-numbered processor so runs are reproducible.)
  CRCW_Arbitrary,
  /// Concurrent Read Concurrent Write, Priority rule: the lowest-numbered
  /// processor wins.
  CRCW_Priority,
  /// No conflict detection (no shadow metadata, maximum speed). Write
  /// buffering — and therefore synchronous step semantics — is preserved.
  Unchecked,
};

[[nodiscard]] constexpr const char* to_string(Policy p) {
  switch (p) {
    case Policy::EREW: return "EREW";
    case Policy::CREW: return "CREW";
    case Policy::CRCW_Common: return "CRCW(common)";
    case Policy::CRCW_Arbitrary: return "CRCW(arbitrary)";
    case Policy::CRCW_Priority: return "CRCW(priority)";
    case Policy::Unchecked: return "unchecked";
  }
  return "?";
}

/// Does the policy allow two processors to read the same cell in one step?
[[nodiscard]] constexpr bool allows_concurrent_read(Policy p) {
  return p != Policy::EREW;
}

/// Does the policy allow two processors to write the same cell in one step?
[[nodiscard]] constexpr bool allows_concurrent_write(Policy p) {
  return p == Policy::CRCW_Common || p == Policy::CRCW_Arbitrary ||
         p == Policy::CRCW_Priority || p == Policy::Unchecked;
}

/// Thrown at the end of a step in which the access discipline was violated.
class PramViolation : public std::runtime_error {
 public:
  explicit PramViolation(const std::string& what)
      : std::runtime_error(what) {}
};

}  // namespace copath::pram
