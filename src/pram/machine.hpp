// The PRAM machine: step-synchronous execution of virtual processors over a
// conflict-checked shared memory.
//
// Model mapping (paper -> simulator):
//   * A PRAM step = one Machine::step() call. Every virtual processor runs
//     the supplied body once; all reads observe the memory state from the
//     beginning of the step because writes are buffered per worker thread
//     and committed at the end-of-step barrier (deferred-write semantics).
//   * Time  = number of steps, Work = sum of active processors per step
//     (see pram/stats.hpp).
//   * The EREW / CREW / CRCW access disciplines are *enforced*: an illegal
//     concurrent access raises PramViolation at the end of the step. This is
//     how the test suite proves the path cover pipeline really is an EREW
//     algorithm, not just a parallel-looking one.
//   * Machine::pfor(n, body) Brent-schedules n data items onto the machine's
//     configured processor count P in ceil(n/P) steps — exactly the
//     "n / log n processors, O(log n) time per sweep" scheduling the paper's
//     primitives use.
//
// Physical execution uses a fork-join thread pool; with W workers each step
// partitions the virtual processors into W contiguous blocks. Deferred
// writes make this race-free regardless of W, so results are identical from
// W = 1 to W = hardware_concurrency.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "pram/policy.hpp"
#include "pram/stats.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace copath::pram {

class Machine;

namespace detail {

/// Type-erased base for shared-memory arrays; the machine keeps a registry
/// of live arrays so it can commit their buffered writes at step end.
class ArrayBase {
 public:
  ArrayBase(const ArrayBase&) = delete;
  ArrayBase& operator=(const ArrayBase&) = delete;

 protected:
  explicit ArrayBase(Machine& machine);
  ArrayBase(ArrayBase&& other) noexcept;
  virtual ~ArrayBase();

  Machine* machine_;
  std::size_t slot_ = 0;

 private:
  friend class copath::pram::Machine;
  /// Applies buffered writes for the finished step. Returns the number of
  /// write records committed.
  virtual std::uint64_t commit_pending(Policy policy) = 0;
};

/// Packed access stamp: high bits = step id, low 25 bits = processor id + 1
/// (0 means "never accessed"). Used by the conflict detector.
inline constexpr int kProcBits = 25;
inline constexpr std::uint64_t kProcMask = (1ull << kProcBits) - 1;

inline constexpr std::uint64_t pack_stamp(std::uint64_t step,
                                          std::uint64_t proc) {
  return (step << kProcBits) | (proc + 1);
}
inline constexpr std::uint64_t stamp_step(std::uint64_t s) {
  return s >> kProcBits;
}
inline constexpr std::uint64_t stamp_proc(std::uint64_t s) {
  return s & kProcMask;  // proc + 1; 0 = none
}

}  // namespace detail

/// Per-processor execution context handed to step bodies. Grants access to
/// shared memory (through Array::get/put) and identifies the processor.
class Ctx {
 public:
  /// Virtual processor id within the current step, 0-based.
  [[nodiscard]] std::uint64_t proc() const { return proc_; }
  /// Physical worker thread executing this processor (for write buffering).
  [[nodiscard]] std::size_t worker() const { return worker_; }

 private:
  friend class Machine;
  template <typename T>
  friend class Array;

  Ctx(Machine& m, std::size_t worker) : machine_(&m), worker_(worker) {}

  Machine* machine_;
  std::size_t worker_;
  std::uint64_t proc_ = 0;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
};

class Machine {
 public:
  struct Config {
    /// Access discipline to enforce.
    Policy policy = Policy::EREW;
    /// Physical worker threads (1 = run virtual processors inline).
    std::size_t workers = 1;
    /// Default virtual processor count used by pfor(); 0 means "one
    /// processor per item" (maximum parallelism, used by unit tests).
    std::size_t processors = 0;
  };

  Machine();  // EREW, 1 worker, maximally parallel pfor
  explicit Machine(Config cfg);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  [[nodiscard]] Policy policy() const { return policy_; }
  [[nodiscard]] bool checked() const { return policy_ != Policy::Unchecked; }
  [[nodiscard]] std::size_t workers() const { return pool_.workers(); }
  [[nodiscard]] std::uint64_t current_step() const { return step_id_; }

  /// Virtual processors used by pfor (the paper sets this to n / log2 n).
  [[nodiscard]] std::size_t processors() const { return processors_; }
  void set_processors(std::size_t p) { processors_ = p; }

  [[nodiscard]] const Stats& stats() const { return stats_; }
  void reset_stats() { stats_ = Stats{}; }

  /// Executes one synchronous PRAM step with `procs` active processors.
  /// `body(ctx, p)` runs once for each processor p in [0, procs). All reads
  /// see pre-step memory; writes commit at the end-of-step barrier. Throws
  /// PramViolation if the access discipline was violated.
  template <typename Body>
  void step(std::size_t procs, Body&& body) {
    if (procs == 0) return;
    COPATH_CHECK_MSG(procs <= detail::kProcMask,
                     "too many processors for one step: " << procs);
    ++step_id_;
    stats_.steps += 1;
    stats_.work += procs;
    if (procs > stats_.max_processors) stats_.max_processors = procs;
    pool_.parallel_blocks(
        0, procs,
        [this, &body](std::size_t worker, std::size_t lo, std::size_t hi) {
          Ctx ctx(*this, worker);
          for (std::size_t p = lo; p < hi; ++p) {
            ctx.proc_ = p;
            body(static_cast<Ctx&>(ctx), p);
          }
          if (ctx.reads_ != 0 || ctx.writes_ != 0) {
            std::lock_guard lock(stats_mu_);
            stats_.reads += ctx.reads_;
            stats_.writes += ctx.writes_;
          }
        });
    commit_all();
    throw_pending_violation();
  }

  /// A Brent-style "blocked" step: each of the `procs` processors runs a
  /// sequential local loop and returns the number of time units it consumed
  /// (e.g. the length of the block it scanned). The phase is charged
  /// max(cost) steps and sum(cost) work — the standard accounting for PRAM
  /// phases of the form "each processor handles a block of log n items".
  ///
  /// Memory semantics are those of one synchronous macro-step: all reads see
  /// pre-phase memory and all writes commit at the end. Bodies must therefore
  /// keep intra-phase sequential state in locals, never in shared cells (the
  /// checker flags a read of a cell the same processor wrote this phase).
  template <typename Body>
  void blocked_step(std::size_t procs, Body&& body) {
    if (procs == 0) return;
    COPATH_CHECK_MSG(procs <= detail::kProcMask,
                     "too many processors for one step: " << procs);
    ++step_id_;
    std::atomic<std::uint64_t> max_cost{0};
    std::atomic<std::uint64_t> total_cost{0};
    pool_.parallel_blocks(
        0, procs,
        [this, &body, &max_cost, &total_cost](
            std::size_t worker, std::size_t lo, std::size_t hi) {
          Ctx ctx(*this, worker);
          std::uint64_t local_max = 0;
          std::uint64_t local_sum = 0;
          for (std::size_t p = lo; p < hi; ++p) {
            ctx.proc_ = p;
            const std::uint64_t cost =
                std::max<std::uint64_t>(1, body(static_cast<Ctx&>(ctx), p));
            local_max = std::max(local_max, cost);
            local_sum += cost;
          }
          std::uint64_t seen = max_cost.load(std::memory_order_relaxed);
          while (seen < local_max && !max_cost.compare_exchange_weak(
                                         seen, local_max,
                                         std::memory_order_relaxed)) {
          }
          total_cost.fetch_add(local_sum, std::memory_order_relaxed);
          if (ctx.reads_ != 0 || ctx.writes_ != 0) {
            std::lock_guard lock(stats_mu_);
            stats_.reads += ctx.reads_;
            stats_.writes += ctx.writes_;
          }
        });
    stats_.steps += max_cost.load(std::memory_order_relaxed);
    stats_.work += total_cost.load(std::memory_order_relaxed);
    if (procs > stats_.max_processors) stats_.max_processors = procs;
    commit_all();
    throw_pending_violation();
  }

  /// Brent-scheduled parallel loop: runs `body(ctx, i)` for every data item
  /// i in [0, items) using processors() virtual processors, taking
  /// ceil(items / processors()) steps. With processors() == 0 the loop runs
  /// as a single maximally parallel step.
  template <typename Body>
  void pfor(std::size_t items, Body&& body) {
    if (items == 0) return;
    const std::size_t p = processors_ == 0 ? items : processors_;
    for (std::size_t off = 0; off < items; off += p) {
      const std::size_t cnt = std::min(p, items - off);
      step(cnt, [off, &body](Ctx& ctx, std::size_t i) {
        body(ctx, off + i);
      });
    }
  }

  /// Number of steps pfor(items) will take — handy for tests asserting the
  /// Brent bound.
  [[nodiscard]] std::size_t pfor_steps(std::size_t items) const {
    if (items == 0) return 0;
    const std::size_t p = processors_ == 0 ? items : processors_;
    return (items + p - 1) / p;
  }

 private:
  template <typename T>
  friend class Array;
  friend class detail::ArrayBase;

  std::size_t register_array(detail::ArrayBase* a);
  void reregister_array(std::size_t slot, detail::ArrayBase* a);
  void unregister_array(std::size_t slot);
  void add_cells(std::int64_t delta);

  /// Records the first access violation of the current step (thread-safe);
  /// the step throws after its commit barrier.
  void report_violation(const std::string& message);
  void commit_all();
  void throw_pending_violation();

  Policy policy_;
  std::size_t processors_;
  util::ThreadPool pool_;
  std::uint64_t step_id_ = 0;
  Stats stats_{};
  std::mutex stats_mu_;

  std::vector<detail::ArrayBase*> arrays_;
  std::vector<std::size_t> free_slots_;

  std::mutex violation_mu_;
  std::atomic<bool> violated_{false};
  std::string violation_message_;
};

}  // namespace copath::pram
