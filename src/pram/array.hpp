// Shared-memory arrays for the PRAM machine.
//
// Array<T> is the only way PRAM step bodies touch memory. Inside a step,
// `get` reads the pre-step value and `put` buffers a write that commits at
// the end-of-step barrier; between steps the host (the sequential driver
// program) may freely inspect or mutate contents through `host*` accessors.
//
// In checked policies every get/put also updates per-cell atomic access
// stamps; two processors touching the same cell in the same step are caught
// by a flag-protocol (stamp-then-inspect with sequentially consistent
// ordering guarantees at least one side observes the other).
#pragma once

#include <atomic>
#include <concepts>
#include <cstdint>
#include <span>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "pram/machine.hpp"

namespace copath::pram {

template <typename T>
class Array : private detail::ArrayBase {
 public:
  using value_type = T;

  /// Allocates `n` cells initialized to `init` on `machine`.
  Array(Machine& machine, std::size_t n, T init = T{})
      : detail::ArrayBase(machine), data_(n, init) {
    init_shadow();
  }

  /// Adopts existing contents.
  Array(Machine& machine, std::vector<T> data)
      : detail::ArrayBase(machine), data_(std::move(data)) {
    init_shadow();
  }

  Array(Array&& other) noexcept = default;
  Array(const Array&) = delete;
  Array& operator=(const Array&) = delete;
  Array& operator=(Array&&) = delete;

  ~Array() override {
    if (machine_ != nullptr)
      machine_->add_cells(-static_cast<std::int64_t>(data_.size()));
  }

  [[nodiscard]] std::size_t size() const { return data_.size(); }

  // --- PRAM access (only valid inside a step body) ---------------------

  /// Reads cell i as processor ctx.proc(); sees the pre-step value.
  [[nodiscard]] T get(Ctx& ctx, std::size_t i) const {
    COPATH_DCHECK(i < data_.size());
    if (checked_) note_read(ctx, i);
    return data_[i];
  }

  /// Writes cell i as processor ctx.proc(); takes effect at step end.
  void put(Ctx& ctx, std::size_t i, T value) {
    COPATH_DCHECK(i < data_.size());
    if (checked_) note_write(ctx, i);
    buffers_[ctx.worker()].push_back(
        WriteRec{i, static_cast<std::uint32_t>(ctx.proc()), std::move(value)});
  }

  // --- Host access (only valid between steps) --------------------------

  [[nodiscard]] const T& host(std::size_t i) const {
    COPATH_DCHECK(i < data_.size());
    return data_[i];
  }
  [[nodiscard]] T& host(std::size_t i) {
    COPATH_DCHECK(i < data_.size());
    return data_[i];
  }
  [[nodiscard]] std::span<const T> host_span() const { return data_; }
  [[nodiscard]] std::span<T> host_span() { return data_; }
  [[nodiscard]] std::vector<T> to_vector() const { return data_; }

 private:
  struct WriteRec {
    std::size_t index;
    std::uint32_t proc;
    T value;
  };

  void init_shadow() {
    checked_ = machine_->checked();
    buffers_.resize(machine_->workers());
    if (checked_ && !data_.empty()) {
      read_stamp_ = std::make_unique<std::atomic<std::uint64_t>[]>(data_.size());
      write_stamp_ =
          std::make_unique<std::atomic<std::uint64_t>[]>(data_.size());
      for (std::size_t i = 0; i < data_.size(); ++i) {
        read_stamp_[i].store(0, std::memory_order_relaxed);
        write_stamp_[i].store(0, std::memory_order_relaxed);
      }
    }
    machine_->add_cells(static_cast<std::int64_t>(data_.size()));
  }

  void note_read(Ctx& ctx, std::size_t i) const {
    ++ctx.reads_;
    const std::uint64_t step = machine_->current_step();
    const std::uint64_t me = detail::pack_stamp(step, ctx.proc());
    const std::uint64_t prev_r = read_stamp_[i].exchange(me);
    const Policy policy = machine_->policy();
    if (detail::stamp_step(prev_r) == step &&
        detail::stamp_proc(prev_r) != ctx.proc() + 1 &&
        !allows_concurrent_read(policy)) {
      violation(ctx, i, "concurrent READ/READ", detail::stamp_proc(prev_r) - 1);
    }
    const std::uint64_t w = write_stamp_[i].load();
    if (detail::stamp_step(w) == step) {
      if (detail::stamp_proc(w) == ctx.proc() + 1) {
        // Deferred-write semantics make this read return the stale pre-step
        // value, which is almost certainly a bug in the step body — flag it.
        violation(ctx, i, "READ after own WRITE in the same step (stale read)",
                  ctx.proc());
      } else if (!allows_concurrent_write(policy)) {
        violation(ctx, i, "READ of cell being WRITTEN",
                  detail::stamp_proc(w) - 1);
      }
    }
  }

  void note_write(Ctx& ctx, std::size_t i) const {
    ++ctx.writes_;
    const std::uint64_t step = machine_->current_step();
    const std::uint64_t me = detail::pack_stamp(step, ctx.proc());
    const std::uint64_t prev_w = write_stamp_[i].exchange(me);
    const Policy policy = machine_->policy();
    if (detail::stamp_step(prev_w) == step &&
        detail::stamp_proc(prev_w) != ctx.proc() + 1 &&
        !allows_concurrent_write(policy)) {
      violation(ctx, i, "concurrent WRITE/WRITE",
                detail::stamp_proc(prev_w) - 1);
    }
    const std::uint64_t r = read_stamp_[i].load();
    if (detail::stamp_step(r) == step &&
        detail::stamp_proc(r) != ctx.proc() + 1 &&
        !allows_concurrent_write(policy)) {
      violation(ctx, i, "WRITE of cell being READ",
                detail::stamp_proc(r) - 1);
    }
  }

  void violation(Ctx& ctx, std::size_t i, const char* kind,
                 std::uint64_t other_proc) const {
    std::ostringstream os;
    os << to_string(machine_->policy()) << " violation: " << kind
       << " at cell " << i << " by processors " << ctx.proc() << " and "
       << other_proc << " in step " << machine_->current_step();
    machine_->report_violation(os.str());
  }

  std::uint64_t commit_pending(Policy policy) override {
    std::uint64_t committed = 0;
    if (policy == Policy::CRCW_Common) {
      commit_common(committed);
      return committed;
    }
    if (policy == Policy::CRCW_Priority) {
      // Lowest processor id wins: apply in descending processor order so the
      // smallest id writes last. Worker blocks hold ascending processor
      // ranges, so reverse iteration suffices.
      for (auto it = buffers_.rbegin(); it != buffers_.rend(); ++it) {
        for (auto rec = it->rbegin(); rec != it->rend(); ++rec) {
          data_[rec->index] = std::move(rec->value);
          ++committed;
        }
        it->clear();
      }
      return committed;
    }
    // EREW / CREW (at most one writer per cell — order irrelevant),
    // CRCW_Arbitrary (deterministically: highest processor id wins),
    // Unchecked.
    for (auto& buf : buffers_) {
      for (auto& rec : buf) {
        data_[rec.index] = std::move(rec.value);
        ++committed;
      }
      buf.clear();
    }
    return committed;
  }

  void commit_common(std::uint64_t& committed) {
    // Common-CRCW: all concurrent writers must agree on the value. The
    // agreement check needs operator==; for non-comparable payload types the
    // commit degrades to Arbitrary semantics.
    if constexpr (std::equality_comparable<T>) {
      std::unordered_map<std::size_t, const T*> seen;
      for (auto& buf : buffers_) {
        for (auto& rec : buf) {
          auto [it, inserted] = seen.emplace(rec.index, &rec.value);
          if (!inserted && !(*it->second == rec.value)) {
            std::ostringstream os;
            os << "CRCW(common) violation: writers disagree at cell "
               << rec.index << " in step " << machine_->current_step();
            machine_->report_violation(os.str());
          }
          data_[rec.index] = rec.value;
          ++committed;
        }
        buf.clear();
      }
    } else {
      for (auto& buf : buffers_) {
        for (auto& rec : buf) {
          data_[rec.index] = std::move(rec.value);
          ++committed;
        }
        buf.clear();
      }
    }
  }

  std::vector<T> data_;
  bool checked_ = false;
  std::unique_ptr<std::atomic<std::uint64_t>[]> read_stamp_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> write_stamp_;
  std::vector<std::vector<WriteRec>> buffers_;  // one per worker thread
};

}  // namespace copath::pram
