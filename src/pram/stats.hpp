// Cost accounting for the PRAM simulator.
//
// The paper's complexity claims are about exactly two quantities:
//   time  T(n) = number of synchronous steps, and
//   work  W(n) = sum over steps of the number of active processors.
// An algorithm is work-optimal when W(n) = O(T*(n)) for the best sequential
// time T*(n), and time-optimal when no polynomial-processor algorithm in the
// model can beat its step count (Theorem 2.2 gives the Ω(log n) floor here).
#pragma once

#include <cstdint>
#include <ostream>

namespace copath::pram {

struct Stats {
  /// Synchronous steps executed (PRAM "time").
  std::uint64_t steps = 0;
  /// Sum of active processors over all steps (PRAM "work").
  std::uint64_t work = 0;
  /// Largest processor count used in any single step.
  std::uint64_t max_processors = 0;
  /// Shared-memory reads / buffered writes observed (checked modes only;
  /// stays 0 under Policy::Unchecked).
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  /// Shared-memory cells currently allocated on the machine.
  std::uint64_t cells = 0;

  Stats& operator+=(const Stats& o) {
    steps += o.steps;
    work += o.work;
    if (o.max_processors > max_processors) max_processors = o.max_processors;
    reads += o.reads;
    writes += o.writes;
    return *this;
  }

  friend std::ostream& operator<<(std::ostream& os, const Stats& s) {
    return os << "steps=" << s.steps << " work=" << s.work
              << " max_procs=" << s.max_processors << " reads=" << s.reads
              << " writes=" << s.writes;
  }
};

}  // namespace copath::pram
