#include "baseline/greedy.hpp"

#include <algorithm>
#include <deque>
#include <set>

namespace copath::baseline {

core::PathCover min_path_cover_greedy(const cograph::Graph& g) {
  using cograph::VertexId;
  const std::size_t n = g.vertex_count();
  core::PathCover out;
  std::vector<std::int64_t> deg(n, 0);
  std::vector<std::uint8_t> covered(n, 0);
  // Ordered set of (uncovered degree, vertex) for min-degree retrieval.
  std::set<std::pair<std::int64_t, VertexId>> pool;
  for (std::size_t v = 0; v < n; ++v) {
    deg[v] = static_cast<std::int64_t>(
        g.neighbors(static_cast<VertexId>(v)).size());
    pool.emplace(deg[v], static_cast<VertexId>(v));
  }
  const auto cover = [&](VertexId v) {
    pool.erase({deg[static_cast<std::size_t>(v)], v});
    covered[static_cast<std::size_t>(v)] = 1;
    for (const VertexId u : g.neighbors(v)) {
      if (covered[static_cast<std::size_t>(u)]) continue;
      pool.erase({deg[static_cast<std::size_t>(u)], u});
      --deg[static_cast<std::size_t>(u)];
      pool.emplace(deg[static_cast<std::size_t>(u)], u);
    }
  };
  const auto best_uncovered_neighbor = [&](VertexId v) -> VertexId {
    VertexId best = cograph::kNull;
    std::int64_t best_deg = 0;
    for (const VertexId u : g.neighbors(v)) {
      if (covered[static_cast<std::size_t>(u)]) continue;
      if (best == cograph::kNull || deg[static_cast<std::size_t>(u)] < best_deg) {
        best = u;
        best_deg = deg[static_cast<std::size_t>(u)];
      }
    }
    return best;
  };
  while (!pool.empty()) {
    const VertexId start = pool.begin()->second;
    std::deque<VertexId> path{start};
    cover(start);
    // Extend forward then backward.
    for (const bool forward : {true, false}) {
      while (true) {
        const VertexId end = forward ? path.back() : path.front();
        const VertexId nxt = best_uncovered_neighbor(end);
        if (nxt == cograph::kNull) break;
        if (forward) {
          path.push_back(nxt);
        } else {
          path.push_front(nxt);
        }
        cover(nxt);
      }
    }
    out.paths.emplace_back(path.begin(), path.end());
  }
  return out;
}

}  // namespace copath::baseline
