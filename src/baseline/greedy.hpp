// Greedy path cover heuristic on explicit graphs — a non-optimal
// comparator used by examples/benches to show how far from the minimum a
// natural heuristic lands (it has no optimality guarantee even on
// cographs).
#pragma once

#include "cograph/graph.hpp"
#include "core/path_cover.hpp"

namespace copath::baseline {

/// Repeatedly starts a path at an uncovered vertex of minimum uncovered
/// degree and extends both ends greedily (always to the uncovered
/// neighbour of minimum uncovered degree). O((n + m) log n).
core::PathCover min_path_cover_greedy(const cograph::Graph& g);

}  // namespace copath::baseline
