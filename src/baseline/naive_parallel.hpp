// The naive parallelization strawman of the paper's §2/§4: process the
// leftist binarized cotree level-synchronously, one processor per node,
// each node performing the sequential bridge/insert merge of Lemma 2.3.
//
// Time is Σ_levels max(merge cost at the level) — Θ(height) on deep
// cotrees, versus the main pipeline's O(log n). This is the baseline the
// paper dismisses with "in the worst case, the height of Tbl(G) is O(n)";
// bench E5 reproduces that separation quantitatively.
#pragma once

#include "cograph/cotree.hpp"
#include "core/path_cover.hpp"
#include "pram/machine.hpp"

namespace copath::baseline {

/// Minimum path cover by level-synchronous bottom-up merging on the PRAM
/// machine (work ~ O(n), time ~ O(height + ...)).
core::PathCover min_path_cover_naive_parallel(pram::Machine& m,
                                              const cograph::Cotree& t);

}  // namespace copath::baseline
