// Exact exponential oracles for small instances (test cross-checks).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cograph/graph.hpp"
#include "core/path_cover.hpp"

namespace copath::baseline {

/// Minimum number of vertex-disjoint paths covering all vertices of an
/// arbitrary graph, by Held-Karp style bitmask DP over (covered set, last
/// endpoint). O(2^n * n^2); intended for n <= 16.
std::int64_t min_path_cover_size_exact(const cograph::Graph& g);

/// An actual minimum path cover (same DP, with parent pointers).
core::PathCover min_path_cover_exact(const cograph::Graph& g);

/// Exact Hamiltonian cycle test (bitmask DP). O(2^n * n^2), n <= 16.
bool has_hamiltonian_cycle_exact(const cograph::Graph& g);

}  // namespace copath::baseline
