#include "baseline/naive_parallel.hpp"

#include <algorithm>

#include "cograph/binarize.hpp"
#include "core/count.hpp"
#include "pram/array.hpp"

namespace copath::baseline {

namespace {
using pram::Array;
using pram::Ctx;
using i32 = std::int32_t;
using i64 = std::int64_t;
}  // namespace

core::PathCover min_path_cover_naive_parallel(pram::Machine& m,
                                              const cograph::Cotree& t) {
  const std::size_t n = t.vertex_count();
  COPATH_CHECK(n > 0);
  auto bc = cograph::binarize(t);
  const auto leaf_count = cograph::make_leftist(bc);
  const std::size_t bn = bc.size();

  // Host scheduling metadata: nodes bucketed by depth.
  std::vector<i32> depth(bn, 0);
  std::size_t max_depth = 0;
  {
    std::vector<i32> stack{bc.tree.root};
    while (!stack.empty()) {
      const auto v = static_cast<std::size_t>(stack.back());
      stack.pop_back();
      for (const i32 c : {bc.tree.left[v], bc.tree.right[v]}) {
        if (c == -1) continue;
        depth[static_cast<std::size_t>(c)] = depth[v] + 1;
        max_depth = std::max(
            max_depth, static_cast<std::size_t>(depth[v]) + 1);
        stack.push_back(c);
      }
    }
  }
  std::vector<std::vector<i32>> level(max_depth + 1);
  for (std::size_t v = 0; v < bn; ++v)
    level[static_cast<std::size_t>(depth[v])].push_back(
        static_cast<i32>(v));

  // Shared state: vertex links + per-node path list (paths identified by
  // their head vertex).
  Array<i32> nxt(m, n, -1);        // successor within a path
  Array<i32> next_path(m, n, -1);  // head -> head of the next path
  Array<i32> tail_of(m, n, -1);    // head -> tail of that path
  Array<i32> first_head(m, bn, -1);
  Array<i32> last_head(m, bn, -1);
  Array<i64> count(m, bn, 0);
  std::vector<i32> kinds(bn, 0);  // 0 leaf, 1 union, 2 join
  for (std::size_t v = 0; v < bn; ++v) {
    if (bc.tree.left[v] != -1) kinds[v] = bc.is_join[v] ? 2 : 1;
  }
  Array<i32> kind_arr(m, std::move(kinds));
  Array<i32> lc_arr(m, bc.tree.left);
  Array<i32> rc_arr(m, bc.tree.right);
  Array<i32> vert_arr(m, bc.vertex);
  Array<i64> lw_arr(m, leaf_count);

  // Leaves initialize their singleton covers in one parallel step.
  m.pfor(bn, [&](Ctx& c, std::size_t v) {
    if (kind_arr.get(c, v) != 0) return;
    const i32 x = vert_arr.get(c, v);
    first_head.put(c, v, x);
    last_head.put(c, v, x);
    count.put(c, v, 1);
    tail_of.put(c, static_cast<std::size_t>(x), x);
  });

  // Level-synchronous merges, bottom-up.
  for (std::size_t d = max_depth + 1; d-- > 0;) {
    const auto& nodes = level[d];
    if (nodes.empty()) continue;
    m.blocked_step(nodes.size(), [&](Ctx& c, std::size_t j) -> std::uint64_t {
      const auto v = static_cast<std::size_t>(nodes[j]);
      const i32 kind = kind_arr.get(c, v);
      if (kind == 0) return 1;  // leaf, already done
      const auto l = static_cast<std::size_t>(lc_arr.get(c, v));
      const auto r = static_cast<std::size_t>(rc_arr.get(c, v));
      if (kind == 1) {  // union: concatenate path lists
        const i32 lf = first_head.get(c, l);
        const i32 ll = last_head.get(c, l);
        const i32 rf = first_head.get(c, r);
        const i32 rl = last_head.get(c, r);
        next_path.put(c, static_cast<std::size_t>(ll), rf);
        first_head.put(c, v, lf);
        last_head.put(c, v, rl);
        count.put(c, v, count.get(c, l) + count.get(c, r));
        return 1;
      }
      // Join: gather the w vertices (right side) into local memory, then
      // bridge / insert sequentially; all shared reads see pre-step state.
      const i64 lw = lw_arr.get(c, r);
      const i64 pv = count.get(c, l);
      std::vector<i32> w;
      w.reserve(static_cast<std::size_t>(lw));
      for (i32 h = first_head.get(c, r); h != -1;
           h = next_path.get(c, static_cast<std::size_t>(h))) {
        for (i32 x = h; x != -1; x = nxt.get(c, static_cast<std::size_t>(x)))
          w.push_back(x);
      }
      std::uint64_t cost = 1 + w.size();
      if (pv > lw) {
        // Case 1: bridge lw+1 paths into one.
        i32 h = first_head.get(c, l);
        const i32 new_head = h;
        i32 tail = tail_of.get(c, static_cast<std::size_t>(h));
        for (i64 k2 = 0; k2 < lw; ++k2) {
          const i32 s = w[static_cast<std::size_t>(k2)];
          h = next_path.get(c, static_cast<std::size_t>(h));
          nxt.put(c, static_cast<std::size_t>(tail), s);
          nxt.put(c, static_cast<std::size_t>(s), h);
          tail = tail_of.get(c, static_cast<std::size_t>(h));
          ++cost;
        }
        // The merged path replaces the first lw+1 paths; the rest of the
        // chain (pre-step state) hangs off new_head.
        const i32 rest = next_path.get(c, static_cast<std::size_t>(h));
        tail_of.put(c, static_cast<std::size_t>(new_head), tail);
        next_path.put(c, static_cast<std::size_t>(new_head), rest);
        first_head.put(c, v, new_head);
        last_head.put(c, v, rest == -1 ? new_head : last_head.get(c, l));
        count.put(c, v, pv - lw);
        return cost;
      }
      // Case 2: single Hamiltonian path of G(v)∪G(w). Collect segment
      // boundaries locally, then emit all the link writes.
      std::vector<std::pair<i32, i32>> seg;  // (head, tail)
      for (i32 h = first_head.get(c, l); h != -1;
           h = next_path.get(c, static_cast<std::size_t>(h))) {
        seg.emplace_back(h, tail_of.get(c, static_cast<std::size_t>(h)));
        ++cost;
      }
      std::size_t wi = 0;
      for (std::size_t s2 = 0; s2 + 1 < seg.size(); ++s2) {
        const i32 b = w[wi++];
        nxt.put(c, static_cast<std::size_t>(seg[s2].second), b);
        nxt.put(c, static_cast<std::size_t>(b), seg[s2 + 1].first);
      }
      i32 head = seg.front().first;
      i32 tail = seg.back().second;
      // Start slot.
      if (wi < w.size()) {
        const i32 tv = w[wi++];
        nxt.put(c, static_cast<std::size_t>(tv), head);
        head = tv;
      }
      // Interior slots (between same-segment vertices); reads are pre-step,
      // so chasing nxt within old segments is safe.
      for (std::size_t s2 = 0; s2 < seg.size() && wi < w.size(); ++s2) {
        i32 x = seg[s2].first;
        while (x != seg[s2].second && wi < w.size()) {
          const i32 y = nxt.get(c, static_cast<std::size_t>(x));
          const i32 tv = w[wi++];
          nxt.put(c, static_cast<std::size_t>(x), tv);
          nxt.put(c, static_cast<std::size_t>(tv), y);
          x = y;
          ++cost;
        }
      }
      // End slot.
      if (wi < w.size()) {
        const i32 tv = w[wi++];
        nxt.put(c, static_cast<std::size_t>(tail), tv);
        nxt.put(c, static_cast<std::size_t>(tv), -1);
        tail = tv;
      }
      first_head.put(c, v, head);
      last_head.put(c, v, head);
      next_path.put(c, static_cast<std::size_t>(head), -1);
      tail_of.put(c, static_cast<std::size_t>(head), tail);
      count.put(c, v, 1);
      return cost;
    });
  }

  // Host extraction.
  core::PathCover out;
  const auto root = static_cast<std::size_t>(bc.tree.root);
  for (i32 h = first_head.host(root); h != -1;
       h = next_path.host(static_cast<std::size_t>(h))) {
    out.paths.emplace_back();
    for (i32 x = h; x != -1; x = nxt.host(static_cast<std::size_t>(x)))
      out.paths.back().push_back(x);
  }
  return out;
}

}  // namespace copath::baseline
