#include "baseline/brute_force.hpp"

#include <algorithm>

namespace copath::baseline {

namespace {

constexpr std::int32_t kInf = 1 << 29;

struct Dp {
  std::vector<std::int32_t> cost;     // [mask * n + last]
  std::vector<std::int32_t> from;     // predecessor encoding
  std::size_t n = 0;

  explicit Dp(const cograph::Graph& g) {
    n = g.vertex_count();
    COPATH_CHECK_MSG(n <= 20, "brute force limited to 20 vertices");
    const std::size_t full = std::size_t{1} << n;
    cost.assign(full * n, kInf);
    from.assign(full * n, -1);
    for (std::size_t v = 0; v < n; ++v) {
      cost[(std::size_t{1} << v) * n + v] = 1;  // one open path {v}
    }
    for (std::size_t mask = 1; mask < full; ++mask) {
      for (std::size_t v = 0; v < n; ++v) {
        const std::int32_t c = cost[mask * n + v];
        if (c >= kInf || (mask >> v & 1) == 0) continue;
        for (std::size_t u = 0; u < n; ++u) {
          if (mask >> u & 1) continue;
          const std::size_t nm = mask | (std::size_t{1} << u);
          // Either extend the open path along an edge, or start a new one.
          const bool adj = g.has_edge(static_cast<cograph::VertexId>(v),
                                      static_cast<cograph::VertexId>(u));
          const std::int32_t ext = adj ? c : kInf;
          const std::int32_t fresh = c + 1;
          const std::int32_t best = std::min(ext, fresh);
          if (best < cost[nm * n + u]) {
            cost[nm * n + u] = best;
            from[nm * n + u] =
                static_cast<std::int32_t>((v << 1) | (adj && ext <= fresh
                                                          ? 0
                                                          : 1));
          }
        }
      }
    }
  }
};

}  // namespace

std::int64_t min_path_cover_size_exact(const cograph::Graph& g) {
  const std::size_t n = g.vertex_count();
  if (n == 0) return 0;
  const Dp dp(g);
  const std::size_t full = (std::size_t{1} << n) - 1;
  std::int32_t best = kInf;
  for (std::size_t v = 0; v < n; ++v)
    best = std::min(best, dp.cost[full * n + v]);
  return best;
}

core::PathCover min_path_cover_exact(const cograph::Graph& g) {
  core::PathCover out;
  const std::size_t n = g.vertex_count();
  if (n == 0) return out;
  const Dp dp(g);
  const std::size_t full = (std::size_t{1} << n) - 1;
  std::size_t best_v = 0;
  for (std::size_t v = 1; v < n; ++v) {
    if (dp.cost[full * n + v] < dp.cost[full * n + best_v]) best_v = v;
  }
  // Reconstruct backwards: each step tells us the previous endpoint and
  // whether a new path was started at the current vertex.
  std::vector<std::vector<core::VertexId>> rev_paths;
  rev_paths.emplace_back();
  std::size_t mask = full;
  std::size_t v = best_v;
  while (true) {
    rev_paths.back().push_back(static_cast<core::VertexId>(v));
    const std::int32_t f = dp.from[mask * n + v];
    mask &= ~(std::size_t{1} << v);
    if (f < 0) break;  // the very first vertex placed
    const auto pv = static_cast<std::size_t>(f >> 1);
    if ((f & 1) != 0) rev_paths.emplace_back();  // v started a new path
    v = pv;
  }
  for (auto& p : rev_paths) {
    std::reverse(p.begin(), p.end());
    out.paths.push_back(std::move(p));
  }
  std::reverse(out.paths.begin(), out.paths.end());
  return out;
}

bool has_hamiltonian_cycle_exact(const cograph::Graph& g) {
  const std::size_t n = g.vertex_count();
  if (n < 3) return false;
  const std::size_t full = std::size_t{1} << n;
  // Paths starting at vertex 0.
  std::vector<std::uint8_t> reach(full * n, 0);
  reach[(std::size_t{1}) * n + 0] = 1;
  for (std::size_t mask = 1; mask < full; ++mask) {
    if ((mask & 1) == 0) continue;
    for (std::size_t v = 0; v < n; ++v) {
      if (!reach[mask * n + v]) continue;
      for (const auto u : g.neighbors(static_cast<cograph::VertexId>(v))) {
        const auto uu = static_cast<std::size_t>(u);
        if (mask >> uu & 1) continue;
        reach[(mask | std::size_t{1} << uu) * n + uu] = 1;
      }
    }
  }
  for (std::size_t v = 1; v < n; ++v) {
    if (reach[(full - 1) * n + v] &&
        g.has_edge(static_cast<cograph::VertexId>(v), 0))
      return true;
  }
  return false;
}

}  // namespace copath::baseline
