// Small integer helpers shared by the parallel primitives and executors.
//
// These used to be copy-pasted per header (par/scan.hpp, par/brackets.hpp);
// they live here so every layer agrees on the same rounding conventions.
#pragma once

#include <cstddef>
#include <cstdint>

namespace copath::util {

/// Order-sensitive 64-bit hash combiner (splitmix-style finalization).
/// Shared by the cotree canonicalizer and the result cache so the cache's
/// extended keys stay in the same hash family as the canonical hashes they
/// refine.
[[nodiscard]] inline constexpr std::uint64_t hash_mix(std::uint64_t h,
                                                      std::uint64_t v) {
  std::uint64_t x = h ^ (v + 0x9e3779b97f4a7c15ull + (h << 12) + (h >> 4));
  x *= 0xbf58476d1ce4e5b9ull;
  return x ^ (x >> 29);
}

/// ceil(a / b) for b > 0.
[[nodiscard]] inline constexpr std::size_t ceil_div(std::size_t a,
                                                    std::size_t b) {
  return (a + b - 1) / b;
}

/// Smallest power of two >= v (next_pow2(0) == 1).
[[nodiscard]] inline constexpr std::size_t next_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

/// floor(log2(max(2, n))) with a floor of 1 — the "log n" of the paper's
/// n / log n processor budget.
[[nodiscard]] inline constexpr std::size_t floor_log2(std::size_t n) {
  std::size_t l = 0;
  while ((std::size_t{1} << (l + 1)) <= (n < 2 ? 2 : n)) ++l;
  return l == 0 ? 1 : l;
}

}  // namespace copath::util
