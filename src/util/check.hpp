// Lightweight runtime-check macros used across copath.
//
// COPATH_CHECK is always on (library invariants and user-input validation);
// COPATH_DCHECK compiles away in NDEBUG builds (hot-loop assertions inside
// the PRAM primitives).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace copath::util {

/// Thrown when a COPATH_CHECK fails; carries the failing expression and
/// location so test failures and user errors are actionable.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "COPATH_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace copath::util

#define COPATH_CHECK(expr)                                              \
  do {                                                                  \
    if (!(expr)) [[unlikely]]                                           \
      ::copath::util::check_failed(#expr, __FILE__, __LINE__, "");      \
  } while (false)

#define COPATH_CHECK_MSG(expr, msg)                                     \
  do {                                                                  \
    if (!(expr)) [[unlikely]] {                                         \
      std::ostringstream copath_check_os;                               \
      copath_check_os << msg;                                           \
      ::copath::util::check_failed(#expr, __FILE__, __LINE__,           \
                                   copath_check_os.str());              \
    }                                                                   \
  } while (false)

#ifdef NDEBUG
#define COPATH_DCHECK(expr) \
  do {                      \
  } while (false)
#else
#define COPATH_DCHECK(expr) COPATH_CHECK(expr)
#endif
