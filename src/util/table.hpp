// Plain-text table rendering for the benchmark harness.
//
// The paper is a theory paper with no numeric tables, so the benches print
// their own "paper-style" tables (n, PRAM steps, steps/log2 n, work, work/n,
// ...) — this helper keeps them aligned and greppable.
#pragma once

#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

namespace copath::util {

/// Column-aligned ASCII table. Usage:
///   Table t({"n", "steps", "steps/log2(n)"});
///   t.row({Table::I(1024), Table::I(57), Table::F(5.7)});
///   t.print(std::cout);
class Table {
 public:
  using Cell = std::variant<std::string, long long, double>;

  static Cell S(std::string s) { return Cell(std::move(s)); }
  static Cell I(long long v) { return Cell(v); }
  static Cell F(double v) { return Cell(v); }

  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void row(std::vector<Cell> cells) { rows_.push_back(std::move(cells)); }

  void print(std::ostream& os) const {
    std::vector<std::vector<std::string>> rendered;
    rendered.reserve(rows_.size());
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
      width[c] = headers_[c].size();
    for (const auto& r : rows_) {
      std::vector<std::string> out;
      out.reserve(r.size());
      for (std::size_t c = 0; c < r.size(); ++c) {
        std::string s = render(r[c]);
        if (c < width.size() && s.size() > width[c]) width[c] = s.size();
        out.push_back(std::move(s));
      }
      rendered.push_back(std::move(out));
    }
    print_row(os, headers_, width);
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      os << std::string(width[c] + 2, '-');
      if (c + 1 < headers_.size()) os << '+';
    }
    os << '\n';
    for (const auto& r : rendered) print_row(os, r, width);
  }

 private:
  static std::string render(const Cell& cell) {
    if (std::holds_alternative<std::string>(cell))
      return std::get<std::string>(cell);
    if (std::holds_alternative<long long>(cell))
      return std::to_string(std::get<long long>(cell));
    std::ostringstream os;
    os << std::fixed << std::setprecision(3) << std::get<double>(cell);
    return os.str();
  }

  static void print_row(std::ostream& os, const std::vector<std::string>& r,
                        const std::vector<std::size_t>& width) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << ' ' << std::setw(static_cast<int>(width[c])) << r[c] << ' ';
      if (c + 1 < r.size()) os << '|';
    }
    os << '\n';
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace copath::util
