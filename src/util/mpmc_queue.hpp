// Bounded multi-producer/multi-consumer queue with blocking backpressure.
//
// The admission-control primitive behind copath::Service: producers calling
// push() on a full queue block until a consumer drains an element, so a
// traffic burst turns into bounded memory plus caller-side latency instead
// of unbounded queue growth. close() wakes everyone: producers fail fast,
// consumers drain the remaining elements and then see "no more".
//
// Mutex + two condition variables — deliberately boring. The queue hands
// work to solver threads whose jobs run for microseconds to milliseconds,
// so lock-free ring tricks would buy nothing measurable here.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "util/check.hpp"

namespace copath::util {

template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(std::size_t capacity) : capacity_(capacity) {
    COPATH_CHECK_MSG(capacity > 0, "MpmcQueue capacity must be positive");
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  /// Blocks while the queue is full. Returns false iff the queue was (or
  /// became) closed; the item is then left intact in `item` so the caller
  /// can still dispose of it (e.g. fail its promise).
  bool push(T& item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push. Returns false (item untouched via move-back) when
  /// full or closed.
  bool try_push(T& item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while the queue is empty and open. Returns nullopt only when
  /// the queue is closed *and* drained — elements enqueued before close()
  /// are always delivered.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::optional<T> item;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (items_.empty()) return std::nullopt;
      item = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return item;
  }

  /// Rejects future pushes and wakes every blocked producer/consumer.
  /// Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace copath::util
