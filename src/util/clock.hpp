// Monotonic time base for the serving tier.
//
// Deadlines, idle sweeps, and retry backoff all measure elapsed time, so
// they use the steady clock exclusively — wall time can step backwards
// under NTP and would turn a 50 ms deadline into an hour or a negative
// wait. One helper, one unit (milliseconds), shared by service/ and net/.
#pragma once

#include <chrono>
#include <cstdint>

namespace copath::util {

/// Milliseconds since the steady clock's (arbitrary) epoch. Only
/// differences are meaningful; never persist or compare across processes.
[[nodiscard]] inline std::uint64_t steady_now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace copath::util
