// Wall-clock timing helper for benches and examples.
#pragma once

#include <chrono>

namespace copath::util {

/// Monotonic wall-clock stopwatch. Started on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const { return seconds() * 1e3; }
  [[nodiscard]] double nanos() const { return seconds() * 1e9; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace copath::util
