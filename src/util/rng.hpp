// Deterministic, seedable random number generation.
//
// copath uses its own small PRNG (xoshiro256**) instead of std::mt19937 so
// that random cotree generation is reproducible across standard libraries
// and fast enough to build 10^7-leaf instances inside benchmarks.
#pragma once

#include <cstdint>
#include <limits>

#include "util/check.hpp"

namespace copath::util {

/// SplitMix64 — used to seed xoshiro from a single 64-bit value.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// xoshiro256** by Blackman & Vigna: fast, high-quality, 2^256-1 period.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0xc09a7d5eedull) {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be positive.
  std::uint64_t below(std::uint64_t bound) {
    COPATH_DCHECK(bound > 0);
    // Lemire's nearly-divisionless method with rejection for exactness.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    COPATH_DCHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace copath::util
