// util::FaultInjector — deterministic, compiled-in fault injection.
//
// Resilience claims ("an injected pwrite failure degrades to a skipped
// append, never a crash") are only testable if the failure can actually be
// made to happen, on demand, repeatably. This is the switchboard: the
// production code calls COPATH_FAULT_POINT("persist.pwrite") at each site
// where an external effect can fail, and a chaos test arms that point with
// a seeded probability (or an exact hit plan) before driving traffic. The
// same seed produces the same injection sequence on every run — a chaos
// failure reproduces like any other deterministic test failure.
//
// Cost when disarmed (always, in production): one relaxed atomic load per
// fault point — no lock, no map lookup, no allocation. Arming is a test
// affair; the injector is process-global because the interesting sites
// live deep inside the persist cache and the server loop, far from any
// handle a test could thread a dependency through.
//
// Determinism model: each point owns an independent xoshiro stream seeded
// from (global seed, point name), so arming a second point never perturbs
// the first point's decision sequence, and the decision for hit #k of a
// point depends only on the seed and k — not on thread interleaving
// (evaluations are serialized per point under the injector mutex; fault
// points sit next to syscalls, so the mutex is noise).
//
// The registered fault points (each name appears exactly once in the
// production sources; chaos_test sweeps this list):
//   persist.pwrite    PersistCache pwrite loops (append + compact)
//   persist.mmap      PersistCache log mapping
//   persist.checksum  PersistCache record checksum verification
//   server.write      net::Server socket sends (peer-reset simulation)
//   service.admit     Service queue admission (overload simulation)
//   solve.stall       Service worker solve path (stuck-solve simulation:
//                     the worker spins without heartbeating until its
//                     cancel token trips — watchdog/deadline drills)
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace copath::util {

/// Every compiled-in fault point, for test sweeps. Keep in sync with the
/// COPATH_FAULT_POINT sites (the chaos suite arms each of these and
/// asserts structured degradation).
inline constexpr std::string_view kFaultPoints[] = {
    "persist.pwrite", "persist.mmap", "persist.checksum",
    "server.write",   "service.admit", "solve.stall",
};

class FaultInjector {
 public:
  static FaultInjector& instance();

  /// Arms `point` to fail each hit independently with `probability`,
  /// decided by a PRNG seeded from (seed, point) — deterministic per
  /// (seed, hit index). Re-arming resets the point's stream and counters.
  void arm(std::string_view point, double probability,
           std::uint64_t seed = 1);

  /// Arms `point` to fail exactly hits [skip, skip + count) (0-based) —
  /// "fail the third pwrite" — and succeed everywhere else.
  void arm_nth(std::string_view point, std::uint64_t skip,
               std::uint64_t count = 1);

  void disarm(std::string_view point);
  void disarm_all();

  /// The hot-path check, called through COPATH_FAULT_POINT. Returns true
  /// when this hit should fail. Always false for unarmed points; the
  /// armed() fast path keeps the disarmed cost to one relaxed load.
  [[nodiscard]] bool should_fail(std::string_view point);

  /// True if any point is armed (relaxed; the production fast path).
  [[nodiscard]] bool armed() const {
    return any_armed_.load(std::memory_order_relaxed);
  }

  struct PointStats {
    std::uint64_t evaluations = 0;  // hits observed while armed
    std::uint64_t injected = 0;     // hits that failed
  };
  [[nodiscard]] PointStats stats(std::string_view point) const;

 private:
  FaultInjector() = default;

  struct Point {
    enum class Mode { Probability, Nth } mode = Mode::Probability;
    double probability = 0.0;
    std::uint64_t rng_state = 0;  // splitmix64 stream, advanced per hit
    std::uint64_t skip = 0;
    std::uint64_t count = 0;
    PointStats st{};
  };

  mutable std::mutex mu_;
  std::atomic<bool> any_armed_{false};
  std::unordered_map<std::string, Point> points_;
};

/// The production-side hook: true when the named fault should fire now.
/// Reads one relaxed atomic when nothing is armed.
[[nodiscard]] inline bool fault_point(std::string_view point) {
  FaultInjector& fi = FaultInjector::instance();
  return fi.armed() && fi.should_fail(point);
}

}  // namespace copath::util
