// A small fork-join thread pool used as the physical backend of the PRAM
// simulator.
//
// The pool is deliberately minimal: the only operation is parallel_for over
// an index range, executed with static chunking so that a PRAM "step" maps
// each worker to a contiguous block of virtual processors. Work stealing is
// unnecessary because PRAM steps are uniform by construction.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/check.hpp"

namespace copath::util {

class ThreadPool {
 public:
  /// Creates a pool with `workers` threads. `workers == 1` degenerates to
  /// inline execution on the calling thread (no threads spawned), which is
  /// also the default on single-core hosts.
  explicit ThreadPool(std::size_t workers = default_workers());

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  [[nodiscard]] std::size_t workers() const { return worker_count_; }

  /// Runs fn(i) for every i in [begin, end), partitioned into one contiguous
  /// block per worker. Blocks until every invocation has finished.
  ///
  /// fn must not throw; exceptions escaping a worker terminate the process
  /// (this mirrors the PRAM model, where a processor fault is fatal).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// Runs fn(worker_id, begin, end) once per worker with that worker's block.
  /// Used when the caller wants per-block (rather than per-index) dispatch.
  void parallel_blocks(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

  static std::size_t default_workers() {
    const unsigned hc = std::thread::hardware_concurrency();
    return hc == 0 ? 1 : hc;
  }

 private:
  void worker_loop(std::size_t id);

  using BlockFn = std::function<void(std::size_t, std::size_t, std::size_t)>;

  std::size_t worker_count_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  const BlockFn* job_ = nullptr;  // non-null while a job is being dispatched
  std::size_t job_begin_ = 0;
  std::size_t job_end_ = 0;
  std::size_t epoch_ = 0;      // incremented per job; wakes workers
  std::size_t remaining_ = 0;  // workers still running the current job
  bool stopping_ = false;
};

}  // namespace copath::util
