#include "util/fault.hpp"

namespace copath::util {
namespace {

// splitmix64: the per-point decision stream. One step per hit keeps the
// k-th decision a pure function of (seed, point, k).
std::uint64_t splitmix64_next(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// FNV-1a over the point name, mixed with the global seed, so "arm a second
// point" never shifts an armed point's stream.
std::uint64_t point_seed(std::string_view point, std::uint64_t seed) {
  std::uint64_t h = 0xcbf29ce484222325ull ^ seed;
  for (const char c : point) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::arm(std::string_view point, double probability,
                        std::uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  Point& p = points_[std::string(point)];
  p = Point{};
  p.mode = Point::Mode::Probability;
  p.probability = probability;
  p.rng_state = point_seed(point, seed);
  any_armed_.store(true, std::memory_order_relaxed);
}

void FaultInjector::arm_nth(std::string_view point, std::uint64_t skip,
                            std::uint64_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  Point& p = points_[std::string(point)];
  p = Point{};
  p.mode = Point::Mode::Nth;
  p.skip = skip;
  p.count = count;
  any_armed_.store(true, std::memory_order_relaxed);
}

void FaultInjector::disarm(std::string_view point) {
  std::lock_guard<std::mutex> lock(mu_);
  points_.erase(std::string(point));
  any_armed_.store(!points_.empty(), std::memory_order_relaxed);
}

void FaultInjector::disarm_all() {
  std::lock_guard<std::mutex> lock(mu_);
  points_.clear();
  any_armed_.store(false, std::memory_order_relaxed);
}

bool FaultInjector::should_fail(std::string_view point) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = points_.find(std::string(point));
  if (it == points_.end()) return false;
  Point& p = it->second;
  const std::uint64_t hit = p.st.evaluations++;
  bool fail = false;
  if (p.mode == Point::Mode::Nth) {
    fail = hit >= p.skip && hit < p.skip + p.count;
  } else {
    // Top 53 bits -> uniform double in [0, 1).
    const double u =
        static_cast<double>(splitmix64_next(p.rng_state) >> 11) *
        (1.0 / 9007199254740992.0);
    fail = u < p.probability;
  }
  if (fail) ++p.st.injected;
  return fail;
}

FaultInjector::PointStats FaultInjector::stats(
    std::string_view point) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = points_.find(std::string(point));
  return it == points_.end() ? PointStats{} : it->second.st;
}

}  // namespace copath::util
