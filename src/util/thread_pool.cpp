#include "util/thread_pool.hpp"

namespace copath::util {

ThreadPool::ThreadPool(std::size_t workers)
    : worker_count_(workers == 0 ? 1 : workers) {
  if (worker_count_ == 1) return;  // inline mode
  threads_.reserve(worker_count_);
  for (std::size_t id = 0; id < worker_count_; ++id) {
    threads_.emplace_back([this, id] { worker_loop(id); });
  }
}

ThreadPool::~ThreadPool() {
  if (threads_.empty()) return;
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  parallel_blocks(begin, end,
                  [&fn](std::size_t /*worker*/, std::size_t lo, std::size_t hi) {
                    for (std::size_t i = lo; i < hi; ++i) fn(i);
                  });
}

void ThreadPool::parallel_blocks(std::size_t begin, std::size_t end,
                                 const BlockFn& fn) {
  if (begin >= end) return;
  if (threads_.empty()) {  // inline mode
    fn(0, begin, end);
    return;
  }
  {
    std::lock_guard lock(mu_);
    job_ = &fn;
    job_begin_ = begin;
    job_end_ = end;
    remaining_ = worker_count_;
    ++epoch_;
  }
  work_ready_.notify_all();
  std::unique_lock lock(mu_);
  work_done_.wait(lock, [this] { return remaining_ == 0; });
  job_ = nullptr;
}

void ThreadPool::worker_loop(std::size_t id) {
  std::size_t seen_epoch = 0;
  for (;;) {
    const BlockFn* job = nullptr;
    std::size_t begin = 0;
    std::size_t end = 0;
    {
      std::unique_lock lock(mu_);
      work_ready_.wait(lock,
                       [&] { return stopping_ || epoch_ != seen_epoch; });
      if (stopping_) return;
      seen_epoch = epoch_;
      job = job_;
      begin = job_begin_;
      end = job_end_;
    }
    // Static partition: worker `id` owns one contiguous block.
    const std::size_t n = end - begin;
    const std::size_t chunk = (n + worker_count_ - 1) / worker_count_;
    const std::size_t lo = begin + id * chunk;
    const std::size_t hi = lo + chunk < end ? lo + chunk : end;
    if (lo < hi) (*job)(id, lo, hi);
    {
      std::lock_guard lock(mu_);
      if (--remaining_ == 0) work_done_.notify_all();
    }
  }
}

}  // namespace copath::util
