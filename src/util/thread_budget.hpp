// util::ThreadBudgeter — claims-based division of a fixed thread pool
// among concurrently running requests.
//
// The old batch rule budget = floor(pool / requests) stranded threads
// whenever the request count did not divide the pool (pool = 8, requests
// = 3 → budgets 2/2/2 with 2 threads idle) and never rebalanced: the last
// straggler of a 100-request batch kept its budget of 1 while every other
// core sat idle. The budgeter fixes both with two atomics:
//
//  * available_ — threads not currently claimed. A starting request takes
//    ceil(available / peers) where peers is how many requests could still
//    be running beside it, so the remainder lands on the earliest
//    starters instead of nobody (8/3 → 3, then ceil(5/2) = 3, then 2).
//  * Claims are returned on completion, so a request that starts late —
//    the straggler tail — sees the freed threads and claims them.
//
// Every claim is at least 1 (a request can always run on its own caller
// thread), and claims never push the *sum of grants* above the pool except
// by that guaranteed minimum, so nested pools cannot oversubscribe the
// host beyond one thread per in-flight request. Determinism of results is
// unaffected: thread budgets change wall time, never values (the engines
// are worker-count invariant; the solver suites prove it).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace copath::util {

class ThreadBudgeter {
 public:
  /// A grant of `threads` out of the pool; return it with release().
  struct Lease {
    std::size_t threads = 1;
  };

  explicit ThreadBudgeter(std::size_t pool)
      : pool_(pool == 0 ? 1 : pool),
        available_(static_cast<std::int64_t>(pool == 0 ? 1 : pool)) {}

  ThreadBudgeter(const ThreadBudgeter&) = delete;
  ThreadBudgeter& operator=(const ThreadBudgeter&) = delete;

  [[nodiscard]] std::size_t pool() const { return pool_; }

  /// Claims threads for one starting request. `peers` is the number of
  /// requests that have NOT yet claimed a budget, including this one
  /// (batch callers count down an "unclaimed" atomic; serving callers
  /// count workers racing for a claim right now). Counting *unfinished*
  /// or *busy* requests instead would double-discount: completed or
  /// already-leased peers have their threads accounted in `available_`
  /// (returned or subtracted), so dividing by them re-strands the
  /// remainder this class exists to distribute.
  [[nodiscard]] Lease acquire(std::size_t peers) {
    const auto p = static_cast<std::int64_t>(peers == 0 ? 1 : peers);
    std::int64_t avail = available_.load(std::memory_order_relaxed);
    std::int64_t take;
    do {
      take = avail <= 0 ? 1 : (avail + p - 1) / p;  // ceil; floor of 1
    } while (!available_.compare_exchange_weak(avail, avail - take,
                                               std::memory_order_relaxed));
    acquires_.fetch_add(1, std::memory_order_relaxed);
    return Lease{static_cast<std::size_t>(take)};
  }

  /// Total leases ever handed out — the observability hook the Service
  /// express-lane tests use to prove inline solves claim no lease.
  [[nodiscard]] std::uint64_t acquires() const {
    return acquires_.load(std::memory_order_relaxed);
  }

  /// Returns a lease's threads to the pool (rebalancing: later acquires
  /// see them).
  void release(Lease lease) {
    available_.fetch_add(static_cast<std::int64_t>(lease.threads),
                         std::memory_order_relaxed);
  }

 private:
  std::size_t pool_;
  /// May dip below zero transiently: the floor-of-1 grant models "every
  /// request may at least use its own caller thread".
  std::atomic<std::int64_t> available_;
  std::atomic<std::uint64_t> acquires_{0};
};

}  // namespace copath::util
