// Cooperative cancellation: a token the serving layer arms and the solver
// layer polls.
//
// Threads are never killed. A CancelToken is a tiny shared state — an
// atomic trip flag with a reason, an optional absolute deadline, and a
// heartbeat timestamp — that the Service (or a test) hands to a solve via
// SolveOptions::cancel. The exec layer polls it at pipeline stage
// boundaries and inside Native's blocked pfor chunks:
//
//  * pool-thread chunks call poll() and bail out of their chunk early when
//    the token trips (they must not throw — see util::ThreadPool's
//    contract), leaving partially-written scratch behind;
//  * the coordinator thread calls checkpoint() after every parallel phase,
//    which throws CancelledError *before* any dependent stage can read
//    that partial scratch. The throw unwinds through the normal
//    Solver::solve error path into a structured failed SolveResult whose
//    .error is exactly kCancelledMsg or kDeadlineMsg (the service/wire
//    layers map those strings to Status codes).
//
// poll() doubles as the progress heartbeat: every call stamps
// last_beat_ms, which the Service watchdog reads to distinguish a slow
// solve (beating) from a stuck one (silent past --watchdog-ms).
//
// Cost when disarmed: cancelled() is one relaxed load; the pipeline's
// checkpoint hook is a nullptr test when no token is attached.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/check.hpp"
#include "util/clock.hpp"

namespace copath::util {

/// Canonical error strings for the two trip reasons. service::kErrCancelled
/// and service::kErrDeadlineExceeded alias these — the wire layer matches
/// result.error against them to pick a Status code, so the literals are a
/// cross-layer contract.
inline constexpr const char* kCancelledMsg = "cancelled";
inline constexpr const char* kDeadlineMsg = "deadline exceeded";

/// Thrown by CancelToken::checkpoint() on the coordinator thread when the
/// token has tripped. Derives CheckError so it rides the existing
/// catch(std::exception) -> SolveResult.error path in Solver::solve; its
/// what() is exactly the canonical reason string.
class CancelledError : public CheckError {
 public:
  explicit CancelledError(const char* msg) : CheckError(msg) {}
};

class CancelToken {
 public:
  enum class Reason : std::uint8_t {
    kNone = 0,
    kCancelled = 1,  // explicit cancel (wire Cancel verb, disconnect, watchdog)
    kDeadline = 2,   // absolute deadline passed
  };

  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Trips the token. The first trip wins: a later cancel() with a
  /// different reason does not overwrite the recorded one.
  void cancel(Reason reason = Reason::kCancelled) noexcept {
    std::uint8_t expected = 0;
    state_.compare_exchange_strong(expected,
                                   static_cast<std::uint8_t>(reason),
                                   std::memory_order_relaxed,
                                   std::memory_order_relaxed);
  }

  /// Arms (or re-arms) the absolute deadline, in util::steady_now_ms()
  /// time. 0 disarms. poll() self-trips with Reason::kDeadline once the
  /// clock passes it.
  void set_deadline(std::uint64_t at_ms) noexcept {
    deadline_at_ms_.store(at_ms, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t deadline_at_ms() const noexcept {
    return deadline_at_ms_.load(std::memory_order_relaxed);
  }

  /// One relaxed load; safe and meaningful from any thread.
  [[nodiscard]] bool cancelled() const noexcept {
    return state_.load(std::memory_order_relaxed) != 0;
  }

  [[nodiscard]] Reason reason() const noexcept {
    return static_cast<Reason>(state_.load(std::memory_order_relaxed));
  }

  /// Timestamp (steady ms) of the most recent poll(); 0 before the first.
  /// The Service watchdog compares this against --watchdog-ms.
  [[nodiscard]] std::uint64_t last_beat_ms() const noexcept {
    return last_beat_ms_.load(std::memory_order_relaxed);
  }

  /// Heartbeat + deadline check + trip test, in one call. Stamps progress,
  /// self-trips with Reason::kDeadline when the armed deadline has passed,
  /// and returns whether the token is (now) tripped. Never throws — this
  /// is the form pool-thread chunks use to decide "bail out of my chunk".
  bool poll() noexcept {
    const std::uint64_t now = steady_now_ms();
    last_beat_ms_.store(now, std::memory_order_relaxed);
    if (state_.load(std::memory_order_relaxed) != 0) return true;
    const std::uint64_t deadline = deadline_at_ms_.load(std::memory_order_relaxed);
    if (deadline != 0 && now >= deadline) {
      cancel(Reason::kDeadline);
      return true;
    }
    return false;
  }

  /// poll(), then throw CancelledError if tripped. Coordinator-thread
  /// only: pool workers must use poll() (util::ThreadPool terminates the
  /// process on an escaping exception).
  void checkpoint() {
    if (poll()) [[unlikely]]
      throw CancelledError(message(reason()));
  }

  /// The canonical error string for a trip reason.
  [[nodiscard]] static const char* message(Reason reason) noexcept {
    return reason == Reason::kDeadline ? kDeadlineMsg : kCancelledMsg;
  }

 private:
  std::atomic<std::uint8_t> state_{0};
  std::atomic<std::uint64_t> deadline_at_ms_{0};
  std::atomic<std::uint64_t> last_beat_ms_{0};
};

}  // namespace copath::util
