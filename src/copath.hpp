// copath — time- and work-optimal minimum path cover on cographs.
//
// Reproduction of K. Nakano, S. Olariu, A. Y. Zomaya, "A Time-Optimal
// Solution for the Path Cover Problem on Cographs" (IPPS 1999 / TCS 290
// (2003) 1541-1556). See README.md for the quickstart and DESIGN.md for the
// system inventory.
//
// Public surface:
//   copath::Solver / Instance / SolveRequest /          THE entry point: one
//     SolveOptions / SolveResult / CountResult          request/response API
//                                                       over every backend,
//                                                       with batch solving
//   copath::Service, service::ResultCache               concurrent serving:
//                                                       async submit() with
//                                                       a canonical memo
//                                                       cache (binary
//                                                       signature keys),
//                                                       duplicate
//                                                       coalescing, a
//                                                       small-instance
//                                                       express lane, and
//                                                       bounded
//                                                       backpressure
//   cograph::canonical_form / CanonicalForm             cotree identity
//                                                       modulo commutativity
//                                                       and relabeling
//   copath::Backend, core::BackendRegistry              engine selection and
//                                                       plug-in registration
//   cograph::Cotree / CotreeBuilder / parse-format      the input language
//   cograph::Graph, recognize_cograph                   graph-side substrate
//   exec::CheckedPram / exec::Native / exec::Traits     execution substrates
//                                                       (checked simulator
//                                                       vs direct memory)
//   pram::Machine / Policy / Stats                      the PRAM simulator
//
// Compatibility layer (free functions predating the Solver facade; they
// delegate to the same engines and remain supported):
//   core::min_path_cover_sequential                     Lemma 2.3, O(n)
//   core::min_path_cover_parallel / _pram               Theorem 5.3, EREW
//                                                       O(log n) / O(n) work
//   core::path_cover_size, path_counts_pram             Lemma 2.4
//   core::has_hamiltonian_path / _cycle, constructors   the §1 corollary
//   core::validate_path_cover                           independent checker
#pragma once

#include "cograph/binarize.hpp"
#include "cograph/canonical.hpp"
#include "cograph/cotree.hpp"
#include "cograph/families.hpp"
#include "cograph/graph.hpp"
#include "cograph/recognition.hpp"
#include "copath_solver.hpp"
#include "core/adaptive.hpp"
#include "core/backend.hpp"
#include "core/brackets.hpp"
#include "core/count.hpp"
#include "core/forest.hpp"
#include "core/hamiltonian.hpp"
#include "core/or_reduction.hpp"
#include "core/path_cover.hpp"
#include "core/pipeline.hpp"
#include "core/reference.hpp"
#include "core/sequential.hpp"
#include "exec/checked_pram.hpp"
#include "exec/native.hpp"
#include "pram/array.hpp"
#include "pram/machine.hpp"
#include "service/express.hpp"
#include "service/result_cache.hpp"
#include "service/service.hpp"
#include "util/mpmc_queue.hpp"

namespace copath {

// Convenience aliases so applications can stay inside `copath::`.
// (Solver, Instance, SolveRequest, SolveOptions, SolveResult, CountResult,
// and Backend already live in `copath::` via copath_solver.hpp.)
using cograph::canonical_form;
using cograph::CanonicalForm;
using cograph::Cotree;
using cograph::CotreeBuilder;
using cograph::Graph;
using cograph::NodeKind;
using cograph::recognize_cograph;
using cograph::VertexId;

using core::BackendRegistry;

using core::has_hamiltonian_cycle;
using core::has_hamiltonian_path;
using core::hamiltonian_cycle;
using core::hamiltonian_path;
using core::min_path_cover_parallel;
using core::min_path_cover_pram;
using core::min_path_cover_sequential;
using core::PathCover;
using core::path_cover_size;
using core::validate_path_cover;

}  // namespace copath
