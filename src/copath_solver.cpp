#include "copath_solver.hpp"

#include <atomic>
#include <sstream>
#include <utility>

#include "cograph/binarize.hpp"
#include "core/adaptive.hpp"
#include "core/count.hpp"
#include "core/hamiltonian.hpp"
#include "exec/arena.hpp"
#include "service/batch.hpp"
#include "service/express.hpp"
#include "util/check.hpp"
#include "util/thread_budget.hpp"
#include "util/timer.hpp"

namespace copath {

// ---------------------------------------------------------------- Instance

Instance Instance::cotree(cograph::Cotree t) {
  Instance i;
  i.source_ = std::move(t);
  i.canon_ = std::make_shared<CanonCache>();
  return i;
}

Instance Instance::text(std::string algebra) {
  Instance i;
  i.source_ = std::move(algebra);
  i.cache_ = std::make_shared<ResolveCache>();
  i.canon_ = std::make_shared<CanonCache>();
  return i;
}

Instance Instance::graph(cograph::Graph g) {
  Instance i;
  i.source_ = std::move(g);
  i.cache_ = std::make_shared<ResolveCache>();
  i.canon_ = std::make_shared<CanonCache>();
  return i;
}

Instance Instance::signature(std::string signature_bytes) {
  Instance i;
  i.source_ = SignatureBytes{std::move(signature_bytes)};
  i.cache_ = std::make_shared<ResolveCache>();
  i.canon_ = std::make_shared<CanonCache>();
  return i;
}

Instance Instance::view(const cograph::Cotree& t) {
  Instance i;
  i.source_ = &t;
  i.canon_ = std::make_shared<CanonCache>();
  return i;
}

const cograph::Cotree& Instance::resolve() const {
  if (const auto* borrowed = std::get_if<const cograph::Cotree*>(&source_)) {
    return **borrowed;
  }
  if (const auto* owned = std::get_if<cograph::Cotree>(&source_)) {
    return *owned;
  }
  COPATH_CHECK_MSG(cache_ != nullptr, "empty Instance passed to Solver");
  // call_once makes the first resolution of a shared Instance race-free; a
  // throwing resolution leaves the flag unset, so the error repeats on
  // every attempt instead of poisoning later calls.
  std::call_once(cache_->once, [this] {
    if (const auto* algebra = std::get_if<std::string>(&source_)) {
      cache_->tree = cograph::Cotree::parse(*algebra);
      return;
    }
    if (const auto* sig = std::get_if<SignatureBytes>(&source_)) {
      cache_->tree = cograph::decode_signature(sig->bytes).tree;
      return;
    }
    const auto& g = std::get<cograph::Graph>(source_);
    auto rec = cograph::recognize_cograph(g);
    if (!rec.is_cograph()) {
      std::ostringstream os;
      os << "input graph is not a cograph; induced P4 witness:";
      for (const auto v : rec.p4_witness) os << ' ' << v;
      COPATH_CHECK_MSG(false, os.str());
    }
    cache_->tree = std::move(*rec.cotree);
  });
  return *cache_->tree;
}

const cograph::CanonicalForm& Instance::canonical() const {
  COPATH_CHECK_MSG(canon_ != nullptr, "empty Instance has no canonical form");
  // Same discipline as resolve(): a throwing canonicalization (really: a
  // throwing resolve) leaves the flag unset so the error repeats.
  // The hot serving path: the cache keys on the binary signature, so the
  // human-facing algebra key is skipped (CanonicalForm::key stays empty).
  std::call_once(canon_->once, [this] {
    // A signature-sourced instance gets its canonical form straight from
    // the bytes (identity permutations, hash folded during the validating
    // walk) WITHOUT materializing the cotree: the daemon's warm path
    // replays cache hits through the form alone, so the tree build is
    // deferred to resolve() — i.e. to the miss path that actually solves.
    if (const auto* sig = std::get_if<SignatureBytes>(&source_)) {
      canon_->form = cograph::decode_signature_form(sig->bytes);
      return;
    }
    canon_->form =
        cograph::canonical_form(resolve(), /*with_algebra_key=*/false);
  });
  return *canon_->form;
}

// ------------------------------------------------------------------ Solver

SolveResult Solver::solve_with(const Instance& inst,
                               const std::string& label,
                               const SolveOptions& opts) const {
  SolveResult res;
  res.label = label;
  res.backend = opts.backend;
  try {
    const cograph::Cotree& t = inst.resolve();
    const auto entry = core::BackendRegistry::instance().find(opts.backend);
    COPATH_CHECK_MSG(entry != nullptr,
                     "backend not registered: "
                         << core::to_string(opts.backend));

    core::BackendConfig cfg;
    cfg.workers = opts.workers;
    cfg.processors = opts.processors;
    cfg.policy = opts.policy;
    cfg.pipeline = opts.pipeline;
    cfg.collect_trace = opts.collect_trace;
    cfg.cost_model = opts.cost_model;
    cfg.cancel = opts.cancel;

    util::WallTimer timer;
    core::BackendOutput out = entry->fn(t, cfg);
    res.wall_ms = timer.millis();

    res.routed = out.routed.value_or(opts.backend);
    res.vertex_count = t.vertex_count();
    res.cover = std::move(out.cover);
    res.stats = out.stats;
    res.stats_valid = out.used_pram;
    res.trace = std::move(out.trace);
    res.trace_valid = out.traced;

    if (opts.compute_verdicts) {
      res.optimal_size = core::path_cover_size(t);
      res.minimum =
          static_cast<std::int64_t>(res.cover.size()) == res.optimal_size;
      res.hamiltonian_path = res.optimal_size == 1;
      res.hamiltonian_cycle = core::has_hamiltonian_cycle(t);
      if (opts.want_hamiltonian_cycle && res.hamiltonian_cycle) {
        res.cycle = core::hamiltonian_cycle(t);
      }
    } else {
      res.optimal_size = -1;
      if (opts.want_hamiltonian_cycle) {
        res.cycle = core::hamiltonian_cycle(t);
        res.hamiltonian_cycle = res.cycle.has_value();
      }
    }
    if (opts.validate) {
      res.validation = core::validate_path_cover(
          t, res.cover, /*require_minimum=*/entry->exact);
    }
    res.ok = true;
  } catch (const std::exception& e) {
    res = SolveResult{};
    res.label = label;
    res.backend = opts.backend;
    res.routed = opts.backend;
    res.error = e.what();
  }
  return res;
}

SolveResult Solver::solve(const SolveRequest& req) const {
  return solve_with(req.instance, req.label,
                    req.options.value_or(defaults_));
}

std::vector<SolveResult> Solver::solve_batch(
    std::span<const SolveRequest> reqs) {
  std::vector<SolveResult> results(reqs.size());
  if (reqs.empty()) return results;
  if (pool_ == nullptr) {
    const std::size_t workers = defaults_.batch_workers == 0
                                    ? util::ThreadPool::default_workers()
                                    : defaults_.batch_workers;
    pool_ = std::make_unique<util::ThreadPool>(workers);
  }
  // Prepare pass: resolve every instance on the pool so parsing stays
  // parallel (resolve() memoizes inside the Instance; failures re-throw
  // identically on the solve paths below, which own the structured
  // failure shape).
  pool_->parallel_for(0, reqs.size(), [&](std::size_t i) {
    try {
      (void)reqs[i].instance.resolve();
    } catch (...) {
      // Swallowed here; the routing loop below re-observes it.
    }
  });

  // Route: express-eligible instances (below the Adaptive floor, or
  // explicitly Sequential) go through the fused dedup+pack core on the
  // calling thread — per-request fan-out overhead beats the actual solve
  // down there, so one packed sweep wins over pool dispatch. Everything
  // else (big instances, PRAM/native backends, unresolvable instances)
  // keeps the budgeted pool path.
  std::vector<std::size_t> small, big;
  small.reserve(reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const SolveOptions opts = reqs[i].options.value_or(defaults_);
    bool resolved = false;
    std::size_t n = 0;
    try {
      n = reqs[i].instance.resolve().vertex_count();
      resolved = true;
    } catch (...) {
    }
    if (resolved && service::express_eligible(n, opts)) {
      small.push_back(i);
    } else {
      big.push_back(i);
    }
  }

  if (!small.empty()) {
    // IdenticalTree dedup only (no cache): exactly-identical resolved
    // trees share one sweep and identity-copied results — bitwise-equal
    // to solving each directly. Permuted twins are NOT grouped here; their
    // direct solves may produce different, equally-minimum covers
    // (service/batch.hpp).
    std::vector<SolveRequest> sreqs;
    sreqs.reserve(small.size());
    for (const std::size_t i : small) sreqs.push_back(reqs[i]);
    service::BatchConfig cfg;
    cfg.dedup = service::BatchDedup::IdenticalTree;
    cfg.cache = nullptr;
    const service::BatchFallback fb =
        [this](const SolveRequest& r, const SolveOptions& o) {
          return solve_with(r.instance, r.label, o);
        };
    auto sres = service::solve_batch_fused(sreqs, defaults_, cfg, fb,
                                           exec::Arena::for_this_thread());
    for (std::size_t k = 0; k < small.size(); ++k) {
      results[small[k]] = std::move(sres[k]);
    }
  }
  if (big.empty()) return results;

  // Nested-parallelism guard: with R requests sharing W pool workers, the
  // native-capable requests divide the W threads through a budgeter —
  // ceil-distributed so remainders go to the earliest starters, and
  // rebalanced as requests complete so a straggler tail inherits the
  // freed cores. Full batches run sequential-per-request (budget 1);
  // small batches of big instances use every spare core.
  const std::size_t pool_workers = pool_->workers();
  util::ThreadBudgeter budgeter(pool_workers);
  // Requests that have not yet claimed a budget: the divisor for each
  // claim. Counting *unfinished* requests here would shrink every grant
  // (finished requests already returned their claim through release) and
  // re-strand the remainder the budgeter exists to distribute.
  std::atomic<std::size_t> unclaimed{big.size()};
  pool_->parallel_for(0, big.size(), [&](std::size_t bi) {
    const std::size_t i = big[bi];
    SolveOptions opts = reqs[i].options.value_or(defaults_);
    if (core::may_use_native_threads(opts.backend)) {
      const std::size_t peers = std::min(
          unclaimed.fetch_sub(1, std::memory_order_relaxed), pool_workers);
      const auto lease = budgeter.acquire(peers);
      opts.workers = opts.workers == 0
                         ? lease.threads
                         : std::min(opts.workers, lease.threads);
      results[i] = solve_with(reqs[i].instance, reqs[i].label, opts);
      budgeter.release(lease);
    } else {
      // One instance per pool worker: the per-instance machine runs inline.
      opts.workers = 1;
      unclaimed.fetch_sub(1, std::memory_order_relaxed);
      results[i] = solve_with(reqs[i].instance, reqs[i].label, opts);
    }
  });
  return results;
}

CountResult Solver::count(const SolveRequest& req) const {
  const SolveOptions opts = req.options.value_or(defaults_);
  CountResult res;
  try {
    const cograph::Cotree& t = req.instance.resolve();
    res.vertex_count = t.vertex_count();

    // Counting always runs the built-in Lemma 2.4 engines; the backend
    // selects the PRAM contraction vs the host sweep (and must at least be
    // registered, so misconfigurations fail here exactly as in solve()).
    COPATH_CHECK_MSG(
        core::BackendRegistry::instance().find(opts.backend) != nullptr,
        "backend not registered: " << core::to_string(opts.backend));

    auto bc = cograph::binarize(t);
    const auto leaf_count = cograph::make_leftist(bc);
    const auto root = static_cast<std::size_t>(bc.tree.root);

    util::WallTimer timer;
    if (core::uses_pram_machine(opts.backend)) {
      core::BackendConfig cfg;
      cfg.workers = opts.workers;
      cfg.processors = opts.processors;
      cfg.policy = opts.policy;
      cfg = core::apply_backend_contract(opts.backend, cfg);
      // The binarized tree has ~2n nodes; the paper budget follows it.
      pram::Machine m(core::machine_config(2 * t.vertex_count(), cfg));
      const auto p = core::path_counts_pram(m, bc, leaf_count);
      res.path_cover_size = p[root];
      res.stats = m.stats();
      res.stats_valid = true;
    } else if (core::uses_native_executor(opts.backend)) {
      core::BackendConfig cfg;
      cfg.workers = opts.workers;
      cfg.processors = opts.processors;
      exec::Native ex(core::native_config(cfg));
      const auto p = core::path_counts_exec(ex, bc, leaf_count);
      res.path_cover_size = p[root];
      // Native stats count phases, not simulated cost: stats_valid stays
      // false, but the counters are handed back for inspection.
      res.stats = ex.stats();
    } else {
      // Host post-order sweep — also Backend::Adaptive's counting route:
      // the O(n) sweep beats the contraction machinery at every size a
      // count-only request realistically has, so counting does not
      // consult the cost model.
      const auto p = core::path_counts_host(bc, leaf_count);
      res.path_cover_size = p[root];
    }
    res.wall_ms = timer.millis();
    res.hamiltonian_path = res.path_cover_size == 1;
    res.hamiltonian_cycle = core::has_hamiltonian_cycle(t);
    res.ok = true;
  } catch (const std::exception& e) {
    res = CountResult{};
    res.error = e.what();
  }
  return res;
}

}  // namespace copath

namespace copath::core {

// Compatibility wrapper: the historical convenience entry point now
// delegates to the Solver facade (Backend::Parallel).
PathCover min_path_cover_parallel(const cograph::Cotree& t,
                                  std::size_t workers,
                                  pram::Stats* stats_out) {
  SolveOptions opts;
  opts.backend = Backend::Parallel;
  opts.workers = workers;
  opts.compute_verdicts = false;  // cost parity with the historical entry
  const Solver solver(opts);
  SolveResult res = solver.solve(SolveRequest{Instance::view(t), {}, {}});
  COPATH_CHECK_MSG(res.ok, "min_path_cover_parallel: " << res.error);
  if (stats_out != nullptr) *stats_out = res.stats;
  return std::move(res.cover);
}

}  // namespace copath::core
