// The generic (executor-parameterized) implementation of the paper's main
// result — Theorem 5.3's eight-stage path cover pipeline. See
// core/pipeline.hpp for the stage map and the narrative comments.
//
// min_path_cover_exec<E> runs the identical stage code on any executor
// satisfying exec::Executor:
//   * exec::CheckedPram / pram::Machine — the conflict-checked simulator;
//     proves the EREW contract and yields the paper's step/work counts
//     (this instantiation is exported as core::min_path_cover_pram).
//   * exec::Native — direct memory, thread-pool pfor; the production
//     engine behind Backend::Native.
// Stage accounting reads the executor's stats() deltas, so traces work on
// both (under Native they count phases, not the paper's cost model).
#pragma once

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "cograph/binarize.hpp"
#include "cograph/cotree.hpp"
#include "core/count.hpp"
#include "core/path_cover.hpp"
#include "core/pipeline.hpp"
#include "par/brackets.hpp"
#include "par/contraction.hpp"
#include "par/euler.hpp"
#include "par/scan.hpp"

namespace copath::core {

namespace pipeline_detail {

using par::BinTree;
using par::EulerNumbers;
using i64 = std::int64_t;
using i32 = std::int32_t;
using u8 = std::uint8_t;

constexpr std::int8_t kSlotP = 0;
constexpr std::int8_t kSlotL = 1;
constexpr std::int8_t kSlotR = 2;

/// Take-last-defined scan payload used by the broadcast steps.
template <typename T>
struct SetCell {
  T value{};
  u8 set = 0;
};
template <typename T>
struct TakeSet {
  static constexpr SetCell<T> identity() { return SetCell<T>{}; }
  SetCell<T> operator()(const SetCell<T>& a, const SetCell<T>& b) const {
    return b.set ? b : a;
  }
};

/// Per-emission-unit description broadcast over bracket positions.
struct UnitInfo {
  i64 start = 0;       // first bracket position of the unit
  i64 rank = 0;        // unit's first leaf rank
  i64 pv = 0, lw = 0;  // 1-node parameters (bundles only)
  i64 nb = 0, ni = 0, nd = 0;
  i64 dummy_base = 0;
  i32 owner = -1;      // owning binarized 1-node (bundles only)
  u8 is_bundle = 0;
};

/// Owner-region description broadcast over leaf ranks / dummy ids.
struct OwnerInfo {
  i32 owner = -1;
  i64 rank_start = 0;
  i64 nb = 0;  // bridge count (== lw for Case 1, which has no inserts)
  i64 lw = 0;
  i64 dummy_base = 0;
};

/// Element payload for the skipped-neighbour scans during repair.
struct NeighborInfo {
  i32 id = -1;      // -1 = path boundary (virtual separator)
  i32 owner = -1;
  u8 is_insert = 0;
  u8 is_bridge = 0;
};

}  // namespace pipeline_detail

/// Runs the full parallel pipeline on executor `m`. The executor's
/// processor budget selects the Brent schedule; on the checked simulator
/// the paper's bound corresponds to processors = n / log2 n.
template <typename E>
PathCover min_path_cover_exec(E& m, const cograph::Cotree& t,
                              const PipelineOptions& opt = {},
                              PipelineTrace* trace = nullptr) {
  using namespace pipeline_detail;  // SetCell/TakeSet/UnitInfo/... helpers
  const std::size_t n = t.vertex_count();
  COPATH_CHECK(n > 0);
  if (n == 1) {
    if (trace != nullptr) {
      *trace = PipelineTrace{};
      trace->path_count = 1;
    }
    return PathCover{{{0}}};
  }

  // Stage accounting: record (steps, work) deltas when tracing. Stage
  // boundaries double as cancellation checkpoints for executors that
  // support them (exec::Native): host-only stretches between parallel
  // phases (tree copies, cut-depth sweeps, cover assembly) still observe
  // a tripped token within one stage.
  std::uint64_t stage_steps = m.stats().steps;
  std::uint64_t stage_work = m.stats().work;
  const auto mark_stage = [&](const char* name) {
    if constexpr (requires { m.cancel_checkpoint(); }) m.cancel_checkpoint();
    if (trace == nullptr) return;
    trace->stages.emplace_back(name, m.stats().steps - stage_steps,
                               m.stats().work - stage_work);
    stage_steps = m.stats().steps;
    stage_work = m.stats().work;
  };

  // ---- Step 1 (load): binarize --------------------------------------
  auto bc = cograph::binarize(t);
  const std::size_t bn = bc.size();

  // ---- Step 2: L(u) via Euler tour, then the leftist reorder ---------
  const EulerNumbers pre_nums =
      par::euler_numbers(m, bc.tree, opt.rank_engine);
  {
    auto lchild = exec::make_array<i32>(m, bc.tree.left);
    auto rchild = exec::make_array<i32>(m, bc.tree.right);
    auto leaves_in = exec::make_array<i64>(m, pre_nums.leaves);
    m.pfor(bn, [&](auto& c, std::size_t v) {
      const i32 l = lchild.get(c, v);
      if (l == par::kNull) return;
      const i32 r = rchild.get(c, v);
      if (leaves_in.get(c, static_cast<std::size_t>(l)) <
          leaves_in.get(c, static_cast<std::size_t>(r))) {
        lchild.put(c, v, r);
        rchild.put(c, v, l);
      }
    });
    for (std::size_t v = 0; v < bn; ++v) {
      bc.tree.left[v] = lchild.host(v);
      bc.tree.right[v] = rchild.host(v);
    }
  }
  const EulerNumbers nums = par::euler_numbers(m, bc.tree, opt.rank_engine);
  const i64 tour_len = nums.tour_length;
  mark_stage("step2: L(u) + leftist (Euler x2)");

  // ---- Step 3: p(u) by tree contraction (Lemma 2.4) ------------------
  const std::vector<i64> p = path_counts_exec(m, bc, nums.leaves);
  mark_stage("step3: p(u) by tree contraction");

  // Cut-depth: a node is below a flattened (right-of-1-node) edge iff its
  // cut depth is positive; skeleton 1-nodes have cut depth 0.
  std::vector<i64> cutdepth(bn, 0);
  {
    auto delta = exec::make_array<i64>(m, static_cast<std::size_t>(tour_len), 0);
    auto is_join = exec::make_array<u8>(m, bc.is_join);
    auto rchild = exec::make_array<i32>(m, bc.tree.right);
    auto dpos = exec::make_array<i64>(m, nums.down_pos);
    auto upos = exec::make_array<i64>(m, nums.up_pos);
    m.pfor(bn, [&](auto& c, std::size_t v) {
      if (!is_join.get(c, v)) return;
      const i32 rc = rchild.get(c, v);
      if (rc == par::kNull) return;
      delta.put(c, static_cast<std::size_t>(
                       dpos.get(c, static_cast<std::size_t>(rc))),
                1);
      delta.put(c, static_cast<std::size_t>(
                       upos.get(c, static_cast<std::size_t>(rc))),
                -1);
    });
    par::inclusive_scan(m, delta);
    auto cd = exec::make_array<i64>(m, bn, 0);
    m.pfor(bn, [&](auto& c, std::size_t v) {
      const i64 dp = dpos.get(c, v);
      if (dp < 0) return;  // root
      cd.put(c, v, delta.get(c, static_cast<std::size_t>(dp)));
    });
    for (std::size_t v = 0; v < bn; ++v) cutdepth[v] = cd.host(v);
  }

  // ---- Step 4: bracket sequence -------------------------------------
  // Per-skeleton-1-node parameters and dummy bases.
  auto nd = exec::make_array<i64>(m, bn, 0);  // dummies per node
  std::size_t dummy_total = 0;
  {
    auto is_join = exec::make_array<u8>(m, bc.is_join);
    auto lchild = exec::make_array<i32>(m, bc.tree.left);
    auto rchild = exec::make_array<i32>(m, bc.tree.right);
    auto p_arr = exec::make_array<i64>(m, p);
    auto cut_arr = exec::make_array<i64>(m, cutdepth);
    auto leaves_arr = exec::make_array<i64>(m, nums.leaves);
    m.pfor(bn, [&](auto& c, std::size_t v) {
      const i32 lc = lchild.get(c, v);
      if (lc == par::kNull || !is_join.get(c, v) || cut_arr.get(c, v) != 0)
        return;
      const i64 pv = p_arr.get(c, static_cast<std::size_t>(lc));
      const i64 lw = leaves_arr.get(
          c, static_cast<std::size_t>(rchild.get(c, v)));
      if (pv <= lw) nd.put(c, v, 2 * pv - 2);
    });
  }
  auto dummy_base = exec::make_array<i64>(m, bn, 0);
  par::exclusive_scan_into(m, nd, dummy_base);
  dummy_total =
      static_cast<std::size_t>(dummy_base.host(bn - 1) + nd.host(bn - 1));
  const std::size_t ids = n + dummy_total;

  // Rank-space arrays.
  auto vertex_by_rank = exec::make_array<i32>(m, n, -1);
  auto weight = exec::make_array<i64>(m, n, 0);
  auto rank_owner = exec::make_array<SetCell<OwnerInfo>>(m, n);
  {
    auto is_join = exec::make_array<u8>(m, bc.is_join);
    auto lchild = exec::make_array<i32>(m, bc.tree.left);
    auto rchild = exec::make_array<i32>(m, bc.tree.right);
    auto vert = exec::make_array<i32>(m, bc.vertex);
    auto p_arr = exec::make_array<i64>(m, p);
    auto cut_arr = exec::make_array<i64>(m, cutdepth);
    auto leaves_arr = exec::make_array<i64>(m, nums.leaves);
    auto leafnum = exec::make_array<i64>(m, nums.leafnum);
    auto firstleaf = exec::make_array<i64>(m, nums.first_leaf);
    // Leaves scatter their vertex; primary leaves carry weight 3.
    m.pfor(bn, [&](auto& c, std::size_t v) {
      if (lchild.get(c, v) != par::kNull) return;
      const auto rank = static_cast<std::size_t>(leafnum.get(c, v));
      vertex_by_rank.put(c, rank, vert.get(c, v));
      if (cut_arr.get(c, v) == 0) weight.put(c, rank, 3);
    });
    // Skeleton 1-nodes scatter their bundle at the range start.
    m.pfor(bn, [&](auto& c, std::size_t v) {
      const i32 lc = lchild.get(c, v);
      if (lc == par::kNull || !is_join.get(c, v) || cut_arr.get(c, v) != 0)
        return;
      const i32 rc = rchild.get(c, v);
      const i64 pv = p_arr.get(c, static_cast<std::size_t>(lc));
      const i64 lw = leaves_arr.get(c, static_cast<std::size_t>(rc));
      const i64 bridges = pv > lw ? lw : pv - 1;
      const i64 inserts = pv > lw ? 0 : lw - pv + 1;
      const i64 dums = pv > lw ? 0 : 2 * pv - 2;
      const auto start = static_cast<std::size_t>(
          firstleaf.get(c, static_cast<std::size_t>(rc)));
      weight.put(c, start, 3 * bridges + 3 * inserts + 2 * dums);
      rank_owner.put(c, start,
                     SetCell<OwnerInfo>{
                         OwnerInfo{static_cast<i32>(v), static_cast<i64>(start),
                                   bridges, lw, dummy_base.get(c, v)},
                         1});
    });
  }
  par::inclusive_scan(m, rank_owner, TakeSet<OwnerInfo>{});

  auto offset = exec::make_array<i64>(m, n, 0);
  par::exclusive_scan_into(m, weight, offset);
  const auto total =
      static_cast<std::size_t>(offset.host(n - 1) + weight.host(n - 1));

  // Roles and owners per id (ids < n are leaf ranks, >= n are dummies).
  auto role = exec::make_array<u8>(m, ids, 0);  // 0 primary, 1 bridge, 2 insert, 3 dummy
  auto owner = exec::make_array<i32>(m, ids, -1);
  {
    auto cut_by_rank = exec::make_array<i64>(m, n, 0);
    {
      auto lchild = exec::make_array<i32>(m, bc.tree.left);
      auto cut_arr = exec::make_array<i64>(m, cutdepth);
      auto leafnum = exec::make_array<i64>(m, nums.leafnum);
      m.pfor(bn, [&](auto& c, std::size_t v) {
        if (lchild.get(c, v) != par::kNull) return;
        cut_by_rank.put(c, static_cast<std::size_t>(leafnum.get(c, v)),
                        cut_arr.get(c, v));
      });
    }
    m.pfor(n, [&](auto& c, std::size_t r) {
      if (cut_by_rank.get(c, r) == 0) return;  // primary
      const OwnerInfo oi = rank_owner.get(c, r).value;
      owner.put(c, r, oi.owner);
      role.put(c, r,
               static_cast<i64>(r) - oi.rank_start < oi.nb ? u8{1} : u8{2});
    });
    // Dummy owners via broadcast over dummy-id space.
    if (dummy_total > 0) {
      auto dspace = exec::make_array<SetCell<i32>>(m, dummy_total);
      {
        const auto scatter = [&](auto& src) {
          m.pfor(bn, [&](auto& c, std::size_t v) {
            if (src.get(c, v) == 0) return;
            dspace.put(c, static_cast<std::size_t>(dummy_base.get(c, v)),
                       SetCell<i32>{static_cast<i32>(v), 1});
          });
        };
        if constexpr (exec::native_shortcuts_v<E>) {
          // Fused: read nd directly (one reader per cell — race-free).
          scatter(nd);
        } else {
          auto nd_copy = exec::make_array<i64>(m, bn, 0);
          par::copy(m, nd, nd_copy);
          scatter(nd_copy);
        }
      }
      par::inclusive_scan(m, dspace, TakeSet<i32>{});
      m.pfor(dummy_total, [&](auto& c, std::size_t d) {
        owner.put(c, n + d, dspace.get(c, d).value);
        role.put(c, n + d, 3);
      });
    }
  }

  // Fill the bracket arrays.
  auto sq_sign = exec::make_array<std::int8_t>(m, total, 0);
  auto rd_sign = exec::make_array<std::int8_t>(m, total, 0);
  auto slot = exec::make_array<std::int8_t>(m, total, 0);
  auto vrank = exec::make_array<i64>(m, total, -1);
  {
    auto posinfo = exec::make_array<SetCell<UnitInfo>>(m, total);
    {
      auto is_join = exec::make_array<u8>(m, bc.is_join);
      auto lchild = exec::make_array<i32>(m, bc.tree.left);
      auto rchild = exec::make_array<i32>(m, bc.tree.right);
      auto p_arr = exec::make_array<i64>(m, p);
      auto cut_arr = exec::make_array<i64>(m, cutdepth);
      auto leaves_arr = exec::make_array<i64>(m, nums.leaves);
      auto leafnum = exec::make_array<i64>(m, nums.leafnum);
      auto firstleaf = exec::make_array<i64>(m, nums.first_leaf);
      m.pfor(bn, [&](auto& c, std::size_t v) {
        const i32 lc = lchild.get(c, v);
        if (lc == par::kNull) {
          // Leaf: primary units only.
          if (cut_arr.get(c, v) != 0) return;
          const auto rank = static_cast<std::size_t>(leafnum.get(c, v));
          UnitInfo ui;
          ui.start = offset.get(c, rank);
          ui.rank = static_cast<i64>(rank);
          posinfo.put(c, static_cast<std::size_t>(ui.start),
                      SetCell<UnitInfo>{ui, 1});
          return;
        }
        if (!is_join.get(c, v) || cut_arr.get(c, v) != 0) return;
        const i32 rc = rchild.get(c, v);
        UnitInfo ui;
        ui.pv = p_arr.get(c, static_cast<std::size_t>(lc));
        ui.lw = leaves_arr.get(c, static_cast<std::size_t>(rc));
        ui.nb = ui.pv > ui.lw ? ui.lw : ui.pv - 1;
        ui.ni = ui.pv > ui.lw ? 0 : ui.lw - ui.pv + 1;
        ui.nd = ui.pv > ui.lw ? 0 : 2 * ui.pv - 2;
        ui.rank = firstleaf.get(c, static_cast<std::size_t>(rc));
        ui.start = offset.get(c, static_cast<std::size_t>(ui.rank));
        ui.dummy_base = dummy_base.get(c, v);
        ui.owner = static_cast<i32>(v);
        ui.is_bundle = 1;
        posinfo.put(c, static_cast<std::size_t>(ui.start),
                    SetCell<UnitInfo>{ui, 1});
      });
    }
    par::inclusive_scan(m, posinfo, TakeSet<UnitInfo>{});
    m.pfor(total, [&](auto& c, std::size_t pos) {
      const UnitInfo ui = posinfo.get(c, pos).value;
      const i64 q = static_cast<i64>(pos) - ui.start;
      if (!ui.is_bundle) {
        if (q == 0) {
          sq_sign.put(c, pos, +1);
          slot.put(c, pos, kSlotP);
        } else {
          rd_sign.put(c, pos, +1);
          slot.put(c, pos, q == 1 ? kSlotL : kSlotR);
        }
        vrank.put(c, pos, ui.rank);
        return;
      }
      if (q < 3 * ui.nb) {
        const i64 i = q / 3;
        const i64 sub = q % 3;
        if (sub == 2) {
          sq_sign.put(c, pos, +1);
          slot.put(c, pos, kSlotP);
        } else {
          sq_sign.put(c, pos, -1);
          slot.put(c, pos, sub == 0 ? kSlotR : kSlotL);
        }
        vrank.put(c, pos, ui.rank + i);
        return;
      }
      i64 q2 = q - 3 * ui.nb;
      if (q2 < ui.ni) {  // insert parent slots
        rd_sign.put(c, pos, -1);
        slot.put(c, pos, kSlotP);
        vrank.put(c, pos, ui.rank + ui.nb + q2);
        return;
      }
      q2 -= ui.ni;
      if (q2 < ui.nd) {  // dummy parent slots
        rd_sign.put(c, pos, -1);
        slot.put(c, pos, kSlotP);
        vrank.put(c, pos, static_cast<i64>(n) + ui.dummy_base + q2);
        return;
      }
      q2 -= ui.nd;
      if (q2 < ui.nd) {  // dummy right-child slots
        rd_sign.put(c, pos, +1);
        slot.put(c, pos, kSlotR);
        vrank.put(c, pos, static_cast<i64>(n) + ui.dummy_base + q2);
        return;
      }
      q2 -= ui.nd;  // insert child slots (l, r interleaved)
      rd_sign.put(c, pos, +1);
      slot.put(c, pos, q2 % 2 == 0 ? kSlotL : kSlotR);
      vrank.put(c, pos, ui.rank + ui.nb + q2 / 2);
    });
  }

  mark_stage("step4: bracket generation");

  // ---- Step 5: match the two bracket systems -------------------------
  auto sq_match = exec::make_array<i64>(m, total, -1);
  auto rd_match = exec::make_array<i64>(m, total, -1);
  par::match_brackets(m, sq_sign, sq_match);
  par::match_brackets(m, rd_sign, rd_match);

  mark_stage("step5: bracket matching");

  // Build the pseudo path forest (over rank/dummy ids).
  auto parent = exec::make_array<i32>(m, ids, -1);
  auto side = exec::make_array<u8>(m, ids, 0);
  auto lkid = exec::make_array<i32>(m, ids, -1);
  auto rkid = exec::make_array<i32>(m, ids, -1);
  const auto set_child = [&](auto& c, i32 par, u8 s, i32 child) {
    if (s == 0) {
      lkid.put(c, static_cast<std::size_t>(par), child);
    } else {
      rkid.put(c, static_cast<std::size_t>(par), child);
    }
  };
  m.pfor(total, [&](auto& c, std::size_t pos) {
    // Handle each matched pair at its *open* bracket so every cell has one
    // reader.
    if (sq_sign.get(c, pos) > 0) {
      const i64 j = sq_match.get(c, pos);
      if (j < 0) return;
      const auto ju = static_cast<std::size_t>(j);
      const auto child = static_cast<i32>(vrank.get(c, pos));
      const auto par = static_cast<i32>(vrank.get(c, ju));
      const u8 s = slot.get(c, ju) == kSlotL ? 0 : 1;
      parent.put(c, static_cast<std::size_t>(child), par);
      side.put(c, static_cast<std::size_t>(child), s);
      set_child(c, par, s, child);
      return;
    }
    if (rd_sign.get(c, pos) > 0) {
      const i64 j = rd_match.get(c, pos);
      if (j < 0) return;
      const auto ju = static_cast<std::size_t>(j);
      const auto par = static_cast<i32>(vrank.get(c, pos));
      const auto child = static_cast<i32>(vrank.get(c, ju));
      const u8 s = slot.get(c, pos) == kSlotL ? 0 : 1;
      parent.put(c, static_cast<std::size_t>(child), par);
      side.put(c, static_cast<std::size_t>(child), s);
      set_child(c, par, s, child);
    }
  });
  // Path-tree roots: unmatched square-open parent slots, in bracket order.
  auto is_root_pos = exec::make_array<u8>(m, total, 0);
  m.pfor(total, [&](auto& c, std::size_t pos) {
    if (sq_sign.get(c, pos) > 0 && sq_match.get(c, pos) < 0)
      is_root_pos.put(c, pos, 1);
  });
  auto root_pos = exec::make_array<i64>(m, total, -1);
  const std::size_t k_roots = par::compact_indices(m, is_root_pos, root_pos);
  auto roots = exec::make_array<i32>(m, k_roots, -1);
  m.pfor(k_roots, [&](auto& c, std::size_t j) {
    roots.put(c, j,
              static_cast<i32>(vrank.get(
                  c, static_cast<std::size_t>(root_pos.get(c, j)))));
  });
  mark_stage("step5b: forest construction");

  // ---- Step 6: repair -------------------------------------------------
  // Forest + separator chain, inorder by Euler tour, dummy-skipped
  // neighbour scans, per-owner rank pairing.
  const std::size_t chain_base = ids;
  const std::size_t fsize = ids + k_roots;
  const auto build_host_tree = [&](bool include_dummies) {
    const std::size_t lim = include_dummies ? ids : n;
    BinTree ft = BinTree::with_size((include_dummies ? ids : n) + k_roots);
    const std::size_t cb = lim;
    for (std::size_t v = 0; v < lim; ++v) {
      ft.parent[v] = parent.host(v);
      ft.left[v] = lkid.host(v);
      ft.right[v] = rkid.host(v);
    }
    for (std::size_t j = 0; j < k_roots; ++j) {
      const auto cv = static_cast<i32>(cb + j);
      const i32 r = roots.host(j);
      ft.left[static_cast<std::size_t>(cv)] = r;
      ft.parent[static_cast<std::size_t>(r)] = cv;
      if (j + 1 < k_roots) {
        ft.right[static_cast<std::size_t>(cv)] = cv + 1;
        ft.parent[static_cast<std::size_t>(cv) + 1] = cv;
      }
    }
    ft.root = static_cast<i32>(cb);
    return ft;
  };

  std::size_t rounds = 0;
  while (true) {
    // One checkpoint per repair round: the round count is data-dependent,
    // so a cancelled solve must not be able to hide inside the loop.
    if constexpr (requires { m.cancel_checkpoint(); }) m.cancel_checkpoint();
    const BinTree ft = build_host_tree(true);
    const EulerNumbers fn = par::euler_numbers(m, ft, opt.rank_engine);
    auto seq = exec::make_array<i32>(m, fsize, -1);
    {
      auto in_arr = exec::make_array<i64>(m, fn.in);
      m.pfor(fsize, [&](auto& c, std::size_t v) {
        seq.put(c, static_cast<std::size_t>(in_arr.get(c, v)),
                static_cast<i32>(v));
      });
    }
    // Neighbour info per position; separators reset, dummies propagate.
    auto fwd = exec::make_array<SetCell<NeighborInfo>>(m, fsize);
    m.pfor(fsize, [&](auto& c, std::size_t i) {
      const i32 e = seq.get(c, i);
      const auto eu = static_cast<std::size_t>(e);
      SetCell<NeighborInfo> cell;
      if (eu >= chain_base) {  // separator
        cell = SetCell<NeighborInfo>{NeighborInfo{}, 1};
      } else if (eu >= n) {  // dummy: transparent
        cell.set = 0;
      } else {
        cell = SetCell<NeighborInfo>{
            NeighborInfo{e, owner.get(c, eu), role.get(c, eu) == 2,
                         role.get(c, eu) == 1},
            1};
      }
      fwd.put(c, i, cell);
    });
    auto bwd = exec::make_array<SetCell<NeighborInfo>>(m, fsize);
    m.pfor(fsize, [&](auto& c, std::size_t i) {
      bwd.put(c, i, fwd.get(c, fsize - 1 - i));
    });
    par::inclusive_scan(m, fwd, TakeSet<NeighborInfo>{});
    par::inclusive_scan(m, bwd, TakeSet<NeighborInfo>{});

    auto illegal = exec::make_array<u8>(m, ids, 0);
    auto legal_dummy = exec::make_array<u8>(m, ids, 0);
    auto illegal_count = exec::make_array<i64>(m, fsize, 0);
    m.pfor(fsize, [&](auto& c, std::size_t i) {
      const i32 e = seq.get(c, i);
      const auto eu = static_cast<std::size_t>(e);
      if (eu >= chain_base) return;
      const i32 own = owner.get(c, eu);
      if (own == -1) return;
      const NeighborInfo pn =
          i > 0 ? fwd.get(c, i - 1).value : NeighborInfo{};
      const NeighborInfo nx =
          i + 1 < fsize ? bwd.get(c, fsize - 2 - i).value : NeighborInfo{};
      const bool clash = (pn.id != -1 && pn.owner == own) ||
                         (nx.id != -1 && nx.owner == own);
      const u8 rl = role.get(c, eu);
      if (rl == 2) {  // insert
        if (clash) {
          illegal.put(c, eu, 1);
          illegal_count.put(c, i, 1);
        }
      } else if (rl == 3) {  // dummy
        if (!clash) legal_dummy.put(c, eu, 1);
      }
    });
    const i64 bad = par::reduce(m, illegal_count);
    if (bad == 0) break;
    COPATH_CHECK_MSG(rounds < opt.max_repair_rounds,
                     "PRAM repair failed to converge (" << bad
                                                        << " illegal)");
    ++rounds;

    // Within-owner indices by prefix sums over rank / dummy-id space.
    auto ill_prefix = exec::make_array<i64>(m, n, 0);
    m.pfor(n, [&](auto& c, std::size_t r) {
      ill_prefix.put(c, r, illegal.get(c, r) != 0 ? 1 : 0);
    });
    par::exclusive_scan(m, ill_prefix);
    // Broadcast the prefix value at each owner's insert-range start.
    auto ill_base = exec::make_array<SetCell<i64>>(m, n);
    m.pfor(n, [&](auto& c, std::size_t r) {
      const OwnerInfo oi = rank_owner.get(c, r).value;
      // Only Case-2 owners (nb < lw) have an insert range to anchor.
      const bool start = oi.owner != -1 && oi.nb < oi.lw &&
                         static_cast<i64>(r) == oi.rank_start + oi.nb;
      ill_base.put(c, r,
                   start ? SetCell<i64>{ill_prefix.get(c, r), 1}
                         : SetCell<i64>{});
    });
    par::inclusive_scan(m, ill_base, TakeSet<i64>{});

    COPATH_CHECK(dummy_total > 0);  // illegal inserts imply Case-2 dummies
    auto dum_prefix = exec::make_array<i64>(m, dummy_total, 0);
    m.pfor(dummy_total, [&](auto& c, std::size_t d) {
      dum_prefix.put(c, d, legal_dummy.get(c, n + d) != 0 ? 1 : 0);
    });
    par::exclusive_scan(m, dum_prefix);
    // Broadcast (prefix value at base, base index) across each owner's
    // dummy-id segment.
    struct DumBase {
      i64 prefix_at_base = 0;
      i64 base = 0;
    };
    auto dum_base = exec::make_array<SetCell<DumBase>>(m, dummy_total);
    {
      const auto scatter = [&](auto& src) {
        m.pfor(bn, [&](auto& c, std::size_t v) {
          if (src.get(c, v) == 0) return;
          const auto base = static_cast<std::size_t>(dummy_base.get(c, v));
          dum_base.put(
              c, base,
              SetCell<DumBase>{
                  DumBase{dum_prefix.get(c, base), static_cast<i64>(base)},
                  1});
        });
      };
      if constexpr (exec::native_shortcuts_v<E>) {
        scatter(nd);  // one reader per cell — race-free without the copy
      } else {
        auto nd_copy = exec::make_array<i64>(m, bn, 0);
        par::copy(m, nd, nd_copy);
        scatter(nd_copy);
      }
    }
    par::inclusive_scan(m, dum_base, TakeSet<DumBase>{});

    // k-th illegal insert announces itself in the owner's pair slots…
    auto pair_slot = exec::make_array<i32>(m, dummy_total, -1);
    m.pfor(n, [&](auto& c, std::size_t r) {
      if (illegal.get(c, r) == 0) return;
      const OwnerInfo oi = rank_owner.get(c, r).value;
      const i64 kth = ill_prefix.get(c, r) - ill_base.get(c, r).value;
      pair_slot.put(c, static_cast<std::size_t>(oi.dummy_base + kth),
                    static_cast<i32>(r));
    });
    // …and the k-th legal dummy picks it up and swaps tree positions
    // (subtrees travel with their nodes — children point at ids).
    m.pfor(dummy_total, [&](auto& c, std::size_t d) {
      if (legal_dummy.get(c, n + d) == 0) return;
      const DumBase db = dum_base.get(c, d).value;
      const i64 kth = dum_prefix.get(c, d) - db.prefix_at_base;
      const i32 x = pair_slot.get(c, static_cast<std::size_t>(db.base + kth));
      if (x < 0) return;  // more legal dummies than illegal inserts
      const auto xu = static_cast<std::size_t>(x);
      const auto du = n + d;
      const i32 px = parent.get(c, xu);
      const u8 sx = side.get(c, xu);
      const i32 pd = parent.get(c, du);
      const u8 sd = side.get(c, du);
      parent.put(c, xu, pd);
      side.put(c, xu, sd);
      parent.put(c, du, px);
      side.put(c, du, sx);
      set_child(c, pd, sd, x);
      set_child(c, px, sx, static_cast<i32>(du));
    });
  }

  mark_stage("step6: illegal-insert repair");

  // ---- Step 7: bypass dummies (pointer jumping along dummy chains) ----
  if (dummy_total > 0) {
    // anc/aside: for every node, the first non-dummy strict ancestor and
    // the child-slot of the topmost dummy on the way (or of itself).
    auto anc = exec::make_array<i32>(m, ids, -1);
    auto aside = exec::make_array<u8>(m, ids, 0);
    par::copy(m, parent, anc);
    par::copy(m, side, aside);
    auto anc_copy = exec::make_array<i32>(m, ids, -1);
    auto aside_copy = exec::make_array<u8>(m, ids, 0);
    std::size_t jump_rounds = 1;
    for (std::size_t v = 1; v < dummy_total + 2; v <<= 1) ++jump_rounds;
    for (std::size_t rd = 0; rd < jump_rounds; ++rd) {
      par::copy(m, anc, anc_copy);
      par::copy(m, aside, aside_copy);
      m.pfor(ids, [&](auto& c, std::size_t v) {
        const i32 a = anc.get(c, v);
        if (a < 0 || static_cast<std::size_t>(a) < n) return;  // resolved
        // a is a dummy; its cells are read only by its unique child (and
        // itself via the copies), so this is exclusive.
        anc.put(c, v, anc_copy.get(c, static_cast<std::size_t>(a)));
        aside.put(c, v, aside_copy.get(c, static_cast<std::size_t>(a)));
      });
    }
    // Reattach the non-dummy nodes; rebuild child pointers from scratch.
    m.pfor(n, [&](auto& c, std::size_t v) {
      parent.put(c, v, anc.get(c, v));
      side.put(c, v, aside.get(c, v));
      lkid.put(c, v, -1);
      rkid.put(c, v, -1);
    });
    m.pfor(n, [&](auto& c, std::size_t v) {
      const i32 q = parent.get(c, v);
      if (q < 0) return;
      COPATH_CHECK(static_cast<std::size_t>(q) < n);
      set_child(c, q, side.get(c, v), static_cast<i32>(v));
    });
  }

  mark_stage("step7: dummy bypass");

  // ---- Step 8: report the paths ---------------------------------------
  PathCover cover;
  {
    const BinTree ft = build_host_tree(false);
    const EulerNumbers fn = par::euler_numbers(m, ft, opt.rank_engine);
    const std::size_t esize = n + k_roots;
    auto seq = exec::make_array<i32>(m, esize, -1);
    {
      auto in_arr = exec::make_array<i64>(m, fn.in);
      m.pfor(esize, [&](auto& c, std::size_t v) {
        seq.put(c, static_cast<std::size_t>(in_arr.get(c, v)),
                static_cast<i32>(v));
      });
    }
    // Translate ranks to vertices in one exclusive gather.
    auto out_vertex = exec::make_array<i32>(m, esize, -1);
    m.pfor(esize, [&](auto& c, std::size_t i) {
      const i32 e = seq.get(c, i);
      if (static_cast<std::size_t>(e) >= n) return;  // separator
      out_vertex.put(c, i,
                     vertex_by_rank.get(c, static_cast<std::size_t>(e)));
    });
    // Host assembly (output formatting).
    cover.paths.reserve(k_roots);
    std::vector<VertexId> cur;
    for (std::size_t i = 0; i < esize; ++i) {
      const i32 v = out_vertex.host(i);
      if (v < 0) {
        COPATH_CHECK_MSG(!cur.empty(), "empty path in PRAM pipeline output");
        cover.paths.push_back(std::move(cur));
        cur.clear();
      } else {
        cur.push_back(v);
      }
    }
    COPATH_CHECK(cur.empty());
  }
  mark_stage("step8: path extraction");
  if (trace != nullptr) {
    trace->bracket_length = total;
    trace->dummy_count = dummy_total;
    trace->repair_rounds = rounds;
    trace->path_count = cover.paths.size();
  }
  return cover;
}

}  // namespace copath::core
