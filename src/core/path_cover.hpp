// Public path cover types and the independent validator.
#pragma once

#include <string>
#include <vector>

#include "cograph/cotree.hpp"
#include "cograph/graph.hpp"

namespace copath::core {

using cograph::VertexId;

/// A set of vertex-disjoint paths covering all vertices of a graph. Each
/// inner vector lists a path's vertices in traversal order; singleton paths
/// are allowed (isolated vertices).
struct PathCover {
  std::vector<std::vector<VertexId>> paths;

  [[nodiscard]] std::size_t size() const { return paths.size(); }
  [[nodiscard]] std::size_t vertex_total() const {
    std::size_t s = 0;
    for (const auto& p : paths) s += p.size();
    return s;
  }
  [[nodiscard]] bool is_hamiltonian_path() const { return paths.size() == 1; }
};

struct ValidationReport {
  bool ok = false;
  std::string error;  // empty when ok
};

/// Independently checks that `cover` is a valid path cover of the cograph
/// described by `t`: every vertex appears exactly once, and every
/// consecutive pair is adjacent (verified against the cotree LCA oracle,
/// property (6) — no trust in the algorithm under test). If
/// `require_minimum`, also checks |cover| equals the minimum path cover
/// size computed by the (independently tested) counting recursion.
ValidationReport validate_path_cover(const cograph::Cotree& t,
                                     const PathCover& cover,
                                     bool require_minimum = true);

}  // namespace copath::core
