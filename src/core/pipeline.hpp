// The paper's main result (Theorem 5.3): reporting a minimum path cover in
// O(log n) time with n/log n processors on the EREW PRAM.
//
// Stage map (paper Step -> implementation):
//   1  binarize T(G)            host load-time transform (see DESIGN.md §5)
//   2  L(u), leftist reorder    Euler tour (Lemma 5.2) + pfor swap
//   3  p(u), reduced cotree     tree contraction (Lemma 2.4) + cut-depth
//                               scans classifying primary/bridge/insert
//   4  bracket sequence B(R)    per-leaf emission units, offsets by scan,
//                               broadcast + arithmetic decode
//   5  bracket matching         par::match_brackets (Lemma 5.1(3)) on the
//                               square and round systems independently
//   6  illegal-insert repair    inorder by Euler tour; dummy-skipped
//                               legality; per-owner rank pairing by scans
//   7  dummy bypass             pointer jumping along dummy chains
//   8  report paths             inorder positions + host assembly
//
// The stage code itself is generic over the execution substrate
// (core/pipeline_exec.hpp, exec/exec.hpp): min_path_cover_pram below is its
// checked-simulator instantiation — machine.stats() after the call gives
// the step/work counts the benchmarks compare against the paper's bounds,
// and with Policy::EREW every stage is additionally *checked* for
// access-discipline violations. Backend::Native runs the identical stages
// on exec::Native (direct memory, no simulation) at production speed.
#pragma once

#include "cograph/cotree.hpp"
#include "core/path_cover.hpp"
#include "par/euler.hpp"
#include "pram/machine.hpp"

namespace copath::core {

struct PipelineOptions {
  par::RankEngine rank_engine = par::RankEngine::Contract;
  std::size_t max_repair_rounds = 32;
};

struct PipelineTrace {
  std::size_t bracket_length = 0;
  std::size_t dummy_count = 0;
  std::size_t repair_rounds = 0;
  std::size_t path_count = 0;
  /// Per-stage (steps, work) deltas, in execution order — shows where the
  /// constants in the O(log n) bound live.
  std::vector<std::tuple<std::string, std::uint64_t, std::uint64_t>> stages;
};

/// Runs the full parallel pipeline on `m`. The machine's processor count
/// (pram::Machine::set_processors) selects the Brent schedule; the paper's
/// bound corresponds to processors = n / log2 n.
PathCover min_path_cover_pram(pram::Machine& m, const cograph::Cotree& t,
                              const PipelineOptions& opt = {},
                              PipelineTrace* trace = nullptr);

/// Compatibility wrapper (delegates to copath::Solver, Backend::Parallel):
/// builds an EREW machine with n/log2(n) processors and `workers` threads,
/// runs the pipeline, and (optionally) returns the machine stats through
/// `stats_out`. New code should call the Solver facade directly.
PathCover min_path_cover_parallel(const cograph::Cotree& t,
                                  std::size_t workers = 1,
                                  pram::Stats* stats_out = nullptr);

}  // namespace copath::core
