#include "core/adaptive.hpp"

namespace copath::core {

Backend CostModel::choose(std::size_t n, std::size_t internal_nodes,
                          std::size_t workers) const {
  if (n < min_native_n) return Backend::Sequential;
  return predict_native_ms(n, internal_nodes, workers) <
                 predict_sequential_ms(n)
             ? Backend::Native
             : Backend::Sequential;
}

const CostModel& CostModel::calibrated() {
  static const CostModel model{};
  return model;
}

}  // namespace copath::core
