// Host reference of the paper's full bracket pipeline (§4–§5, Steps 1–8),
// executed sequentially. Exists to (a) pin down the semantics of every
// pipeline stage independently of the PRAM machinery and (b) serve as the
// differential-test oracle for the PRAM pipeline (identical bracket
// streams, identical path counts, both validator-clean).
#pragma once

#include "cograph/cotree.hpp"
#include "core/path_cover.hpp"

namespace copath::core {

struct ReferenceTrace {
  std::size_t bracket_length = 0;
  std::size_t dummy_count = 0;
  std::size_t repair_rounds = 0;
  std::size_t path_count = 0;
};

/// Minimum path cover via the bracket pipeline, host execution.
PathCover min_path_cover_reference(const cograph::Cotree& t,
                                   ReferenceTrace* trace = nullptr);

}  // namespace copath::core
