#include "core/count.hpp"

namespace copath::core {

std::vector<std::int64_t> path_counts_host(
    const cograph::BinarizedCotree& bc,
    const std::vector<std::int64_t>& leaf_count) {
  const std::size_t n = bc.size();
  COPATH_CHECK(leaf_count.size() == n);
  std::vector<std::int64_t> p(n, 0);
  // Iterative post-order.
  std::vector<std::int32_t> order;
  order.reserve(n);
  std::vector<std::int32_t> stack{bc.tree.root};
  while (!stack.empty()) {
    const std::int32_t v = stack.back();
    stack.pop_back();
    order.push_back(v);
    const auto vu = static_cast<std::size_t>(v);
    if (bc.tree.left[vu] != -1) stack.push_back(bc.tree.left[vu]);
    if (bc.tree.right[vu] != -1) stack.push_back(bc.tree.right[vu]);
  }
  for (std::size_t i = order.size(); i-- > 0;) {
    const auto v = static_cast<std::size_t>(order[i]);
    if (bc.tree.left[v] == -1) {
      p[v] = 1;
      continue;
    }
    const auto l = static_cast<std::size_t>(bc.tree.left[v]);
    const auto r = static_cast<std::size_t>(bc.tree.right[v]);
    if (bc.is_join[v]) {
      p[v] = std::max<std::int64_t>(p[l] - leaf_count[r], 1);
    } else {
      p[v] = p[l] + p[r];
    }
  }
  return p;
}

std::vector<std::int64_t> path_counts_pram(
    pram::Machine& m, const cograph::BinarizedCotree& bc,
    const std::vector<std::int64_t>& leaf_count) {
  return path_counts_exec(m, bc, leaf_count);
}

std::int64_t path_cover_size(const cograph::Cotree& t) {
  auto bc = cograph::binarize(t);
  const auto leaf_count = cograph::make_leftist(bc);
  const auto p = path_counts_host(bc, leaf_count);
  return p[static_cast<std::size_t>(bc.tree.root)];
}

bool has_hamiltonian_path(const cograph::Cotree& t) {
  return path_cover_size(t) == 1;
}

}  // namespace copath::core
