#include "core/count.hpp"

#include "exec/scratch.hpp"

namespace copath::core {

namespace {

/// The p(u) recurrence over any binarized view, results into `p` (sized
/// by the caller). Binarized node ids are post-order (children before
/// parents — the binarize_core invariant), so one ascending linear pass
/// folds the whole recurrence.
void path_counts_core(const cograph::BinView& bc,
                      std::span<const std::int64_t> leaf_count,
                      std::span<std::int64_t> p) {
  const std::size_t n = bc.size();
  for (std::size_t v = 0; v < n; ++v) {
    if (bc.left[v] == -1) {
      p[v] = 1;
      continue;
    }
    const auto l = static_cast<std::size_t>(bc.left[v]);
    const auto r = static_cast<std::size_t>(bc.right[v]);
    p[v] = bc.is_join[v] ? std::max<std::int64_t>(p[l] - leaf_count[r], 1)
                         : p[l] + p[r];
  }
}

}  // namespace

std::vector<std::int64_t> path_counts_host(
    const cograph::BinarizedCotree& bc,
    const std::vector<std::int64_t>& leaf_count) {
  const std::size_t n = bc.size();
  COPATH_CHECK(leaf_count.size() == n);
  std::vector<std::int64_t> p(n, 0);
  path_counts_core(cograph::view_of(bc), leaf_count, p);
  return p;
}

CountVerdicts count_verdicts(const cograph::BinView& bc,
                             std::span<const std::int64_t> leaf_count,
                             exec::Arena& arena) {
  const std::size_t n = bc.size();
  COPATH_CHECK(leaf_count.size() == n);
  exec::ScratchVec<std::int64_t> p(arena, n, 0);
  path_counts_core(bc, leaf_count, p.span());
  CountVerdicts out;
  const auto root = static_cast<std::size_t>(bc.root);
  out.cover_size = p[root];
  out.hamiltonian_path = out.cover_size == 1;
  // Cycle corollary: n >= 3 and the root split join(V, W) has p(V) <= L(W)
  // (mirrors core/hamiltonian.cpp's root_split test exactly).
  if (bc.leaf_of_vertex.size() >= 3 && bc.left[root] != -1 &&
      bc.is_join[root] != 0) {
    const auto pv = p[static_cast<std::size_t>(bc.left[root])];
    const auto lw = leaf_count[static_cast<std::size_t>(bc.right[root])];
    out.hamiltonian_cycle = pv <= lw;
  }
  return out;
}

std::vector<std::int64_t> path_counts_pram(
    pram::Machine& m, const cograph::BinarizedCotree& bc,
    const std::vector<std::int64_t>& leaf_count) {
  return path_counts_exec(m, bc, leaf_count);
}

std::int64_t path_cover_size(const cograph::Cotree& t) {
  exec::Arena& arena = exec::Arena::for_this_thread();
  cograph::ScratchBinarized bc(arena);
  cograph::binarize_scratch(t, arena, bc);
  exec::ScratchVec<std::int64_t> leaf_count(arena);
  cograph::make_leftist_scratch(bc, leaf_count);
  return count_verdicts(bc.view(), leaf_count.span(), arena).cover_size;
}

bool has_hamiltonian_path(const cograph::Cotree& t) {
  return path_cover_size(t) == 1;
}

}  // namespace copath::core
