// Backend registry: the dispatch substrate behind copath::Solver.
//
// Every path cover engine in the library — the sequential sweep, the PRAM
// pipeline under various machine configurations, the host reference
// pipeline, and the baselines — is wrapped as a `BackendFn` and registered
// under a `Backend` id in the process-wide `BackendRegistry`. The Solver
// facade (copath_solver.hpp) resolves requests through the registry, so new
// engines (sharded, async, GPU, ...) plug in by registering themselves and
// become reachable from every example, bench, and batch workload without
// touching call sites.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cograph/cotree.hpp"
#include "core/path_cover.hpp"
#include "core/pipeline.hpp"
#include "exec/native.hpp"
#include "pram/machine.hpp"
#include "util/cancel.hpp"

namespace copath::core {

/// The built-in path cover engines. The registry is open: ids beyond the
/// enum can be added (or replaced) at runtime through BackendRegistry::add.
enum class Backend : std::uint8_t {
  /// Lemma 2.3 — the O(n) sequential sweep (host, no PRAM machine).
  Sequential,
  /// Theorem 5.3 on an EREW machine with the paper's P = n/log2(n) budget
  /// (the former core::min_path_cover_parallel convenience path).
  Parallel,
  /// Theorem 5.3 on a fully configurable machine: policy, processor budget,
  /// rank engine, and trace collection are honored.
  Pram,
  /// Held–Karp bitmask DP over the materialized graph (exact oracle;
  /// rejects n > 20, and is already slow well before that).
  BruteForce,
  /// Min-degree greedy heuristic on the materialized graph. The only
  /// backend with no minimality guarantee.
  Greedy,
  /// The level-synchronous strawman the paper dismisses (Θ(height) time).
  NaiveParallel,
  /// The host execution of the full bracket pipeline (differential oracle).
  Reference,
  /// Theorem 5.3's pipeline on exec::Native — the same stage code as Pram
  /// but on direct memory with thread-pool pfor: no conflict checking, no
  /// write buffering, no per-step barriers. The production engine; covers
  /// are identical to Backend::Pram (the differential suite enforces it).
  Native,
  /// Cost-model dispatch between Sequential and Native (core/adaptive.*):
  /// each solve is routed by predicted wall time from (n, instance shape,
  /// threads available to this request — i.e. batch pressure). The native
  /// route draws scratch from the calling thread's shared arena, so
  /// steady-state serving reuses buffers across solves. Covers are
  /// bitwise-equal to Backend::Sequential on the sequential routing
  /// domain (which includes every n below the model's floor) and to
  /// Backend::Native on the native one. The Service / batch default.
  Adaptive,
};

[[nodiscard]] const char* to_string(Backend b);
[[nodiscard]] std::optional<Backend> backend_from_string(std::string_view s);

struct CostModel;  // core/adaptive.hpp

/// Machine/engine tuning knobs a backend receives. Backends ignore the
/// fields that do not apply to them (Sequential ignores everything).
struct BackendConfig {
  /// Physical worker threads for the PRAM machine (1 = inline). For
  /// Backend::Native, 0 selects hardware concurrency.
  std::size_t workers = 1;
  /// Virtual processor budget; 0 selects the paper's n / log2(n).
  std::size_t processors = 0;
  /// Access discipline the machine enforces.
  pram::Policy policy = pram::Policy::EREW;
  /// Pipeline knobs (rank engine, repair round cap) for PRAM backends.
  PipelineOptions pipeline{};
  /// Collect a PipelineTrace where the engine supports one.
  bool collect_trace = false;
  /// Routing model for Backend::Adaptive; nullptr = the process-wide
  /// calibrated default (CostModel::calibrated()). Tests inject a model to
  /// force a route. Must outlive the solve.
  const CostModel* cost_model = nullptr;
  /// Cooperative cancellation token (util/cancel.hpp); nullptr = never
  /// cancelled. Borrowed — must outlive the solve. Engines that honor it
  /// (Sequential routes check it once up front; Native checkpoints every
  /// parallel phase) unwind with util::CancelledError when it trips.
  util::CancelToken* cancel = nullptr;
};

/// What a backend hands back: always a cover; machine stats and a stage
/// trace when the engine ran on a PRAM machine / through the pipeline.
struct BackendOutput {
  PathCover cover;
  pram::Stats stats{};
  PipelineTrace trace{};
  /// True iff `stats` reflects a real machine run.
  bool used_pram = false;
  /// True iff `trace` was populated.
  bool traced = false;
  /// The engine that actually ran, when the backend dispatches (set by
  /// Backend::Adaptive); empty for backends that are their own engine.
  std::optional<Backend> routed;
};

using BackendFn =
    std::function<BackendOutput(const cograph::Cotree&, const BackendConfig&)>;

/// Process-wide backend table. add/find/registered are mutex-guarded, and
/// find hands out shared ownership of an immutable Entry, so registering
/// (or replacing) an engine concurrently with running solvers is safe: a
/// backend mid-execution keeps its Entry alive even after replacement.
class BackendRegistry {
 public:
  struct Entry {
    Backend id;
    std::string name;
    BackendFn fn;
    /// False for heuristics whose cover may exceed the minimum (Greedy).
    bool exact = true;
  };
  using EntryPtr = std::shared_ptr<const Entry>;

  static BackendRegistry& instance();

  /// Registers (or replaces) a backend.
  void add(Backend id, std::string name, BackendFn fn, bool exact = true);

  /// nullptr when the id is not registered.
  [[nodiscard]] EntryPtr find(Backend id) const;
  [[nodiscard]] EntryPtr find(std::string_view name) const;

  /// Registered ids, in registration order.
  [[nodiscard]] std::vector<Backend> registered() const;

 private:
  BackendRegistry();
  mutable std::mutex mu_;
  std::vector<EntryPtr> entries_;
};

/// The paper's processor budget: max(1, n / log2(n)).
[[nodiscard]] std::size_t paper_processors(std::size_t n);

/// True for the built-in engines that execute on a pram::Machine (and so
/// report meaningful pram::Stats).
[[nodiscard]] bool uses_pram_machine(Backend b);

/// True for the built-in engines that execute on exec::Native. Their stats
/// count phases, not the simulator's cost model (stats_valid stays false).
[[nodiscard]] bool uses_native_executor(Backend b);

/// True for the built-in engines that may spawn their own worker threads
/// (Native, and Adaptive's native route). Batch front-ends give exactly
/// these backends a per-request thread budget instead of forcing inline
/// execution — for Adaptive the budget doubles as the cost model's batch
/// pressure signal.
[[nodiscard]] bool may_use_native_threads(Backend b);

/// exec::Native configuration a Native backend derives from `cfg`
/// (workers == 0 resolves to hardware concurrency; the processor budget
/// defaults to one block per worker — no instance-size tuning).
[[nodiscard]] exec::Native::Config native_config(const BackendConfig& cfg);

/// Applies per-backend fixed contracts to a config: Backend::Parallel pins
/// the historical EREW + paper-budget machine whatever the caller asked
/// for. Other backends pass through unchanged. Used by both the solve and
/// count paths so the contracts cannot drift apart.
[[nodiscard]] BackendConfig apply_backend_contract(Backend b,
                                                   BackendConfig cfg);

/// Machine configuration a PRAM backend derives from `cfg` for an n-vertex
/// instance (resolves processors == 0 to the paper budget).
[[nodiscard]] pram::Machine::Config machine_config(std::size_t n,
                                                   const BackendConfig& cfg);

/// Substrate micro-probe used by the simulator benchmarks (E7): runs a
/// work-optimal exclusive scan of `n` ones on a machine built from `cfg`
/// and reports the simulated cost plus wall time. Lives behind the facade
/// so benches never wire up pram::Machine themselves.
struct ScanProbeResult {
  pram::Stats stats{};
  double wall_ms = 0.0;
  std::int64_t checksum = 0;  // last prefix = n - 1
};
[[nodiscard]] ScanProbeResult probe_scan_substrate(std::size_t n,
                                                   const BackendConfig& cfg);

/// The same scan probe on exec::Native (workers == 0 = hardware
/// concurrency). stats count phases; wall_ms is the point.
[[nodiscard]] ScanProbeResult probe_scan_native(std::size_t n,
                                                std::size_t workers = 0);

}  // namespace copath::core
