#include "core/brackets.hpp"

#include <sstream>

namespace copath::core {

namespace {

constexpr std::int8_t kSlotP = 0;
constexpr std::int8_t kSlotL = 1;
constexpr std::int8_t kSlotR = 2;

}  // namespace

std::string BracketStream::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < length(); ++i) {
    if (i) os << ' ';
    char c = '?';
    if (sq_sign[i] > 0) c = '[';
    if (sq_sign[i] < 0) c = ']';
    if (rd_sign[i] > 0) c = '(';
    if (rd_sign[i] < 0) c = ')';
    os << c << vert[i]
       << (slot[i] == kSlotP ? 'p' : slot[i] == kSlotL ? 'l' : 'r');
  }
  return os.str();
}

BracketStream generate_brackets_host(
    const cograph::BinarizedCotree& bc,
    const std::vector<std::int64_t>& leaf_count,
    const std::vector<std::int64_t>& p) {
  const std::size_t bn = bc.size();
  COPATH_CHECK(leaf_count.size() == bn && p.size() == bn);
  BracketStream out;
  out.real_count = bc.leaf_of_vertex.size();
  out.role.assign(out.real_count, Role::Primary);
  out.owner.assign(out.real_count, -1);

  const auto push = [&](std::int8_t sq, std::int8_t rd, std::int8_t slot,
                        std::int32_t id) {
    out.sq_sign.push_back(sq);
    out.rd_sign.push_back(rd);
    out.slot.push_back(slot);
    out.vert.push_back(id);
  };

  // Collect the vertices of a (flattened) subtree in left-to-right order.
  const auto subtree_vertices = [&](std::int32_t root) {
    std::vector<std::int32_t> verts;
    std::vector<std::int32_t> stack{root};
    while (!stack.empty()) {
      const std::int32_t v = stack.back();
      stack.pop_back();
      const auto vu = static_cast<std::size_t>(v);
      if (bc.tree.left[vu] == -1) {
        verts.push_back(bc.vertex[vu]);
        continue;
      }
      stack.push_back(bc.tree.right[vu]);
      stack.push_back(bc.tree.left[vu]);
    }
    return verts;
  };

  // Skeleton walk (iterative): emit(v) = leaf block | emit(l)·emit(r) for
  // 0-nodes | emit(l)·bundle(v) for 1-nodes. A 1-node pushes the marker
  // ~v so its bundle is emitted right after its left subtree.
  std::vector<std::int32_t> dummy_owner;  // growing, per dummy id
  std::vector<std::int32_t> stack{bc.tree.root};
  while (!stack.empty()) {
    const std::int32_t item = stack.back();
    stack.pop_back();
    if (item < 0) {
      // Bundle of 1-node v = ~item.
      const std::int32_t v = ~item;
      const auto vu = static_cast<std::size_t>(v);
      const std::int32_t rc = bc.tree.right[vu];
      const std::int64_t lw = leaf_count[static_cast<std::size_t>(rc)];
      const std::int64_t pv = p[static_cast<std::size_t>(bc.tree.left[vu])];
      const auto w = subtree_vertices(rc);
      COPATH_CHECK(static_cast<std::int64_t>(w.size()) == lw);
      const std::int64_t bridges = pv > lw ? lw : pv - 1;
      for (std::int64_t i = 0; i < bridges; ++i) {
        const std::int32_t s = w[static_cast<std::size_t>(i)];
        out.role[static_cast<std::size_t>(s)] = Role::Bridge;
        out.owner[static_cast<std::size_t>(s)] = v;
        push(-1, 0, kSlotR, s);
        push(-1, 0, kSlotL, s);
        push(+1, 0, kSlotP, s);
      }
      if (pv > lw) continue;  // Case 1: bridges only
      // Case 2: inserts t_pv..t_lw and 2 p(v)-2 dummies.
      const std::int64_t inserts = lw - pv + 1;
      const std::int64_t dummies = 2 * pv - 2;
      const auto dummy_base =
          static_cast<std::int32_t>(out.real_count + dummy_owner.size());
      for (std::int64_t i = 0; i < dummies; ++i) dummy_owner.push_back(v);
      for (std::int64_t i = 0; i < inserts; ++i) {
        const std::int32_t tv = w[static_cast<std::size_t>(bridges + i)];
        out.role[static_cast<std::size_t>(tv)] = Role::Insert;
        out.owner[static_cast<std::size_t>(tv)] = v;
        push(0, -1, kSlotP, tv);
      }
      for (std::int64_t i = 0; i < dummies; ++i)
        push(0, -1, kSlotP, dummy_base + static_cast<std::int32_t>(i));
      for (std::int64_t i = 0; i < dummies; ++i)
        push(0, +1, kSlotR, dummy_base + static_cast<std::int32_t>(i));
      for (std::int64_t i = 0; i < inserts; ++i) {
        const std::int32_t tv = w[static_cast<std::size_t>(bridges + i)];
        push(0, +1, kSlotL, tv);
        push(0, +1, kSlotR, tv);
      }
      continue;
    }
    const auto vu = static_cast<std::size_t>(item);
    if (bc.tree.left[vu] == -1) {
      const std::int32_t id = bc.vertex[vu];
      push(+1, 0, kSlotP, id);
      push(0, +1, kSlotL, id);
      push(0, +1, kSlotR, id);
      continue;
    }
    const std::int32_t lc = bc.tree.left[vu];
    const std::int32_t rc = bc.tree.right[vu];
    if (!bc.is_join[vu]) {
      stack.push_back(rc);
      stack.push_back(lc);
    } else {
      stack.push_back(~item);
      stack.push_back(lc);
    }
  }

  out.dummy_count = dummy_owner.size();
  out.role.resize(out.id_count(), Role::Dummy);
  out.owner.resize(out.id_count(), -1);
  for (std::size_t i = 0; i < dummy_owner.size(); ++i)
    out.owner[out.real_count + i] = dummy_owner[i];
  return out;
}

}  // namespace copath::core
