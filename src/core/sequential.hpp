// The sequential O(n) minimum path cover algorithm of Lin, Olariu & Pruesse
// (paper Lemma 2.3) — copath's reference implementation and baseline.
//
// One bottom-up sweep over the leftist binarized cotree maintaining, per
// node, a linked list of vertex-disjoint paths (intrusive next/prev arrays,
// so splicing is O(1)):
//   * 0-node: concatenate the children's covers.
//   * 1-node, Case 1 (p(v) > L(w)): the L(w) vertices of G(w) bridge
//     L(w)+1 of G(v)'s paths into one.
//   * 1-node, Case 2 (p(v) <= L(w)): p(v)-1 vertices bridge all paths into
//     one; the remaining L(w)-p(v)+1 vertices are inserted between
//     consecutive G(v)-vertices (never next to a bridge vertex), yielding a
//     Hamiltonian path.
// Work at a 1-node is O(L(w)), and the L(w) are disjoint, so the sweep is
// O(n) overall.
//
// Every overload runs the same sweep over a BinView with scratch carved
// from an exec::Arena (the calling thread's arena unless one is passed),
// so covers are bitwise-identical across them and a warm serving thread
// sweeps without heap allocations beyond the returned PathCover.
#pragma once

#include <span>

#include "cograph/binarize.hpp"
#include "cograph/cotree.hpp"
#include "core/path_cover.hpp"
#include "exec/arena.hpp"

namespace copath::core {

/// Minimum path cover in O(n) sequential time (Lemma 2.3).
PathCover min_path_cover_sequential(const cograph::Cotree& t);

/// Same, on an already-prepared leftist binarized cotree (used by benches
/// that want to time the sweep alone).
PathCover min_path_cover_sequential(
    const cograph::BinarizedCotree& bc,
    const std::vector<std::int64_t>& leaf_count);

/// The storage-agnostic core: sweep over any leftist binarized view with
/// scratch from `arena` (the express-lane entry point).
PathCover min_path_cover_sequential(const cograph::BinView& bc,
                                    std::span<const std::int64_t> leaf_count,
                                    exec::Arena& arena);

}  // namespace copath::core
