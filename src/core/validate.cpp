#include <sstream>

#include "core/count.hpp"
#include "core/path_cover.hpp"

namespace copath::core {

ValidationReport validate_path_cover(const cograph::Cotree& t,
                                     const PathCover& cover,
                                     bool require_minimum) {
  ValidationReport rep;
  const std::size_t n = t.vertex_count();
  std::vector<std::uint8_t> seen(n, 0);
  std::size_t total = 0;
  for (const auto& path : cover.paths) {
    if (path.empty()) {
      rep.error = "empty path in cover";
      return rep;
    }
    for (const VertexId v : path) {
      if (v < 0 || static_cast<std::size_t>(v) >= n) {
        std::ostringstream os;
        os << "vertex " << v << " out of range";
        rep.error = os.str();
        return rep;
      }
      if (seen[static_cast<std::size_t>(v)]++) {
        std::ostringstream os;
        os << "vertex " << v << " covered twice";
        rep.error = os.str();
        return rep;
      }
      ++total;
    }
  }
  if (total != n) {
    std::ostringstream os;
    os << "cover touches " << total << " of " << n << " vertices";
    rep.error = os.str();
    return rep;
  }
  // Edge validity straight from the cotree (property (6)); no reliance on
  // the algorithm under test.
  const cograph::CotreeAdjacency adj(t);
  for (std::size_t pi = 0; pi < cover.paths.size(); ++pi) {
    const auto& path = cover.paths[pi];
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      if (!adj.adjacent(path[i], path[i + 1])) {
        std::ostringstream os;
        os << "path " << pi << ": vertices " << path[i] << " and "
           << path[i + 1] << " are not adjacent in the cograph";
        rep.error = os.str();
        return rep;
      }
    }
  }
  if (require_minimum) {
    const std::int64_t want = path_cover_size(t);
    if (static_cast<std::int64_t>(cover.paths.size()) != want) {
      std::ostringstream os;
      os << "cover has " << cover.paths.size() << " paths, minimum is "
         << want;
      rep.error = os.str();
      return rep;
    }
  }
  rep.ok = true;
  return rep;
}

}  // namespace copath::core
