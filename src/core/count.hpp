// Counting the minimum path cover (paper §2, Lemma 2.4).
//
// The recurrence over the leftist binarized cotree:
//   p(leaf)   = 1
//   p(0-node) = p(left) + p(right)
//   p(1-node) = max(p(left) - L(right), 1)
// where L(x) is the number of descendant leaves.
//
// Host version: one post-order sweep (O(n)). PRAM version: binary tree
// contraction over the max-plus affine function family f(x) = max(x + a, b),
// which is closed under composition — O(log n) steps, O(n) work, EREW. This
// is exactly how Lin et al. [18] obtain Lemma 2.4.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cograph/binarize.hpp"
#include "cograph/cotree.hpp"
#include "exec/arena.hpp"
#include "par/contraction.hpp"
#include "pram/machine.hpp"

namespace copath::core {

/// Max-plus affine functions f(x) = max(x + a, b); the tree contraction
/// policy evaluating the p(u) recurrence (see par/contraction.hpp for the
/// policy contract).
struct PathCountPolicy {
  using Value = std::int64_t;
  struct Func {
    std::int64_t a;
    std::int64_t b;
  };
  struct NodeOp {
    std::uint8_t is_join;
    std::int64_t l_right;  // L(right child), fixed before contraction
  };

  static constexpr std::int64_t neg_inf() { return INT64_MIN / 4; }
  static std::int64_t sat_add(std::int64_t u, std::int64_t v) {
    return (u <= neg_inf() / 2 || v <= neg_inf() / 2) ? neg_inf() : u + v;
  }

  static Func identity() { return {0, neg_inf()}; }
  static Func compose(Func outer, Func inner) {
    // outer(inner(x)) = max(max(x + ai, bi) + ao, bo)
    //                 = max(x + ai + ao, max(bi + ao, bo)).
    return {sat_add(inner.a, outer.a),
            std::max(sat_add(inner.b, outer.a), outer.b)};
  }
  static Value apply(Func f, Value x) {
    return std::max(sat_add(x, f.a), f.b);
  }
  static Func partial_left(NodeOp op, Value left) {
    if (!op.is_join) return {left, neg_inf()};  // y -> y + left
    // Join ignores its right argument: constant function.
    return {neg_inf(), std::max<std::int64_t>(left - op.l_right, 1)};
  }
  static Func partial_right(NodeOp op, Value right) {
    if (!op.is_join) return {right, neg_inf()};  // x -> x + right
    return {-op.l_right, 1};  // x -> max(x - L(right), 1)
  }
  static Value full(NodeOp op, Value l, Value r) {
    if (!op.is_join) return l + r;
    (void)r;
    return std::max<std::int64_t>(l - op.l_right, 1);
  }
};

/// Host evaluation of p(u) for every node of a leftist binarized cotree.
/// `leaf_count` is the output of cograph::make_leftist.
std::vector<std::int64_t> path_counts_host(
    const cograph::BinarizedCotree& bc,
    const std::vector<std::int64_t>& leaf_count);

/// The §1 corollary verdicts evaluated in ONE host p-sweep over a leftist
/// binarized view (scratch from `arena`): the minimum cover size, the
/// Hamiltonian-path verdict (p(root) == 1) and the Hamiltonian-cycle
/// verdict (n >= 3 and the root split join(V, W) has p(V) <= L(W) — the
/// same test core/hamiltonian.cpp performs). The express lane uses this to
/// compute every verdict from the binarized tree it already built, where
/// the generic Solver path re-binarizes per verdict.
struct CountVerdicts {
  std::int64_t cover_size = 0;
  bool hamiltonian_path = false;
  bool hamiltonian_cycle = false;
};
CountVerdicts count_verdicts(const cograph::BinView& bc,
                             std::span<const std::int64_t> leaf_count,
                             exec::Arena& arena);

/// Executor evaluation (Lemma 2.4) — tree contraction over the max-plus
/// affine family on any executor: O(log n) steps, O(n) work, EREW on the
/// checked simulator; memory-speed on exec::Native.
template <typename E>
std::vector<std::int64_t> path_counts_exec(
    E& m, const cograph::BinarizedCotree& bc,
    const std::vector<std::int64_t>& leaf_count) {
  const std::size_t n = bc.size();
  COPATH_CHECK(leaf_count.size() == n);
  std::vector<std::int64_t> leaf_value(n, 1);
  std::vector<PathCountPolicy::NodeOp> ops(n, {0, 0});
  for (std::size_t v = 0; v < n; ++v) {
    if (bc.tree.left[v] == -1) continue;
    ops[v].is_join = bc.is_join[v];
    ops[v].l_right =
        leaf_count[static_cast<std::size_t>(bc.tree.right[v])];
  }
  return par::tree_contract_eval<PathCountPolicy>(m, bc.tree, leaf_value,
                                                  ops);
}

/// PRAM evaluation (Lemma 2.4): the checked-simulator instantiation of
/// path_counts_exec.
std::vector<std::int64_t> path_counts_pram(
    pram::Machine& m, const cograph::BinarizedCotree& bc,
    const std::vector<std::int64_t>& leaf_count);

/// Convenience: the minimum path cover size of the cograph (host path).
std::int64_t path_cover_size(const cograph::Cotree& t);

/// Convenience: true iff the cograph has a Hamiltonian path.
bool has_hamiltonian_path(const cograph::Cotree& t);

}  // namespace copath::core
