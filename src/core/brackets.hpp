// Bracket-sequence machinery of the paper's §4.
//
// Every vertex contributes up to three bracket slots:
//   p — the slot seeking the vertex's *parent* in its path tree,
//   l/r — the slots seeking a left/right *child*.
// Primary vertices emit "[ ( (" (square-open parent slot, two round-open
// child slots); bridge vertices of a 1-node emit "] ] [" (two square-close
// child slots, square-open parent slot); insert and dummy vertices emit
// round brackets ( ")" parent slot, "(" child slots — both for inserts,
// right-only for dummies). Matching the square system and the round system
// independently (stack semantics) yields the pseudo path trees; see Figs
// 10–12.
//
// The BracketStream is the common currency between the host reference
// pipeline and the PRAM pipeline, which lets the tests compare the two
// implementations bracket-for-bracket.
#pragma once

#include <cstdint>
#include <vector>

#include "cograph/binarize.hpp"
#include "cograph/cotree.hpp"

namespace copath::core {

enum class Role : std::uint8_t { Primary, Bridge, Insert, Dummy };

struct BracketStream {
  // Per bracket position (parallel arrays):
  std::vector<std::int8_t> sq_sign;  // +1 "[", -1 "]", 0 not square
  std::vector<std::int8_t> rd_sign;  // +1 "(", -1 ")", 0 not round
  std::vector<std::int8_t> slot;     // 0 = p, 1 = l, 2 = r
  std::vector<std::int32_t> vert;    // vertex id (dummies get ids >= n)

  // Per id in [0, real_count + dummy_count):
  std::vector<Role> role;
  std::vector<std::int32_t> owner;  // owning 1-node (binarized node id) for
                                    // bridge/insert/dummy; -1 for primary

  std::size_t real_count = 0;
  std::size_t dummy_count = 0;

  [[nodiscard]] std::size_t length() const { return sq_sign.size(); }
  [[nodiscard]] std::size_t id_count() const {
    return real_count + dummy_count;
  }

  /// Debug rendering, e.g. "[a (a (a )b (b (b ..." (paper notation).
  [[nodiscard]] std::string to_string() const;
};

/// Host (sequential) bracket generation over the leftist binarized cotree:
/// the recursive definition of B(R) from §4, dummies included. `leaf_count`
/// and `p` index binarized nodes.
BracketStream generate_brackets_host(const cograph::BinarizedCotree& bc,
                                     const std::vector<std::int64_t>& leaf_count,
                                     const std::vector<std::int64_t>& p);

}  // namespace copath::core
