// The lower-bound rig of Theorem 2.2 (Fig 2).
//
// From an n-bit input b we build the cotree with root R (0-node) holding x
// and all a_i with b_i = 0, and a 1-node child u holding y, z and all a_i
// with b_i = 1. The cograph's minimum path cover then has
// (#zero bits) + 2 paths, so OR(b) = 1 iff the count is < n + 2 — reducing
// OR (which Cook–Dwork–Reischuk proved needs Ω(log n) CREW steps) to path
// cover counting. The construction itself takes O(1) PRAM steps, which the
// bench demonstrates; together with the O(log n) upper bound of the main
// algorithm this reproduces the paper's tightness argument.
#pragma once

#include <cstdint>
#include <vector>

#include "cograph/cotree.hpp"
#include "pram/machine.hpp"

namespace copath::core {

struct OrReductionResult {
  bool or_value = false;
  std::int64_t path_cover_size = 0;
  /// Steps spent building the cotree arrays (the paper: O(1)).
  std::uint64_t construction_steps = 0;
  /// Steps spent counting the minimum path cover (the paper: O(log n)).
  std::uint64_t count_steps = 0;
};

/// Answers OR(bits) through the path cover reduction, on the machine.
OrReductionResult or_via_path_cover(pram::Machine& m,
                                    const std::vector<std::uint8_t>& bits);

/// Machine construction knobs for the self-contained overload below.
struct OrReductionOptions {
  pram::Policy policy = pram::Policy::Unchecked;
  std::size_t workers = 1;
  /// Virtual processors; 0 = one per element (maximal parallelism), the
  /// unbounded-processor setting of Theorem 2.2.
  std::size_t processors = 0;
};

/// Self-contained overload: builds the machine internally so callers
/// (benches, examples) never wire up pram::Machine themselves.
OrReductionResult or_via_path_cover(const std::vector<std::uint8_t>& bits,
                                    const OrReductionOptions& opt = {});

}  // namespace copath::core
