// The lower-bound rig of Theorem 2.2 (Fig 2).
//
// From an n-bit input b we build the cotree with root R (0-node) holding x
// and all a_i with b_i = 0, and a 1-node child u holding y, z and all a_i
// with b_i = 1. The cograph's minimum path cover then has
// (#zero bits) + 2 paths, so OR(b) = 1 iff the count is < n + 2 — reducing
// OR (which Cook–Dwork–Reischuk proved needs Ω(log n) CREW steps) to path
// cover counting. The construction itself takes O(1) PRAM steps, which the
// bench demonstrates; together with the O(log n) upper bound of the main
// algorithm this reproduces the paper's tightness argument.
//
// The reduction is an executor program (exec/exec.hpp):
// or_via_path_cover_exec runs on any executor; the pram::Machine overload
// below is its checked-simulator instantiation (step counts = the paper's
// accounting), and OrReductionOptions::native selects the production
// executor in the self-contained overload.
#pragma once

#include <cstdint>
#include <vector>

#include "cograph/binarize.hpp"
#include "cograph/cotree.hpp"
#include "core/count.hpp"
#include "exec/exec.hpp"
#include "pram/machine.hpp"

namespace copath::core {

struct OrReductionResult {
  bool or_value = false;
  std::int64_t path_cover_size = 0;
  /// Steps spent building the cotree arrays (the paper: O(1)).
  std::uint64_t construction_steps = 0;
  /// Steps spent counting the minimum path cover (the paper: O(log n)).
  std::uint64_t count_steps = 0;
};

/// Answers OR(bits) through the path cover reduction, on any executor.
template <typename E>
OrReductionResult or_via_path_cover_exec(
    E& m, const std::vector<std::uint8_t>& bits) {
  const std::size_t n = bits.size();
  OrReductionResult res;

  // O(1)-step construction: every processor writes the kind and parent of
  // its own leaf (parent-pointer representation, exactly as in §2).
  const std::uint64_t steps_before = m.stats().steps;
  constexpr std::int32_t kR = 0;
  constexpr std::int32_t kU = 1;
  const std::size_t nodes = n + 5;  // R, u, x, y, z, a_1..a_n
  // kind: 0 leaf, 1 union, 2 join
  auto kind = exec::make_array<std::uint8_t>(m, nodes, std::uint8_t{0});
  auto parent = exec::make_array<std::int32_t>(m, nodes, std::int32_t{-1});
  auto bit_arr =
      exec::make_array<std::uint8_t>(m, std::vector<std::uint8_t>(bits));
  m.pfor(nodes, [&](auto& c, std::size_t i) {
    if (i == kR) {
      kind.put(c, i, 1);
      parent.put(c, i, -1);
    } else if (i == kU) {
      kind.put(c, i, 2);
      parent.put(c, i, kR);
    } else if (i == 2) {
      parent.put(c, i, kR);  // x
    } else if (i == 3 || i == 4) {
      parent.put(c, i, kU);  // y, z
    } else {
      parent.put(c, i, bit_arr.get(c, i - 5) ? kU : kR);  // a_i
    }
  });
  res.construction_steps = m.stats().steps - steps_before;

  // Assemble the Cotree object (host representation hand-off) and count.
  std::vector<cograph::NodeKind> kinds(nodes);
  std::vector<cograph::NodeId> parents(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    kinds[i] = kind.host(i) == 0   ? cograph::NodeKind::Leaf
               : kind.host(i) == 1 ? cograph::NodeKind::Union
                                   : cograph::NodeKind::Join;
    parents[i] = parent.host(i);
  }
  const cograph::Cotree t =
      cograph::Cotree::from_parts(std::move(kinds), std::move(parents), kR);

  const std::uint64_t steps_count0 = m.stats().steps;
  auto bc = cograph::binarize(t);
  const auto leaf_count = cograph::make_leftist(bc);
  const auto p = path_counts_exec(m, bc, leaf_count);
  res.count_steps = m.stats().steps - steps_count0;
  res.path_cover_size = p[static_cast<std::size_t>(bc.tree.root)];
  res.or_value =
      res.path_cover_size < static_cast<std::int64_t>(n) + 2;
  return res;
}

/// Answers OR(bits) through the path cover reduction, on the machine.
OrReductionResult or_via_path_cover(pram::Machine& m,
                                    const std::vector<std::uint8_t>& bits);

/// Machine construction knobs for the self-contained overload below.
struct OrReductionOptions {
  pram::Policy policy = pram::Policy::Unchecked;
  std::size_t workers = 1;
  /// Virtual processors; 0 = one per element (maximal parallelism), the
  /// unbounded-processor setting of Theorem 2.2.
  std::size_t processors = 0;
  /// Run on exec::Native instead of the simulator (step counts then count
  /// phases, not the paper's accounting).
  bool native = false;
};

/// Self-contained overload: builds the executor internally so callers
/// (benches, examples) never wire up a machine themselves.
OrReductionResult or_via_path_cover(const std::vector<std::uint8_t>& bits,
                                    const OrReductionOptions& opt = {});

}  // namespace copath::core
