// The cost model behind Backend::Adaptive (core/backend.*): a small
// calibrated predictor that routes each solve between the O(n) sequential
// sweep (Lemma 2.3) and the native parallel pipeline (Theorem 5.3 on
// exec::Native), as a function of the request size, the instance shape,
// and the threads actually available to this solve — which is how batch
// pressure enters: Solver::solve_batch and copath::Service hand every
// request a per-request thread budget, and a saturated host (budget 1)
// makes the sequential sweep the only winner at any size.
//
// The model is deliberately coarse — two slopes, a fixed cost, a scaling
// efficiency, and a shape correction — because the decision it feeds is
// binary and the two engines are ~an order of magnitude apart at every
// realistic operating point; DESIGN.md §7 documents the calibration
// procedure (bench_adaptive sweeps both engines and the crossover is where
// the fitted lines intersect).
//
// Routing floor: below `min_native_n` the model unconditionally routes
// Sequential regardless of threads. This is a *semantic* floor, not a
// performance one — Backend::Adaptive promises covers bitwise-equal to
// Backend::Sequential on its sequential routing domain, and the floor
// makes that domain machine-independent for every instance size the
// differential suites sweep (the two engines produce different — equally
// minimum — vertex orders, so the promise cannot extend across a routing
// flip; see DESIGN.md §7).
#pragma once

#include <cstddef>

#include "core/backend.hpp"
#include "exec/native.hpp"

namespace copath::core {

struct CostModel {
  /// Sequential sweep slope: ns per vertex (host, allocation-light).
  /// Measured 99 (caterpillar) .. 207 (random, n = 2^20) on the
  /// calibration host; the default sits at the serving-mix middle.
  double seq_ns_per_vertex = 150.0;
  /// Native pipeline slope on one worker thread, ns per vertex (with the
  /// scratch arena and the host shortcuts engaged). Measured 1174
  /// (caterpillar) .. 1657 (random) at n = 2^20.
  double native_ns_per_vertex = 1200.0;
  /// Per-solve fixed cost of the native route (pool setup, phase
  /// dispatch, Euler/forest rebuilds), ns.
  double native_fixed_ns = 100000.0;
  /// Marginal scaling efficiency per extra worker: speedup(w) =
  /// 1 + efficiency * (w - 1). Memory-bound phases keep this well below
  /// 1; the default is an estimate pending multi-socket measurement (the
  /// calibration host is single-core), chosen so the crossover lands
  /// around 16 workers at n = 2^20.
  double parallel_efficiency = 0.55;
  /// Shape correction on the native route: leaf-heavy (bushy) cotrees
  /// run closer to the pipeline's worst case — more Case-2 joins, hence
  /// dummies and repair rounds — while join chains (caterpillars) are
  /// pure Case 1. Applied as (1 + spread * (1 - internal_share)),
  /// internal_share = internal cotree nodes / vertices; the measured
  /// spread between the two bench families is ~1.4x. Biases bushy
  /// instances toward Sequential — the safe route.
  double shape_spread = 0.4;
  /// Below this vertex count the route is Sequential unconditionally (the
  /// bitwise-equality floor; see the header comment).
  std::size_t min_native_n = std::size_t{1} << 14;
  /// Per-primitive sequential cutoffs handed to exec::Native when the
  /// native route is taken — the per-stage half of the dispatch: even a
  /// natively-routed solve drops each primitive below its grain back to a
  /// one-pass host loop.
  exec::Native::Grains grains{};
  /// Scratch capacity a solving thread's arena may retain between native
  /// solves; above it the arena is trimmed after the solve (one outsized
  /// request must not pin its working set on a Service worker forever).
  /// The native working set is roughly 60 * n bytes across ~a dozen pow2
  /// classes, so the default keeps n up to ~2^21 warm.
  std::uint64_t arena_retain_bytes = std::uint64_t{256} << 20;

  [[nodiscard]] double predict_sequential_ms(std::size_t n) const {
    return seq_ns_per_vertex * static_cast<double>(n) * 1e-6;
  }

  [[nodiscard]] double predict_native_ms(std::size_t n,
                                         std::size_t internal_nodes,
                                         std::size_t workers) const {
    const double w = workers < 1 ? 1.0 : static_cast<double>(workers);
    const double speedup = 1.0 + parallel_efficiency * (w - 1.0);
    double share =
        n == 0 ? 0.0
               : static_cast<double>(internal_nodes) / static_cast<double>(n);
    if (share > 1.0) share = 1.0;
    const double shape = 1.0 + shape_spread * (1.0 - share);
    return (native_fixed_ns +
            native_ns_per_vertex * static_cast<double>(n) * shape / speedup) *
           1e-6;
  }

  /// The whole-solve route for an n-vertex instance with `internal_nodes`
  /// internal cotree nodes and `workers` threads available (0 = hardware
  /// concurrency, resolved by the caller). Returns Backend::Sequential or
  /// Backend::Native.
  [[nodiscard]] Backend choose(std::size_t n, std::size_t internal_nodes,
                               std::size_t workers) const;

  /// The process-wide default (constants measured on the calibration
  /// host; see DESIGN.md §7 for re-calibrating).
  [[nodiscard]] static const CostModel& calibrated();
};

}  // namespace copath::core
