#include "core/forest.hpp"

#include <algorithm>
#include <unordered_map>

namespace copath::core {

namespace {

constexpr std::int8_t kSlotP = 0;
constexpr std::int8_t kSlotL = 1;

void set_child(PathForest& f, std::int32_t parent, std::int8_t side,
               std::int32_t child) {
  if (side == 0) {
    f.left[static_cast<std::size_t>(parent)] = child;
  } else {
    f.right[static_cast<std::size_t>(parent)] = child;
  }
}

/// Iterative inorder of the tree rooted at `r`; appends ids to `out`.
void inorder(const PathForest& f, std::int32_t r,
             std::vector<std::int32_t>& out) {
  std::int32_t cur = r;
  std::vector<std::int32_t> stack;
  while (cur != -1 || !stack.empty()) {
    while (cur != -1) {
      stack.push_back(cur);
      cur = f.left[static_cast<std::size_t>(cur)];
    }
    cur = stack.back();
    stack.pop_back();
    out.push_back(cur);
    cur = f.right[static_cast<std::size_t>(cur)];
  }
}

}  // namespace

PathForest build_forest(const BracketStream& bs,
                        const std::vector<std::int64_t>& sq_match,
                        const std::vector<std::int64_t>& rd_match) {
  const std::size_t ids = bs.id_count();
  PathForest f;
  f.parent.assign(ids, -1);
  f.left.assign(ids, -1);
  f.right.assign(ids, -1);
  f.side.assign(ids, 0);
  const std::size_t len = bs.length();
  COPATH_CHECK(sq_match.size() == len && rd_match.size() == len);
  for (std::size_t i = 0; i < len; ++i) {
    // Square matches: child's "[" (p slot) with parent's "]" (l/r slot).
    if (bs.sq_sign[i] > 0) {
      COPATH_CHECK(bs.slot[i] == kSlotP);
      const std::int64_t j = sq_match[i];
      if (j < 0) {
        f.roots.push_back(bs.vert[i]);  // unmatched "[" = path tree root
        continue;
      }
      const auto child = static_cast<std::size_t>(bs.vert[i]);
      const std::int32_t par = bs.vert[static_cast<std::size_t>(j)];
      const std::int8_t side =
          bs.slot[static_cast<std::size_t>(j)] == kSlotL ? 0 : 1;
      f.parent[child] = par;
      f.side[child] = side;
      set_child(f, par, side, static_cast<std::int32_t>(child));
      continue;
    }
    // Round matches: parent's "(" (l/r slot) with child's ")" (p slot).
    if (bs.rd_sign[i] > 0) {
      const std::int64_t j = rd_match[i];
      if (j < 0) continue;  // childless slot
      const std::int32_t par = bs.vert[i];
      const auto child =
          static_cast<std::size_t>(bs.vert[static_cast<std::size_t>(j)]);
      const std::int8_t side = bs.slot[i] == kSlotL ? 0 : 1;
      f.parent[child] = par;
      f.side[child] = side;
      set_child(f, par, side, static_cast<std::int32_t>(child));
    }
  }
  return f;
}

std::size_t mark_illegal(const PathForest& f, const BracketStream& bs,
                         const cograph::Cotree& t,
                         const cograph::CotreeAdjacency& adj,
                         std::vector<std::uint8_t>& illegal,
                         std::vector<std::uint8_t>& legal_dummy) {
  COPATH_CHECK(illegal.size() == bs.id_count());
  COPATH_CHECK(legal_dummy.size() == bs.id_count());
  std::fill(illegal.begin(), illegal.end(), 0);
  std::fill(legal_dummy.begin(), legal_dummy.end(), 0);

  // Representative w-side vertex per owner 1-node (the adjacency of any
  // w-subtree vertex to anything outside the subtree depends only on the
  // subtree, so one representative answers "would an insert fit here?").
  std::unordered_map<std::int32_t, VertexId> rep;
  for (std::size_t id = 0; id < bs.real_count; ++id) {
    if (bs.owner[id] != -1)
      rep.emplace(bs.owner[id], static_cast<VertexId>(id));
  }

  // "Is the (real) vertex y next to a hypothetical w-side vertex of owner
  // `own` a valid path adjacency?" For y outside the owner's w-subtree the
  // answer is the same for every w-subtree vertex, so one representative
  // suffices; inside it the adjacency depends on the concrete insert, so
  // stay conservative (the w-subtree's internal edges are never relied on).
  const auto fits = [&](std::int32_t own, std::int32_t y) {
    if (bs.owner[static_cast<std::size_t>(y)] == own) return false;
    return adj.adjacent(rep.at(own), static_cast<VertexId>(y));
  };

  std::size_t found = 0;
  std::vector<std::int32_t> seq;
  const auto is_dummy = [&](std::int32_t v) {
    return static_cast<std::size_t>(v) >= bs.real_count;
  };
  (void)t;
  for (const std::int32_t r : f.roots) {
    seq.clear();
    inorder(f, r, seq);
    // One pass tracking the previous non-dummy element and the dummies
    // pending between it and the next non-dummy element.
    std::int32_t prev_nd = -1;
    std::vector<std::int32_t> pending;
    // legality of a pending dummy's left/right skipped neighbours
    const auto settle_pending = [&](std::int32_t next_nd) {
      for (const std::int32_t d : pending) {
        const auto du = static_cast<std::size_t>(d);
        bool ok = true;
        if (prev_nd != -1 && !fits(bs.owner[du], prev_nd)) ok = false;
        if (next_nd != -1 && !fits(bs.owner[du], next_nd)) ok = false;
        legal_dummy[du] = ok ? 1 : 0;
      }
      pending.clear();
    };
    for (const std::int32_t e : seq) {
      if (is_dummy(e)) {
        pending.push_back(e);
        continue;
      }
      settle_pending(e);
      if (prev_nd != -1 &&
          !adj.adjacent(static_cast<VertexId>(prev_nd),
                        static_cast<VertexId>(e))) {
        // Invalid final-path adjacency: blame the insert(s) in the pair.
        bool blamed = false;
        for (const std::int32_t z : {prev_nd, e}) {
          const auto zu = static_cast<std::size_t>(z);
          if (bs.role[zu] == Role::Insert) {
            if (!illegal[zu]) ++found;
            illegal[zu] = 1;
            blamed = true;
          }
        }
        COPATH_CHECK_MSG(blamed, "unrepairable non-insert adjacency "
                                     << prev_nd << " -- " << e);
      }
      prev_nd = e;
    }
    settle_pending(-1);
  }
  return found;
}

std::size_t repair_forest(PathForest& f, const BracketStream& bs,
                          const cograph::Cotree& t,
                          std::size_t max_rounds) {
  std::vector<std::uint8_t> illegal(bs.id_count(), 0);
  std::vector<std::uint8_t> legal_dummy(bs.id_count(), 0);
  const cograph::CotreeAdjacency adj(t);
  std::size_t rounds = 0;
  while (true) {
    const std::size_t bad =
        mark_illegal(f, bs, t, adj, illegal, legal_dummy);
    if (bad == 0) return rounds;
    COPATH_CHECK_MSG(rounds < max_rounds,
                     "path-tree repair failed to converge after "
                         << rounds << " rounds (" << bad
                         << " illegal inserts remain)");
    ++rounds;
    // Group by owner: k-th illegal insert <-> k-th legal dummy (id order).
    std::unordered_map<std::int32_t, std::vector<std::int32_t>> ill_by_owner;
    std::unordered_map<std::int32_t, std::vector<std::int32_t>> dum_by_owner;
    for (std::size_t id = 0; id < bs.id_count(); ++id) {
      if (bs.role[id] == Role::Insert && illegal[id]) {
        ill_by_owner[bs.owner[id]].push_back(static_cast<std::int32_t>(id));
      } else if (bs.role[id] == Role::Dummy && legal_dummy[id]) {
        dum_by_owner[bs.owner[id]].push_back(static_cast<std::int32_t>(id));
      }
    }
    for (auto& [owner, inserts] : ill_by_owner) {
      auto& dummies = dum_by_owner[owner];
      COPATH_CHECK_MSG(
          dummies.size() >= inserts.size(),
          "owner " << owner << " has " << inserts.size()
                   << " illegal inserts but only " << dummies.size()
                   << " legal dummies");
      for (std::size_t k = 0; k < inserts.size(); ++k) {
        const auto x = static_cast<std::size_t>(inserts[k]);
        const auto d = static_cast<std::size_t>(dummies[k]);
        // Exchange tree positions; subtrees travel with their nodes
        // (children point at ids, so nothing else moves).
        std::swap(f.parent[x], f.parent[d]);
        std::swap(f.side[x], f.side[d]);
        COPATH_CHECK(f.parent[x] != -1 && f.parent[d] != -1);
        set_child(f, f.parent[x], f.side[x], static_cast<std::int32_t>(x));
        set_child(f, f.parent[d], f.side[d], static_cast<std::int32_t>(d));
      }
    }
  }
}

void bypass_dummies(PathForest& f, const BracketStream& bs) {
  // Dummies have at most a right child; splice maximal dummy chains.
  for (std::size_t id = bs.real_count; id < bs.id_count(); ++id) {
    const auto is_dummy = [&](std::int32_t v) {
      return v != -1 && static_cast<std::size_t>(v) >= bs.real_count;
    };
    const std::int32_t top = static_cast<std::int32_t>(id);
    if (is_dummy(f.parent[id])) continue;  // not a chain top
    COPATH_CHECK_MSG(f.parent[id] != -1, "dummy became a forest root");
    COPATH_CHECK_MSG(f.left[id] == -1, "dummy acquired a left child");
    // Walk to the chain bottom.
    std::int32_t bottom = top;
    while (is_dummy(f.right[static_cast<std::size_t>(bottom)])) {
      bottom = f.right[static_cast<std::size_t>(bottom)];
      COPATH_CHECK(f.left[static_cast<std::size_t>(bottom)] == -1);
    }
    const std::int32_t child = f.right[static_cast<std::size_t>(bottom)];
    const std::int32_t q = f.parent[static_cast<std::size_t>(top)];
    const std::int8_t side = f.side[static_cast<std::size_t>(top)];
    set_child(f, q, side, child);
    if (child != -1) {
      f.parent[static_cast<std::size_t>(child)] = q;
      f.side[static_cast<std::size_t>(child)] = side;
    }
  }
}

PathCover extract_paths(const PathForest& f, const BracketStream& bs) {
  PathCover out;
  out.paths.reserve(f.roots.size());
  std::vector<std::int32_t> seq;
  for (const std::int32_t r : f.roots) {
    seq.clear();
    inorder(f, r, seq);
    out.paths.emplace_back();
    out.paths.back().reserve(seq.size());
    for (const std::int32_t id : seq) {
      COPATH_CHECK_MSG(static_cast<std::size_t>(id) < bs.real_count,
                       "dummy survived bypass");
      out.paths.back().push_back(id);
    }
  }
  return out;
}

}  // namespace copath::core
