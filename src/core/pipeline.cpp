#include "core/pipeline.hpp"

#include "core/pipeline_exec.hpp"

namespace copath::core {

// The stage code lives in core/pipeline_exec.hpp, generic over the
// executor; this translation unit pins the checked-simulator instantiation
// so callers of the historical entry point link against one copy.
PathCover min_path_cover_pram(pram::Machine& m, const cograph::Cotree& t,
                              const PipelineOptions& opt,
                              PipelineTrace* trace) {
  return min_path_cover_exec(m, t, opt, trace);
}

// min_path_cover_parallel is defined in copath_solver.cpp as a thin
// compatibility wrapper over the Solver facade (Backend::Parallel).

}  // namespace copath::core
