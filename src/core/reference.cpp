#include "core/reference.hpp"

#include "core/brackets.hpp"
#include "core/count.hpp"
#include "core/forest.hpp"
#include "par/brackets.hpp"

namespace copath::core {

PathCover min_path_cover_reference(const cograph::Cotree& t,
                                   ReferenceTrace* trace) {
  // Steps 1-3: binarize, leftist, L(u) and p(u).
  auto bc = cograph::binarize(t);
  const auto leaf_count = cograph::make_leftist(bc);
  const auto p = path_counts_host(bc, leaf_count);

  // Step 4: the bracket sequence B(R).
  const BracketStream bs = generate_brackets_host(bc, leaf_count, p);

  // Step 5: match squares and rounds independently (stack semantics).
  const auto sq_match = par::match_brackets_seq(bs.sq_sign);
  const auto rd_match = par::match_brackets_seq(bs.rd_sign);
  PathForest f = build_forest(bs, sq_match, rd_match);

  // Step 6: exchange illegal inserts with legal dummies.
  const std::size_t rounds = repair_forest(f, bs, t);

  // Step 7: bypass dummies.
  bypass_dummies(f, bs);

  // Step 8: read off the paths.
  PathCover cover = extract_paths(f, bs);
  if (trace != nullptr) {
    trace->bracket_length = bs.length();
    trace->dummy_count = bs.dummy_count;
    trace->repair_rounds = rounds;
    trace->path_count = cover.paths.size();
  }
  return cover;
}

}  // namespace copath::core
