#include "core/backend.hpp"

#include <algorithm>
#include <utility>

#include "baseline/brute_force.hpp"
#include "core/adaptive.hpp"
#include "baseline/greedy.hpp"
#include "baseline/naive_parallel.hpp"
#include "cograph/graph.hpp"
#include "core/pipeline_exec.hpp"
#include "core/reference.hpp"
#include "core/sequential.hpp"
#include "exec/native.hpp"
#include "par/scan.hpp"
#include "pram/array.hpp"
#include "util/math.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace copath::core {

const char* to_string(Backend b) {
  switch (b) {
    case Backend::Sequential: return "sequential";
    case Backend::Parallel: return "parallel";
    case Backend::Pram: return "pram";
    case Backend::BruteForce: return "brute-force";
    case Backend::Greedy: return "greedy";
    case Backend::NaiveParallel: return "naive-parallel";
    case Backend::Reference: return "reference";
    case Backend::Native: return "native";
    case Backend::Adaptive: return "adaptive";
  }
  return "?";
}

std::optional<Backend> backend_from_string(std::string_view s) {
  for (const Backend b :
       {Backend::Sequential, Backend::Parallel, Backend::Pram,
        Backend::BruteForce, Backend::Greedy, Backend::NaiveParallel,
        Backend::Reference, Backend::Native, Backend::Adaptive}) {
    if (s == to_string(b)) return b;
  }
  return std::nullopt;
}

std::size_t paper_processors(std::size_t n) {
  return std::max<std::size_t>(1, n / util::floor_log2(n));
}

pram::Machine::Config machine_config(std::size_t n, const BackendConfig& cfg) {
  return pram::Machine::Config{
      cfg.policy, std::max<std::size_t>(1, cfg.workers),
      cfg.processors == 0 ? paper_processors(n) : cfg.processors};
}

bool uses_pram_machine(Backend b) {
  return b == Backend::Parallel || b == Backend::Pram ||
         b == Backend::NaiveParallel;
}

bool uses_native_executor(Backend b) { return b == Backend::Native; }

bool may_use_native_threads(Backend b) {
  return b == Backend::Native || b == Backend::Adaptive;
}

exec::Native::Config native_config(const BackendConfig& cfg) {
  exec::Native::Config nc;
  nc.workers = cfg.workers;      // 0 = hardware concurrency
  nc.processors = cfg.processors;  // 0 = one block per worker
  nc.cancel = cfg.cancel;
  return nc;
}

BackendConfig apply_backend_contract(Backend b, BackendConfig cfg) {
  if (b == Backend::Parallel) {
    cfg.policy = pram::Policy::EREW;
    cfg.processors = 0;
  }
  return cfg;
}

namespace {

// Engines with no internal checkpoints (the sequential sweep, the PRAM
// simulator's stepped runs) honor cancel once, up front: a solve whose
// token already tripped (deadline passed while queued, client gone) is
// refused before any work runs.
void checkpoint_before_solve(const BackendConfig& cfg) {
  if (cfg.cancel != nullptr) cfg.cancel->checkpoint();
}

BackendOutput run_pram_pipeline(const cograph::Cotree& t,
                                const BackendConfig& cfg) {
  checkpoint_before_solve(cfg);
  BackendOutput out;
  pram::Machine m(machine_config(t.vertex_count(), cfg));
  out.cover = min_path_cover_pram(m, t, cfg.pipeline,
                                  cfg.collect_trace ? &out.trace : nullptr);
  out.stats = m.stats();
  out.used_pram = true;
  out.traced = cfg.collect_trace;
  return out;
}

BackendOutput run_parallel(const cograph::Cotree& t,
                           const BackendConfig& cfg) {
  // The historical min_path_cover_parallel contract: EREW, paper budget.
  // Worker count, trace flag, and pipeline knobs still pass through.
  return run_pram_pipeline(t, apply_backend_contract(Backend::Parallel, cfg));
}

BackendOutput run_native(const cograph::Cotree& t,
                         const BackendConfig& cfg) {
  BackendOutput out;
  exec::Native ex(native_config(cfg));
  out.cover = min_path_cover_exec(ex, t, cfg.pipeline,
                                  cfg.collect_trace ? &out.trace : nullptr);
  // Native stats count phases, not the simulator's cost model; hand them
  // back for inspection but leave used_pram false so stats_valid stays off.
  out.stats = ex.stats();
  out.traced = cfg.collect_trace;
  return out;
}

BackendOutput run_sequential(const cograph::Cotree& t,
                             const BackendConfig& cfg) {
  checkpoint_before_solve(cfg);
  BackendOutput out;
  out.cover = min_path_cover_sequential(t);
  return out;
}

BackendOutput run_adaptive(const cograph::Cotree& t,
                           const BackendConfig& cfg) {
  const CostModel& model =
      cfg.cost_model != nullptr ? *cfg.cost_model : CostModel::calibrated();
  const std::size_t n = t.vertex_count();
  const std::size_t internal = t.size() - n;  // cotree internal nodes
  // hardware_concurrency is a syscall — cache it; routing runs per solve.
  static const std::size_t hw = util::ThreadPool::default_workers();
  const std::size_t workers = cfg.workers == 0 ? hw : cfg.workers;
  const Backend route = model.choose(n, internal, workers);
  BackendOutput out;
  if (route == Backend::Native) {
    exec::Native::Config nc = native_config(cfg);
    nc.grains = model.grains;  // the per-stage half of the dispatch
    // Steady-state serving: recycle scratch across every solve this
    // thread performs (Service workers, solve_batch pool workers).
    exec::Arena& arena = exec::Arena::for_this_thread();
    nc.arena = &arena;
    try {
      exec::Native ex(nc);
      out.cover = min_path_cover_exec(
          ex, t, cfg.pipeline, cfg.collect_trace ? &out.trace : nullptr);
      out.stats = ex.stats();
      out.traced = cfg.collect_trace;
    } catch (...) {
      // Cancellation (or any failure) unwinds through here with every
      // executor array already destroyed — the buffers are back in the
      // arena free lists. Trim exactly as on success so a cancelled solve
      // never leaves a worker thread holding peak scratch.
      arena.trim_over(model.arena_retain_bytes);
      throw;
    }
    // Every array is dead here; cap what this thread keeps warm.
    arena.trim_over(model.arena_retain_bytes);
  } else {
    checkpoint_before_solve(cfg);
    out.cover = min_path_cover_sequential(t);
  }
  out.routed = route;
  return out;
}

BackendOutput run_reference(const cograph::Cotree& t,
                            const BackendConfig& cfg) {
  BackendOutput out;
  ReferenceTrace rt;
  out.cover = min_path_cover_reference(t, cfg.collect_trace ? &rt : nullptr);
  if (cfg.collect_trace) {
    out.trace.bracket_length = rt.bracket_length;
    out.trace.dummy_count = rt.dummy_count;
    out.trace.repair_rounds = rt.repair_rounds;
    out.trace.path_count = rt.path_count;
    out.traced = true;
  }
  return out;
}

BackendOutput run_naive_parallel(const cograph::Cotree& t,
                                 const BackendConfig& cfg) {
  BackendOutput out;
  pram::Machine m(machine_config(t.vertex_count(), cfg));
  out.cover = baseline::min_path_cover_naive_parallel(m, t);
  out.stats = m.stats();
  out.used_pram = true;
  return out;
}

BackendOutput run_brute_force(const cograph::Cotree& t,
                              const BackendConfig& /*cfg*/) {
  COPATH_CHECK_MSG(t.vertex_count() <= 20,
                   "brute-force backend is exponential; refusing n = "
                       << t.vertex_count() << " (limit 20)");
  BackendOutput out;
  out.cover = baseline::min_path_cover_exact(cograph::Graph::from_cotree(t));
  return out;
}

BackendOutput run_greedy(const cograph::Cotree& t,
                         const BackendConfig& /*cfg*/) {
  BackendOutput out;
  out.cover = baseline::min_path_cover_greedy(cograph::Graph::from_cotree(t));
  return out;
}

}  // namespace

BackendRegistry::BackendRegistry() {
  add(Backend::Sequential, to_string(Backend::Sequential), run_sequential);
  add(Backend::Parallel, to_string(Backend::Parallel), run_parallel);
  add(Backend::Pram, to_string(Backend::Pram), run_pram_pipeline);
  add(Backend::BruteForce, to_string(Backend::BruteForce), run_brute_force);
  add(Backend::Greedy, to_string(Backend::Greedy), run_greedy,
      /*exact=*/false);
  add(Backend::NaiveParallel, to_string(Backend::NaiveParallel),
      run_naive_parallel);
  add(Backend::Reference, to_string(Backend::Reference), run_reference);
  add(Backend::Native, to_string(Backend::Native), run_native);
  add(Backend::Adaptive, to_string(Backend::Adaptive), run_adaptive);
}

BackendRegistry& BackendRegistry::instance() {
  static BackendRegistry registry;
  return registry;
}

void BackendRegistry::add(Backend id, std::string name, BackendFn fn,
                          bool exact) {
  auto entry =
      std::make_shared<const Entry>(Entry{id, std::move(name), std::move(fn),
                                          exact});
  std::lock_guard lock(mu_);
  for (auto& e : entries_) {
    if (e->id == id) {
      e = std::move(entry);  // running solvers keep the old Entry alive
      return;
    }
  }
  entries_.push_back(std::move(entry));
}

BackendRegistry::EntryPtr BackendRegistry::find(Backend id) const {
  std::lock_guard lock(mu_);
  for (const auto& e : entries_) {
    if (e->id == id) return e;
  }
  return nullptr;
}

BackendRegistry::EntryPtr BackendRegistry::find(std::string_view name) const {
  std::lock_guard lock(mu_);
  for (const auto& e : entries_) {
    if (e->name == name) return e;
  }
  return nullptr;
}

std::vector<Backend> BackendRegistry::registered() const {
  std::lock_guard lock(mu_);
  std::vector<Backend> ids;
  ids.reserve(entries_.size());
  for (const auto& e : entries_) ids.push_back(e->id);
  return ids;
}

ScanProbeResult probe_scan_substrate(std::size_t n,
                                     const BackendConfig& cfg) {
  COPATH_CHECK(n > 0);
  ScanProbeResult res;
  pram::Machine m(machine_config(n, cfg));
  pram::Array<std::int64_t> a(m, n, 1);
  util::WallTimer timer;
  par::exclusive_scan(m, a);
  res.wall_ms = timer.millis();
  res.stats = m.stats();
  res.checksum = a.host(n - 1);
  return res;
}

ScanProbeResult probe_scan_native(std::size_t n, std::size_t workers) {
  COPATH_CHECK(n > 0);
  ScanProbeResult res;
  exec::Native ex(exec::Native::Config{workers});
  auto a = exec::make_array<std::int64_t>(ex, n, std::int64_t{1});
  util::WallTimer timer;
  par::exclusive_scan(ex, a);
  res.wall_ms = timer.millis();
  res.stats = ex.stats();
  res.checksum = a.host(n - 1);
  return res;
}

}  // namespace copath::core
