// Hamiltonian path and cycle queries on cographs (the corollary the paper
// highlights in §1: both are solved by the path cover machinery).
//
//  * Hamiltonian path  <=> minimum path cover size is 1.
//  * Hamiltonian cycle <=> n >= 3, the root split join(V, W) of the leftist
//    binarized cotree satisfies p(V) <= L(W).
//    Necessity: a Hamilton cycle alternates r >= p(V) maximal V-runs with r
//    W-runs, so L(W) >= r >= p(V). Sufficiency: bridge the p(V) paths of a
//    minimum cover of G(V) into a cycle with p(V) vertices of W and insert
//    the remaining L(W) - p(V) W-vertices into distinct V-gaps (capacity
//    L(V) - p(V) >= L(W) - p(V) by the leftist property).
#pragma once

#include <optional>
#include <vector>

#include "cograph/cotree.hpp"
#include "core/path_cover.hpp"

namespace copath::core {

/// True iff the cograph admits a Hamiltonian cycle.
bool has_hamiltonian_cycle(const cograph::Cotree& t);

/// The vertices of a Hamiltonian path in order, if one exists.
std::optional<std::vector<VertexId>> hamiltonian_path(
    const cograph::Cotree& t);

/// The vertices of a Hamiltonian cycle in order (closing edge implied), if
/// one exists.
std::optional<std::vector<VertexId>> hamiltonian_cycle(
    const cograph::Cotree& t);

}  // namespace copath::core
