// Hamiltonian path and cycle queries on cographs (the corollary the paper
// highlights in §1: both are solved by the path cover machinery).
//
//  * Hamiltonian path  <=> minimum path cover size is 1.
//  * Hamiltonian cycle <=> n >= 3, the root split join(V, W) of the leftist
//    binarized cotree satisfies p(V) <= L(W).
//    Necessity: a Hamilton cycle alternates r >= p(V) maximal V-runs with r
//    W-runs, so L(W) >= r >= p(V). Sufficiency: bridge the p(V) paths of a
//    minimum cover of G(V) into a cycle with p(V) vertices of W and insert
//    the remaining L(W) - p(V) W-vertices into distinct V-gaps (capacity
//    L(V) - p(V) >= L(W) - p(V) by the leftist property).
#pragma once

#include <optional>
#include <vector>

#include "cograph/binarize.hpp"
#include "cograph/cotree.hpp"
#include "core/count.hpp"
#include "core/path_cover.hpp"

namespace copath::core {

/// True iff the cograph admits a Hamiltonian cycle.
bool has_hamiltonian_cycle(const cograph::Cotree& t);

/// Executor variants of the §1 corollary verdicts: the p(u) evaluation runs
/// through the supplied executor (checked PRAM or Native) instead of the
/// host sweep, so heavy verdict batches ride the production substrate.
template <typename E>
bool has_hamiltonian_path_exec(E& m, const cograph::Cotree& t) {
  auto bc = cograph::binarize(t);
  const auto leaf_count = cograph::make_leftist(bc);
  const auto p = path_counts_exec(m, bc, leaf_count);
  return p[static_cast<std::size_t>(bc.tree.root)] == 1;
}

template <typename E>
bool has_hamiltonian_cycle_exec(E& m, const cograph::Cotree& t) {
  if (t.vertex_count() < 3) return false;
  auto bc = cograph::binarize(t);
  const auto leaf_count = cograph::make_leftist(bc);
  const auto p = path_counts_exec(m, bc, leaf_count);
  const auto root = static_cast<std::size_t>(bc.tree.root);
  if (bc.tree.left[root] == -1 || !bc.is_join[root]) return false;
  // Root split join(V, W): Hamiltonian cycle iff p(V) <= L(W).
  const auto pv = p[static_cast<std::size_t>(bc.tree.left[root])];
  const auto lw = leaf_count[static_cast<std::size_t>(bc.tree.right[root])];
  return pv <= lw;
}

/// The vertices of a Hamiltonian path in order, if one exists.
std::optional<std::vector<VertexId>> hamiltonian_path(
    const cograph::Cotree& t);

/// The vertices of a Hamiltonian cycle in order (closing edge implied), if
/// one exists.
std::optional<std::vector<VertexId>> hamiltonian_cycle(
    const cograph::Cotree& t);

}  // namespace copath::core
