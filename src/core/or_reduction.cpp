#include "core/or_reduction.hpp"

#include <algorithm>

#include "cograph/binarize.hpp"
#include "cograph/families.hpp"
#include "core/count.hpp"
#include "pram/array.hpp"

namespace copath::core {

OrReductionResult or_via_path_cover(pram::Machine& m,
                                    const std::vector<std::uint8_t>& bits) {
  const std::size_t n = bits.size();
  OrReductionResult res;

  // O(1)-step construction: every processor writes the kind and parent of
  // its own leaf (parent-pointer representation, exactly as in §2).
  const std::uint64_t steps_before = m.stats().steps;
  constexpr std::int32_t kR = 0;
  constexpr std::int32_t kU = 1;
  const std::size_t nodes = n + 5;  // R, u, x, y, z, a_1..a_n
  pram::Array<std::uint8_t> kind(m, nodes, 0);  // 0 leaf, 1 union, 2 join
  pram::Array<std::int32_t> parent(m, nodes, -1);
  pram::Array<std::uint8_t> bit_arr(m, std::vector<std::uint8_t>(bits));
  m.pfor(nodes, [&](pram::Ctx& c, std::size_t i) {
    if (i == kR) {
      kind.put(c, i, 1);
      parent.put(c, i, -1);
    } else if (i == kU) {
      kind.put(c, i, 2);
      parent.put(c, i, kR);
    } else if (i == 2) {
      parent.put(c, i, kR);  // x
    } else if (i == 3 || i == 4) {
      parent.put(c, i, kU);  // y, z
    } else {
      parent.put(c, i, bit_arr.get(c, i - 5) ? kU : kR);  // a_i
    }
  });
  res.construction_steps = m.stats().steps - steps_before;

  // Assemble the Cotree object (host representation hand-off) and count.
  std::vector<cograph::NodeKind> kinds(nodes);
  std::vector<cograph::NodeId> parents(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    kinds[i] = kind.host(i) == 0   ? cograph::NodeKind::Leaf
               : kind.host(i) == 1 ? cograph::NodeKind::Union
                                   : cograph::NodeKind::Join;
    parents[i] = parent.host(i);
  }
  const cograph::Cotree t =
      cograph::Cotree::from_parts(std::move(kinds), std::move(parents), kR);

  const std::uint64_t steps_count0 = m.stats().steps;
  auto bc = cograph::binarize(t);
  const auto leaf_count = cograph::make_leftist(bc);
  const auto p = path_counts_pram(m, bc, leaf_count);
  res.count_steps = m.stats().steps - steps_count0;
  res.path_cover_size = p[static_cast<std::size_t>(bc.tree.root)];
  res.or_value =
      res.path_cover_size < static_cast<std::int64_t>(n) + 2;
  return res;
}

OrReductionResult or_via_path_cover(const std::vector<std::uint8_t>& bits,
                                    const OrReductionOptions& opt) {
  pram::Machine m(pram::Machine::Config{
      opt.policy, std::max<std::size_t>(1, opt.workers), opt.processors});
  return or_via_path_cover(m, bits);
}

}  // namespace copath::core
