#include "core/or_reduction.hpp"

#include <algorithm>

#include "exec/checked_pram.hpp"
#include "exec/native.hpp"

namespace copath::core {

OrReductionResult or_via_path_cover(pram::Machine& m,
                                    const std::vector<std::uint8_t>& bits) {
  return or_via_path_cover_exec(m, bits);
}

OrReductionResult or_via_path_cover(const std::vector<std::uint8_t>& bits,
                                    const OrReductionOptions& opt) {
  if (opt.native) {
    exec::Native ex(exec::Native::Config{opt.workers, opt.processors});
    return or_via_path_cover_exec(ex, bits);
  }
  pram::Machine m(pram::Machine::Config{
      opt.policy, std::max<std::size_t>(1, opt.workers), opt.processors});
  return or_via_path_cover_exec(m, bits);
}

}  // namespace copath::core
