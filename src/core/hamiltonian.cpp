#include "core/hamiltonian.hpp"

#include <algorithm>

#include "cograph/binarize.hpp"
#include "core/count.hpp"
#include "core/sequential.hpp"
#include "exec/scratch.hpp"

namespace copath::core {

namespace {

struct RootSplit {
  bool root_is_join = false;
  std::int64_t pv = 0;
  std::int64_t lw = 0;
  std::int32_t left = -1;
  std::int32_t right = -1;
};

RootSplit root_split(const cograph::BinarizedCotree& bc,
                     const std::vector<std::int64_t>& leaf_count,
                     const std::vector<std::int64_t>& p) {
  RootSplit rs;
  const auto root = static_cast<std::size_t>(bc.tree.root);
  if (bc.tree.left[root] == -1) return rs;  // single vertex
  rs.root_is_join = bc.is_join[root] != 0;
  rs.left = bc.tree.left[root];
  rs.right = bc.tree.right[root];
  rs.pv = p[static_cast<std::size_t>(rs.left)];
  rs.lw = leaf_count[static_cast<std::size_t>(rs.right)];
  return rs;
}

}  // namespace

bool has_hamiltonian_cycle(const cograph::Cotree& t) {
  if (t.vertex_count() < 3) return false;
  // Arena-backed: the verdict runs after every solve, so its binarized
  // tree and p-sweep are recycled scratch, not fresh vectors.
  exec::Arena& arena = exec::Arena::for_this_thread();
  cograph::ScratchBinarized bc(arena);
  cograph::binarize_scratch(t, arena, bc);
  exec::ScratchVec<std::int64_t> leaf_count(arena);
  cograph::make_leftist_scratch(bc, leaf_count);
  return count_verdicts(bc.view(), leaf_count.span(), arena)
      .hamiltonian_cycle;
}

std::optional<std::vector<VertexId>> hamiltonian_path(
    const cograph::Cotree& t) {
  PathCover cover = min_path_cover_sequential(t);
  if (cover.paths.size() != 1) return std::nullopt;
  return std::move(cover.paths.front());
}

std::optional<std::vector<VertexId>> hamiltonian_cycle(
    const cograph::Cotree& t) {
  if (t.vertex_count() < 3) return std::nullopt;
  auto bc = cograph::binarize(t);
  const auto leaf_count = cograph::make_leftist(bc);
  const auto p = path_counts_host(bc, leaf_count);
  const RootSplit rs = root_split(bc, leaf_count, p);
  if (!rs.root_is_join || rs.pv > rs.lw) return std::nullopt;

  // Minimum cover of G(V) (the root's left side): run the sequential
  // algorithm on the left subtree in isolation by temporarily re-rooting.
  // Simpler: run on the whole tree's left part via the cover of V computed
  // from the binarized structures — re-run the sweep on a pruned tree.
  cograph::BinarizedCotree left_bc;
  std::vector<std::int64_t> left_leaf_count;
  {
    // Extract the left subtree as its own BinarizedCotree (compact ids,
    // numbered in *reverse preorder* so descendants get smaller ids than
    // their ancestors — the binarize_core id invariant the linear-fold
    // sweeps in core/sequential.cpp and core/count.cpp require).
    const std::size_t bn = bc.size();
    std::vector<std::int32_t> map(bn, -1);
    std::vector<std::int32_t> order;
    order.reserve(bn);
    std::vector<std::int32_t> stack{rs.left};
    while (!stack.empty()) {
      const std::int32_t v = stack.back();
      stack.pop_back();
      order.push_back(v);
      if (bc.tree.left[static_cast<std::size_t>(v)] != -1) {
        stack.push_back(bc.tree.left[static_cast<std::size_t>(v)]);
        stack.push_back(bc.tree.right[static_cast<std::size_t>(v)]);
      }
    }
    const std::size_t ln = order.size();
    for (std::size_t i = 0; i < ln; ++i) {
      map[static_cast<std::size_t>(order[i])] =
          static_cast<std::int32_t>(ln - 1 - i);
    }
    left_bc.tree = par::BinTree::with_size(ln);
    left_bc.is_join.assign(ln, 0);
    left_bc.vertex.assign(ln, cograph::kNull);
    left_leaf_count.assign(ln, 0);
    std::size_t leaves = 0;
    for (std::size_t pre = 0; pre < ln; ++pre) {
      const auto v = static_cast<std::size_t>(order[pre]);
      const std::size_t i = ln - 1 - pre;
      left_bc.is_join[i] = bc.is_join[v];
      left_leaf_count[i] = leaf_count[v];
      if (bc.tree.left[v] != -1) {
        left_bc.tree.left[i] = map[static_cast<std::size_t>(bc.tree.left[v])];
        left_bc.tree.right[i] =
            map[static_cast<std::size_t>(bc.tree.right[v])];
        left_bc.tree.parent[static_cast<std::size_t>(left_bc.tree.left[i])] =
            static_cast<std::int32_t>(i);
        left_bc.tree.parent[static_cast<std::size_t>(
            left_bc.tree.right[i])] = static_cast<std::int32_t>(i);
      } else {
        left_bc.vertex[i] = bc.vertex[v];
        ++leaves;
      }
    }
    left_bc.tree.root = static_cast<std::int32_t>(ln - 1);
    left_bc.leaf_of_vertex.assign(t.vertex_count(), -1);
    for (std::size_t i = 0; i < ln; ++i) {
      if (left_bc.vertex[i] != cograph::kNull)
        left_bc.leaf_of_vertex[static_cast<std::size_t>(left_bc.vertex[i])] =
            static_cast<std::int32_t>(i);
    }
    (void)leaves;
  }
  // Note: leaf_of_vertex is indexed by *global* vertex ids here; the
  // sequential sweep only walks paths via the vertex ids it encounters, so
  // the global-sized table is fine.
  PathCover vcover = min_path_cover_sequential(left_bc, left_leaf_count);

  // Gather W's vertices (leaf descendants of the root's right child).
  std::vector<VertexId> w;
  {
    std::vector<std::int32_t> stack{rs.right};
    while (!stack.empty()) {
      const auto v = static_cast<std::size_t>(stack.back());
      stack.pop_back();
      if (bc.tree.left[v] == -1) {
        w.push_back(bc.vertex[v]);
        continue;
      }
      stack.push_back(bc.tree.left[v]);
      stack.push_back(bc.tree.right[v]);
    }
  }
  COPATH_CHECK(static_cast<std::int64_t>(w.size()) == rs.lw);
  COPATH_CHECK(static_cast<std::int64_t>(vcover.paths.size()) == rs.pv);

  // Bridge the p(V) paths into a cycle with p(V) W-vertices, then insert
  // the remaining W-vertices into V-gaps (never two W's adjacent).
  std::vector<VertexId> cycle;
  cycle.reserve(t.vertex_count());
  std::size_t wi = 0;
  std::size_t inserts_left = w.size() - vcover.paths.size();
  for (const auto& path : vcover.paths) {
    for (std::size_t i = 0; i < path.size(); ++i) {
      cycle.push_back(path[i]);
      if (i + 1 < path.size() && inserts_left > 0) {
        cycle.push_back(w[vcover.paths.size() + --inserts_left]);
      }
    }
    cycle.push_back(w[wi++]);  // bridge to the next path (or close cycle)
  }
  COPATH_CHECK(inserts_left == 0);
  COPATH_CHECK(cycle.size() == t.vertex_count());
  return cycle;
}

}  // namespace copath::core
