// Path trees (paper §3): building the pseudo path forest from the bracket
// matchings, repairing illegal insert vertices via dummy exchange (§4,
// Figs 11–12), bypassing dummies, and extracting the final paths.
//
// These are the host-side stages shared by the reference pipeline; the PRAM
// pipeline mirrors them with Euler tours and scans but reuses the same
// conventions (ids, sides, pairing rule), so the two can be diffed in
// tests.
#pragma once

#include <cstdint>
#include <vector>

#include "core/brackets.hpp"
#include "core/path_cover.hpp"

namespace copath::core {

/// The (pseudo) path forest over ids [0, real_count + dummy_count).
struct PathForest {
  std::vector<std::int32_t> parent;  // -1 for roots
  std::vector<std::int32_t> left;
  std::vector<std::int32_t> right;
  std::vector<std::int8_t> side;     // 0 left child, 1 right child
  std::vector<std::int32_t> roots;   // in path order

  [[nodiscard]] std::size_t size() const { return parent.size(); }
};

/// Builds the pseudo path forest from the two matchings (indices into the
/// bracket stream; -1 = unmatched). Roots are the unmatched square-open
/// parent slots, in bracket order.
PathForest build_forest(const BracketStream& bs,
                        const std::vector<std::int64_t>& sq_match,
                        const std::vector<std::int64_t>& rd_match);

/// One legality scan over the *dummy-skipped* inorder (dummies are spliced
/// out in Step 7, so the final path adjacencies are between skipped
/// neighbours). An insert is illegal iff a skipped neighbour is not
/// adjacent to it in the cograph (checked via the LCA oracle — the paper's
/// "checking vertex adjacencies in the resulting linear order"); a dummy is
/// a legal exchange target iff both its skipped neighbours are adjacent to
/// the owner's w-side vertices. Returns the number of illegal inserts.
/// `illegal` and `legal_dummy` must be sized bs.id_count().
std::size_t mark_illegal(const PathForest& f, const BracketStream& bs,
                         const cograph::Cotree& t,
                         const cograph::CotreeAdjacency& adj,
                         std::vector<std::uint8_t>& illegal,
                         std::vector<std::uint8_t>& legal_dummy);

/// Repairs the forest: repeatedly exchanges illegal inserts with legal
/// dummies of the same 1-node (k-th with k-th, both in id order) until a
/// legality scan comes back clean. Returns the number of exchange rounds
/// used (the paper's analysis corresponds to a single round; the validator
/// in tests certifies the result regardless). Throws if `max_rounds` is
/// exceeded.
std::size_t repair_forest(PathForest& f, const BracketStream& bs,
                          const cograph::Cotree& t,
                          std::size_t max_rounds = 32);

/// Splices every dummy vertex out of the forest (dummies have at most one
/// child, always a right child).
void bypass_dummies(PathForest& f, const BracketStream& bs);

/// Inorder traversal of every path tree; one path per root.
PathCover extract_paths(const PathForest& f, const BracketStream& bs);

}  // namespace copath::core
