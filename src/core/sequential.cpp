#include "core/sequential.hpp"

#include <utility>

#include "core/count.hpp"
#include "exec/scratch.hpp"

namespace copath::core {

namespace {

/// One record of the intrusive path arena: paths are (head, tail) with
/// vertices linked through the shared next/prev arrays, and records chain
/// into per-tree-node cover lists.
struct PathRec {
  VertexId head;
  VertexId tail;
  std::int32_t next_path;  // arena link, -1 at the end of a cover list
};

struct CoverRef {
  std::int32_t first = -1;
  std::int32_t last = -1;
  std::int64_t count = 0;
};

/// (head, tail) of one path — std::pair is not trivially copyable, which
/// the arena storage requires.
struct Segment {
  VertexId head;
  VertexId tail;
};

}  // namespace

PathCover min_path_cover_sequential(const cograph::Cotree& t) {
  exec::Arena& arena = exec::Arena::for_this_thread();
  cograph::ScratchBinarized bc(arena);
  cograph::binarize_scratch(t, arena, bc);
  exec::ScratchVec<std::int64_t> leaf_count(arena);
  cograph::make_leftist_scratch(bc, leaf_count);
  return min_path_cover_sequential(bc.view(), leaf_count.span(), arena);
}

PathCover min_path_cover_sequential(
    const cograph::BinarizedCotree& bc,
    const std::vector<std::int64_t>& leaf_count) {
  return min_path_cover_sequential(cograph::view_of(bc), leaf_count,
                                   exec::Arena::for_this_thread());
}

PathCover min_path_cover_sequential(const cograph::BinView& bc,
                                    std::span<const std::int64_t> leaf_count,
                                    exec::Arena& a) {
  const std::size_t bn = bc.size();
  const std::size_t n = bc.leaf_of_vertex.size();
  exec::ScratchVec<VertexId> next(a, n, cograph::kNull);
  exec::ScratchVec<VertexId> prev(a, n, cograph::kNull);
  exec::ScratchVec<PathRec> arena(a);
  arena.reserve(n);
  exec::ScratchVec<CoverRef> cover(a, bn, CoverRef{});

  const auto singleton = [&](VertexId v) {
    arena.push_back({v, v, -1});
    const auto id = static_cast<std::int32_t>(arena.size() - 1);
    return CoverRef{id, id, 1};
  };
  const auto concat = [&](CoverRef x, CoverRef y) {
    if (x.count == 0) return y;
    if (y.count == 0) return x;
    arena[static_cast<std::size_t>(x.last)].next_path = y.first;
    return CoverRef{x.first, y.last, x.count + y.count};
  };

  // Post-order sweep: binarized ids are children-before-parents (the
  // binarize_core invariant), so ascending id order IS a post-order — no
  // order array, no traversal stack. Interleaving across independent
  // subtrees cannot change any node's cover (each step touches only its
  // own subtree's vertices), so the output is identical to a DFS-ordered
  // sweep.
  COPATH_DCHECK(static_cast<std::size_t>(bc.root) == bn - 1);

  // Scratch reused across 1-nodes.
  exec::ScratchVec<VertexId> w_vertices(a);
  exec::ScratchVec<Segment> segments(a);

  for (std::size_t vu = 0; vu < bn; ++vu) {
    const std::int32_t lc = bc.left[vu];
    const std::int32_t rc = bc.right[vu];
    if (lc == -1) {  // leaf
      cover[vu] = singleton(bc.vertex[vu]);
      continue;
    }
    const auto lcu = static_cast<std::size_t>(lc);
    const auto rcu = static_cast<std::size_t>(rc);
    if (!bc.is_join[vu]) {  // 0-node: disjoint union
      cover[vu] = concat(cover[lcu], cover[rcu]);
      continue;
    }
    // 1-node. Gather the vertices of G(w) by walking w's cover (their
    // internal edges are never used — §2).
    const std::int64_t lw = leaf_count[rcu];
    const std::int64_t pv = cover[lcu].count;
    w_vertices.clear();
    for (std::int32_t pid = cover[rcu].first; pid != -1;
         pid = arena[static_cast<std::size_t>(pid)].next_path) {
      VertexId v = arena[static_cast<std::size_t>(pid)].head;
      while (v != cograph::kNull) {
        const VertexId nxt = next[static_cast<std::size_t>(v)];
        next[static_cast<std::size_t>(v)] = cograph::kNull;
        prev[static_cast<std::size_t>(v)] = cograph::kNull;
        w_vertices.push_back(v);
        v = nxt;
      }
    }
    COPATH_CHECK(static_cast<std::int64_t>(w_vertices.size()) == lw);

    const auto link = [&](VertexId x, VertexId y) {
      next[static_cast<std::size_t>(x)] = y;
      prev[static_cast<std::size_t>(y)] = x;
    };

    if (pv > lw) {
      // Case 1: bridge lw+1 paths into one with the lw vertices of G(w).
      std::int32_t pid = cover[lcu].first;
      const VertexId head = arena[static_cast<std::size_t>(pid)].head;
      VertexId tail = arena[static_cast<std::size_t>(pid)].tail;
      for (std::int64_t k = 0; k < lw; ++k) {
        const VertexId s = w_vertices[static_cast<std::size_t>(k)];
        pid = arena[static_cast<std::size_t>(pid)].next_path;
        link(tail, s);
        link(s, arena[static_cast<std::size_t>(pid)].head);
        tail = arena[static_cast<std::size_t>(pid)].tail;
      }
      // Reuse the first arena record for the merged path; the rest of the
      // list (pv - lw - 1 paths) stays as-is.
      const std::int32_t rest =
          arena[static_cast<std::size_t>(pid)].next_path;
      const std::int32_t merged = cover[lcu].first;
      arena[static_cast<std::size_t>(merged)].head = head;
      arena[static_cast<std::size_t>(merged)].tail = tail;
      arena[static_cast<std::size_t>(merged)].next_path = rest;
      cover[vu] =
          CoverRef{merged, rest == -1 ? merged : cover[lcu].last, pv - lw};
      continue;
    }
    // Case 2: p(v)-1 bridges, the rest inserted -> Hamiltonian path.
    segments.clear();
    for (std::int32_t pid = cover[lcu].first; pid != -1;
         pid = arena[static_cast<std::size_t>(pid)].next_path) {
      segments.push_back(Segment{arena[static_cast<std::size_t>(pid)].head,
                                 arena[static_cast<std::size_t>(pid)].tail});
    }
    COPATH_CHECK(static_cast<std::int64_t>(segments.size()) == pv);
    for (std::int64_t k = 0; k + 1 < pv; ++k) {
      const VertexId s = w_vertices[static_cast<std::size_t>(k)];
      link(segments[static_cast<std::size_t>(k)].tail, s);
      link(s, segments[static_cast<std::size_t>(k + 1)].head);
    }
    VertexId head = segments.front().head;
    VertexId tail = segments.back().tail;
    // Insert the remaining lw - pv + 1 vertices next to G(v)-vertices only:
    // the slot before the head, the slots between consecutive same-segment
    // vertices, then the slot after the tail.
    std::size_t ins = static_cast<std::size_t>(pv - 1);  // next w vertex
    if (ins < w_vertices.size()) {
      const VertexId tv = w_vertices[ins++];
      link(tv, head);
      head = tv;
    }
    for (std::size_t seg = 0;
         seg < segments.size() && ins < w_vertices.size(); ++seg) {
      VertexId x = segments[seg].head;
      const VertexId stop = segments[seg].tail;
      while (x != stop && ins < w_vertices.size()) {
        const VertexId y = next[static_cast<std::size_t>(x)];
        const VertexId tv = w_vertices[ins++];
        link(x, tv);
        link(tv, y);
        x = y;
      }
    }
    if (ins < w_vertices.size()) {
      const VertexId tv = w_vertices[ins++];
      link(tail, tv);
      tail = tv;
    }
    COPATH_CHECK_MSG(ins == w_vertices.size(),
                     "insert capacity exhausted — leftist precondition "
                     "violated?");
    const std::int32_t merged = cover[lcu].first;
    arena[static_cast<std::size_t>(merged)].head = head;
    arena[static_cast<std::size_t>(merged)].tail = tail;
    arena[static_cast<std::size_t>(merged)].next_path = -1;
    cover[vu] = CoverRef{merged, merged, 1};
  }

  // Extract the root cover.
  PathCover out;
  const auto& root_cover = cover[static_cast<std::size_t>(bc.root)];
  out.paths.reserve(static_cast<std::size_t>(root_cover.count));
  for (std::int32_t pid = root_cover.first; pid != -1;
       pid = arena[static_cast<std::size_t>(pid)].next_path) {
    out.paths.emplace_back();
    for (VertexId v = arena[static_cast<std::size_t>(pid)].head;
         v != cograph::kNull; v = next[static_cast<std::size_t>(v)]) {
      out.paths.back().push_back(v);
    }
  }
  return out;
}

}  // namespace copath::core
