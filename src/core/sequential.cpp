#include "core/sequential.hpp"

#include <vector>

#include "core/count.hpp"

namespace copath::core {

namespace {

/// Intrusive path-cover state: vertices are linked through next/prev;
/// paths are records in an arena chained into per-tree-node lists.
struct CoverState {
  std::vector<VertexId> next, prev;
  struct Path {
    VertexId head;
    VertexId tail;
    std::int32_t next_path;  // arena link, -1 at the end of a cover list
  };
  std::vector<Path> arena;
  struct Cover {
    std::int32_t first = -1;
    std::int32_t last = -1;
    std::int64_t count = 0;
  };

  explicit CoverState(std::size_t n)
      : next(n, cograph::kNull), prev(n, cograph::kNull) {
    arena.reserve(n);
  }

  Cover singleton(VertexId v) {
    arena.push_back({v, v, -1});
    const auto id = static_cast<std::int32_t>(arena.size() - 1);
    return Cover{id, id, 1};
  }

  static Cover concat(Cover a, Cover b, std::vector<Path>& arena) {
    if (a.count == 0) return b;
    if (b.count == 0) return a;
    arena[static_cast<std::size_t>(a.last)].next_path = b.first;
    return Cover{a.first, b.last, a.count + b.count};
  }
};

}  // namespace

PathCover min_path_cover_sequential(const cograph::Cotree& t) {
  auto bc = cograph::binarize(t);
  const auto leaf_count = cograph::make_leftist(bc);
  return min_path_cover_sequential(bc, leaf_count);
}

PathCover min_path_cover_sequential(
    const cograph::BinarizedCotree& bc,
    const std::vector<std::int64_t>& leaf_count) {
  const std::size_t bn = bc.size();
  const std::size_t n = bc.leaf_of_vertex.size();
  CoverState st(n);
  auto& arena = st.arena;
  std::vector<CoverState::Cover> cover(bn);

  // Post-order sweep (iterative).
  std::vector<std::int32_t> order;
  order.reserve(bn);
  {
    std::vector<std::int32_t> stack{bc.tree.root};
    while (!stack.empty()) {
      const std::int32_t v = stack.back();
      stack.pop_back();
      order.push_back(v);
      const auto vu = static_cast<std::size_t>(v);
      if (bc.tree.left[vu] != -1) stack.push_back(bc.tree.left[vu]);
      if (bc.tree.right[vu] != -1) stack.push_back(bc.tree.right[vu]);
    }
  }

  // Scratch reused across 1-nodes.
  std::vector<VertexId> w_vertices;
  std::vector<std::pair<VertexId, VertexId>> segments;  // (head, tail)

  for (std::size_t i = order.size(); i-- > 0;) {
    const std::int32_t node = order[i];
    const auto vu = static_cast<std::size_t>(node);
    const std::int32_t lc = bc.tree.left[vu];
    const std::int32_t rc = bc.tree.right[vu];
    if (lc == -1) {  // leaf
      cover[vu] = st.singleton(bc.vertex[vu]);
      continue;
    }
    const auto lcu = static_cast<std::size_t>(lc);
    const auto rcu = static_cast<std::size_t>(rc);
    if (!bc.is_join[vu]) {  // 0-node: disjoint union
      cover[vu] = CoverState::concat(cover[lcu], cover[rcu], arena);
      continue;
    }
    // 1-node. Gather the vertices of G(w) by walking w's cover (their
    // internal edges are never used — §2).
    const std::int64_t lw = leaf_count[rcu];
    const std::int64_t pv = cover[lcu].count;
    w_vertices.clear();
    for (std::int32_t pid = cover[rcu].first; pid != -1;
         pid = arena[static_cast<std::size_t>(pid)].next_path) {
      VertexId v = arena[static_cast<std::size_t>(pid)].head;
      while (v != cograph::kNull) {
        const VertexId nxt = st.next[static_cast<std::size_t>(v)];
        st.next[static_cast<std::size_t>(v)] = cograph::kNull;
        st.prev[static_cast<std::size_t>(v)] = cograph::kNull;
        w_vertices.push_back(v);
        v = nxt;
      }
    }
    COPATH_CHECK(static_cast<std::int64_t>(w_vertices.size()) == lw);

    const auto link = [&](VertexId a, VertexId b) {
      st.next[static_cast<std::size_t>(a)] = b;
      st.prev[static_cast<std::size_t>(b)] = a;
    };

    if (pv > lw) {
      // Case 1: bridge lw+1 paths into one with the lw vertices of G(w).
      std::int32_t pid = cover[lcu].first;
      const VertexId head = arena[static_cast<std::size_t>(pid)].head;
      VertexId tail = arena[static_cast<std::size_t>(pid)].tail;
      for (std::int64_t k = 0; k < lw; ++k) {
        const VertexId s = w_vertices[static_cast<std::size_t>(k)];
        pid = arena[static_cast<std::size_t>(pid)].next_path;
        link(tail, s);
        link(s, arena[static_cast<std::size_t>(pid)].head);
        tail = arena[static_cast<std::size_t>(pid)].tail;
      }
      // Reuse the first arena record for the merged path; the rest of the
      // list (pv - lw - 1 paths) stays as-is.
      const std::int32_t rest =
          arena[static_cast<std::size_t>(pid)].next_path;
      const std::int32_t merged = cover[lcu].first;
      arena[static_cast<std::size_t>(merged)].head = head;
      arena[static_cast<std::size_t>(merged)].tail = tail;
      arena[static_cast<std::size_t>(merged)].next_path = rest;
      cover[vu] = CoverState::Cover{
          merged, rest == -1 ? merged : cover[lcu].last, pv - lw};
      continue;
    }
    // Case 2: p(v)-1 bridges, the rest inserted -> Hamiltonian path.
    segments.clear();
    for (std::int32_t pid = cover[lcu].first; pid != -1;
         pid = arena[static_cast<std::size_t>(pid)].next_path) {
      segments.emplace_back(arena[static_cast<std::size_t>(pid)].head,
                            arena[static_cast<std::size_t>(pid)].tail);
    }
    COPATH_CHECK(static_cast<std::int64_t>(segments.size()) == pv);
    for (std::int64_t k = 0; k + 1 < pv; ++k) {
      const VertexId s = w_vertices[static_cast<std::size_t>(k)];
      link(segments[static_cast<std::size_t>(k)].second, s);
      link(s, segments[static_cast<std::size_t>(k + 1)].first);
    }
    VertexId head = segments.front().first;
    VertexId tail = segments.back().second;
    // Insert the remaining lw - pv + 1 vertices next to G(v)-vertices only:
    // the slot before the head, the slots between consecutive same-segment
    // vertices, then the slot after the tail.
    std::size_t ins = static_cast<std::size_t>(pv - 1);  // next w vertex
    if (ins < w_vertices.size()) {
      const VertexId tv = w_vertices[ins++];
      link(tv, head);
      head = tv;
    }
    for (std::size_t seg = 0;
         seg < segments.size() && ins < w_vertices.size(); ++seg) {
      VertexId x = segments[seg].first;
      const VertexId stop = segments[seg].second;
      while (x != stop && ins < w_vertices.size()) {
        const VertexId y = st.next[static_cast<std::size_t>(x)];
        const VertexId tv = w_vertices[ins++];
        link(x, tv);
        link(tv, y);
        x = y;
      }
    }
    if (ins < w_vertices.size()) {
      const VertexId tv = w_vertices[ins++];
      link(tail, tv);
      tail = tv;
    }
    COPATH_CHECK_MSG(ins == w_vertices.size(),
                     "insert capacity exhausted — leftist precondition "
                     "violated?");
    const std::int32_t merged = cover[lcu].first;
    arena[static_cast<std::size_t>(merged)].head = head;
    arena[static_cast<std::size_t>(merged)].tail = tail;
    arena[static_cast<std::size_t>(merged)].next_path = -1;
    cover[vu] = CoverState::Cover{merged, merged, 1};
  }

  // Extract the root cover.
  PathCover out;
  const auto& root_cover = cover[static_cast<std::size_t>(bc.tree.root)];
  out.paths.reserve(static_cast<std::size_t>(root_cover.count));
  for (std::int32_t pid = root_cover.first; pid != -1;
       pid = arena[static_cast<std::size_t>(pid)].next_path) {
    out.paths.emplace_back();
    for (VertexId v = arena[static_cast<std::size_t>(pid)].head;
         v != cograph::kNull; v = st.next[static_cast<std::size_t>(v)]) {
      out.paths.back().push_back(v);
    }
  }
  return out;
}

}  // namespace copath::core
