// Binary operators for the scan/reduce primitives.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>

namespace copath::par {

template <typename T>
struct Plus {
  static constexpr T identity() { return T{}; }
  constexpr T operator()(T a, T b) const { return a + b; }
};

template <typename T>
struct Max {
  static constexpr T identity() { return std::numeric_limits<T>::lowest(); }
  constexpr T operator()(T a, T b) const { return std::max(a, b); }
};

template <typename T>
struct Min {
  static constexpr T identity() { return std::numeric_limits<T>::max(); }
  constexpr T operator()(T a, T b) const { return std::min(a, b); }
};

}  // namespace copath::par
