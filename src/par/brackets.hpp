// Parallel bracket matching (Lemma 5.1(3) of the paper).
//
// Input: a sign array over positions (+1 open, -1 close, 0 absent). Output:
// match[i] = position of i's partner, or -1. Semantics are stack matching —
// every close pairs with the nearest unmatched open to its left; brackets
// may remain unmatched (the paper's B(R) sequences rely on this: path-tree
// roots keep unmatched "[", childless slots keep unmatched "(").
//
// Algorithm (O(n/P + log n) steps, O(n + P log P) work, EREW):
//   1. Each of P blocks stack-matches locally; leftovers form one run of
//      closes and one run of opens per block.
//   2. A tournament tree over blocks aggregates (closes, opens) counts;
//      node v with children (l, r) matches k_v = min(opens(l), closes(r))
//      cross pairs, rank-aligned: the j-th surviving close of r (j < k_v)
//      pairs with open number opens(l)-1-j of l.
//   3. Every block receives its root-path tuples (k, sibling counts, slot
//      base) via one "take-last-defined" scan over a level-major matrix —
//      an EREW broadcast.
//   4. Each block walks its path once per side. Surviving close indices
//      transform affinely (j ± const), so the matched set per level is a
//      prefix of the block's close run (a suffix of its open run), and the
//      walk emits (slot = base_v + event_rank) for each matched bracket.
//   5. Slot arrays pair up: slot_close[s] and slot_open[s] are partners.
#pragma once

#include <cstdint>
#include <vector>

#include "par/scan.hpp"

namespace copath::par {

/// Host reference implementation (also used by the sequential pipeline).
inline std::vector<std::int64_t> match_brackets_seq(
    const std::vector<std::int8_t>& sign) {
  std::vector<std::int64_t> match(sign.size(), -1);
  std::vector<std::int64_t> stack;
  for (std::size_t i = 0; i < sign.size(); ++i) {
    if (sign[i] > 0) {
      stack.push_back(static_cast<std::int64_t>(i));
    } else if (sign[i] < 0 && !stack.empty()) {
      match[i] = stack.back();
      match[static_cast<std::size_t>(stack.back())] =
          static_cast<std::int64_t>(i);
      stack.pop_back();
    }
  }
  return match;
}

/// Parallel bracket matcher (generic over the executor). `sign` is the
/// input; `match` (same size) receives partner positions or -1.
template <typename E>
void match_brackets(E& m, const exec::ArrayOf<E, std::int8_t>& sign,
                    exec::ArrayOf<E, std::int64_t>& match) {
  const std::size_t n = sign.size();
  COPATH_CHECK(match.size() == n);
  if (n == 0) return;
  if constexpr (exec::native_shortcuts_v<E>) {
    if (m.sequential_ok(exec::Stage::Brackets, n)) {
      // One host stack pass (the match_brackets_seq semantics); the stack
      // itself is arena scratch so steady-state solves stay allocation-free.
      auto sv = sign.host_span();
      auto mv = match.host_span();
      auto stack = exec::make_array<std::int64_t>(m, n);
      auto st = stack.host_span();
      std::size_t top = 0;
      for (std::size_t i = 0; i < n; ++i) {
        mv[i] = -1;
        if (sv[i] > 0) {
          st[top++] = static_cast<std::int64_t>(i);
        } else if (sv[i] < 0 && top > 0) {
          const auto j = static_cast<std::size_t>(st[--top]);
          mv[i] = static_cast<std::int64_t>(j);
          mv[j] = static_cast<std::int64_t>(i);
        }
      }
      m.charge_host_pass(n);
      return;
    }
  }
  const std::size_t blocks = detail::block_count(m, n);
  const std::size_t bsz = detail::ceil_div(n, blocks);

  fill(m, match, std::int64_t{-1});

  // ---- Phase 1: block-local stack matching --------------------------
  auto uc_pos = exec::make_array<std::int64_t>(m, n, std::int64_t{-1});  // unmatched closes, segmented
  auto uo_pos = exec::make_array<std::int64_t>(m, n, std::int64_t{-1});  // unmatched opens, segmented
  auto c_cnt = exec::make_array<std::int64_t>(m, blocks, std::int64_t{0});
  auto o_cnt = exec::make_array<std::int64_t>(m, blocks, std::int64_t{0});
  m.blocked_step(blocks, [&](auto& c, std::size_t b) -> std::uint64_t {
    const std::size_t lo = std::min(n, b * bsz);
    const std::size_t hi = std::min(n, lo + bsz);
    std::vector<std::int64_t> stack;  // processor-local memory
    std::int64_t closes = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      const std::int8_t s = sign.get(c, i);
      if (s > 0) {
        stack.push_back(static_cast<std::int64_t>(i));
      } else if (s < 0) {
        if (!stack.empty()) {
          const auto j = static_cast<std::size_t>(stack.back());
          stack.pop_back();
          match.put(c, i, static_cast<std::int64_t>(j));
          match.put(c, j, static_cast<std::int64_t>(i));
        } else {
          uc_pos.put(c, lo + static_cast<std::size_t>(closes),
                     static_cast<std::int64_t>(i));
          ++closes;
        }
      }
    }
    for (std::size_t t = 0; t < stack.size(); ++t)
      uo_pos.put(c, lo + t, stack[t]);
    c_cnt.put(c, b, closes);
    o_cnt.put(c, b, static_cast<std::int64_t>(stack.size()));
    return hi - lo;
  });
  if (blocks == 1) return;  // local matching was global

  // ---- Phase 2: tournament tree of (closes, opens, k) ----------------
  const std::size_t p2 = detail::next_pow2(blocks);
  std::size_t levels = 0;  // log2(p2)
  while ((std::size_t{1} << levels) < p2) ++levels;

  // Level-major layout: level 0 has p2 leaf entries, level v has p2 >> v.
  std::vector<std::size_t> level_off(levels + 2, 0);
  for (std::size_t lv = 0; lv <= levels; ++lv)
    level_off[lv + 1] = level_off[lv] + (p2 >> lv);
  const std::size_t tree_sz = level_off[levels + 1];

  auto tc = exec::make_array<std::int64_t>(m, tree_sz, std::int64_t{0});  // closes per node
  auto to = exec::make_array<std::int64_t>(m, tree_sz, std::int64_t{0});  // opens per node
  auto tk = exec::make_array<std::int64_t>(m, tree_sz, std::int64_t{0});  // k (levels >= 1)
  m.pfor(blocks, [&](auto& c, std::size_t b) {
    tc.put(c, b, c_cnt.get(c, b));
    to.put(c, b, o_cnt.get(c, b));
  });
  for (std::size_t lv = 1; lv <= levels; ++lv) {
    m.pfor(p2 >> lv, [&](auto& c, std::size_t v) {
      const std::size_t l = level_off[lv - 1] + 2 * v;
      const std::size_t r = l + 1;
      const std::int64_t cl = tc.get(c, l);
      const std::int64_t ol = to.get(c, l);
      const std::int64_t cr = tc.get(c, r);
      const std::int64_t orr = to.get(c, r);
      const std::int64_t k = std::min(ol, cr);
      const std::size_t me = level_off[lv] + v;
      tc.put(c, me, cl + std::max<std::int64_t>(0, cr - ol));
      to.put(c, me, orr + std::max<std::int64_t>(0, ol - cr));
      tk.put(c, me, k);
    });
  }

  // ---- Phase 3: slot bases (exclusive scan of k over all nodes) ------
  auto base = exec::make_array<std::int64_t>(m, tree_sz, std::int64_t{0});
  exclusive_scan_into(m, tk, base);
  const auto total_matched =
      static_cast<std::size_t>(base.host(tree_sz - 1) + tk.host(tree_sz - 1));
  if (total_matched == 0) return;

  // ---- Phase 4: EREW broadcast of root-path tuples -------------------
  struct Tup {
    std::int64_t k = 0;
    std::int64_t base = 0;
    std::int64_t closes_lsib = 0;
    std::int64_t opens_lsib = 0;
    std::int64_t opens_own = 0;
    std::uint8_t is_right = 0;
    std::uint8_t set = 0;
  };
  // Per (level r, node u at level r): the tuple describing u's merge into
  // its parent. Two parity substeps keep parent reads exclusive.
  auto tup = exec::make_array<Tup>(m, tree_sz);
  for (const std::size_t parity : {std::size_t{0}, std::size_t{1}}) {
    for (std::size_t r = 0; r < levels; ++r) {
      const std::size_t cnt = (p2 >> r) / 2;
      m.pfor(cnt, [&](auto& c, std::size_t half) {
        const std::size_t u_local = 2 * half + parity;
        const std::size_t u = level_off[r] + u_local;
        const std::size_t sib = level_off[r] + (u_local ^ 1);
        const std::size_t par = level_off[r + 1] + u_local / 2;
        Tup t;
        t.k = tk.get(c, par);
        t.base = base.get(c, par);
        t.closes_lsib = tc.get(c, sib);
        t.opens_lsib = to.get(c, sib);
        t.opens_own = to.get(c, u);
        t.is_right = static_cast<std::uint8_t>(u_local & 1);
        t.set = 1;
        tup.put(c, u, t);
      });
    }
  }
  // Level-major matrix M[r][b] = tuple of block b's ancestor at level r;
  // filled by writing each tuple at its segment start and sweeping with a
  // take-last-defined scan (associative; every segment start is defined, so
  // values never leak across segments).
  struct TakeSet {
    static constexpr Tup identity() { return Tup{}; }
    Tup operator()(const Tup& a, const Tup& b) const { return b.set ? b : a; }
  };
  auto mat = exec::make_array<Tup>(m, levels * p2);
  m.pfor(levels * p2, [&](auto& c, std::size_t pos) {
    const std::size_t r = pos / p2;
    const std::size_t b = pos % p2;
    if ((b & ((std::size_t{1} << r) - 1)) == 0) {
      mat.put(c, pos, tup.get(c, level_off[r] + (b >> r)));
    } else {
      mat.put(c, pos, Tup{});
    }
  });
  inclusive_scan(m, mat, TakeSet{});

  // ---- Phase 5: per-block staircase walks ----------------------------
  auto slot_close = exec::make_array<std::int64_t>(m, total_matched, std::int64_t{-1});
  auto slot_open = exec::make_array<std::int64_t>(m, total_matched, std::int64_t{-1});
  m.blocked_step(blocks, [&](auto& c, std::size_t b) -> std::uint64_t {
    std::uint64_t cost = 1;
    // Close side: indices j in [0, a) transform as j -> j + delta; matched
    // sets are prefixes.
    const auto a = static_cast<std::int64_t>(c_cnt.get(c, b));
    std::int64_t delta = 0;
    std::int64_t matched_hi = 0;
    for (std::size_t r = 0; r < levels && matched_hi < a; ++r) {
      const Tup t = mat.get(c, r * p2 + b);
      ++cost;
      if (!t.is_right) continue;
      const std::int64_t thresh = t.k - delta;  // j < thresh matches here
      const std::int64_t new_hi = std::min(a, std::max(matched_hi, thresh));
      for (std::int64_t j = matched_hi; j < new_hi; ++j) {
        const auto slot = static_cast<std::size_t>(t.base + j + delta);
        slot_close.put(c, slot, uc_pos.get(c, b * bsz +
                                                  static_cast<std::size_t>(j)));
        ++cost;
      }
      matched_hi = new_hi;
      delta += t.closes_lsib - t.k;
    }
    // Open side: indices i in [0, o) transform as i -> i + delta_o; matched
    // sets are suffixes.
    const auto o = static_cast<std::int64_t>(o_cnt.get(c, b));
    std::int64_t delta_o = 0;
    std::int64_t matched_lo = o;
    for (std::size_t r = 0; r < levels && matched_lo > 0; ++r) {
      const Tup t = mat.get(c, r * p2 + b);
      ++cost;
      if (t.is_right) {
        delta_o += t.opens_lsib - t.k;
        continue;
      }
      const std::int64_t bound = t.opens_own - t.k - delta_o;
      const std::int64_t new_lo = std::max<std::int64_t>(
          0, std::min(matched_lo, bound));
      for (std::int64_t i = new_lo; i < matched_lo; ++i) {
        const std::int64_t rank = t.opens_own - 1 - (i + delta_o);
        const auto slot = static_cast<std::size_t>(t.base + rank);
        slot_open.put(c, slot, uo_pos.get(c, b * bsz +
                                                 static_cast<std::size_t>(i)));
        ++cost;
      }
      matched_lo = new_lo;
    }
    return cost;
  });

  // ---- Phase 6: pair through the slots --------------------------------
  m.pfor(total_matched, [&](auto& c, std::size_t s) {
    const std::int64_t cp = slot_close.get(c, s);
    const std::int64_t op = slot_open.get(c, s);
    if (cp < 0 || op < 0) return;  // unfilled slot (k over-allocated: never
                                   // happens, but stay defensive)
    match.put(c, static_cast<std::size_t>(cp), op);
    match.put(c, static_cast<std::size_t>(op), cp);
  });
}

}  // namespace copath::par
