// Euler-tour tree numbering for binary trees (Lemma 5.2 of the paper).
//
// Given a rooted binary tree, computes in O(log n) steps and O(n) work on
// the EREW machine (with P = n/log n processors):
//   preorder / inorder / postorder numbers, depth, subtree sizes,
//   descendant-leaf counts, and left-to-right leaf numbering.
//
// Construction: the tour is a linked list over directed edge items
// (down(c) = 2c enters c's subtree, up(c) = 2c+1 leaves it; the root has no
// items). Successors are computed in O(1) steps — parents fill in the
// successors of their children's `up` items so no cell is read twice in a
// step — and positions come from list ranking. All derived numbers are
// prefix sums over position-indexed indicator arrays.
//
// Generic over the executor (exec/exec.hpp): run it on exec::CheckedPram
// for the proven EREW bounds, on exec::Native for production speed.
#pragma once

#include <cstdint>
#include <vector>

#include "par/bintree.hpp"
#include "par/list_ranking.hpp"
#include "par/scan.hpp"

namespace copath::par {

/// Which list-ranking engine positions the tour.
enum class RankEngine {
  Contract,  // randomized contraction: O(n) expected work (default)
  Wyllie,    // pointer jumping: O(n log n) work, deterministic
};

struct EulerNumbers {
  // All vectors are indexed by node id; `n` entries each.
  std::vector<std::int64_t> pre;      // root = 0
  std::vector<std::int64_t> in;       // inorder (binary-tree semantics)
  std::vector<std::int64_t> post;     // root = n-1
  std::vector<std::int64_t> depth;    // root = 0
  std::vector<std::int64_t> leaves;   // descendant leaves (self included)
  std::vector<std::int64_t> subtree;  // subtree size (self included)
  std::vector<std::int64_t> leafnum;  // left-to-right rank among leaves;
                                      // -1 for internal nodes
  std::vector<std::int64_t> first_leaf;  // leaf rank of the leftmost
                                         // descendant leaf
  // Tour positions of each node's down/up items; -1 for the root.
  std::vector<std::int64_t> down_pos;
  std::vector<std::int64_t> up_pos;
  std::int64_t tour_length = 0;
};

/// One-pass host DFS producing the full EulerNumbers (the native
/// shortcut). Every field is a deterministic function of the tree — tour
/// positions come from the recursive tour definition (down(v), subtree,
/// up(v)), the counters reproduce the prefix-sum-derived numbers exactly —
/// so the output is value-identical to the tour + list-ranking program
/// (tests/exec_test.cpp runs the differential).
inline EulerNumbers euler_numbers_host(const BinTree& t) {
  const std::size_t n = t.size();
  EulerNumbers out;
  out.pre.assign(n, 0);
  out.in.assign(n, 0);
  out.post.assign(n, 0);
  out.depth.assign(n, 0);
  out.leaves.assign(n, 0);
  out.subtree.assign(n, 0);
  out.leafnum.assign(n, -1);
  out.first_leaf.assign(n, 0);
  out.down_pos.assign(n, -1);
  out.up_pos.assign(n, -1);
  if (n == 0) return out;
  if (n == 1) {
    out.leaves[0] = 1;
    out.subtree[0] = 1;
    out.leafnum[0] = 0;
    out.post[0] = 0;
    return out;
  }
  const auto root = static_cast<std::size_t>(t.root);
  out.tour_length = static_cast<std::int64_t>(2 * (n - 1));

  std::int64_t pos = 0;     // tour item counter
  std::int64_t pre_c = 0;   // non-root entries so far
  std::int64_t post_c = 0;  // exits so far (root exits last: n - 1)
  std::int64_t in_c = 0;    // inorder events so far
  std::int64_t leaf_c = 0;  // leaves entered so far

  // Explicit stack of v * 4 + phase: 0 = enter, 1 = inorder event (fires
  // after the left subtree — or immediately when there is none), 2 = exit.
  std::vector<std::int64_t> stack;
  stack.reserve(64);
  stack.push_back(static_cast<std::int64_t>(root) * 4);
  while (!stack.empty()) {
    const std::int64_t item = stack.back();
    stack.pop_back();
    const auto v = static_cast<std::size_t>(item / 4);
    const NodeId l = t.left[v];
    const NodeId r = t.right[v];
    switch (item % 4) {
      case 0: {  // enter
        if (v != root) {
          out.down_pos[v] = pos++;
          out.depth[v] =
              out.depth[static_cast<std::size_t>(t.parent[v])] + 1;
          out.pre[v] = ++pre_c;
        }
        out.first_leaf[v] = v == root ? 0 : leaf_c;
        if (l == kNull && r == kNull) out.leafnum[v] = leaf_c++;
        stack.push_back(item + 2);  // exit
        if (r != kNull) stack.push_back(static_cast<std::int64_t>(r) * 4);
        stack.push_back(item + 1);  // inorder event
        if (l != kNull) stack.push_back(static_cast<std::int64_t>(l) * 4);
        break;
      }
      case 1: {  // inorder event
        out.in[v] = in_c++;
        break;
      }
      default: {  // exit
        if (v != root) out.up_pos[v] = pos++;
        out.post[v] = post_c++;
        const bool leaf = l == kNull && r == kNull;
        std::int64_t sub = 1, lv = leaf ? 1 : 0;
        if (l != kNull) {
          sub += out.subtree[static_cast<std::size_t>(l)];
          lv += out.leaves[static_cast<std::size_t>(l)];
        }
        if (r != kNull) {
          sub += out.subtree[static_cast<std::size_t>(r)];
          lv += out.leaves[static_cast<std::size_t>(r)];
        }
        out.subtree[v] = sub;
        out.leaves[v] = lv;
        break;
      }
    }
  }
  return out;
}

template <typename E>
EulerNumbers euler_numbers(E& m, const BinTree& t,
                           RankEngine engine = RankEngine::Contract) {
  const std::size_t n = t.size();
  if constexpr (exec::native_shortcuts_v<E>) {
    if (m.sequential_ok(exec::Stage::Euler, n)) {
      m.charge_host_pass(2 * n);
      return euler_numbers_host(t);
    }
  }
  EulerNumbers out;
  out.pre.assign(n, 0);
  out.in.assign(n, 0);
  out.post.assign(n, 0);
  out.depth.assign(n, 0);
  out.leaves.assign(n, 0);
  out.subtree.assign(n, 0);
  out.leafnum.assign(n, -1);
  out.first_leaf.assign(n, 0);
  out.down_pos.assign(n, -1);
  out.up_pos.assign(n, -1);
  if (n == 0) return out;
  if (n == 1) {
    out.leaves[0] = 1;
    out.subtree[0] = 1;
    out.leafnum[0] = 0;
    out.post[0] = 0;
    return out;
  }

  const auto root = static_cast<std::size_t>(t.root);
  const std::size_t items = 2 * n;
  const auto down = [](std::int64_t c) { return 2 * c; };
  const auto up = [](std::int64_t c) { return 2 * c + 1; };

  // Load the tree into shared memory (input tape).
  auto left = exec::make_array<NodeId>(m, t.left);
  auto right = exec::make_array<NodeId>(m, t.right);

  auto succ = exec::make_array<NodeId>(m, items, kNull);
  // Each node computes the successor of its own `down` item and the
  // successors of its children's `up` items (exclusive by construction).
  m.pfor(n, [&](auto& c, std::size_t v) {
    const NodeId l = left.get(c, v);
    const NodeId r = right.get(c, v);
    if (v != root) {
      std::int64_t nxt;
      if (l != kNull) {
        nxt = down(l);
      } else if (r != kNull) {
        nxt = down(r);
      } else {
        nxt = up(static_cast<std::int64_t>(v));
      }
      succ.put(c, static_cast<std::size_t>(down(static_cast<std::int64_t>(v))),
               static_cast<NodeId>(nxt));
    }
    const bool v_is_root = (v == root);
    if (l != kNull) {
      const std::int64_t after_l =
          (r != kNull) ? down(r)
                       : (v_is_root ? -1 : up(static_cast<std::int64_t>(v)));
      succ.put(c, static_cast<std::size_t>(up(l)),
               static_cast<NodeId>(after_l));
    }
    if (r != kNull) {
      const std::int64_t after_r =
          v_is_root ? -1 : up(static_cast<std::int64_t>(v));
      succ.put(c, static_cast<std::size_t>(up(r)),
               static_cast<NodeId>(after_r));
    }
  });

  // Positions from ranks (rank = distance to tour tail).
  auto rank = exec::make_array<std::int64_t>(m, items, std::int64_t{0});
  if (engine == RankEngine::Contract) {
    list_rank_contract(m, succ, rank);
  } else {
    list_rank_wyllie(m, succ, rank);
  }
  const std::int64_t tour_len = static_cast<std::int64_t>(2 * (n - 1));
  out.tour_length = tour_len;

  auto dpos = exec::make_array<std::int64_t>(m, n, std::int64_t{-1});
  auto upos = exec::make_array<std::int64_t>(m, n, std::int64_t{-1});
  m.pfor(n, [&](auto& c, std::size_t v) {
    if (v == root) return;
    const auto vi = static_cast<std::int64_t>(v);
    dpos.put(c, v,
             tour_len - 1 - rank.get(c, static_cast<std::size_t>(down(vi))));
    upos.put(c, v,
             tour_len - 1 - rank.get(c, static_cast<std::size_t>(up(vi))));
  });

  // Position-indexed indicators.
  const auto tlen = static_cast<std::size_t>(tour_len);
  auto delta = exec::make_array<std::int64_t>(m, tlen, std::int64_t{0});
  auto downs = exec::make_array<std::int64_t>(m, tlen, std::int64_t{0});
  auto ups = exec::make_array<std::int64_t>(m, tlen, std::int64_t{0});
  auto leafdowns = exec::make_array<std::int64_t>(m, tlen, std::int64_t{0});
  m.pfor(n, [&](auto& c, std::size_t v) {
    if (v == root) return;
    const auto dp = static_cast<std::size_t>(dpos.get(c, v));
    const auto upp = static_cast<std::size_t>(upos.get(c, v));
    const bool leaf = left.get(c, v) == kNull && right.get(c, v) == kNull;
    delta.put(c, dp, 1);
    delta.put(c, upp, -1);
    downs.put(c, dp, 1);
    ups.put(c, upp, 1);
    if (leaf) leafdowns.put(c, dp, 1);
  });
  inclusive_scan4(m, delta, downs, ups, leafdowns);

  // Gather per-node numbers.
  auto pre = exec::make_array<std::int64_t>(m, n, std::int64_t{0});
  auto post = exec::make_array<std::int64_t>(m, n, std::int64_t{0});
  auto depth = exec::make_array<std::int64_t>(m, n, std::int64_t{0});
  auto leaves = exec::make_array<std::int64_t>(m, n, std::int64_t{0});
  auto subtree = exec::make_array<std::int64_t>(m, n, std::int64_t{0});
  auto leafnum = exec::make_array<std::int64_t>(m, n, std::int64_t{-1});
  auto firstleaf = exec::make_array<std::int64_t>(m, n, std::int64_t{0});
  m.pfor(n, [&](auto& c, std::size_t v) {
    if (v == root) return;  // root handled on the host below (its values
                            // would share cells with the last tour item)
    const bool leaf = left.get(c, v) == kNull && right.get(c, v) == kNull;
    const auto dp = static_cast<std::size_t>(dpos.get(c, v));
    const auto upp = static_cast<std::size_t>(upos.get(c, v));
    depth.put(c, v, delta.get(c, dp));
    const std::int64_t downs_at_dp = downs.get(c, dp);
    pre.put(c, v, downs_at_dp);
    post.put(c, v, ups.get(c, upp) - 1);
    const std::int64_t ld_dp = leafdowns.get(c, dp);
    leaves.put(c, v, leafdowns.get(c, upp) - ld_dp + (leaf ? 1 : 0));
    subtree.put(c, v, downs.get(c, upp) - downs_at_dp + 1);
    if (leaf) leafnum.put(c, v, ld_dp - 1);
    // Leaves strictly before this subtree = leafdowns before our down item.
    firstleaf.put(c, v, ld_dp - (leaf ? 1 : 0));
  });
  pre.host(root) = 0;
  post.host(root) = static_cast<std::int64_t>(n) - 1;
  depth.host(root) = 0;
  leaves.host(root) =
      leafdowns.host(static_cast<std::size_t>(tour_len) - 1);
  subtree.host(root) = static_cast<std::int64_t>(n);

  // Inorder via the "event position" trick: node v's inorder event sits at
  // up(left(v)) + 1 when v has a left child, at down(v) + 1 otherwise, and
  // at slot 0 for a left-childless root. Events are pairwise distinct.
  const std::size_t ev_len = static_cast<std::size_t>(tour_len) + 1;
  auto events = exec::make_array<std::int64_t>(m, ev_len, std::int64_t{0});
  auto ev_of = exec::make_array<std::int64_t>(m, n, std::int64_t{0});
  m.pfor(n, [&](auto& c, std::size_t v) {
    const NodeId l = left.get(c, v);
    std::int64_t ev;
    if (l != kNull) {
      ev = upos.get(c, static_cast<std::size_t>(l)) + 1;
    } else if (v == root) {
      ev = 0;
    } else {
      ev = dpos.get(c, v) + 1;
    }
    ev_of.put(c, v, ev);
    events.put(c, static_cast<std::size_t>(ev), 1);
  });
  inclusive_scan(m, events);
  m.pfor(n, [&](auto& c, std::size_t v) {
    out.in[v] =
        events.get(c, static_cast<std::size_t>(ev_of.get(c, v))) - 1;
  });

  // Export (host copies).
  for (std::size_t v = 0; v < n; ++v) {
    out.pre[v] = pre.host(v);
    out.post[v] = post.host(v);
    out.depth[v] = depth.host(v);
    out.leaves[v] = leaves.host(v);
    out.subtree[v] = subtree.host(v);
    out.leafnum[v] = leafnum.host(v);
    out.first_leaf[v] = firstleaf.host(v);
    out.down_pos[v] = dpos.host(v);
    out.up_pos[v] = upos.host(v);
  }
  return out;
}

}  // namespace copath::par
