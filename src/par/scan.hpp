// Work-optimal EREW prefix sums (Lemma 5.1(2) of the paper) and friends.
//
// All functions are executor programs (exec/exec.hpp): they only touch
// memory through executor arrays inside phases, so running them on the
// checked PRAM executor proves they respect the EREW contract and yields
// their step/work counts, while the Native executor runs the identical
// code at memory speed.
//
// Scheduling: with the executor configured for P processors, an n-element
// scan runs in O(n/P + log n) steps and O(n + P) work — the classic
// three-phase blocked scan (sequential block reduce, Blelloch scan of the P
// block sums, sequential block re-sweep). With P = n / log2 n this is the
// paper's O(log n) time, O(n) work bound.
#pragma once

#include <cstdint>
#include <vector>

#include "exec/checked_pram.hpp"
#include "par/ops.hpp"
#include "util/math.hpp"

namespace copath::par {

namespace detail {

using util::ceil_div;
using util::next_pow2;

/// Number of blocks (= virtual processors for the blocked phases) the
/// executor's configuration implies for an n-element primitive.
template <typename E>
std::size_t block_count(const E& ex, std::size_t n) {
  const std::size_t p = ex.processors() == 0 ? n : ex.processors();
  return std::min(n, p);
}

/// In-place Blelloch exclusive scan over a pow2-padded scratch array.
/// Steps: 2 log2(m), work O(m).
template <typename E, typename A, typename Op>
void blelloch_exclusive_pow2(E& m, A& t, Op op) {
  using T = typename A::value_type;
  const std::size_t size = t.size();
  // Up-sweep (reduce).
  for (std::size_t stride = 2; stride <= size; stride <<= 1) {
    const std::size_t count = size / stride;
    m.pfor(count, [&](auto& c, std::size_t j) {
      const std::size_t hi = (j + 1) * stride - 1;
      const std::size_t lo = hi - stride / 2;
      t.put(c, hi, op(t.get(c, lo), t.get(c, hi)));
    });
  }
  t.host(size - 1) = Op::identity();
  // Down-sweep.
  for (std::size_t stride = size; stride >= 2; stride >>= 1) {
    const std::size_t count = size / stride;
    m.pfor(count, [&](auto& c, std::size_t j) {
      const std::size_t hi = (j + 1) * stride - 1;
      const std::size_t lo = hi - stride / 2;
      const T left = t.get(c, lo);
      const T here = t.get(c, hi);  // incoming prefix for this subtree
      t.put(c, lo, here);
      // The right subtree's prefix = incoming elements, then the left
      // subtree — op(here, left), not op(left, here); the distinction
      // matters for non-commutative operators (segmented/take-last scans).
      t.put(c, hi, op(here, left));
    });
  }
}

}  // namespace detail

/// In-place exclusive prefix scan of `a` under `op`. a[i] becomes
/// op(a[0], ..., a[i-1]) (identity for i = 0).
template <typename E, typename A, typename Op = Plus<typename A::value_type>>
void exclusive_scan(E& m, A& a, Op op = Op{}) {
  using T = typename A::value_type;
  const std::size_t n = a.size();
  if (n == 0) return;
  if constexpr (exec::native_shortcuts_v<E>) {
    if (m.sequential_ok(exec::Stage::Scan, n)) {
      auto s = a.host_span();
      T acc = Op::identity();
      for (std::size_t i = 0; i < n; ++i) {
        const T v = s[i];
        s[i] = acc;
        acc = op(acc, v);
      }
      m.charge_host_pass(n);
      return;
    }
  }
  const std::size_t blocks = detail::block_count(m, n);
  const std::size_t block = detail::ceil_div(n, blocks);

  auto sums =
      exec::make_array<T>(m, detail::next_pow2(blocks), Op::identity());
  // Phase 1: each processor reduces its contiguous block.
  m.blocked_step(blocks, [&](auto& c, std::size_t b) -> std::uint64_t {
    const std::size_t lo = std::min(n, b * block);
    const std::size_t hi = std::min(n, lo + block);
    T acc = Op::identity();
    for (std::size_t i = lo; i < hi; ++i) acc = op(acc, a.get(c, i));
    sums.put(c, b, acc);
    return hi - lo;
  });
  // Phase 2: exclusive scan of the block sums.
  detail::blelloch_exclusive_pow2(m, sums, op);
  // Phase 3: each processor re-sweeps its block with its offset.
  m.blocked_step(blocks, [&](auto& c, std::size_t b) -> std::uint64_t {
    const std::size_t lo = std::min(n, b * block);
    const std::size_t hi = std::min(n, lo + block);
    T acc = sums.get(c, b);
    for (std::size_t i = lo; i < hi; ++i) {
      const T v = a.get(c, i);
      a.put(c, i, acc);
      acc = op(acc, v);
    }
    return hi - lo;
  });
}

/// In-place inclusive prefix scan: a[i] becomes op(a[0], ..., a[i]).
template <typename E, typename A, typename Op = Plus<typename A::value_type>>
void inclusive_scan(E& m, A& a, Op op = Op{}) {
  using T = typename A::value_type;
  const std::size_t n = a.size();
  if (n == 0) return;
  if constexpr (exec::native_shortcuts_v<E>) {
    if (m.sequential_ok(exec::Stage::Scan, n)) {
      auto s = a.host_span();
      T acc = Op::identity();
      for (std::size_t i = 0; i < n; ++i) {
        acc = op(acc, s[i]);
        s[i] = acc;
      }
      m.charge_host_pass(n);
      return;
    }
  }
  const std::size_t blocks = detail::block_count(m, n);
  const std::size_t block = detail::ceil_div(n, blocks);

  auto sums =
      exec::make_array<T>(m, detail::next_pow2(blocks), Op::identity());
  m.blocked_step(blocks, [&](auto& c, std::size_t b) -> std::uint64_t {
    const std::size_t lo = std::min(n, b * block);
    const std::size_t hi = std::min(n, lo + block);
    T acc = Op::identity();
    for (std::size_t i = lo; i < hi; ++i) acc = op(acc, a.get(c, i));
    sums.put(c, b, acc);
    return hi - lo;
  });
  detail::blelloch_exclusive_pow2(m, sums, op);
  m.blocked_step(blocks, [&](auto& c, std::size_t b) -> std::uint64_t {
    const std::size_t lo = std::min(n, b * block);
    const std::size_t hi = std::min(n, lo + block);
    T acc = sums.get(c, b);
    for (std::size_t i = lo; i < hi; ++i) {
      acc = op(acc, a.get(c, i));
      a.put(c, i, acc);
    }
    return hi - lo;
  });
}

/// Reduction of `a` under `op`.
template <typename E, typename A, typename Op = Plus<typename A::value_type>>
typename A::value_type reduce(E& m, const A& a, Op op = Op{}) {
  using T = typename A::value_type;
  const std::size_t n = a.size();
  if (n == 0) return Op::identity();
  if constexpr (exec::native_shortcuts_v<E>) {
    if (m.sequential_ok(exec::Stage::Scan, n)) {
      auto s = a.host_span();
      T acc = Op::identity();
      for (std::size_t i = 0; i < n; ++i) acc = op(acc, s[i]);
      m.charge_host_pass(n);
      return acc;
    }
  }
  const std::size_t blocks = detail::block_count(m, n);
  const std::size_t block = detail::ceil_div(n, blocks);
  auto sums =
      exec::make_array<T>(m, detail::next_pow2(blocks), Op::identity());
  m.blocked_step(blocks, [&](auto& c, std::size_t b) -> std::uint64_t {
    const std::size_t lo = std::min(n, b * block);
    const std::size_t hi = std::min(n, lo + block);
    T acc = Op::identity();
    for (std::size_t i = lo; i < hi; ++i) acc = op(acc, a.get(c, i));
    sums.put(c, b, acc);
    return hi - lo;
  });
  // Tree reduce over the pow2 scratch.
  for (std::size_t stride = 2; stride <= sums.size(); stride <<= 1) {
    const std::size_t count = sums.size() / stride;
    m.pfor(count, [&](auto& c, std::size_t j) {
      const std::size_t hi = (j + 1) * stride - 1;
      const std::size_t lo = hi - stride / 2;
      sums.put(c, hi, op(sums.get(c, lo), sums.get(c, hi)));
    });
  }
  return sums.host(sums.size() - 1);
}

/// Segmented inclusive scan: `flag[i] != 0` marks the first element of a
/// segment; within each segment a[i] becomes op over the segment prefix.
/// Implemented as an ordinary scan over (flag, value) pairs with the
/// standard segmented-combine, which stays associative.
template <typename E, typename A, typename Op = Plus<typename A::value_type>>
void segmented_inclusive_scan(E& m, A& a,
                              const exec::ArrayOf<E, std::uint8_t>& flag,
                              Op op = Op{}) {
  using T = typename A::value_type;
  const std::size_t n = a.size();
  COPATH_CHECK(flag.size() == n);
  if (n == 0) return;
  struct Pair {
    T value;
    std::uint8_t reset;
  };
  struct SegOp {
    Op op;
    static constexpr Pair identity() { return Pair{Op::identity(), 0}; }
    Pair operator()(Pair lhs, Pair rhs) const {
      if (rhs.reset) return rhs;
      return Pair{op(lhs.value, rhs.value),
                  static_cast<std::uint8_t>(lhs.reset | rhs.reset)};
    }
  };
  if constexpr (exec::native_shortcuts_v<E>) {
    if (m.sequential_ok(exec::Stage::Scan, n)) {
      auto av = a.host_span();
      auto fv = flag.host_span();
      T acc = Op::identity();
      for (std::size_t i = 0; i < n; ++i) {
        acc = fv[i] ? av[i] : op(acc, av[i]);
        av[i] = acc;
      }
      m.charge_host_pass(n);
      return;
    }
  }
  auto pairs = exec::make_array<Pair>(m, n);
  m.pfor(n, [&](auto& c, std::size_t i) {
    pairs.put(c, i, Pair{a.get(c, i), flag.get(c, i)});
  });
  // Inline inclusive scan over Pair with SegOp (blocked, as above).
  const std::size_t blocks = detail::block_count(m, n);
  const std::size_t block = detail::ceil_div(n, blocks);
  SegOp seg{op};
  auto sums =
      exec::make_array<Pair>(m, detail::next_pow2(blocks), SegOp::identity());
  m.blocked_step(blocks, [&](auto& c, std::size_t b) -> std::uint64_t {
    const std::size_t lo = std::min(n, b * block);
    const std::size_t hi = std::min(n, lo + block);
    Pair acc = SegOp::identity();
    for (std::size_t i = lo; i < hi; ++i) acc = seg(acc, pairs.get(c, i));
    sums.put(c, b, acc);
    return hi - lo;
  });
  detail::blelloch_exclusive_pow2(m, sums, seg);
  m.blocked_step(blocks, [&](auto& c, std::size_t b) -> std::uint64_t {
    const std::size_t lo = std::min(n, b * block);
    const std::size_t hi = std::min(n, lo + block);
    Pair acc = sums.get(c, b);
    for (std::size_t i = lo; i < hi; ++i) {
      acc = seg(acc, pairs.get(c, i));
      a.put(c, i, acc.value);
    }
    return hi - lo;
  });
}

/// Stable compaction: copies the indices i with keep[i] != 0 into `out`
/// (which must have capacity >= number of kept items) and returns how many
/// were kept. O(n/P + log n) steps, O(n) work.
template <typename E, typename AOut>
std::size_t compact_indices(E& m,
                            const exec::ArrayOf<E, std::uint8_t>& keep,
                            AOut& out) {
  using Index = typename AOut::value_type;
  const std::size_t n = keep.size();
  if (n == 0) return 0;
  if constexpr (exec::native_shortcuts_v<E>) {
    if (m.sequential_ok(exec::Stage::Scan, n)) {
      auto kv = keep.host_span();
      auto ov = out.host_span();
      std::size_t total = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (kv[i] != 0) {
          COPATH_CHECK(total < ov.size());
          ov[total++] = static_cast<Index>(i);
        }
      }
      m.charge_host_pass(n);
      return total;
    }
  }
  auto pos = exec::make_array<std::int64_t>(m, n);
  m.pfor(n, [&](auto& c, std::size_t i) {
    pos.put(c, i, keep.get(c, i) != 0 ? 1 : 0);
  });
  exclusive_scan(m, pos);
  const std::size_t total =
      static_cast<std::size_t>(pos.host(n - 1)) +
      (keep.host(n - 1) != 0 ? 1u : 0u);
  COPATH_CHECK(out.size() >= total);
  m.pfor(n, [&](auto& c, std::size_t i) {
    if (keep.get(c, i) != 0)
      out.put(c, static_cast<std::size_t>(pos.get(c, i)),
              static_cast<Index>(i));
  });
  return total;
}

/// Convenience: parallel fill.
template <typename E, typename A>
void fill(E& m, A& a, typename A::value_type value) {
  m.pfor(a.size(), [&](auto& c, std::size_t i) { a.put(c, i, value); });
}

/// Convenience: parallel copy (same length).
template <typename E, typename A>
void copy(E& m, const A& src, A& dst) {
  COPATH_CHECK(src.size() == dst.size());
  m.pfor(src.size(),
         [&](auto& c, std::size_t i) { dst.put(c, i, src.get(c, i)); });
}

/// Fused copy + exclusive scan: dst[i] becomes op(src[0], ..., src[i-1])
/// and `src` is left untouched. On the checked simulator this expands to
/// the exact copy-then-scan phase sequence call sites used to spell out
/// (bit-for-bit stats); under native shortcuts the copy pass is fused away
/// — one host sweep when small, a three-phase blocked scan that reads
/// `src` and writes `dst` directly when large (EREW-clean: each index is
/// touched by exactly one block in each phase, and src/dst are distinct
/// arrays).
template <typename E, typename A, typename Op = Plus<typename A::value_type>>
void exclusive_scan_into(E& m, const A& src, A& dst, Op op = Op{}) {
  using T = typename A::value_type;
  const std::size_t n = src.size();
  COPATH_CHECK(dst.size() == n);
  // The fused native sweep reads src after writing dst at the same index
  // — aliasing would silently diverge from the copy-then-scan expansion.
  COPATH_CHECK(static_cast<const void*>(&src) !=
               static_cast<const void*>(&dst));
  if (n == 0) return;
  if constexpr (exec::native_shortcuts_v<E>) {
    if (m.sequential_ok(exec::Stage::Scan, n)) {
      auto sv = src.host_span();
      auto dv = dst.host_span();
      T acc = Op::identity();
      for (std::size_t i = 0; i < n; ++i) {
        dv[i] = acc;
        acc = op(acc, sv[i]);
      }
      m.charge_host_pass(n);
      return;
    }
    // Fused blocked scan: phase 1 reduces src's blocks, phase 3 re-sweeps
    // reading src and writing dst — the standalone copy pass disappears.
    const std::size_t blocks = detail::block_count(m, n);
    const std::size_t block = detail::ceil_div(n, blocks);
    auto sums =
        exec::make_array<T>(m, detail::next_pow2(blocks), Op::identity());
    m.blocked_step(blocks, [&](auto& c, std::size_t b) -> std::uint64_t {
      const std::size_t lo = std::min(n, b * block);
      const std::size_t hi = std::min(n, lo + block);
      T acc = Op::identity();
      for (std::size_t i = lo; i < hi; ++i) acc = op(acc, src.get(c, i));
      sums.put(c, b, acc);
      return hi - lo;
    });
    detail::blelloch_exclusive_pow2(m, sums, op);
    m.blocked_step(blocks, [&](auto& c, std::size_t b) -> std::uint64_t {
      const std::size_t lo = std::min(n, b * block);
      const std::size_t hi = std::min(n, lo + block);
      T acc = sums.get(c, b);
      for (std::size_t i = lo; i < hi; ++i) {
        dst.put(c, i, acc);
        acc = op(acc, src.get(c, i));
      }
      return hi - lo;
    });
    return;
  } else {
    copy(m, src, dst);
    exclusive_scan(m, dst, op);
  }
}


/// Fused inclusive (+)-scans of four same-length arrays. On the checked
/// simulator this expands to four standalone scans in argument order
/// (identical phases, bit-for-bit stats); under native shortcuts all four
/// run in one blocked sweep — the memory-bound passes the Euler numbering
/// used to make back to back collapse into a single read/write of each
/// cache line.
template <typename E, typename A>
void inclusive_scan4(E& m, A& a0, A& a1, A& a2, A& a3) {
  using T = typename A::value_type;
  const std::size_t n = a0.size();
  COPATH_CHECK(a1.size() == n && a2.size() == n && a3.size() == n);
  // Four *distinct* arrays: the fused sweep scans them in lockstep, so an
  // aliased pair would be scanned twice per pass.
  COPATH_CHECK(&a0 != &a1 && &a0 != &a2 && &a0 != &a3 && &a1 != &a2 &&
               &a1 != &a3 && &a2 != &a3);
  if (n == 0) return;
  if constexpr (exec::native_shortcuts_v<E>) {
    if (m.sequential_ok(exec::Stage::Scan, n)) {
      auto s0 = a0.host_span();
      auto s1 = a1.host_span();
      auto s2 = a2.host_span();
      auto s3 = a3.host_span();
      T c0{}, c1{}, c2{}, c3{};
      for (std::size_t i = 0; i < n; ++i) {
        s0[i] = c0 = c0 + s0[i];
        s1[i] = c1 = c1 + s1[i];
        s2[i] = c2 = c2 + s2[i];
        s3[i] = c3 = c3 + s3[i];
      }
      m.charge_host_pass(n);
      return;
    }
    struct Quad {
      T v0, v1, v2, v3;
    };
    struct QuadPlus {
      static constexpr Quad identity() { return Quad{T{}, T{}, T{}, T{}}; }
      Quad operator()(const Quad& a, const Quad& b) const {
        return Quad{a.v0 + b.v0, a.v1 + b.v1, a.v2 + b.v2, a.v3 + b.v3};
      }
    };
    const std::size_t blocks = detail::block_count(m, n);
    const std::size_t block = detail::ceil_div(n, blocks);
    auto sums = exec::make_array<Quad>(m, detail::next_pow2(blocks),
                                       QuadPlus::identity());
    m.blocked_step(blocks, [&](auto& c, std::size_t b) -> std::uint64_t {
      const std::size_t lo = std::min(n, b * block);
      const std::size_t hi = std::min(n, lo + block);
      Quad acc = QuadPlus::identity();
      for (std::size_t i = lo; i < hi; ++i) {
        acc.v0 += a0.get(c, i);
        acc.v1 += a1.get(c, i);
        acc.v2 += a2.get(c, i);
        acc.v3 += a3.get(c, i);
      }
      sums.put(c, b, acc);
      return hi - lo;
    });
    detail::blelloch_exclusive_pow2(m, sums, QuadPlus{});
    m.blocked_step(blocks, [&](auto& c, std::size_t b) -> std::uint64_t {
      const std::size_t lo = std::min(n, b * block);
      const std::size_t hi = std::min(n, lo + block);
      Quad acc = sums.get(c, b);
      for (std::size_t i = lo; i < hi; ++i) {
        a0.put(c, i, acc.v0 += a0.get(c, i));
        a1.put(c, i, acc.v1 += a1.get(c, i));
        a2.put(c, i, acc.v2 += a2.get(c, i));
        a3.put(c, i, acc.v3 += a3.get(c, i));
      }
      return hi - lo;
    });
    return;
  } else {
    inclusive_scan(m, a0);
    inclusive_scan(m, a1);
    inclusive_scan(m, a2);
    inclusive_scan(m, a3);
  }
}

}  // namespace copath::par
