// Parallel list ranking (Lemma 5.1(1) of the paper).
//
// Input: a successor array describing a forest of disjoint singly linked
// lists (next[i] == kNull marks a tail). Output: rank[i] = number of links
// from i to the tail of its list (tail has rank 0).
//
// Both implementations are executor programs (exec/exec.hpp): the checked
// PRAM executor proves the EREW contract, the Native executor runs them at
// memory speed.
//
//  * list_rank_wyllie — classic pointer jumping. O(log n) rounds; each round
//    costs O(n/P) steps and O(n) work, so the total is O(n log n) work. Made
//    EREW-safe by double-buffering each round (the naive formulation
//    rank[i] += rank[next[i]] has two readers per cell).
//
//  * list_rank_contract — randomized independent-set contraction
//    (Miller/Reif style): repeatedly splice out a non-adjacent set of
//    elements chosen by per-round coin flips, then reinsert in reverse order.
//    The live set shrinks geometrically in expectation, giving O(n) expected
//    work and O(log n) w.h.p. steps with P = n / log n processors — the
//    work-optimal bound the paper's Lemma 5.1 requires (the deterministic
//    literature versions, Cole–Vishkin / Anderson–Miller, achieve the same
//    bound; see DESIGN.md for the substitution note).
#pragma once

#include <cstdint>
#include <vector>

#include "par/bintree.hpp"
#include "par/scan.hpp"
#include "util/rng.hpp"

namespace copath::par {

/// One-pass host ranking for the native shortcut: mark heads (nodes with
/// no predecessor), then walk each list twice — once for its length, once
/// assigning rank = distance to tail. Ranks are uniquely determined by
/// `next`, so this is value-identical to both parallel rankers. O(n), and
/// the head-marking scratch is arena-recycled.
template <typename E>
void list_rank_host(E& m, const exec::ArrayOf<E, NodeId>& next,
                    exec::ArrayOf<E, std::int64_t>& rank) {
  const std::size_t n = next.size();
  auto has_pred = exec::make_array<std::uint8_t>(m, n, std::uint8_t{0});
  auto hp = has_pred.host_span();
  auto nx = next.host_span();
  auto rk = rank.host_span();
  for (std::size_t i = 0; i < n; ++i) {
    if (nx[i] != kNull) hp[static_cast<std::size_t>(nx[i])] = 1;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (hp[i] != 0) continue;  // not a head
    std::int64_t len = 0;
    for (NodeId j = static_cast<NodeId>(i); j != kNull;
         j = nx[static_cast<std::size_t>(j)]) {
      ++len;
    }
    for (NodeId j = static_cast<NodeId>(i); j != kNull;
         j = nx[static_cast<std::size_t>(j)]) {
      rk[static_cast<std::size_t>(j)] = --len;
    }
  }
  m.charge_host_pass(n);
}

/// Pointer-jumping ranking. `next` is left untouched.
template <typename E>
void list_rank_wyllie(E& m, const exec::ArrayOf<E, NodeId>& next,
                      exec::ArrayOf<E, std::int64_t>& rank) {
  const std::size_t n = next.size();
  COPATH_CHECK(rank.size() == n);
  if (n == 0) return;
  if constexpr (exec::native_shortcuts_v<E>) {
    if (m.sequential_ok(exec::Stage::Rank, n)) {
      list_rank_host(m, next, rank);
      return;
    }
  }

  auto succ = exec::make_array<NodeId>(m, n);
  auto succ_copy = exec::make_array<NodeId>(m, n);
  auto rank_copy = exec::make_array<std::int64_t>(m, n);

  m.pfor(n, [&](auto& c, std::size_t i) {
    const NodeId nx = next.get(c, i);
    succ.put(c, i, nx);
    rank.put(c, i, nx == kNull ? 0 : 1);
  });

  // ceil(log2 n) jumping rounds suffice.
  std::size_t rounds = 0;
  for (std::size_t v = 1; v < n; v <<= 1) ++rounds;
  for (std::size_t r = 0; r < rounds; ++r) {
    // Substep 1: snapshot (EREW: cell i read only by processor i).
    m.pfor(n, [&](auto& c, std::size_t i) {
      succ_copy.put(c, i, succ.get(c, i));
      rank_copy.put(c, i, rank.get(c, i));
    });
    // Substep 2: jump. Processor i reads copies at position succ[i]; succ is
    // injective over non-null entries, so each cell has at most one reader.
    m.pfor(n, [&](auto& c, std::size_t i) {
      const NodeId s = succ.get(c, i);
      if (s == kNull) return;
      const std::size_t si = static_cast<std::size_t>(s);
      rank.put(c, i, rank.get(c, i) + rank_copy.get(c, si));
      succ.put(c, i, succ_copy.get(c, si));
    });
  }
}

/// Randomized contraction ranking; expected O(n) work. `next` untouched.
template <typename E>
void list_rank_contract(E& m, const exec::ArrayOf<E, NodeId>& next,
                        exec::ArrayOf<E, std::int64_t>& rank,
                        std::uint64_t seed = 0x11572ea7u) {
  const std::size_t n = next.size();
  COPATH_CHECK(rank.size() == n);
  if (n == 0) return;
  if constexpr (exec::native_shortcuts_v<E>) {
    if (m.sequential_ok(exec::Stage::Rank, n)) {
      list_rank_host(m, next, rank);
      return;
    }
  }

  auto succ = exec::make_array<NodeId>(m, n);   // live successor
  auto pred = exec::make_array<NodeId>(m, n);   // live predecessor
  // weight of the live link i -> succ[i]
  auto ew = exec::make_array<std::int64_t>(m, n);
  auto removed_now = exec::make_array<std::uint8_t>(m, n, std::uint8_t{0});
  auto live = exec::make_array<NodeId>(m, n);
  auto live_next = exec::make_array<NodeId>(m, n);
  // Removal log: per removed node, the successor and link weight at removal
  // time; per round, the segment of `order` holding that round's removals.
  auto rem_succ = exec::make_array<NodeId>(m, n, kNull);
  auto rem_weight = exec::make_array<std::int64_t>(m, n, std::int64_t{0});
  auto order = exec::make_array<NodeId>(m, n);
  std::vector<std::size_t> round_offset;  // host bookkeeping

  m.pfor(n, [&](auto& c, std::size_t i) {
    succ.put(c, i, next.get(c, i));
    ew.put(c, i, 1);
    pred.put(c, i, kNull);
    live.put(c, i, static_cast<NodeId>(i));
  });
  // pred via scatter (succ injective -> exclusive writes).
  m.pfor(n, [&](auto& c, std::size_t i) {
    const NodeId s = succ.get(c, i);
    if (s != kNull) pred.put(c, static_cast<std::size_t>(s),
                             static_cast<NodeId>(i));
  });

  // The only elements that can never be spliced out are list tails, so the
  // loop runs until exactly the tails survive.
  std::size_t tails = 0;
  {
    auto is_tail = exec::make_array<std::int64_t>(m, n);
    m.pfor(n, [&](auto& c, std::size_t i) {
      is_tail.put(c, i, next.get(c, i) == kNull ? 1 : 0);
    });
    tails = static_cast<std::size_t>(reduce(m, is_tail));
  }

  std::size_t live_count = n;
  std::size_t removed_total = 0;
  round_offset.push_back(0);
  std::uint64_t round = 0;
  // Coins are a stateless hash of (seed, round, node): no coin arrays, no
  // copy substeps, and neighbours' coins are recomputable without reads.
  const auto coin = [seed](std::uint64_t rd, NodeId i) {
    std::uint64_t h = seed ^ (rd * 0x9e3779b97f4a7c15ull) ^
                      (static_cast<std::uint64_t>(i) << 1);
    return (util::splitmix64(h) & 1u) != 0;
  };

  while (live_count > tails) {
    ++round;
    // Select: i leaves iff coin(i) is heads, its predecessor's coin (if
    // any) is tails, and i is not its list's tail — no two adjacent nodes
    // are ever selected together.
    m.pfor(live_count, [&](auto& c, std::size_t j) {
      const std::size_t i = static_cast<std::size_t>(live.get(c, j));
      const NodeId p = pred.get(c, i);
      const bool sel =
          succ.get(c, i) != kNull && coin(round, static_cast<NodeId>(i)) &&
          (p == kNull || !coin(round, p));
      removed_now.put(c, i, sel ? 1 : 0);
    });
    // Splice the selected nodes out and log them. Neighbours of a selected
    // node are unselected, so every touched cell has one owner.
    m.pfor(live_count, [&](auto& c, std::size_t j) {
      const std::size_t i = static_cast<std::size_t>(live.get(c, j));
      if (removed_now.get(c, i) == 0) return;
      const NodeId s = succ.get(c, i);
      const NodeId p = pred.get(c, i);
      const std::int64_t w = ew.get(c, i);
      rem_succ.put(c, i, s);
      rem_weight.put(c, i, w);
      // Reconnect neighbours. s is never selected (coin rule), p is never
      // selected (coin rule), so these writes are exclusive.
      if (p != kNull) {
        succ.put(c, static_cast<std::size_t>(p), s);
        ew.put(c, static_cast<std::size_t>(p),
               ew.get(c, static_cast<std::size_t>(p)) + w);
      }
      pred.put(c, static_cast<std::size_t>(s), p);
    });
    // Compact: removed nodes into `order`, survivors into live_next.
    auto mark = exec::make_array<std::int64_t>(m, live_count);
    m.pfor(live_count, [&](auto& c, std::size_t j) {
      const std::size_t i = static_cast<std::size_t>(live.get(c, j));
      mark.put(c, j, removed_now.get(c, i) != 0 ? 1 : 0);
    });
    auto removed_pos = exec::make_array<std::int64_t>(m, live_count);
    exclusive_scan_into(m, mark, removed_pos);
    const std::size_t removed_count =
        static_cast<std::size_t>(removed_pos.host(live_count - 1)) +
        (mark.host(live_count - 1) != 0 ? 1u : 0u);
    m.pfor(live_count, [&](auto& c, std::size_t j) {
      const NodeId i = live.get(c, j);
      if (mark.get(c, j) != 0) {
        order.put(c,
                  removed_total +
                      static_cast<std::size_t>(removed_pos.get(c, j)),
                  i);
      } else {
        // Survivor index = j - removed_before(j).
        live_next.put(c,
                      j - static_cast<std::size_t>(removed_pos.get(c, j)),
                      i);
      }
    });
    removed_total += removed_count;
    live_count -= removed_count;
    round_offset.push_back(removed_total);
    m.pfor(live_count, [&](auto& c, std::size_t j) {
      live.put(c, j, live_next.get(c, j));
    });
    COPATH_CHECK_MSG(round < 64 * 8,
                     "list_rank_contract failed to converge");
  }

  // Base ranks for the surviving elements (all tails).
  m.pfor(live_count, [&](auto& c, std::size_t j) {
    rank.put(c, static_cast<std::size_t>(live.get(c, j)), 0);
  });
  // Reinsert in reverse round order.
  for (std::size_t r = round_offset.size() - 1; r-- > 0;) {
    const std::size_t lo = round_offset[r];
    const std::size_t hi = round_offset[r + 1];
    m.pfor(hi - lo, [&](auto& c, std::size_t k) {
      const std::size_t i =
          static_cast<std::size_t>(order.get(c, lo + k));
      const std::size_t s = static_cast<std::size_t>(rem_succ.get(c, i));
      rank.put(c, i, rem_weight.get(c, i) + rank.get(c, s));
    });
  }
}

}  // namespace copath::par
