// Plain rooted binary tree representation shared by the PRAM primitives.
//
// Every tree in the path cover pipeline — the binarized cotree, the reduced
// cotree, and the path trees themselves — is binary, so this is the common
// currency between modules. Nodes are dense 0-based ids.
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace copath::par {

using NodeId = std::int32_t;
inline constexpr NodeId kNull = -1;

struct BinTree {
  std::vector<std::int32_t> parent;  // kNull for the root
  std::vector<std::int32_t> left;    // kNull if absent
  std::vector<std::int32_t> right;   // kNull if absent
  std::int32_t root = -1;

  [[nodiscard]] std::size_t size() const { return parent.size(); }

  [[nodiscard]] static BinTree with_size(std::size_t n) {
    BinTree t;
    t.parent.assign(n, -1);
    t.left.assign(n, -1);
    t.right.assign(n, -1);
    return t;
  }

  [[nodiscard]] bool is_leaf(std::int32_t v) const {
    return left[static_cast<std::size_t>(v)] == -1 &&
           right[static_cast<std::size_t>(v)] == -1;
  }

  /// Structural sanity check: parent/child pointers agree, exactly one
  /// root, every node reachable (implied by the pointer bijection checks).
  void validate() const {
    const std::size_t n = size();
    COPATH_CHECK(left.size() == n && right.size() == n);
    if (n == 0) return;
    COPATH_CHECK(root >= 0 && static_cast<std::size_t>(root) < n);
    COPATH_CHECK(parent[static_cast<std::size_t>(root)] == -1);
    std::size_t root_count = 0;
    std::vector<std::uint8_t> claimed(n, 0);
    for (std::size_t v = 0; v < n; ++v) {
      if (parent[v] == -1) ++root_count;
      for (const std::int32_t c : {left[v], right[v]}) {
        if (c == -1) continue;
        COPATH_CHECK(static_cast<std::size_t>(c) < n);
        COPATH_CHECK_MSG(parent[static_cast<std::size_t>(c)] ==
                             static_cast<std::int32_t>(v),
                         "child " << c << " does not point back to " << v);
        COPATH_CHECK_MSG(!claimed[static_cast<std::size_t>(c)],
                         "node " << c << " claimed by two parents");
        claimed[static_cast<std::size_t>(c)] = 1;
      }
    }
    COPATH_CHECK_MSG(root_count == 1, "expected exactly one root");
  }
};

}  // namespace copath::par
