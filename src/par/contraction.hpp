// Parallel binary-tree contraction (Abrahamson et al. [1] / JaJa §3),
// the engine behind the paper's Lemma 2.4.
//
// Evaluates a bottom-up expression over a rooted binary tree: every leaf
// carries a Value, every internal node an operator NodeOp, and the result is
// the Value of every node (not just the root — a reverse replay of the
// contraction log computes the interior).
//
// Requirements on the policy P:
//   using Value / Func / NodeOp                (trivially copyable)
//   static Func identity();
//   static Func compose(Func outer, Func inner);   // x -> outer(inner(x))
//   static Value apply(Func f, Value x);
//   static Func partial_left(NodeOp op, Value l);   // y -> op(l, y)
//   static Func partial_right(NodeOp op, Value r);  // x -> op(x, r)
//   static Value full(NodeOp op, Value l, Value r);
// Correctness needs Func closed under composition and the partials exact —
// for the path cover count this is the max-plus affine family
// f(x) = max(x + a, b) (see core/count.hpp).
//
// Schedule: leaves are numbered left-to-right (Euler tour); each round rakes
// all odd-numbered leaves, left children first, then right children, and
// halves the numbering. Classic argument: no two rakes in a substep touch a
// common node, so the whole algorithm is EREW; O(log n) rounds, O(n) work.
#pragma once

#include <cstdint>
#include <vector>

#include "par/bintree.hpp"
#include "par/euler.hpp"

namespace copath::par {

template <typename P, typename E>
std::vector<typename P::Value> tree_contract_eval(
    E& m, const BinTree& t,
    const std::vector<typename P::Value>& leaf_value,
    const std::vector<typename P::NodeOp>& node_op,
    RankEngine engine = RankEngine::Contract) {
  using Value = typename P::Value;
  using Func = typename P::Func;
  using NodeOp = typename P::NodeOp;

  const std::size_t n = t.size();
  COPATH_CHECK(leaf_value.size() == n && node_op.size() == n);
  std::vector<Value> result(n, Value{});
  if (n == 0) return result;
  if (n == 1) {
    result[0] = leaf_value[0];
    return result;
  }
#ifndef NDEBUG
  t.validate();  // O(n) input self-check: debug builds only (hot path)
#endif

  if constexpr (exec::native_shortcuts_v<E>) {
    if (m.sequential_ok(exec::Stage::Contract, n)) {
      // Host post-order evaluation. The contraction computes the exact
      // bottom-up value of every node (the policy's partials are exact by
      // contract), so direct evaluation is value-identical. Scratch is
      // arena-recycled (the zero-allocation steady state).
      auto scratch = exec::make_array<NodeId>(m, 2 * n);
      auto stack = scratch.host_span().subspan(0, n);
      auto order = scratch.host_span().subspan(n, n);
      std::size_t top = 0;
      std::size_t filled = 0;
      stack[top++] = t.root;
      while (top > 0) {
        const NodeId v = stack[--top];
        order[filled++] = v;
        const auto vu = static_cast<std::size_t>(v);
        if (t.left[vu] != kNull) stack[top++] = t.left[vu];
        if (t.right[vu] != kNull) stack[top++] = t.right[vu];
      }
      for (std::size_t i = n; i-- > 0;) {
        const auto vu = static_cast<std::size_t>(order[i]);
        const NodeId l = t.left[vu];
        const NodeId r = t.right[vu];
        if (l == kNull) {
          result[vu] = leaf_value[vu];
        } else {
          result[vu] = P::full(node_op[vu],
                               result[static_cast<std::size_t>(l)],
                               result[static_cast<std::size_t>(r)]);
        }
      }
      m.charge_host_pass(2 * n);
      return result;
    }
  }

  // Leaf numbering (and nothing else) from the Euler tour.
  const EulerNumbers nums = euler_numbers(m, t, engine);

  // Mutable tree state.
  auto parent = exec::make_array<NodeId>(m, t.parent);
  auto l_child = exec::make_array<NodeId>(m, t.left);
  auto r_child = exec::make_array<NodeId>(m, t.right);
  auto func = exec::make_array<Func>(m, n, P::identity());
  auto op = exec::make_array<NodeOp>(m, node_op);
  auto val = exec::make_array<Value>(m, leaf_value);
  // side[v]: 0 = left child of its parent, 1 = right child.
  std::vector<std::uint8_t> side_init(n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    if (t.right[v] != kNull)
      side_init[static_cast<std::size_t>(t.right[v])] = 1;
  }
  auto side = exec::make_array<std::uint8_t>(m, std::move(side_init));

  // Leaf list ordered by leaf number (two buffers, ping-pong compaction).
  std::size_t leaf_count = 0;
  for (std::size_t v = 0; v < n; ++v)
    if (nums.leafnum[v] >= 0) ++leaf_count;
  std::vector<NodeId> leaves_init(leaf_count, kNull);
  for (std::size_t v = 0; v < n; ++v) {
    if (nums.leafnum[v] >= 0)
      leaves_init[static_cast<std::size_t>(nums.leafnum[v])] =
          static_cast<NodeId>(v);
  }
  auto leaves_a = exec::make_array<NodeId>(m, std::move(leaves_init));
  auto leaves_b = exec::make_array<NodeId>(m, leaf_count);

  // Rake event log, indexed by the raked leaf.
  auto ev_q = exec::make_array<NodeId>(m, n, kNull);
  auto ev_s = exec::make_array<NodeId>(m, n, kNull);
  auto ev_x = exec::make_array<Value>(m, n, Value{});
  auto ev_hs = exec::make_array<Func>(m, n, P::identity());
  auto ev_side = exec::make_array<std::uint8_t>(m, n, std::uint8_t{0});
  // Per-round segments of raked leaves, in substep order (left rakes carry
  // ev_side 0, right rakes 1; both live in the same segment).
  auto log_leaf = exec::make_array<NodeId>(m, n, kNull);
  std::vector<std::size_t> round_offset{0};

  auto side_snap = exec::make_array<std::uint8_t>(m, leaf_count, std::uint8_t{0});

  bool use_a = true;
  std::size_t logged = 0;
  while (leaf_count > 1) {
    auto& leaves = use_a ? leaves_a : leaves_b;
    auto& next_leaves = use_a ? leaves_b : leaves_a;
    const std::size_t odd = leaf_count / 2;

    // Snapshot the sides of the odd leaves (they are stable across both
    // substeps; see the EREW analysis in the header comment).
    m.pfor(odd, [&](auto& c, std::size_t j) {
      const NodeId l = leaves.get(c, 2 * j + 1);
      side_snap.put(c, j, side.get(c, static_cast<std::size_t>(l)));
      log_leaf.put(c, logged + j, l);
    });

    for (const std::uint8_t substep : {std::uint8_t{0}, std::uint8_t{1}}) {
      m.pfor(odd, [&](auto& c, std::size_t j) {
        if (side_snap.get(c, j) != substep) return;
        const auto l =
            static_cast<std::size_t>(leaves.get(c, 2 * j + 1));
        const auto q = static_cast<std::size_t>(parent.get(c, l));
        const NodeOp q_op = op.get(c, q);
        const Func h_q = func.get(c, q);
        const std::uint8_t q_side = side.get(c, q);
        const NodeId g = parent.get(c, q);
        // q's cells are touched only by its (unique) raking child, so
        // reading the sibling pointer here is exclusive.
        const auto s = static_cast<std::size_t>(
            substep == 0 ? r_child.get(c, q) : l_child.get(c, q));
        const Value x = P::apply(func.get(c, l), val.get(c, l));
        const Func h_s = func.get(c, s);
        // Log the event.
        ev_q.put(c, l, static_cast<NodeId>(q));
        ev_s.put(c, l, static_cast<NodeId>(s));
        ev_x.put(c, l, x);
        ev_hs.put(c, l, h_s);
        ev_side.put(c, l, substep);
        // Splice q out: s takes q's place under g.
        const Func partial = substep == 0 ? P::partial_left(q_op, x)
                                          : P::partial_right(q_op, x);
        func.put(c, s, P::compose(h_q, P::compose(partial, h_s)));
        parent.put(c, s, g);
        side.put(c, s, q_side);
        if (g != kNull) {
          if (q_side == 0) {
            l_child.put(c, static_cast<std::size_t>(g),
                        static_cast<NodeId>(s));
          } else {
            r_child.put(c, static_cast<std::size_t>(g),
                        static_cast<NodeId>(s));
          }
        }
      });
    }

    // Compact to the even-numbered leaves.
    const std::size_t remaining = leaf_count - odd;
    m.pfor(remaining, [&](auto& c, std::size_t j) {
      next_leaves.put(c, j, leaves.get(c, 2 * j));
    });
    logged += odd;
    round_offset.push_back(logged);
    leaf_count = remaining;
    use_a = !use_a;
  }

  // Expansion: replay rounds in reverse (right rakes before left rakes).
  m.pfor(n, [&](auto& c, std::size_t v) {
    if (nums.leafnum[v] >= 0) val.put(c, v, leaf_value[v]);
  });
  for (std::size_t r = round_offset.size() - 1; r-- > 0;) {
    const std::size_t lo = round_offset[r];
    const std::size_t hi = round_offset[r + 1];
    for (const std::uint8_t substep : {std::uint8_t{1}, std::uint8_t{0}}) {
      m.pfor(hi - lo, [&](auto& c, std::size_t k) {
        const auto l = static_cast<std::size_t>(log_leaf.get(c, lo + k));
        if (ev_side.get(c, l) != substep) return;
        const auto q = static_cast<std::size_t>(ev_q.get(c, l));
        const auto s = static_cast<std::size_t>(ev_s.get(c, l));
        const Value vs = P::apply(ev_hs.get(c, l), val.get(c, s));
        const Value x = ev_x.get(c, l);
        const NodeOp q_op = op.get(c, q);
        val.put(c, q,
                substep == 0 ? P::full(q_op, x, vs) : P::full(q_op, vs, x));
      });
    }
  }

  for (std::size_t v = 0; v < n; ++v) result[v] = val.host(v);
  return result;
}

}  // namespace copath::par
