#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/check.hpp"

namespace copath::net {

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  COPATH_CHECK_MSG(flags >= 0, "fcntl(F_GETFL): " << std::strerror(errno));
  COPATH_CHECK_MSG(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                   "fcntl(F_SETFL): " << std::strerror(errno));
}

void set_nodelay(int fd) {
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

namespace {

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  COPATH_CHECK_MSG(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
                   "not an IPv4 dotted-quad host: " << host);
  return addr;
}

}  // namespace

Fd listen_tcp(const std::string& host, std::uint16_t port,
              std::uint16_t* bound_port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  COPATH_CHECK_MSG(fd.valid(), "socket: " << std::strerror(errno));
  const int one = 1;
  (void)::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = make_addr(host, port);
  COPATH_CHECK_MSG(
      ::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
      "bind " << host << ':' << port << ": " << std::strerror(errno));
  COPATH_CHECK_MSG(::listen(fd.get(), SOMAXCONN) == 0,
                   "listen: " << std::strerror(errno));
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    COPATH_CHECK_MSG(::getsockname(fd.get(),
                                   reinterpret_cast<sockaddr*>(&actual),
                                   &len) == 0,
                     "getsockname: " << std::strerror(errno));
    *bound_port = ntohs(actual.sin_port);
  }
  set_nonblocking(fd.get());
  return fd;
}

Fd connect_tcp(const std::string& host, std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  COPATH_CHECK_MSG(fd.valid(), "socket: " << std::strerror(errno));
  sockaddr_in addr = make_addr(host, port);
  COPATH_CHECK_MSG(::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                             sizeof(addr)) == 0,
                   "connect " << host << ':' << port << ": "
                              << std::strerror(errno));
  set_nodelay(fd.get());
  return fd;
}

bool read_exact(int fd, void* buf, std::size_t n) {
  auto* p = static_cast<char*>(buf);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) {
      COPATH_CHECK_MSG(got == 0, "connection closed mid-record ("
                                     << got << " of " << n << " bytes)");
      return false;
    }
    if (errno == EINTR) continue;
    COPATH_CHECK_MSG(false, "read: " << std::strerror(errno));
  }
  return true;
}

void write_all(int fd, const void* buf, std::size_t n) {
  const auto* p = static_cast<const char*>(buf);
  std::size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a peer reset must surface as a CheckError, not a
    // process-killing SIGPIPE (tests and library users don't install
    // handlers).
    const ssize_t w = ::send(fd, p + sent, n - sent, MSG_NOSIGNAL);
    if (w > 0) {
      sent += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    COPATH_CHECK_MSG(false, "write: " << std::strerror(errno));
  }
}

}  // namespace copath::net
