#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/check.hpp"
#include "util/clock.hpp"

namespace copath::net {

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  COPATH_CHECK_MSG(flags >= 0, "fcntl(F_GETFL): " << std::strerror(errno));
  COPATH_CHECK_MSG(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                   "fcntl(F_SETFL): " << std::strerror(errno));
}

void set_nodelay(int fd) {
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

namespace {

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  COPATH_CHECK_MSG(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
                   "not an IPv4 dotted-quad host: " << host);
  return addr;
}

}  // namespace

Fd listen_tcp(const std::string& host, std::uint16_t port,
              std::uint16_t* bound_port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  COPATH_CHECK_MSG(fd.valid(), "socket: " << std::strerror(errno));
  const int one = 1;
  (void)::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = make_addr(host, port);
  COPATH_CHECK_MSG(
      ::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
      "bind " << host << ':' << port << ": " << std::strerror(errno));
  COPATH_CHECK_MSG(::listen(fd.get(), SOMAXCONN) == 0,
                   "listen: " << std::strerror(errno));
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    COPATH_CHECK_MSG(::getsockname(fd.get(),
                                   reinterpret_cast<sockaddr*>(&actual),
                                   &len) == 0,
                     "getsockname: " << std::strerror(errno));
    *bound_port = ntohs(actual.sin_port);
  }
  set_nonblocking(fd.get());
  return fd;
}

Fd connect_tcp(const std::string& host, std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  COPATH_CHECK_MSG(fd.valid(), "socket: " << std::strerror(errno));
  sockaddr_in addr = make_addr(host, port);
  COPATH_CHECK_MSG(::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                             sizeof(addr)) == 0,
                   "connect " << host << ':' << port << ": "
                              << std::strerror(errno));
  set_nodelay(fd.get());
  return fd;
}

bool read_exact(int fd, void* buf, std::size_t n) {
  auto* p = static_cast<char*>(buf);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) {
      COPATH_CHECK_MSG(got == 0, "connection closed mid-record ("
                                     << got << " of " << n << " bytes)");
      return false;
    }
    if (errno == EINTR) continue;
    COPATH_CHECK_MSG(false, "read: " << std::strerror(errno));
  }
  return true;
}

bool read_exact_timed(int fd, void* buf, std::size_t n,
                      std::uint32_t timeout_ms) {
  if (timeout_ms == 0) return read_exact(fd, buf, n);
  auto* p = static_cast<char*>(buf);
  std::size_t got = 0;
  const std::uint64_t deadline = util::steady_now_ms() + timeout_ms;
  while (got < n) {
    const std::uint64_t now = util::steady_now_ms();
    if (now >= deadline) {
      throw TimeoutError("read timed out after " +
                         std::to_string(timeout_ms) + " ms (" +
                         std::to_string(got) + " of " + std::to_string(n) +
                         " bytes)");
    }
    pollfd pfd{fd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, static_cast<int>(deadline - now));
    if (pr < 0) {
      if (errno == EINTR) continue;
      COPATH_CHECK_MSG(false, "poll: " << std::strerror(errno));
    }
    if (pr == 0) continue;  // loop re-checks the deadline and throws
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) {
      COPATH_CHECK_MSG(got == 0, "connection closed mid-record ("
                                     << got << " of " << n << " bytes)");
      return false;
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    COPATH_CHECK_MSG(false, "read: " << std::strerror(errno));
  }
  return true;
}

void write_all(int fd, const void* buf, std::size_t n) {
  const auto* p = static_cast<const char*>(buf);
  std::size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a peer reset must surface as a CheckError, not a
    // process-killing SIGPIPE (tests and library users don't install
    // handlers).
    const ssize_t w = ::send(fd, p + sent, n - sent, MSG_NOSIGNAL);
    if (w > 0) {
      sent += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    COPATH_CHECK_MSG(false, "write: " << std::strerror(errno));
  }
}

}  // namespace copath::net
