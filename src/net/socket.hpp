// Thin POSIX socket helpers for the copathd serving tier.
//
// Everything here is deliberately small: an RAII fd, loopback-friendly
// TCP listen/connect (IPv4 dotted-quad hosts — the daemon binds 127.0.0.1
// by default and production fronting belongs to a load balancer), and the
// two blocking exact-transfer loops the client library uses. The server
// side never uses the blocking helpers — its sockets are non-blocking and
// driven by net::EventLoop.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/check.hpp"

namespace copath::net {

/// Thrown by the deadline-bounded transfer helpers when the peer stays
/// silent past the allowed time. Derives from CheckError so generic
/// "connection trouble" handling catches it, while retry logic can single
/// it out — a timed-out request may still be executing server-side, so it
/// is NOT one of the safe-to-retry failures.
class TimeoutError : public util::CheckError {
 public:
  explicit TimeoutError(const std::string& what) : CheckError(what) {}
};

/// Move-only owning file descriptor. close(2) on destruction.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(Fd&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Fd& operator=(Fd&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = o.fd_;
      o.fd_ = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset();

 private:
  int fd_ = -1;
};

/// Puts the descriptor in non-blocking mode. Throws util::CheckError.
void set_nonblocking(int fd);

/// Disables Nagle batching — the daemon's frames are latency-sensitive and
/// already write-combined per event-loop round. Best-effort (no throw).
void set_nodelay(int fd);

/// Binds + listens on host:port (IPv4 dotted quad; port 0 = ephemeral).
/// The returned socket is non-blocking with SO_REUSEADDR set;
/// `bound_port`, when non-null, receives the actual port (the ephemeral
/// case). Throws util::CheckError on failure.
[[nodiscard]] Fd listen_tcp(const std::string& host, std::uint16_t port,
                            std::uint16_t* bound_port);

/// Blocking TCP connect with TCP_NODELAY. Throws util::CheckError.
[[nodiscard]] Fd connect_tcp(const std::string& host, std::uint16_t port);

/// Blocking exact-length read. True on success; false on clean EOF before
/// the first byte; throws util::CheckError on errors or mid-record EOF.
bool read_exact(int fd, void* buf, std::size_t n);

/// read_exact with a per-call time budget: poll(2) guards every read so
/// the caller blocks at most `timeout_ms` waiting for the peer. Throws
/// TimeoutError when the budget runs out mid-record (the stream position
/// is then unknown — callers should drop the connection). `timeout_ms`
/// == 0 degrades to plain read_exact (wait forever).
bool read_exact_timed(int fd, void* buf, std::size_t n,
                      std::uint32_t timeout_ms);

/// Blocking full write. Throws util::CheckError on error/EOF.
void write_all(int fd, const void* buf, std::size_t n);

}  // namespace copath::net
