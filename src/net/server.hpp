// net::Server — the copathd serving core: one event-loop thread multiplexing
// pipelined protocol connections onto a copath::Service worker pool.
//
// Threading model (the whole design in four sentences): the loop thread owns
// every connection object and all socket IO; solver workers run each
// request's ResultSink inline, which ENCODES the response bytes off the loop
// thread (the expensive part of completion) and hands the finished frame to
// the loop through a mutex-guarded completion queue plus an
// async-signal-safe wake. The loop thread then does nothing per completion
// but append-and-flush. No connection state is ever touched off the loop
// thread.
//
// Backpressure is a two-level window mapped onto the Service's bounded MPMC
// queue: a connection stops being read (its fd leaves the poll set) when it
// has `inflight_window` unanswered solves OR the service queue rejects a
// submit (the decoded request is parked and retried as completions drain) OR
// its outbuf exceeds the write high-water mark. TCP then pushes back on the
// client; a slow or greedy peer costs itself latency, never the server
// memory.
//
// Graceful drain (SIGTERM or the Drain verb): new solves get structured
// Draining refusals while already-accepted ones keep completing; each
// connection closes once it has nothing in flight and nothing buffered, and
// when the last one is gone the Service itself drains and the loop stops.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/event_loop.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "service/service.hpp"
#include "util/cancel.hpp"

namespace copath::net {

class Server {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    /// 0 = ephemeral; read the actual port from port() after construction.
    std::uint16_t port = 0;
    /// Max unanswered solve requests per connection before its reads pause.
    /// A BatchSolve frame counts as ONE toward the window however many
    /// items it carries — the window bounds dispatches, and a batch is one
    /// dispatch (the service packs it onto one worker).
    std::size_t inflight_window = 64;
    /// Operational cap on BatchSolve items per frame; clamped to the
    /// protocol ceiling (protocol::kMaxBatchItems). Oversized batches are
    /// refused as BadFrame with a structured reason.
    std::size_t max_batch_items = protocol::kMaxBatchItems;
    /// Pause reads while a connection's outbuf exceeds this many bytes.
    std::size_t outbuf_high_water = 4u << 20;
    /// Overload bound: max parked (queue-refused, waiting-to-retry)
    /// requests per connection. Past it the request is refused with
    /// Status::Overloaded instead of parked; 0 disables parking entirely
    /// (every queue-full refuses). The old behavior — park without bound —
    /// let a slow service turn decoded request bodies into unbounded
    /// server memory.
    std::size_t max_parked = 64;
    /// Aggregate decoded-body bytes across ALL parked requests; a park
    /// that would exceed it is refused Overloaded. Bounds worst-case
    /// parked memory server-wide (a single batch frame can carry 16 MiB).
    std::size_t max_parked_bytes = 64u << 20;
    /// Close a connection that has made no protocol progress (no frame
    /// completed, no response sent) for this long, unless it has a solve
    /// in flight. Catches both silent idlers and slowloris peers trickling
    /// half a frame forever. 0 = never (the default: tests and pipelining
    /// clients may legitimately sit idle).
    std::uint32_t idle_timeout_ms = 0;
    /// Deadline applied to solve frames that carry none (0 = none). Frames
    /// with their own deadline_ms keep it.
    std::uint32_t default_deadline_ms = 0;
    /// Cadence of the periodic sweep (idle closes, parked-deadline sheds)
    /// via EventLoop::set_tick. 0 disables sweeps — parked deadlines then
    /// only resolve when completions wake the loop.
    std::uint32_t tick_interval_ms = 100;
    Service::Options service{};
  };

  /// Binds and listens immediately (throws util::CheckError on failure);
  /// serving starts with run().
  explicit Server(Options opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Runs the event loop on the calling thread until drain completes.
  void run();

  /// Requests a graceful drain from any thread or signal handler
  /// (async-signal-safe: one atomic store and one self-pipe write).
  void request_drain();

 private:
  /// Decoded BatchSolve frame en route to (or through) the service. Slots
  /// refused on the loop thread (invalid signatures) are prefilled here;
  /// the rest map positionally onto `reqs`. Shared with the worker-side
  /// sink, which needs the slot plan to encode the response frame.
  struct BatchPlan {
    struct Slot {
      bool prefilled = false;
      protocol::Status status = protocol::Status::Ok;
      std::string error;
    };
    std::vector<Slot> slots;
    /// Submitted subset in slot order; moved into the service on dispatch.
    std::vector<SolveRequest> reqs;
    /// Slot index of each submitted request.
    std::vector<std::size_t> req_slot;
  };
  struct Parked {
    protocol::Verb verb;
    std::uint64_t seq;
    SolveRequest req;
    /// Non-null for a parked batch (`req` is then unused).
    std::shared_ptr<BatchPlan> plan;
    /// Absolute steady-clock expiry anchored at FRAME ARRIVAL (0 = none):
    /// time spent parked counts against the request's deadline, and the
    /// tick sweep sheds expired entries without waiting for a queue slot.
    std::uint64_t deadline_at = 0;
    /// Decoded body bytes this entry pins (counted against
    /// Options::max_parked_bytes).
    std::size_t bytes = 0;
  };
  struct Conn {
    Fd fd;
    std::uint64_t id = 0;
    bool handshaken = false;
    /// Negotiated protocol version from the hello. Gates v2-only response
    /// shapes (the Health counter body) so a v1 client is served
    /// byte-identically to the v1 server.
    std::uint16_t version = protocol::kMinVersion;
    /// Poison: flush outbuf, then close (bad hello, corrupt framing).
    bool close_after_flush = false;
    std::size_t inflight = 0;
    std::string inbuf;
    std::string outbuf;
    /// Requests decoded but refused by a full service queue; retried in
    /// arrival order as completions free queue slots. Bounded by
    /// Options::max_parked / max_parked_bytes — past the caps the server
    /// answers Status::Overloaded instead of parking.
    std::deque<Parked> parked;
    /// steady_now_ms() of the last protocol progress (frame completed or
    /// response queued); the idle sweep's clock.
    std::uint64_t last_progress_ms = 0;
    /// Cancel token per dispatched (in-service) request, keyed by seq.
    /// Created on dispatch, erased when the completion frame comes back.
    /// The Cancel verb trips the target's token here; destroy_conn trips
    /// every one (a disconnected peer's solves stop consuming workers).
    std::unordered_map<std::uint64_t, std::shared_ptr<util::CancelToken>>
        tokens;
  };

  // The bool-returning members report whether the connection is still
  // alive (false = they destroyed it); callers must stop touching it on
  // false.
  void on_listener_ready();
  void on_conn_ready(std::uint64_t id, std::uint32_t events);
  void on_wake();

  bool read_conn(Conn& conn);
  bool consume_frames(Conn& conn);
  bool handle_frame(Conn& conn, std::string_view payload);
  bool handle_solve(Conn& conn, const protocol::Request& req);
  bool handle_batch(Conn& conn, const protocol::Request& req);
  /// True if the request entered the service (or was refused inline by a
  /// closed service — the sink fires either way); false = queue full,
  /// `sreq` intact, caller parks.
  bool try_dispatch(Conn& conn, protocol::Verb verb, std::uint64_t seq,
                    SolveRequest&& sreq);
  /// Batch form of try_dispatch: same contract, `plan->reqs` intact on
  /// false so the caller can park the plan and retry.
  bool try_dispatch_batch(Conn& conn, std::uint64_t seq,
                          const std::shared_ptr<BatchPlan>& plan);
  /// Merges prefilled slots with the service's results (positionally
  /// aligned with plan.req_slot) into one response frame. Runs on the
  /// solver worker for dispatched batches, on the loop thread when every
  /// slot was refused up front.
  [[nodiscard]] static std::string encode_batch_completion(
      std::uint64_t seq, const BatchPlan& plan,
      std::span<const SolveResult> results);
  bool send_stats(Conn& conn, std::uint64_t seq);
  /// Health: v1 conns get the legacy empty Ok frame byte-identically; v2
  /// conns get a degraded-state counter body (draining, parked pressure,
  /// L2 skipping, watchdog-stuck workers).
  bool send_health(Conn& conn, std::uint64_t seq);
  /// Cancel verb: trips the target seq's in-flight token (or sheds it from
  /// the parked queue), then acks Ok — idempotently, since the target may
  /// have completed concurrently.
  bool handle_cancel(Conn& conn, const protocol::Request& req);
  /// CacheCompact: clears+resets L1, compacts L2, answers with a counter
  /// body describing what happened.
  bool send_compact(Conn& conn, std::uint64_t seq);
  /// Retries parked requests (refusing them during drain) and resumes
  /// consuming buffered frames once the window allows.
  bool make_progress(Conn& conn);

  /// Parks `p` if the overload caps allow, else answers Overloaded.
  /// Returns the connection-alive contract like every bool member.
  bool park_or_refuse(Conn& conn, Parked p);
  /// Sheds parked entries whose deadline passed (DeadlineExceeded
  /// responses) and releases their byte accounting.
  bool shed_expired_parked(Conn& conn, std::uint64_t now);
  /// The EventLoop tick: parked-deadline sheds, idle closes, drain sweep.
  void on_tick();

  bool queue_frame(Conn& conn, std::string frame);
  bool flush_conn(Conn& conn);
  void update_interest(Conn& conn);
  [[nodiscard]] bool reads_paused(const Conn& conn) const;
  void destroy_conn(std::uint64_t id);

  void begin_drain();
  /// Closes drained connections; stops the loop when the last is gone.
  void sweep_drain();

  Options opts_;
  EventLoop loop_;
  Fd listener_;
  std::uint16_t port_ = 0;
  std::uint64_t next_conn_id_ = 1;
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  bool draining_ = false;
  std::atomic<bool> drain_requested_{false};

  // Loop-thread observability counters (surfaced via the Stats verb).
  std::uint64_t accepted_ = 0;
  std::uint64_t frames_ = 0;
  std::uint64_t bad_frames_ = 0;
  std::uint64_t parked_total_ = 0;
  /// Requests refused Overloaded at the parked caps.
  std::uint64_t parked_refused_ = 0;
  /// Parked entries shed by the deadline sweep.
  std::uint64_t shed_parked_ = 0;
  /// Connections closed by the idle sweep.
  std::uint64_t idle_closed_ = 0;
  /// Cancel frames received (whether or not the target was still around).
  std::uint64_t cancel_frames_ = 0;
  /// Decoded bytes currently pinned by parked requests (all conns).
  std::size_t parked_bytes_ = 0;

  // Completed responses en route from solver workers to the loop thread.
  // `seq` rides along so the loop can retire the request's cancel token.
  struct Completion {
    std::uint64_t conn_id = 0;
    std::uint64_t seq = 0;
    std::string frame;
  };
  std::mutex completions_mu_;
  std::vector<Completion> completions_;

  /// Last member: its destructor joins the solver workers, so by the time
  /// anything above is torn down no sink can still be running.
  Service service_;
};

}  // namespace copath::net
