// copathd wire protocol v2: length-prefixed binary frames over TCP.
//
// Everything is little-endian. A connection opens with a fixed-size
// handshake, then carries a stream of independent frames in both
// directions; requests are pipelined (a client may have many outstanding)
// and responses are tagged with the request's sequence id and written in
// COMPLETION order, not submission order — the sequence id, not stream
// position, is the correlation key.
//
// v2 is a minor revision of v1: the only frame-level change is an OPTIONAL
// trailing `deadline_ms u32` after WireOptions on the solve verbs, gated by
// a previously-reserved flag bit (kOptHasDeadline) — a v1 frame never sets
// the bit, so servers accept both versions on one connection type and v1
// clients keep working unchanged. (A v2 client against a v1 server is
// refused at the handshake; downgrade by not sending deadlines is the
// client's call, not the protocol's.)
//
//   handshake  client -> server   magic u32 | version u16 | reserved u16
//              server -> client   magic u32 | version u16 | status u8 | 0 u8
//              (status != Ok means the server is refusing — version
//               mismatch — and closes after the reply; servers accept any
//               version in [kMinVersion, kVersion])
//
//   frame                         length u32 | payload (length bytes)
//              `length` counts the payload only and must be in
//              (0, kMaxFrameBytes]; an oversized length is a framing
//              attack/corruption and closes the connection after a
//              structured BadFrame response.
//
//   request payload               verb u8 | seq u64 | body
//     (solve verbs: when WireOptions carries kOptHasDeadline, a
//      deadline_ms u32 sits between the options and the verb body)
//     SolveText       body = WireOptions (4 bytes) | cotree algebra text
//     SolveSignature  body = WireOptions (4 bytes) | CanonicalForm
//                     signature bytes (see cograph/canonical.hpp) — the
//                     hot path: the server skips text parsing AND
//                     canonical sorting, at the price of a full
//                     stack-machine re-validation of the untrusted bytes
//     Stats | Health | Drain | CacheCompact    body empty (admin verbs)
//     Cancel          body = target_seq u64 — cancel the in-flight or
//                     parked request this CONNECTION submitted under that
//                     sequence id (v2 verb). The Cancel frame itself is
//                     acked Ok (idempotently: cancelling a finished or
//                     unknown seq is a no-op ack); the cancelled request
//                     answers under ITS OWN seq with Status::Cancelled
//                     (or DeadlineExceeded if its budget expired first).
//     BatchSolve      body = WireOptions (4 bytes, shared by every item) |
//                     u16 count | count * (u8 kind | u32 len | len bytes)
//                     where kind selects the sub-body meaning (1 = algebra
//                     text, 2 = signature bytes). The whole batch is ONE
//                     frame, ONE sequence id, and ONE service dispatch:
//                     the server dedups/packs it (service/batch.hpp) and
//                     answers with ONE response frame carrying a
//                     positionally aligned status+body per item.
//
//   response payload              verb u8 | seq u64 | status u8 | body
//     status == Ok, solve verbs  body = encoded result (see WireResult)
//     status == Ok, BatchSolve   body = u16 count | count * (u8 status |
//                                u32 len | sub-body: encoded result when
//                                the slot status is Ok, UTF-8 error
//                                otherwise) — per-item failure isolation:
//                                one bad signature refuses its slot, not
//                                the batch
//     status == Ok, Stats | CacheCompact
//                                body = u32 count | count * (u8 keylen |
//                                key bytes | u64 value) — CacheCompact's
//                                counters report what the compaction did
//                                (L1 entries dropped, L2 live records and
//                                bytes before/after)
//     status != Ok               body = UTF-8 error message
//
// The encoding favors being obviously correct over squeezing bytes: fixed
// little-endian integers, one u32 per vertex id. The signature body is the
// compact part that matters — it is the same byte string the canonical
// cache keys on, so a client that caches signatures locally addresses the
// server's result cache directly.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "copath_solver.hpp"

namespace copath::net::protocol {

inline constexpr std::uint32_t kMagic = 0x48545043u;  // "CPTH" on the wire
inline constexpr std::uint16_t kVersion = 2;
/// Oldest client version a server still accepts (v2 only ADDS an optional
/// flag-gated field, so v1 frames parse under the v2 decoder unchanged).
inline constexpr std::uint16_t kMinVersion = 1;
inline constexpr std::size_t kHelloBytes = 8;
inline constexpr std::size_t kHelloReplyBytes = 8;
inline constexpr std::size_t kFrameHeaderBytes = 4;
/// Hard payload bound: anything larger is corruption or an attack (a
/// 16 MiB signature frame already describes a multi-million-vertex
/// instance).
inline constexpr std::uint32_t kMaxFrameBytes = 16u << 20;

enum class Verb : std::uint8_t {
  SolveText = 1,
  SolveSignature = 2,
  Stats = 3,
  Health = 4,
  Drain = 5,
  BatchSolve = 6,
  /// Admin: compact the persistent result cache (drop dead log bytes,
  /// rebuild the index) and clear + reset the RAM tier. Replies with a
  /// Stats-shaped counter body describing the compaction.
  CacheCompact = 7,
  /// v2: cancel an in-flight/parked request of THIS connection by its
  /// sequence id (body = target_seq u64). Acked Ok regardless of whether
  /// the target was found (it may have completed concurrently — the
  /// caller sees its real response either way); the target, if caught,
  /// answers with Status::Cancelled.
  Cancel = 8,
};

/// Protocol-level ceiling on BatchSolve items per frame (servers may
/// configure a lower operational cap). With the frame bound this caps the
/// worst-case per-frame work a client can demand in one dispatch.
inline constexpr std::size_t kMaxBatchItems = 1024;

// BatchSolve item kinds (the u8 `kind` on the wire).
inline constexpr std::uint8_t kBatchItemText = 1;
inline constexpr std::uint8_t kBatchItemSignature = 2;

enum class Status : std::uint8_t {
  Ok = 0,
  /// Frame structure was wrong (unknown verb, truncated body, oversized
  /// length). Oversized lengths also close the connection.
  BadFrame = 1,
  /// SolveSignature body failed the stack-machine validation
  /// (cograph::signature_valid) — refused before touching the service.
  InvalidSignature = 2,
  /// The instance was accepted but solving failed structurally (text that
  /// does not parse, unregistered backend, engine rejection); the body
  /// carries the structured error message.
  SolveError = 3,
  /// The server (or its service) is draining: the request was refused and
  /// will never be solved. Resubmit elsewhere.
  Draining = 4,
  /// Handshake refusal: protocol version mismatch.
  VersionMismatch = 5,
  /// The request carried a deadline and it expired before a worker picked
  /// the job up (or while it sat parked): the instance was never solved.
  /// Retrying is pointless unless the caller extends the deadline.
  DeadlineExceeded = 6,
  /// The server is past its overload caps (parked-request count/bytes, or
  /// injected admission pressure): the request was refused without being
  /// queued. Safe to retry after backoff.
  Overloaded = 7,
  /// v2: the request was cancelled before completing — a Cancel verb
  /// named its seq, its client disconnected (only observable server-side),
  /// or the worker watchdog reclaimed a stuck solve. Never retried
  /// automatically: the caller asked for this.
  Cancelled = 8,
};

[[nodiscard]] const char* to_string(Status s);

/// True for every status a conforming peer may emit — the decoder-side
/// range check (one place to extend when the enum grows).
[[nodiscard]] constexpr bool known_status(std::uint8_t s) {
  return s <= static_cast<std::uint8_t>(Status::Cancelled);
}

// WireOptions flag bits.
inline constexpr std::uint8_t kOptWantVerdicts = 1u << 0;
inline constexpr std::uint8_t kOptWantCycle = 1u << 1;
inline constexpr std::uint8_t kOptValidate = 1u << 2;
/// When set, `backend` selects the engine; otherwise the server's default
/// (Adaptive under default daemon options) is used.
inline constexpr std::uint8_t kOptExplicitBackend = 1u << 3;
/// v2: when set, a `deadline_ms u32` follows the 4-byte WireOptions on the
/// solve verbs (SolveText/SolveSignature/BatchSolve — one deadline for the
/// whole batch). Absent in v1 frames; the codec manages the bit itself
/// (append_* set it from their deadline argument).
inline constexpr std::uint8_t kOptHasDeadline = 1u << 4;

/// The per-request knobs a client may set — deliberately the
/// result-affecting subset (OptionsKey's domain), so wire requests map
/// cleanly onto cache identities. 4 bytes on the wire (flags, backend,
/// u16 reserved).
struct WireOptions {
  std::uint8_t flags = kOptWantVerdicts;
  std::uint8_t backend = 0;

  [[nodiscard]] bool operator==(const WireOptions&) const = default;
};

/// Applies wire options onto the server's default SolveOptions. An
/// unregistered explicit backend is NOT rejected here — the registry is
/// open (plug-in engines), so the solve path reports it structurally.
[[nodiscard]] SolveOptions apply_wire_options(WireOptions w,
                                              SolveOptions base);

// ------------------------------------------------------------ handshake

[[nodiscard]] std::string make_hello();
[[nodiscard]] std::string make_hello_reply(Status s);
/// Validates magic; `version` receives the peer's claimed version.
[[nodiscard]] bool parse_hello(std::string_view bytes,
                               std::uint16_t* version);
[[nodiscard]] bool parse_hello_reply(std::string_view bytes, Status* status,
                                     std::uint16_t* version);

// -------------------------------------------------------------- framing

/// Appends `length | payload` to `out`.
void append_frame(std::string& out, std::string_view payload);

enum class Extract : std::uint8_t {
  NeedMore,
  Frame,
  /// Length prefix of zero or beyond kMaxFrameBytes — the stream is not
  /// trustworthy past this point; close after the error response.
  Corrupt,
};

/// Incremental frame extraction for partial reads: consumes one complete
/// frame from the front of `buf` into `payload`, or reports NeedMore /
/// Corrupt without consuming. Feed it bytes as they arrive and loop while
/// it yields Frame.
[[nodiscard]] Extract extract_frame(std::string& buf, std::string* payload);

// ------------------------------------------------------------- requests

struct Request {
  Verb verb = Verb::Health;
  std::uint64_t seq = 0;
  WireOptions opts{};
  /// Relative solve deadline (0 = none): the server sheds the request with
  /// Status::DeadlineExceeded if it is still queued/parked this many
  /// milliseconds after the frame arrived — and, since cancellation became
  /// cooperative, trips the solve mid-flight when the budget expires on a
  /// worker. v2 frames only.
  std::uint32_t deadline_ms = 0;
  /// Verb::Cancel only: the sequence id to cancel.
  std::uint64_t target_seq = 0;
  /// Views into the payload passed to parse_request (algebra text or
  /// signature bytes); valid while that payload lives.
  std::string_view body;
};

/// `deadline_ms` > 0 sets kOptHasDeadline and appends the v2 deadline
/// field; 0 emits a v1-identical frame.
void append_solve_request(std::string& out, Verb verb, std::uint64_t seq,
                          WireOptions opts, std::string_view body,
                          std::uint32_t deadline_ms = 0);
void append_admin_request(std::string& out, Verb verb, std::uint64_t seq);

/// v2: Cancel frame naming the in-flight request to abandon.
void append_cancel_request(std::string& out, std::uint64_t seq,
                           std::uint64_t target_seq);

/// False on structurally bad payloads (unknown verb, truncated header or
/// options). `req->seq` is still recovered when at least verb+seq were
/// present, so error responses can carry the right correlation id.
/// For Verb::BatchSolve, `req->body` is the raw item list after the shared
/// WireOptions — run parse_batch_body over it next.
[[nodiscard]] bool parse_request(std::string_view payload, Request* req);

// ------------------------------------------------------------ batch verb

/// One BatchSolve item: views into the request payload (text algebra or
/// signature bytes), valid while that payload lives.
struct BatchItem {
  bool is_signature = false;
  std::string_view body;
};

void append_batch_request(std::string& out, std::uint64_t seq,
                          WireOptions opts,
                          std::span<const BatchItem> items,
                          std::uint32_t deadline_ms = 0);

/// Structural validation + decode of a BatchSolve item list (the Request
/// body after the shared options). False on any malformation — zero
/// count, count above min(max_items, kMaxBatchItems), unknown item kind,
/// empty or truncated sub-body, trailing bytes — with a structured reason
/// in `*why` (the server's BadFrame message, mirroring signature_valid's
/// contract). Item views alias `body`.
[[nodiscard]] bool parse_batch_body(std::string_view body,
                                    std::size_t max_items,
                                    std::vector<BatchItem>* items,
                                    std::string* why);

// ------------------------------------------------------------ responses

/// The client-side view of a solve response body.
struct WireResult {
  bool ok = false;
  bool minimum = false;
  bool hamiltonian_path = false;
  bool hamiltonian_cycle = false;
  bool has_verdicts = false;
  std::int64_t optimal_size = -1;
  std::uint32_t vertex_count = 0;
  /// Server-side engine wall time (observability; excludes queueing).
  double wall_ms = 0.0;
  std::vector<std::vector<std::uint32_t>> paths;
  std::optional<std::vector<std::uint32_t>> cycle;
};

struct Response {
  Verb verb = Verb::Health;
  std::uint64_t seq = 0;
  Status status = Status::Ok;
  WireResult result{};          // solve verbs, status == Ok
  std::string error;            // status != Ok
  /// Verb::Stats and Verb::CacheCompact (counter-shaped bodies).
  std::vector<std::pair<std::string, std::uint64_t>> stats;
  /// Verb::BatchSolve, status == Ok: one slot per requested item, in
  /// request order.
  struct BatchSlot {
    Status status = Status::Ok;
    WireResult result{};  // status == Ok
    std::string error;    // status != Ok
  };
  std::vector<BatchSlot> batch;
};

/// One encoded BatchSolve response slot: Ok slots carry `*result`, others
/// carry `error`.
struct BatchResponseEntry {
  Status status = Status::Ok;
  const SolveResult* result = nullptr;
  std::string_view error;
};

/// Encodes the complete BatchSolve response FRAME (outer status Ok;
/// whole-batch refusals use encode_status_response_frame instead).
[[nodiscard]] std::string encode_batch_response_frame(
    std::uint64_t seq, std::span<const BatchResponseEntry> entries);

/// Encodes a complete response FRAME (header included) for a solve verb:
/// Ok responses carry the encoded `res`, refusals/errors carry `error`.
[[nodiscard]] std::string encode_solve_response_frame(std::uint64_t seq,
                                                      Verb verb,
                                                      Status status,
                                                      const SolveResult* res,
                                                      std::string_view error);

[[nodiscard]] std::string encode_stats_response_frame(
    std::uint64_t seq,
    std::span<const std::pair<std::string_view, std::uint64_t>> counters);

/// Generalized counter-body response frame (Stats-shaped body under any
/// admin verb — used by CacheCompact; encode_stats_response_frame
/// delegates here).
[[nodiscard]] std::string encode_counters_response_frame(
    std::uint64_t seq, Verb verb,
    std::span<const std::pair<std::string_view, std::uint64_t>> counters);

/// Status-only response frame (Health, Drain acks, BadFrame, refusals).
[[nodiscard]] std::string encode_status_response_frame(
    std::uint64_t seq, Verb verb, Status status, std::string_view error);

/// False on truncated/corrupt payloads (client-side defensive decode —
/// the server is trusted less than it trusts itself).
[[nodiscard]] bool parse_response(std::string_view payload, Response* out);

// ---------------------------------------------------- full result codec

/// Appends the FULL canonical SolveResult encoding to `out`: the wire
/// result body (paths/cycle/verdict flags) extended with every remaining
/// field — backend routing, error/label text, PRAM stats, pipeline trace,
/// validation report. This is the persistent L2 cache's record value
/// (service/persist_cache.hpp): decode reproduces the stored result
/// field-for-field, so a disk-warm hit is indistinguishable from a
/// RAM-warm one.
void encode_result_record(std::string& out, const SolveResult& res);

/// Defensive decode of encode_result_record bytes (cache files are less
/// trusted than the process that wrote them — they survive crashes and
/// other writers). False on any truncation or structural violation;
/// `*out` is then unspecified.
[[nodiscard]] bool decode_result_record(std::string_view bytes,
                                        SolveResult* out);

}  // namespace copath::net::protocol
