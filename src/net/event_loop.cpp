#include "net/event_loop.hpp"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <vector>

#include "util/check.hpp"
#include "util/clock.hpp"

namespace copath::net {

EventLoop::EventLoop() {
  int fds[2];
  COPATH_CHECK_MSG(::pipe(fds) == 0, "pipe: " << std::strerror(errno));
  wake_read_ = Fd(fds[0]);
  wake_write_ = Fd(fds[1]);
  set_nonblocking(wake_read_.get());
  set_nonblocking(wake_write_.get());
}

void EventLoop::watch(int fd, std::uint32_t events, IoHandler handler) {
  auto& w = watches_[fd];
  w.events = events;
  w.handler = std::move(handler);
  w.dead = false;
}

void EventLoop::modify(int fd, std::uint32_t events) {
  const auto it = watches_.find(fd);
  if (it != watches_.end() && !it->second.dead) it->second.events = events;
}

void EventLoop::unwatch(int fd) {
  const auto it = watches_.find(fd);
  if (it != watches_.end()) it->second.dead = true;
}

void EventLoop::set_tick(std::uint32_t interval_ms, TickHandler handler) {
  tick_interval_ms_ = interval_ms;
  tick_handler_ = interval_ms == 0 ? TickHandler{} : std::move(handler);
  if (interval_ms != 0) {
    next_tick_ms_ = util::steady_now_ms() + interval_ms;
  }
}

void EventLoop::wake() const {
  // A full pipe already guarantees the loop will wake — losing this byte
  // is fine, so EAGAIN is success. No locks, no allocation: safe from a
  // signal handler.
  const char b = 1;
  [[maybe_unused]] const ssize_t r = ::write(wake_write_.get(), &b, 1);
}

void EventLoop::run() {
  running_ = true;
  std::vector<pollfd> pfds;
  while (running_) {
    pfds.clear();
    pfds.push_back(pollfd{wake_read_.get(), POLLIN, 0});
    for (auto& [fd, w] : watches_) {
      if (w.dead) continue;
      short ev = 0;
      if ((w.events & kRead) != 0) ev |= POLLIN;
      if ((w.events & kWrite) != 0) ev |= POLLOUT;
      pfds.push_back(pollfd{fd, ev, 0});
    }

    // Bounded poll when a tick is set: wait exactly until the next tick
    // deadline, never forever (the old -1 here meant "no fd ready, no
    // wake() -> no sweeps ever run"). Without a tick the loop keeps its
    // block-indefinitely behavior — pure IO servers pay nothing.
    int timeout_ms = -1;
    if (tick_handler_) {
      const std::uint64_t now = util::steady_now_ms();
      timeout_ms = now >= next_tick_ms_
                       ? 0
                       : static_cast<int>(std::min<std::uint64_t>(
                             next_tick_ms_ - now, 60'000));
    }
    const int n = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;  // signal delivery; wake() follows up
      COPATH_CHECK_MSG(false, "poll: " << std::strerror(errno));
    }

    bool woken = false;
    if ((pfds[0].revents & (POLLIN | POLLERR | POLLHUP)) != 0) {
      char buf[256];
      while (::read(wake_read_.get(), buf, sizeof(buf)) > 0) {
      }
      woken = true;
    }

    for (std::size_t i = 1; i < pfds.size(); ++i) {
      const short re = pfds[i].revents;
      if (re == 0) continue;
      // The watch map may have grown/shrunk via handler calls to
      // watch()/unwatch(); re-find and honor the dead flag instead of
      // trusting the pointer captured before dispatch began.
      const auto it = watches_.find(pfds[i].fd);
      if (it == watches_.end() || it->second.dead) continue;
      std::uint32_t events = 0;
      if ((re & (POLLIN | POLLERR | POLLHUP | POLLNVAL)) != 0) {
        events |= kRead;
      }
      if ((re & POLLOUT) != 0) events |= kWrite;
      if (events != 0) it->second.handler(events);
      if (!running_) break;
    }

    if (woken && wake_handler_) wake_handler_();

    if (running_ && tick_handler_ && util::steady_now_ms() >= next_tick_ms_) {
      // Schedule from "now", not the missed deadline: a stalled loop runs
      // one catch-up tick, never a burst.
      next_tick_ms_ = util::steady_now_ms() + tick_interval_ms_;
      tick_handler_();
    }

    // Reap fds unwatched during dispatch.
    for (auto it = watches_.begin(); it != watches_.end();) {
      it = it->second.dead ? watches_.erase(it) : std::next(it);
    }
  }
}

}  // namespace copath::net
