#include "net/client.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "util/check.hpp"

namespace copath::net {

namespace proto = protocol;

namespace {

std::uint64_t splitmix64(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint32_t RetryPolicy::delay_ms(std::uint32_t retry) const {
  if (retry == 0) return 0;
  // Cap the shift so base << k cannot overflow before the min().
  const std::uint32_t shift = std::min<std::uint32_t>(retry - 1, 20);
  const std::uint64_t cap = std::min<std::uint64_t>(
      max_delay_ms, std::uint64_t{base_delay_ms} << shift);
  // Half-range jitter in [cap/2, cap]: spreads a thundering herd of
  // retries while keeping a floor, deterministic in (seed, retry).
  const std::uint64_t z = splitmix64(seed ^ (0xD1B54A32D192ED03ULL * retry));
  const double u = static_cast<double>(z >> 11) * 0x1.0p-53;
  return static_cast<std::uint32_t>(
      static_cast<double>(cap) * (0.5 + 0.5 * u));
}

Client::Client(const std::string& host, std::uint16_t port)
    : Client(host, port, Config()) {}

Client::Client(const std::string& host, std::uint16_t port, Config config)
    : host_(host), port_(port), config_(config) {
  connect_and_handshake();
}

void Client::connect_and_handshake() {
  fd_ = connect_tcp(host_, port_);
  const std::string hello = proto::make_hello();
  write_all(fd_.get(), hello.data(), hello.size());
  char reply[proto::kHelloReplyBytes];
  COPATH_CHECK_MSG(read_exact_timed(fd_.get(), reply, sizeof(reply),
                                    config_.request_timeout_ms),
                   "server closed during handshake");
  proto::Status status = proto::Status::Ok;
  std::uint16_t version = 0;
  COPATH_CHECK_MSG(proto::parse_hello_reply(
                       std::string_view(reply, sizeof(reply)), &status,
                       &version),
                   "peer is not a copathd server (bad hello reply)");
  COPATH_CHECK_MSG(status == proto::Status::Ok,
                   "server refused handshake: " << proto::to_string(status)
                                                << " (server version "
                                                << version << ")");
}

void Client::reconnect() {
  fd_.reset();
  sendbuf_.clear();
  connect_and_handshake();
}

std::uint64_t Client::send_solve_text(std::string_view algebra,
                                      proto::WireOptions opts,
                                      std::uint32_t deadline_ms) {
  const std::uint64_t seq = next_seq_++;
  proto::append_solve_request(sendbuf_, proto::Verb::SolveText, seq, opts,
                              algebra, pick_deadline(deadline_ms));
  return seq;
}

std::uint64_t Client::send_solve_signature(std::string_view signature,
                                           proto::WireOptions opts,
                                           std::uint32_t deadline_ms) {
  const std::uint64_t seq = next_seq_++;
  proto::append_solve_request(sendbuf_, proto::Verb::SolveSignature, seq,
                              opts, signature, pick_deadline(deadline_ms));
  return seq;
}

std::uint64_t Client::send_solve_batch(
    std::span<const proto::BatchItem> items, proto::WireOptions opts,
    std::uint32_t deadline_ms) {
  const std::uint64_t seq = next_seq_++;
  proto::append_batch_request(sendbuf_, seq, opts, items,
                              pick_deadline(deadline_ms));
  return seq;
}

std::uint64_t Client::send_admin(proto::Verb verb) {
  const std::uint64_t seq = next_seq_++;
  proto::append_admin_request(sendbuf_, verb, seq);
  return seq;
}

std::uint64_t Client::send_cancel(std::uint64_t target_seq) {
  const std::uint64_t seq = next_seq_++;
  proto::append_cancel_request(sendbuf_, seq, target_seq);
  return seq;
}

void Client::flush() {
  if (sendbuf_.empty()) return;
  write_all(fd_.get(), sendbuf_.data(), sendbuf_.size());
  sendbuf_.clear();
}

proto::Response Client::recv() {
  flush();
  std::uint8_t header[proto::kFrameHeaderBytes];
  COPATH_CHECK_MSG(read_exact_timed(fd_.get(), header, sizeof(header),
                                    config_.request_timeout_ms),
                   "server closed the connection");
  std::uint32_t len = 0;
  for (int i = 3; i >= 0; --i) len = (len << 8) | header[i];
  COPATH_CHECK_MSG(len > 0 && len <= proto::kMaxFrameBytes,
                   "unframeable response length " << len);
  std::string payload(len, '\0');
  COPATH_CHECK_MSG(read_exact_timed(fd_.get(), payload.data(),
                                    payload.size(),
                                    config_.request_timeout_ms),
                   "server closed mid-frame");
  proto::Response res;
  COPATH_CHECK_MSG(proto::parse_response(payload, &res),
                   "undecodable response payload (" << len << " bytes)");
  return res;
}

template <typename SendFn>
proto::Response Client::roundtrip_with_retry(SendFn&& send_fn) {
  const RetryPolicy& rp = config_.retry;
  const std::uint32_t attempts = std::max<std::uint32_t>(1, rp.max_attempts);
  for (std::uint32_t attempt = 1;; ++attempt) {
    const bool last = attempt >= attempts;
    try {
      if (fd_.get() < 0) connect_and_handshake();
      const std::uint64_t seq = send_fn();
      proto::Response res = recv();
      // Correlate by seq: after a server death, answers to requests from
      // BEFORE the outage can still sit in the receive buffer. Returning
      // one of those for THIS call would silently answer the wrong
      // question — drain them until our response (or the reset) arrives.
      while (res.seq != seq) res = recv();
      if (last || !RetryPolicy::retryable(res.status)) return res;
    } catch (const TimeoutError&) {
      // The server may still be executing this request; silently
      // re-submitting could double the work. The caller decides.
      throw;
    } catch (const util::CheckError&) {
      // Connection-level failure: daemon restart, reset, refused dial.
      // The request never got an answer — safe to retry on a fresh
      // connection.
      if (last) throw;
      fd_.reset();
      sendbuf_.clear();
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(rp.delay_ms(attempt)));
  }
}

proto::Response Client::solve_text(std::string_view algebra,
                                   proto::WireOptions opts,
                                   std::uint32_t deadline_ms) {
  return roundtrip_with_retry(
      [&] { return send_solve_text(algebra, opts, deadline_ms); });
}

proto::Response Client::solve_signature(std::string_view signature,
                                        proto::WireOptions opts,
                                        std::uint32_t deadline_ms) {
  return roundtrip_with_retry(
      [&] { return send_solve_signature(signature, opts, deadline_ms); });
}

proto::Response Client::solve_batch(std::span<const proto::BatchItem> items,
                                    proto::WireOptions opts,
                                    std::uint32_t deadline_ms) {
  return roundtrip_with_retry(
      [&] { return send_solve_batch(items, opts, deadline_ms); });
}

proto::Response Client::stats() {
  (void)send_admin(proto::Verb::Stats);
  return recv();
}

proto::Response Client::health() {
  (void)send_admin(proto::Verb::Health);
  return recv();
}

proto::Response Client::drain() {
  (void)send_admin(proto::Verb::Drain);
  return recv();
}

proto::Response Client::compact() {
  (void)send_admin(proto::Verb::CacheCompact);
  return recv();
}

}  // namespace copath::net
