#include "net/client.hpp"

#include "util/check.hpp"

namespace copath::net {

namespace proto = protocol;

Client::Client(const std::string& host, std::uint16_t port)
    : fd_(connect_tcp(host, port)) {
  const std::string hello = proto::make_hello();
  write_all(fd_.get(), hello.data(), hello.size());
  char reply[proto::kHelloReplyBytes];
  COPATH_CHECK_MSG(read_exact(fd_.get(), reply, sizeof(reply)),
                   "server closed during handshake");
  proto::Status status = proto::Status::Ok;
  std::uint16_t version = 0;
  COPATH_CHECK_MSG(proto::parse_hello_reply(
                       std::string_view(reply, sizeof(reply)), &status,
                       &version),
                   "peer is not a copathd server (bad hello reply)");
  COPATH_CHECK_MSG(status == proto::Status::Ok,
                   "server refused handshake: " << proto::to_string(status)
                                                << " (server version "
                                                << version << ")");
}

std::uint64_t Client::send_solve_text(std::string_view algebra,
                                      proto::WireOptions opts) {
  const std::uint64_t seq = next_seq_++;
  proto::append_solve_request(sendbuf_, proto::Verb::SolveText, seq, opts,
                              algebra);
  return seq;
}

std::uint64_t Client::send_solve_signature(std::string_view signature,
                                           proto::WireOptions opts) {
  const std::uint64_t seq = next_seq_++;
  proto::append_solve_request(sendbuf_, proto::Verb::SolveSignature, seq,
                              opts, signature);
  return seq;
}

std::uint64_t Client::send_solve_batch(
    std::span<const proto::BatchItem> items, proto::WireOptions opts) {
  const std::uint64_t seq = next_seq_++;
  proto::append_batch_request(sendbuf_, seq, opts, items);
  return seq;
}

std::uint64_t Client::send_admin(proto::Verb verb) {
  const std::uint64_t seq = next_seq_++;
  proto::append_admin_request(sendbuf_, verb, seq);
  return seq;
}

void Client::flush() {
  if (sendbuf_.empty()) return;
  write_all(fd_.get(), sendbuf_.data(), sendbuf_.size());
  sendbuf_.clear();
}

proto::Response Client::recv() {
  flush();
  std::uint8_t header[proto::kFrameHeaderBytes];
  COPATH_CHECK_MSG(read_exact(fd_.get(), header, sizeof(header)),
                   "server closed the connection");
  std::uint32_t len = 0;
  for (int i = 3; i >= 0; --i) len = (len << 8) | header[i];
  COPATH_CHECK_MSG(len > 0 && len <= proto::kMaxFrameBytes,
                   "unframeable response length " << len);
  std::string payload(len, '\0');
  COPATH_CHECK_MSG(read_exact(fd_.get(), payload.data(), payload.size()),
                   "server closed mid-frame");
  proto::Response res;
  COPATH_CHECK_MSG(proto::parse_response(payload, &res),
                   "undecodable response payload (" << len << " bytes)");
  return res;
}

proto::Response Client::solve_text(std::string_view algebra,
                                   proto::WireOptions opts) {
  (void)send_solve_text(algebra, opts);
  return recv();
}

proto::Response Client::solve_signature(std::string_view signature,
                                        proto::WireOptions opts) {
  (void)send_solve_signature(signature, opts);
  return recv();
}

proto::Response Client::solve_batch(std::span<const proto::BatchItem> items,
                                    proto::WireOptions opts) {
  (void)send_solve_batch(items, opts);
  return recv();
}

proto::Response Client::stats() {
  (void)send_admin(proto::Verb::Stats);
  return recv();
}

proto::Response Client::health() {
  (void)send_admin(proto::Verb::Health);
  return recv();
}

proto::Response Client::drain() {
  (void)send_admin(proto::Verb::Drain);
  return recv();
}

proto::Response Client::compact() {
  (void)send_admin(proto::Verb::CacheCompact);
  return recv();
}

}  // namespace copath::net
