#include "net/server.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <limits>
#include <span>

#include "cograph/canonical.hpp"
#include "util/clock.hpp"
#include "util/fault.hpp"

namespace copath::net {

namespace proto = protocol;

namespace {

/// Maps a failed SolveResult to its wire status via the Service's error
/// string contract (the kErr* constants in service.hpp) — the single place
/// service-level refusals become protocol statuses. Anything outside the
/// contract failed structurally inside the solve itself.
proto::Status failure_status(const SolveResult& res) {
  if (res.error == kErrDraining || res.error == kErrShutDown) {
    return proto::Status::Draining;
  }
  if (res.error == kErrDeadlineExceeded) {
    return proto::Status::DeadlineExceeded;
  }
  if (res.error == kErrCancelled) return proto::Status::Cancelled;
  if (res.error == kErrOverloaded) return proto::Status::Overloaded;
  return proto::Status::SolveError;
}

/// Built on the SOLVER WORKER thread — response encoding is the expensive
/// part of completion, and doing it here keeps the event loop's share of a
/// completion down to append-and-flush.
std::string encode_completion(std::uint64_t seq, proto::Verb verb,
                              const SolveResult& res) {
  if (res.ok) {
    return proto::encode_solve_response_frame(seq, verb, proto::Status::Ok,
                                              &res, {});
  }
  return proto::encode_solve_response_frame(seq, verb, failure_status(res),
                                            nullptr, res.error);
}

/// Effective relative deadline for a solve frame: the frame's own, else
/// the server default, else none.
std::uint32_t effective_deadline_ms(const proto::Request& req,
                                    const Server::Options& opts) {
  return req.deadline_ms != 0 ? req.deadline_ms : opts.default_deadline_ms;
}

std::uint64_t deadline_at_from(std::uint32_t deadline_ms) {
  return deadline_ms == 0 ? 0 : util::steady_now_ms() + deadline_ms;
}

std::uint64_t recover_seq(std::string_view payload) {
  if (payload.size() < 9) return 0;
  std::uint64_t seq = 0;
  for (int i = 0; i < 8; ++i) {
    seq |= std::uint64_t{static_cast<std::uint8_t>(payload[1 + i])} << (8 * i);
  }
  return seq;
}

}  // namespace

Server::Server(Options opts)
    : opts_(std::move(opts)), service_(opts_.service) {
  // In the body, not the init list: listen_tcp writes the ephemeral port
  // through &port_, which must already be past its own initializer.
  listener_ = listen_tcp(opts_.host, opts_.port, &port_);
  loop_.set_wake_handler([this] { on_wake(); });
  if (opts_.tick_interval_ms > 0) {
    loop_.set_tick(opts_.tick_interval_ms, [this] { on_tick(); });
  }
  loop_.watch(listener_.get(), EventLoop::kRead,
              [this](std::uint32_t) { on_listener_ready(); });
}

Server::~Server() = default;

void Server::run() { loop_.run(); }

void Server::request_drain() {
  drain_requested_.store(true, std::memory_order_relaxed);
  loop_.wake();
}

void Server::on_listener_ready() {
  for (;;) {
    const int fd = ::accept(listener_.get(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN, or a transient accept error — poll will re-arm
    }
    set_nonblocking(fd);
    set_nodelay(fd);
    auto conn = std::make_unique<Conn>();
    conn->fd = Fd(fd);
    conn->id = next_conn_id_++;
    conn->last_progress_ms = util::steady_now_ms();
    ++accepted_;
    const std::uint64_t id = conn->id;
    loop_.watch(fd, EventLoop::kRead,
                [this, id](std::uint32_t ev) { on_conn_ready(id, ev); });
    conns_.emplace(id, std::move(conn));
  }
}

void Server::on_conn_ready(std::uint64_t id, std::uint32_t events) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn& conn = *it->second;
  if ((events & EventLoop::kRead) != 0 && !read_conn(conn)) return;
  if ((events & EventLoop::kWrite) != 0 && !flush_conn(conn)) return;
  update_interest(conn);
  if (draining_) sweep_drain();
}

bool Server::read_conn(Conn& conn) {
  char buf[65536];
  for (;;) {
    const ssize_t r = ::read(conn.fd.get(), buf, sizeof(buf));
    if (r > 0) {
      conn.inbuf.append(buf, static_cast<std::size_t>(r));
      if (static_cast<std::size_t>(r) < sizeof(buf)) break;
      continue;
    }
    if (r == 0) {  // peer closed; any in-service results are dropped
      destroy_conn(conn.id);
      return false;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    destroy_conn(conn.id);
    return false;
  }

  if (!conn.handshaken) {
    if (conn.inbuf.size() < proto::kHelloBytes) return true;
    std::uint16_t version = 0;
    const bool ok = proto::parse_hello(
        std::string_view(conn.inbuf).substr(0, proto::kHelloBytes), &version);
    if (!ok) {  // not our protocol at all — no reply owed
      destroy_conn(conn.id);
      return false;
    }
    conn.inbuf.erase(0, proto::kHelloBytes);
    // Accept the whole supported range, not just the current version: a v1
    // client's frames are a strict subset of v2's grammar, so they decode
    // unchanged.
    if (version < proto::kMinVersion || version > proto::kVersion) {
      conn.close_after_flush = true;
      return queue_frame(conn,
                         proto::make_hello_reply(
                             proto::Status::VersionMismatch));
    }
    conn.handshaken = true;
    conn.version = version;
    if (!queue_frame(conn, proto::make_hello_reply(proto::Status::Ok))) {
      return false;
    }
  }
  return consume_frames(conn);
}

bool Server::consume_frames(Conn& conn) {
  // Stop decoding while the connection is over its window or has parked
  // requests: the unread bytes stay in inbuf (and eventually in the kernel
  // buffer — TCP backpressure), and on_wake resumes consumption as
  // completions drain.
  std::string payload;
  while (!conn.close_after_flush && conn.parked.empty() &&
         conn.inflight < opts_.inflight_window) {
    switch (proto::extract_frame(conn.inbuf, &payload)) {
      case proto::Extract::NeedMore:
        return true;
      case proto::Extract::Corrupt:
        ++bad_frames_;
        conn.inbuf.clear();
        conn.close_after_flush = true;
        return queue_frame(conn, proto::encode_status_response_frame(
                                     0, proto::Verb::Health,
                                     proto::Status::BadFrame,
                                     "unframeable length prefix"));
      case proto::Extract::Frame:
        break;
    }
    if (!handle_frame(conn, payload)) return false;
  }
  return true;
}

bool Server::handle_frame(Conn& conn, std::string_view payload) {
  ++frames_;
  conn.last_progress_ms = util::steady_now_ms();
  proto::Request req;
  if (!proto::parse_request(payload, &req)) {
    ++bad_frames_;
    return queue_frame(conn, proto::encode_status_response_frame(
                                 recover_seq(payload), proto::Verb::Health,
                                 proto::Status::BadFrame,
                                 "malformed request payload"));
  }
  switch (req.verb) {
    case proto::Verb::Health:
      return send_health(conn, req.seq);
    case proto::Verb::Cancel:
      // Deliberately NOT gated on draining_: cancelling in-flight work is
      // exactly what a draining server wants to allow.
      return handle_cancel(conn, req);
    case proto::Verb::Stats:
      return send_stats(conn, req.seq);
    case proto::Verb::CacheCompact:
      return send_compact(conn, req.seq);
    case proto::Verb::Drain: {
      // Ack first, then request: begin_drain() tears at the connection
      // table, so it is deferred to the wake handler rather than run under
      // this frame's iteration.
      const bool alive = queue_frame(
          conn, proto::encode_status_response_frame(
                    req.seq, proto::Verb::Drain, proto::Status::Ok, {}));
      request_drain();
      return alive;
    }
    case proto::Verb::SolveText:
    case proto::Verb::SolveSignature:
      return handle_solve(conn, req);
    case proto::Verb::BatchSolve:
      return handle_batch(conn, req);
  }
  return true;
}

bool Server::handle_solve(Conn& conn, const proto::Request& req) {
  if (draining_) {
    return queue_frame(conn, proto::encode_status_response_frame(
                                 req.seq, req.verb, proto::Status::Draining,
                                 "server is draining"));
  }
  SolveRequest sreq;
  if (req.verb == proto::Verb::SolveSignature) {
    // Validate the untrusted bytes here, on the loop thread: rejecting a
    // hostile signature must not cost a queue slot or a worker wakeup.
    std::string why;
    if (!cograph::signature_valid(req.body, &why)) {
      return queue_frame(conn, proto::encode_status_response_frame(
                                   req.seq, req.verb,
                                   proto::Status::InvalidSignature, why));
    }
    sreq.instance = Instance::signature(std::string(req.body));
  } else {
    sreq.instance = Instance::text(std::string(req.body));
  }
  sreq.options = proto::apply_wire_options(req.opts, opts_.service.solve);
  const std::uint32_t deadline_ms = effective_deadline_ms(req, opts_);
  sreq.deadline_ms = deadline_ms;
  if (!try_dispatch(conn, req.verb, req.seq, std::move(sreq))) {
    return park_or_refuse(
        conn, Parked{req.verb, req.seq, std::move(sreq), nullptr,
                     deadline_at_from(deadline_ms), req.body.size()});
  }
  return true;
}

bool Server::handle_batch(Conn& conn, const proto::Request& req) {
  if (draining_) {
    return queue_frame(conn, proto::encode_status_response_frame(
                                 req.seq, proto::Verb::BatchSolve,
                                 proto::Status::Draining,
                                 "server is draining"));
  }
  // Structural validation on the loop thread, like single-solve signature
  // checks: a malformed batch must not cost a queue slot or worker wakeup.
  std::vector<proto::BatchItem> items;
  std::string why;
  if (!proto::parse_batch_body(req.body, opts_.max_batch_items, &items,
                               &why)) {
    ++bad_frames_;
    return queue_frame(conn, proto::encode_status_response_frame(
                                 req.seq, proto::Verb::BatchSolve,
                                 proto::Status::BadFrame, why));
  }
  auto plan = std::make_shared<BatchPlan>();
  plan->slots.resize(items.size());
  plan->reqs.reserve(items.size());
  plan->req_slot.reserve(items.size());
  const std::optional<SolveOptions> opts =
      proto::apply_wire_options(req.opts, opts_.service.solve);
  // One frame, one deadline: every item in the batch shares it (the
  // service dispatches the batch as one unit anyway).
  const std::uint32_t deadline_ms = effective_deadline_ms(req, opts_);
  for (std::size_t i = 0; i < items.size(); ++i) {
    const proto::BatchItem& item = items[i];
    if (item.is_signature) {
      // Per-slot isolation: one hostile signature refuses its slot, the
      // rest of the batch still solves.
      std::string swhy;
      if (!cograph::signature_valid(item.body, &swhy)) {
        plan->slots[i].prefilled = true;
        plan->slots[i].status = proto::Status::InvalidSignature;
        plan->slots[i].error = std::move(swhy);
        continue;
      }
    }
    SolveRequest sreq;
    sreq.instance = item.is_signature
                        ? Instance::signature(std::string(item.body))
                        : Instance::text(std::string(item.body));
    sreq.options = opts;
    sreq.deadline_ms = deadline_ms;
    plan->req_slot.push_back(i);
    plan->reqs.push_back(std::move(sreq));
  }
  if (plan->reqs.empty()) {
    // Every slot refused up front — answer inline, nothing to dispatch.
    return queue_frame(conn, encode_batch_completion(req.seq, *plan, {}));
  }
  if (!try_dispatch_batch(conn, req.seq, plan)) {
    return park_or_refuse(
        conn, Parked{proto::Verb::BatchSolve, req.seq, {}, std::move(plan),
                     deadline_at_from(deadline_ms), req.body.size()});
  }
  return true;
}

std::string Server::encode_batch_completion(
    std::uint64_t seq, const BatchPlan& plan,
    std::span<const SolveResult> results) {
  std::vector<proto::BatchResponseEntry> entries(plan.slots.size());
  for (std::size_t i = 0; i < plan.slots.size(); ++i) {
    if (plan.slots[i].prefilled) {
      entries[i].status = plan.slots[i].status;
      entries[i].error = plan.slots[i].error;
    }
  }
  for (std::size_t k = 0; k < results.size() && k < plan.req_slot.size();
       ++k) {
    proto::BatchResponseEntry& e = entries[plan.req_slot[k]];
    const SolveResult& res = results[k];
    if (res.ok) {
      e.status = proto::Status::Ok;
      e.result = &res;
    } else {
      e.status = failure_status(res);
      e.error = res.error;
    }
  }
  return proto::encode_batch_response_frame(seq, entries);
}

bool Server::try_dispatch_batch(Conn& conn, std::uint64_t seq,
                                const std::shared_ptr<BatchPlan>& plan) {
  const std::uint64_t id = conn.id;
  // One token per batch frame, riding slot 0 (the service's batch-token
  // convention): a Cancel or disconnect abandons the whole dispatch, which
  // matches the one-frame-one-deadline batch contract. Parked retries
  // reuse the token they already carry.
  if (plan->reqs.front().cancel == nullptr) {
    plan->reqs.front().cancel = std::make_shared<util::CancelToken>();
  }
  std::shared_ptr<util::CancelToken> token = plan->reqs.front().cancel;
  Service::BatchSink sink =
      [this, id, seq, plan](std::vector<SolveResult> results) {
        // Worker thread: encode the whole frame here, hand bytes to the
        // loop — same division of labor as single-solve completions.
        std::string frame = encode_batch_completion(seq, *plan, results);
        {
          std::lock_guard<std::mutex> lock(completions_mu_);
          completions_.push_back({id, seq, std::move(frame)});
        }
        loop_.wake();
      };
  if (!service_.try_submit_batch_async(plan->reqs, sink)) return false;
  conn.tokens.emplace(seq, std::move(token));
  ++conn.inflight;  // one window slot per batch: it is one dispatch
  return true;
}

bool Server::try_dispatch(Conn& conn, proto::Verb verb, std::uint64_t seq,
                          SolveRequest&& sreq) {
  const std::uint64_t id = conn.id;
  if (sreq.cancel == nullptr) {
    sreq.cancel = std::make_shared<util::CancelToken>();
  }
  std::shared_ptr<util::CancelToken> token = sreq.cancel;
  Service::ResultSink sink = [this, id, seq, verb](SolveResult res) {
    std::string frame = encode_completion(seq, verb, res);
    {
      std::lock_guard<std::mutex> lock(completions_mu_);
      completions_.push_back({id, seq, std::move(frame)});
    }
    loop_.wake();
  };
  if (!service_.try_submit_async(sreq, sink)) return false;
  conn.tokens.emplace(seq, std::move(token));
  ++conn.inflight;
  return true;
}

bool Server::send_stats(Conn& conn, std::uint64_t seq) {
  const Service::Stats s = service_.stats();
  const std::pair<std::string_view, std::uint64_t> counters[] = {
      {"submitted", s.submitted},
      {"completed", s.completed},
      {"queue_depth", s.queue_depth},
      {"in_flight", s.in_flight},
      {"cache_hits", s.cache_hits},
      {"cache_misses", s.cache_misses},
      {"coalesced", s.coalesced},
      {"express_solves", s.express_solves},
      {"batch_submits", s.batch_submits},
      {"batch_dedup_hits", s.batch_dedup_hits},
      {"packed_solves", s.packed_solves},
      {"connections", conns_.size()},
      {"accepted", accepted_},
      {"frames", frames_},
      {"bad_frames", bad_frames_},
      {"parked", parked_total_},
      {"parked_refused", parked_refused_},
      {"parked_bytes", parked_bytes_},
      {"shed_expired", s.shed_expired},
      {"shed_parked", shed_parked_},
      {"idle_closed", idle_closed_},
      {"cancelled", s.cancelled},
      {"watchdog_cancels", s.watchdog_cancels},
      {"stuck_workers", s.stuck_workers},
      {"cancel_frames", cancel_frames_},
      {"draining", draining_ ? 1u : 0u},
      {"l2_enabled", s.persist_enabled ? 1u : 0u},
      {"l2_hits", s.persist.hits},
      {"l2_misses", s.persist.misses},
      {"l2_promotions", s.persist_promotions},
      {"l2_appends", s.persist.appends},
      {"l2_append_dups", s.persist.append_dups},
      {"l2_append_skips", s.persist.append_skips},
      {"l2_records", s.persist.records},
      {"l2_log_bytes", s.persist.log_bytes},
      {"l2_corrupt_dropped", s.persist.corrupt_dropped},
      {"l2_compactions", s.persist.compactions},
      {"l2_reopens", s.persist.reopens},
  };
  return queue_frame(conn,
                     proto::encode_stats_response_frame(seq, counters));
}

bool Server::send_health(Conn& conn, std::uint64_t seq) {
  if (conn.version < 2) {
    // The v1 Health reply is the empty-body Ok status frame — keep it
    // byte-for-byte so v1 clients (which reject unexpected bodies) still
    // parse it.
    return queue_frame(conn, proto::encode_status_response_frame(
                                 seq, proto::Verb::Health,
                                 proto::Status::Ok, {}));
  }
  // v2: a degraded-state surface, counter-shaped like Stats but curated —
  // only the gauges an operator's probe needs to decide "healthy, shedding,
  // or wedged", not the full counter dump.
  const Service::Stats s = service_.stats();
  std::size_t parked_now = 0;
  for (const auto& [cid, c] : conns_) parked_now += c->parked.size();
  const std::pair<std::string_view, std::uint64_t> counters[] = {
      {"draining", draining_ ? 1u : 0u},
      {"queue_depth", s.queue_depth},
      {"in_flight", s.in_flight},
      {"parked_now", parked_now},
      {"parked_bytes", parked_bytes_},
      {"parked_refused", parked_refused_},
      {"shed_expired", s.shed_expired},
      {"cancelled", s.cancelled},
      {"watchdog_cancels", s.watchdog_cancels},
      {"stuck_workers", s.stuck_workers},
      {"l2_enabled", s.persist_enabled ? 1u : 0u},
      {"l2_append_skips", s.persist.append_skips},
      {"l2_corrupt_dropped", s.persist.corrupt_dropped},
  };
  return queue_frame(conn, proto::encode_counters_response_frame(
                               seq, proto::Verb::Health, counters));
}

bool Server::handle_cancel(Conn& conn, const proto::Request& req) {
  ++cancel_frames_;
  const std::uint64_t target = req.target_seq;
  const auto tok = conn.tokens.find(target);
  if (tok != conn.tokens.end()) {
    // In flight: trip the token and let the job answer under ITS OWN seq
    // with Status::Cancelled once a solve checkpoint observes the trip (or
    // DeadlineExceeded if its budget raced us and won).
    tok->second->cancel(util::CancelToken::Reason::kCancelled);
  } else {
    // Not dispatched — maybe parked. (Rarely reachable today: reads pause
    // while anything is parked, so a Cancel frame usually waits out the
    // park. Kept for defense: the scan is cheap and the semantics must
    // hold if the backpressure rules ever loosen.)
    for (auto it = conn.parked.begin(); it != conn.parked.end(); ++it) {
      if (it->seq != target) continue;
      const proto::Verb verb = it->verb;
      parked_bytes_ -= it->bytes;
      conn.parked.erase(it);
      if (!queue_frame(conn, proto::encode_status_response_frame(
                                 target, verb, proto::Status::Cancelled,
                                 util::kCancelledMsg))) {
        return false;
      }
      break;
    }
  }
  // Ack the Cancel frame itself unconditionally: an unknown or finished
  // target is a benign race (the caller sees its real response), not an
  // error worth distinguishing.
  return queue_frame(conn, proto::encode_status_response_frame(
                               req.seq, proto::Verb::Cancel,
                               proto::Status::Ok, {}));
}

bool Server::send_compact(Conn& conn, std::uint64_t seq) {
  // Admin verb, run inline on the loop thread: compaction does disk IO
  // under the cache file lock, which is acceptable for a rare operator
  // action (solve traffic is on the workers and keeps flowing; only frame
  // processing on THIS loop pauses).
  const Service::CompactReport r = service_.compact_caches();
  const std::pair<std::string_view, std::uint64_t> counters[] = {
      {"l1_dropped", r.l1_dropped},
      {"l2_enabled", r.l2_enabled ? 1u : 0u},
      {"l2_live_records", r.l2.live_records},
      {"l2_bytes_before", r.l2.bytes_before},
      {"l2_bytes_after", r.l2.bytes_after},
      {"l2_dropped_records", r.l2.dropped_records},
      {"l2_lru_dropped", r.l2.lru_dropped},
  };
  return queue_frame(conn, proto::encode_counters_response_frame(
                               seq, proto::Verb::CacheCompact, counters));
}

bool Server::park_or_refuse(Conn& conn, Parked p) {
  if (conn.parked.size() >= opts_.max_parked ||
      parked_bytes_ + p.bytes > opts_.max_parked_bytes) {
    // The bounded alternative to parking without limit: answer Overloaded
    // (retryable — the client backs off and tries again) instead of
    // letting refused work accumulate as server memory.
    ++parked_refused_;
    return queue_frame(
        conn, proto::encode_status_response_frame(
                  p.seq, p.verb, proto::Status::Overloaded,
                  "service queue full and parked capacity exhausted"));
  }
  ++parked_total_;
  parked_bytes_ += p.bytes;
  conn.parked.push_back(std::move(p));
  return true;
}

bool Server::shed_expired_parked(Conn& conn, std::uint64_t now) {
  for (auto it = conn.parked.begin(); it != conn.parked.end();) {
    if (it->deadline_at == 0 || now < it->deadline_at) {
      ++it;
      continue;
    }
    const proto::Verb verb = it->verb;
    const std::uint64_t seq = it->seq;
    parked_bytes_ -= it->bytes;
    ++shed_parked_;
    it = conn.parked.erase(it);
    if (!queue_frame(conn, proto::encode_status_response_frame(
                               seq, verb, proto::Status::DeadlineExceeded,
                               "deadline exceeded while parked"))) {
      return false;  // conn destroyed; `it` is gone with it
    }
  }
  return true;
}

void Server::on_tick() {
  const std::uint64_t now = util::steady_now_ms();
  std::vector<std::uint64_t> ids;
  ids.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) ids.push_back(id);
  for (const std::uint64_t id : ids) {
    const auto it = conns_.find(id);
    if (it == conns_.end()) continue;
    Conn& conn = *it->second;
    if (!shed_expired_parked(conn, now)) continue;
    if (opts_.idle_timeout_ms > 0 && conn.inflight == 0 &&
        conn.parked.empty() &&
        now - conn.last_progress_ms >= opts_.idle_timeout_ms) {
      // No frame completed, no response owed, nothing computing: silent
      // idlers and half-frame slowloris peers both land here. Reclaim the
      // fd instead of leaking it until process exit.
      ++idle_closed_;
      destroy_conn(id);
      continue;
    }
    // Shedding may have emptied `parked`, unblocking buffered frames.
    if (!make_progress(conn)) continue;
    const auto again = conns_.find(id);
    if (again != conns_.end()) update_interest(*again->second);
  }
  if (draining_) sweep_drain();
}

bool Server::queue_frame(Conn& conn, std::string frame) {
  conn.outbuf += frame;
  conn.last_progress_ms = util::steady_now_ms();
  return flush_conn(conn);
}

bool Server::flush_conn(Conn& conn) {
  while (!conn.outbuf.empty()) {
    if (util::fault_point("server.write")) {
      // Injected peer reset: exercise the same path a real mid-write
      // ECONNRESET takes.
      destroy_conn(conn.id);
      return false;
    }
    // MSG_NOSIGNAL: a mid-write peer reset must be a destroyed connection,
    // not a process-killing SIGPIPE.
    const ssize_t w = ::send(conn.fd.get(), conn.outbuf.data(),
                             conn.outbuf.size(), MSG_NOSIGNAL);
    if (w > 0) {
      conn.outbuf.erase(0, static_cast<std::size_t>(w));
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    destroy_conn(conn.id);
    return false;
  }
  if (conn.outbuf.empty() && conn.close_after_flush) {
    destroy_conn(conn.id);
    return false;
  }
  return true;
}

bool Server::reads_paused(const Conn& conn) const {
  return conn.inflight >= opts_.inflight_window || !conn.parked.empty() ||
         conn.outbuf.size() > opts_.outbuf_high_water;
}

void Server::update_interest(Conn& conn) {
  std::uint32_t events = 0;
  if (!conn.close_after_flush && !reads_paused(conn)) {
    events |= EventLoop::kRead;
  }
  if (!conn.outbuf.empty()) events |= EventLoop::kWrite;
  loop_.modify(conn.fd.get(), events);
}

void Server::destroy_conn(std::uint64_t id) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  for (const Parked& p : it->second->parked) parked_bytes_ -= p.bytes;
  // Disconnect cancels: nobody is left to read these results, so stop the
  // workers computing them. The sinks still fire (they hold the plan/seq
  // by value) and on_wake drops the frames for the missing conn id.
  for (auto& [seq, token] : it->second->tokens) {
    token->cancel(util::CancelToken::Reason::kCancelled);
  }
  loop_.unwatch(it->second->fd.get());
  conns_.erase(it);
}

bool Server::make_progress(Conn& conn) {
  while (!conn.parked.empty()) {
    if (draining_) {
      Parked p = std::move(conn.parked.front());
      conn.parked.pop_front();
      parked_bytes_ -= p.bytes;
      if (!queue_frame(conn, proto::encode_status_response_frame(
                                 p.seq, p.verb, proto::Status::Draining,
                                 "server is draining"))) {
        return false;
      }
      continue;
    }
    Parked& p = conn.parked.front();
    if (p.deadline_at != 0) {
      const std::uint64_t now = util::steady_now_ms();
      if (now >= p.deadline_at) {
        // Expired while parked and a queue slot only now opened — shed it
        // here rather than waiting for the next tick.
        Parked dead = std::move(p);
        conn.parked.pop_front();
        parked_bytes_ -= dead.bytes;
        ++shed_parked_;
        if (!queue_frame(conn,
                         proto::encode_status_response_frame(
                             dead.seq, dead.verb,
                             proto::Status::DeadlineExceeded,
                             "deadline exceeded while parked"))) {
          return false;
        }
        continue;
      }
      // Time spent parked counts against the budget: hand the service only
      // what remains, not the original relative deadline.
      const auto remaining = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(
              p.deadline_at - now,
              std::numeric_limits<std::uint32_t>::max()));
      if (p.plan != nullptr) {
        for (SolveRequest& r : p.plan->reqs) r.deadline_ms = remaining;
      } else {
        p.req.deadline_ms = remaining;
      }
    }
    if (p.plan != nullptr) {
      if (!try_dispatch_batch(conn, p.seq, p.plan)) return true;
    } else {
      if (!try_dispatch(conn, p.verb, p.seq, std::move(p.req))) return true;
    }
    parked_bytes_ -= conn.parked.front().bytes;
    conn.parked.pop_front();
  }
  if (!conn.close_after_flush && !conn.inbuf.empty() &&
      conn.inflight < opts_.inflight_window) {
    return consume_frames(conn);
  }
  return true;
}

void Server::on_wake() {
  std::vector<Completion> done;
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    done.swap(completions_);
  }
  for (Completion& c : done) {
    const auto it = conns_.find(c.conn_id);
    if (it == conns_.end()) continue;  // peer left mid-solve; drop
    Conn& conn = *it->second;
    conn.tokens.erase(c.seq);  // answered: nothing left to cancel
    if (conn.inflight > 0) --conn.inflight;
    (void)queue_frame(conn, std::move(c.frame));
  }

  if (drain_requested_.load(std::memory_order_relaxed) && !draining_) {
    begin_drain();
  }

  // Window slots and queue capacity may have freed: retry parked requests,
  // resume consuming buffered frames, and recompute poll interest.
  std::vector<std::uint64_t> ids;
  ids.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) ids.push_back(id);
  for (const std::uint64_t id : ids) {
    const auto it = conns_.find(id);
    if (it == conns_.end()) continue;
    Conn& conn = *it->second;
    if (!make_progress(conn)) continue;
    const auto again = conns_.find(id);  // make_progress may destroy
    if (again != conns_.end()) update_interest(*again->second);
  }

  if (draining_) sweep_drain();
}

void Server::begin_drain() {
  draining_ = true;
  loop_.unwatch(listener_.get());
}

void Server::sweep_drain() {
  std::vector<std::uint64_t> dead;
  for (const auto& [id, conn] : conns_) {
    if (conn->inflight == 0 && conn->parked.empty() &&
        conn->outbuf.empty()) {
      dead.push_back(id);
    }
  }
  for (const std::uint64_t id : dead) destroy_conn(id);
  if (conns_.empty()) {
    // Every accepted request has been answered and flushed; drain the
    // worker pool (this joins the solver threads) and stop serving.
    service_.drain();
    loop_.stop();
  }
}

}  // namespace copath::net
