// net::EventLoop — a minimal single-threaded readiness loop over poll(2).
//
// poll, not epoll: the daemon's fan-in is tens of connections, where the
// O(fds) scan is noise next to a solve, and poll is portable POSIX — no
// new dependencies, no Linux-only build path. The interface is shaped so
// an epoll backend could slot in behind it unchanged if fan-in ever grows.
//
// Single ownership rule: every callback runs on the loop thread. Other
// threads interact with the loop ONLY through wake(), which is
// async-signal-safe (one write(2) to a self-pipe) — the solver workers use
// it to hand completed responses back, and the SIGTERM handler uses it to
// request a drain.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "net/socket.hpp"

namespace copath::net {

class EventLoop {
 public:
  /// Interest bits for watch()/modify().
  static constexpr std::uint32_t kRead = 1u << 0;
  static constexpr std::uint32_t kWrite = 1u << 1;

  /// Invoked on the loop thread with the ready events (kRead/kWrite mask;
  /// errors and hangups are folded into kRead so handlers observe them as
  /// a read returning EOF/error).
  using IoHandler = std::function<void(std::uint32_t events)>;
  /// Invoked on the loop thread after a wake() from any thread/signal.
  /// Multiple wakes may coalesce into one callback.
  using WakeHandler = std::function<void()>;
  /// Invoked on the loop thread roughly every tick interval (see
  /// set_tick). Best-effort timing: a long IO dispatch delays the tick, it
  /// never runs concurrently with handlers, and a busy loop fires it at
  /// most once per poll round.
  using TickHandler = std::function<void()>;

  EventLoop();
  ~EventLoop() = default;

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers interest in `fd` (not owned). Loop thread only.
  void watch(int fd, std::uint32_t events, IoHandler handler);
  /// Updates the interest mask of a watched fd. Loop thread only.
  void modify(int fd, std::uint32_t events);
  /// Drops the fd from the poll set. Safe to call from within the fd's own
  /// handler (removal is deferred to the end of the poll round).
  void unwatch(int fd);

  void set_wake_handler(WakeHandler handler) {
    wake_handler_ = std::move(handler);
  }

  /// Gives the loop a periodic timer: poll(2) gets a bounded timeout sized
  /// to the next tick deadline (instead of blocking forever) and `handler`
  /// runs on the loop thread when it passes — the server's idle-connection
  /// and deadline sweeps, which must fire even when no fd is ready and no
  /// wake() arrives. `interval_ms` == 0 removes the tick (poll blocks
  /// indefinitely again). Loop thread only, like watch().
  void set_tick(std::uint32_t interval_ms, TickHandler handler);

  /// Thread- and async-signal-safe: nudges the loop out of poll(2).
  void wake() const;

  /// Runs until stop(). Dispatches IO handlers, then the wake handler.
  void run();
  /// Loop thread only (from a handler); from elsewhere, call wake() and
  /// stop from the wake handler.
  void stop() { running_ = false; }

 private:
  struct Watch {
    std::uint32_t events = 0;
    IoHandler handler;
    bool dead = false;  // unwatched mid-round; reaped after dispatch
  };

  Fd wake_read_;
  Fd wake_write_;
  WakeHandler wake_handler_;
  TickHandler tick_handler_;
  std::uint32_t tick_interval_ms_ = 0;
  /// steady_now_ms() stamp of the next due tick; meaningful only while a
  /// tick is set.
  std::uint64_t next_tick_ms_ = 0;
  std::unordered_map<int, Watch> watches_;
  bool running_ = false;
};

}  // namespace copath::net
