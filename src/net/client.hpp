// net::Client — a blocking copathd client with explicit pipelining and
// optional resilience (per-op timeouts, reconnect, retry with backoff).
//
// One connection, one thread. The split send_*/recv() surface exists so a
// caller can keep a window of requests in flight (the load generator in
// bench/bench_daemon.cpp keeps 1..64); the solve()/stats()/health()/drain()
// conveniences are send+recv pairs for the one-at-a-time case. Responses
// come back in COMPLETION order — correlate by Response::seq, not by call
// order.
//
// Resilience model: the plain two-argument constructor behaves exactly like
// the original client — block forever, no retry, surface every status.
// Passing a Config turns on per-recv timeouts (TimeoutError), and a
// RetryPolicy with max_attempts > 1 makes the SOLVE conveniences retry
// transparently on the statuses that are safe to retry (Draining,
// Overloaded) and on connection-level failures (a daemon restart looks like
// one slow call, not an exception). A recv TIMEOUT is never retried — the
// server may still be executing the request, and the caller must decide
// whether re-submitting is acceptable. Admin verbs (drain/compact) never
// retry: re-sending them is a semantic decision, not a transport one.
//
// Not thread-safe: share nothing, or give each thread its own Client.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "net/protocol.hpp"
#include "net/socket.hpp"

namespace copath::net {

/// Seeded-jitter exponential backoff for the solve conveniences. The delay
/// for retry k is deterministic in (seed, k) — chaos tests assert exact
/// backoff sequences — and carries half-range jitter so a fleet of clients
/// sharing a restart moment still spreads its retries.
struct RetryPolicy {
  /// Total attempts per solve convenience call. 1 = no retry (default).
  std::uint32_t max_attempts = 1;
  /// Backoff before retry k (1-based) is ~ base << (k-1), capped.
  std::uint32_t base_delay_ms = 10;
  std::uint32_t max_delay_ms = 2000;
  /// Seeds the jitter stream; same seed, same delays.
  std::uint64_t seed = 1;

  /// Statuses safe to retry: the request was REFUSED, not attempted.
  /// SolveError / BadFrame / InvalidSignature would fail identically again;
  /// a timeout may still be executing server-side.
  [[nodiscard]] static bool retryable(protocol::Status s) {
    return s == protocol::Status::Draining ||
           s == protocol::Status::Overloaded;
  }

  /// Backoff before 1-based retry `retry`: uniform in [cap/2, cap] where
  /// cap = min(max_delay_ms, base_delay_ms << (retry-1)). Pure function of
  /// (seed, retry).
  [[nodiscard]] std::uint32_t delay_ms(std::uint32_t retry) const;
};

class Client {
 public:
  struct Config {
    /// Per-recv() timeout; 0 = block forever (the legacy behavior).
    /// Expiry throws TimeoutError and leaves the response unread — the
    /// connection is no longer framed-aligned, so resilient callers
    /// reconnect before reusing it.
    std::uint32_t request_timeout_ms = 0;
    /// deadline_ms stamped on every solve frame that doesn't carry its
    /// own; 0 = none. The server sheds the request with DeadlineExceeded
    /// if it is still queued when this budget expires.
    std::uint32_t default_deadline_ms = 0;
    RetryPolicy retry{};
  };

  /// Connects and completes the handshake. Throws util::CheckError on
  /// connection failure, a non-protocol peer, or a version refusal.
  /// The two-argument form is the legacy client: no timeout, no retry.
  /// (Two overloads, not a default argument: a nested class with default
  /// member initializers can't be a default argument in its enclosing
  /// class.)
  Client(const std::string& host, std::uint16_t port);
  Client(const std::string& host, std::uint16_t port, Config config);

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  // -- pipelined surface ---------------------------------------------------

  /// Buffer a request; returns its sequence id. Nothing hits the socket
  /// until flush() (or the first recv(), which flushes for you).
  /// `deadline_ms` (relative; 0 = use Config::default_deadline_ms) rides
  /// in the frame for the server to enforce.
  std::uint64_t send_solve_text(std::string_view algebra,
                                protocol::WireOptions opts = {},
                                std::uint32_t deadline_ms = 0);
  /// `signature` is raw CanonicalForm::signature bytes — the hot path.
  std::uint64_t send_solve_signature(std::string_view signature,
                                     protocol::WireOptions opts = {},
                                     std::uint32_t deadline_ms = 0);
  /// Buffer a whole BatchSolve frame: one sequence id, one response frame
  /// with a positionally aligned status per item (Response::batch).
  std::uint64_t send_solve_batch(std::span<const protocol::BatchItem> items,
                                 protocol::WireOptions opts = {},
                                 std::uint32_t deadline_ms = 0);
  std::uint64_t send_admin(protocol::Verb verb);
  /// Buffer a v2 Cancel frame naming an in-flight request by the seq a
  /// send_solve_* call returned. Two responses follow: an Ok ack under the
  /// returned seq (idempotent — a finished target is a benign race), and
  /// the target answering under ITS seq, with Status::Cancelled if the
  /// cancel caught it.
  std::uint64_t send_cancel(std::uint64_t target_seq);

  /// Writes every buffered request to the socket.
  void flush();

  /// Blocks for the next response frame (flushing first), up to
  /// Config::request_timeout_ms (TimeoutError past it). Throws
  /// util::CheckError on EOF mid-stream, oversized frames, or undecodable
  /// responses — the server misbehaving is an error, not a status.
  [[nodiscard]] protocol::Response recv();

  /// Drops the current connection (if any) and dials + handshakes a fresh
  /// one. Buffered unsent requests are discarded — after a transport
  /// failure their delivery state is unknowable. Throws util::CheckError
  /// when the server is unreachable.
  void reconnect();

  // -- one-shot conveniences -----------------------------------------------

  /// The solve conveniences run under Config::retry: Draining/Overloaded
  /// responses and connection-level failures are retried with backoff up to
  /// max_attempts; timeouts and structural failures surface immediately.
  [[nodiscard]] protocol::Response solve_text(std::string_view algebra,
                                              protocol::WireOptions opts = {},
                                              std::uint32_t deadline_ms = 0);
  [[nodiscard]] protocol::Response solve_signature(
      std::string_view signature, protocol::WireOptions opts = {},
      std::uint32_t deadline_ms = 0);
  /// One round trip for a whole batch. The returned Response carries
  /// per-item slots on Status::Ok; whole-batch refusals (draining,
  /// overloaded, malformed batch) come back as a non-Ok status instead.
  [[nodiscard]] protocol::Response solve_batch(
      std::span<const protocol::BatchItem> items,
      protocol::WireOptions opts = {}, std::uint32_t deadline_ms = 0);
  [[nodiscard]] protocol::Response stats();
  /// Health probe. Against a v2 server the Ok reply carries a degraded-
  /// state counter body in Response::stats (draining, parked pressure,
  /// stuck_workers, ...); a v1 server's reply leaves it empty.
  [[nodiscard]] protocol::Response health();
  /// Asks the server to drain. The Ok ack comes back before the server
  /// begins refusing. Never retried.
  [[nodiscard]] protocol::Response drain();
  /// CacheCompact admin verb: clears+resets the L1 cache, compacts the
  /// persistent tier. The Ok reply carries a counter body describing what
  /// happened (l1_dropped, l2_enabled, l2 before/after byte sizes).
  [[nodiscard]] protocol::Response compact();

 private:
  void connect_and_handshake();
  /// Sends via `send_fn` (which returns the request's seq) and receives
  /// until THAT seq answers, retrying per Config::retry. Responses with
  /// other seqs are discarded — they are stale answers to requests from
  /// before a reconnect, so the conveniences must not be interleaved with
  /// the caller's own in-flight pipelined requests. `send_fn` re-buffers
  /// the request each attempt.
  template <typename SendFn>
  protocol::Response roundtrip_with_retry(SendFn&& send_fn);
  [[nodiscard]] std::uint32_t pick_deadline(std::uint32_t deadline_ms) const {
    return deadline_ms != 0 ? deadline_ms : config_.default_deadline_ms;
  }

  std::string host_;
  std::uint16_t port_ = 0;
  Config config_{};
  Fd fd_;
  std::uint64_t next_seq_ = 1;
  std::string sendbuf_;
};

}  // namespace copath::net
