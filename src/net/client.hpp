// net::Client — a blocking copathd client with explicit pipelining.
//
// One connection, one thread. The split send_*/recv() surface exists so a
// caller can keep a window of requests in flight (the load generator in
// bench/bench_daemon.cpp keeps 1..64); the solve()/stats()/health()/drain()
// conveniences are send+recv pairs for the one-at-a-time case. Responses
// come back in COMPLETION order — correlate by Response::seq, not by call
// order.
//
// Not thread-safe: share nothing, or give each thread its own Client.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "net/protocol.hpp"
#include "net/socket.hpp"

namespace copath::net {

class Client {
 public:
  /// Connects and completes the handshake. Throws util::CheckError on
  /// connection failure, a non-protocol peer, or a version refusal.
  Client(const std::string& host, std::uint16_t port);

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  // -- pipelined surface ---------------------------------------------------

  /// Buffer a request; returns its sequence id. Nothing hits the socket
  /// until flush() (or the first recv(), which flushes for you).
  std::uint64_t send_solve_text(std::string_view algebra,
                                protocol::WireOptions opts = {});
  /// `signature` is raw CanonicalForm::signature bytes — the hot path.
  std::uint64_t send_solve_signature(std::string_view signature,
                                     protocol::WireOptions opts = {});
  /// Buffer a whole BatchSolve frame: one sequence id, one response frame
  /// with a positionally aligned status per item (Response::batch).
  std::uint64_t send_solve_batch(std::span<const protocol::BatchItem> items,
                                 protocol::WireOptions opts = {});
  std::uint64_t send_admin(protocol::Verb verb);

  /// Writes every buffered request to the socket.
  void flush();

  /// Blocks for the next response frame (flushing first). Throws
  /// util::CheckError on EOF mid-stream, oversized frames, or undecodable
  /// responses — the server misbehaving is an error, not a status.
  [[nodiscard]] protocol::Response recv();

  // -- one-shot conveniences -----------------------------------------------

  [[nodiscard]] protocol::Response solve_text(std::string_view algebra,
                                              protocol::WireOptions opts = {});
  [[nodiscard]] protocol::Response solve_signature(
      std::string_view signature, protocol::WireOptions opts = {});
  /// One round trip for a whole batch. The returned Response carries
  /// per-item slots on Status::Ok; whole-batch refusals (draining,
  /// malformed batch) come back as a non-Ok status instead.
  [[nodiscard]] protocol::Response solve_batch(
      std::span<const protocol::BatchItem> items,
      protocol::WireOptions opts = {});
  [[nodiscard]] protocol::Response stats();
  [[nodiscard]] protocol::Response health();
  /// Asks the server to drain. The Ok ack comes back before the server
  /// begins refusing.
  [[nodiscard]] protocol::Response drain();
  /// CacheCompact admin verb: clears+resets the L1 cache, compacts the
  /// persistent tier. The Ok reply carries a counter body describing what
  /// happened (l1_dropped, l2_enabled, l2 before/after byte sizes).
  [[nodiscard]] protocol::Response compact();

 private:
  Fd fd_;
  std::uint64_t next_seq_ = 1;
  std::string sendbuf_;
};

}  // namespace copath::net
