#include "net/protocol.hpp"

#include <algorithm>
#include <cstring>

namespace copath::net::protocol {
namespace {

// Bounds-checked little-endian scalar IO. The reader never throws — every
// get reports success, and callers translate failure into BadFrame — so a
// hostile peer can make us refuse, never crash.
class ByteWriter {
 public:
  explicit ByteWriter(std::string& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v));
    u8(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v));
    u16(static_cast<std::uint16_t>(v >> 16));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v));
    u32(static_cast<std::uint32_t>(v >> 32));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void bytes(std::string_view v) { out_.append(v); }

 private:
  std::string& out_;
};

class ByteReader {
 public:
  explicit ByteReader(std::string_view in) : in_(in) {}

  [[nodiscard]] bool u8(std::uint8_t* v) {
    if (pos_ >= in_.size()) return false;
    *v = static_cast<std::uint8_t>(in_[pos_++]);
    return true;
  }
  [[nodiscard]] bool u16(std::uint16_t* v) {
    std::uint8_t lo, hi;
    if (!u8(&lo) || !u8(&hi)) return false;
    *v = static_cast<std::uint16_t>(lo | (std::uint16_t{hi} << 8));
    return true;
  }
  [[nodiscard]] bool u32(std::uint32_t* v) {
    std::uint16_t lo, hi;
    if (!u16(&lo) || !u16(&hi)) return false;
    *v = lo | (std::uint32_t{hi} << 16);
    return true;
  }
  [[nodiscard]] bool u64(std::uint64_t* v) {
    std::uint32_t lo, hi;
    if (!u32(&lo) || !u32(&hi)) return false;
    *v = lo | (std::uint64_t{hi} << 32);
    return true;
  }
  [[nodiscard]] bool i64(std::int64_t* v) {
    std::uint64_t bits;
    if (!u64(&bits)) return false;
    *v = static_cast<std::int64_t>(bits);
    return true;
  }
  [[nodiscard]] bool f64(double* v) {
    std::uint64_t bits;
    if (!u64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(bits));
    return true;
  }
  [[nodiscard]] bool bytes(std::size_t n, std::string_view* v) {
    if (n > in_.size() - pos_ || pos_ > in_.size()) return false;
    *v = in_.substr(pos_, n);
    pos_ += n;
    return true;
  }
  [[nodiscard]] std::string_view rest() const { return in_.substr(pos_); }
  [[nodiscard]] std::size_t remaining() const { return in_.size() - pos_; }

 private:
  std::string_view in_;
  std::size_t pos_ = 0;
};

constexpr std::uint8_t kResOk = 1u << 0;
constexpr std::uint8_t kResMinimum = 1u << 1;
constexpr std::uint8_t kResHamPath = 1u << 2;
constexpr std::uint8_t kResHamCycle = 1u << 3;
constexpr std::uint8_t kResHasCycle = 1u << 4;
constexpr std::uint8_t kResHasVerdicts = 1u << 5;

bool known_verb(std::uint8_t v) {
  return v >= static_cast<std::uint8_t>(Verb::SolveText) &&
         v <= static_cast<std::uint8_t>(Verb::Cancel);
}

void append_response_header(ByteWriter& w, Verb verb, std::uint64_t seq,
                            Status status) {
  w.u8(static_cast<std::uint8_t>(verb));
  w.u64(seq);
  w.u8(static_cast<std::uint8_t>(status));
}

void encode_result_body(ByteWriter& w, const SolveResult& res) {
  w.u32(static_cast<std::uint32_t>(res.vertex_count));
  std::uint8_t flags = 0;
  if (res.ok) flags |= kResOk;
  if (res.minimum) flags |= kResMinimum;
  if (res.hamiltonian_path) flags |= kResHamPath;
  if (res.hamiltonian_cycle) flags |= kResHamCycle;
  if (res.cycle.has_value()) flags |= kResHasCycle;
  if (res.optimal_size >= 0) flags |= kResHasVerdicts;
  w.u8(flags);
  w.i64(res.optimal_size);
  w.f64(res.wall_ms);
  w.u32(static_cast<std::uint32_t>(res.cover.paths.size()));
  for (const auto& path : res.cover.paths) {
    w.u32(static_cast<std::uint32_t>(path.size()));
    for (const auto v : path) w.u32(static_cast<std::uint32_t>(v));
  }
  if (res.cycle.has_value()) {
    w.u32(static_cast<std::uint32_t>(res.cycle->size()));
    for (const auto v : *res.cycle) w.u32(static_cast<std::uint32_t>(v));
  }
}

bool decode_result_body(ByteReader& r, WireResult* out) {
  std::uint8_t flags = 0;
  if (!r.u32(&out->vertex_count) || !r.u8(&flags) ||
      !r.i64(&out->optimal_size) || !r.f64(&out->wall_ms)) {
    return false;
  }
  out->ok = (flags & kResOk) != 0;
  out->minimum = (flags & kResMinimum) != 0;
  out->hamiltonian_path = (flags & kResHamPath) != 0;
  out->hamiltonian_cycle = (flags & kResHamCycle) != 0;
  out->has_verdicts = (flags & kResHasVerdicts) != 0;
  std::uint32_t path_count = 0;
  if (!r.u32(&path_count)) return false;
  // Every vertex appears in at most one path, so the remaining byte count
  // bounds the plausible list sizes — reject before reserving.
  if (path_count > r.remaining()) return false;
  out->paths.clear();
  out->paths.reserve(path_count);
  for (std::uint32_t i = 0; i < path_count; ++i) {
    std::uint32_t len = 0;
    if (!r.u32(&len)) return false;
    if (std::size_t{len} * 4 > r.remaining()) return false;
    auto& path = out->paths.emplace_back();
    path.reserve(len);
    for (std::uint32_t j = 0; j < len; ++j) {
      std::uint32_t v = 0;
      if (!r.u32(&v)) return false;
      path.push_back(v);
    }
  }
  if ((flags & kResHasCycle) != 0) {
    std::uint32_t len = 0;
    if (!r.u32(&len)) return false;
    if (std::size_t{len} * 4 > r.remaining()) return false;
    auto& cycle = out->cycle.emplace();
    cycle.reserve(len);
    for (std::uint32_t j = 0; j < len; ++j) {
      std::uint32_t v = 0;
      if (!r.u32(&v)) return false;
      cycle.push_back(v);
    }
  } else {
    out->cycle.reset();
  }
  return true;
}

}  // namespace

const char* to_string(Status s) {
  switch (s) {
    case Status::Ok: return "ok";
    case Status::BadFrame: return "bad frame";
    case Status::InvalidSignature: return "invalid signature";
    case Status::SolveError: return "solve error";
    case Status::Draining: return "draining";
    case Status::VersionMismatch: return "version mismatch";
    case Status::DeadlineExceeded: return "deadline exceeded";
    case Status::Overloaded: return "overloaded";
    case Status::Cancelled: return "cancelled";
  }
  return "unknown status";
}

SolveOptions apply_wire_options(WireOptions w, SolveOptions base) {
  base.compute_verdicts = (w.flags & kOptWantVerdicts) != 0;
  base.want_hamiltonian_cycle = (w.flags & kOptWantCycle) != 0;
  base.validate = (w.flags & kOptValidate) != 0;
  if ((w.flags & kOptExplicitBackend) != 0) {
    base.backend = static_cast<Backend>(w.backend);
  }
  return base;
}

std::string make_hello() {
  std::string out;
  out.reserve(kHelloBytes);
  ByteWriter w(out);
  w.u32(kMagic);
  w.u16(kVersion);
  w.u16(0);
  return out;
}

std::string make_hello_reply(Status s) {
  std::string out;
  out.reserve(kHelloReplyBytes);
  ByteWriter w(out);
  w.u32(kMagic);
  w.u16(kVersion);
  w.u8(static_cast<std::uint8_t>(s));
  w.u8(0);
  return out;
}

bool parse_hello(std::string_view bytes, std::uint16_t* version) {
  if (bytes.size() != kHelloBytes) return false;
  ByteReader r(bytes);
  std::uint32_t magic = 0;
  std::uint16_t reserved = 0;
  return r.u32(&magic) && r.u16(version) && r.u16(&reserved) &&
         magic == kMagic;
}

bool parse_hello_reply(std::string_view bytes, Status* status,
                       std::uint16_t* version) {
  if (bytes.size() != kHelloReplyBytes) return false;
  ByteReader r(bytes);
  std::uint32_t magic = 0;
  std::uint8_t s = 0, reserved = 0;
  if (!(r.u32(&magic) && r.u16(version) && r.u8(&s) && r.u8(&reserved) &&
        magic == kMagic)) {
    return false;
  }
  if (!known_status(s)) return false;
  *status = static_cast<Status>(s);
  return true;
}

void append_frame(std::string& out, std::string_view payload) {
  ByteWriter w(out);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.bytes(payload);
}

Extract extract_frame(std::string& buf, std::string* payload) {
  if (buf.size() < kFrameHeaderBytes) return Extract::NeedMore;
  ByteReader r(buf);
  std::uint32_t len = 0;
  (void)r.u32(&len);
  if (len == 0 || len > kMaxFrameBytes) return Extract::Corrupt;
  if (buf.size() < kFrameHeaderBytes + len) return Extract::NeedMore;
  payload->assign(buf, kFrameHeaderBytes, len);
  buf.erase(0, kFrameHeaderBytes + len);
  return Extract::Frame;
}

namespace {

// Shared by the solve/batch appenders: the codec owns kOptHasDeadline (set
// iff a deadline is being written), so callers express deadlines only
// through the argument and cannot desynchronize flag and field.
void append_solve_header(ByteWriter& w, Verb verb, std::uint64_t seq,
                         WireOptions opts, std::uint32_t deadline_ms) {
  w.u8(static_cast<std::uint8_t>(verb));
  w.u64(seq);
  std::uint8_t flags = opts.flags;
  if (deadline_ms > 0) {
    flags |= kOptHasDeadline;
  } else {
    flags &= static_cast<std::uint8_t>(~kOptHasDeadline);
  }
  w.u8(flags);
  w.u8(opts.backend);
  w.u16(0);
  if (deadline_ms > 0) w.u32(deadline_ms);
}

}  // namespace

void append_solve_request(std::string& out, Verb verb, std::uint64_t seq,
                          WireOptions opts, std::string_view body,
                          std::uint32_t deadline_ms) {
  std::string payload;
  payload.reserve(1 + 8 + 8 + body.size());
  ByteWriter w(payload);
  append_solve_header(w, verb, seq, opts, deadline_ms);
  w.bytes(body);
  append_frame(out, payload);
}

void append_admin_request(std::string& out, Verb verb, std::uint64_t seq) {
  std::string payload;
  payload.reserve(1 + 8);
  ByteWriter w(payload);
  w.u8(static_cast<std::uint8_t>(verb));
  w.u64(seq);
  append_frame(out, payload);
}

void append_cancel_request(std::string& out, std::uint64_t seq,
                           std::uint64_t target_seq) {
  std::string payload;
  payload.reserve(1 + 8 + 8);
  ByteWriter w(payload);
  w.u8(static_cast<std::uint8_t>(Verb::Cancel));
  w.u64(seq);
  w.u64(target_seq);
  append_frame(out, payload);
}

bool parse_request(std::string_view payload, Request* req) {
  ByteReader r(payload);
  std::uint8_t verb = 0;
  if (!r.u8(&verb) || !r.u64(&req->seq)) return false;
  if (!known_verb(verb)) return false;
  req->verb = static_cast<Verb>(verb);
  if (req->verb == Verb::SolveText || req->verb == Verb::SolveSignature ||
      req->verb == Verb::BatchSolve) {
    std::uint16_t reserved = 0;
    if (!r.u8(&req->opts.flags) || !r.u8(&req->opts.backend) ||
        !r.u16(&reserved)) {
      return false;
    }
    // v2 deadline: flag-gated, so a v1 frame (bit never set) parses
    // byte-identically to the v1 decoder.
    req->deadline_ms = 0;
    if ((req->opts.flags & kOptHasDeadline) != 0 &&
        !r.u32(&req->deadline_ms)) {
      return false;
    }
    req->body = r.rest();
    // An empty instance is meaningless on both solve paths; refuse it at
    // the frame layer rather than spinning up a job.
    return !req->body.empty();
  }
  req->opts = WireOptions{};
  req->deadline_ms = 0;
  req->body = {};
  if (req->verb == Verb::Cancel) {
    // Exactly one u64 naming the seq to cancel — trailing bytes are a
    // framing bug, not future extension room (extensions bump kVersion).
    return r.u64(&req->target_seq) && r.remaining() == 0;
  }
  req->target_seq = 0;
  return r.remaining() == 0;
}

void append_batch_request(std::string& out, std::uint64_t seq,
                          WireOptions opts,
                          std::span<const BatchItem> items,
                          std::uint32_t deadline_ms) {
  std::string payload;
  std::size_t body_bytes = 0;
  for (const BatchItem& item : items) body_bytes += 5 + item.body.size();
  payload.reserve(1 + 8 + 8 + 2 + body_bytes);
  ByteWriter w(payload);
  append_solve_header(w, Verb::BatchSolve, seq, opts, deadline_ms);
  w.u16(static_cast<std::uint16_t>(items.size()));
  for (const BatchItem& item : items) {
    w.u8(item.is_signature ? kBatchItemSignature : kBatchItemText);
    w.u32(static_cast<std::uint32_t>(item.body.size()));
    w.bytes(item.body);
  }
  append_frame(out, payload);
}

bool parse_batch_body(std::string_view body, std::size_t max_items,
                      std::vector<BatchItem>* items, std::string* why) {
  // Every rejection names its reason: the server relays `why` in the
  // BadFrame response body, so a misbehaving client learns which
  // structural rule it broke (the signature_valid contract, one layer up).
  const auto fail = [&](std::string reason) {
    if (why != nullptr) *why = std::move(reason);
    items->clear();
    return false;
  };
  items->clear();
  ByteReader r(body);
  std::uint16_t count = 0;
  if (!r.u16(&count)) return fail("batch body truncated before count");
  if (count == 0) return fail("batch count is zero");
  const std::size_t cap = std::min(max_items, kMaxBatchItems);
  if (count > cap) {
    return fail("batch count " + std::to_string(count) +
                " exceeds cap " + std::to_string(cap));
  }
  items->reserve(count);
  for (std::uint16_t i = 0; i < count; ++i) {
    const std::string slot = std::to_string(i);
    std::uint8_t kind = 0;
    std::uint32_t len = 0;
    if (!r.u8(&kind) || !r.u32(&len)) {
      return fail("batch item " + slot + " header truncated");
    }
    if (kind != kBatchItemText && kind != kBatchItemSignature) {
      return fail("batch item " + slot + " has unknown kind " +
                  std::to_string(kind));
    }
    if (len == 0) return fail("batch item " + slot + " is empty");
    std::string_view sub;
    if (!r.bytes(len, &sub)) {
      return fail("batch item " + slot + " body truncated");
    }
    items->push_back(BatchItem{kind == kBatchItemSignature, sub});
  }
  if (r.remaining() != 0) {
    return fail(std::to_string(r.remaining()) +
                " trailing bytes after batch items");
  }
  return true;
}

std::string encode_batch_response_frame(
    std::uint64_t seq, std::span<const BatchResponseEntry> entries) {
  std::string payload;
  ByteWriter w(payload);
  append_response_header(w, Verb::BatchSolve, seq, Status::Ok);
  w.u16(static_cast<std::uint16_t>(entries.size()));
  std::string sub;
  for (const BatchResponseEntry& e : entries) {
    sub.clear();
    ByteWriter sw(sub);
    if (e.status == Status::Ok && e.result != nullptr) {
      encode_result_body(sw, *e.result);
    } else {
      sw.bytes(e.error);
    }
    w.u8(static_cast<std::uint8_t>(e.status));
    w.u32(static_cast<std::uint32_t>(sub.size()));
    w.bytes(sub);
  }
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  append_frame(out, payload);
  return out;
}

std::string encode_solve_response_frame(std::uint64_t seq, Verb verb,
                                        Status status,
                                        const SolveResult* res,
                                        std::string_view error) {
  std::string payload;
  ByteWriter w(payload);
  append_response_header(w, verb, seq, status);
  if (status == Status::Ok && res != nullptr) {
    encode_result_body(w, *res);
  } else {
    w.bytes(error);
  }
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  append_frame(out, payload);
  return out;
}

std::string encode_stats_response_frame(
    std::uint64_t seq,
    std::span<const std::pair<std::string_view, std::uint64_t>> counters) {
  return encode_counters_response_frame(seq, Verb::Stats, counters);
}

std::string encode_counters_response_frame(
    std::uint64_t seq, Verb verb,
    std::span<const std::pair<std::string_view, std::uint64_t>> counters) {
  std::string payload;
  ByteWriter w(payload);
  append_response_header(w, verb, seq, Status::Ok);
  w.u32(static_cast<std::uint32_t>(counters.size()));
  for (const auto& [key, value] : counters) {
    const std::string_view k = key.substr(0, 255);
    w.u8(static_cast<std::uint8_t>(k.size()));
    w.bytes(k);
    w.u64(value);
  }
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  append_frame(out, payload);
  return out;
}

std::string encode_status_response_frame(std::uint64_t seq, Verb verb,
                                         Status status,
                                         std::string_view error) {
  return encode_solve_response_frame(seq, verb, status, nullptr, error);
}

bool parse_response(std::string_view payload, Response* out) {
  ByteReader r(payload);
  std::uint8_t verb = 0, status = 0;
  if (!r.u8(&verb) || !r.u64(&out->seq) || !r.u8(&status)) return false;
  if (!known_verb(verb)) return false;
  if (!known_status(status)) return false;
  out->verb = static_cast<Verb>(verb);
  out->status = static_cast<Status>(status);
  out->result = WireResult{};
  out->error.clear();
  out->stats.clear();
  out->batch.clear();
  if (out->status != Status::Ok) {
    out->error.assign(r.rest());
    return true;
  }
  switch (out->verb) {
    case Verb::SolveText:
    case Verb::SolveSignature:
      return decode_result_body(r, &out->result) && r.remaining() == 0;
    case Verb::BatchSolve: {
      std::uint16_t count = 0;
      if (!r.u16(&count)) return false;
      if (count > r.remaining()) return false;
      out->batch.reserve(count);
      for (std::uint16_t i = 0; i < count; ++i) {
        std::uint8_t slot_status = 0;
        std::uint32_t len = 0;
        std::string_view sub;
        if (!r.u8(&slot_status) || !r.u32(&len) || !r.bytes(len, &sub)) {
          return false;
        }
        if (!known_status(slot_status)) return false;
        auto& slot = out->batch.emplace_back();
        slot.status = static_cast<Status>(slot_status);
        if (slot.status == Status::Ok) {
          // Each sub-body must decode exactly — a slot cannot borrow bytes
          // from its neighbors.
          ByteReader sr(sub);
          if (!decode_result_body(sr, &slot.result) || sr.remaining() != 0) {
            return false;
          }
        } else {
          slot.error.assign(sub);
        }
      }
      return r.remaining() == 0;
    }
    case Verb::Health: {
      // v1 servers ack Health with an empty body; v2 servers attach a
      // Stats-shaped counter body describing degraded state. Accept both
      // so one client binary can talk to either.
      if (r.remaining() == 0) return true;
      [[fallthrough]];
    }
    case Verb::Stats:
    case Verb::CacheCompact: {
      std::uint32_t count = 0;
      if (!r.u32(&count)) return false;
      if (count > r.remaining()) return false;
      out->stats.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        std::uint8_t keylen = 0;
        std::string_view key;
        std::uint64_t value = 0;
        if (!r.u8(&keylen) || !r.bytes(keylen, &key) || !r.u64(&value)) {
          return false;
        }
        out->stats.emplace_back(std::string(key), value);
      }
      return r.remaining() == 0;
    }
    case Verb::Drain:
    case Verb::Cancel:
      return r.remaining() == 0;
  }
  return false;
}

// ------------------------------------------------------ full result codec
//
// Layout: wire result body (encode_result_body) followed by the fields the
// wire deliberately omits. The persistent cache stamps its own format
// version on the enclosing file, so this codec has no version byte of its
// own — a format change bumps the file version and invalidates old caches
// wholesale (they degrade to cold, never to wrong).

namespace {

constexpr std::uint8_t kRecStatsValid = 1u << 0;
constexpr std::uint8_t kRecTraceValid = 1u << 1;
constexpr std::uint8_t kRecValidationOk = 1u << 2;

}  // namespace

void encode_result_record(std::string& out, const SolveResult& res) {
  ByteWriter w(out);
  encode_result_body(w, res);
  w.u8(static_cast<std::uint8_t>(res.backend));
  w.u8(static_cast<std::uint8_t>(res.routed));
  std::uint8_t extras = 0;
  if (res.stats_valid) extras |= kRecStatsValid;
  if (res.trace_valid) extras |= kRecTraceValid;
  if (res.validation.ok) extras |= kRecValidationOk;
  w.u8(extras);
  const auto str = [&w](std::string_view s) {
    w.u32(static_cast<std::uint32_t>(s.size()));
    w.bytes(s);
  };
  str(res.error);
  str(res.label);
  str(res.validation.error);
  w.u64(res.stats.steps);
  w.u64(res.stats.work);
  w.u64(res.stats.max_processors);
  w.u64(res.stats.reads);
  w.u64(res.stats.writes);
  w.u64(res.stats.cells);
  w.u64(res.trace.bracket_length);
  w.u64(res.trace.dummy_count);
  w.u64(res.trace.repair_rounds);
  w.u64(res.trace.path_count);
  w.u32(static_cast<std::uint32_t>(res.trace.stages.size()));
  for (const auto& [name, steps, work] : res.trace.stages) {
    str(name);
    w.u64(steps);
    w.u64(work);
  }
}

bool decode_result_record(std::string_view bytes, SolveResult* out) {
  ByteReader r(bytes);
  WireResult wire;
  if (!decode_result_body(r, &wire)) return false;
  *out = SolveResult{};
  out->ok = wire.ok;
  out->vertex_count = wire.vertex_count;
  out->optimal_size = wire.optimal_size;
  out->minimum = wire.minimum;
  out->hamiltonian_path = wire.hamiltonian_path;
  out->hamiltonian_cycle = wire.hamiltonian_cycle;
  out->wall_ms = wire.wall_ms;
  out->cover.paths.reserve(wire.paths.size());
  for (const auto& p : wire.paths) {
    auto& q = out->cover.paths.emplace_back();
    q.reserve(p.size());
    for (const std::uint32_t v : p) {
      q.push_back(static_cast<cograph::VertexId>(v));
    }
  }
  if (wire.cycle.has_value()) {
    auto& cyc = out->cycle.emplace();
    cyc.reserve(wire.cycle->size());
    for (const std::uint32_t v : *wire.cycle) {
      cyc.push_back(static_cast<cograph::VertexId>(v));
    }
  }
  std::uint8_t backend = 0, routed = 0, extras = 0;
  if (!r.u8(&backend) || !r.u8(&routed) || !r.u8(&extras)) return false;
  out->backend = static_cast<Backend>(backend);
  out->routed = static_cast<Backend>(routed);
  out->stats_valid = (extras & kRecStatsValid) != 0;
  out->trace_valid = (extras & kRecTraceValid) != 0;
  out->validation.ok = (extras & kRecValidationOk) != 0;
  const auto str = [&r](std::string* s) {
    std::uint32_t len = 0;
    std::string_view v;
    if (!r.u32(&len) || !r.bytes(len, &v)) return false;
    s->assign(v);
    return true;
  };
  if (!str(&out->error) || !str(&out->label) ||
      !str(&out->validation.error)) {
    return false;
  }
  if (!r.u64(&out->stats.steps) || !r.u64(&out->stats.work) ||
      !r.u64(&out->stats.max_processors) || !r.u64(&out->stats.reads) ||
      !r.u64(&out->stats.writes) || !r.u64(&out->stats.cells)) {
    return false;
  }
  std::uint64_t bracket = 0, dummies = 0, repairs = 0, paths = 0;
  if (!r.u64(&bracket) || !r.u64(&dummies) || !r.u64(&repairs) ||
      !r.u64(&paths)) {
    return false;
  }
  out->trace.bracket_length = static_cast<std::size_t>(bracket);
  out->trace.dummy_count = static_cast<std::size_t>(dummies);
  out->trace.repair_rounds = static_cast<std::size_t>(repairs);
  out->trace.path_count = static_cast<std::size_t>(paths);
  std::uint32_t stage_count = 0;
  if (!r.u32(&stage_count)) return false;
  // Each stage takes at least 20 bytes (name length + two u64s); bound the
  // reserve against the remaining bytes before trusting the count.
  if (stage_count > r.remaining()) return false;
  out->trace.stages.reserve(stage_count);
  for (std::uint32_t i = 0; i < stage_count; ++i) {
    std::string name;
    std::uint64_t steps = 0, work = 0;
    if (!str(&name) || !r.u64(&steps) || !r.u64(&work)) return false;
    out->trace.stages.emplace_back(std::move(name), steps, work);
  }
  return r.remaining() == 0;
}

}  // namespace copath::net::protocol
