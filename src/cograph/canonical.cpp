#include "cograph/canonical.hpp"

#include <algorithm>
#include <span>
#include <utility>

#include "exec/scratch.hpp"
#include "util/math.hpp"

namespace copath::cograph {
namespace {

constexpr std::uint64_t kLeafHash = 0x9e3779b97f4a7c15ull;
constexpr std::uint64_t kUnionSeed = 0x2545f4914f6cdd1dull;
constexpr std::uint64_t kJoinSeed = 0x94d049bb133111ebull;

// Children are pre-sorted, so hash_mix's order sensitivity makes the hash
// of a child list order-free exactly on the canonical order.
using util::hash_mix;

void append_leb128(std::string& out, std::size_t value) {
  do {
    const auto byte = static_cast<unsigned char>(value & 0x7f);
    value >>= 7;
    out += static_cast<char>(value != 0 ? byte | 0x80 : byte);
  } while (value != 0);
}

}  // namespace

namespace {

/// The stack machine shared by signature_valid and decode_signature: one
/// left-to-right pass over untrusted bytes, maintaining the pending
/// subtree roots. Every branch that sizes anything is bounds-checked
/// BEFORE it is believed — the decode allocates O(bytes consumed), never
/// O(claimed arity). When `kinds`/`parents` are non-null the cotree arrays
/// are built alongside validation (node ids = stream post-order, children
/// in stream order); `root_hash` receives the canonical structural hash,
/// folded with exactly canonical_form's mix so a canonical stream decodes
/// to an equal hash.
bool walk_signature(std::string_view sig, std::size_t max_nodes,
                    std::string* why, std::vector<NodeKind>* kinds,
                    std::vector<NodeId>* parents, std::uint64_t* root_hash,
                    std::size_t* leaf_count = nullptr) {
  std::size_t pos = 0;
  const auto fail = [&](const std::string& reason) {
    if (why != nullptr) {
      *why = "invalid signature at byte " + std::to_string(pos) + ": " +
             reason;
    }
    return false;
  };
  struct Pending {
    NodeId id;
    NodeKind kind;
    std::uint64_t hash;
  };
  std::vector<Pending> stack;
  std::size_t count = 0;
  std::size_t leaves = 0;
  const auto build = kinds != nullptr && parents != nullptr;
  while (pos < sig.size()) {
    if (count == max_nodes) return fail("node count exceeds the bound");
    const char tag = sig[pos++];
    if (tag == kSigLeaf) {
      stack.push_back(
          Pending{static_cast<NodeId>(count), NodeKind::Leaf, kLeafHash});
      if (build) {
        kinds->push_back(NodeKind::Leaf);
        parents->push_back(kNull);
      }
      ++count;
      ++leaves;
      continue;
    }
    if (tag != kSigUnion && tag != kSigJoin) {
      return fail("unknown tag byte");
    }
    const NodeKind kind =
        tag == kSigUnion ? NodeKind::Union : NodeKind::Join;
    // LEB128 arity. max_nodes < 2^35, so any run past 5 payload bytes is
    // out of range whatever it encodes — reject before shifting into UB.
    std::uint64_t arity = 0;
    unsigned shift = 0;
    unsigned bytes = 0;
    bool more = true;
    while (more) {
      if (pos == sig.size()) return fail("truncated LEB128 arity");
      const auto b = static_cast<unsigned char>(sig[pos++]);
      if (shift >= 35) return fail("LEB128 arity out of range");
      more = (b & 0x80u) != 0;
      if (!more && bytes > 0 && (b & 0x7fu) == 0) {
        return fail("non-minimal LEB128 arity");
      }
      arity |= static_cast<std::uint64_t>(b & 0x7fu) << shift;
      shift += 7;
      ++bytes;
    }
    if (arity < 2) return fail("internal node arity < 2");
    if (arity > stack.size()) {
      return fail("arity exceeds the available subtrees");
    }
    std::uint64_t h = kind == NodeKind::Union ? kUnionSeed : kJoinSeed;
    h = hash_mix(h, arity);
    const std::size_t base = stack.size() - static_cast<std::size_t>(arity);
    for (std::size_t c = base; c < stack.size(); ++c) {
      if (stack[c].kind == kind) {
        return fail("same-kind child (not a canonical cotree)");
      }
      h = hash_mix(h, stack[c].hash);
      if (build) {
        (*parents)[static_cast<std::size_t>(stack[c].id)] =
            static_cast<NodeId>(count);
      }
    }
    stack.resize(base);
    stack.push_back(Pending{static_cast<NodeId>(count), kind, h});
    if (build) {
      kinds->push_back(kind);
      parents->push_back(kNull);
    }
    ++count;
  }
  if (count == 0) return fail("empty signature");
  if (stack.size() != 1) {
    return fail("stream leaves " + std::to_string(stack.size()) +
                " roots instead of 1");
  }
  if (root_hash != nullptr) *root_hash = stack.front().hash;
  if (leaf_count != nullptr) *leaf_count = leaves;
  return true;
}

}  // namespace

bool signature_valid(std::string_view signature, std::string* why,
                     std::size_t max_nodes) {
  return walk_signature(signature, max_nodes, why, nullptr, nullptr,
                        nullptr);
}

CanonicalForm decode_signature_form(std::string_view signature,
                                    std::size_t max_nodes) {
  std::uint64_t root_hash = 0;
  std::size_t leaves = 0;
  std::string why;
  COPATH_CHECK_MSG(walk_signature(signature, max_nodes, &why, nullptr,
                                  nullptr, &root_hash, &leaves),
                   why);
  CanonicalForm form;
  form.hash = root_hash;
  form.signature.assign(signature);
  form.to_canonical.resize(leaves);
  form.from_canonical.resize(leaves);
  for (std::size_t v = 0; v < leaves; ++v) {
    form.to_canonical[v] = static_cast<VertexId>(v);
    form.from_canonical[v] = static_cast<VertexId>(v);
  }
  return form;
}

DecodedSignature decode_signature(std::string_view signature,
                                  std::size_t max_nodes) {
  std::vector<NodeKind> kinds;
  std::vector<NodeId> parents;
  std::uint64_t root_hash = 0;
  std::string why;
  COPATH_CHECK_MSG(walk_signature(signature, max_nodes, &why, &kinds,
                                  &parents, &root_hash),
                   why);
  DecodedSignature out;
  // Stream order is a post-order with children in stream order, which is
  // exactly from_parts' contract (children sorted by ascending node id) —
  // so the built tree's left-to-right leaf numbering coincides with the
  // canonical leaf slots and both permutations are identities. The root is
  // the last node in the stream (anything pushed earlier and left unpopped
  // would have tripped the single-root check).
  const auto root = static_cast<NodeId>(kinds.size() - 1);
  out.tree = Cotree::from_parts(std::move(kinds), std::move(parents), root);
  out.form.hash = root_hash;
  out.form.signature.assign(signature);
  const std::size_t vertices = out.tree.vertex_count();
  out.form.to_canonical.resize(vertices);
  out.form.from_canonical.resize(vertices);
  for (std::size_t v = 0; v < vertices; ++v) {
    out.form.to_canonical[v] = static_cast<VertexId>(v);
    out.form.from_canonical[v] = static_cast<VertexId>(v);
  }
  return out;
}

CanonicalForm canonical_form(const Cotree& t, bool with_algebra_key) {
  CanonicalForm out;
  const std::size_t n = t.size();
  if (n == 0) {
    if (with_algebra_key) out.key = "()";
    return out;
  }
  exec::Arena& arena = exec::Arena::for_this_thread();

  // Children-before-parents order. Parse/builder trees carry it in their
  // ids already (Cotree::ids_postorder) — ascending order folds directly;
  // only from_parts shapes materialize the reverse of a DFS preorder.
  const bool linear = t.ids_postorder();
  exec::ScratchVec<NodeId> order(arena);
  if (!linear) {
    order.reserve(n);
    exec::ScratchVec<NodeId> stack(arena);
    stack.reserve(n + 1);
    stack.push_back(t.root());
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      order.push_back(v);
      for (const NodeId c : t.children(v)) stack.push_back(c);
    }
    std::reverse(order.data(), order.data() + order.size());
  }

  exec::ScratchVec<std::uint64_t> hash(arena, n, 0);
  // Per-node children in canonical order, flat CSR (one arena loan, not
  // n): node v's sorted children live in sorted[off[v], off[v+1]).
  exec::ScratchVec<std::size_t> off(arena, n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    off[v + 1] = off[v] + t.child_count(static_cast<NodeId>(v));
  }
  exec::ScratchVec<NodeId> sorted(arena, off[n], kNull);
  const auto kids = [&](NodeId v) {
    const auto u = static_cast<std::size_t>(v);
    return std::span<NodeId>(sorted.data() + off[u],
                             sorted.data() + off[u + 1]);
  };

  // Label-free total order on subtrees: by hash, ties broken by an explicit
  // structural walk (kind, then child count, then children pairwise in
  // canonical order). The walk uses its own stack — sibling subtrees can be
  // arbitrarily deep — and only runs on hash ties, i.e. almost always on
  // genuinely isomorphic subtrees, where it terminates by exhausting them.
  struct NodePair {
    NodeId x, y;
  };
  exec::ScratchVec<NodePair> tie(arena);
  const auto less = [&](NodeId a, NodeId b) -> bool {
    if (hash[static_cast<std::size_t>(a)] !=
        hash[static_cast<std::size_t>(b)]) {
      return hash[static_cast<std::size_t>(a)] <
             hash[static_cast<std::size_t>(b)];
    }
    tie.clear();
    tie.push_back(NodePair{a, b});
    while (!tie.empty()) {
      const auto [x, y] = tie.back();
      tie.pop_back();
      if (x == y) continue;
      const auto kx = static_cast<int>(t.kind(x));
      const auto ky = static_cast<int>(t.kind(y));
      if (kx != ky) return kx < ky;
      if (t.is_leaf(x)) continue;  // leaves are interchangeable
      const auto cx = kids(x);
      const auto cy = kids(y);
      if (cx.size() != cy.size()) return cx.size() < cy.size();
      // Lexicographic: the leftmost differing child pair decides, so push
      // pairs in reverse (leftmost on top).
      for (std::size_t i = cx.size(); i-- > 0;) {
        tie.push_back(NodePair{cx[i], cy[i]});
      }
    }
    return false;  // structurally equal
  };

  for (std::size_t oi = 0; oi < n; ++oi) {
    const NodeId v = linear ? static_cast<NodeId>(oi) : order[oi];
    const auto u = static_cast<std::size_t>(v);
    if (t.is_leaf(v)) {
      hash[u] = kLeafHash;
      continue;
    }
    const auto c = kids(v);
    std::copy(t.children(v).begin(), t.children(v).end(), c.begin());
    if (c.size() <= 8) {
      // Child lists are overwhelmingly tiny (mean arity 2-3); a manual
      // insertion sort skips std::sort's per-call dispatch, which
      // dominates the canonicalization profile at serving sizes.
      for (std::size_t i = 1; i < c.size(); ++i) {
        const NodeId x = c[i];
        std::size_t j = i;
        while (j > 0 && less(x, c[j - 1])) {
          c[j] = c[j - 1];
          --j;
        }
        c[j] = x;
      }
    } else {
      std::sort(c.begin(), c.end(), less);
    }
    std::uint64_t h =
        t.kind(v) == NodeKind::Union ? kUnionSeed : kJoinSeed;
    h = hash_mix(h, static_cast<std::uint64_t>(c.size()));
    for (const NodeId ch : c) h = hash_mix(h, hash[static_cast<std::size_t>(ch)]);
    hash[u] = h;
  }
  out.hash = hash[static_cast<std::size_t>(t.root())];

  // Emit the canonical string, the binary post-order signature, and the
  // leaf numbering (left-to-right in canonical child order) in one
  // iterative walk (the tree can be Θ(n) deep).
  const std::size_t vertices = t.vertex_count();
  out.to_canonical.assign(vertices, kNull);
  out.from_canonical.assign(vertices, kNull);
  if (with_algebra_key) out.key.reserve(4 * n);
  out.signature.reserve(2 * n);
  VertexId next = 0;
  const auto emit_leaf = [&](NodeId leaf) {
    if (with_algebra_key) out.key += 'v';
    out.signature += kSigLeaf;
    const VertexId orig = t.vertex_of(leaf);
    out.to_canonical[static_cast<std::size_t>(orig)] = next;
    out.from_canonical[static_cast<std::size_t>(next)] = orig;
    ++next;
  };
  const auto emit_close = [&](NodeId v) {
    if (with_algebra_key) out.key += ')';
    out.signature += t.kind(v) == NodeKind::Union ? kSigUnion : kSigJoin;
    append_leb128(out.signature, t.child_count(v));
  };
  if (t.is_leaf(t.root())) {
    emit_leaf(t.root());
    return out;
  }
  // Frames carry raw cursor/end pointers into the sorted-CSR storage so
  // the inner loop never re-derives spans from the offset table (a
  // measurable share of the canonicalization profile at serving sizes).
  struct Frame {
    NodeId v;
    const NodeId* cur;
    const NodeId* end;
  };
  exec::ScratchVec<Frame> st(arena);
  const auto open_frame = [&](NodeId v) {
    const auto c = kids(v);
    if (with_algebra_key) {
      out.key += '(';
      out.key += kind_char(t.kind(v));
    }
    st.push_back(Frame{v, c.data(), c.data() + c.size()});
  };
  open_frame(t.root());
  while (!st.empty()) {
    Frame& f = st.back();
    if (f.cur == f.end) {
      emit_close(f.v);
      st.pop_back();
      continue;
    }
    const NodeId child = *f.cur++;
    if (with_algebra_key) out.key += ' ';
    if (t.is_leaf(child)) {
      emit_leaf(child);
    } else {
      open_frame(child);  // invalidates f; loop re-fetches
    }
  }
  return out;
}

}  // namespace copath::cograph
