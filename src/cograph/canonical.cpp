#include "cograph/canonical.hpp"

#include <algorithm>
#include <span>
#include <utility>

#include "util/math.hpp"

namespace copath::cograph {
namespace {

constexpr std::uint64_t kLeafHash = 0x9e3779b97f4a7c15ull;
constexpr std::uint64_t kUnionSeed = 0x2545f4914f6cdd1dull;
constexpr std::uint64_t kJoinSeed = 0x94d049bb133111ebull;

// Children are pre-sorted, so hash_mix's order sensitivity makes the hash
// of a child list order-free exactly on the canonical order.
using util::hash_mix;

}  // namespace

CanonicalForm canonical_form(const Cotree& t) {
  CanonicalForm out;
  const std::size_t n = t.size();
  if (n == 0) {
    out.key = "()";
    return out;
  }

  // Children-before-parents order: reverse of a DFS preorder.
  std::vector<NodeId> order;
  order.reserve(n);
  {
    std::vector<NodeId> stack{t.root()};
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      order.push_back(v);
      for (const NodeId c : t.children(v)) stack.push_back(c);
    }
    std::reverse(order.begin(), order.end());
  }

  std::vector<std::uint64_t> hash(n, 0);
  // Per-node children in canonical order, flat CSR (one allocation, not n):
  // node v's sorted children live in sorted[off[v], off[v+1]).
  std::vector<std::size_t> off(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    off[v + 1] = off[v] + t.child_count(static_cast<NodeId>(v));
  }
  std::vector<NodeId> sorted(off[n]);
  const auto kids = [&](NodeId v) {
    const auto u = static_cast<std::size_t>(v);
    return std::span<NodeId>(sorted.data() + off[u],
                             sorted.data() + off[u + 1]);
  };

  // Label-free total order on subtrees: by hash, ties broken by an explicit
  // structural walk (kind, then child count, then children pairwise in
  // canonical order). The walk uses its own stack — sibling subtrees can be
  // arbitrarily deep — and only runs on hash ties, i.e. almost always on
  // genuinely isomorphic subtrees, where it terminates by exhausting them.
  const auto less = [&](NodeId a, NodeId b) -> bool {
    if (hash[static_cast<std::size_t>(a)] !=
        hash[static_cast<std::size_t>(b)]) {
      return hash[static_cast<std::size_t>(a)] <
             hash[static_cast<std::size_t>(b)];
    }
    std::vector<std::pair<NodeId, NodeId>> st{{a, b}};
    while (!st.empty()) {
      const auto [x, y] = st.back();
      st.pop_back();
      if (x == y) continue;
      const auto kx = static_cast<int>(t.kind(x));
      const auto ky = static_cast<int>(t.kind(y));
      if (kx != ky) return kx < ky;
      if (t.is_leaf(x)) continue;  // leaves are interchangeable
      const auto cx = kids(x);
      const auto cy = kids(y);
      if (cx.size() != cy.size()) return cx.size() < cy.size();
      // Lexicographic: the leftmost differing child pair decides, so push
      // pairs in reverse (leftmost on top).
      for (std::size_t i = cx.size(); i-- > 0;) st.emplace_back(cx[i], cy[i]);
    }
    return false;  // structurally equal
  };

  for (const NodeId v : order) {
    const auto u = static_cast<std::size_t>(v);
    if (t.is_leaf(v)) {
      hash[u] = kLeafHash;
      continue;
    }
    const auto c = kids(v);
    std::copy(t.children(v).begin(), t.children(v).end(), c.begin());
    std::sort(c.begin(), c.end(), less);
    std::uint64_t h =
        t.kind(v) == NodeKind::Union ? kUnionSeed : kJoinSeed;
    h = hash_mix(h, static_cast<std::uint64_t>(c.size()));
    for (const NodeId ch : c) h = hash_mix(h, hash[static_cast<std::size_t>(ch)]);
    hash[u] = h;
  }
  out.hash = hash[static_cast<std::size_t>(t.root())];

  // Emit the canonical string and number leaves left-to-right in canonical
  // child order (iterative: the tree can be Θ(n) deep).
  const std::size_t vertices = t.vertex_count();
  out.to_canonical.assign(vertices, kNull);
  out.from_canonical.assign(vertices, kNull);
  out.key.reserve(4 * n);
  VertexId next = 0;
  const auto emit_leaf = [&](NodeId leaf) {
    out.key += 'v';
    const VertexId orig = t.vertex_of(leaf);
    out.to_canonical[static_cast<std::size_t>(orig)] = next;
    out.from_canonical[static_cast<std::size_t>(next)] = orig;
    ++next;
  };
  if (t.is_leaf(t.root())) {
    emit_leaf(t.root());
    return out;
  }
  struct Frame {
    NodeId v;
    std::size_t idx;
  };
  std::vector<Frame> st;
  out.key += '(';
  out.key += kind_char(t.kind(t.root()));
  st.push_back(Frame{t.root(), 0});
  while (!st.empty()) {
    Frame& f = st.back();
    const auto c = kids(f.v);
    if (f.idx == c.size()) {
      out.key += ')';
      st.pop_back();
      continue;
    }
    const NodeId child = c[f.idx++];
    out.key += ' ';
    if (t.is_leaf(child)) {
      emit_leaf(child);
    } else {
      out.key += '(';
      out.key += kind_char(t.kind(child));
      st.push_back(Frame{child, 0});  // invalidates f; loop re-fetches
    }
  }
  return out;
}

}  // namespace copath::cograph
