// The cotree: the canonical tree representation of a cograph.
//
// Definition recap (paper §1): a cograph admits a unique rooted tree T(G)
// whose internal nodes are labelled 0 (union) or 1 (join) with labels
// alternating along root paths, every internal node has >= 2 children, and
// leaves are the graph's vertices; (x, y) is an edge iff the lowest common
// ancestor of x and y is a 1-node.
//
// copath keeps the cotree in structure-of-arrays form (kind / parent /
// children CSR) so the PRAM pipeline can load it straight into shared
// memory. Construction goes through CotreeBuilder, which normalizes
// arbitrary union/join expressions into canonical cotree shape (merging
// same-kind chains, dropping single-child wrappers).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/check.hpp"

namespace copath::cograph {

using NodeId = std::int32_t;
using VertexId = std::int32_t;
inline constexpr NodeId kNull = -1;

/// Parser nesting bound. The parser is an explicit-stack single pass, so
/// depth can no longer overflow the call stack by construction; the cap
/// survives purely as an input-size sanity bound on adversarial nesting
/// (an expression of depth d needs >= 3d input bytes, so this admits every
/// realistic instance while refusing degenerate megabyte-deep combs).
/// Historical note: the recursive-descent parser this replaced capped at
/// 512 to stay inside an 8 MB stack under ASan; Cotree::parse_reference
/// (the retained differential oracle) still recurses and still uses that
/// tighter internal cap.
inline constexpr std::size_t kMaxParseDepth = std::size_t{1} << 16;

enum class NodeKind : std::uint8_t {
  Leaf,
  Union,  // 0-node: disjoint union of the children's cographs
  Join,   // 1-node: union plus all edges between different children
};

[[nodiscard]] constexpr char kind_char(NodeKind k) {
  switch (k) {
    case NodeKind::Leaf: return 'v';
    case NodeKind::Union: return '+';
    case NodeKind::Join: return '*';
  }
  // A NodeKind outside the enum is a corrupted tree, not a printable state.
  util::check_failed("NodeKind is Leaf/Union/Join", __FILE__, __LINE__,
                     "kind_char: invalid NodeKind value");
}

class CotreeBuilder;

class Cotree {
 public:
  Cotree() = default;

  [[nodiscard]] std::size_t size() const { return kind_.size(); }
  [[nodiscard]] NodeId root() const { return root_; }
  /// True when node ids are a post-order (every child id is smaller than
  /// its parent's): guaranteed by parse and CotreeBuilder, detected by
  /// from_parts. Consumers (the canonicalizer) fold bottom-up in one
  /// ascending linear pass instead of materializing a traversal order.
  [[nodiscard]] bool ids_postorder() const { return postorder_ids_; }
  [[nodiscard]] std::size_t vertex_count() const {
    return leaf_of_vertex_.size();
  }

  [[nodiscard]] NodeKind kind(NodeId v) const {
    return kind_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] NodeId parent(NodeId v) const {
    return parent_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] bool is_leaf(NodeId v) const {
    return kind(v) == NodeKind::Leaf;
  }
  [[nodiscard]] std::span<const NodeId> children(NodeId v) const {
    const auto u = static_cast<std::size_t>(v);
    return std::span<const NodeId>(child_.data() + child_off_[u],
                                   child_.data() + child_off_[u + 1]);
  }
  [[nodiscard]] std::size_t child_count(NodeId v) const {
    return children(v).size();
  }

  /// Vertex id carried by a leaf node (kNull for internal nodes).
  [[nodiscard]] VertexId vertex_of(NodeId leaf) const {
    return vertex_[static_cast<std::size_t>(leaf)];
  }
  [[nodiscard]] NodeId leaf_of(VertexId v) const {
    return leaf_of_vertex_[static_cast<std::size_t>(v)];
  }

  /// Optional human-readable vertex names (set by the parser / builder).
  [[nodiscard]] const std::string& name_of(VertexId v) const;

  /// Checks the paper's cotree properties (4)-(5): >= 2 children per
  /// internal node, alternating labels, consistent parent/child pointers,
  /// and a vertex<->leaf bijection. Throws CheckError on violation.
  void validate() const;

  /// Parses the cotree algebra, e.g. "(* (+ (* a b) c) (+ d e f))".
  /// Leaves are identifiers; '+' is union, '*' is join. Nested same-kind
  /// expressions are normalized. Single pass over the text with an
  /// explicit stack (no recursion, so nesting depth cannot overflow the
  /// call stack) emitting straight into the SoA arrays; leaf names are
  /// tracked as string_views into `text` until final emission and all
  /// scratch comes from the calling thread's exec::Arena, so a warm
  /// thread parses without touching the heap beyond the returned tree.
  /// Names equal to their synthetic fallback ("v<vertex-id>" at that
  /// exact vertex) are not stored — format() regenerates them — so
  /// anonymous round-trips construct no name strings (an extension of
  /// CotreeBuilder::build's drop-empty-names normalization).
  /// Malformed input — including expressions nested deeper than
  /// kMaxParseDepth (an input-size sanity bound) — throws
  /// util::CheckError; parse never crashes on arbitrary input.
  static Cotree parse(std::string_view text);

  /// The retired recursive-descent parser (CotreeBuilder-based), kept as
  /// the independently-coded differential oracle for parse(). Identical
  /// output on every accepted input; recursion-limited to depth 512, so
  /// deep combs that parse() accepts are rejected here.
  static Cotree parse_reference(std::string_view text);

  /// Inverse of parse (canonical spacing, vertex names preserved).
  [[nodiscard]] std::string format() const;

  /// Multi-line ASCII rendering of the tree (for examples / figures).
  [[nodiscard]] std::string to_ascii() const;

  /// The complement cograph's cotree: every internal label flips.
  [[nodiscard]] Cotree complement() const;

  /// Raw factory for generators that build large instances directly (no
  /// recursion, unlike CotreeBuilder): `kind`/`parent` per node; children
  /// are ordered by ascending node id. Vertices are numbered over leaves in
  /// left-to-right DFS order. Validates.
  static Cotree from_parts(std::vector<NodeKind> kind,
                           std::vector<NodeId> parent, NodeId root);

 private:
  friend class CotreeBuilder;

  std::vector<NodeKind> kind_;
  std::vector<NodeId> parent_;
  std::vector<std::size_t> child_off_;  // CSR, size() + 1 entries
  std::vector<NodeId> child_;
  std::vector<VertexId> vertex_;
  std::vector<NodeId> leaf_of_vertex_;
  std::vector<std::string> names_;  // may be empty (=> synthetic names)
  NodeId root_ = kNull;
  bool postorder_ids_ = false;
};

/// Incremental cotree construction. Nodes are created bottom-up; `build`
/// normalizes (same-kind merge, single-child collapse) and produces the
/// canonical cotree with vertices numbered in leaf-creation order.
class CotreeBuilder {
 public:
  /// Creates a leaf; `name` is optional (used for printing only).
  NodeId leaf(std::string name = {});
  /// Creates a leaf carrying an explicit vertex id (used by the recognizer
  /// so cotree vertex ids coincide with the input graph's). Either all
  /// leaves use explicit ids or none do; ids must form a bijection onto
  /// [0, #leaves).
  NodeId leaf_with_vertex(VertexId id, std::string name = {});
  /// Creates an internal node adopting `children` (builder node ids). The
  /// span overload is the primary one — callers with ids in any contiguous
  /// storage (stack arrays, scratch vectors, subspans) pass them without
  /// materializing a temporary std::vector; the vector and
  /// initializer-list overloads are thin forwards.
  NodeId node(NodeKind k, std::span<const NodeId> children);
  NodeId node(NodeKind k, const std::vector<NodeId>& children) {
    return node(k, std::span<const NodeId>(children));
  }
  NodeId node(NodeKind k, std::initializer_list<NodeId> children) {
    return node(k, std::span<const NodeId>(children.begin(),
                                           children.size()));
  }
  NodeId unite(std::span<const NodeId> children) {
    return node(NodeKind::Union, children);
  }
  NodeId unite(const std::vector<NodeId>& children) {
    return node(NodeKind::Union, std::span<const NodeId>(children));
  }
  NodeId unite(std::initializer_list<NodeId> children) {
    return node(NodeKind::Union, children);
  }
  NodeId join(std::span<const NodeId> children) {
    return node(NodeKind::Join, children);
  }
  NodeId join(const std::vector<NodeId>& children) {
    return node(NodeKind::Join, std::span<const NodeId>(children));
  }
  NodeId join(std::initializer_list<NodeId> children) {
    return node(NodeKind::Join, children);
  }

  /// Finalizes the tree rooted at `root`.
  [[nodiscard]] Cotree build(NodeId root) &&;

 private:
  struct Proto {
    NodeKind kind;
    std::vector<NodeId> children;
    std::string name;
    VertexId explicit_vertex = kNull;
  };
  std::vector<Proto> nodes_;
  bool any_explicit_ = false;
};

}  // namespace copath::cograph
