// Cotree binarization (paper Fig 3) and the leftist transform — host
// reference implementations. (The PRAM versions that the measured pipeline
// uses live in core/pipeline; these are the independently-testable oracles.)
//
// Binarization replaces each internal node u with children v1..vk by a
// left-deep comb u1..u_{k-1}: u1 = (v1, v2), u_i = (u_{i-1}, v_{i+1}). The
// result always has exactly L leaves and L-1 internal nodes regardless of
// the original arity. Property (5) (label alternation) is lost — comb nodes
// share u's label — but (4) and (6) survive, which is all the algorithm
// needs.
//
// The leftist transform swaps children so that L(left) >= L(right) at every
// internal node (L = descendant leaf count), the precondition for the
// bridge/insert analysis of §2.
#pragma once

#include <cstdint>
#include <vector>

#include "cograph/cotree.hpp"
#include "par/bintree.hpp"

namespace copath::cograph {

struct BinarizedCotree {
  par::BinTree tree;
  /// Per binarized node: 1 iff it carries the Join (1-node) label. Leaves
  /// hold 0.
  std::vector<std::uint8_t> is_join;
  /// Per binarized node: the cograph vertex for leaves, kNull otherwise.
  std::vector<VertexId> vertex;
  /// Inverse map: binarized leaf node per vertex id.
  std::vector<par::NodeId> leaf_of_vertex;

  [[nodiscard]] std::size_t size() const { return tree.size(); }
  void validate() const;
};

/// Host binarization (iterative, no recursion depth limits).
BinarizedCotree binarize(const Cotree& t);

/// Host leftist transform: returns descendant-leaf counts L(u) and swaps
/// children in place so L(left) >= L(right) everywhere.
std::vector<std::int64_t> make_leftist(BinarizedCotree& bc);

}  // namespace copath::cograph
