// Cotree binarization (paper Fig 3) and the leftist transform — host
// reference implementations. (The PRAM versions that the measured pipeline
// uses live in core/pipeline; these are the independently-testable oracles.)
//
// Binarization replaces each internal node u with children v1..vk by a
// left-deep comb u1..u_{k-1}: u1 = (v1, v2), u_i = (u_{i-1}, v_{i+1}). The
// result always has exactly L leaves and L-1 internal nodes regardless of
// the original arity. Property (5) (label alternation) is lost — comb nodes
// share u's label — but (4) and (6) survive, which is all the algorithm
// needs.
//
// The leftist transform swaps children so that L(left) >= L(right) at every
// internal node (L = descendant leaf count), the precondition for the
// bridge/insert analysis of §2.
//
// Two storage shapes share one implementation:
//  * BinarizedCotree — std::vector-backed, the long-lived product form the
//    pipeline / count / oracle call sites keep.
//  * ScratchBinarized — the same arrays carved from an exec::Arena, for
//    the request front-end where the binarized tree is per-request scratch
//    that must not touch the heap on warm requests.
// BinView is the common read surface the sweeps consume (core/sequential,
// core/count); both shapes produce identical node layouts, so results are
// bitwise-equal whichever storage backed them. The internal worklists of
// both variants draw from the calling thread's arena.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cograph/cotree.hpp"
#include "exec/scratch.hpp"
#include "par/bintree.hpp"

namespace copath::cograph {

struct BinarizedCotree {
  par::BinTree tree;
  /// Per binarized node: 1 iff it carries the Join (1-node) label. Leaves
  /// hold 0.
  std::vector<std::uint8_t> is_join;
  /// Per binarized node: the cograph vertex for leaves, kNull otherwise.
  std::vector<VertexId> vertex;
  /// Inverse map: binarized leaf node per vertex id.
  std::vector<par::NodeId> leaf_of_vertex;

  [[nodiscard]] std::size_t size() const { return tree.size(); }
  void validate() const;
};

/// Read-only span view of a binarized cotree — the currency between the
/// binarizer and the host sweeps, independent of what owns the arrays.
struct BinView {
  std::span<const std::int32_t> left;
  std::span<const std::int32_t> right;
  std::span<const std::uint8_t> is_join;
  std::span<const VertexId> vertex;
  std::span<const par::NodeId> leaf_of_vertex;
  std::int32_t root = -1;

  [[nodiscard]] std::size_t size() const { return left.size(); }
};

[[nodiscard]] inline BinView view_of(const BinarizedCotree& bc) {
  return BinView{bc.tree.left, bc.tree.right, bc.is_join,
                 bc.vertex,    bc.leaf_of_vertex, bc.tree.root};
}

/// Arena-backed binarized cotree (the express-lane form): identical layout
/// to BinarizedCotree, storage recycled through `arena`.
struct ScratchBinarized {
  exec::ScratchVec<std::int32_t> parent, left, right;
  exec::ScratchVec<std::uint8_t> is_join;
  exec::ScratchVec<VertexId> vertex;
  exec::ScratchVec<par::NodeId> leaf_of_vertex;
  std::int32_t root = -1;

  explicit ScratchBinarized(exec::Arena& arena)
      : parent(arena), left(arena), right(arena), is_join(arena),
        vertex(arena), leaf_of_vertex(arena) {}

  [[nodiscard]] std::size_t size() const { return left.size(); }
  [[nodiscard]] BinView view() const {
    return BinView{left.span(),   right.span(),         is_join.span(),
                   vertex.span(), leaf_of_vertex.span(), root};
  }
};

/// Mutable output surface of the binarizer: every span pre-sized by the
/// caller (2L-1 nodes, L vertices) and pre-filled like binarize_scratch
/// fills its arrays (parent/left/right = -1, vertex = kNull, is_join = 0).
/// The packed batch path (service/batch.cpp) points these at slices of one
/// exec::Slab so a whole batch of binarized trees shares one allocation.
struct BinSpans {
  std::span<std::int32_t> parent, left, right;
  std::span<std::uint8_t> is_join;
  std::span<VertexId> vertex;
  std::span<par::NodeId> leaf_of_vertex;
};

/// The single binarization implementation over caller-provided storage
/// (worklists from `arena`); returns the root id (always 2L-2 — node ids
/// are creation-ordered with children before parents). Both binarize() and
/// binarize_scratch() are thin storage adapters over this, so all three
/// shapes produce bit-identical node layouts.
std::int32_t binarize_into(const Cotree& t, BinSpans out, exec::Arena& arena);

/// The leftist transform over caller-provided child spans: fills
/// `leaf_count` (pre-sized to left.size()) and swaps children in place so
/// L(left) >= L(right) everywhere. The span-level seam under
/// make_leftist / make_leftist_scratch.
void make_leftist_into(std::span<std::int32_t> left,
                       std::span<std::int32_t> right,
                       std::span<std::int64_t> leaf_count);

/// Host binarization (iterative, no recursion depth limits; worklists come
/// from the calling thread's arena).
BinarizedCotree binarize(const Cotree& t);

/// Same algorithm, arena storage end to end (output arrays AND worklists
/// from `arena`). Node layout is identical to binarize().
void binarize_scratch(const Cotree& t, exec::Arena& arena,
                      ScratchBinarized& out);

/// Host leftist transform: returns descendant-leaf counts L(u) and swaps
/// children in place so L(left) >= L(right) everywhere.
std::vector<std::int64_t> make_leftist(BinarizedCotree& bc);

/// Arena variant over scratch storage; fills `leaf_count` (resized to the
/// node count).
void make_leftist_scratch(ScratchBinarized& bc,
                          exec::ScratchVec<std::int64_t>& leaf_count);

}  // namespace copath::cograph
