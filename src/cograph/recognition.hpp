// Sequential cograph recognition: Graph -> Cotree (or a P4 witness).
//
// The paper assumes the cotree is given (parallel cotree construction is
// He's CRCW algorithm [12], outside the reproduced claims); this recognizer
// is the convenience substrate that lets library users start from an
// arbitrary graph. Algorithm: recursive complement-reduction — a graph is a
// cograph iff every induced subgraph with >= 2 vertices is disconnected or
// co-disconnected (equivalently, it has no induced P4). Components become
// 0-node children, co-components 1-node children. Complexity O(n + m) per
// decomposition level using the standard "co-BFS over the unvisited set"
// trick; worst case O(n (n + m)), which is ample for a substrate (the
// linear-time recognizers of Corneil et al. trade considerable complexity
// for a bound we don't rely on).
#pragma once

#include <optional>
#include <vector>

#include "cograph/cotree.hpp"
#include "cograph/graph.hpp"

namespace copath::cograph {

struct RecognitionResult {
  /// Set iff the graph is a cograph.
  std::optional<Cotree> cotree;
  /// If not a cograph: four vertices inducing a P4 (path a-b-c-d), the
  /// forbidden subgraph characterizing cographs.
  std::vector<VertexId> p4_witness;

  [[nodiscard]] bool is_cograph() const { return cotree.has_value(); }
};

/// Recognizes whether `g` is a cograph; on success the returned cotree's
/// vertex ids coincide with g's vertex ids.
RecognitionResult recognize_cograph(const Graph& g);

}  // namespace copath::cograph
