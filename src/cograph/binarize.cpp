#include "cograph/binarize.hpp"

namespace copath::cograph {

void BinarizedCotree::validate() const {
  tree.validate();
  const std::size_t n = tree.size();
  COPATH_CHECK(is_join.size() == n && vertex.size() == n);
  std::size_t leaves = 0;
  for (std::size_t v = 0; v < n; ++v) {
    const bool leaf = tree.is_leaf(static_cast<par::NodeId>(v));
    if (leaf) {
      ++leaves;
      COPATH_CHECK(vertex[v] != kNull);
      COPATH_CHECK(
          leaf_of_vertex[static_cast<std::size_t>(vertex[v])] ==
          static_cast<par::NodeId>(v));
    } else {
      COPATH_CHECK(vertex[v] == kNull);
      // Exactly two children (property (4) after binarization).
      COPATH_CHECK(tree.left[v] != -1 && tree.right[v] != -1);
    }
  }
  COPATH_CHECK(leaves == leaf_of_vertex.size());
  COPATH_CHECK_MSG(n == 2 * leaves - 1,
                   "binarized cotree must have 2L-1 nodes");
}

/// The single binarization implementation (worklists from `arena`);
/// returns the root id. Node numbering is deterministic in `t` alone, so
/// vector-backed, arena-backed, and slab-packed callers produce identical
/// trees.
///
/// Id invariant the downstream sweeps rely on: ids are assigned in
/// creation order and every comb node is created after both its children,
/// so children always have smaller ids than their parent and the root is
/// id 2L-2 — ascending id order is a post-order. make_leftist, the
/// sequential sweep (core/sequential.cpp), and the counting sweeps
/// (core/count.cpp) all fold in one linear pass on the strength of this.
std::int32_t binarize_into(const Cotree& t, BinSpans out,
                           exec::Arena& arena) {
  std::int32_t next_id = 0;
  const auto new_node = [&](bool join) {
    const std::int32_t id = next_id++;
    out.is_join[static_cast<std::size_t>(id)] = join ? 1 : 0;
    return id;
  };
  const auto link = [&](std::int32_t p, std::int32_t l, std::int32_t r) {
    out.left[static_cast<std::size_t>(p)] = l;
    out.right[static_cast<std::size_t>(p)] = r;
    out.parent[static_cast<std::size_t>(l)] = p;
    out.parent[static_cast<std::size_t>(r)] = p;
  };

  // Iterative post-order over the cotree; result[v] = binarized id of v.
  exec::ScratchVec<std::int32_t> result(arena, t.size(), -1);
  exec::ScratchVec<std::uint8_t> expanded(arena, t.size(), 0);
  exec::ScratchVec<NodeId> stack(arena);
  stack.reserve(t.size() + 1);
  stack.push_back(t.root());
  while (!stack.empty()) {
    const NodeId v = stack.back();
    const auto vu = static_cast<std::size_t>(v);
    if (t.is_leaf(v)) {
      stack.pop_back();
      const std::int32_t id = new_node(false);
      out.vertex[static_cast<std::size_t>(id)] = t.vertex_of(v);
      out.leaf_of_vertex[static_cast<std::size_t>(t.vertex_of(v))] = id;
      result[vu] = id;
      continue;
    }
    if (!expanded[vu]) {
      expanded[vu] = 1;
      const auto kids = t.children(v);
      for (std::size_t i = kids.size(); i-- > 0;) stack.push_back(kids[i]);
      continue;
    }
    stack.pop_back();
    const auto kids = t.children(v);
    const bool join = t.kind(v) == NodeKind::Join;
    // Left-deep comb (Fig 3).
    std::int32_t acc = result[static_cast<std::size_t>(kids[0])];
    for (std::size_t i = 1; i < kids.size(); ++i) {
      const std::int32_t node = new_node(join);
      link(node, acc, result[static_cast<std::size_t>(kids[i])]);
      acc = node;
    }
    result[vu] = acc;
  }
  const std::int32_t root = result[static_cast<std::size_t>(t.root())];
  COPATH_DCHECK(root == next_id - 1);  // the id-invariant anchor
  out.parent[static_cast<std::size_t>(root)] = -1;
  return root;
}

/// The single leftist implementation over mutable child spans: fills
/// descendant-leaf counts, then swaps wherever the right side outweighs
/// the left. Exploits the binarize_into id invariant (children before
/// parents): one ascending linear pass IS a post-order fold — no stack,
/// no order array, sequential memory access.
void make_leftist_into(std::span<std::int32_t> left,
                       std::span<std::int32_t> right,
                       std::span<std::int64_t> leaf_count) {
  const std::size_t n = left.size();
  for (std::size_t v = 0; v < n; ++v) {
    leaf_count[v] =
        left[v] == -1
            ? 1
            : leaf_count[static_cast<std::size_t>(left[v])] +
                  leaf_count[static_cast<std::size_t>(right[v])];
  }
  // ...then swap wherever the right subtree outweighs the left.
  for (std::size_t v = 0; v < n; ++v) {
    if (left[v] == -1) continue;
    if (leaf_count[static_cast<std::size_t>(left[v])] <
        leaf_count[static_cast<std::size_t>(right[v])]) {
      std::swap(left[v], right[v]);
    }
  }
}

BinarizedCotree binarize(const Cotree& t) {
  const std::size_t leaves = t.vertex_count();
  COPATH_CHECK(leaves > 0);
  BinarizedCotree out;
  const std::size_t bn = 2 * leaves - 1;
  out.tree = par::BinTree::with_size(bn);
  out.is_join.assign(bn, 0);
  out.vertex.assign(bn, kNull);
  out.leaf_of_vertex.assign(leaves, -1);
  out.tree.root = binarize_into(
      t,
      BinSpans{out.tree.parent, out.tree.left, out.tree.right, out.is_join,
               out.vertex, out.leaf_of_vertex},
      exec::Arena::for_this_thread());
#ifndef NDEBUG
  // Constructor self-check (O(n) + scratch): debug builds only — binarize
  // sits on the serving hot path and its output shape is enforced by the
  // test suite.
  out.validate();
#endif
  return out;
}

void binarize_scratch(const Cotree& t, exec::Arena& arena,
                      ScratchBinarized& out) {
  const std::size_t leaves = t.vertex_count();
  COPATH_CHECK(leaves > 0);
  const std::size_t bn = 2 * leaves - 1;
  out.parent.assign(bn, -1);
  out.left.assign(bn, -1);
  out.right.assign(bn, -1);
  out.is_join.assign(bn, 0);
  out.vertex.assign(bn, kNull);
  out.leaf_of_vertex.assign(leaves, -1);
  out.root = binarize_into(
      t,
      BinSpans{out.parent.span(), out.left.span(), out.right.span(),
               out.is_join.span(), out.vertex.span(),
               out.leaf_of_vertex.span()},
      arena);
}

std::vector<std::int64_t> make_leftist(BinarizedCotree& bc) {
  std::vector<std::int64_t> leaf_count(bc.size(), 0);
  make_leftist_into(bc.tree.left, bc.tree.right, leaf_count);
  return leaf_count;
}

void make_leftist_scratch(ScratchBinarized& bc,
                          exec::ScratchVec<std::int64_t>& leaf_count) {
  leaf_count.assign(bc.size(), 0);
  make_leftist_into(bc.left.span(), bc.right.span(), leaf_count.span());
}

}  // namespace copath::cograph
