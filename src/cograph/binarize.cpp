#include "cograph/binarize.hpp"

namespace copath::cograph {

void BinarizedCotree::validate() const {
  tree.validate();
  const std::size_t n = tree.size();
  COPATH_CHECK(is_join.size() == n && vertex.size() == n);
  std::size_t leaves = 0;
  for (std::size_t v = 0; v < n; ++v) {
    const bool leaf = tree.is_leaf(static_cast<par::NodeId>(v));
    if (leaf) {
      ++leaves;
      COPATH_CHECK(vertex[v] != kNull);
      COPATH_CHECK(
          leaf_of_vertex[static_cast<std::size_t>(vertex[v])] ==
          static_cast<par::NodeId>(v));
    } else {
      COPATH_CHECK(vertex[v] == kNull);
      // Exactly two children (property (4) after binarization).
      COPATH_CHECK(tree.left[v] != -1 && tree.right[v] != -1);
    }
  }
  COPATH_CHECK(leaves == leaf_of_vertex.size());
  COPATH_CHECK_MSG(n == 2 * leaves - 1,
                   "binarized cotree must have 2L-1 nodes");
}

BinarizedCotree binarize(const Cotree& t) {
  const std::size_t leaves = t.vertex_count();
  COPATH_CHECK(leaves > 0);
  BinarizedCotree out;
  const std::size_t bn = 2 * leaves - 1;
  out.tree = par::BinTree::with_size(bn);
  out.is_join.assign(bn, 0);
  out.vertex.assign(bn, kNull);
  out.leaf_of_vertex.assign(leaves, -1);

  std::int32_t next_id = 0;
  const auto new_node = [&](bool join) {
    const std::int32_t id = next_id++;
    out.is_join[static_cast<std::size_t>(id)] = join ? 1 : 0;
    return id;
  };
  const auto link = [&](std::int32_t p, std::int32_t l, std::int32_t r) {
    out.tree.left[static_cast<std::size_t>(p)] = l;
    out.tree.right[static_cast<std::size_t>(p)] = r;
    out.tree.parent[static_cast<std::size_t>(l)] = p;
    out.tree.parent[static_cast<std::size_t>(r)] = p;
  };

  // Iterative post-order over the cotree; result[v] = binarized id of v.
  std::vector<std::int32_t> result(t.size(), -1);
  std::vector<NodeId> stack{t.root()};
  std::vector<std::uint8_t> expanded(t.size(), 0);
  while (!stack.empty()) {
    const NodeId v = stack.back();
    const auto vu = static_cast<std::size_t>(v);
    if (t.is_leaf(v)) {
      stack.pop_back();
      const std::int32_t id = new_node(false);
      out.vertex[static_cast<std::size_t>(id)] = t.vertex_of(v);
      out.leaf_of_vertex[static_cast<std::size_t>(t.vertex_of(v))] = id;
      result[vu] = id;
      continue;
    }
    if (!expanded[vu]) {
      expanded[vu] = 1;
      const auto kids = t.children(v);
      for (std::size_t i = kids.size(); i-- > 0;) stack.push_back(kids[i]);
      continue;
    }
    stack.pop_back();
    const auto kids = t.children(v);
    const bool join = t.kind(v) == NodeKind::Join;
    // Left-deep comb (Fig 3).
    std::int32_t acc = result[static_cast<std::size_t>(kids[0])];
    for (std::size_t i = 1; i < kids.size(); ++i) {
      const std::int32_t node = new_node(join);
      link(node, acc, result[static_cast<std::size_t>(kids[i])]);
      acc = node;
    }
    result[vu] = acc;
  }
  out.tree.root = result[static_cast<std::size_t>(t.root())];
  out.tree.parent[static_cast<std::size_t>(out.tree.root)] = -1;
#ifndef NDEBUG
  // Constructor self-check (O(n) + scratch): debug builds only — binarize
  // sits on the serving hot path and its output shape is enforced by the
  // test suite.
  out.validate();
#endif
  return out;
}

std::vector<std::int64_t> make_leftist(BinarizedCotree& bc) {
  const std::size_t n = bc.size();
  std::vector<std::int64_t> leaf_count(n, 0);
  // Iterative post-order leaf counting: entries encode node * 2 + phase
  // (0 = expand children, 1 = fold), so no order array is materialized.
  std::vector<std::int32_t> stack;
  stack.reserve(64);
  stack.push_back(bc.tree.root * 2);
  while (!stack.empty()) {
    const std::int32_t item = stack.back();
    stack.pop_back();
    const auto v = static_cast<std::size_t>(item / 2);
    if (bc.tree.left[v] == -1) {
      leaf_count[v] = 1;
      continue;
    }
    if (item % 2 == 0) {
      stack.push_back(item + 1);
      stack.push_back(bc.tree.left[v] * 2);
      stack.push_back(bc.tree.right[v] * 2);
    } else {
      leaf_count[v] = leaf_count[static_cast<std::size_t>(bc.tree.left[v])] +
                      leaf_count[static_cast<std::size_t>(bc.tree.right[v])];
    }
  }
  // ...then swap wherever the right subtree outweighs the left.
  for (std::size_t v = 0; v < n; ++v) {
    if (bc.tree.left[v] == -1) continue;
    if (leaf_count[static_cast<std::size_t>(bc.tree.left[v])] <
        leaf_count[static_cast<std::size_t>(bc.tree.right[v])]) {
      std::swap(bc.tree.left[v], bc.tree.right[v]);
    }
  }
  return leaf_count;
}

}  // namespace copath::cograph
