#include "cograph/graph.hpp"

#include <algorithm>

namespace copath::cograph {

void Graph::add_edge(VertexId u, VertexId v) {
  COPATH_CHECK(u != v);
  COPATH_CHECK(static_cast<std::size_t>(u) < adj_.size() &&
               static_cast<std::size_t>(v) < adj_.size());
  adj_[static_cast<std::size_t>(u)].push_back(v);
  adj_[static_cast<std::size_t>(v)].push_back(u);
  ++edges_;
  sorted_ = false;
}

bool Graph::has_edge(VertexId u, VertexId v) const {
  COPATH_CHECK_MSG(sorted_, "call finalize()/from_cotree before has_edge");
  const auto& a = adj_[static_cast<std::size_t>(u)];
  return std::binary_search(a.begin(), a.end(), v);
}

void Graph::finalize() {
  for (auto& a : adj_) std::sort(a.begin(), a.end());
  sorted_ = true;
}

Graph Graph::from_cotree(const Cotree& t) {
  Graph g(t.vertex_count());
  if (t.size() == 0) return g;
  // The vertices below any node form a contiguous range of *positions* in
  // the DFS leaf sequence (vertex ids themselves may be permuted when the
  // cotree came from the recognizer). At each join node, connect every pair
  // of positions coming from different children.
  const std::size_t n = t.size();
  std::vector<std::size_t> lo(n, 0), hi(n, 0);  // [lo, hi) leaf positions
  std::vector<VertexId> leaf_seq;               // vertex id per position
  leaf_seq.reserve(t.vertex_count());
  {
    std::vector<NodeId> stack{t.root()};
    std::vector<std::uint8_t> expanded(n, 0);
    while (!stack.empty()) {
      const NodeId v = stack.back();
      const auto vu = static_cast<std::size_t>(v);
      if (t.is_leaf(v)) {
        lo[vu] = leaf_seq.size();
        leaf_seq.push_back(t.vertex_of(v));
        hi[vu] = leaf_seq.size();
        stack.pop_back();
        continue;
      }
      if (!expanded[vu]) {
        expanded[vu] = 1;
        const auto kids = t.children(v);
        for (std::size_t i = kids.size(); i-- > 0;) stack.push_back(kids[i]);
        continue;
      }
      stack.pop_back();
      const auto kids = t.children(v);
      lo[vu] = lo[static_cast<std::size_t>(kids.front())];
      hi[vu] = hi[static_cast<std::size_t>(kids.back())];
      if (t.kind(v) == NodeKind::Join) {
        // Cross edges between each child block and everything after it.
        for (std::size_t i = 0; i + 1 < kids.size(); ++i) {
          const auto a = static_cast<std::size_t>(kids[i]);
          for (std::size_t x = lo[a]; x < hi[a]; ++x) {
            for (std::size_t y = hi[a]; y < hi[vu]; ++y)
              g.add_edge(leaf_seq[x], leaf_seq[y]);
          }
        }
      }
    }
  }
  g.finalize();
  return g;
}

Graph Graph::complement() const {
  const std::size_t n = vertex_count();
  Graph g(n);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      if (!has_edge(static_cast<VertexId>(u), static_cast<VertexId>(v)))
        g.add_edge(static_cast<VertexId>(u), static_cast<VertexId>(v));
    }
  }
  g.finalize();
  return g;
}

CotreeAdjacency::CotreeAdjacency(const Cotree& t) : tree_(&t) {
  const std::size_t n = t.size();
  COPATH_CHECK(n > 0);
  first_.assign(n, 0);
  euler_.reserve(2 * n);
  depth_.reserve(2 * n);
  // Iterative Euler walk recording (node, depth) at every visit.
  struct Frame {
    NodeId node;
    std::size_t next_child;
  };
  std::vector<Frame> stack{{t.root(), 0}};
  std::vector<std::int32_t> node_depth(n, 0);
  while (!stack.empty()) {
    auto& f = stack.back();
    const auto vu = static_cast<std::size_t>(f.node);
    if (f.next_child == 0) {
      first_[vu] = euler_.size();
    }
    euler_.push_back(f.node);
    depth_.push_back(node_depth[vu]);
    const auto kids = t.children(f.node);
    if (f.next_child < kids.size()) {
      const NodeId c = kids[f.next_child++];
      node_depth[static_cast<std::size_t>(c)] = node_depth[vu] + 1;
      stack.push_back({c, 0});
    } else {
      stack.pop_back();
    }
  }
  // Sparse table over the (depth) tour for argmin queries.
  const std::size_t len = euler_.size();
  log2_.assign(len + 1, 0);
  for (std::size_t i = 2; i <= len; ++i) log2_[i] = log2_[i / 2] + 1;
  const std::size_t levels = log2_[len] + 1;
  sparse_.assign(levels, std::vector<std::size_t>(len));
  for (std::size_t i = 0; i < len; ++i) sparse_[0][i] = i;
  for (std::size_t k = 1; k < levels; ++k) {
    const std::size_t span = std::size_t{1} << k;
    for (std::size_t i = 0; i + span <= len; ++i) {
      const std::size_t a = sparse_[k - 1][i];
      const std::size_t b = sparse_[k - 1][i + span / 2];
      sparse_[k][i] = depth_[a] <= depth_[b] ? a : b;
    }
  }
}

NodeId CotreeAdjacency::lca_leaf(VertexId u, VertexId v) const {
  COPATH_CHECK(u != v);
  std::size_t a = first_[static_cast<std::size_t>(tree_->leaf_of(u))];
  std::size_t b = first_[static_cast<std::size_t>(tree_->leaf_of(v))];
  if (a > b) std::swap(a, b);
  const std::size_t k = log2_[b - a + 1];
  const std::size_t x = sparse_[k][a];
  const std::size_t y = sparse_[k][b + 1 - (std::size_t{1} << k)];
  return euler_[depth_[x] <= depth_[y] ? x : y];
}

}  // namespace copath::cograph
