#include "cograph/cotree.hpp"

#include <array>
#include <charconv>
#include <cstring>
#include <functional>
#include <sstream>

#include "exec/scratch.hpp"

namespace copath::cograph {

const std::string& Cotree::name_of(VertexId v) const {
  static const std::string kEmpty;
  const auto u = static_cast<std::size_t>(v);
  if (u < names_.size() && !names_[u].empty()) return names_[u];
  return kEmpty;
}

void Cotree::validate() const {
  const std::size_t n = size();
  COPATH_CHECK(parent_.size() == n && vertex_.size() == n);
  COPATH_CHECK(child_off_.size() == n + 1);
  if (n == 0) {
    COPATH_CHECK(root_ == kNull);
    return;
  }
  COPATH_CHECK(root_ >= 0 && static_cast<std::size_t>(root_) < n);
  COPATH_CHECK(parent(root_) == kNull);
  std::size_t roots = 0;
  std::size_t leaves = 0;
  for (std::size_t v = 0; v < n; ++v) {
    const auto id = static_cast<NodeId>(v);
    if (parent_[v] == kNull) ++roots;
    if (kind_[v] == NodeKind::Leaf) {
      ++leaves;
      COPATH_CHECK_MSG(children(id).empty(), "leaf " << v << " has children");
      const VertexId vx = vertex_[v];
      COPATH_CHECK(vx >= 0 &&
                   static_cast<std::size_t>(vx) < leaf_of_vertex_.size());
      COPATH_CHECK_MSG(leaf_of_vertex_[static_cast<std::size_t>(vx)] == id,
                       "vertex<->leaf mapping broken at vertex " << vx);
    } else {
      // Property (4): every internal node has at least two children.
      COPATH_CHECK_MSG(child_count(id) >= 2,
                       "internal node " << v << " has "
                                        << child_count(id) << " child(ren)");
      for (const NodeId c : children(id)) {
        COPATH_CHECK(parent(c) == id);
        // Property (5): labels alternate along every root path.
        COPATH_CHECK_MSG(kind(c) != kind_[v],
                         "labels fail to alternate at node " << v);
      }
    }
  }
  COPATH_CHECK_MSG(roots == 1, "expected exactly one root, got " << roots);
  COPATH_CHECK(leaves == leaf_of_vertex_.size());
}

namespace {

/// Scratch pre-node of the single-pass parser: a normalized tree held as
/// first-child / next-sibling links into the scratch pool, with leaf names
/// as (begin, len) views into the input text. Only nodes that survive
/// normalization (leaves, internal nodes with >= 2 post-merge children)
/// occupy output slots; merged and collapsed pre-nodes simply never get an
/// output id.
struct ParseNode {
  std::int32_t first_child;
  std::int32_t last_child;
  std::int32_t next_sibling;
  std::int32_t child_count;
  std::int32_t assigned;  // output node id (emission pass)
  std::uint32_t name_begin;
  std::uint32_t name_len;
  NodeKind kind;
};

/// One open '(' on the explicit parse stack: the pending child list.
struct ParseFrame {
  std::int32_t first;
  std::int32_t last;
  std::int32_t count;
  NodeKind kind;
};

inline bool is_space(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

/// Character classes of the cotree algebra, one table lookup per byte in
/// the parser's scanning loops (the branchy comparisons show up at 40 KB
/// request texts).
enum : std::uint8_t { kChOther = 0, kChSpace = 1, kChParen = 2 };
constexpr std::array<std::uint8_t, 256> make_char_class() {
  std::array<std::uint8_t, 256> t{};
  t[static_cast<unsigned char>(' ')] = kChSpace;
  t[static_cast<unsigned char>('\t')] = kChSpace;
  t[static_cast<unsigned char>('\n')] = kChSpace;
  t[static_cast<unsigned char>('\r')] = kChSpace;
  t[static_cast<unsigned char>('(')] = kChParen;
  t[static_cast<unsigned char>(')')] = kChParen;
  return t;
}
constexpr std::array<std::uint8_t, 256> kCharClass = make_char_class();

/// "v<id>" rendered into a caller-provided buffer — the single source of
/// the synthetic leaf-name format (parser elision check, name backfill,
/// and the format()/to_ascii() fallbacks all agree through it).
inline std::string_view vertex_token(char (&buf)[16], VertexId vx) {
  buf[0] = 'v';
  const auto [end, ec] = std::to_chars(buf + 1, buf + sizeof(buf), vx);
  (void)ec;
  return {buf, static_cast<std::size_t>(end - buf)};
}

inline void append_vertex_token(std::string& out, VertexId vx) {
  char buf[16];
  out += vertex_token(buf, vx);
}

}  // namespace

Cotree Cotree::parse(std::string_view text) {
  COPATH_CHECK_MSG(text.size() <= UINT32_MAX,
                   "cotree expression larger than 4 GB");
  exec::Arena& arena = exec::Arena::for_this_thread();
  exec::ScratchVec<ParseNode> nodes(arena);
  exec::ScratchVec<ParseFrame> frames(arena);
  // Children of created nodes, appended at creation time: in dense mode
  // (see below) this IS the final CSR child array — creation order is id
  // order, so emission memcpys it instead of chasing sibling links.
  exec::ScratchVec<std::int32_t> child_stream(arena);
  std::size_t live = 0;    // pre-nodes that survive into the output
  std::size_t leaves = 0;  // leaf pre-nodes (all survive)
  std::int32_t result = -1;  // the completed top-level expression

  // True while scratch ids are dense post-order output ids (every created
  // pre-node still live, creation order = children before parents, leaves
  // in textual order). Same-kind subexpressions splice into their parent
  // *at close time* without materializing a node, so the only way a
  // created node dies — flipping this off and forcing the generic
  // emission walk — is the rare collapse-then-merge shape
  // "(+ (* (+ a b)) c)": a single-child wrapper hands an already-built
  // node up into a same-kind frame.
  bool dense = true;

  // Appends completed subtree `s` to the open frame `f`. An internal child
  // of the frame's own kind is *merged* — its children splice onto the
  // frame's list and the child pre-node dies — which is what keeps the
  // label-alternation property (5) true by construction.
  const auto add_child = [&](ParseFrame& f, std::int32_t s) {
    ParseNode& ps = nodes[static_cast<std::size_t>(s)];
    if (ps.kind == f.kind && ps.kind != NodeKind::Leaf) {
      if (f.last == -1) {
        f.first = ps.first_child;
      } else {
        nodes[static_cast<std::size_t>(f.last)].next_sibling =
            ps.first_child;
      }
      f.last = ps.last_child;
      f.count += ps.child_count;
      --live;  // a created node died: ids are no longer dense post-order
      dense = false;
      return;
    }
    if (f.last == -1) {
      f.first = s;
    } else {
      nodes[static_cast<std::size_t>(f.last)].next_sibling = s;
    }
    f.last = s;
    ++f.count;
  };

  std::size_t i = 0;
  while (true) {
    while (i < text.size() &&
           kCharClass[static_cast<unsigned char>(text[i])] == kChSpace) {
      ++i;
    }
    if (i >= text.size()) break;
    const char c = text[i];
    if (c == '(') {
      COPATH_CHECK_MSG(frames.size() < kMaxParseDepth,
                       "cotree expression nests deeper than "
                           << kMaxParseDepth);
      COPATH_CHECK_MSG(!frames.empty() || result == -1,
                       "trailing characters after cotree expression");
      ++i;
      while (i < text.size() && is_space(text[i])) ++i;
      COPATH_CHECK_MSG(i < text.size() &&
                           (text[i] == '+' || text[i] == '*'),
                       "expected '+' or '*' after '(' at offset " << i);
      frames.push_back(ParseFrame{
          -1, -1, 0,
          text[i] == '+' ? NodeKind::Union : NodeKind::Join});
      ++i;
      continue;
    }
    if (c == ')') {
      COPATH_CHECK_MSG(!frames.empty(),
                       "unmatched ')' at offset " << i);
      ++i;
      const ParseFrame f = frames.back();
      frames.pop_back();
      COPATH_CHECK_MSG(f.count != 0, "empty '(…)' in cotree expression");
      std::int32_t done;
      if (f.count == 1) {
        done = f.first;  // single-child wrapper collapses to its child
      } else if (!frames.empty() && frames.back().kind == f.kind) {
        // Same-kind subexpression: splice its children straight onto the
        // enclosing frame — no node is created, so no node can die.
        ParseFrame& p = frames.back();
        if (p.last == -1) {
          p.first = f.first;
        } else {
          nodes[static_cast<std::size_t>(p.last)].next_sibling = f.first;
        }
        p.last = f.last;
        p.count += f.count;
        continue;
      } else {
        nodes.push_back(ParseNode{f.first, f.last, -1, f.count, -1, 0, 0,
                                  f.kind});
        ++live;
        done = static_cast<std::int32_t>(nodes.size() - 1);
        if (dense) {
          for (std::int32_t ch = f.first; ch != -1;
               ch = nodes[static_cast<std::size_t>(ch)].next_sibling) {
            child_stream.push_back(ch);
          }
        }
      }
      if (frames.empty()) {
        result = done;
      } else {
        add_child(frames.back(), done);
      }
      continue;
    }
    // Leaf identifier (c is neither whitespace nor a paren, so non-empty).
    COPATH_CHECK_MSG(!frames.empty() || result == -1,
                     "trailing characters after cotree expression");
    const std::size_t start = i;
    while (i < text.size() &&
           kCharClass[static_cast<unsigned char>(text[i])] == kChOther) {
      ++i;
    }
    nodes.push_back(ParseNode{-1, -1, -1, 0, -1,
                              static_cast<std::uint32_t>(start),
                              static_cast<std::uint32_t>(i - start),
                              NodeKind::Leaf});
    ++live;
    ++leaves;
    if (frames.empty()) {
      result = static_cast<std::int32_t>(nodes.size() - 1);
    } else {
      add_child(frames.back(), static_cast<std::int32_t>(nodes.size() - 1));
    }
  }
  COPATH_CHECK_MSG(frames.empty(), "missing ')' in cotree expression");
  COPATH_CHECK_MSG(result != -1, "unexpected end of cotree expression");

  // Emission: one post-order walk assigns output ids (so children precede
  // parents and leaves appear in left-to-right order — the same layout
  // CotreeBuilder::build produces), then the CSR child arrays fill in a
  // second sweep over the assigned ids.
  const std::size_t n = live;
  Cotree out;
  out.kind_.resize(n);
  out.parent_.assign(n, kNull);
  out.vertex_.assign(n, kNull);
  out.child_off_.assign(n + 1, 0);
  out.leaf_of_vertex_.assign(leaves, kNull);

  exec::ScratchVec<std::int32_t> scratch_of(arena);
  VertexId next_vertex = 0;
  // Leaf names are stored only once a token differs from the synthetic
  // "v<vertex-id>" the formatter would regenerate anyway — round-trips of
  // anonymous trees (the dominant serving shape) then construct no name
  // strings at all. Extends CotreeBuilder::build's existing "drop the
  // names vector when nobody supplied names" normalization: a name equal
  // to its own synthetic fallback carries no information.
  bool synthetic_names = true;
  const auto is_synthetic = [](std::string_view name, VertexId vx) {
    char buf[16];
    return name == vertex_token(buf, vx);
  };
  const auto emit_node = [&](ParseNode& pn, std::int32_t id) {
    const auto u = static_cast<std::size_t>(id);
    pn.assigned = id;
    out.kind_[u] = pn.kind;
    out.child_off_[u + 1] = static_cast<std::size_t>(pn.child_count);
    if (pn.kind == NodeKind::Leaf) {
      const VertexId vx = next_vertex++;
      out.vertex_[u] = vx;
      out.leaf_of_vertex_[static_cast<std::size_t>(vx)] = id;
      const std::string_view name = text.substr(pn.name_begin, pn.name_len);
      if (!synthetic_names || !is_synthetic(name, vx)) {
        if (synthetic_names) {
          // First real name: materialize the table, backfilling the
          // synthetic names skipped so far (they are reconstructible).
          out.names_.assign(leaves, {});
          for (VertexId w = 0; w < vx; ++w) {
            char buf[16];
            out.names_[static_cast<std::size_t>(w)] = vertex_token(buf, w);
          }
          synthetic_names = false;
        }
        out.names_[static_cast<std::size_t>(vx)] = std::string(name);
      }
    }
  };
  if (dense) {
    // Scratch ids ARE the output ids: one linear pass finalizes every
    // node (creation order is post-order, leaves in textual order).
    COPATH_DCHECK(nodes.size() == n);
    COPATH_DCHECK(static_cast<std::size_t>(result) == n - 1);
    for (std::size_t v = 0; v < n; ++v) {
      emit_node(nodes[v], static_cast<std::int32_t>(v));
    }
    out.root_ = result;
  } else {
    // Collapse-then-merge left dead pre-nodes: assign dense post-order
    // ids with an explicit child-cursor walk over the live tree.
    struct WalkFrame {
      std::int32_t node;
      std::int32_t next_child;
    };
    exec::ScratchVec<WalkFrame> walk(arena);
    scratch_of.assign(n, -1);
    std::int32_t next_id = 0;
    walk.push_back(WalkFrame{
        result, nodes[static_cast<std::size_t>(result)].first_child});
    while (!walk.empty()) {
      WalkFrame& f = walk.back();
      if (f.next_child != -1) {
        const std::int32_t child = f.next_child;
        f.next_child =
            nodes[static_cast<std::size_t>(child)].next_sibling;
        walk.push_back(WalkFrame{
            child, nodes[static_cast<std::size_t>(child)].first_child});
        continue;
      }
      const std::int32_t id = next_id++;
      scratch_of[static_cast<std::size_t>(id)] = f.node;
      emit_node(nodes[static_cast<std::size_t>(f.node)], id);
      walk.pop_back();
    }
    COPATH_CHECK(static_cast<std::size_t>(next_id) == n);
    out.root_ = nodes[static_cast<std::size_t>(result)].assigned;
  }

  for (std::size_t v = 0; v < n; ++v) {
    out.child_off_[v + 1] += out.child_off_[v];
  }
  out.child_.resize(out.child_off_[n]);
  if (dense) {
    // The stream collected at node-creation time is the CSR child array
    // (scratch ids are final ids); parents fill in one sequential pass.
    COPATH_DCHECK(child_stream.size() == out.child_off_[n]);
    if (!child_stream.empty()) {
      std::memcpy(out.child_.data(), child_stream.data(),
                  child_stream.size() * sizeof(std::int32_t));
    }
    for (std::size_t v = 0; v < n; ++v) {
      for (std::size_t w = out.child_off_[v]; w < out.child_off_[v + 1];
           ++w) {
        out.parent_[static_cast<std::size_t>(out.child_[w])] =
            static_cast<NodeId>(v);
      }
    }
  } else {
    for (std::size_t v = 0; v < n; ++v) {
      std::size_t w = out.child_off_[v];
      for (std::int32_t c =
               nodes[static_cast<std::size_t>(scratch_of[v])].first_child;
           c != -1; c = nodes[static_cast<std::size_t>(c)].next_sibling) {
        const std::int32_t cid =
            nodes[static_cast<std::size_t>(c)].assigned;
        out.child_[w++] = cid;
        out.parent_[static_cast<std::size_t>(cid)] = static_cast<NodeId>(v);
      }
      COPATH_DCHECK(w == out.child_off_[v + 1]);
    }
  }
  out.postorder_ids_ = true;  // both emission modes number children first
#ifndef NDEBUG
  // The tree is valid by construction (merging enforces alternation,
  // collapsing enforces arity >= 2); re-check in debug builds only — parse
  // sits on the serving hot path and the fuzz/round-trip suites enforce
  // the invariants continuously.
  out.validate();
#endif
  return out;
}

Cotree Cotree::parse_reference(std::string_view text) {
  /// The recursion-era cap: ~1.5-2k ASan frames overflow an 8 MB stack, so
  /// the oracle keeps the historical conservative bound.
  constexpr std::size_t kMaxReferenceDepth = 512;
  CotreeBuilder b;
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < text.size() && is_space(text[i])) ++i;
  };
  std::size_t depth = 0;
  const std::function<NodeId()> parse_expr = [&]() -> NodeId {
    skip_ws();
    COPATH_CHECK_MSG(i < text.size(), "unexpected end of cotree expression");
    if (text[i] == '(') {
      COPATH_CHECK_MSG(++depth <= kMaxReferenceDepth,
                       "cotree expression nests deeper than "
                           << kMaxReferenceDepth);
      ++i;
      skip_ws();
      COPATH_CHECK_MSG(i < text.size() &&
                           (text[i] == '+' || text[i] == '*'),
                       "expected '+' or '*' after '(' at offset " << i);
      const NodeKind k = text[i] == '+' ? NodeKind::Union : NodeKind::Join;
      ++i;
      std::vector<NodeId> kids;
      skip_ws();
      while (i < text.size() && text[i] != ')') {
        kids.push_back(parse_expr());
        skip_ws();
      }
      COPATH_CHECK_MSG(i < text.size(), "missing ')' in cotree expression");
      ++i;  // consume ')'
      --depth;
      COPATH_CHECK_MSG(!kids.empty(), "empty '(…)' in cotree expression");
      if (kids.size() == 1) return kids[0];
      return b.node(k, kids);
    }
    // Leaf identifier.
    const std::size_t start = i;
    while (i < text.size() && !is_space(text[i]) && text[i] != '(' &&
           text[i] != ')') {
      ++i;
    }
    COPATH_CHECK_MSG(i > start, "expected leaf name at offset " << i);
    return b.leaf(std::string(text.substr(start, i - start)));
  };
  const NodeId root = parse_expr();
  skip_ws();
  COPATH_CHECK_MSG(i == text.size(),
                   "trailing characters after cotree expression");
  return std::move(b).build(root);
}

std::string Cotree::format() const {
  if (root_ == kNull) return "()";
  std::string os;
  os.reserve(4 * size());
  const auto append_leaf = [&](NodeId v) {
    const VertexId vx = vertex_of(v);
    const std::string& nm = name_of(vx);
    if (!nm.empty()) {
      os += nm;
    } else {
      append_vertex_token(os, vx);
    }
  };
  if (is_leaf(root_)) {
    append_leaf(root_);
    return os;
  }
  // Iterative pre-order emission (the tree can be Θ(n) deep, so no
  // recursion): one frame per open internal node.
  struct Frame {
    NodeId v;
    std::size_t idx;
  };
  exec::ScratchVec<Frame> st(exec::Arena::for_this_thread());
  os += '(';
  os += kind_char(kind(root_));
  st.push_back(Frame{root_, 0});
  while (!st.empty()) {
    Frame& f = st.back();
    const auto kids = children(f.v);
    if (f.idx == kids.size()) {
      os += ')';
      st.pop_back();
      continue;
    }
    const NodeId child = kids[f.idx++];
    os += ' ';
    if (is_leaf(child)) {
      append_leaf(child);
    } else {
      os += '(';
      os += kind_char(kind(child));
      st.push_back(Frame{child, 0});  // invalidates f; loop re-fetches
    }
  }
  return os;
}

std::string Cotree::to_ascii() const {
  // Iterative (parse admits trees Θ(n) deep, so rendering must not
  // recurse): one shared prefix string grows/shrinks by one 4-char cell
  // per level. Note the *output* is inherently O(depth) bytes per line —
  // rendering a deep comb is the caller's informed choice.
  if (root_ == kNull) return "(empty)\n";
  std::string os;
  std::string prefix;
  const auto label = [&](NodeId v) {
    if (is_leaf(v)) {
      const VertexId vx = vertex_of(v);
      const std::string& nm = name_of(vx);
      if (nm.empty()) {
        append_vertex_token(os, vx);
      } else {
        os += nm;
      }
      os += '\n';
      return;
    }
    os += kind(v) == NodeKind::Union ? "0 (union)\n" : "1 (join)\n";
  };
  label(root_);
  if (is_leaf(root_)) return os;
  /// An internal node whose children are still being emitted; while it is
  /// on top of the stack, `prefix` is exactly its children's line prefix
  /// (`indent` = what to strip when the frame pops: 0 for the root, whose
  /// children render flush left).
  struct Frame {
    NodeId v;
    std::size_t idx;
    std::uint8_t indent;
  };
  std::vector<Frame> st;
  st.push_back(Frame{root_, 0, 0});
  while (!st.empty()) {
    Frame& f = st.back();
    const auto kids = children(f.v);
    if (f.idx == kids.size()) {
      prefix.resize(prefix.size() - f.indent);
      st.pop_back();
      continue;
    }
    const NodeId c = kids[f.idx++];
    const bool last = f.idx == kids.size();
    os += prefix;
    os += last ? "`-- " : "|-- ";
    label(c);
    if (!is_leaf(c)) {
      prefix += last ? "    " : "|   ";
      st.push_back(Frame{c, 0, 4});  // invalidates f; loop re-fetches
    }
  }
  return os;
}

Cotree Cotree::complement() const {
  Cotree out = *this;
  for (auto& k : out.kind_) {
    if (k == NodeKind::Union) {
      k = NodeKind::Join;
    } else if (k == NodeKind::Join) {
      k = NodeKind::Union;
    }
  }
  return out;
}

Cotree Cotree::from_parts(std::vector<NodeKind> kind,
                          std::vector<NodeId> parent, NodeId root) {
  const std::size_t n = kind.size();
  COPATH_CHECK(parent.size() == n);
  Cotree out;
  out.kind_ = std::move(kind);
  out.parent_ = std::move(parent);
  out.root_ = root;
  out.vertex_.assign(n, kNull);
  // Children CSR via counting sort by parent (children in node-id order).
  out.child_off_.assign(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    if (out.parent_[v] != kNull)
      ++out.child_off_[static_cast<std::size_t>(out.parent_[v]) + 1];
  }
  for (std::size_t v = 0; v < n; ++v) out.child_off_[v + 1] += out.child_off_[v];
  out.child_.resize(n == 0 ? 0 : n - 1);
  {
    std::vector<std::size_t> cursor(out.child_off_.begin(),
                                    out.child_off_.end() - 1);
    for (std::size_t v = 0; v < n; ++v) {
      if (out.parent_[v] != kNull) {
        out.child_[cursor[static_cast<std::size_t>(out.parent_[v])]++] =
            static_cast<NodeId>(v);
      }
    }
  }
  // Node ids are post-order iff every parent id exceeds its children's.
  out.postorder_ids_ = true;
  for (std::size_t v = 0; v < n; ++v) {
    if (out.parent_[v] != kNull &&
        out.parent_[v] < static_cast<NodeId>(v)) {
      out.postorder_ids_ = false;
      break;
    }
  }
  // Iterative DFS for vertex numbering (left-to-right leaf order).
  if (n != 0) {
    std::vector<NodeId> stack{root};
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      if (out.is_leaf(v)) {
        const auto vx = static_cast<VertexId>(out.leaf_of_vertex_.size());
        out.vertex_[static_cast<std::size_t>(v)] = vx;
        out.leaf_of_vertex_.push_back(v);
        continue;
      }
      const auto kids = out.children(v);
      for (std::size_t i = kids.size(); i-- > 0;) stack.push_back(kids[i]);
    }
  }
  out.validate();
  return out;
}

NodeId CotreeBuilder::leaf(std::string name) {
  nodes_.push_back(Proto{NodeKind::Leaf, {}, std::move(name), kNull});
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId CotreeBuilder::leaf_with_vertex(VertexId id, std::string name) {
  COPATH_CHECK(id >= 0);
  any_explicit_ = true;
  nodes_.push_back(Proto{NodeKind::Leaf, {}, std::move(name), id});
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId CotreeBuilder::node(NodeKind k, std::span<const NodeId> children) {
  COPATH_CHECK(k != NodeKind::Leaf);
  COPATH_CHECK_MSG(!children.empty(), "internal node needs children");
  for (const NodeId c : children) {
    COPATH_CHECK(c >= 0 && static_cast<std::size_t>(c) < nodes_.size());
  }
  nodes_.push_back(
      Proto{k, std::vector<NodeId>(children.begin(), children.end()), {}});
  return static_cast<NodeId>(nodes_.size() - 1);
}

Cotree CotreeBuilder::build(NodeId root) && {
  COPATH_CHECK(root >= 0 && static_cast<std::size_t>(root) < nodes_.size());
  Cotree out;

  // Normalize recursively: collapse single-child nodes and merge children
  // that share the parent's kind (keeps property (5) for free).
  struct Flat {
    NodeKind kind;
    std::vector<NodeId> children;  // output ids
    VertexId vertex = kNull;
    std::string name;
    VertexId explicit_vertex = kNull;
  };
  std::vector<Flat> flat;
  // normalize(v) returns the output node id representing builder node v.
  const std::function<NodeId(NodeId)> normalize = [&](NodeId v) -> NodeId {
    Proto& p = nodes_[static_cast<std::size_t>(v)];
    if (p.kind == NodeKind::Leaf) {
      flat.push_back(
          Flat{NodeKind::Leaf, {}, 0, std::move(p.name), p.explicit_vertex});
      return static_cast<NodeId>(flat.size() - 1);
    }
    while (p.children.size() == 1) {
      // Single-child wrapper: skip to the child.
      const NodeId only = p.children[0];
      return normalize(only);
    }
    std::vector<NodeId> out_children;
    const std::function<void(NodeId)> absorb = [&](NodeId c) {
      const Proto& q = nodes_[static_cast<std::size_t>(c)];
      if (q.kind == p.kind && q.children.size() > 1) {
        for (const NodeId gc : q.children) absorb(gc);
      } else if (q.kind != NodeKind::Leaf && q.children.size() == 1) {
        absorb(q.children[0]);
      } else {
        out_children.push_back(normalize(c));
      }
    };
    for (const NodeId c : p.children) absorb(c);
    flat.push_back(Flat{p.kind, std::move(out_children), kNull, {}, kNull});
    return static_cast<NodeId>(flat.size() - 1);
  };
  const NodeId out_root = normalize(root);

  const std::size_t n = flat.size();
  out.kind_.resize(n);
  out.parent_.assign(n, kNull);
  out.vertex_.assign(n, kNull);
  out.child_off_.assign(n + 1, 0);
  out.root_ = out_root;

  for (std::size_t v = 0; v < n; ++v) {
    out.kind_[v] = flat[v].kind;
    out.child_off_[v + 1] = flat[v].children.size();
  }
  for (std::size_t v = 0; v < n; ++v) out.child_off_[v + 1] += out.child_off_[v];
  out.child_.resize(out.child_off_[n]);
  {
    std::vector<std::size_t> cursor(out.child_off_.begin(),
                                    out.child_off_.end() - 1);
    for (std::size_t v = 0; v < n; ++v) {
      for (const NodeId c : flat[v].children) {
        out.parent_[static_cast<std::size_t>(c)] = static_cast<NodeId>(v);
        out.child_[cursor[v]++] = c;
      }
    }
  }
  // Vertex numbering: explicit ids if the caller supplied them (all-or-
  // nothing), otherwise leaves in left-to-right (DFS) order so that ids are
  // stable under reconstruction round-trips.
  std::size_t leaf_total = 0;
  for (const auto& f : flat)
    if (f.kind == NodeKind::Leaf) ++leaf_total;
  out.leaf_of_vertex_.assign(leaf_total, kNull);
  out.names_.assign(leaf_total, {});
  VertexId next_vertex = 0;
  const std::function<void(NodeId)> number = [&](NodeId v) {
    const auto u = static_cast<std::size_t>(v);
    if (flat[u].kind == NodeKind::Leaf) {
      VertexId vx;
      if (any_explicit_) {
        vx = flat[u].explicit_vertex;
        COPATH_CHECK_MSG(vx != kNull,
                         "mixed explicit/implicit leaf vertex ids");
        COPATH_CHECK_MSG(
            static_cast<std::size_t>(vx) < leaf_total &&
                out.leaf_of_vertex_[static_cast<std::size_t>(vx)] == kNull,
            "explicit vertex ids must form a bijection onto [0, #leaves)");
      } else {
        vx = next_vertex++;
      }
      out.vertex_[u] = vx;
      out.leaf_of_vertex_[static_cast<std::size_t>(vx)] = v;
      out.names_[static_cast<std::size_t>(vx)] = std::move(flat[u].name);
      return;
    }
    for (const NodeId c : out.children(v)) number(c);
  };
  number(out_root);
  // Drop the names vector entirely if nobody supplied names.
  bool any_named = false;
  for (const auto& nm : out.names_) {
    if (!nm.empty()) {
      any_named = true;
      break;
    }
  }
  if (!any_named) out.names_.clear();

  out.postorder_ids_ = true;  // flat ids are normalize()'s post-order
  out.validate();
  return out;
}

}  // namespace copath::cograph
