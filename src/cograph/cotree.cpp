#include "cograph/cotree.hpp"

#include <functional>
#include <sstream>

namespace copath::cograph {

const std::string& Cotree::name_of(VertexId v) const {
  static const std::string kEmpty;
  const auto u = static_cast<std::size_t>(v);
  if (u < names_.size() && !names_[u].empty()) return names_[u];
  return kEmpty;
}

void Cotree::validate() const {
  const std::size_t n = size();
  COPATH_CHECK(parent_.size() == n && vertex_.size() == n);
  COPATH_CHECK(child_off_.size() == n + 1);
  if (n == 0) {
    COPATH_CHECK(root_ == kNull);
    return;
  }
  COPATH_CHECK(root_ >= 0 && static_cast<std::size_t>(root_) < n);
  COPATH_CHECK(parent(root_) == kNull);
  std::size_t roots = 0;
  std::size_t leaves = 0;
  for (std::size_t v = 0; v < n; ++v) {
    const auto id = static_cast<NodeId>(v);
    if (parent_[v] == kNull) ++roots;
    if (kind_[v] == NodeKind::Leaf) {
      ++leaves;
      COPATH_CHECK_MSG(children(id).empty(), "leaf " << v << " has children");
      const VertexId vx = vertex_[v];
      COPATH_CHECK(vx >= 0 &&
                   static_cast<std::size_t>(vx) < leaf_of_vertex_.size());
      COPATH_CHECK_MSG(leaf_of_vertex_[static_cast<std::size_t>(vx)] == id,
                       "vertex<->leaf mapping broken at vertex " << vx);
    } else {
      // Property (4): every internal node has at least two children.
      COPATH_CHECK_MSG(child_count(id) >= 2,
                       "internal node " << v << " has "
                                        << child_count(id) << " child(ren)");
      for (const NodeId c : children(id)) {
        COPATH_CHECK(parent(c) == id);
        // Property (5): labels alternate along every root path.
        COPATH_CHECK_MSG(kind(c) != kind_[v],
                         "labels fail to alternate at node " << v);
      }
    }
  }
  COPATH_CHECK_MSG(roots == 1, "expected exactly one root, got " << roots);
  COPATH_CHECK(leaves == leaf_of_vertex_.size());
}

Cotree Cotree::parse(std::string_view text) {
  CotreeBuilder b;
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < text.size() && (text[i] == ' ' || text[i] == '\t' ||
                               text[i] == '\n' || text[i] == '\r')) {
      ++i;
    }
  };
  std::size_t depth = 0;
  const std::function<NodeId()> parse_expr = [&]() -> NodeId {
    skip_ws();
    COPATH_CHECK_MSG(i < text.size(), "unexpected end of cotree expression");
    if (text[i] == '(') {
      COPATH_CHECK_MSG(++depth <= kMaxParseDepth,
                       "cotree expression nests deeper than "
                           << kMaxParseDepth);
      ++i;
      skip_ws();
      COPATH_CHECK_MSG(i < text.size() &&
                           (text[i] == '+' || text[i] == '*'),
                       "expected '+' or '*' after '(' at offset " << i);
      const NodeKind k = text[i] == '+' ? NodeKind::Union : NodeKind::Join;
      ++i;
      std::vector<NodeId> kids;
      skip_ws();
      while (i < text.size() && text[i] != ')') {
        kids.push_back(parse_expr());
        skip_ws();
      }
      COPATH_CHECK_MSG(i < text.size(), "missing ')' in cotree expression");
      ++i;  // consume ')'
      --depth;
      COPATH_CHECK_MSG(!kids.empty(), "empty '(…)' in cotree expression");
      if (kids.size() == 1) return kids[0];
      return b.node(k, kids);
    }
    // Leaf identifier.
    const std::size_t start = i;
    while (i < text.size() && text[i] != ' ' && text[i] != '\t' &&
           text[i] != '\n' && text[i] != '\r' && text[i] != '(' &&
           text[i] != ')') {
      ++i;
    }
    COPATH_CHECK_MSG(i > start, "expected leaf name at offset " << i);
    return b.leaf(std::string(text.substr(start, i - start)));
  };
  const NodeId root = parse_expr();
  skip_ws();
  COPATH_CHECK_MSG(i == text.size(),
                   "trailing characters after cotree expression");
  return std::move(b).build(root);
}

std::string Cotree::format() const {
  std::ostringstream os;
  const std::function<void(NodeId)> rec = [&](NodeId v) {
    if (is_leaf(v)) {
      const VertexId vx = vertex_of(v);
      const std::string& nm = name_of(vx);
      if (!nm.empty()) {
        os << nm;
      } else {
        os << 'v' << vx;
      }
      return;
    }
    os << '(' << kind_char(kind(v));
    for (const NodeId c : children(v)) {
      os << ' ';
      rec(c);
    }
    os << ')';
  };
  if (root_ == kNull) return "()";
  rec(root_);
  return os.str();
}

std::string Cotree::to_ascii() const {
  std::ostringstream os;
  const std::function<void(NodeId, const std::string&, bool, bool)> rec =
      [&](NodeId v, const std::string& prefix, bool last, bool is_root) {
        if (!is_root) os << prefix << (last ? "`-- " : "|-- ");
        if (is_leaf(v)) {
          const VertexId vx = vertex_of(v);
          const std::string& nm = name_of(vx);
          os << (nm.empty() ? "v" + std::to_string(vx) : nm) << '\n';
          return;
        }
        os << (kind(v) == NodeKind::Union ? "0 (union)" : "1 (join)") << '\n';
        const auto kids = children(v);
        const std::string child_prefix =
            is_root ? "" : prefix + (last ? "    " : "|   ");
        for (std::size_t idx = 0; idx < kids.size(); ++idx) {
          rec(kids[idx], child_prefix, idx + 1 == kids.size(), false);
        }
      };
  if (root_ == kNull) return "(empty)\n";
  rec(root_, "", true, true);
  return os.str();
}

Cotree Cotree::complement() const {
  Cotree out = *this;
  for (auto& k : out.kind_) {
    if (k == NodeKind::Union) {
      k = NodeKind::Join;
    } else if (k == NodeKind::Join) {
      k = NodeKind::Union;
    }
  }
  return out;
}

Cotree Cotree::from_parts(std::vector<NodeKind> kind,
                          std::vector<NodeId> parent, NodeId root) {
  const std::size_t n = kind.size();
  COPATH_CHECK(parent.size() == n);
  Cotree out;
  out.kind_ = std::move(kind);
  out.parent_ = std::move(parent);
  out.root_ = root;
  out.vertex_.assign(n, kNull);
  // Children CSR via counting sort by parent (children in node-id order).
  out.child_off_.assign(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    if (out.parent_[v] != kNull)
      ++out.child_off_[static_cast<std::size_t>(out.parent_[v]) + 1];
  }
  for (std::size_t v = 0; v < n; ++v) out.child_off_[v + 1] += out.child_off_[v];
  out.child_.resize(n == 0 ? 0 : n - 1);
  {
    std::vector<std::size_t> cursor(out.child_off_.begin(),
                                    out.child_off_.end() - 1);
    for (std::size_t v = 0; v < n; ++v) {
      if (out.parent_[v] != kNull) {
        out.child_[cursor[static_cast<std::size_t>(out.parent_[v])]++] =
            static_cast<NodeId>(v);
      }
    }
  }
  // Iterative DFS for vertex numbering (left-to-right leaf order).
  if (n != 0) {
    std::vector<NodeId> stack{root};
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      if (out.is_leaf(v)) {
        const auto vx = static_cast<VertexId>(out.leaf_of_vertex_.size());
        out.vertex_[static_cast<std::size_t>(v)] = vx;
        out.leaf_of_vertex_.push_back(v);
        continue;
      }
      const auto kids = out.children(v);
      for (std::size_t i = kids.size(); i-- > 0;) stack.push_back(kids[i]);
    }
  }
  out.validate();
  return out;
}

NodeId CotreeBuilder::leaf(std::string name) {
  nodes_.push_back(Proto{NodeKind::Leaf, {}, std::move(name), kNull});
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId CotreeBuilder::leaf_with_vertex(VertexId id, std::string name) {
  COPATH_CHECK(id >= 0);
  any_explicit_ = true;
  nodes_.push_back(Proto{NodeKind::Leaf, {}, std::move(name), id});
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId CotreeBuilder::node(NodeKind k, const std::vector<NodeId>& children) {
  COPATH_CHECK(k != NodeKind::Leaf);
  COPATH_CHECK_MSG(!children.empty(), "internal node needs children");
  for (const NodeId c : children) {
    COPATH_CHECK(c >= 0 && static_cast<std::size_t>(c) < nodes_.size());
  }
  nodes_.push_back(Proto{k, children, {}});
  return static_cast<NodeId>(nodes_.size() - 1);
}

Cotree CotreeBuilder::build(NodeId root) && {
  COPATH_CHECK(root >= 0 && static_cast<std::size_t>(root) < nodes_.size());
  Cotree out;

  // Normalize recursively: collapse single-child nodes and merge children
  // that share the parent's kind (keeps property (5) for free).
  struct Flat {
    NodeKind kind;
    std::vector<NodeId> children;  // output ids
    VertexId vertex = kNull;
    std::string name;
    VertexId explicit_vertex = kNull;
  };
  std::vector<Flat> flat;
  // normalize(v) returns the output node id representing builder node v.
  const std::function<NodeId(NodeId)> normalize = [&](NodeId v) -> NodeId {
    Proto& p = nodes_[static_cast<std::size_t>(v)];
    if (p.kind == NodeKind::Leaf) {
      flat.push_back(
          Flat{NodeKind::Leaf, {}, 0, std::move(p.name), p.explicit_vertex});
      return static_cast<NodeId>(flat.size() - 1);
    }
    while (p.children.size() == 1) {
      // Single-child wrapper: skip to the child.
      const NodeId only = p.children[0];
      return normalize(only);
    }
    std::vector<NodeId> out_children;
    const std::function<void(NodeId)> absorb = [&](NodeId c) {
      const Proto& q = nodes_[static_cast<std::size_t>(c)];
      if (q.kind == p.kind && q.children.size() > 1) {
        for (const NodeId gc : q.children) absorb(gc);
      } else if (q.kind != NodeKind::Leaf && q.children.size() == 1) {
        absorb(q.children[0]);
      } else {
        out_children.push_back(normalize(c));
      }
    };
    for (const NodeId c : p.children) absorb(c);
    flat.push_back(Flat{p.kind, std::move(out_children), kNull, {}, kNull});
    return static_cast<NodeId>(flat.size() - 1);
  };
  const NodeId out_root = normalize(root);

  const std::size_t n = flat.size();
  out.kind_.resize(n);
  out.parent_.assign(n, kNull);
  out.vertex_.assign(n, kNull);
  out.child_off_.assign(n + 1, 0);
  out.root_ = out_root;

  for (std::size_t v = 0; v < n; ++v) {
    out.kind_[v] = flat[v].kind;
    out.child_off_[v + 1] = flat[v].children.size();
  }
  for (std::size_t v = 0; v < n; ++v) out.child_off_[v + 1] += out.child_off_[v];
  out.child_.resize(out.child_off_[n]);
  {
    std::vector<std::size_t> cursor(out.child_off_.begin(),
                                    out.child_off_.end() - 1);
    for (std::size_t v = 0; v < n; ++v) {
      for (const NodeId c : flat[v].children) {
        out.parent_[static_cast<std::size_t>(c)] = static_cast<NodeId>(v);
        out.child_[cursor[v]++] = c;
      }
    }
  }
  // Vertex numbering: explicit ids if the caller supplied them (all-or-
  // nothing), otherwise leaves in left-to-right (DFS) order so that ids are
  // stable under reconstruction round-trips.
  std::size_t leaf_total = 0;
  for (const auto& f : flat)
    if (f.kind == NodeKind::Leaf) ++leaf_total;
  out.leaf_of_vertex_.assign(leaf_total, kNull);
  out.names_.assign(leaf_total, {});
  VertexId next_vertex = 0;
  const std::function<void(NodeId)> number = [&](NodeId v) {
    const auto u = static_cast<std::size_t>(v);
    if (flat[u].kind == NodeKind::Leaf) {
      VertexId vx;
      if (any_explicit_) {
        vx = flat[u].explicit_vertex;
        COPATH_CHECK_MSG(vx != kNull,
                         "mixed explicit/implicit leaf vertex ids");
        COPATH_CHECK_MSG(
            static_cast<std::size_t>(vx) < leaf_total &&
                out.leaf_of_vertex_[static_cast<std::size_t>(vx)] == kNull,
            "explicit vertex ids must form a bijection onto [0, #leaves)");
      } else {
        vx = next_vertex++;
      }
      out.vertex_[u] = vx;
      out.leaf_of_vertex_[static_cast<std::size_t>(vx)] = v;
      out.names_[static_cast<std::size_t>(vx)] = std::move(flat[u].name);
      return;
    }
    for (const NodeId c : out.children(v)) number(c);
  };
  number(out_root);
  // Drop the names vector entirely if nobody supplied names.
  bool any_named = false;
  for (const auto& nm : out.names_) {
    if (!nm.empty()) {
      any_named = true;
      break;
    }
  }
  if (!any_named) out.names_.clear();

  out.validate();
  return out;
}

}  // namespace copath::cograph
