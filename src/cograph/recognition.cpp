#include "cograph/recognition.hpp"

#include <algorithm>
#include <functional>
#include <numeric>

namespace copath::cograph {

namespace {

/// Connected components of g restricted to `sub`; returns vertex lists.
std::vector<std::vector<VertexId>> components(
    const Graph& g, const std::vector<VertexId>& sub) {
  static thread_local std::vector<std::int8_t> mark;  // 0 out, 1 in, 2 done
  mark.assign(g.vertex_count(), 0);
  for (const VertexId v : sub) mark[static_cast<std::size_t>(v)] = 1;
  std::vector<std::vector<VertexId>> comps;
  std::vector<VertexId> queue;
  for (const VertexId s : sub) {
    if (mark[static_cast<std::size_t>(s)] != 1) continue;
    comps.emplace_back();
    queue.assign(1, s);
    mark[static_cast<std::size_t>(s)] = 2;
    while (!queue.empty()) {
      const VertexId v = queue.back();
      queue.pop_back();
      comps.back().push_back(v);
      for (const VertexId w : g.neighbors(v)) {
        if (mark[static_cast<std::size_t>(w)] == 1) {
          mark[static_cast<std::size_t>(w)] = 2;
          queue.push_back(w);
        }
      }
    }
  }
  return comps;
}

/// Connected components of the COMPLEMENT of g restricted to `sub`, using
/// the "remaining set" trick: BFS where a step visits every remaining
/// vertex *not* adjacent to the current one — O(|sub| + edges scanned).
std::vector<std::vector<VertexId>> co_components(
    const Graph& g, const std::vector<VertexId>& sub) {
  static thread_local std::vector<std::int8_t> state;  // 0: out, 1: remaining
  state.assign(g.vertex_count(), 0);
  std::vector<VertexId> remaining = sub;
  for (const VertexId v : sub) state[static_cast<std::size_t>(v)] = 1;
  std::vector<std::vector<VertexId>> comps;
  std::vector<VertexId> queue;
  static thread_local std::vector<std::int8_t> adj_mark;
  adj_mark.assign(g.vertex_count(), 0);
  const auto take = [&](VertexId v) {
    state[static_cast<std::size_t>(v)] = 0;
    remaining.erase(std::find(remaining.begin(), remaining.end(), v));
  };
  while (!remaining.empty()) {
    const VertexId s = remaining.back();
    comps.emplace_back();
    take(s);
    queue.assign(1, s);
    while (!queue.empty()) {
      const VertexId v = queue.back();
      queue.pop_back();
      comps.back().push_back(v);
      // Mark v's neighbours, sweep the remaining set for non-neighbours.
      for (const VertexId w : g.neighbors(v))
        adj_mark[static_cast<std::size_t>(w)] = 1;
      std::vector<VertexId> grabbed;
      for (const VertexId w : remaining) {
        if (!adj_mark[static_cast<std::size_t>(w)]) grabbed.push_back(w);
      }
      for (const VertexId w : g.neighbors(v))
        adj_mark[static_cast<std::size_t>(w)] = 0;
      for (const VertexId w : grabbed) {
        state[static_cast<std::size_t>(w)] = 0;
        queue.push_back(w);
      }
      if (!grabbed.empty()) {
        std::erase_if(remaining, [&](VertexId w) {
          return state[static_cast<std::size_t>(w)] == 0;
        });
      }
    }
  }
  return comps;
}

/// Finds an induced P4 a-b-c-d in g restricted to `sub` (must exist when
/// the subgraph is connected and co-connected with >= 2 vertices).
std::vector<VertexId> find_p4(const Graph& g,
                              const std::vector<VertexId>& sub) {
  for (const VertexId b : sub) {
    for (const VertexId c : g.neighbors(b)) {
      for (const VertexId a : sub) {
        if (a == b || a == c || !g.has_edge(a, b) || g.has_edge(a, c))
          continue;
        for (const VertexId d : sub) {
          if (d == a || d == b || d == c) continue;
          if (g.has_edge(c, d) && !g.has_edge(b, d) && !g.has_edge(a, d))
            return {a, b, c, d};
        }
      }
    }
  }
  return {};
}

}  // namespace

RecognitionResult recognize_cograph(const Graph& g) {
  RecognitionResult result;
  const std::size_t n = g.vertex_count();
  if (n == 0) {
    result.cotree = Cotree{};
    return result;
  }
  CotreeBuilder b;
  bool failed = false;
  // Explicit work-stack recursion (subset, phase) to survive deep cotrees.
  const std::function<NodeId(const std::vector<VertexId>&)> solve =
      [&](const std::vector<VertexId>& sub) -> NodeId {
    if (failed) return 0;
    if (sub.size() == 1) return b.leaf_with_vertex(sub[0]);
    auto comps = components(g, sub);
    if (comps.size() > 1) {
      std::vector<NodeId> kids;
      kids.reserve(comps.size());
      for (const auto& comp : comps) kids.push_back(solve(comp));
      return failed ? 0 : b.unite(kids);
    }
    auto cocs = co_components(g, sub);
    if (cocs.size() > 1) {
      std::vector<NodeId> kids;
      kids.reserve(cocs.size());
      for (const auto& coc : cocs) kids.push_back(solve(coc));
      return failed ? 0 : b.join(kids);
    }
    // Connected and co-connected: not a cograph.
    failed = true;
    result.p4_witness = find_p4(g, sub);
    return 0;
  };
  std::vector<VertexId> all(n);
  std::iota(all.begin(), all.end(), 0);
  const NodeId root = solve(all);
  if (!failed) result.cotree = std::move(b).build(root);
  return result;
}

}  // namespace copath::cograph
