// Explicit graph view of a cograph, plus an O(1) adjacency oracle.
//
// Cographs are frequently dense (a join doubles edge counts), so the
// explicit adjacency-list materialization is meant for small and medium
// instances (tests, examples, the recognizer). Large-scale adjacency
// queries — the path cover validator runs one per reported edge — go
// through CotreeAdjacency, which answers "is (x, y) an edge?" via property
// (6): the LCA of the two leaves is a 1-node. LCA is classic Euler tour +
// sparse-table RMQ, O(n log n) preprocessing and O(1) per query.
#pragma once

#include <cstdint>
#include <vector>

#include "cograph/cotree.hpp"

namespace copath::cograph {

class Graph {
 public:
  Graph() = default;
  explicit Graph(std::size_t n) : adj_(n) {}

  [[nodiscard]] std::size_t vertex_count() const { return adj_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edges_; }

  void add_edge(VertexId u, VertexId v);
  /// Sorts adjacency lists; required before has_edge after manual
  /// add_edge calls (from_cotree finalizes automatically).
  void finalize();
  [[nodiscard]] bool has_edge(VertexId u, VertexId v) const;
  [[nodiscard]] const std::vector<VertexId>& neighbors(VertexId u) const {
    return adj_[static_cast<std::size_t>(u)];
  }

  /// Materializes the cograph described by a cotree. O(n + m) with m the
  /// number of edges (which may be Theta(n^2)).
  static Graph from_cotree(const Cotree& t);

  /// The complement graph. O(n^2).
  [[nodiscard]] Graph complement() const;

 private:
  std::vector<std::vector<VertexId>> adj_;
  std::size_t edges_ = 0;
  bool sorted_ = true;
};

/// Constant-time cograph adjacency oracle backed by the cotree.
class CotreeAdjacency {
 public:
  explicit CotreeAdjacency(const Cotree& t);

  /// True iff vertices u and v are adjacent in the cograph (u != v).
  [[nodiscard]] bool adjacent(VertexId u, VertexId v) const {
    return tree_->kind(lca_leaf(u, v)) == NodeKind::Join;
  }

  /// Lowest common ancestor of the leaves of two vertices.
  [[nodiscard]] NodeId lca_leaf(VertexId u, VertexId v) const;

 private:
  const Cotree* tree_;
  std::vector<NodeId> euler_;        // node at each tour slot
  std::vector<std::int32_t> depth_;  // depth at each tour slot
  std::vector<std::size_t> first_;   // first tour slot per node
  std::vector<std::vector<std::size_t>> sparse_;  // RMQ table (argmin slots)
  std::vector<std::uint32_t> log2_;
};

}  // namespace copath::cograph
