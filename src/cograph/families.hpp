// Cograph instance generators: the paper's constructions, classic cograph
// families, and random cotrees for the test/benchmark sweeps.
#pragma once

#include <cstdint>
#include <vector>

#include "cograph/cotree.hpp"
#include "util/rng.hpp"

namespace copath::cograph {

/// K_n — a clique (join of n leaves). Hamiltonian for n >= 1.
Cotree clique(std::size_t n);

/// The empty graph on n vertices (union of n leaves): the path cover is n
/// singleton paths.
Cotree independent_set(std::size_t n);

/// Complete bipartite K_{a,b} = join(union^a, union^b).
Cotree complete_bipartite(std::size_t a, std::size_t b);

/// Complete multipartite graph with the given part sizes.
Cotree complete_multipartite(const std::vector<std::size_t>& parts);

/// Star K_{1,n} (a join of one center with an n-leaf union).
Cotree star(std::size_t n);

/// Threshold graph from a creation sequence: bits[i] == 1 adds a dominating
/// vertex (join), 0 adds an isolated vertex (union). Threshold graphs are a
/// classic cograph subclass; they exercise deep alternating cotrees.
Cotree threshold_graph(const std::vector<std::uint8_t>& bits);

/// The paper's Theorem 2.2 lower-bound instance (Fig 2): root R is a 0-node
/// with children {x, u} ∪ {a_i : b_i = 0}; u is a 1-node with children
/// {y, z} ∪ {a_i : b_i = 1}. The graph's minimum path cover has
/// (#zero-bits) + 2 paths, i.e. fewer than n + 2 iff OR(b) = 1.
Cotree or_instance(const std::vector<std::uint8_t>& bits);

/// The running example of the paper's §4 (Fig 10):
/// (* (+ (* a b) c) (+ d e f)) — two primary vertices {a, c}, inserts
/// {b, e, f}, bridge {d}; Hamiltonian.
Cotree paper_fig10();

/// A "caterpillar" cotree of maximum height: T_1 = leaf,
/// T_{i+1} = join/union(T_i, leaf) with alternating labels. Produces the
/// worst case (height Θ(n)) for the naive parallelization baseline.
/// `top` selects the root label.
Cotree caterpillar(std::size_t n, NodeKind top = NodeKind::Join);

struct RandomCotreeOptions {
  std::uint64_t seed = 1;
  /// Mean number of children per internal node (>= 2; children counts are
  /// 2 + Geometric).
  double mean_arity = 2.8;
  /// Probability that the root is a join node.
  double join_root_probability = 0.5;
  /// Skew of child subtree sizes: 0 = balanced random splits, towards 1 =
  /// increasingly lopsided (deep) trees.
  double skew = 0.0;
};

/// Uniform-ish random cotree with `vertices` leaves. Shape is controlled by
/// RandomCotreeOptions; labels alternate by construction.
Cotree random_cotree(std::size_t vertices, const RandomCotreeOptions& opt);

}  // namespace copath::cograph
