// Canonical form of a cotree modulo commutativity and leaf relabeling.
//
// The paper's cotree is unique for a cograph only up to the order of each
// internal node's children (+ and * are commutative) and the identity of
// the leaves. Many distinct inputs — permuted algebra text, relabeled
// graphs, repeated batch entries — therefore resolve to the *same* tree in
// that quotient. `canonical_form` computes a representative of the
// equivalence class:
//
//  * `key`   — the canonical algebra string with anonymous leaves and every
//              child list sorted by a label-free total order on subtrees.
//              Two cotrees have equal keys iff they are isomorphic modulo
//              commutativity and relabeling (the string *is* the class).
//  * `hash`  — a 64-bit structural hash of `key`'s tree, computed
//              bottom-up (cheap shard/bucket index; `key` is the
//              collision-proof check).
//  * `to_canonical` / `from_canonical` — mutually inverse vertex
//              permutations between this cotree's vertex ids and the
//              canonical tree's leaf slots (leaves numbered left-to-right
//              in the canonical child order). `from_canonical` is a graph
//              isomorphism from the canonical cograph onto this one, so a
//              path cover computed on any member of the class transfers to
//              any other member by composing the two maps.
//
// This is what makes result memoization sound: the service layer keys its
// cache on (hash, key) and stores covers in canonical leaf slots; a hit on
// a permuted or relabeled twin is replayed through that instance's own
// `from_canonical`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cograph/cotree.hpp"

namespace copath::cograph {

/// Byte tags of the binary structural signature (see
/// CanonicalForm::signature).
inline constexpr char kSigLeaf = '\x00';
inline constexpr char kSigUnion = '\x01';
inline constexpr char kSigJoin = '\x02';

struct CanonicalForm {
  /// 64-bit structural hash of the canonical tree (bottom-up, order-free
  /// per child list). Equal for every member of the equivalence class.
  std::uint64_t hash = 0;
  /// The canonical algebra string, e.g. "(* v (+ v v))" — children sorted,
  /// leaves anonymized. The human-readable face of the class (itself
  /// parseable, used by tests and debugging output). Empty when the form
  /// was computed with with_algebra_key == false (the serving hot path:
  /// Instance::canonical() — the cache keys on `signature`, never on
  /// this).
  std::string key;
  /// The compact binary identity of the class: the canonical tree's
  /// post-order kind/arity stream, ~1-2 bytes per node. Per node, in
  /// canonical child order, children before parents:
  ///   leaf            -> kSigLeaf
  ///   union, arity k  -> kSigUnion then LEB128(k)
  ///   join,  arity k  -> kSigJoin  then LEB128(k)
  /// Injective on canonical trees: a stack machine decodes the stream
  /// right back (leaf pushes a subtree; an internal tag pops its k
  /// children), so distinct trees cannot share a stream — the same
  /// uniqueness `key` carries, at a quarter of the bytes and a memcmp
  /// instead of a parse-shaped compare. This is what the service cache
  /// keys on (service/result_cache.hpp).
  std::string signature;
  /// to_canonical[v] = canonical leaf slot of this cotree's vertex v.
  std::vector<VertexId> to_canonical;
  /// from_canonical[s] = this cotree's vertex at canonical slot s
  /// (inverse of to_canonical; an isomorphism canonical -> this graph).
  std::vector<VertexId> from_canonical;
};

/// Computes the canonical form. O(n log n): one bottom-up hashing pass plus
/// a comparison sort of every child list (ties broken by a structural
/// subtree comparison, so the order is total and deterministic even under
/// hash collisions). `with_algebra_key` controls whether the human-facing
/// `key` string is emitted alongside the binary signature; the serving
/// path skips it.
[[nodiscard]] CanonicalForm canonical_form(const Cotree& t,
                                           bool with_algebra_key);
[[nodiscard]] inline CanonicalForm canonical_form(const Cotree& t) {
  return canonical_form(t, /*with_algebra_key=*/true);
}

}  // namespace copath::cograph
