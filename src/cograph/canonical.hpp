// Canonical form of a cotree modulo commutativity and leaf relabeling.
//
// The paper's cotree is unique for a cograph only up to the order of each
// internal node's children (+ and * are commutative) and the identity of
// the leaves. Many distinct inputs — permuted algebra text, relabeled
// graphs, repeated batch entries — therefore resolve to the *same* tree in
// that quotient. `canonical_form` computes a representative of the
// equivalence class:
//
//  * `key`   — the canonical algebra string with anonymous leaves and every
//              child list sorted by a label-free total order on subtrees.
//              Two cotrees have equal keys iff they are isomorphic modulo
//              commutativity and relabeling (the string *is* the class).
//  * `hash`  — a 64-bit structural hash of `key`'s tree, computed
//              bottom-up (cheap shard/bucket index; `key` is the
//              collision-proof check).
//  * `to_canonical` / `from_canonical` — mutually inverse vertex
//              permutations between this cotree's vertex ids and the
//              canonical tree's leaf slots (leaves numbered left-to-right
//              in the canonical child order). `from_canonical` is a graph
//              isomorphism from the canonical cograph onto this one, so a
//              path cover computed on any member of the class transfers to
//              any other member by composing the two maps.
//
// This is what makes result memoization sound: the service layer keys its
// cache on (hash, key) and stores covers in canonical leaf slots; a hit on
// a permuted or relabeled twin is replayed through that instance's own
// `from_canonical`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cograph/cotree.hpp"

namespace copath::cograph {

/// Byte tags of the binary structural signature (see
/// CanonicalForm::signature).
inline constexpr char kSigLeaf = '\x00';
inline constexpr char kSigUnion = '\x01';
inline constexpr char kSigJoin = '\x02';

struct CanonicalForm {
  /// 64-bit structural hash of the canonical tree (bottom-up, order-free
  /// per child list). Equal for every member of the equivalence class.
  std::uint64_t hash = 0;
  /// The canonical algebra string, e.g. "(* v (+ v v))" — children sorted,
  /// leaves anonymized. The human-readable face of the class (itself
  /// parseable, used by tests and debugging output). Empty when the form
  /// was computed with with_algebra_key == false (the serving hot path:
  /// Instance::canonical() — the cache keys on `signature`, never on
  /// this).
  std::string key;
  /// The compact binary identity of the class: the canonical tree's
  /// post-order kind/arity stream, ~1-2 bytes per node. Per node, in
  /// canonical child order, children before parents:
  ///   leaf            -> kSigLeaf
  ///   union, arity k  -> kSigUnion then LEB128(k)
  ///   join,  arity k  -> kSigJoin  then LEB128(k)
  /// Injective on canonical trees: a stack machine decodes the stream
  /// right back (leaf pushes a subtree; an internal tag pops its k
  /// children), so distinct trees cannot share a stream — the same
  /// uniqueness `key` carries, at a quarter of the bytes and a memcmp
  /// instead of a parse-shaped compare. This is what the service cache
  /// keys on (service/result_cache.hpp).
  std::string signature;
  /// to_canonical[v] = canonical leaf slot of this cotree's vertex v.
  std::vector<VertexId> to_canonical;
  /// from_canonical[s] = this cotree's vertex at canonical slot s
  /// (inverse of to_canonical; an isomorphism canonical -> this graph).
  std::vector<VertexId> from_canonical;
};

/// Computes the canonical form. O(n log n): one bottom-up hashing pass plus
/// a comparison sort of every child list (ties broken by a structural
/// subtree comparison, so the order is total and deterministic even under
/// hash collisions). `with_algebra_key` controls whether the human-facing
/// `key` string is emitted alongside the binary signature; the serving
/// path skips it.
[[nodiscard]] CanonicalForm canonical_form(const Cotree& t,
                                           bool with_algebra_key);
[[nodiscard]] inline CanonicalForm canonical_form(const Cotree& t) {
  return canonical_form(t, /*with_algebra_key=*/true);
}

// --------------------------------------------------- untrusted signatures
//
// Signature bytes that arrive over a socket (net/protocol.hpp's
// SolveSignature frames) are attacker-controlled: truncated LEB128 runs,
// impossible arities, forests that never reduce to one root, and
// node-count bombs must all be rejected with a structured error before any
// array is sized from them. `signature_valid` runs the full stack-machine
// check without building anything; `decode_signature` additionally
// materializes the cotree the stream describes plus its CanonicalForm.
//
// Because the decoded tree's node ids are exactly the stream's post-order
// and its children keep the stream's child order, the decoded tree IS the
// canonical representative of the bytes: leaf slots equal vertex ids
// (identity to/from_canonical) and the structural hash folds in the same
// pass as the decode — no child sorting, no tie-breaks. That is the
// signature fast path the daemon serves hot clients from: a signature
// request skips text parsing AND the canonicalizer's comparison sorts.
//
// Trust boundary: validation guarantees the bytes describe a structurally
// valid cotree (arity >= 2, alternating kinds, one root, bounded size); it
// does NOT re-sort child lists, so a syntactically valid but
// non-canonically-ordered stream is accepted and simply acts as its own
// cache identity (a duplicate cache entry for the class — wasteful for the
// sender, never an incorrect result, since the cover is computed/replayed
// on the decoded tree itself).

/// Upper bound on the cotree node count a decoded signature may describe
/// (an n-leaf cotree has < 2n nodes, so this admits ~2M-vertex instances
/// while refusing length-prefix bombs long before allocation).
inline constexpr std::size_t kMaxSignatureNodes = std::size_t{1} << 22;

/// Full structural validation of untrusted signature bytes. Returns true
/// iff `decode_signature` would succeed; on failure `why` (when non-null)
/// receives the structured reason. Never throws, never allocates
/// proportionally to claimed (undecoded) sizes.
[[nodiscard]] bool signature_valid(std::string_view signature,
                                   std::string* why = nullptr,
                                   std::size_t max_nodes = kMaxSignatureNodes);

struct DecodedSignature {
  Cotree tree;
  /// form.signature owns a copy of the input bytes; to/from_canonical are
  /// identities; form.hash is the same fold canonical_form computes.
  CanonicalForm form;
};

/// Decodes untrusted signature bytes into the cotree they describe (throws
/// util::CheckError with the signature_valid reason on malformed input).
[[nodiscard]] DecodedSignature decode_signature(
    std::string_view signature, std::size_t max_nodes = kMaxSignatureNodes);

/// The CanonicalForm of signature bytes WITHOUT materializing the cotree:
/// one validating walk computes the structural hash and leaf count, and
/// the permutations are identities by the decode argument above. This is
/// the warm serving path — a cache hit replays the stored result through
/// the form alone, so the tree build (and its allocations) is deferred to
/// the miss path that actually solves. Throws like decode_signature.
[[nodiscard]] CanonicalForm decode_signature_form(
    std::string_view signature, std::size_t max_nodes = kMaxSignatureNodes);

}  // namespace copath::cograph
