#include "cograph/families.hpp"

#include <algorithm>

namespace copath::cograph {

namespace {

/// Flat star-shaped cotree: one internal node of `k` over n leaves.
Cotree flat(NodeKind k, std::size_t n) {
  COPATH_CHECK(n > 0);
  if (n == 1) {
    CotreeBuilder b;
    const NodeId l = b.leaf();
    return std::move(b).build(l);
  }
  std::vector<NodeKind> kind(n + 1, NodeKind::Leaf);
  std::vector<NodeId> parent(n + 1, 0);
  kind[0] = k;
  parent[0] = kNull;
  return Cotree::from_parts(std::move(kind), std::move(parent), 0);
}

}  // namespace

Cotree clique(std::size_t n) { return flat(NodeKind::Join, n); }

Cotree independent_set(std::size_t n) { return flat(NodeKind::Union, n); }

Cotree complete_bipartite(std::size_t a, std::size_t b) {
  return complete_multipartite({a, b});
}

Cotree complete_multipartite(const std::vector<std::size_t>& parts) {
  COPATH_CHECK(!parts.empty());
  CotreeBuilder b;
  std::vector<NodeId> tops;
  tops.reserve(parts.size());
  for (const std::size_t p : parts) {
    COPATH_CHECK(p > 0);
    if (p == 1) {
      tops.push_back(b.leaf());
      continue;
    }
    std::vector<NodeId> leaves(p);
    for (auto& l : leaves) l = b.leaf();
    tops.push_back(b.unite(leaves));
  }
  const NodeId root = tops.size() == 1 ? tops[0] : b.join(tops);
  return std::move(b).build(root);
}

Cotree star(std::size_t n) { return complete_multipartite({1, n}); }

Cotree threshold_graph(const std::vector<std::uint8_t>& bits) {
  // Build iteratively: current = cotree-so-far; adding a dominating vertex
  // joins a leaf, adding an isolated vertex unions a leaf.
  std::vector<NodeKind> kind;
  std::vector<NodeId> parent;
  kind.push_back(NodeKind::Leaf);  // the first vertex
  parent.push_back(kNull);
  NodeId root = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const NodeKind want = bits[i] ? NodeKind::Join : NodeKind::Union;
    const auto leaf = static_cast<NodeId>(kind.size());
    kind.push_back(NodeKind::Leaf);
    parent.push_back(kNull);
    if (kind[static_cast<std::size_t>(root)] == want) {
      // Same label as the current root: absorb (keeps alternation).
      parent[static_cast<std::size_t>(leaf)] = root;
    } else {
      const auto top = static_cast<NodeId>(kind.size());
      kind.push_back(want);
      parent.push_back(kNull);
      parent[static_cast<std::size_t>(root)] = top;
      parent[static_cast<std::size_t>(leaf)] = top;
      root = top;
    }
  }
  return Cotree::from_parts(std::move(kind), std::move(parent), root);
}

Cotree or_instance(const std::vector<std::uint8_t>& bits) {
  // Fig 2: R (0-node) has children x and all a_i with b_i = 0; u (1-node,
  // child of R) has children y, z and all a_i with b_i = 1.
  std::vector<NodeKind> kind;
  std::vector<NodeId> parent;
  const NodeId R = 0;
  const NodeId u = 1;
  kind.assign(2, NodeKind::Union);
  kind[static_cast<std::size_t>(u)] = NodeKind::Join;
  parent.assign(2, kNull);
  parent[static_cast<std::size_t>(u)] = R;
  const auto add_leaf = [&](NodeId p) {
    kind.push_back(NodeKind::Leaf);
    parent.push_back(p);
  };
  add_leaf(R);  // x
  add_leaf(u);  // y
  add_leaf(u);  // z
  for (const std::uint8_t b : bits) add_leaf(b ? u : R);
  return Cotree::from_parts(std::move(kind), std::move(parent), R);
}

Cotree paper_fig10() { return Cotree::parse("(* (+ (* a b) c) (+ d e f))"); }

Cotree caterpillar(std::size_t n, NodeKind top) {
  COPATH_CHECK(n > 0);
  if (n == 1) return independent_set(1);
  // From the top: root (kind = top) has a leaf and a child of the opposite
  // kind, and so on; the last internal node has two leaves.
  std::vector<NodeKind> kind;
  std::vector<NodeId> parent;
  NodeKind k = top;
  NodeId prev = kNull;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const auto node = static_cast<NodeId>(kind.size());
    kind.push_back(k);
    parent.push_back(prev);
    // Leaf sibling hanging off this level. Created after the internal child
    // so that the deep subtree is the *left* (first) child... node ids of
    // children decide order; the internal child gets a smaller id than the
    // leaf only if created first, which happens on the next loop turn — so
    // create the leaf now (larger id = second child).
    kind.push_back(NodeKind::Leaf);
    parent.push_back(node);
    prev = node;
    k = k == NodeKind::Join ? NodeKind::Union : NodeKind::Join;
  }
  // Bottom-most internal node needs a second leaf.
  kind.push_back(NodeKind::Leaf);
  parent.push_back(prev);
  return Cotree::from_parts(std::move(kind), std::move(parent), 0);
}

Cotree random_cotree(std::size_t vertices, const RandomCotreeOptions& opt) {
  COPATH_CHECK(vertices > 0);
  util::Rng rng(opt.seed);
  if (vertices == 1) return independent_set(1);
  // Iterative top-down expansion with an explicit work queue: each item is
  // (node, leaves_to_distribute, kind).
  std::vector<NodeKind> kind;
  std::vector<NodeId> parent;
  struct Item {
    NodeId node;
    std::size_t leaves;
  };
  std::vector<Item> queue;
  const NodeKind root_kind =
      rng.chance(opt.join_root_probability) ? NodeKind::Join : NodeKind::Union;
  kind.push_back(root_kind);
  parent.push_back(kNull);
  queue.push_back({0, vertices});
  while (!queue.empty()) {
    const Item it = queue.back();
    queue.pop_back();
    const auto nu = static_cast<std::size_t>(it.node);
    // Number of children: 2 + Geometric(p) capped by available leaves.
    std::size_t arity = 2;
    const double p = 1.0 / std::max(1.0, opt.mean_arity - 1.0);
    while (arity < it.leaves && !rng.chance(p)) ++arity;
    arity = std::min(arity, it.leaves);
    // Split leaves into `arity` positive parts (random, optionally skewed).
    std::vector<std::size_t> part(arity, 1);
    std::size_t rest = it.leaves - arity;
    for (std::size_t i = 0; i + 1 < arity && rest > 0; ++i) {
      // Skew pushes mass into the first part, producing deep spines.
      const double frac = opt.skew + (1.0 - opt.skew) * rng.uniform();
      const auto take = std::min<std::size_t>(
          rest, static_cast<std::size_t>(frac * static_cast<double>(rest)));
      part[i] += take;
      rest -= take;
    }
    part[arity - 1] += rest;
    const NodeKind child_kind =
        kind[nu] == NodeKind::Join ? NodeKind::Union : NodeKind::Join;
    for (const std::size_t leaves : part) {
      const auto c = static_cast<NodeId>(kind.size());
      if (leaves == 1) {
        kind.push_back(NodeKind::Leaf);
        parent.push_back(it.node);
      } else {
        kind.push_back(child_kind);
        parent.push_back(it.node);
        queue.push_back({c, leaves});
      }
    }
  }
  return Cotree::from_parts(std::move(kind), std::move(parent), 0);
}

}  // namespace copath::cograph
