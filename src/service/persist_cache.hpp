// Persistent L2 result cache: an mmap-backed, crash-safe, multi-process
// tier under the RAM ResultCache (L1).
//
// Two files in one directory hold the cache (plus a dedicated lock file):
//
//   l2.log   append-only record log. 16-byte header (magic, version), then
//            back-to-back records:
//              u32 payload_len | u32 last_access | u64 checksum | payload
//            last_access (wall-clock seconds, u32) is stamped at append and
//            re-stamped in place on every lookup hit; it sits OUTSIDE the
//            checksummed payload, so stamping never invalidates a record
//            and a torn stamp only perturbs eviction order. Records from
//            before this field existed read as 0 — i.e. coldest — which is
//            exactly the right migration behavior.
//            payload = u64 key_hash | OptionsKey (24 raw bytes, byte-stable
//            — see result_cache.hpp) | u32 sig_len | u32 result_len |
//            signature bytes | encode_result_record bytes. The checksum
//            (FNV-1a 64 over the payload) is the torn-write detector: a
//            record is real iff its checksum verifies, so a crash mid-
//            append leaves a tail that readers provably ignore.
//
//   l2.idx   open-addressing index. 32-byte header (magic, version,
//            retired flag, slot count), then pow-2 many 16-byte slots
//            { u64 tag (key hash), u64 log offset }. offset == 0 means
//            empty (real records start at offset 16). Slots are published
//            offset-first with release stores and read with acquires
//            (std::atomic_ref over the shared mapping), so a half-
//            published slot is indistinguishable from a miss — every hit
//            re-validates the full key against the checksummed record, so
//            the index is pure routing and may be stale, torn, or wrong
//            without ever producing a wrong answer.
//
//   l2.lock  empty, never renamed. All mutation (append, compact, open
//            repair) happens under flock(LOCK_EX) on this file; lookups
//            take no file lock at all (mmap reads + per-record checksums
//            make them safe against concurrent appends, and compaction
//            never truncates the files a reader may have mapped — it
//            renames fresh ones into place and flags the old index
//            `retired`, which readers notice on their next operation and
//            reopen).
//
// Crash recovery: on open (under the lock) the log is scanned from the
// front; the first record whose bounds or checksum fail ends the valid
// prefix. The file is NOT truncated (a concurrent reader may have the
// tail mapped — shrinking a mapped file turns reads into SIGBUS); instead
// the next append overwrites the torn bytes in place. A corrupt or
// missing index is rebuilt from the log scan. A corrupt log *header* is
// the one catastrophic case: the cache resets to empty (degrades to cold,
// never to wrong).
//
// Every public method is exception-proof: corruption, IO errors, and
// allocation failures degrade to a miss (lookup) or a skipped write
// (append) and bump a counter. The solver never learns the disk exists.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "service/result_cache.hpp"

namespace copath::service {

class PersistCache {
 public:
  struct Config {
    /// Cache directory (created if missing). Empty = caller should not
    /// construct a PersistCache at all (Service treats empty as "no L2").
    std::string dir;
    /// Index slot count, rounded up to a power of two. The index does not
    /// grow; past ~capacity, inserts overwrite probe-window slots (old
    /// entries degrade to misses — it is a cache).
    std::size_t index_slots = std::size_t{1} << 16;
    /// Log size cap: an append that would cross it first compacts, and
    /// compaction itself honors the cap — when the live records alone
    /// exceed it, the coldest (oldest last_access stamp) are dropped first
    /// until the rest fit with headroom. The append is skipped (counted)
    /// only if a single record cannot fit.
    std::size_t max_log_bytes = std::size_t{256} << 20;
    /// fdatasync after every append (durability vs throughput; crash
    /// SAFETY does not depend on this — only whether the last results
    /// survive a power loss).
    bool sync_appends = false;
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t appends = 0;
    /// Appends skipped because the key was already present on disk.
    std::uint64_t append_dups = 0;
    /// Appends skipped for size/IO reasons (log full after compaction,
    /// oversized record, write error).
    std::uint64_t append_skips = 0;
    /// Torn/corrupt tail records skipped by the open-time log scan.
    std::uint64_t corrupt_dropped = 0;
    std::uint64_t compactions = 0;
    /// Reopens forced by another process retiring our mapped index.
    std::uint64_t reopens = 0;
    /// Live records as of this process's last open/append/compact (other
    /// processes' appends are not counted until a reopen).
    std::uint64_t records = 0;
    /// End of the valid record chain (bytes).
    std::uint64_t log_bytes = 0;
  };

  struct CompactReport {
    std::uint64_t live_records = 0;
    std::uint64_t bytes_before = 0;
    std::uint64_t bytes_after = 0;
    /// Records dropped for any reason: duplicates superseded in the index,
    /// unreachable entries, and LRU evictions (the latter also counted in
    /// lru_dropped).
    std::uint64_t dropped_records = 0;
    /// Live-but-cold records evicted to bring the log under max_log_bytes,
    /// oldest last-access stamp first.
    std::uint64_t lru_dropped = 0;
  };

  /// Opens (creating/repairing as needed) the cache in cfg.dir. Throws
  /// util::CheckError only when the directory itself cannot be created or
  /// locked — file-level corruption is repaired, not thrown.
  explicit PersistCache(Config cfg);
  ~PersistCache();

  PersistCache(const PersistCache&) = delete;
  PersistCache& operator=(const PersistCache&) = delete;

  /// The stored canonical-space result, decoded fresh from the mapped
  /// record; nullptr on miss (including every corruption/IO failure).
  /// Takes no file lock.
  [[nodiscard]] std::shared_ptr<const SolveResult> lookup(
      const CacheKeyRef& key);

  /// Write-through: appends (key, canonical result) under the file lock
  /// and publishes the index slot. Deduplicates against existing on-disk
  /// entries. Never throws; failures bump append_skips.
  void append(const CacheKeyRef& key, const SolveResult& canonical);

  /// Rewrites the log to just the index-reachable records and swaps fresh
  /// files into place (old files are renamed over, never truncated;
  /// concurrent processes notice the retired flag and reopen). Returns
  /// zeros on failure — compaction is an optimization, not an invariant.
  CompactReport compact();

  [[nodiscard]] Stats stats() const;

  [[nodiscard]] const Config& config() const { return cfg_; }

 private:
  struct RecordView {
    std::uint64_t hash = 0;
    /// Log offset of the record header (where the last-access stamp lives).
    std::uint64_t offset = 0;
    const char* opts = nullptr;  // 24 raw OptionsKey bytes
    std::string_view signature;
    std::string_view result;
  };

  void open_files_locked();
  void close_files_locked();
  void reset_log_locked();
  std::uint64_t scan_log_locked(std::vector<std::pair<std::uint64_t,
                                                      std::uint64_t>>* live);
  void build_index_locked(
      const std::vector<std::pair<std::uint64_t, std::uint64_t>>& live);
  void maybe_reopen_locked();
  void ensure_log_mapped_locked(std::uint64_t min_bytes);
  [[nodiscard]] bool read_record_locked(std::uint64_t offset,
                                        RecordView* out);
  [[nodiscard]] bool find_record_locked(const CacheKeyRef& key,
                                        RecordView* out);
  void publish_slot_locked(std::uint64_t hash, std::uint64_t offset);
  void refresh_log_end_locked();
  [[nodiscard]] bool index_retired() const;
  bool compact_locked(CompactReport* report);

  [[nodiscard]] std::string log_path() const { return cfg_.dir + "/l2.log"; }
  [[nodiscard]] std::string idx_path() const { return cfg_.dir + "/l2.idx"; }
  [[nodiscard]] std::string lock_path() const {
    return cfg_.dir + "/l2.lock";
  }

  Config cfg_;
  mutable std::mutex mu_;
  int lock_fd_ = -1;
  int log_fd_ = -1;
  int idx_fd_ = -1;
  char* log_map_ = nullptr;
  std::uint64_t log_map_bytes_ = 0;
  char* idx_map_ = nullptr;
  std::uint64_t idx_map_bytes_ = 0;
  std::uint64_t slot_count_ = 0;
  /// End of the valid record chain as this process last saw it; refreshed
  /// (forward scan only) under the file lock before each append.
  std::uint64_t log_end_ = 0;
  std::string scratch_;  // append encode buffer, reused

  // All counters are read/written under mu_.
  Stats stats_{};
};

}  // namespace copath::service
