// The fused batch core: dedup -> cache -> pack -> sweep -> scatter for a
// whole span of requests at once.
//
// Serving traffic is dominated by small instances where per-request fixed
// cost (queue hop, cache probe, future machinery, per-instance scratch)
// beats the actual solve. This core amortizes all of it across a batch:
//
//  1. DEDUP   — canonicalize every instance and group duplicates *within
//               the batch*; each group is solved (or cache-probed) once
//               and fanned back out through the dedup map.
//  2. CACHE   — one ResultCache probe per unique group (not per request).
//  3. PACK    — express-eligible survivors' SoA arrays (parent/left/right/
//               is_join/vertex/leaf_of_vertex/leaf_count) are laid side by
//               side in ONE exec::Arena allocation (exec::Slab) with
//               per-instance offsets — one acquire for the whole batch.
//  4. SWEEP   — the packed instances are binarized straight into their
//               slices and swept back-to-back on the calling thread,
//               mirroring service::solve_express operation for operation so
//               covers stay bitwise-equal to per-instance solves.
//  5. SCATTER — the group rep keeps its direct result; other members are
//               replayed through their own canonical permutation
//               (BatchDedup::Canonical) or by identity copy
//               (BatchDedup::IdenticalTree). Per-slot failure isolation: a
//               bad instance fails alone, everything else still solves.
//
// Shared by Service::submit_batch (Canonical dedup + cache) and the
// rerouted small-instance lane of Solver::solve_batch (IdenticalTree
// dedup, no cache). See DESIGN.md §10 for the layout, the dedup-key
// lifetime argument, and why the two dedup modes differ.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "copath_solver.hpp"
#include "exec/arena.hpp"
#include "service/result_cache.hpp"

namespace copath::service {

enum class BatchDedup : std::uint8_t {
  /// Group by (canonical signature, result-affecting options): permuted /
  /// relabeled twins share a group and every non-rep member is replayed
  /// through its OWN from_canonical permutation — exactly what independent
  /// Service submits hand such twins (cache hits and coalesced waiters are
  /// remapped the same way), so batch results stay bitwise-equal to N
  /// independent submits. The Service's mode whenever its cache is on.
  Canonical,
  /// Group only instances whose resolved cotrees are EXACTLY identical
  /// (same node layout, same vertex ids): replay is the identity, so a
  /// member's result is bitwise-equal to solving it directly. The
  /// Solver::solve_batch mode (no cache): permuted twins are deliberately
  /// NOT deduplicated there, because their direct solves may produce
  /// different — equally minimum — covers.
  IdenticalTree,
};

class PersistCache;

/// Per-call counters the callers fold into their stats.
struct BatchOutcome {
  /// Non-rep group members served from their rep's solve or cache probe.
  std::uint64_t dedup_hits = 0;
  /// Unique groups answered by the ResultCache.
  std::uint64_t cache_hits = 0;
  /// Unique groups answered by the persistent tier (and promoted into L1).
  std::uint64_t l2_hits = 0;
  /// Unique groups solved inside the packed slab sweep.
  std::uint64_t packed_solves = 0;
};

struct BatchConfig {
  BatchDedup dedup = BatchDedup::Canonical;
  /// Probed once per unique group and fed computed results. nullptr = no
  /// cache (the Solver lane). Canonical-space stores follow the Service's
  /// insert discipline (to_canonical_space, label cleared).
  ResultCache* cache = nullptr;
  /// Persistent tier under `cache`: probed on an L1 group miss (hits are
  /// promoted into L1), written through on every fresh ok group solve.
  /// Requires `cache` (the L2 shares its canonical keys); nullptr = none.
  PersistCache* l2 = nullptr;
  /// Pack express-eligible groups into the slab sweep. Ineligible groups
  /// (above the Adaptive floor, non-sequential backends) — and every group
  /// when this is off — go through `fallback`.
  bool use_express_pack = true;
};

/// Generic per-group solve for work the packed sweep cannot take. Receives
/// the group rep's request and its effective options; must not throw
/// (structured ok == false results, like Solver::solve).
using BatchFallback =
    std::function<SolveResult(const SolveRequest&, const SolveOptions&)>;

/// Runs the fused pipeline over `reqs`. Results are positionally aligned
/// with the requests; per-request options default to `default_opts`.
/// Scratch (including the packed slab) comes from `arena` — pass the
/// calling thread's Arena::for_this_thread(). Never throws; per-slot
/// failures are structured ok == false results.
[[nodiscard]] std::vector<SolveResult> solve_batch_fused(
    std::span<const SolveRequest> reqs, const SolveOptions& default_opts,
    const BatchConfig& cfg, const BatchFallback& fallback,
    exec::Arena& arena, BatchOutcome* outcome = nullptr);

}  // namespace copath::service
