// Sharded, thread-safe memo cache of SolveResults keyed by canonical form.
//
// Two requests hit the same entry iff their instances are isomorphic modulo
// commutativity and leaf relabeling (identical binary structural
// signature — CanonicalForm::signature) AND their result-affecting solve
// options agree (identical packed OptionsKey). Entries store the result in
// *canonical leaf slots* (`to_canonical_space`), so one stored cover serves
// every member of the equivalence class: a hit is replayed through the
// requesting instance's own `from_canonical` permutation, which is a graph
// isomorphism — the replayed cover is valid and of identical (minimum)
// size by construction.
//
// Key shape (this is the request hot path): the 64-bit hash routes to a
// shard/bucket; the full-key collision check is one POD compare plus a
// memcmp over the ~n-byte signature — no canonical string is ever rebuilt
// or re-walked. Lookups take a *borrowed* key (CacheKeyRef views the
// signature owned by the instance's CanonicalForm), so the hit path copies
// no key bytes at all; only insert materializes an owned CacheKey.
//
// Concurrency: N mutex-striped shards selected by the canonical hash; a
// lookup/insert locks exactly one shard. Within a shard, entries live on an
// LRU list with per-shard capacity; the hash-indexed map holds collision
// buckets and every probe compares the full key, so a 64-bit hash collision
// costs a miss, never a wrong answer. Hit/miss/insertion/eviction counters
// are process-cheap atomics readable at any time.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cograph/canonical.hpp"
#include "copath_solver.hpp"

namespace copath::service {

/// The option fields that change the *content* of a SolveResult (backend,
/// machine discipline, pipeline knobs, requested extras), packed into a
/// trivially-comparable POD. Worker and batch-worker counts are excluded
/// on purpose: engines produce identical results for every physical worker
/// count, so caching across them is sound and desirable.
///
/// The POD is *byte-stable*: the trailing 4 bytes that would otherwise be
/// compiler padding are an explicit zeroed `pad` member and options_key()
/// memsets the whole object before filling it, so two keys built from
/// equivalent SolveOptions are memcmp-equal and hash identically from raw
/// bytes. The persistent L2 cache (service/persist_cache.hpp) depends on
/// this: it memcmps the 24 raw key bytes straight out of an mmap'd record.
struct OptionsKey {
  std::uint64_t processors = 0;
  std::uint64_t max_repair_rounds = 0;
  std::uint8_t backend = 0;
  std::uint8_t policy = 0;
  std::uint8_t rank_engine = 0;
  /// Bit-packed: trace | validate | hamiltonian-cycle | verdicts.
  std::uint8_t flags = 0;
  /// Explicit tail padding, always zero (see options_key()).
  std::uint8_t pad[4] = {0, 0, 0, 0};

  [[nodiscard]] bool operator==(const OptionsKey&) const = default;
};
static_assert(std::is_trivially_copyable_v<OptionsKey>);
static_assert(sizeof(OptionsKey) == 24,
              "OptionsKey is an on-disk format (persist_cache records)");
static_assert(std::has_unique_object_representations_v<OptionsKey>,
              "OptionsKey must have no padding bytes: raw-byte memcmp/hash "
              "of mmap'd records requires byte-stable keys");

[[nodiscard]] OptionsKey options_key(const SolveOptions& opts);

/// Debug/display form of an OptionsKey (the old string fingerprint shape).
[[nodiscard]] std::string options_fingerprint(const SolveOptions& opts);

/// Borrowed full cache identity: the hash routes, (signature, opts) is the
/// collision-proof equality check. `signature` views bytes owned by the
/// caller (normally the request's CanonicalForm) — valid for the duration
/// of the cache call only.
struct CacheKeyRef {
  std::uint64_t hash = 0;
  std::string_view signature;
  OptionsKey opts;

  [[nodiscard]] bool operator==(const CacheKeyRef& o) const {
    // string_view equality IS length-check + memcmp — the ~n-byte
    // full-key collision check.
    return hash == o.hash && opts == o.opts && signature == o.signature;
  }
};

/// Owned key (what the cache stores).
struct CacheKey {
  std::uint64_t hash = 0;
  std::string signature;
  OptionsKey opts;

  [[nodiscard]] CacheKeyRef ref() const {
    return CacheKeyRef{hash, signature, opts};
  }
  [[nodiscard]] bool operator==(const CacheKey& o) const {
    return ref() == o.ref();
  }
};

/// Builds the borrowed key for an instance's canonical form under `opts`.
/// The returned key views `form.signature`; `form` must outlive it.
[[nodiscard]] CacheKeyRef make_cache_key(const cograph::CanonicalForm& form,
                                         const SolveOptions& opts);

/// Materializes an owned key from a borrowed one (the insert path).
[[nodiscard]] CacheKey own_key(const CacheKeyRef& key);

/// Rewrites the result's vertex ids (cover paths, Hamiltonian cycle) from
/// the instance's ids into canonical leaf slots. The stored form.
[[nodiscard]] SolveResult to_canonical_space(
    SolveResult res, const cograph::CanonicalForm& form);

/// Inverse: rewrites a canonical-space result into the vertex ids of the
/// instance described by `form`.
[[nodiscard]] SolveResult from_canonical_space(
    SolveResult res, const cograph::CanonicalForm& form);

/// The hit-path form of from_canonical_space: builds the remapped copy of
/// a *stored* canonical result in one pass (fusing the deep copy with the
/// permutation instead of copy-then-rewrite).
[[nodiscard]] SolveResult remapped_from_canonical(
    const SolveResult& canonical, const cograph::CanonicalForm& form);

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
};

class ResultCache {
 public:
  struct Config {
    /// Mutex stripes; clamped to >= 1.
    std::size_t shards = 8;
    /// Total entry budget across shards (per-shard LRU of
    /// ceil(capacity / shards)); clamped to >= shards.
    std::size_t capacity = 4096;
  };

  // (Delegation instead of `Config cfg = {}`: GCC cannot evaluate a nested
  // aggregate's default member initializers in a default argument while the
  // enclosing class is incomplete.)
  ResultCache() : ResultCache(Config{}) {}
  explicit ResultCache(Config cfg);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// The stored canonical-space result (shared, immutable), refreshing its
  /// LRU position; nullptr on miss. Counts a hit or a miss. Returning a
  /// shared_ptr keeps the shard's critical section O(1) — callers copy (or
  /// remap) outside the lock.
  [[nodiscard]] std::shared_ptr<const SolveResult> lookup(
      const CacheKeyRef& key);

  /// Stores (or refreshes) `canonical_result` under `key` (copied into an
  /// owned CacheKey on first insert), evicting the shard's
  /// least-recently-used entry when the shard is full. The result must
  /// already be in canonical space with its label cleared.
  void insert(const CacheKeyRef& key,
              std::shared_ptr<const SolveResult> canonical_result);

  [[nodiscard]] CacheStats stats() const;
  [[nodiscard]] std::size_t size() const;
  /// Drops every entry AND resets the hit/miss/insertion/eviction counters:
  /// a cleared cache reports hit rate from a clean slate (the Stats wire
  /// verb would otherwise misattribute pre-clear traffic to the new epoch).
  void clear();

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

 private:
  struct Entry {
    CacheKey key;
    std::shared_ptr<const SolveResult> result;
  };
  struct Shard {
    std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<std::uint64_t, std::vector<std::list<Entry>::iterator>>
        by_hash;
  };

  Shard& shard_for(std::uint64_t hash) {
    return *shards_[static_cast<std::size_t>(hash) % shards_.size()];
  }

  std::size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> insertions_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace copath::service
