// Sharded, thread-safe memo cache of SolveResults keyed by canonical form.
//
// Two requests hit the same entry iff their instances are isomorphic modulo
// commutativity and leaf relabeling (identical `CanonicalForm::key`) AND
// their result-affecting solve options agree (identical options
// fingerprint). Entries store the result in *canonical leaf slots*
// (`to_canonical_space`), so one stored cover serves every member of the
// equivalence class: a hit is replayed through the requesting instance's
// own `from_canonical` permutation, which is a graph isomorphism — the
// replayed cover is valid and of identical (minimum) size by construction.
//
// Concurrency: N mutex-striped shards selected by the canonical hash; a
// lookup/insert locks exactly one shard. Within a shard, entries live on an
// LRU list with per-shard capacity; the hash-indexed map holds collision
// buckets and every probe compares the full key (canonical string +
// options fingerprint), so a 64-bit hash collision costs a miss, never a
// wrong answer. Hit/miss/insertion/eviction counters are process-cheap
// atomics readable at any time.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cograph/canonical.hpp"
#include "copath_solver.hpp"

namespace copath::service {

/// Full cache identity: the canonical hash routes to a shard/bucket, the
/// two strings are the collision-proof equality check.
struct CacheKey {
  std::uint64_t hash = 0;
  std::string canon_key;
  std::string opts_key;

  [[nodiscard]] bool operator==(const CacheKey& o) const {
    return hash == o.hash && canon_key == o.canon_key &&
           opts_key == o.opts_key;
  }
};

/// Serializes the option fields that change the *content* of a SolveResult
/// (backend, machine discipline, pipeline knobs, requested extras). Worker
/// and batch-worker counts are excluded on purpose: engines produce
/// identical results for every physical worker count, so caching across
/// them is sound and desirable.
[[nodiscard]] std::string options_fingerprint(const SolveOptions& opts);

/// Builds the key for an instance's canonical form under `opts`.
[[nodiscard]] CacheKey make_cache_key(const cograph::CanonicalForm& form,
                                      const SolveOptions& opts);

/// Rewrites the result's vertex ids (cover paths, Hamiltonian cycle) from
/// the instance's ids into canonical leaf slots. The stored form.
[[nodiscard]] SolveResult to_canonical_space(
    SolveResult res, const cograph::CanonicalForm& form);

/// Inverse: rewrites a canonical-space result into the vertex ids of the
/// instance described by `form`. Applied on every cache hit.
[[nodiscard]] SolveResult from_canonical_space(
    SolveResult res, const cograph::CanonicalForm& form);

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
};

class ResultCache {
 public:
  struct Config {
    /// Mutex stripes; clamped to >= 1.
    std::size_t shards = 8;
    /// Total entry budget across shards (per-shard LRU of
    /// ceil(capacity / shards)); clamped to >= shards.
    std::size_t capacity = 4096;
  };

  // (Delegation instead of `Config cfg = {}`: GCC cannot evaluate a nested
  // aggregate's default member initializers in a default argument while the
  // enclosing class is incomplete.)
  ResultCache() : ResultCache(Config{}) {}
  explicit ResultCache(Config cfg);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// The stored canonical-space result (shared, immutable), refreshing its
  /// LRU position; nullptr on miss. Counts a hit or a miss. Returning a
  /// shared_ptr keeps the shard's critical section O(1) — callers copy (or
  /// remap) outside the lock.
  [[nodiscard]] std::shared_ptr<const SolveResult> lookup(
      const CacheKey& key);

  /// Stores (or refreshes) `canonical_result` under `key`, evicting the
  /// shard's least-recently-used entry when the shard is full. The result
  /// must already be in canonical space with its label cleared.
  void insert(const CacheKey& key,
              std::shared_ptr<const SolveResult> canonical_result);

  [[nodiscard]] CacheStats stats() const;
  [[nodiscard]] std::size_t size() const;
  void clear();

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

 private:
  struct Entry {
    CacheKey key;
    std::shared_ptr<const SolveResult> result;
  };
  struct Shard {
    std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<std::uint64_t, std::vector<std::list<Entry>::iterator>>
        by_hash;
  };

  Shard& shard_for(std::uint64_t hash) {
    return *shards_[static_cast<std::size_t>(hash) % shards_.size()];
  }

  std::size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> insertions_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace copath::service
