#include "service/result_cache.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "util/math.hpp"

namespace copath::service {
namespace {

/// Folds the options fingerprint into the shard/bucket hash with the same
/// mixer the canonicalizer uses (util::hash_mix).
std::uint64_t hash_string(std::uint64_t h, const std::string& s) {
  for (const char c : s) {
    h = util::hash_mix(h, static_cast<std::uint64_t>(c));
  }
  return h;
}

void remap_vertices(std::vector<cograph::VertexId>& path,
                    const std::vector<cograph::VertexId>& map) {
  for (auto& v : path) {
    COPATH_DCHECK(v >= 0 && static_cast<std::size_t>(v) < map.size());
    v = map[static_cast<std::size_t>(v)];
  }
}

SolveResult remap_result(SolveResult res,
                         const std::vector<cograph::VertexId>& map) {
  for (auto& path : res.cover.paths) remap_vertices(path, map);
  if (res.cycle.has_value()) remap_vertices(*res.cycle, map);
  return res;
}

}  // namespace

std::string options_fingerprint(const SolveOptions& opts) {
  std::ostringstream os;
  os << "b=" << static_cast<int>(opts.backend)
     << ";p=" << opts.processors
     << ";pol=" << static_cast<int>(opts.policy)
     << ";re=" << static_cast<int>(opts.pipeline.rank_engine)
     << ";rr=" << opts.pipeline.max_repair_rounds
     << ";tr=" << opts.collect_trace
     << ";val=" << opts.validate
     << ";hc=" << opts.want_hamiltonian_cycle
     << ";verd=" << opts.compute_verdicts;
  return os.str();
}

CacheKey make_cache_key(const cograph::CanonicalForm& form,
                        const SolveOptions& opts) {
  CacheKey key;
  key.canon_key = form.key;
  key.opts_key = options_fingerprint(opts);
  key.hash = hash_string(form.hash, key.opts_key);
  return key;
}

SolveResult to_canonical_space(SolveResult res,
                               const cograph::CanonicalForm& form) {
  res.label.clear();
  return remap_result(std::move(res), form.to_canonical);
}

SolveResult from_canonical_space(SolveResult res,
                                 const cograph::CanonicalForm& form) {
  return remap_result(std::move(res), form.from_canonical);
}

ResultCache::ResultCache(Config cfg) {
  const std::size_t shards = std::max<std::size_t>(1, cfg.shards);
  const std::size_t capacity = std::max(cfg.capacity, shards);
  per_shard_capacity_ = (capacity + shards - 1) / shards;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::shared_ptr<const SolveResult> ResultCache::lookup(const CacheKey& key) {
  Shard& sh = shard_for(key.hash);
  std::lock_guard<std::mutex> lock(sh.mu);
  const auto bucket = sh.by_hash.find(key.hash);
  if (bucket != sh.by_hash.end()) {
    for (const auto it : bucket->second) {
      if (it->key == key) {
        sh.lru.splice(sh.lru.begin(), sh.lru, it);
        hits_.fetch_add(1, std::memory_order_relaxed);
        return it->result;
      }
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

void ResultCache::insert(const CacheKey& key,
                         std::shared_ptr<const SolveResult> canonical_result) {
  Shard& sh = shard_for(key.hash);
  std::lock_guard<std::mutex> lock(sh.mu);
  auto& bucket = sh.by_hash[key.hash];
  for (const auto it : bucket) {
    if (it->key == key) {
      // Refresh (coalesced duplicates can double-insert harmlessly).
      it->result = std::move(canonical_result);
      sh.lru.splice(sh.lru.begin(), sh.lru, it);
      return;
    }
  }
  if (sh.lru.size() >= per_shard_capacity_) {
    const auto victim = std::prev(sh.lru.end());
    auto vb = sh.by_hash.find(victim->key.hash);
    auto& vec = vb->second;
    vec.erase(std::find(vec.begin(), vec.end(), victim));
    if (vec.empty()) sh.by_hash.erase(vb);
    sh.lru.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  sh.lru.push_front(Entry{key, std::move(canonical_result)});
  sh.by_hash[key.hash].push_back(sh.lru.begin());
  insertions_.fetch_add(1, std::memory_order_relaxed);
}

CacheStats ResultCache::stats() const {
  CacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.insertions = insertions_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  return s;
}

std::size_t ResultCache::size() const {
  std::size_t total = 0;
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh->mu);
    total += sh->lru.size();
  }
  return total;
}

void ResultCache::clear() {
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh->mu);
    sh->lru.clear();
    sh->by_hash.clear();
  }
}

}  // namespace copath::service
