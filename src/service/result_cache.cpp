#include "service/result_cache.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <utility>

#include "util/math.hpp"

namespace copath::service {
namespace {

/// Folds the packed options into the shard/bucket hash with the same mixer
/// the canonicalizer uses (util::hash_mix) — word-at-a-time, no string.
std::uint64_t fold_options(std::uint64_t h, const OptionsKey& k) {
  h = util::hash_mix(h, k.processors);
  h = util::hash_mix(h, k.max_repair_rounds);
  h = util::hash_mix(
      h, (static_cast<std::uint64_t>(k.backend) << 24) |
             (static_cast<std::uint64_t>(k.policy) << 16) |
             (static_cast<std::uint64_t>(k.rank_engine) << 8) |
             static_cast<std::uint64_t>(k.flags));
  return h;
}

void remap_into(const std::vector<cograph::VertexId>& path,
                std::vector<cograph::VertexId>& out,
                const std::vector<cograph::VertexId>& map) {
  out.resize(path.size());
  for (std::size_t i = 0; i < path.size(); ++i) {
    COPATH_DCHECK(path[i] >= 0 &&
                  static_cast<std::size_t>(path[i]) < map.size());
    out[i] = map[static_cast<std::size_t>(path[i])];
  }
}

void remap_vertices(std::vector<cograph::VertexId>& path,
                    const std::vector<cograph::VertexId>& map) {
  for (auto& v : path) {
    COPATH_DCHECK(v >= 0 && static_cast<std::size_t>(v) < map.size());
    v = map[static_cast<std::size_t>(v)];
  }
}

SolveResult remap_result(SolveResult res,
                         const std::vector<cograph::VertexId>& map) {
  for (auto& path : res.cover.paths) remap_vertices(path, map);
  if (res.cycle.has_value()) remap_vertices(*res.cycle, map);
  return res;
}

}  // namespace

OptionsKey options_key(const SolveOptions& opts) {
  OptionsKey k;
  // Byte-stability: value-init covers the members (including the explicit
  // pad array), but a memset makes the guarantee independent of member
  // layout edits — the persistent tier memcmps and hashes these 24 bytes
  // raw, so no byte may ever be indeterminate.
  std::memset(&k, 0, sizeof(k));
  k.processors = opts.processors;
  k.max_repair_rounds = opts.pipeline.max_repair_rounds;
  k.backend = static_cast<std::uint8_t>(opts.backend);
  k.policy = static_cast<std::uint8_t>(opts.policy);
  k.rank_engine = static_cast<std::uint8_t>(opts.pipeline.rank_engine);
  k.flags = static_cast<std::uint8_t>(
      (opts.collect_trace ? 1u : 0u) | (opts.validate ? 2u : 0u) |
      (opts.want_hamiltonian_cycle ? 4u : 0u) |
      (opts.compute_verdicts ? 8u : 0u));
  return k;
}

std::string options_fingerprint(const SolveOptions& opts) {
  std::ostringstream os;
  os << "b=" << static_cast<int>(opts.backend)
     << ";p=" << opts.processors
     << ";pol=" << static_cast<int>(opts.policy)
     << ";re=" << static_cast<int>(opts.pipeline.rank_engine)
     << ";rr=" << opts.pipeline.max_repair_rounds
     << ";tr=" << opts.collect_trace
     << ";val=" << opts.validate
     << ";hc=" << opts.want_hamiltonian_cycle
     << ";verd=" << opts.compute_verdicts;
  return os.str();
}

CacheKeyRef make_cache_key(const cograph::CanonicalForm& form,
                           const SolveOptions& opts) {
  CacheKeyRef key;
  key.signature = form.signature;
  key.opts = options_key(opts);
  key.hash = fold_options(form.hash, key.opts);
  return key;
}

CacheKey own_key(const CacheKeyRef& key) {
  return CacheKey{key.hash, std::string(key.signature), key.opts};
}

SolveResult to_canonical_space(SolveResult res,
                               const cograph::CanonicalForm& form) {
  res.label.clear();
  return remap_result(std::move(res), form.to_canonical);
}

SolveResult from_canonical_space(SolveResult res,
                                 const cograph::CanonicalForm& form) {
  return remap_result(std::move(res), form.from_canonical);
}

SolveResult remapped_from_canonical(const SolveResult& canonical,
                                 const cograph::CanonicalForm& form) {
  // The hit path: one pass builds the remapped copy directly — no
  // copy-then-rewrite double walk over the paths.
  SolveResult res;
  res.ok = canonical.ok;
  res.error = canonical.error;
  res.backend = canonical.backend;
  res.routed = canonical.routed;
  res.vertex_count = canonical.vertex_count;
  res.optimal_size = canonical.optimal_size;
  res.minimum = canonical.minimum;
  res.hamiltonian_path = canonical.hamiltonian_path;
  res.hamiltonian_cycle = canonical.hamiltonian_cycle;
  res.stats = canonical.stats;
  res.stats_valid = canonical.stats_valid;
  res.trace = canonical.trace;
  res.trace_valid = canonical.trace_valid;
  res.validation = canonical.validation;
  res.wall_ms = canonical.wall_ms;
  const auto& map = form.from_canonical;
  res.cover.paths.resize(canonical.cover.paths.size());
  for (std::size_t i = 0; i < canonical.cover.paths.size(); ++i) {
    remap_into(canonical.cover.paths[i], res.cover.paths[i], map);
  }
  if (canonical.cycle.has_value()) {
    res.cycle.emplace();
    remap_into(*canonical.cycle, *res.cycle, map);
  }
  return res;
}

ResultCache::ResultCache(Config cfg) {
  const std::size_t shards = std::max<std::size_t>(1, cfg.shards);
  const std::size_t capacity = std::max(cfg.capacity, shards);
  per_shard_capacity_ = (capacity + shards - 1) / shards;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::shared_ptr<const SolveResult> ResultCache::lookup(
    const CacheKeyRef& key) {
  Shard& sh = shard_for(key.hash);
  std::lock_guard<std::mutex> lock(sh.mu);
  const auto bucket = sh.by_hash.find(key.hash);
  if (bucket != sh.by_hash.end()) {
    for (const auto it : bucket->second) {
      if (it->key.ref() == key) {
        sh.lru.splice(sh.lru.begin(), sh.lru, it);
        hits_.fetch_add(1, std::memory_order_relaxed);
        return it->result;
      }
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

void ResultCache::insert(const CacheKeyRef& key,
                         std::shared_ptr<const SolveResult> canonical_result) {
  Shard& sh = shard_for(key.hash);
  std::lock_guard<std::mutex> lock(sh.mu);
  auto& bucket = sh.by_hash[key.hash];
  for (const auto it : bucket) {
    if (it->key.ref() == key) {
      // Refresh (coalesced duplicates can double-insert harmlessly).
      it->result = std::move(canonical_result);
      sh.lru.splice(sh.lru.begin(), sh.lru, it);
      return;
    }
  }
  if (sh.lru.size() >= per_shard_capacity_) {
    const auto victim = std::prev(sh.lru.end());
    auto vb = sh.by_hash.find(victim->key.hash);
    auto& vec = vb->second;
    vec.erase(std::find(vec.begin(), vec.end(), victim));
    if (vec.empty()) sh.by_hash.erase(vb);
    sh.lru.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  sh.lru.push_front(Entry{own_key(key), std::move(canonical_result)});
  sh.by_hash[key.hash].push_back(sh.lru.begin());
  insertions_.fetch_add(1, std::memory_order_relaxed);
}

CacheStats ResultCache::stats() const {
  CacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.insertions = insertions_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  return s;
}

std::size_t ResultCache::size() const {
  std::size_t total = 0;
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh->mu);
    total += sh->lru.size();
  }
  return total;
}

void ResultCache::clear() {
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh->mu);
    sh->lru.clear();
    sh->by_hash.clear();
  }
  // Counters describe the entries' epoch: dropping the entries without
  // resetting them left the Stats verb reporting a hit rate blended across
  // epochs.
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  insertions_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
}

}  // namespace copath::service
