#include "service/persist_cache.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>

#include "net/protocol.hpp"
#include "util/check.hpp"
#include "util/fault.hpp"
#include "util/math.hpp"

namespace copath::service {
namespace {

// File format constants. Bumping kFileVersion invalidates existing caches
// wholesale (they re-create as empty — cold, never wrong), which is how
// record-codec changes ship without migration code.
constexpr std::uint64_t kLogMagic = 0x324C485441504F43ull;   // "COPATHL2"
constexpr std::uint64_t kIdxMagic = 0x3158485441504F43ull;   // "COPATHX1"
constexpr std::uint32_t kFileVersion = 1;

constexpr std::uint64_t kLogHeaderBytes = 16;  // magic u64 | version u32 | 0
constexpr std::uint64_t kIdxHeaderBytes = 32;  // magic | version | retired
                                               // | slot_count | reserved
constexpr std::uint64_t kRecHeaderBytes = 16;  // len u32 | 0 u32 | sum u64
constexpr std::uint64_t kSlotBytes = 16;       // tag u64 | offset u64
/// Fixed payload prefix: key hash + OptionsKey + two length words.
constexpr std::uint64_t kPayloadFixedBytes = 8 + sizeof(OptionsKey) + 4 + 4;
/// Sanity bound on one record (a multi-million-vertex result is a few MB;
/// anything near this is corruption).
constexpr std::uint64_t kMaxRecordBytes = std::uint64_t{64} << 20;
/// Probe window shared by lookups and inserts. Past it, inserts clobber
/// (cache semantics) and lookups give up.
constexpr std::uint64_t kMaxProbe = 64;

// Native-endian scalar IO on the mapped files. The cache directory is
// machine-local by design (flock + mmap coherence only hold on one box),
// so no cross-endian portability is attempted.
template <typename T>
T load_raw(const char* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}
template <typename T>
void store_raw(char* p, T v) {
  std::memcpy(p, &v, sizeof(T));
}

std::uint64_t checksum_bytes(const char* p, std::uint64_t n) {
  // FNV-1a 64: byte-at-a-time, no tables, and a single bit flip anywhere
  // changes the sum — exactly the torn-write/bit-rot detector needed here.
  std::uint64_t h = 1469598103934665603ull;
  for (std::uint64_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(p[i]);
    h *= 1099511628211ull;
  }
  return h;
}

/// RAII flock(LOCK_EX) on the dedicated lock file. flock is per open file
/// description, so two PersistCache objects in ONE process also exclude
/// each other — the in-process tests exercise the same lock protocol real
/// multi-process deployments use.
class FileLock {
 public:
  explicit FileLock(int fd) : fd_(fd) {
    while (::flock(fd_, LOCK_EX) != 0 && errno == EINTR) {
    }
  }
  ~FileLock() { ::flock(fd_, LOCK_UN); }
  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;

 private:
  int fd_;
};

bool write_all(int fd, const char* p, std::uint64_t n, std::uint64_t off) {
  // Chaos hook: a pwrite that "fails" here exercises the same degradation
  // as a full disk — append_skips / refused compaction, never corruption
  // (the log is never truncated and records publish only after a full
  // write).
  if (util::fault_point("persist.pwrite")) return false;
  while (n > 0) {
    const ssize_t w = ::pwrite(fd, p, n, static_cast<off_t>(off));
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<std::uint64_t>(w);
    off += static_cast<std::uint64_t>(w);
  }
  return true;
}

/// Wall-clock seconds for the last-access stamp. system_clock, not the
/// steady clock: the stamp is persisted across process lifetimes, and the
/// steady clock's epoch is per-boot. One-second granularity is plenty for
/// eviction ordering and lets hot keys dedupe their re-stamps.
std::uint32_t now_secs() {
  return static_cast<std::uint32_t>(
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

std::uint64_t file_size(int fd) {
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) return 0;
  return static_cast<std::uint64_t>(st.st_size);
}

/// Atomic (lock-free on every target we build for) access to a u64 inside
/// a MAP_SHARED mapping — the cross-process slot publication primitive.
/// (std::atomic_ref<const T> arrives post-C++20, hence the const_cast on
/// the load side; the object is genuinely mutable shared memory.)
std::uint64_t slot_load(const char* p) {
  return std::atomic_ref<std::uint64_t>(
             *reinterpret_cast<std::uint64_t*>(const_cast<char*>(p)))
      .load(std::memory_order_acquire);
}
void slot_store(char* p, std::uint64_t v) {
  std::atomic_ref<std::uint64_t>(*reinterpret_cast<std::uint64_t*>(p))
      .store(v, std::memory_order_release);
}

}  // namespace

PersistCache::PersistCache(Config cfg) : cfg_(std::move(cfg)) {
  COPATH_CHECK_MSG(!cfg_.dir.empty(),
                   "PersistCache requires a cache directory");
  cfg_.index_slots = util::next_pow2(std::max<std::size_t>(cfg_.index_slots,
                                                           64));
  std::error_code ec;
  std::filesystem::create_directories(cfg_.dir, ec);
  COPATH_CHECK_MSG(!ec, "cannot create cache directory " + cfg_.dir);
  lock_fd_ = ::open(lock_path().c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  COPATH_CHECK_MSG(lock_fd_ >= 0, "cannot create " + lock_path());
  std::lock_guard<std::mutex> lk(mu_);
  FileLock fl(lock_fd_);
  open_files_locked();
}

PersistCache::~PersistCache() {
  std::lock_guard<std::mutex> lk(mu_);
  close_files_locked();
  if (lock_fd_ >= 0) ::close(lock_fd_);
}

void PersistCache::close_files_locked() {
  if (log_map_ != nullptr) ::munmap(log_map_, log_map_bytes_);
  if (idx_map_ != nullptr) ::munmap(idx_map_, idx_map_bytes_);
  log_map_ = nullptr;
  log_map_bytes_ = 0;
  idx_map_ = nullptr;
  idx_map_bytes_ = 0;
  if (log_fd_ >= 0) ::close(log_fd_);
  if (idx_fd_ >= 0) ::close(idx_fd_);
  log_fd_ = -1;
  idx_fd_ = -1;
  slot_count_ = 0;
  log_end_ = 0;
}

void PersistCache::reset_log_locked() {
  // Catastrophic-corruption path (bad log header): start over. Truncating
  // a file another healthy process has mapped would SIGBUS it, but a
  // healthy process cannot coexist with a corrupt header — it would have
  // reset too.
  COPATH_CHECK(::ftruncate(log_fd_, 0) == 0);
  char hdr[kLogHeaderBytes] = {};
  store_raw<std::uint64_t>(hdr, kLogMagic);
  store_raw<std::uint32_t>(hdr + 8, kFileVersion);
  COPATH_CHECK(write_all(log_fd_, hdr, sizeof(hdr), 0));
}

void PersistCache::open_files_locked() {
  close_files_locked();
  // A crashed compaction may leave tmp files; they are garbage by
  // definition (the rename pair never happened).
  ::unlink((log_path() + ".tmp").c_str());
  ::unlink((idx_path() + ".tmp").c_str());

  log_fd_ = ::open(log_path().c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  COPATH_CHECK_MSG(log_fd_ >= 0, "cannot open " + log_path());
  std::uint64_t log_bytes = file_size(log_fd_);
  bool header_ok = false;
  if (log_bytes >= kLogHeaderBytes) {
    char hdr[kLogHeaderBytes];
    if (::pread(log_fd_, hdr, sizeof(hdr), 0) ==
        static_cast<ssize_t>(sizeof(hdr))) {
      header_ok = load_raw<std::uint64_t>(hdr) == kLogMagic &&
                  load_raw<std::uint32_t>(hdr + 8) == kFileVersion;
    }
  }
  if (!header_ok) {
    if (log_bytes > 0) ++stats_.corrupt_dropped;
    reset_log_locked();
  }
  ensure_log_mapped_locked(file_size(log_fd_));

  std::vector<std::pair<std::uint64_t, std::uint64_t>> live;
  log_end_ = scan_log_locked(&live);
  stats_.records = live.size();
  stats_.log_bytes = log_end_;

  // Index: adopt a structurally valid one (another process built it; its
  // entries are validated per-hit anyway), otherwise rebuild from the scan.
  idx_fd_ = ::open(idx_path().c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  COPATH_CHECK_MSG(idx_fd_ >= 0, "cannot open " + idx_path());
  const std::uint64_t idx_bytes = file_size(idx_fd_);
  bool idx_ok = false;
  std::uint64_t slots = 0;
  if (idx_bytes >= kIdxHeaderBytes) {
    char hdr[kIdxHeaderBytes];
    if (::pread(idx_fd_, hdr, sizeof(hdr), 0) ==
        static_cast<ssize_t>(sizeof(hdr))) {
      slots = load_raw<std::uint64_t>(hdr + 16);
      idx_ok = load_raw<std::uint64_t>(hdr) == kIdxMagic &&
               load_raw<std::uint32_t>(hdr + 8) == kFileVersion &&
               load_raw<std::uint32_t>(hdr + 12) == 0 &&  // not retired
               slots >= 64 && (slots & (slots - 1)) == 0 &&
               slots <= (std::uint64_t{1} << 28) &&
               idx_bytes == kIdxHeaderBytes + slots * kSlotBytes;
    }
  }
  if (idx_ok) {
    slot_count_ = slots;
    void* m = ::mmap(nullptr, idx_bytes, PROT_READ | PROT_WRITE, MAP_SHARED,
                     idx_fd_, 0);
    COPATH_CHECK_MSG(m != MAP_FAILED, "cannot map " + idx_path());
    idx_map_ = static_cast<char*>(m);
    idx_map_bytes_ = idx_bytes;
  } else {
    build_index_locked(live);
  }
}

void PersistCache::build_index_locked(
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>& live) {
  // Recreate the index in place (same inode: concurrent readers see slots
  // mutate, which per-hit validation absorbs; only the size must never
  // shrink while mapped elsewhere — and it only changes when the previous
  // file was invalid, i.e. no healthy process is using it).
  slot_count_ = cfg_.index_slots;
  const std::uint64_t bytes = kIdxHeaderBytes + slot_count_ * kSlotBytes;
  std::vector<char> image(bytes, 0);
  store_raw<std::uint64_t>(image.data(), kIdxMagic);
  store_raw<std::uint32_t>(image.data() + 8, kFileVersion);
  store_raw<std::uint64_t>(image.data() + 16, slot_count_);
  const std::uint64_t mask = slot_count_ - 1;
  for (const auto& [hash, offset] : live) {
    char* base = image.data() + kIdxHeaderBytes;
    for (std::uint64_t j = 0; j < kMaxProbe; ++j) {
      char* slot = base + ((hash + j) & mask) * kSlotBytes;
      const std::uint64_t off = load_raw<std::uint64_t>(slot + 8);
      // Later records win (they were appended later == fresher); equal
      // tags also overwrite so re-appended keys route to the new bytes.
      if (off == 0 || load_raw<std::uint64_t>(slot) == hash ||
          j + 1 == kMaxProbe) {
        store_raw<std::uint64_t>(slot, hash);
        store_raw<std::uint64_t>(slot + 8, offset);
        break;
      }
    }
  }
  COPATH_CHECK(::ftruncate(idx_fd_, 0) == 0);
  COPATH_CHECK(write_all(idx_fd_, image.data(), bytes, 0));
  void* m = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED,
                   idx_fd_, 0);
  COPATH_CHECK_MSG(m != MAP_FAILED, "cannot map " + idx_path());
  idx_map_ = static_cast<char*>(m);
  idx_map_bytes_ = bytes;
}

std::uint64_t PersistCache::scan_log_locked(
    std::vector<std::pair<std::uint64_t, std::uint64_t>>* live) {
  // Valid-prefix scan: records are back-to-back from the header; the first
  // bounds or checksum failure ends the chain. Bytes past it are a torn
  // append (crash) — counted, never trusted, overwritten by the next
  // append.
  std::uint64_t off = kLogHeaderBytes;
  const std::uint64_t end = log_map_bytes_;
  while (off + kRecHeaderBytes <= end) {
    const std::uint64_t len = load_raw<std::uint32_t>(log_map_ + off);
    if (len < kPayloadFixedBytes || len > kMaxRecordBytes ||
        off + kRecHeaderBytes + len > end) {
      break;
    }
    const char* payload = log_map_ + off + kRecHeaderBytes;
    if (checksum_bytes(payload, len) !=
        load_raw<std::uint64_t>(log_map_ + off + 8)) {
      break;
    }
    const std::uint64_t sig_len = load_raw<std::uint32_t>(payload + 32);
    const std::uint64_t res_len = load_raw<std::uint32_t>(payload + 36);
    if (kPayloadFixedBytes + sig_len + res_len != len) break;
    if (live != nullptr) {
      live->emplace_back(load_raw<std::uint64_t>(payload), off);
    }
    off += kRecHeaderBytes + len;
  }
  if (off < end) ++stats_.corrupt_dropped;
  return off;
}

void PersistCache::ensure_log_mapped_locked(std::uint64_t min_bytes) {
  if (log_map_ != nullptr && log_map_bytes_ >= min_bytes) return;
  const std::uint64_t bytes = std::max(file_size(log_fd_), kLogHeaderBytes);
  if (bytes < min_bytes) return;  // caller's bounds check will fail cleanly
  if (log_map_ != nullptr) ::munmap(log_map_, log_map_bytes_);
  log_map_ = nullptr;
  log_map_bytes_ = 0;
  // Chaos hook: an injected mapping failure throws exactly like MAP_FAILED
  // — lookup() turns it into a miss, append() into a skip.
  COPATH_CHECK_MSG(!util::fault_point("persist.mmap"),
                   "injected mmap fault for " + log_path());
  void* m = ::mmap(nullptr, bytes, PROT_READ, MAP_SHARED, log_fd_, 0);
  COPATH_CHECK_MSG(m != MAP_FAILED, "cannot map " + log_path());
  log_map_ = static_cast<char*>(m);
  log_map_bytes_ = bytes;
}

bool PersistCache::index_retired() const {
  if (idx_map_ == nullptr) return false;
  return std::atomic_ref<std::uint32_t>(
             *reinterpret_cast<std::uint32_t*>(idx_map_ + 12))
             .load(std::memory_order_acquire) != 0;
}

void PersistCache::maybe_reopen_locked() {
  if (!index_retired()) return;
  // Another process compacted: our mapped files are the pre-compaction
  // generation. They are still internally consistent (never truncated),
  // but all new traffic lands in the new generation — follow it.
  FileLock fl(lock_fd_);
  open_files_locked();
  ++stats_.reopens;
}

bool PersistCache::read_record_locked(std::uint64_t offset,
                                      RecordView* out) {
  ensure_log_mapped_locked(offset + kRecHeaderBytes);
  if (offset < kLogHeaderBytes ||
      offset + kRecHeaderBytes > log_map_bytes_) {
    return false;
  }
  const std::uint64_t len = load_raw<std::uint32_t>(log_map_ + offset);
  if (len < kPayloadFixedBytes || len > kMaxRecordBytes) return false;
  ensure_log_mapped_locked(offset + kRecHeaderBytes + len);
  if (offset + kRecHeaderBytes + len > log_map_bytes_) return false;
  const char* payload = log_map_ + offset + kRecHeaderBytes;
  // Chaos hook first in the || : an injected "checksum mismatch" takes the
  // identical refusal path as real on-disk corruption (record dropped,
  // caller degrades to a miss).
  if (util::fault_point("persist.checksum") ||
      checksum_bytes(payload, len) !=
          load_raw<std::uint64_t>(log_map_ + offset + 8)) {
    return false;
  }
  const std::uint64_t sig_len = load_raw<std::uint32_t>(payload + 32);
  const std::uint64_t res_len = load_raw<std::uint32_t>(payload + 36);
  if (kPayloadFixedBytes + sig_len + res_len != len) return false;
  out->hash = load_raw<std::uint64_t>(payload);
  out->offset = offset;
  out->opts = payload + 8;
  out->signature = std::string_view(payload + kPayloadFixedBytes, sig_len);
  out->result =
      std::string_view(payload + kPayloadFixedBytes + sig_len, res_len);
  return true;
}

bool PersistCache::find_record_locked(const CacheKeyRef& key,
                                      RecordView* out) {
  if (idx_map_ == nullptr || slot_count_ == 0) return false;
  const std::uint64_t mask = slot_count_ - 1;
  for (std::uint64_t j = 0; j < kMaxProbe; ++j) {
    const char* slot =
        idx_map_ + kIdxHeaderBytes + ((key.hash + j) & mask) * kSlotBytes;
    const std::uint64_t offset = slot_load(slot + 8);
    if (offset == 0) return false;  // end of the probe chain
    if (slot_load(slot) != key.hash) continue;
    RecordView rec;
    if (!read_record_locked(offset, &rec)) continue;
    // Full-key check against the checksummed record: the raw 24 OptionsKey
    // bytes (byte-stable — see result_cache.hpp) plus the signature. The
    // index slot routed us here; only these bytes decide the hit.
    if (rec.hash != key.hash ||
        std::memcmp(rec.opts, &key.opts, sizeof(OptionsKey)) != 0 ||
        rec.signature != key.signature) {
      continue;
    }
    *out = rec;
    return true;
  }
  return false;
}

void PersistCache::publish_slot_locked(std::uint64_t hash,
                                       std::uint64_t offset) {
  if (idx_map_ == nullptr || slot_count_ == 0) return;
  const std::uint64_t mask = slot_count_ - 1;
  char* clobber = nullptr;
  for (std::uint64_t j = 0; j < kMaxProbe; ++j) {
    char* slot =
        idx_map_ + kIdxHeaderBytes + ((hash + j) & mask) * kSlotBytes;
    const std::uint64_t off = slot_load(slot + 8);
    if (off == 0 || slot_load(slot) == hash) {
      // Offset first, tag second (both release): a reader that sees the
      // tag sees the offset; a reader racing the publish sees a mismatch
      // or a stale offset and treats the slot as routing noise.
      slot_store(slot + 8, offset);
      slot_store(slot, hash);
      return;
    }
    clobber = slot;
  }
  // Probe window full: overwrite the last probed slot. The displaced entry
  // degrades to a miss — cache semantics, validated per-hit.
  if (clobber != nullptr) {
    slot_store(clobber + 8, offset);
    slot_store(clobber, hash);
  }
}

void PersistCache::refresh_log_end_locked() {
  // Under the file lock: other processes may have appended since we last
  // looked. Their records extend the chain from our cached end — scan
  // forward only (cheap: just the new records).
  ensure_log_mapped_locked(file_size(log_fd_));
  std::uint64_t off = log_end_ < kLogHeaderBytes ? kLogHeaderBytes
                                                 : log_end_;
  while (off + kRecHeaderBytes <= log_map_bytes_) {
    const std::uint64_t len = load_raw<std::uint32_t>(log_map_ + off);
    if (len < kPayloadFixedBytes || len > kMaxRecordBytes ||
        off + kRecHeaderBytes + len > log_map_bytes_) {
      break;
    }
    const char* payload = log_map_ + off + kRecHeaderBytes;
    if (checksum_bytes(payload, len) !=
        load_raw<std::uint64_t>(log_map_ + off + 8)) {
      break;
    }
    const std::uint64_t sig_len = load_raw<std::uint32_t>(payload + 32);
    const std::uint64_t res_len = load_raw<std::uint32_t>(payload + 36);
    if (kPayloadFixedBytes + sig_len + res_len != len) break;
    off += kRecHeaderBytes + len;
  }
  log_end_ = off;
  stats_.log_bytes = off;
}

std::shared_ptr<const SolveResult> PersistCache::lookup(
    const CacheKeyRef& key) {
  std::lock_guard<std::mutex> lk(mu_);
  try {
    maybe_reopen_locked();
    RecordView rec;
    if (find_record_locked(key, &rec)) {
      auto res = std::make_shared<SolveResult>();
      if (net::protocol::decode_result_record(rec.result, res.get())) {
        // LRU stamp, written through the fd (the log mapping is PROT_READ).
        // No file lock: a 4-byte pwrite into the header's stamp field races
        // only other stamps, sits outside the checksum, and at worst
        // perturbs eviction order. Skipped when this second already
        // stamped — hot keys cost one pwrite per second, not per hit.
        const std::uint32_t now = now_secs();
        if (load_raw<std::uint32_t>(log_map_ + rec.offset + 4) != now) {
          char stamp[4];
          store_raw<std::uint32_t>(stamp, now);
          (void)::pwrite(log_fd_, stamp, sizeof(stamp),
                         static_cast<off_t>(rec.offset + 4));
        }
        ++stats_.hits;
        return res;
      }
    }
  } catch (...) {
    // IO/alloc failure on the lookup path is a miss, nothing more.
  }
  ++stats_.misses;
  return nullptr;
}

void PersistCache::append(const CacheKeyRef& key,
                          const SolveResult& canonical) {
  std::lock_guard<std::mutex> lk(mu_);
  try {
    maybe_reopen_locked();
    // Encode outside the file lock: hash | OptionsKey raw bytes | lengths
    // | signature | full result record.
    scratch_.clear();
    scratch_.resize(kRecHeaderBytes);  // header patched in below
    {
      char fixed[kPayloadFixedBytes] = {};
      store_raw<std::uint64_t>(fixed, key.hash);
      std::memcpy(fixed + 8, &key.opts, sizeof(OptionsKey));
      store_raw<std::uint32_t>(fixed + 32,
                               static_cast<std::uint32_t>(
                                   key.signature.size()));
      scratch_.append(fixed, sizeof(fixed));
    }
    scratch_.append(key.signature);
    const std::size_t result_at = scratch_.size();
    net::protocol::encode_result_record(scratch_, canonical);
    const std::uint64_t payload_len = scratch_.size() - kRecHeaderBytes;
    if (payload_len > kMaxRecordBytes) {
      ++stats_.append_skips;
      return;
    }
    store_raw<std::uint32_t>(
        scratch_.data() + kRecHeaderBytes + 36,
        static_cast<std::uint32_t>(scratch_.size() - result_at));
    store_raw<std::uint32_t>(scratch_.data(),
                             static_cast<std::uint32_t>(payload_len));
    // Creation counts as the first access: a fresh record must not look
    // like the coldest entry to the LRU eviction in compact_locked.
    store_raw<std::uint32_t>(scratch_.data() + 4, now_secs());
    store_raw<std::uint64_t>(
        scratch_.data() + 8,
        checksum_bytes(scratch_.data() + kRecHeaderBytes, payload_len));

    FileLock fl(lock_fd_);
    if (index_retired()) {
      open_files_locked();
      ++stats_.reopens;
    }
    refresh_log_end_locked();
    RecordView existing;
    if (find_record_locked(key, &existing)) {
      ++stats_.append_dups;
      return;
    }
    if (log_end_ + scratch_.size() > cfg_.max_log_bytes) {
      CompactReport report;
      if (!compact_locked(&report) ||
          log_end_ + scratch_.size() > cfg_.max_log_bytes) {
        ++stats_.append_skips;
        return;
      }
    }
    if (!write_all(log_fd_, scratch_.data(), scratch_.size(), log_end_)) {
      ++stats_.append_skips;
      return;
    }
    if (cfg_.sync_appends) ::fdatasync(log_fd_);
    publish_slot_locked(key.hash, log_end_);
    log_end_ += scratch_.size();
    stats_.log_bytes = log_end_;
    ++stats_.appends;
    ++stats_.records;
  } catch (...) {
    ++stats_.append_skips;
  }
}

bool PersistCache::compact_locked(CompactReport* report) {
  // Caller holds the file lock. Copy every index-reachable record
  // verbatim (checksums stay valid) into fresh files, retire the old
  // index so other processes follow, and rename the new generation in.
  // The old files are never truncated — mappings held by concurrent
  // readers stay fully backed.
  report->bytes_before = log_end_;
  if (idx_map_ == nullptr || log_map_ == nullptr) return false;

  std::vector<std::uint64_t> offsets;
  for (std::uint64_t i = 0; i < slot_count_; ++i) {
    const char* slot = idx_map_ + kIdxHeaderBytes + i * kSlotBytes;
    const std::uint64_t off = slot_load(slot + 8);
    if (off != 0) offsets.push_back(off);
  }
  std::sort(offsets.begin(), offsets.end());
  offsets.erase(std::unique(offsets.begin(), offsets.end()), offsets.end());

  const std::string log_tmp = log_path() + ".tmp";
  const std::string idx_tmp = idx_path() + ".tmp";
  const int new_log =
      ::open(log_tmp.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (new_log < 0) return false;
  {
    char hdr[kLogHeaderBytes] = {};
    store_raw<std::uint64_t>(hdr, kLogMagic);
    store_raw<std::uint32_t>(hdr + 8, kFileVersion);
    if (!write_all(new_log, hdr, sizeof(hdr), 0)) {
      ::close(new_log);
      ::unlink(log_tmp.c_str());
      return false;
    }
  }
  // Validate every reachable record first, carrying its last-access stamp,
  // so the size cap can be enforced before any bytes are copied.
  struct LiveRec {
    std::uint64_t off = 0;
    std::uint64_t len = 0;
    std::uint64_t hash = 0;
    std::uint32_t stamp = 0;
  };
  std::vector<LiveRec> keep;
  keep.reserve(offsets.size());
  std::uint64_t total = 0;
  std::uint64_t need = kLogHeaderBytes;
  for (const std::uint64_t off : offsets) {
    ++total;
    RecordView rec;
    if (!read_record_locked(off, &rec)) continue;  // stale slot: drop
    const std::uint64_t len = load_raw<std::uint32_t>(log_map_ + off);
    keep.push_back({off, len, rec.hash,
                    load_raw<std::uint32_t>(log_map_ + off + 4)});
    need += kRecHeaderBytes + len;
  }
  std::uint64_t lru_dropped = 0;
  if (need > cfg_.max_log_bytes) {
    // Even the live set busts the cap: evict coldest-first (stamp 0 — a
    // pre-LRU record — is the coldest possible; offset breaks ties toward
    // the oldest append). Target 7/8 of the cap, not the cap itself, so
    // the next few appends don't each re-trigger a full rewrite.
    std::stable_sort(keep.begin(), keep.end(),
                     [](const LiveRec& a, const LiveRec& b) {
                       return a.stamp != b.stamp ? a.stamp < b.stamp
                                                 : a.off < b.off;
                     });
    const std::uint64_t target =
        cfg_.max_log_bytes - cfg_.max_log_bytes / 8;
    std::size_t drop = 0;
    while (drop < keep.size() && need > target) {
      need -= kRecHeaderBytes + keep[drop].len;
      ++drop;
    }
    lru_dropped = drop;
    keep.erase(keep.begin(),
               keep.begin() + static_cast<std::ptrdiff_t>(drop));
    // Restore log order for the copy: sequential reads of the old mapping,
    // and the new log keeps append order (later record wins on rebuild).
    std::sort(keep.begin(), keep.end(),
              [](const LiveRec& a, const LiveRec& b) {
                return a.off < b.off;
              });
  }

  std::vector<std::pair<std::uint64_t, std::uint64_t>> live;
  std::uint64_t out_off = kLogHeaderBytes;
  for (const LiveRec& lr : keep) {
    if (!write_all(new_log, log_map_ + lr.off, kRecHeaderBytes + lr.len,
                   out_off)) {
      ::close(new_log);
      ::unlink(log_tmp.c_str());
      return false;
    }
    live.emplace_back(lr.hash, out_off);
    out_off += kRecHeaderBytes + lr.len;
  }
  ::fsync(new_log);
  ::close(new_log);

  // Fresh index image for the new offsets.
  const std::uint64_t slots = cfg_.index_slots;
  const std::uint64_t idx_bytes = kIdxHeaderBytes + slots * kSlotBytes;
  std::vector<char> image(idx_bytes, 0);
  store_raw<std::uint64_t>(image.data(), kIdxMagic);
  store_raw<std::uint32_t>(image.data() + 8, kFileVersion);
  store_raw<std::uint64_t>(image.data() + 16, slots);
  const std::uint64_t mask = slots - 1;
  for (const auto& [hash, offset] : live) {
    char* base = image.data() + kIdxHeaderBytes;
    for (std::uint64_t j = 0; j < kMaxProbe; ++j) {
      char* slot = base + ((hash + j) & mask) * kSlotBytes;
      if (load_raw<std::uint64_t>(slot + 8) == 0 ||
          load_raw<std::uint64_t>(slot) == hash || j + 1 == kMaxProbe) {
        store_raw<std::uint64_t>(slot, hash);
        store_raw<std::uint64_t>(slot + 8, offset);
        break;
      }
    }
  }
  const int new_idx =
      ::open(idx_tmp.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (new_idx < 0) {
    ::unlink(log_tmp.c_str());
    return false;
  }
  if (!write_all(new_idx, image.data(), idx_bytes, 0)) {
    ::close(new_idx);
    ::unlink(log_tmp.c_str());
    ::unlink(idx_tmp.c_str());
    return false;
  }
  ::fsync(new_idx);
  ::close(new_idx);

  // Point of no return: retire the old index (readers of the old
  // generation reopen on their next operation), then swap the names.
  std::atomic_ref<std::uint32_t>(
      *reinterpret_cast<std::uint32_t*>(idx_map_ + 12))
      .store(1, std::memory_order_release);
  if (::rename(log_tmp.c_str(), log_path().c_str()) != 0 ||
      ::rename(idx_tmp.c_str(), idx_path().c_str()) != 0) {
    // Half-renamed is still safe: the retired flag forces everyone
    // (including us, below) to reopen and re-scan whatever names resolve.
  }
  open_files_locked();
  ++stats_.compactions;
  stats_.records = live.size();
  report->live_records = live.size();
  report->bytes_after = log_end_;
  report->dropped_records = total - live.size();
  report->lru_dropped = lru_dropped;
  return true;
}

PersistCache::CompactReport PersistCache::compact() {
  std::lock_guard<std::mutex> lk(mu_);
  CompactReport report;
  try {
    maybe_reopen_locked();
    FileLock fl(lock_fd_);
    refresh_log_end_locked();
    compact_locked(&report);
  } catch (...) {
    // Compaction is advisory; a failure leaves the cache as it was.
  }
  return report;
}

PersistCache::Stats PersistCache::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace copath::service
