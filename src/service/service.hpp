// copath::Service — the concurrent, cache-aware front-end over Solver.
//
// Where Solver::solve_batch is a synchronous fan-out over a span the caller
// already holds, Service is the traffic-serving shape: requests arrive one
// at a time from many threads, `submit()` hands back a std::future
// immediately, and a fixed pool of solver workers drains a bounded MPMC
// queue. Four mechanisms turn repeated/small traffic into cheap traffic:
//
//  * Canonical memo cache — every request is canonicalized
//    (cograph/canonical.hpp) and looked up in a sharded ResultCache by its
//    binary structural signature; a hit replays the stored canonical-space
//    result through the requesting instance's own leaf permutation and
//    never touches a solve engine.
//  * In-flight coalescing — a request whose (canonical signature, options)
//    twin is *currently being solved* parks on that computation instead of
//    starting its own; when the twin finishes, every parked waiter is
//    fulfilled from the one result. Concurrent identical requests compute
//    once.
//  * Express lane — a request below the Adaptive cost model's native floor
//    skips backend/registry dispatch entirely and runs parse -> binarize ->
//    sequential sweep inline on the worker thread (service/express.hpp),
//    with all scratch drawn from the worker's thread-local exec::Arena and
//    no native-thread lease claimed. Steady-state small requests perform
//    zero arena-fresh allocations from request text to SolveResult; the
//    per-worker arena counters aggregated in Stats prove it continuously.
//  * Backpressure — the submit queue is bounded; producers block in
//    submit() when solvers fall behind, so bursts cost latency, not
//    memory.
//
// Failures stay structured: a bad instance resolves to an ok == false
// SolveResult on the future, exactly like Solver. Results for cache hits
// and coalesced twins are bitwise-identical to a direct solve for repeated
// instances, and isomorphism-equivalent (valid cover of the same minimum
// size, identical verdicts) for permuted/relabeled ones — see
// DESIGN.md §6 for the soundness argument and §8 for the front-end
// allocation budget.
//
//   copath::Service svc;
//   auto f1 = svc.submit({copath::Instance::text("(* (+ a b) c)")});
//   auto f2 = svc.submit({copath::Instance::text("(* c (+ b a))")});  // hit
//   SolveResult r1 = f1.get(), r2 = f2.get();
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "copath_solver.hpp"
#include "service/persist_cache.hpp"
#include "service/result_cache.hpp"
#include "util/mpmc_queue.hpp"
#include "util/thread_budget.hpp"

namespace copath {

// The structured failure strings Service emits for refusals it originates
// (as SolveResult::error on an ok == false result). They are part of the
// service's contract: the serving tier (net/server.cpp) maps each onto a
// distinct wire status, so compare against these constants, not ad-hoc
// literals.
inline constexpr const char* kErrDraining = "service is draining";
inline constexpr const char* kErrShutDown = "service is shut down";
/// The request's deadline passed — either while it was queued (the solve
/// never ran) or mid-solve (the cancel token tripped and the engine
/// unwound). Aliases util::kDeadlineMsg: the exec layer emits the same
/// string when a token trips with Reason::kDeadline, so the wire mapping
/// needs exactly one comparison.
inline constexpr const char* kErrDeadlineExceeded = util::kDeadlineMsg;
/// The request was cancelled — wire Cancel verb, client disconnect, or the
/// worker watchdog. Aliases util::kCancelledMsg (see above).
inline constexpr const char* kErrCancelled = util::kCancelledMsg;
/// Admission refused under overload pressure (today only injected via
/// util::FaultInjector's "service.admit" point; a real admission limiter
/// would reuse the same string).
inline constexpr const char* kErrOverloaded = "service overloaded";

class Service {
 public:
  struct Options {
    /// Default solve options for requests that carry none. The serving
    /// default is Backend::Adaptive: the cost model routes every request
    /// between the sequential sweep and the native pipeline using the
    /// request's thread budget as the batch-pressure signal. Per-request
    /// worker counts are clamped to the per-worker thread budget (the
    /// solve_batch rule: no nested oversubscription).
    SolveOptions solve{.backend = Backend::Adaptive};
    /// Solver worker threads draining the queue; 0 = hardware concurrency.
    std::size_t workers = 0;
    /// Bound of the submit queue — the backpressure knob. submit() blocks
    /// while the queue holds this many undispatched requests.
    std::size_t queue_capacity = 256;
    /// Master switch for the memo cache AND in-flight coalescing (off =
    /// every request computes; the differential-test baseline).
    bool use_cache = true;
    /// Master switch for the express lane (off = every computed request
    /// dispatches through the backend registry; differential baseline).
    bool use_express = true;
    service::ResultCache::Config cache{};
    /// Persistent L2 tier (service/persist_cache.hpp). persist.dir empty =
    /// RAM-only (no files touched). The L2 is keyed canonically like L1,
    /// so it requires use_cache; probe order is L1 -> L2 (promote on hit)
    /// and every fresh ok solve is written through.
    service::PersistCache::Config persist{};
    /// Worker watchdog interval in ms; 0 = off. When on, a supervisor
    /// thread watches each worker's in-solve cancel-token heartbeat: a
    /// solve that makes no checkpoint progress for this long gets its
    /// token tripped (Stats::watchdog_cancels) and unwinds with a
    /// structured Cancelled/DeadlineExceeded result at its next poll.
    /// Threads are never killed — a stuck solve that never polls (foreign
    /// backend stuck in a syscall) is only *reported* via
    /// Stats::stuck_workers / the Health verb.
    std::uint32_t watchdog_ms = 0;
  };

  struct Stats {
    std::uint64_t submitted = 0;
    /// Futures fulfilled (hits + misses computed + coalesced + failures).
    std::uint64_t completed = 0;
    /// Requests sitting in the submit queue, undispatched — the
    /// backpressure signal the daemon maps its per-connection read window
    /// onto (stop reading sockets when this approaches queue_capacity).
    std::uint64_t queue_depth = 0;
    /// Accepted requests not yet fulfilled (queued + being solved +
    /// parked on an in-flight twin) = submitted - completed.
    std::uint64_t in_flight = 0;
    /// True once drain() has begun: new submits get structured refusals.
    bool draining = false;
    /// Mirrors of cache.hits / cache.misses (one probe per cache-enabled
    /// request, so the cache counters are the request-level numbers).
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    /// Requests fulfilled by parking on an in-flight twin computation.
    std::uint64_t coalesced = 0;
    /// Requests shed at the worker because their deadline passed while
    /// they sat in the queue: answered with a structured "deadline
    /// exceeded" failure, the solve never ran. Counted per request (a
    /// whole expired batch adds its slot count).
    std::uint64_t shed_expired = 0;
    /// Requests solved inline on the express lane (no registry dispatch,
    /// no native-thread lease).
    std::uint64_t express_solves = 0;
    /// submit_batch calls accepted (each is ONE queue slot and ONE worker
    /// dispatch however many requests it carries).
    std::uint64_t batch_submits = 0;
    /// Batch requests answered from another request in the SAME batch
    /// (intra-batch dedup by canonical signature — cache hits are counted
    /// by cache_hits as usual, once per unique group).
    std::uint64_t batch_dedup_hits = 0;
    /// Unique batch groups solved inside the packed slab sweep (one arena
    /// allocation, back-to-back sequential sweeps; see service/batch.hpp).
    std::uint64_t packed_solves = 0;
    /// Native-thread leases ever claimed from the budgeter — stays flat
    /// while only express-eligible traffic arrives.
    std::uint64_t lease_acquires = 0;
    /// Thread-local front-end arena counters summed over the workers
    /// (request scratch: parse, canonicalize, binarize, sweep, plus the
    /// Adaptive native route's executor arrays). fresh_allocs flat across
    /// warm requests == the zero-allocation steady state; the regression
    /// test in tests/frontend_test.cpp pins it.
    std::uint64_t arena_acquires = 0;
    std::uint64_t arena_reuses = 0;
    std::uint64_t arena_fresh_allocs = 0;
    /// Requests answered with a structured cancellation failure because
    /// their cancel token tripped (explicit Cancel, client disconnect, or
    /// watchdog) — at pickup or mid-solve. Deadline-at-pop refusals stay
    /// in shed_expired; a mid-solve deadline trip counts here.
    std::uint64_t cancelled = 0;
    /// Tokens tripped by the worker watchdog (no checkpoint progress for
    /// Options::watchdog_ms while on a worker).
    std::uint64_t watchdog_cancels = 0;
    /// Workers currently past the watchdog interval with no heartbeat —
    /// solves that were cancelled but have not unwound (not polling). The
    /// Health verb's strongest degradation signal: these workers are lost
    /// capacity until their solve returns.
    std::uint64_t stuck_workers = 0;
    service::CacheStats cache{};
    /// Persistent tier counters (zeros when no cache dir is configured).
    bool persist_enabled = false;
    /// L2 hits promoted into L1 (single submits + batch groups).
    std::uint64_t persist_promotions = 0;
    service::PersistCache::Stats persist{};
  };

  Service() : Service(Options{}) {}
  explicit Service(Options opts);
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Completion callback for the async submit paths. Invoked exactly once
  /// per accepted or refused request, on whichever thread finishes it
  /// (a solver worker, the worker computing a coalesced twin, or — for
  /// refusals — the submitting thread itself). Must not throw.
  using ResultSink = std::function<void(SolveResult)>;

  /// Enqueues a request and returns the future of its result. Blocks while
  /// the queue is full (backpressure). After drain()/shutdown() the future
  /// resolves immediately to a structured refusal failure.
  [[nodiscard]] std::future<SolveResult> submit(SolveRequest req);

  /// Callback form of submit(): `sink` is invoked with the result instead
  /// of a future resolving. The daemon's completion path — no promise
  /// shared state, and the worker thread runs the sink inline (response
  /// encoding happens off the event loop). Same backpressure/refusal
  /// contract as submit().
  void submit_async(SolveRequest req, ResultSink sink);

  /// Non-blocking submit_async: returns false when the queue is full,
  /// leaving `req`/`sink` intact so the caller can park them and retry
  /// (the daemon pauses the connection's reads instead of blocking its
  /// event loop). Refusals after drain()/shutdown() consume the request —
  /// the sink is invoked inline with the structured refusal — and return
  /// true.
  [[nodiscard]] bool try_submit_async(SolveRequest& req, ResultSink& sink);

  /// Completion callback for the batch submit paths: invoked exactly once
  /// with results positionally aligned to the submitted requests. Must not
  /// throw.
  using BatchSink = std::function<void(std::vector<SolveResult>)>;

  /// Enqueues a whole batch as ONE queue slot and solves it fused on one
  /// worker (service/batch.hpp): intra-batch dedup by canonical signature,
  /// one cache probe per unique group, express-eligible survivors packed
  /// into a single arena slab and swept back-to-back under ONE native-
  /// thread lease. Results are positionally aligned with `reqs` and
  /// bitwise-equal to N independent submit() calls (DESIGN.md §10). Blocks
  /// while the queue is full; after drain()/shutdown() every slot resolves
  /// to a structured refusal. Batches bypass in-flight coalescing — dedup
  /// against concurrent singles happens through the cache instead.
  [[nodiscard]] std::future<std::vector<SolveResult>> submit_batch(
      std::vector<SolveRequest> reqs);

  /// Convenience: wraps bare instances in default-option requests.
  [[nodiscard]] std::future<std::vector<SolveResult>> submit_batch(
      std::span<const Instance> instances);

  /// Callback form of submit_batch (the daemon's completion path).
  void submit_batch_async(std::vector<SolveRequest> reqs, BatchSink sink);

  /// Non-blocking submit_batch_async: returns false when the queue is
  /// full, leaving `reqs`/`sink` intact for the caller to park and retry.
  /// Refusals after drain()/shutdown() consume the batch — the sink runs
  /// inline with one structured refusal per slot — and return true.
  [[nodiscard]] bool try_submit_batch_async(std::vector<SolveRequest>& reqs,
                                            BatchSink& sink);

  /// Graceful teardown: refuses every submit from this point on (callers
  /// get a structured "service is draining" failure), waits until every
  /// already-accepted request has been fulfilled, then stops the workers.
  /// Idempotent and safe to race with shutdown()/submit() from other
  /// threads.
  void drain();

  /// Destructor teardown: same worker stop as drain() (accepted requests
  /// are still fulfilled — the queue delivers already-enqueued items after
  /// close), but refusals say "shut down" and no draining state is
  /// advertised in stats(). Idempotent; called by the destructor.
  void shutdown();

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] const Options& options() const { return opts_; }
  [[nodiscard]] std::size_t workers() const { return threads_.size(); }

  /// The admin compaction: clears + stat-resets the RAM tier (safe — every
  /// ok result was written through to L2 when one is configured) and
  /// compacts the persistent tier. Callable any time, including while
  /// workers are solving.
  struct CompactReport {
    /// L1 entries dropped by the clear (its counters reset too).
    std::uint64_t l1_dropped = 0;
    bool l2_enabled = false;
    service::PersistCache::CompactReport l2{};
  };
  CompactReport compact_caches();

 private:
  struct Job {
    SolveRequest req;
    ResultSink sink;
    /// Batch variant: when `is_batch`, `batch`/`batch_sink` carry the whole
    /// submit_batch payload and `req`/`sink` are unused. One Job = one
    /// queue slot either way — a batch occupies a single backpressure unit.
    std::vector<SolveRequest> batch;
    BatchSink batch_sink;
    bool is_batch = false;
    /// Absolute steady-clock expiry (util::steady_now_ms domain; 0 =
    /// none), stamped at ADMISSION from the request's relative
    /// deadline_ms so queue time counts against the budget. A batch
    /// carries the tightest nonzero deadline among its slots.
    std::uint64_t deadline_at = 0;
    /// This job's cancel token: the request's own (set by net::Server) or
    /// one the Service created at admission because a deadline or the
    /// watchdog needs one (see arm_job_cancel). A batch's token is its
    /// frame token (slot 0's). nullptr = job is not cancellable.
    std::shared_ptr<util::CancelToken> cancel;
  };
  /// A request parked on an in-flight twin. Keeps its whole SolveRequest
  /// (instance moved, cheap) so fulfillment can replay through that
  /// instance's canonical permutation — and so a waiter whose leader got
  /// *cancelled* can be re-queued as its own request instead of inheriting
  /// a cancellation it never asked for.
  struct Waiter {
    ResultSink sink;
    SolveRequest req;
    std::uint64_t deadline_at = 0;
  };
  struct InFlight {
    std::vector<Waiter> waiters;
  };
  /// In-flight twins are keyed by the owned binary cache key; the 64-bit
  /// canonical-and-options hash is the map hash (full keys disambiguate).
  struct FlightHash {
    std::size_t operator()(const service::CacheKey& k) const {
      return static_cast<std::size_t>(k.hash);
    }
  };

  void worker_loop(std::size_t worker);
  void process(Job job, std::size_t worker);
  void process_batch(Job job, std::size_t worker);
  /// Deadline/cancellation shedding: answers every slot of a dead job with
  /// the structured `reason` failure without touching cache or engine —
  /// the whole point is to not spend worker time on dead work. `reason` is
  /// kErrDeadlineExceeded or kErrCancelled.
  void shed_job(Job job, const char* reason);
  /// Populates Job::cancel (creating a token when a deadline or the
  /// watchdog needs one) and arms the token's absolute deadline.
  void arm_job_cancel(Job& job);
  /// Supervisor: trips the token of any worker whose solve heartbeat is
  /// older than Options::watchdog_ms.
  void watchdog_loop();
  /// Answers a parked waiter after its leader was cancelled: with the
  /// waiter's own cancellation if ITS token tripped, otherwise by
  /// re-queuing it as a fresh job (refused Overloaded if the queue is
  /// full) — one client's cancel never poisons another's twin request.
  void requeue_waiter(Waiter w);
  /// One structured refusal per slot, invoked inline on the submitting
  /// thread (mirrors the single-request refusal path). `reason` is one of
  /// the kErr* contract strings above.
  void refuse_batch(std::vector<SolveRequest>& reqs, BatchSink& sink,
                    const char* reason);
  /// Shared close-and-join half of drain()/shutdown().
  void stop_workers();
  [[nodiscard]] SolveOptions effective_options(const SolveRequest& req) const;
  [[nodiscard]] const char* refusal_reason() const {
    return draining_.load(std::memory_order_relaxed) ? kErrDraining
                                                     : kErrShutDown;
  }

  Options opts_;
  /// Divides the host's threads among concurrently *solving* workers for
  /// native-capable requests; claims return on completion, so a lone big
  /// request on an idle service gets the whole machine.
  util::ThreadBudgeter budgeter_;
  /// Workers between entering solve_budgeted and claiming their lease —
  /// the divisor for each claim (not "busy": workers already holding a
  /// lease have subtracted their grant from the budgeter's pool).
  std::atomic<std::size_t> pending_{0};
  /// threads_.size(), frozen before the workers start (reading the vector
  /// from workers would race its construction).
  std::size_t worker_count_ = 0;
  Solver solver_;
  service::ResultCache cache_;
  /// The L2 tier; null when Options::persist.dir is empty.
  std::unique_ptr<service::PersistCache> persist_;
  util::MpmcQueue<Job> queue_;
  std::mutex inflight_mu_;
  std::unordered_map<service::CacheKey, InFlight, FlightHash> inflight_;
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> express_{0};
  std::atomic<std::uint64_t> batch_submits_{0};
  std::atomic<std::uint64_t> batch_dedup_{0};
  std::atomic<std::uint64_t> promotions_{0};
  std::atomic<std::uint64_t> packed_{0};
  std::atomic<std::uint64_t> arena_acquires_{0};
  std::atomic<std::uint64_t> arena_reuses_{0};
  std::atomic<std::uint64_t> arena_fresh_{0};
  std::atomic<std::uint64_t> cancelled_{0};
  std::atomic<std::uint64_t> watchdog_cancels_{0};
  std::atomic<bool> draining_{false};
  /// Watchdog state: one slot per worker, registered while that worker is
  /// inside a solve (WatchGuard in service.cpp). Guarded by watch_mu_;
  /// watch_cv_ wakes the supervisor for shutdown.
  struct WatchSlot {
    std::shared_ptr<util::CancelToken> token;
    std::uint64_t started_ms = 0;
  };
  friend class WatchGuard;
  mutable std::mutex watch_mu_;
  std::vector<WatchSlot> watch_;
  std::condition_variable watch_cv_;
  bool watch_stop_ = false;  // guarded by watch_mu_
  std::once_flag join_once_;
  /// Supervisor thread (running only when Options::watchdog_ms > 0);
  /// ordered just before threads_ for the same built-*this reason.
  std::thread watchdog_;
  std::vector<std::thread> threads_;  // last member: workers see a built *this
};

}  // namespace copath
