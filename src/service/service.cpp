#include "service/service.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>
#include <utility>

#include "core/backend.hpp"
#include "exec/arena.hpp"
#include "service/batch.hpp"
#include "service/express.hpp"
#include "util/clock.hpp"
#include "util/fault.hpp"
#include "util/thread_pool.hpp"

namespace copath {
namespace {

SolveResult failure(const std::string& label, Backend backend,
                    std::string error) {
  SolveResult res;
  res.label = label;
  res.backend = backend;
  res.error = std::move(error);
  return res;
}

std::uint64_t deadline_at_from(std::uint32_t deadline_ms) {
  return deadline_ms == 0 ? 0 : util::steady_now_ms() + deadline_ms;
}

/// A batch shares one queue slot, so it expires as a unit: the tightest
/// nonzero slot deadline governs the whole dispatch.
std::uint64_t batch_deadline_at(const std::vector<SolveRequest>& reqs) {
  std::uint64_t tightest = 0;
  const std::uint64_t now = util::steady_now_ms();
  for (const SolveRequest& r : reqs) {
    if (r.deadline_ms == 0) continue;
    const std::uint64_t at = now + r.deadline_ms;
    if (tightest == 0 || at < tightest) tightest = at;
  }
  return tightest;
}

/// True when a failed result is a cancellation outcome (either reason) —
/// the condition under which parked waiters must not inherit it.
bool is_cancel_error(const SolveResult& res) {
  return !res.ok &&
         (res.error == kErrCancelled || res.error == kErrDeadlineExceeded);
}

/// The "solve.stall" fault: spin WITHOUT heartbeating until the job's
/// token trips, so the solve looks exactly like a hung backend to the
/// watchdog and to deadline enforcement. Hard-capped so a mis-armed test
/// (no watchdog, no deadline, nobody to trip the token) cannot wedge a
/// worker forever.
void stall_for_token(util::CancelToken* token) {
  const std::uint64_t cap_at = util::steady_now_ms() + 5000;
  while (util::steady_now_ms() < cap_at) {
    if (token != nullptr && token->cancelled()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

}  // namespace

/// RAII registration of a worker's in-solve cancel token with the
/// watchdog. No-op (no lock touched) when the watchdog is off or the job
/// carries no token.
class WatchGuard {
 public:
  WatchGuard(Service& s, std::size_t worker,
             const std::shared_ptr<util::CancelToken>& token)
      : s_(s), worker_(worker) {
    if (s_.opts_.watchdog_ms == 0 || token == nullptr) return;
    token->poll();  // heartbeat at solve start: the watchdog clock begins now
    std::lock_guard<std::mutex> lock(s_.watch_mu_);
    s_.watch_[worker_] = Service::WatchSlot{token, util::steady_now_ms()};
    armed_ = true;
  }
  ~WatchGuard() {
    if (!armed_) return;
    std::lock_guard<std::mutex> lock(s_.watch_mu_);
    s_.watch_[worker_] = Service::WatchSlot{};
  }
  WatchGuard(const WatchGuard&) = delete;
  WatchGuard& operator=(const WatchGuard&) = delete;

 private:
  Service& s_;
  std::size_t worker_;
  bool armed_ = false;
};

Service::Service(Options opts)
    : opts_(std::move(opts)),
      budgeter_(util::ThreadPool::default_workers()),
      solver_(opts_.solve),
      cache_(opts_.cache),
      // The L2 keys canonically like L1 (use_cache computes the canonical
      // form it needs), so it rides the same master switch.
      persist_(opts_.use_cache && !opts_.persist.dir.empty()
                   ? std::make_unique<service::PersistCache>(opts_.persist)
                   : nullptr),
      queue_(opts_.queue_capacity) {
  const std::size_t workers = opts_.workers == 0
                                  ? util::ThreadPool::default_workers()
                                  : opts_.workers;
  worker_count_ = workers;
  watch_.resize(workers);
  if (opts_.watchdog_ms > 0) {
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

Service::~Service() { shutdown(); }

void Service::stop_workers() {
  queue_.close();
  // close() wakes every producer/consumer; already-enqueued jobs are still
  // popped and processed, so joining the workers IS the wait-for-in-flight
  // half of drain. call_once makes concurrent drain()/shutdown() safe.
  std::call_once(join_once_, [this] {
    for (auto& t : threads_) {
      if (t.joinable()) t.join();
    }
    // Workers are gone (every slot cleared), so the supervisor has nothing
    // left to watch: stop it last.
    {
      std::lock_guard<std::mutex> lock(watch_mu_);
      watch_stop_ = true;
    }
    watch_cv_.notify_all();
    if (watchdog_.joinable()) watchdog_.join();
  });
}

void Service::drain() {
  draining_.store(true, std::memory_order_relaxed);
  stop_workers();
}

void Service::shutdown() { stop_workers(); }

SolveOptions Service::effective_options(const SolveRequest& req) const {
  return req.options.value_or(opts_.solve);
}

void Service::arm_job_cancel(Job& job) {
  job.cancel = job.is_batch
                   ? (job.batch.empty() ? nullptr : job.batch.front().cancel)
                   : job.req.cancel;
  if (job.cancel == nullptr &&
      (job.deadline_at != 0 || opts_.watchdog_ms > 0)) {
    // Nobody handed us a token but this job needs one: a deadline must be
    // enforceable mid-solve, and the watchdog needs something to trip.
    job.cancel = std::make_shared<util::CancelToken>();
    if (!job.is_batch) job.req.cancel = job.cancel;
  }
  if (job.cancel != nullptr && job.deadline_at != 0) {
    job.cancel->set_deadline(job.deadline_at);
  }
}

void Service::watchdog_loop() {
  // Wake ~4x per interval so a stall is detected within about 1.25
  // intervals worst case; the cv exists only for prompt shutdown.
  const auto period = std::chrono::milliseconds(
      std::max<std::uint32_t>(1, opts_.watchdog_ms / 4));
  std::unique_lock<std::mutex> lock(watch_mu_);
  while (!watch_stop_) {
    watch_cv_.wait_for(lock, period);
    if (watch_stop_) break;
    const std::uint64_t now = util::steady_now_ms();
    for (WatchSlot& slot : watch_) {
      if (slot.token == nullptr) continue;
      const std::uint64_t beat =
          std::max(slot.token->last_beat_ms(), slot.started_ms);
      if (now < beat + opts_.watchdog_ms) continue;
      if (slot.token->cancelled()) continue;  // tripped; waiting to unwind
      // No checkpoint progress for a whole interval: reclaim the worker.
      // A passed deadline reports as DeadlineExceeded (the client's
      // budget expired — that it expired inside a stuck solve is detail);
      // otherwise the caller sees an explicit Cancelled.
      const std::uint64_t dl = slot.token->deadline_at_ms();
      slot.token->cancel(dl != 0 && now >= dl
                             ? util::CancelToken::Reason::kDeadline
                             : util::CancelToken::Reason::kCancelled);
      watchdog_cancels_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

namespace {

/// RAII thread-budget lease around one engine solve: acquired only at the
/// two generic solve sites (cache hits, coalesced waiters, and express
/// inline solves never consume budget nor distort Adaptive's pressure
/// signal), released on scope exit even if the engine throws. Exposes the
/// worker-clamped options.
class BudgetLease {
 public:
  BudgetLease(util::ThreadBudgeter& budgeter,
              std::atomic<std::size_t>& pending, std::size_t workers,
              SolveOptions opts)
      : budgeter_(budgeter),
        leased_(core::may_use_native_threads(opts.backend)),
        opts_(std::move(opts)) {
    if (leased_) {
      // Peers = workers racing for a claim right now (including us; not
      // "busy" workers — lease holders already subtracted their grant
      // from the pool). The grant is also Backend::Adaptive's pressure
      // signal: a saturated service hands out budget 1 and the model
      // routes sequential.
      const std::size_t peers =
          std::min(pending.fetch_add(1, std::memory_order_relaxed) + 1,
                   workers);
      lease_ = budgeter_.acquire(peers);
      pending.fetch_sub(1, std::memory_order_relaxed);
      opts_.workers = opts_.workers == 0
                          ? lease_.threads
                          : std::min(opts_.workers, lease_.threads);
    } else {
      // Per-request PRAM machines run inline on their service worker.
      opts_.workers = 1;
    }
  }
  ~BudgetLease() {
    if (leased_) budgeter_.release(lease_);
  }
  BudgetLease(const BudgetLease&) = delete;
  BudgetLease& operator=(const BudgetLease&) = delete;

  [[nodiscard]] const SolveOptions& opts() const { return opts_; }

 private:
  util::ThreadBudgeter& budgeter_;
  util::ThreadBudgeter::Lease lease_{1};
  bool leased_;
  SolveOptions opts_;
};

}  // namespace

std::future<SolveResult> Service::submit(SolveRequest req) {
  // std::promise is move-only and std::function requires copyable
  // callables, so the future path shares the promise. The daemon path uses
  // submit_async directly and never pays this allocation.
  auto promise = std::make_shared<std::promise<SolveResult>>();
  auto fut = promise->get_future();
  submit_async(std::move(req), [promise](SolveResult res) {
    promise->set_value(std::move(res));
  });
  return fut;
}

void Service::submit_async(SolveRequest req, ResultSink sink) {
  Job job;
  job.req = std::move(req);
  job.sink = std::move(sink);
  job.deadline_at = deadline_at_from(job.req.deadline_ms);
  arm_job_cancel(job);
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (util::fault_point("service.admit")) {
    completed_.fetch_add(1, std::memory_order_relaxed);
    job.sink(failure(job.req.label, effective_options(job.req).backend,
                     kErrOverloaded));
    return;
  }
  if (!queue_.push(job)) {
    completed_.fetch_add(1, std::memory_order_relaxed);
    job.sink(failure(job.req.label, effective_options(job.req).backend,
                     refusal_reason()));
  }
}

bool Service::try_submit_async(SolveRequest& req, ResultSink& sink) {
  Job job;
  job.req = std::move(req);
  job.sink = std::move(sink);
  job.deadline_at = deadline_at_from(job.req.deadline_ms);
  arm_job_cancel(job);
  // The injected admission refusal consumes the request (sink fires
  // inline, like a post-drain refusal): structured Overloaded, not a
  // park-and-retry — chaos tests prove callers survive the refusal path.
  if (util::fault_point("service.admit")) {
    submitted_.fetch_add(1, std::memory_order_relaxed);
    completed_.fetch_add(1, std::memory_order_relaxed);
    job.sink(failure(job.req.label, effective_options(job.req).backend,
                     kErrOverloaded));
    return true;
  }
  if (queue_.try_push(job)) {
    submitted_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  if (queue_.closed()) {
    submitted_.fetch_add(1, std::memory_order_relaxed);
    completed_.fetch_add(1, std::memory_order_relaxed);
    job.sink(failure(job.req.label, effective_options(job.req).backend,
                     refusal_reason()));
    return true;
  }
  // Queue full: hand the pieces back so the caller can park and retry.
  req = std::move(job.req);
  sink = std::move(job.sink);
  return false;
}

std::future<std::vector<SolveResult>> Service::submit_batch(
    std::vector<SolveRequest> reqs) {
  auto promise =
      std::make_shared<std::promise<std::vector<SolveResult>>>();
  auto fut = promise->get_future();
  submit_batch_async(std::move(reqs),
                     [promise](std::vector<SolveResult> results) {
                       promise->set_value(std::move(results));
                     });
  return fut;
}

std::future<std::vector<SolveResult>> Service::submit_batch(
    std::span<const Instance> instances) {
  std::vector<SolveRequest> reqs;
  reqs.reserve(instances.size());
  for (const Instance& inst : instances) {
    SolveRequest req;
    req.instance = inst;
    reqs.push_back(std::move(req));
  }
  return submit_batch(std::move(reqs));
}

void Service::refuse_batch(std::vector<SolveRequest>& reqs, BatchSink& sink,
                           const char* reason) {
  std::vector<SolveResult> out;
  out.reserve(reqs.size());
  for (const SolveRequest& r : reqs) {
    out.push_back(failure(r.label, effective_options(r).backend, reason));
  }
  completed_.fetch_add(reqs.size(), std::memory_order_relaxed);
  sink(std::move(out));
}

void Service::submit_batch_async(std::vector<SolveRequest> reqs,
                                 BatchSink sink) {
  Job job;
  job.is_batch = true;
  job.batch = std::move(reqs);
  job.batch_sink = std::move(sink);
  job.deadline_at = batch_deadline_at(job.batch);
  arm_job_cancel(job);
  // One queue slot, k requests: backpressure is per dispatch, the
  // request-level counters stay per request.
  submitted_.fetch_add(job.batch.size(), std::memory_order_relaxed);
  if (util::fault_point("service.admit")) {
    refuse_batch(job.batch, job.batch_sink, kErrOverloaded);
    return;
  }
  if (!queue_.push(job)) {
    refuse_batch(job.batch, job.batch_sink, refusal_reason());
  }
}

bool Service::try_submit_batch_async(std::vector<SolveRequest>& reqs,
                                     BatchSink& sink) {
  Job job;
  job.is_batch = true;
  job.batch = std::move(reqs);
  job.batch_sink = std::move(sink);
  job.deadline_at = batch_deadline_at(job.batch);
  arm_job_cancel(job);
  if (util::fault_point("service.admit")) {
    submitted_.fetch_add(job.batch.size(), std::memory_order_relaxed);
    refuse_batch(job.batch, job.batch_sink, kErrOverloaded);
    return true;
  }
  if (queue_.try_push(job)) {
    submitted_.fetch_add(job.batch.size(), std::memory_order_relaxed);
    return true;
  }
  if (queue_.closed()) {
    submitted_.fetch_add(job.batch.size(), std::memory_order_relaxed);
    refuse_batch(job.batch, job.batch_sink, refusal_reason());
    return true;
  }
  // Queue full: hand the pieces back so the caller can park and retry.
  reqs = std::move(job.batch);
  sink = std::move(job.batch_sink);
  return false;
}

void Service::worker_loop(std::size_t worker) {
  // Per-request arena accounting: everything this worker's front end and
  // engines carve from the thread arena lands in the aggregate counters,
  // so tests and dashboards can watch fresh_allocs go flat as the worker
  // warms up.
  exec::Arena& arena = exec::Arena::for_this_thread();
  exec::Arena::Stats last = arena.stats();
  while (auto job = queue_.pop()) {
    // Cancellation/deadline check at pickup, before any cache or
    // canonicalization work: a dead job is dead work and the caller has
    // (by contract) stopped waiting — shed it for the price of a clock
    // read. poll() also folds the deadline into the token, so a queued
    // Cancel and a queued expiry land in the same place.
    if (job->cancel != nullptr && job->cancel->poll()) {
      shed_job(std::move(*job),
               util::CancelToken::message(job->cancel->reason()));
    } else if (job->deadline_at != 0 &&
               util::steady_now_ms() >= job->deadline_at) {
      shed_job(std::move(*job), kErrDeadlineExceeded);
    } else if (job->is_batch) {
      process_batch(std::move(*job), worker);
    } else {
      process(std::move(*job), worker);
    }
    const exec::Arena::Stats& now = arena.stats();
    arena_acquires_.fetch_add(now.acquires - last.acquires,
                              std::memory_order_relaxed);
    arena_reuses_.fetch_add(now.reuses - last.reuses,
                            std::memory_order_relaxed);
    arena_fresh_.fetch_add(now.fresh_allocs - last.fresh_allocs,
                           std::memory_order_relaxed);
    last = now;
  }
}

void Service::shed_job(Job job, const char* reason) {
  // Deadline expiries keep their historical counter (shed_expired);
  // explicit cancels observed at pickup count as cancellations.
  auto& counter = reason == kErrCancelled ? cancelled_ : shed_;
  if (job.is_batch) {
    counter.fetch_add(job.batch.size(), std::memory_order_relaxed);
    refuse_batch(job.batch, job.batch_sink, reason);
    return;
  }
  counter.fetch_add(1, std::memory_order_relaxed);
  completed_.fetch_add(1, std::memory_order_relaxed);
  job.sink(failure(job.req.label, effective_options(job.req).backend,
                   reason));
}

void Service::process(Job job, std::size_t worker) {
  const std::string label = job.req.label;
  util::CancelToken* const tok = job.cancel.get();
  // Worker counts are clamped per solve by a BudgetLease scoped around
  // each generic engine call — cache hits, coalesced waiters, and express
  // solves below never touch the thread budget. The cancel borrow rides
  // the options into the engine; it is NOT part of the cache key
  // (OptionsKey ignores it — cancellation never changes an answer).
  SolveOptions opts = effective_options(job.req);
  opts.cancel = tok;

  // Resolve + canonicalize up front; bad instances fail structurally here
  // and never reach the cache or an engine.
  // Every branch below must end in the sink: an exception escaping a
  // worker would std::terminate the process (std::thread) and strand any
  // parked waiters, so plug-in backends throwing non-standard exceptions
  // and allocation failures are caught and turned into structured results.
  const cograph::CanonicalForm* form = nullptr;
  std::size_t n = 0;
  try {
    if (opts_.use_cache) {
      // The form's permutation size IS the vertex count, so the cache-hit
      // path never calls resolve() — a signature-sourced instance serves
      // warm hits without ever materializing its cotree (the engines
      // resolve lazily on the miss path).
      form = &job.req.instance.canonical();
      n = form->from_canonical.size();
    } else {
      n = job.req.instance.resolve().vertex_count();
    }
  } catch (const std::exception& e) {
    completed_.fetch_add(1, std::memory_order_relaxed);
    job.sink(failure(label, opts.backend, e.what()));
    return;
  } catch (...) {
    completed_.fetch_add(1, std::memory_order_relaxed);
    job.sink(failure(label, opts.backend, "non-standard exception"));
    return;
  }

  // The express lane: below the Adaptive floor the route is the sequential
  // sweep with or without dispatch, so run it inline — no registry walk,
  // no BackendFn indirection, no thread lease, shared binarized tree for
  // cover + verdicts, all scratch from this worker's arena. The instance
  // is borrowed, never moved: it (and the canonical form the cache key
  // views) must stay alive through the canonical-space store below.
  const bool express =
      opts_.use_express && service::express_eligible(n, opts);
  const auto solve_once = [&]() -> SolveResult {
    // From here the worker is "in a solve": its token is registered with
    // the watchdog until solve_once returns.
    WatchGuard wg(*this, worker, job.cancel);
    if (util::fault_point("solve.stall")) {
      // Manufactured hang: spin silently (no heartbeat) until someone —
      // the watchdog, a deadline, a wire Cancel — trips the token.
      stall_for_token(tok);
    }
    if (tok != nullptr && tok->poll()) {
      return failure(label, opts.backend,
                     util::CancelToken::message(tok->reason()));
    }
    if (express) {
      express_.fetch_add(1, std::memory_order_relaxed);
      return service::solve_express(job.req.instance, label, opts,
                                    exec::Arena::for_this_thread());
    }
    BudgetLease bl(budgeter_, pending_, worker_count_, opts);
    try {
      return solver_.solve(job.req.instance, label, bl.opts());
    } catch (...) {  // solve() catches std::exception; plug-ins may not
      return failure(label, opts.backend, "non-standard exception");
    }
  };

  if (!opts_.use_cache) {
    SolveResult res = solve_once();
    if (is_cancel_error(res)) cancelled_.fetch_add(1, std::memory_order_relaxed);
    completed_.fetch_add(1, std::memory_order_relaxed);
    job.sink(std::move(res));
    return;
  }

  const service::CacheKeyRef key = service::make_cache_key(*form, opts);
  if (const auto hit = cache_.lookup(key)) {
    SolveResult res;
    try {
      // One fused copy+remap pass, outside the shard lock.
      res = service::remapped_from_canonical(*hit, *form);
      res.label = label;
    } catch (...) {
      res = failure(label, opts.backend, "failed to materialize cache hit");
    }
    completed_.fetch_add(1, std::memory_order_relaxed);
    job.sink(std::move(res));
    return;
  }

  // Coalescing: if a twin (same canonical signature AND options) is
  // already being solved, park on it — the computing worker fulfills us
  // from its result.
  service::CacheKey flight_key = service::own_key(key);
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    const auto it = inflight_.find(flight_key);
    if (it != inflight_.end()) {
      coalesced_.fetch_add(1, std::memory_order_relaxed);
      it->second.waiters.push_back(Waiter{std::move(job.sink),
                                          std::move(job.req),
                                          job.deadline_at});
      return;
    }
    inflight_.emplace(flight_key, InFlight{});
  }

  // L1 missed; probe the persistent tier before solving. A disk hit is
  // decoded into the exact canonical-space result another process (or a
  // previous life of this one) stored, promoted into L1, and replayed
  // through this instance's permutation exactly like a RAM hit — the two
  // are indistinguishable to the caller.
  SolveResult res;
  std::shared_ptr<const SolveResult> canonical;
  bool from_l2 = false;
  if (persist_ != nullptr) {
    if (auto disk = persist_->lookup(key)) {
      try {
        res = service::remapped_from_canonical(*disk, *form);
        res.label = label;
        canonical = std::move(disk);
        cache_.insert(key, canonical);
        promotions_.fetch_add(1, std::memory_order_relaxed);
        from_l2 = true;
      } catch (...) {
        canonical = nullptr;
        from_l2 = false;
      }
    }
  }
  if (!from_l2) {
    res = solve_once();
    if (res.ok) {
      try {
        canonical = std::make_shared<const SolveResult>(
            service::to_canonical_space(res, *form));
        cache_.insert(key, canonical);
        // Write-through: the result survives this process. append() never
        // throws — disk trouble degrades to a skipped write.
        if (persist_ != nullptr) persist_->append(key, *canonical);
      } catch (...) {
        // A failed store must still release the in-flight entry and answer
        // every parked waiter below.
        canonical = nullptr;
      }
    }
  }

  std::vector<Waiter> waiters;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    const auto it = inflight_.find(flight_key);
    waiters = std::move(it->second.waiters);
    inflight_.erase(it);
  }
  const bool leader_cancelled = is_cancel_error(res);
  for (auto& w : waiters) {
    if (leader_cancelled) {
      // The leader's cancellation is the leader's business: a waiter whose
      // own token is clean gets re-queued and solved on its own terms.
      requeue_waiter(std::move(w));
      continue;
    }
    SolveResult wres;
    try {
      if (res.ok && canonical != nullptr) {
        // The waiter's instance shares the canonical class but not
        // necessarily the leaf ids: replay through *its* permutation.
        wres = service::remapped_from_canonical(*canonical,
                                             w.req.instance.canonical());
      } else {
        wres = res;
      }
      wres.label = std::move(w.req.label);
    } catch (...) {
      wres = failure({}, opts.backend, "failed to materialize result");
    }
    completed_.fetch_add(1, std::memory_order_relaxed);
    w.sink(std::move(wres));
  }
  if (leader_cancelled) cancelled_.fetch_add(1, std::memory_order_relaxed);
  completed_.fetch_add(1, std::memory_order_relaxed);
  job.sink(std::move(res));
}

void Service::requeue_waiter(Waiter w) {
  const Backend backend = effective_options(w.req).backend;
  util::CancelToken* const wtok = w.req.cancel.get();
  if (wtok != nullptr && wtok->poll()) {
    // The waiter was cancelled too (its own deadline or an explicit
    // cancel) — answer with ITS reason, not the leader's.
    cancelled_.fetch_add(1, std::memory_order_relaxed);
    completed_.fetch_add(1, std::memory_order_relaxed);
    w.sink(failure(w.req.label, backend,
                   util::CancelToken::message(wtok->reason())));
    return;
  }
  if (w.deadline_at != 0 && util::steady_now_ms() >= w.deadline_at) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    completed_.fetch_add(1, std::memory_order_relaxed);
    w.sink(failure(w.req.label, backend, kErrDeadlineExceeded));
    return;
  }
  Job j;
  j.req = std::move(w.req);
  j.sink = std::move(w.sink);
  j.deadline_at = w.deadline_at;
  j.cancel = j.req.cancel;
  // try_push, never push: a blocking push from a worker thread could
  // deadlock a full queue against itself. Already counted in submitted_
  // at original admission — a successful requeue counts nothing.
  if (!queue_.try_push(j)) {
    completed_.fetch_add(1, std::memory_order_relaxed);
    j.sink(failure(j.req.label, backend,
                   queue_.closed() ? refusal_reason() : kErrOverloaded));
  }
}

void Service::process_batch(Job job, std::size_t worker) {
  batch_submits_.fetch_add(1, std::memory_order_relaxed);
  util::CancelToken* const tok = job.cancel.get();
  // The whole batch is one dispatch, so it is one watchdog unit too.
  WatchGuard wg(*this, worker, job.cancel);
  if (util::fault_point("solve.stall")) {
    stall_for_token(tok);
  }
  if (tok != nullptr && tok->poll()) {
    const char* reason = util::CancelToken::message(tok->reason());
    auto& counter = reason == kErrCancelled ? cancelled_ : shed_;
    counter.fetch_add(job.batch.size(), std::memory_order_relaxed);
    refuse_batch(job.batch, job.batch_sink, reason);
    return;
  }

  service::BatchConfig cfg;
  // The cacheless differential baseline must still be bitwise-equal to
  // independent submits, which solve permuted twins separately — so dedup
  // degrades to exact-tree grouping when the cache is off (batch.hpp).
  cfg.dedup = opts_.use_cache ? service::BatchDedup::Canonical
                              : service::BatchDedup::IdenticalTree;
  cfg.cache = opts_.use_cache ? &cache_ : nullptr;
  cfg.l2 = opts_.use_cache ? persist_.get() : nullptr;
  cfg.use_express_pack = opts_.use_express;

  // ONE lease spans the whole batch: the packed sweep is sequential per
  // instance (no native threads), and above-floor fallback groups reuse
  // this grant instead of re-acquiring per group — a batch perturbs the
  // budgeter exactly once, like one big request (DESIGN.md §10).
  BudgetLease bl(budgeter_, pending_, worker_count_, opts_.solve);
  const std::size_t grant =
      std::max<std::size_t>(std::size_t{1}, bl.opts().workers);
  const service::BatchFallback fallback =
      [&](const SolveRequest& req, const SolveOptions& opts) -> SolveResult {
    SolveOptions clamped = opts;
    clamped.workers = clamped.workers == 0
                          ? grant
                          : std::min(clamped.workers, grant);
    // The frame token governs every above-floor fallback solve; the
    // packed small-instance sweep runs to completion (each sweep is a
    // bounded O(n) pass — cancellation lands between groups at worst).
    clamped.cancel = tok;
    try {
      return solver_.solve(req.instance, req.label, clamped);
    } catch (...) {  // solve() catches std::exception; plug-ins may not
      return failure(req.label, opts.backend, "non-standard exception");
    }
  };

  service::BatchOutcome outcome;
  std::vector<SolveResult> results = service::solve_batch_fused(
      job.batch, opts_.solve, cfg, fallback,
      exec::Arena::for_this_thread(), &outcome);

  batch_dedup_.fetch_add(outcome.dedup_hits, std::memory_order_relaxed);
  packed_.fetch_add(outcome.packed_solves, std::memory_order_relaxed);
  promotions_.fetch_add(outcome.l2_hits, std::memory_order_relaxed);
  for (const SolveResult& r : results) {
    if (is_cancel_error(r)) cancelled_.fetch_add(1, std::memory_order_relaxed);
  }
  completed_.fetch_add(job.batch.size(), std::memory_order_relaxed);
  job.batch_sink(std::move(results));
}

Service::Stats Service::stats() const {
  Stats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.queue_depth = queue_.size();
  // completed_ never passes submitted_, but the two loads are not one
  // snapshot — clamp instead of wrapping.
  s.in_flight = s.submitted >= s.completed ? s.submitted - s.completed : 0;
  s.draining = draining_.load(std::memory_order_relaxed);
  s.coalesced = coalesced_.load(std::memory_order_relaxed);
  s.shed_expired = shed_.load(std::memory_order_relaxed);
  s.express_solves = express_.load(std::memory_order_relaxed);
  s.batch_submits = batch_submits_.load(std::memory_order_relaxed);
  s.batch_dedup_hits = batch_dedup_.load(std::memory_order_relaxed);
  s.packed_solves = packed_.load(std::memory_order_relaxed);
  s.lease_acquires = budgeter_.acquires();
  s.arena_acquires = arena_acquires_.load(std::memory_order_relaxed);
  s.arena_reuses = arena_reuses_.load(std::memory_order_relaxed);
  s.arena_fresh_allocs = arena_fresh_.load(std::memory_order_relaxed);
  s.cache = cache_.stats();
  // The service performs exactly one probe per cache-enabled request, so
  // the cache's own counters ARE the request-level hit/miss numbers.
  s.cache_hits = s.cache.hits;
  s.cache_misses = s.cache.misses;
  s.persist_enabled = persist_ != nullptr;
  s.persist_promotions = promotions_.load(std::memory_order_relaxed);
  if (persist_ != nullptr) s.persist = persist_->stats();
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.watchdog_cancels = watchdog_cancels_.load(std::memory_order_relaxed);
  if (opts_.watchdog_ms > 0) {
    // A stuck worker is one whose solve was (or is about to be) cancelled
    // by the watchdog but has not unwound: no heartbeat for a full
    // interval. Tripped-and-polling solves disappear from here quickly;
    // anything that lingers is genuinely wedged capacity.
    const std::uint64_t now = util::steady_now_ms();
    std::lock_guard<std::mutex> lock(watch_mu_);
    for (const WatchSlot& slot : watch_) {
      if (slot.token == nullptr) continue;
      const std::uint64_t beat =
          std::max(slot.token->last_beat_ms(), slot.started_ms);
      if (now >= beat + opts_.watchdog_ms) ++s.stuck_workers;
    }
  }
  return s;
}

Service::CompactReport Service::compact_caches() {
  CompactReport report;
  // Clearing L1 first is safe even mid-traffic: every ok result in L1 was
  // written through to L2 (when configured), so dropped entries are one
  // disk probe away; with no L2 this is just a cache flush. clear() also
  // resets the L1 counters — the post-compact Stats verb reports the new
  // epoch only.
  report.l1_dropped = cache_.size();
  cache_.clear();
  if (persist_ != nullptr) {
    report.l2_enabled = true;
    report.l2 = persist_->compact();
  }
  return report;
}

}  // namespace copath
