#include "service/service.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "core/backend.hpp"
#include "util/thread_pool.hpp"

namespace copath {
namespace {

/// Separator for the in-flight map key (cannot occur in either component:
/// canonical keys use "(+* v)" characters, fingerprints are ASCII k=v).
constexpr char kKeySep = '\x1f';

SolveResult failure(const std::string& label, Backend backend,
                    std::string error) {
  SolveResult res;
  res.label = label;
  res.backend = backend;
  res.error = std::move(error);
  return res;
}

}  // namespace

Service::Service(Options opts)
    : opts_(std::move(opts)),
      budgeter_(util::ThreadPool::default_workers()),
      solver_(opts_.solve),
      cache_(opts_.cache),
      queue_(opts_.queue_capacity) {
  const std::size_t workers = opts_.workers == 0
                                  ? util::ThreadPool::default_workers()
                                  : opts_.workers;
  worker_count_ = workers;
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

Service::~Service() { shutdown(); }

void Service::shutdown() {
  queue_.close();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

SolveOptions Service::effective_options(const SolveRequest& req) const {
  return req.options.value_or(opts_.solve);
}

namespace {

/// RAII thread-budget lease around one engine solve: acquired only at the
/// two solve sites (cache hits and coalesced waiters never consume budget
/// nor distort Adaptive's pressure signal), released on scope exit even if
/// the engine throws. Exposes the worker-clamped options.
class BudgetLease {
 public:
  BudgetLease(util::ThreadBudgeter& budgeter,
              std::atomic<std::size_t>& pending, std::size_t workers,
              SolveOptions opts)
      : budgeter_(budgeter),
        leased_(core::may_use_native_threads(opts.backend)),
        opts_(std::move(opts)) {
    if (leased_) {
      // Peers = workers racing for a claim right now (including us; not
      // "busy" workers — lease holders already subtracted their grant
      // from the pool). The grant is also Backend::Adaptive's pressure
      // signal: a saturated service hands out budget 1 and the model
      // routes sequential.
      const std::size_t peers =
          std::min(pending.fetch_add(1, std::memory_order_relaxed) + 1,
                   workers);
      lease_ = budgeter_.acquire(peers);
      pending.fetch_sub(1, std::memory_order_relaxed);
      opts_.workers = opts_.workers == 0
                          ? lease_.threads
                          : std::min(opts_.workers, lease_.threads);
    } else {
      // Per-request PRAM machines run inline on their service worker.
      opts_.workers = 1;
    }
  }
  ~BudgetLease() {
    if (leased_) budgeter_.release(lease_);
  }
  BudgetLease(const BudgetLease&) = delete;
  BudgetLease& operator=(const BudgetLease&) = delete;

  [[nodiscard]] const SolveOptions& opts() const { return opts_; }

 private:
  util::ThreadBudgeter& budgeter_;
  util::ThreadBudgeter::Lease lease_{1};
  bool leased_;
  SolveOptions opts_;
};

}  // namespace

std::future<SolveResult> Service::submit(SolveRequest req) {
  Job job;
  job.req = std::move(req);
  auto fut = job.promise.get_future();
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (!queue_.push(job)) {
    completed_.fetch_add(1, std::memory_order_relaxed);
    job.promise.set_value(failure(job.req.label,
                                  effective_options(job.req).backend,
                                  "service is shut down"));
  }
  return fut;
}

void Service::worker_loop() {
  while (auto job = queue_.pop()) {
    process(std::move(*job));
  }
}

void Service::process(Job job) {
  const std::string label = job.req.label;
  // Worker counts are clamped per solve by a BudgetLease scoped around
  // each engine call — cache hits and coalesced waiters below never touch
  // the thread budget.
  const SolveOptions opts = effective_options(job.req);

  // Resolve + canonicalize up front; bad instances fail structurally here
  // and never reach the cache or an engine.
  // Every branch below must end in set_value: an exception escaping a
  // worker would std::terminate the process (std::thread) and strand any
  // parked waiters, so plug-in backends throwing non-standard exceptions
  // and allocation failures are caught and turned into structured results.
  const cograph::CanonicalForm* form = nullptr;
  if (opts_.use_cache) {
    try {
      form = &job.req.instance.canonical();
    } catch (const std::exception& e) {
      completed_.fetch_add(1, std::memory_order_relaxed);
      job.promise.set_value(failure(label, opts.backend, e.what()));
      return;
    } catch (...) {
      completed_.fetch_add(1, std::memory_order_relaxed);
      job.promise.set_value(
          failure(label, opts.backend, "non-standard exception"));
      return;
    }
  }

  if (!opts_.use_cache) {
    SolveResult res;
    {
      BudgetLease bl(budgeter_, pending_, worker_count_, opts);
      try {
        const SolveRequest exec_req{std::move(job.req.instance), bl.opts(),
                                    label};
        res = solver_.solve(exec_req);
      } catch (...) {  // solve() catches std::exception; plug-ins may not
        res = failure(label, opts.backend, "non-standard exception");
      }
    }
    completed_.fetch_add(1, std::memory_order_relaxed);
    job.promise.set_value(std::move(res));
    return;
  }

  const service::CacheKey key = service::make_cache_key(*form, opts);
  if (const auto hit = cache_.lookup(key)) {
    SolveResult res;
    try {
      // The deep copy happens here, outside the shard lock.
      res = service::from_canonical_space(SolveResult(*hit), *form);
      res.label = label;
    } catch (...) {
      res = failure(label, opts.backend, "failed to materialize cache hit");
    }
    completed_.fetch_add(1, std::memory_order_relaxed);
    job.promise.set_value(std::move(res));
    return;
  }

  // Coalescing: if a twin (same canonical key AND options) is already being
  // solved, park on it — the computing worker fulfills us from its result.
  const std::string flight_key = key.canon_key + kKeySep + key.opts_key;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    const auto it = inflight_.find(flight_key);
    if (it != inflight_.end()) {
      coalesced_.fetch_add(1, std::memory_order_relaxed);
      it->second.waiters.push_back(Waiter{std::move(job.promise),
                                          std::move(job.req.instance),
                                          label});
      return;
    }
    inflight_.emplace(flight_key, InFlight{});
  }

  SolveResult res;
  std::shared_ptr<const SolveResult> canonical;
  {
    BudgetLease bl(budgeter_, pending_, worker_count_, opts);
    try {
      // Moving the instance is safe: `form` points into the shared
      // canonical cache the moved instance keeps alive until exec_req
      // leaves this scope (after the canonical-space store below).
      const SolveRequest exec_req{std::move(job.req.instance), bl.opts(),
                                  label};
      res = solver_.solve(exec_req);
      if (res.ok) {
        canonical = std::make_shared<const SolveResult>(
            service::to_canonical_space(res, *form));
        cache_.insert(key, canonical);
      }
    } catch (...) {
      // A throwing plug-in engine or a failed store must still release the
      // in-flight entry and answer every parked waiter below.
      res = failure(label, opts.backend, "non-standard exception");
      canonical = nullptr;
    }
  }

  std::vector<Waiter> waiters;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    const auto it = inflight_.find(flight_key);
    waiters = std::move(it->second.waiters);
    inflight_.erase(it);
  }
  for (auto& w : waiters) {
    SolveResult wres;
    try {
      if (res.ok && canonical != nullptr) {
        // The waiter's instance shares the canonical class but not
        // necessarily the leaf ids: replay through *its* permutation.
        wres = service::from_canonical_space(SolveResult(*canonical),
                                             w.instance.canonical());
      } else {
        wres = res;
      }
      wres.label = std::move(w.label);
    } catch (...) {
      wres = failure({}, opts.backend, "failed to materialize result");
    }
    completed_.fetch_add(1, std::memory_order_relaxed);
    w.promise.set_value(std::move(wres));
  }
  completed_.fetch_add(1, std::memory_order_relaxed);
  job.promise.set_value(std::move(res));
}

Service::Stats Service::stats() const {
  Stats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.coalesced = coalesced_.load(std::memory_order_relaxed);
  s.cache = cache_.stats();
  // The service performs exactly one probe per cache-enabled request, so
  // the cache's own counters ARE the request-level hit/miss numbers.
  s.cache_hits = s.cache.hits;
  s.cache_misses = s.cache.misses;
  return s;
}

}  // namespace copath
