#include "service/service.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "core/backend.hpp"
#include "util/thread_pool.hpp"

namespace copath {
namespace {

/// Separator for the in-flight map key (cannot occur in either component:
/// canonical keys use "(+* v)" characters, fingerprints are ASCII k=v).
constexpr char kKeySep = '\x1f';

SolveResult failure(const std::string& label, Backend backend,
                    std::string error) {
  SolveResult res;
  res.label = label;
  res.backend = backend;
  res.error = std::move(error);
  return res;
}

}  // namespace

Service::Service(Options opts)
    : opts_(std::move(opts)),
      solver_(opts_.solve),
      cache_(opts_.cache),
      queue_(opts_.queue_capacity) {
  const std::size_t workers = opts_.workers == 0
                                  ? util::ThreadPool::default_workers()
                                  : opts_.workers;
  // The solve_batch rule: W service workers share the host, so a Native
  // request may spawn at most floor(hardware / W) threads of its own.
  native_budget_ = std::max<std::size_t>(
      1, util::ThreadPool::default_workers() / workers);
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

Service::~Service() { shutdown(); }

void Service::shutdown() {
  queue_.close();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

SolveOptions Service::effective_options(const SolveRequest& req) const {
  SolveOptions opts = req.options.value_or(opts_.solve);
  if (core::uses_native_executor(opts.backend)) {
    opts.workers = std::min(opts.workers == 0 ? native_budget_ : opts.workers,
                            native_budget_);
  } else {
    // Per-request PRAM machines run inline on their service worker.
    opts.workers = 1;
  }
  return opts;
}

std::future<SolveResult> Service::submit(SolveRequest req) {
  Job job;
  job.req = std::move(req);
  auto fut = job.promise.get_future();
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (!queue_.push(job)) {
    completed_.fetch_add(1, std::memory_order_relaxed);
    job.promise.set_value(failure(job.req.label,
                                  effective_options(job.req).backend,
                                  "service is shut down"));
  }
  return fut;
}

void Service::worker_loop() {
  while (auto job = queue_.pop()) {
    process(std::move(*job));
  }
}

void Service::process(Job job) {
  const std::string label = job.req.label;
  const SolveOptions opts = effective_options(job.req);

  // Resolve + canonicalize up front; bad instances fail structurally here
  // and never reach the cache or an engine.
  // Every branch below must end in set_value: an exception escaping a
  // worker would std::terminate the process (std::thread) and strand any
  // parked waiters, so plug-in backends throwing non-standard exceptions
  // and allocation failures are caught and turned into structured results.
  const cograph::CanonicalForm* form = nullptr;
  if (opts_.use_cache) {
    try {
      form = &job.req.instance.canonical();
    } catch (const std::exception& e) {
      completed_.fetch_add(1, std::memory_order_relaxed);
      job.promise.set_value(failure(label, opts.backend, e.what()));
      return;
    } catch (...) {
      completed_.fetch_add(1, std::memory_order_relaxed);
      job.promise.set_value(
          failure(label, opts.backend, "non-standard exception"));
      return;
    }
  }

  if (!opts_.use_cache) {
    SolveResult res;
    try {
      const SolveRequest exec_req{std::move(job.req.instance), opts, label};
      res = solver_.solve(exec_req);
    } catch (...) {  // solve() catches std::exception; plug-ins may not
      res = failure(label, opts.backend, "non-standard exception");
    }
    completed_.fetch_add(1, std::memory_order_relaxed);
    job.promise.set_value(std::move(res));
    return;
  }

  const service::CacheKey key = service::make_cache_key(*form, opts);
  if (const auto hit = cache_.lookup(key)) {
    SolveResult res;
    try {
      // The deep copy happens here, outside the shard lock.
      res = service::from_canonical_space(SolveResult(*hit), *form);
      res.label = label;
    } catch (...) {
      res = failure(label, opts.backend, "failed to materialize cache hit");
    }
    completed_.fetch_add(1, std::memory_order_relaxed);
    job.promise.set_value(std::move(res));
    return;
  }

  // Coalescing: if a twin (same canonical key AND options) is already being
  // solved, park on it — the computing worker fulfills us from its result.
  const std::string flight_key = key.canon_key + kKeySep + key.opts_key;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    const auto it = inflight_.find(flight_key);
    if (it != inflight_.end()) {
      coalesced_.fetch_add(1, std::memory_order_relaxed);
      it->second.waiters.push_back(Waiter{std::move(job.promise),
                                          std::move(job.req.instance),
                                          label});
      return;
    }
    inflight_.emplace(flight_key, InFlight{});
  }

  SolveResult res;
  std::shared_ptr<const SolveResult> canonical;
  try {
    // Moving the instance is safe: `form` points into the shared canonical
    // cache the moved instance keeps alive for the rest of this scope.
    const SolveRequest exec_req{std::move(job.req.instance), opts, label};
    res = solver_.solve(exec_req);
    if (res.ok) {
      canonical = std::make_shared<const SolveResult>(
          service::to_canonical_space(res, *form));
      cache_.insert(key, canonical);
    }
  } catch (...) {
    // A throwing plug-in engine or a failed store must still release the
    // in-flight entry and answer every parked waiter below.
    res = failure(label, opts.backend, "non-standard exception");
    canonical = nullptr;
  }

  std::vector<Waiter> waiters;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    const auto it = inflight_.find(flight_key);
    waiters = std::move(it->second.waiters);
    inflight_.erase(it);
  }
  for (auto& w : waiters) {
    SolveResult wres;
    try {
      if (res.ok && canonical != nullptr) {
        // The waiter's instance shares the canonical class but not
        // necessarily the leaf ids: replay through *its* permutation.
        wres = service::from_canonical_space(SolveResult(*canonical),
                                             w.instance.canonical());
      } else {
        wres = res;
      }
      wres.label = std::move(w.label);
    } catch (...) {
      wres = failure({}, opts.backend, "failed to materialize result");
    }
    completed_.fetch_add(1, std::memory_order_relaxed);
    w.promise.set_value(std::move(wres));
  }
  completed_.fetch_add(1, std::memory_order_relaxed);
  job.promise.set_value(std::move(res));
}

Service::Stats Service::stats() const {
  Stats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.coalesced = coalesced_.load(std::memory_order_relaxed);
  s.cache = cache_.stats();
  // The service performs exactly one probe per cache-enabled request, so
  // the cache's own counters ARE the request-level hit/miss numbers.
  s.cache_hits = s.cache.hits;
  s.cache_misses = s.cache.misses;
  return s;
}

}  // namespace copath
