#include "service/express.hpp"

#include "cograph/binarize.hpp"
#include "core/adaptive.hpp"
#include "core/count.hpp"
#include "core/hamiltonian.hpp"
#include "core/sequential.hpp"
#include "exec/scratch.hpp"
#include "util/timer.hpp"

namespace copath::service {

bool express_eligible(std::size_t n, const SolveOptions& opts) {
  if (opts.backend == Backend::Sequential) return true;
  if (opts.backend != Backend::Adaptive) return false;
  const core::CostModel& model = opts.cost_model != nullptr
                                     ? *opts.cost_model
                                     : core::CostModel::calibrated();
  return n < model.min_native_n;
}

SolveResult solve_express(const Instance& inst, const std::string& label,
                          const SolveOptions& opts, exec::Arena& arena) {
  SolveResult res;
  res.label = label;
  res.backend = opts.backend;
  try {
    const cograph::Cotree& t = inst.resolve();

    // The engine run (timed like Solver times the backend fn alone):
    // binarize once, share the tree between the sweep and the verdicts.
    util::WallTimer timer;
    cograph::ScratchBinarized bc(arena);
    cograph::binarize_scratch(t, arena, bc);
    exec::ScratchVec<std::int64_t> leaf_count(arena);
    cograph::make_leftist_scratch(bc, leaf_count);
    res.cover =
        core::min_path_cover_sequential(bc.view(), leaf_count.span(), arena);
    res.wall_ms = timer.millis();

    res.routed = Backend::Sequential;
    res.vertex_count = t.vertex_count();

    if (opts.compute_verdicts) {
      const core::CountVerdicts v =
          core::count_verdicts(bc.view(), leaf_count.span(), arena);
      res.optimal_size = v.cover_size;
      res.minimum =
          static_cast<std::int64_t>(res.cover.size()) == res.optimal_size;
      res.hamiltonian_path = v.hamiltonian_path;
      res.hamiltonian_cycle = v.hamiltonian_cycle;
      if (opts.want_hamiltonian_cycle && res.hamiltonian_cycle) {
        res.cycle = core::hamiltonian_cycle(t);
      }
    } else {
      res.optimal_size = -1;
      if (opts.want_hamiltonian_cycle) {
        res.cycle = core::hamiltonian_cycle(t);
        res.hamiltonian_cycle = res.cycle.has_value();
      }
    }
    if (opts.validate) {
      // The sequential sweep is exact, so minimality is required — the
      // same contract Solver applies via the registry entry's exact flag.
      res.validation =
          core::validate_path_cover(t, res.cover, /*require_minimum=*/true);
    }
    res.ok = true;
  } catch (const std::exception& e) {
    res = SolveResult{};
    res.label = label;
    res.backend = opts.backend;
    res.routed = opts.backend;
    res.error = e.what();
  } catch (...) {
    res = SolveResult{};
    res.label = label;
    res.backend = opts.backend;
    res.routed = opts.backend;
    res.error = "non-standard exception";
  }
  return res;
}

}  // namespace copath::service
