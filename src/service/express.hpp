// The Service express lane: registry-free inline solving of small
// instances.
//
// Below the Adaptive cost model's native floor, every request is routed to
// the sequential sweep anyway — but the generic path still walks the
// backend registry, builds a BackendConfig, runs the type-erased BackendFn,
// claims a native-thread lease it will never use, and re-binarizes the
// cotree twice more for the verdict sweeps. At serving sizes (n <= 4096,
// the ROADMAP's dominant traffic) that fixed machinery costs more than the
// solve. The express lane replaces it with one inline pass on the worker
// thread:
//
//   resolve -> binarize -> leftist -> sequential sweep -> verdicts,
//
// with the binarized tree built once (shared by the sweep AND both
// verdicts) and every scratch array carved from the worker's exec::Arena —
// a warm worker runs the whole request without heap allocations beyond the
// SolveResult it returns.
//
// Results are bitwise-identical to the Solver path: the same sweep runs on
// the same binarized tree, and Backend::Adaptive's sequential-routing
// domain (everything below the model floor) promises covers bitwise-equal
// to Backend::Sequential — the differential suites enforce both.
#pragma once

#include "copath_solver.hpp"
#include "exec/arena.hpp"

namespace copath::service {

/// True when `opts` lets the express lane handle an n-vertex instance with
/// results identical to the generic path: Backend::Sequential always, and
/// Backend::Adaptive below its model's unconditional-sequential floor
/// (`CostModel::min_native_n`). Above the floor Adaptive's route depends
/// on thread budgets, which only the generic path (holding a lease) can
/// answer.
[[nodiscard]] bool express_eligible(std::size_t n, const SolveOptions& opts);

/// The inline solve. Mirrors Solver::solve's structured-failure contract:
/// never throws, resolution failures come back as ok == false. Scratch
/// comes from `arena` (pass the worker thread's Arena::for_this_thread()).
[[nodiscard]] SolveResult solve_express(const Instance& inst,
                                        const std::string& label,
                                        const SolveOptions& opts,
                                        exec::Arena& arena);

}  // namespace copath::service
