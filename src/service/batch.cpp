#include "service/batch.hpp"

#include <optional>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "cograph/binarize.hpp"
#include "core/adaptive.hpp"
#include "core/count.hpp"
#include "core/hamiltonian.hpp"
#include "core/sequential.hpp"
#include "exec/pack.hpp"
#include "service/express.hpp"
#include "service/persist_cache.hpp"
#include "util/timer.hpp"

namespace copath::service {
namespace {

/// Failure shape of the Service's pre-solve path (process()'s canonicalize
/// catch): label + backend + error, routed left at its default.
SolveResult prep_failure(const std::string& label, Backend backend,
                         std::string error) {
  SolveResult res;
  res.label = label;
  res.backend = backend;
  res.error = std::move(error);
  return res;
}

/// Failure shape of solve_express's catch: routed echoes the backend.
SolveResult solve_failure(const std::string& label, Backend backend,
                          std::string error) {
  SolveResult res = prep_failure(label, backend, std::move(error));
  res.routed = backend;
  return res;
}

/// Structural identity hash for BatchDedup::IdenticalTree — two cotrees
/// collide iff their node arrays are byte-for-byte the same walk (same
/// ids, same kinds, same children order, same vertex labels). Permuted
/// twins get different hashes with overwhelming probability, which is the
/// point: they must NOT be grouped in this mode.
std::uint64_t identical_tree_hash(const cograph::Cotree& t) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(t.size());
  mix(static_cast<std::uint64_t>(t.root()));
  for (std::size_t v = 0; v < t.size(); ++v) {
    const auto id = static_cast<cograph::NodeId>(v);
    mix(static_cast<std::uint64_t>(t.kind(id)));
    if (t.is_leaf(id)) {
      mix(static_cast<std::uint64_t>(t.vertex_of(id)) + 0x9e3779b97f4a7c15ull);
    } else {
      for (const auto c : t.children(id)) {
        mix(static_cast<std::uint64_t>(c));
      }
    }
  }
  return h;
}

bool trees_identical(const cograph::Cotree& a, const cograph::Cotree& b) {
  if (a.size() != b.size() || a.root() != b.root()) return false;
  for (std::size_t v = 0; v < a.size(); ++v) {
    const auto id = static_cast<cograph::NodeId>(v);
    if (a.kind(id) != b.kind(id)) return false;
    if (a.is_leaf(id)) {
      if (a.vertex_of(id) != b.vertex_of(id)) return false;
      continue;
    }
    const auto ca = a.children(id);
    const auto cb = b.children(id);
    if (ca.size() != cb.size()) return false;
    for (std::size_t i = 0; i < ca.size(); ++i) {
      if (ca[i] != cb[i]) return false;
    }
  }
  return true;
}

/// Per-request pre-pass state. `form`/`tree` are borrowed from the request
/// instances, which the caller keeps alive for the whole call — the dedup
/// keys below view the forms' signature bytes on the same terms.
struct Prep {
  SolveOptions opts;
  const cograph::CanonicalForm* form = nullptr;  // Canonical mode
  const cograph::Cotree* tree = nullptr;         // IdenticalTree mode
  std::uint64_t tree_hash = 0;                   // IdenticalTree mode
  std::size_t n = 0;
  bool failed = false;
};

/// A dedup group: `members` are request indices in arrival order;
/// members[0] is the rep that actually solves.
struct Group {
  std::vector<std::size_t> members;
};

struct RefHash {
  std::size_t operator()(const CacheKeyRef& k) const {
    return static_cast<std::size_t>(k.hash);
  }
};

}  // namespace

std::vector<SolveResult> solve_batch_fused(
    std::span<const SolveRequest> reqs, const SolveOptions& default_opts,
    const BatchConfig& cfg, const BatchFallback& fallback,
    exec::Arena& arena, BatchOutcome* outcome) {
  std::vector<SolveResult> results(reqs.size());
  BatchOutcome local{};
  BatchOutcome& out = outcome != nullptr ? *outcome : local;
  if (reqs.empty()) return results;

  // ---- pre-pass: canonicalize/resolve, failure isolation ---------------
  // Byte-identity pre-dedup first: duplicate text/signature payloads are
  // the same logical instance, so the batch pays parse/canonicalize once
  // per unique payload, not once per member — on duplicate-heavy batches
  // this is the dominant cost, and it is what N independent submits spread
  // across N workers while this sweep runs on one. Later members alias the
  // first arrival's borrowed form/tree (equal by value to what their own
  // resolution would build, so downstream fan-out is unchanged).
  std::vector<Prep> preps(reqs.size());
  std::unordered_map<std::string_view, std::size_t> raw_first[2];
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    Prep& p = preps[i];
    p.opts = reqs[i].options.value_or(default_opts);
    if (const auto raw = reqs[i].instance.raw_bytes()) {
      const auto [it, fresh] =
          raw_first[raw->first ? 1 : 0].emplace(raw->second, i);
      if (!fresh) {
        const std::size_t owner = it->second;
        const Prep& op = preps[owner];
        if (op.failed) {
          p.failed = true;
          results[i] = prep_failure(reqs[i].label, p.opts.backend,
                                    results[owner].error);
        } else {
          p.form = op.form;
          p.tree = op.tree;
          p.tree_hash = op.tree_hash;
          p.n = op.n;
        }
        continue;
      }
    }
    try {
      if (cfg.dedup == BatchDedup::Canonical) {
        // The cache-hit path must not materialize trees (signature-sourced
        // instances serve warm hits form-only), so only the form here;
        // resolve() is deferred to the groups that actually solve.
        p.form = &reqs[i].instance.canonical();
        p.n = p.form->from_canonical.size();
      } else {
        p.tree = &reqs[i].instance.resolve();
        p.tree_hash = identical_tree_hash(*p.tree);
        p.n = p.tree->vertex_count();
      }
    } catch (const std::exception& e) {
      p.failed = true;
      results[i] = prep_failure(reqs[i].label, p.opts.backend, e.what());
    } catch (...) {
      p.failed = true;
      results[i] =
          prep_failure(reqs[i].label, p.opts.backend, "non-standard exception");
    }
  }

  // ---- dedup: group duplicates, first member is the rep ----------------
  // Key lifetime: Canonical keys view signature bytes owned by the request
  // instances' CanonicalForms; both outlive this call, so the map borrows.
  std::vector<Group> groups;
  if (cfg.dedup == BatchDedup::Canonical) {
    std::unordered_map<CacheKeyRef, std::size_t, RefHash> index;
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      if (preps[i].failed) continue;
      const CacheKeyRef key = make_cache_key(*preps[i].form, preps[i].opts);
      const auto [it, fresh] = index.emplace(key, groups.size());
      if (fresh) groups.push_back(Group{});
      groups[it->second].members.push_back(i);
    }
  } else {
    // Bucket by structural hash + options, confirm with an exact tree
    // compare — a hash collision costs a compare, never a wrong merge.
    std::unordered_map<std::uint64_t, std::vector<std::size_t>> buckets;
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      if (preps[i].failed) continue;
      const OptionsKey ok = options_key(preps[i].opts);
      auto& bucket = buckets[preps[i].tree_hash];
      std::size_t found = groups.size();
      for (const std::size_t g : bucket) {
        const std::size_t rep = groups[g].members.front();
        if (options_key(preps[rep].opts) == ok &&
            trees_identical(*preps[rep].tree, *preps[i].tree)) {
          found = g;
          break;
        }
      }
      if (found == groups.size()) {
        groups.push_back(Group{});
        bucket.push_back(found);
      }
      groups[found].members.push_back(i);
    }
  }

  // ---- scatter helper: rep result -> every group member ----------------
  const auto finish_group = [&](const Group& g, SolveResult res) {
    const std::size_t rep = g.members.front();
    const Prep& rp = preps[rep];
    std::shared_ptr<const SolveResult> canonical;
    if (res.ok && cfg.cache != nullptr && rp.form != nullptr) {
      try {
        canonical = std::make_shared<const SolveResult>(
            to_canonical_space(res, *rp.form));
        const CacheKeyRef key = make_cache_key(*rp.form, rp.opts);
        cfg.cache->insert(key, canonical);
        // Write-through to the persistent tier (never throws; disk trouble
        // degrades to a skipped write).
        if (cfg.l2 != nullptr) cfg.l2->append(key, *canonical);
      } catch (...) {
        canonical = nullptr;  // a failed store must not strand the members
      }
    }
    // Canonical fan-out needs the canonical-space result even when no
    // cache wanted it stored.
    std::optional<SolveResult> tmp;
    const SolveResult* canon_src = canonical.get();
    if (res.ok && cfg.dedup == BatchDedup::Canonical &&
        canon_src == nullptr && g.members.size() > 1) {
      try {
        tmp = to_canonical_space(res, *rp.form);
        canon_src = &*tmp;
      } catch (...) {
        canon_src = nullptr;
      }
    }
    for (std::size_t m = 1; m < g.members.size(); ++m) {
      const std::size_t j = g.members[m];
      ++out.dedup_hits;
      try {
        if (!res.ok) {
          results[j] = res;
          results[j].label = reqs[j].label;
        } else if (cfg.dedup == BatchDedup::Canonical) {
          if (canon_src == nullptr) {
            results[j] = prep_failure(reqs[j].label, preps[j].opts.backend,
                                      "failed to materialize result");
            continue;
          }
          // The member's instance shares the canonical class but not the
          // leaf ids: replay through ITS permutation, exactly like a
          // Service cache hit or coalesced waiter.
          results[j] = remapped_from_canonical(*canon_src, *preps[j].form);
          results[j].label = reqs[j].label;
        } else {
          // Identical trees: replay is the identity.
          results[j] = res;
          results[j].label = reqs[j].label;
        }
      } catch (...) {
        results[j] = prep_failure(reqs[j].label, preps[j].opts.backend,
                                  "failed to materialize result");
      }
    }
    results[rep] = std::move(res);
  };

  // ---- cache probe (once per group) + route ----------------------------
  std::vector<std::size_t> packed;  // group indices headed for the slab
  packed.reserve(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const std::size_t rep = groups[g].members.front();
    const Prep& rp = preps[rep];
    if (cfg.cache != nullptr && rp.form != nullptr) {
      const CacheKeyRef key = make_cache_key(*rp.form, rp.opts);
      std::shared_ptr<const SolveResult> hit = cfg.cache->lookup(key);
      if (hit == nullptr && cfg.l2 != nullptr) {
        // L1 miss: probe the persistent tier and promote a hit so the
        // group's twins in future batches stay RAM-warm.
        hit = cfg.l2->lookup(key);
        if (hit != nullptr) {
          cfg.cache->insert(key, hit);
          ++out.l2_hits;
        }
      } else if (hit != nullptr) {
        ++out.cache_hits;
      }
      if (hit != nullptr) {
        out.dedup_hits += groups[g].members.size() - 1;
        for (const std::size_t j : groups[g].members) {
          try {
            results[j] = remapped_from_canonical(*hit, *preps[j].form);
            results[j].label = reqs[j].label;
          } catch (...) {
            results[j] = prep_failure(reqs[j].label, preps[j].opts.backend,
                                      "failed to materialize cache hit");
          }
        }
        groups[g].members.clear();  // fully answered
        continue;
      }
    }
    if (cfg.use_express_pack && express_eligible(rp.n, rp.opts)) {
      packed.push_back(g);
    } else {
      finish_group(groups[g], fallback(reqs[rep], rp.opts));
    }
  }

  if (packed.empty()) return results;

  // ---- pack: every survivor's arrays in ONE arena allocation -----------
  // Sizes are exact up front (2n-1 binarized nodes, n leaves per
  // instance), so the slab is carved once and sliced per instance.
  std::vector<const cograph::Cotree*> trees(packed.size(), nullptr);
  std::size_t total_nodes = 0, total_leaves = 0;
  for (std::size_t k = 0; k < packed.size(); ++k) {
    const Group& g = groups[packed[k]];
    const std::size_t rep = g.members.front();
    try {
      // Canonical mode deferred resolution to here — the groups that
      // actually solve; a decode/parse failure fails this group alone.
      trees[k] = &reqs[rep].instance.resolve();
      total_nodes += 2 * preps[rep].n - 1;
      total_leaves += preps[rep].n;
    } catch (const std::exception& e) {
      finish_group(g, solve_failure(reqs[rep].label,
                                    preps[rep].opts.backend, e.what()));
    } catch (...) {
      finish_group(g, solve_failure(reqs[rep].label, preps[rep].opts.backend,
                                    "non-standard exception"));
    }
  }

  exec::SlabLayout layout;
  const auto sp_parent = layout.add<std::int32_t>(total_nodes);
  const auto sp_left = layout.add<std::int32_t>(total_nodes);
  const auto sp_right = layout.add<std::int32_t>(total_nodes);
  const auto sp_leaf_count = layout.add<std::int64_t>(total_nodes);
  const auto sp_vertex = layout.add<cograph::VertexId>(total_nodes);
  const auto sp_lov = layout.add<par::NodeId>(total_leaves);
  const auto sp_join = layout.add<std::uint8_t>(total_nodes);
  exec::Slab slab(arena, layout);
  const auto parent = slab.at(sp_parent);
  const auto left = slab.at(sp_left);
  const auto right = slab.at(sp_right);
  const auto leaf_count = slab.at(sp_leaf_count);
  const auto vertex = slab.at(sp_vertex);
  const auto lov = slab.at(sp_lov);
  const auto is_join = slab.at(sp_join);

  // ---- sweep: back-to-back express solves over the slab slices ---------
  std::size_t node_off = 0, leaf_off = 0;
  for (std::size_t k = 0; k < packed.size(); ++k) {
    if (trees[k] == nullptr) continue;  // resolution failed above
    const Group& g = groups[packed[k]];
    const std::size_t rep = g.members.front();
    const Prep& rp = preps[rep];
    const cograph::Cotree& t = *trees[k];
    const std::size_t n = rp.n;
    const std::size_t bn = 2 * n - 1;

    SolveResult res;
    res.label = reqs[rep].label;
    res.backend = rp.opts.backend;
    try {
      // Operation-for-operation the solve_express body, with the
      // ScratchBinarized arrays replaced by slab slices — same layout,
      // same sweeps, bitwise-equal covers.
      util::WallTimer timer;
      const cograph::BinSpans spans{
          parent.subspan(node_off, bn), left.subspan(node_off, bn),
          right.subspan(node_off, bn),  is_join.subspan(node_off, bn),
          vertex.subspan(node_off, bn), lov.subspan(leaf_off, n)};
      for (std::size_t v = 0; v < bn; ++v) spans.parent[v] = -1;
      for (std::size_t v = 0; v < bn; ++v) spans.left[v] = -1;
      for (std::size_t v = 0; v < bn; ++v) spans.right[v] = -1;
      for (std::size_t v = 0; v < bn; ++v) spans.is_join[v] = 0;
      for (std::size_t v = 0; v < bn; ++v) spans.vertex[v] = cograph::kNull;
      for (std::size_t v = 0; v < n; ++v) spans.leaf_of_vertex[v] = -1;
      const std::int32_t root = cograph::binarize_into(t, spans, arena);
      const auto lc = leaf_count.subspan(node_off, bn);
      cograph::make_leftist_into(spans.left, spans.right, lc);
      const cograph::BinView view{spans.left,   spans.right,
                                  spans.is_join, spans.vertex,
                                  spans.leaf_of_vertex, root};
      res.cover = core::min_path_cover_sequential(view, lc, arena);
      res.wall_ms = timer.millis();

      res.routed = Backend::Sequential;
      res.vertex_count = n;
      if (rp.opts.compute_verdicts) {
        const core::CountVerdicts v = core::count_verdicts(view, lc, arena);
        res.optimal_size = v.cover_size;
        res.minimum =
            static_cast<std::int64_t>(res.cover.size()) == res.optimal_size;
        res.hamiltonian_path = v.hamiltonian_path;
        res.hamiltonian_cycle = v.hamiltonian_cycle;
        if (rp.opts.want_hamiltonian_cycle && res.hamiltonian_cycle) {
          res.cycle = core::hamiltonian_cycle(t);
        }
      } else {
        res.optimal_size = -1;
        if (rp.opts.want_hamiltonian_cycle) {
          res.cycle = core::hamiltonian_cycle(t);
          res.hamiltonian_cycle = res.cycle.has_value();
        }
      }
      if (rp.opts.validate) {
        res.validation =
            core::validate_path_cover(t, res.cover, /*require_minimum=*/true);
      }
      res.ok = true;
      ++out.packed_solves;
    } catch (const std::exception& e) {
      res = solve_failure(reqs[rep].label, rp.opts.backend, e.what());
    } catch (...) {
      res = solve_failure(reqs[rep].label, rp.opts.backend,
                          "non-standard exception");
    }
    node_off += bn;
    leaf_off += n;
    finish_group(g, std::move(res));
  }
  return results;
}

}  // namespace copath::service
