// exec::ScratchVec — a growable typed array over recycled Arena buffers.
//
// The front-end (parser, binarizer, leftist transform, canonicalizer,
// sequential sweep) used to build its working set out of fresh std::vectors
// on every request; at serving sizes the allocator traffic dominates the
// work. ScratchVec gives those passes the std::vector surface they need —
// push_back / operator[] / assign / spans — while drawing storage from an
// exec::Arena, so a steady-state request reuses the previous request's
// buffers instead of touching the heap (Arena::Stats::fresh_allocs counts
// the exceptions; the front-end regression test pins it at zero on warm
// requests).
//
// Same element contract as exec::Native::Array: trivially copyable,
// trivially destructible (growth is a memcpy between size classes; the
// destructor just returns the buffer). Same lifetime rules as every arena
// loan: the arena outlives the vector, one thread only.
#pragma once

#include <cstddef>
#include <cstring>
#include <span>
#include <type_traits>

#include "exec/arena.hpp"
#include "util/check.hpp"

namespace copath::exec {

template <typename T>
class ScratchVec {
  static_assert(std::is_trivially_copyable_v<T> &&
                std::is_trivially_destructible_v<T>);
  static_assert(alignof(T) <= alignof(std::max_align_t));

 public:
  using value_type = T;

  explicit ScratchVec(Arena& arena) : arena_(&arena) {}
  ScratchVec(Arena& arena, std::size_t n, T init = T{}) : arena_(&arena) {
    assign(n, init);
  }

  ScratchVec(const ScratchVec&) = delete;
  ScratchVec& operator=(const ScratchVec&) = delete;
  ScratchVec(ScratchVec&& other) noexcept
      : arena_(other.arena_), buf_(other.buf_), size_(other.size_) {
    other.arena_ = nullptr;
    other.buf_ = Arena::Buffer{};
    other.size_ = 0;
  }
  ScratchVec& operator=(ScratchVec&&) = delete;

  ~ScratchVec() {
    if (arena_ != nullptr) arena_->release(buf_);
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const {
    return buf_.capacity / sizeof(T);
  }

  [[nodiscard]] T* data() { return reinterpret_cast<T*>(buf_.data); }
  [[nodiscard]] const T* data() const {
    return reinterpret_cast<const T*>(buf_.data);
  }

  [[nodiscard]] T& operator[](std::size_t i) {
    COPATH_DCHECK(i < size_);
    return data()[i];
  }
  [[nodiscard]] const T& operator[](std::size_t i) const {
    COPATH_DCHECK(i < size_);
    return data()[i];
  }
  [[nodiscard]] T& back() {
    COPATH_DCHECK(size_ > 0);
    return data()[size_ - 1];
  }
  [[nodiscard]] T& front() {
    COPATH_DCHECK(size_ > 0);
    return data()[0];
  }

  [[nodiscard]] std::span<T> span() { return {data(), size_}; }
  [[nodiscard]] std::span<const T> span() const { return {data(), size_}; }

  void reserve(std::size_t n) {
    if (n > capacity()) grow_to(n);
  }

  void push_back(T value) {
    if (size_ == capacity()) grow_to(size_ + 1);
    data()[size_++] = value;
  }

  void pop_back() {
    COPATH_DCHECK(size_ > 0);
    --size_;
  }

  void clear() { size_ = 0; }

  /// Sets the size to exactly n, filling every slot with `value` (the
  /// front-end passes always want a defined initial state, so there is no
  /// uninitialized resize).
  void assign(std::size_t n, T value) {
    reserve(n);
    size_ = n;
    for (std::size_t i = 0; i < n; ++i) data()[i] = value;
  }

  /// Grows (never shrinks) to size n; new slots are filled with `value`.
  void resize(std::size_t n, T value = T{}) {
    if (n <= size_) {
      size_ = n;
      return;
    }
    reserve(n);
    for (std::size_t i = size_; i < n; ++i) data()[i] = value;
    size_ = n;
  }

 private:
  void grow_to(std::size_t n) {
    // Size classes are pow2, so requesting max(2x, n) keeps growth
    // amortized-constant while landing on the same recycled classes.
    const std::size_t want =
        n * sizeof(T) > buf_.capacity * 2 ? n * sizeof(T)
                                          : buf_.capacity * 2;
    Arena::Buffer next = arena_->acquire(want < sizeof(T) ? sizeof(T) : want);
    if (size_ != 0) std::memcpy(next.data, buf_.data, size_ * sizeof(T));
    arena_->release(buf_);
    buf_ = next;
  }

  Arena* arena_;
  Arena::Buffer buf_{};
  std::size_t size_ = 0;
};

}  // namespace copath::exec
