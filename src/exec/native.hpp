// exec::Native — the production executor: the same step/pfor programs the
// checked PRAM simulator certifies, run at memory speed.
//
// Storage is a recycled arena buffer per array (exec/arena.hpp); get/put
// are direct loads and stores (bounds-checked only in debug builds); there
// is no conflict metadata, no write buffering, and no per-element
// accounting. `pfor` and `step` run the body over a util::ThreadPool in one
// Brent-blocked pass — one contiguous block per worker — with a sequential
// fast path when the phase is smaller than `Config::grain` (forking threads
// for a few hundred elements costs more than the loop).
//
// Beyond the per-phase grain, Native opts into the par/ primitives' *native
// shortcuts* (exec::native_shortcuts_v): a primitive over n items may
// replace its whole phase program with a one-pass host loop when
// `sequential_ok(stage, n)` holds — always when the pool has one worker,
// and below the per-stage grain table (Config::grains, calibrated by
// core/adaptive.*) otherwise. Shortcut outputs are value-identical to the
// phase program's (every primitive's output is uniquely determined by its
// input); the differential suites enforce it.
//
// Soundness: Native may only run step bodies that are EREW-clean — no cell
// touched by two processors in a phase, no processor reading a cell after
// writing it. The CheckedPram executor *proves* that property for every
// program in this library (the test suite runs them under Policy::EREW), and
// for such programs direct writes are race-free and value-identical to the
// simulator's deferred-write semantics. Programs relying on concurrent-write
// resolution (CRCW) or on the end-of-step barrier for cross-processor
// visibility are outside the contract.
//
// Stats semantics (see DESIGN.md): Native counts phases, not the paper's
// cost model. Each step/blocked_step charges 1 step and `procs` work; pfor
// charges the Brent bound ceil(items / processors()) steps and `items`
// work; a shortcut host pass charges 1 step and `items` work. Blocked-step
// bodies' per-processor cost returns are ignored, and reads/writes stay 0
// (nothing is instrumented). Use CheckedPram when the simulated step/work
// counts are the point.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "exec/arena.hpp"
#include "exec/exec.hpp"
#include "pram/stats.hpp"
#include "util/cancel.hpp"
#include "util/check.hpp"
#include "util/math.hpp"
#include "util/thread_pool.hpp"

namespace copath::exec {

class Native {
 public:
  /// Per-primitive sequential cutoffs: a primitive over n items takes its
  /// one-pass host fast path when n <= the stage's grain (and always when
  /// the pool has a single worker). Defaults come from the cost-model
  /// calibration (DESIGN.md §7); 0 disables the shortcut for that stage
  /// (tests use this to force the phase-structured path).
  struct Grains {
    std::size_t scan = 1 << 16;
    std::size_t rank = 1 << 17;
    std::size_t brackets = 1 << 16;
    std::size_t euler = 1 << 15;
    std::size_t contract = 1 << 15;

    [[nodiscard]] std::size_t of(Stage s) const {
      switch (s) {
        case Stage::Scan: return scan;
        case Stage::Rank: return rank;
        case Stage::Brackets: return brackets;
        case Stage::Euler: return euler;
        case Stage::Contract: return contract;
      }
      return 0;
    }

    /// All shortcuts off — the pure phase-structured program.
    [[nodiscard]] static Grains none() { return Grains{0, 0, 0, 0, 0}; }
  };

  struct Config {
    /// Worker threads (1 = sequential, no threads spawned; 0 = hardware
    /// concurrency).
    std::size_t workers = 1;
    /// Virtual processor count reported to the blocked primitives (selects
    /// their block counts) and used for the Brent step accounting; 0 means
    /// "one block per worker", the natural native schedule.
    std::size_t processors = 0;
    /// Phases smaller than this run sequentially on the calling thread.
    std::size_t grain = 2048;
    /// Per-primitive sequential cutoffs (see above).
    Grains grains{};
    /// Scratch allocator for executor arrays. nullptr = executor-private
    /// arena (buffers recycle across the stages of one solve). Pass
    /// Arena::for_this_thread() to recycle across every solve this thread
    /// performs; the arena must outlive every array created through it and
    /// must not be shared between threads.
    Arena* arena = nullptr;
    /// Cooperative cancellation token; nullptr = never cancelled.
    /// Borrowed — must outlive the executor. Pool chunks poll it and bail
    /// early; the coordinator throws util::CancelledError at the next
    /// phase end, before any dependent stage can read the partial scratch
    /// a bailed phase left behind. Disarmed cost: one nullptr test per
    /// phase plus a masked counter test per ~512 loop iterations.
    util::CancelToken* cancel = nullptr;
  };

  /// Per-processor context. Carries only identity — Native arrays do not
  /// consult it, so access compiles down to the raw indexing.
  class Ctx {
   public:
    [[nodiscard]] std::uint64_t proc() const { return proc_; }
    [[nodiscard]] std::size_t worker() const { return worker_; }

   private:
    friend class Native;
    explicit Ctx(std::size_t worker) : worker_(worker) {}
    std::uint64_t proc_ = 0;
    std::size_t worker_;
  };

  template <typename T>
  class Array {
    // Arena buffers are raw recycled bytes; anything fancier than a
    // trivially-copyable element would need real construction/destruction
    // bookkeeping the executor deliberately does not do.
    static_assert(std::is_trivially_copyable_v<T> &&
                  std::is_trivially_destructible_v<T>);
    static_assert(alignof(T) <= alignof(std::max_align_t));

   public:
    using value_type = T;

    Array(Native& ex, std::size_t n, T init = T{})
        : buf_(ex.arena().acquire(n * sizeof(T))), size_(n), ex_(&ex) {
      data_ = reinterpret_cast<T*>(buf_.data);
      std::uninitialized_fill_n(data_, n, init);
      ex.add_cells(static_cast<std::int64_t>(n));
    }
    Array(Native& ex, const std::vector<T>& data)
        : buf_(ex.arena().acquire(data.size() * sizeof(T))),
          size_(data.size()),
          ex_(&ex) {
      data_ = reinterpret_cast<T*>(buf_.data);
      std::uninitialized_copy_n(data.data(), size_, data_);
      ex.add_cells(static_cast<std::int64_t>(size_));
    }

    Array(Array&& other) noexcept
        : buf_(other.buf_),
          data_(other.data_),
          size_(other.size_),
          ex_(other.ex_) {
      other.ex_ = nullptr;
      other.buf_ = Arena::Buffer{};
    }
    Array(const Array&) = delete;
    Array& operator=(const Array&) = delete;
    Array& operator=(Array&&) = delete;

    ~Array() {
      if (ex_ != nullptr) {
        ex_->add_cells(-static_cast<std::int64_t>(size_));
        ex_->arena().release(buf_);
      }
    }

    [[nodiscard]] std::size_t size() const { return size_; }

    // --- Step access: direct loads/stores ------------------------------

    [[nodiscard]] T get(Ctx&, std::size_t i) const {
      COPATH_DCHECK(i < size_);
      return data_[i];
    }
    void put(Ctx&, std::size_t i, T value) {
      COPATH_DCHECK(i < size_);
      data_[i] = std::move(value);
    }

    // --- Host access (same surface as pram::Array) ---------------------

    [[nodiscard]] const T& host(std::size_t i) const {
      COPATH_DCHECK(i < size_);
      return data_[i];
    }
    [[nodiscard]] T& host(std::size_t i) {
      COPATH_DCHECK(i < size_);
      return data_[i];
    }
    [[nodiscard]] std::span<const T> host_span() const {
      return {data_, size_};
    }
    [[nodiscard]] std::span<T> host_span() { return {data_, size_}; }
    [[nodiscard]] std::vector<T> to_vector() const {
      return {data_, data_ + size_};
    }

   private:
    Arena::Buffer buf_;
    T* data_ = nullptr;
    std::size_t size_;
    Native* ex_;
  };

  Native() : Native(Config{}) {}
  explicit Native(Config cfg)
      : grain_(cfg.grain == 0 ? 1 : cfg.grain),
        grains_(cfg.grains),
        arena_(cfg.arena),
        cancel_(cfg.cancel),
        pool_(cfg.workers == 0 ? util::ThreadPool::default_workers()
                               : cfg.workers) {
    processors_ = cfg.processors == 0 ? pool_.workers() : cfg.processors;
    if (arena_ == nullptr) {
      owned_arena_ = std::make_unique<Arena>();
      arena_ = owned_arena_.get();
    }
  }

  Native(const Native&) = delete;
  Native& operator=(const Native&) = delete;

  [[nodiscard]] std::size_t workers() const { return pool_.workers(); }

  /// Blocks-per-phase budget for the blocked primitives (mirrors
  /// pram::Machine::processors; 0 never occurs — it resolves at
  /// construction).
  [[nodiscard]] std::size_t processors() const { return processors_; }
  void set_processors(std::size_t p) {
    processors_ = p == 0 ? pool_.workers() : p;
  }

  [[nodiscard]] const pram::Stats& stats() const { return stats_; }
  void reset_stats() { stats_ = pram::Stats{}; }

  /// The scratch allocator executor arrays draw from (shared or private —
  /// see Config::arena).
  [[nodiscard]] Arena& arena() { return *arena_; }

  /// True when a primitive over n items should take its one-pass host
  /// fast path: always on a single-worker pool (the phase machinery can
  /// only lose there), below the per-stage grain otherwise.
  [[nodiscard]] bool sequential_ok(Stage s, std::size_t n) const {
    return pool_.workers() == 1 || n <= grains_.of(s);
  }

  /// Stats charge for a shortcut host pass over `items` elements: one
  /// step, `items` work, on one processor. Doubles as a cancellation
  /// checkpoint: the pass is skipped entirely when the token has tripped.
  void charge_host_pass(std::size_t items) {
    cancel_checkpoint();
    charge(1, items, 1);
  }

  /// Cancellation checkpoint: heartbeats the attached token and throws
  /// util::CancelledError when it has tripped (deadline or explicit).
  /// Called at every phase end and, via the pipeline's stage hook, at
  /// every stage boundary — always on the coordinator thread, so the
  /// throw unwinds through Solver::solve's error path with executor
  /// arrays destroyed (arena buffers released) along the way. A nullptr
  /// test when no token is attached.
  void cancel_checkpoint() {
    if (cancel_ != nullptr) cancel_->checkpoint();
  }

  /// One parallel phase: body(ctx, p) for every p in [0, procs). Bodies
  /// must be EREW-clean (see the header comment); writes are visible
  /// immediately, and the call returns only when every processor finished.
  template <typename Body>
  void step(std::size_t procs, Body&& body) {
    if (procs == 0) return;
    charge(1, procs, procs);
    run(procs, std::forward<Body>(body));
    cancel_checkpoint();
  }

  /// Blocked phase: each processor handles a whole block of work, so the
  /// grain fast path (which counts *indices*, not work) does not apply —
  /// any multi-block phase goes to the pool. The per-processor cost
  /// returned by the body is ignored (Native stats count phases).
  template <typename Body>
  void blocked_step(std::size_t procs, Body&& body) {
    if (procs == 0) return;
    charge(1, procs, procs);
    run_blocked(procs, [&body](Ctx& c, std::size_t p) { (void)body(c, p); });
    cancel_checkpoint();
  }

  /// Brent-scheduled loop: body(ctx, i) for every i in [0, items), in one
  /// pass over the pool (the chunking *is* the Brent schedule — there are
  /// no intermediate barriers, which EREW-clean bodies cannot observe).
  template <typename Body>
  void pfor(std::size_t items, Body&& body) {
    if (items == 0) return;
    // Brent accounting: the schedule never runs more than processors()
    // logical processors per charged step.
    charge(pfor_steps(items), items, std::min(items, processors_));
    run(items, std::forward<Body>(body));
    cancel_checkpoint();
  }

  /// Brent bound pfor(items) is charged: ceil(items / processors()).
  [[nodiscard]] std::size_t pfor_steps(std::size_t items) const {
    return items == 0 ? 0 : util::ceil_div(items, processors_);
  }

 private:
  template <typename T>
  friend class Array;

  void add_cells(std::int64_t delta) {
    stats_.cells = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(stats_.cells) + delta);
  }

  void charge(std::uint64_t steps, std::uint64_t work,
              std::uint64_t procs) {
    stats_.steps += steps;
    stats_.work += work;
    if (procs > stats_.max_processors) stats_.max_processors = procs;
  }

  template <typename Body>
  void run(std::size_t count, Body&& body) {
    if (count < grain_ || pool_.workers() == 1) {
      run_inline(count, body);
      return;
    }
    run_pool(count, body);
  }

  /// Blocked phases skip the grain check: `count` is the number of blocks,
  /// each worth ~n/count elements of sequential work.
  template <typename Body>
  void run_blocked(std::size_t count, Body&& body) {
    if (count < 2 || pool_.workers() == 1) {
      run_inline(count, body);
      return;
    }
    run_pool(count, body);
  }

  /// Loop iterations between cancellation polls inside a phase. Small
  /// enough that a tripped token stops a huge pfor within microseconds,
  /// large enough that the masked test is noise against any real body.
  static constexpr std::size_t kPollMask = 511;

  template <typename Body>
  void run_inline(std::size_t count, Body& body) {
    Ctx ctx(0);
    if (cancel_ == nullptr) {
      for (std::size_t p = 0; p < count; ++p) {
        ctx.proc_ = p;
        body(ctx, p);
      }
      return;
    }
    // Armed: poll mid-phase so even a single-worker (inline) phase
    // heartbeats, enforces its deadline, and stops early. The bail is a
    // plain return — the phase-end cancel_checkpoint() turns it into the
    // structured throw.
    for (std::size_t p = 0; p < count; ++p) {
      if ((p & kPollMask) == 0 && cancel_->poll()) return;
      ctx.proc_ = p;
      body(ctx, p);
    }
  }

  template <typename Body>
  void run_pool(std::size_t count, Body& body) {
    util::CancelToken* cancel = cancel_;
    if (cancel == nullptr) {
      pool_.parallel_blocks(
          0, count,
          [&body](std::size_t worker, std::size_t lo, std::size_t hi) {
            Ctx ctx(worker);
            for (std::size_t p = lo; p < hi; ++p) {
              ctx.proc_ = p;
              body(ctx, p);
            }
          });
      return;
    }
    // Armed: each chunk polls every kPollMask+1 iterations and bails by
    // early return — never by throwing, which would terminate the process
    // (util::ThreadPool's contract). poll() also heartbeats, so a long
    // phase making progress is never mistaken for a stuck one by the
    // Service watchdog.
    pool_.parallel_blocks(
        0, count,
        [&body, cancel](std::size_t worker, std::size_t lo, std::size_t hi) {
          Ctx ctx(worker);
          for (std::size_t p = lo; p < hi; ++p) {
            if (((p - lo) & kPollMask) == 0 && cancel->poll()) return;
            ctx.proc_ = p;
            body(ctx, p);
          }
        });
  }

  std::size_t processors_;
  std::size_t grain_;
  Grains grains_;
  Arena* arena_;
  util::CancelToken* cancel_ = nullptr;
  std::unique_ptr<Arena> owned_arena_;
  util::ThreadPool pool_;
  pram::Stats stats_{};
};

template <>
struct Traits<Native> {
  using Ctx = Native::Ctx;
  template <typename T>
  using Array = Native::Array<T>;

  template <typename T, typename... Args>
  static Array<T> make(Native& ex, Args&&... args) {
    return Array<T>(ex, std::forward<Args>(args)...);
  }
};

template <>
inline constexpr bool native_shortcuts_v<Native> = true;

static_assert(Executor<Native>);

}  // namespace copath::exec
