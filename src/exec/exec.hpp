// The execution-layer abstraction separating the paper's algorithms from
// the substrate they run on.
//
// Every parallel primitive in par/ and every stage of the core pipeline is
// written against an *executor*: an object exposing synchronous phases
// (`step`, `blocked_step`), a Brent-scheduled parallel loop (`pfor`), and a
// shared-array type accessed through a per-processor context. Two
// executors implement the contract:
//
//   exec::CheckedPram  (exec/checked_pram.hpp) — the conflict-checked PRAM
//     simulator: deferred writes, end-of-step barriers, EREW/CREW/CRCW
//     enforcement, and exact step/work accounting. The correctness and
//     complexity oracle. `pram::Machine` itself also satisfies the contract,
//     so legacy call sites keep working unchanged.
//
//   exec::Native       (exec/native.hpp) — plain std::vector storage,
//     direct writes, no conflict metadata, thread-pool `pfor` with a
//     sequential fast path. The production engine.
//
// The substitution is sound for exactly the programs the checked simulator
// certifies: in an EREW-clean step no cell is touched by two processors and
// no processor reads a cell after writing it (the checker flags both), so
// executing the same body with direct writes is race-free and
// value-identical to the deferred-write semantics. Step bodies must keep to
// that discipline — run the CheckedPram executor in tests to prove it.
//
// Executor access goes through `exec::Traits<E>` (specialized next to each
// executor) so algorithm code never names a concrete machine:
//   exec::CtxOf<E>                 the per-processor context type
//   exec::ArrayOf<E, T>            the shared-array type
//   exec::make_array<T>(ex, ...)   array construction (size+init or adopt)
#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace copath::exec {

/// Must be specialized for every executor type E with:
///   using Ctx = ...;
///   template <typename T> using Array = ...;
///   template <typename T, typename... Args>
///   static Array<T> make(E& ex, Args&&... args);
template <typename E>
struct Traits;

template <typename E>
using CtxOf = typename Traits<E>::Ctx;

/// True for executors that permit the calibrated *native shortcuts*: the
/// par/ primitives' one-pass sequential fast paths and fused sweeps.
/// Shortcut-taking code must be value-identical to the phase-structured
/// program it replaces (the outputs of every primitive are uniquely
/// determined by its inputs); the checked simulator keeps its exact phase
/// structure so step/work accounting stays bit-for-bit, which is why the
/// default is false and only exec::Native opts in (specialization lives in
/// exec/native.hpp).
template <typename E>
inline constexpr bool native_shortcuts_v = false;

/// Which primitive is asking for a sequential cutoff. Executors with
/// native_shortcuts_v expose `sequential_ok(Stage, n)`; the per-stage
/// grains are calibrated by the cost model (core/adaptive.*).
enum class Stage : std::uint8_t {
  Scan,      // prefix sums, reductions, compaction
  Rank,      // list ranking
  Brackets,  // bracket matching
  Euler,     // Euler-tour numbering
  Contract,  // tree contraction
};

template <typename E, typename T>
using ArrayOf = typename Traits<E>::template Array<T>;

/// Allocates an executor array: make_array<T>(ex, n[, init]) or adopts a
/// vector: make_array(ex, std::vector<T>{...}).
template <typename T, typename E>
[[nodiscard]] ArrayOf<E, T> make_array(E& ex, std::size_t n, T init = T{}) {
  return Traits<E>::template make<T>(ex, n, std::move(init));
}

template <typename T, typename E>
[[nodiscard]] ArrayOf<E, T> make_array(E& ex, std::vector<T> data) {
  return Traits<E>::template make<T>(ex, std::move(data));
}

// clang-format off
/// The executor contract the par/ primitives and core stages are written
/// against. (Array construction is checked through make_array above.)
template <typename E>
concept Executor = requires(E& ex, const E& cex, std::size_t n) {
  typename Traits<E>::Ctx;
  { cex.processors() } -> std::convertible_to<std::size_t>;
  { cex.pfor_steps(n) } -> std::convertible_to<std::size_t>;
  ex.step(n, [](CtxOf<E>&, std::size_t) {});
  ex.blocked_step(n, [](CtxOf<E>&, std::size_t) -> std::uint64_t {
    return 1;
  });
  ex.pfor(n, [](CtxOf<E>&, std::size_t) {});
};
// clang-format on

}  // namespace copath::exec
