// exec::Slab — many typed arrays carved out of ONE Arena allocation.
//
// The fused batch path (service/batch.cpp) lays the SoA arrays of every
// instance in a batch side by side: parent/left/right/is_join/vertex/
// leaf_of_vertex/leaf_count for k instances become seven packed arrays with
// per-instance offsets, not 7k separate buffers. One Arena::acquire serves
// the whole batch, the arrays are contiguous (the back-to-back sweeps walk
// ascending addresses), and release is a single free-list push however many
// instances were packed.
//
// Usage is two-phase so the one allocation can be sized exactly:
//
//   exec::SlabLayout layout;
//   const auto nodes = layout.add<std::int32_t>(total_nodes);
//   const auto leaves = layout.add<std::int32_t>(total_leaves);
//   exec::Slab slab(arena, layout);
//   std::span<std::int32_t> left = slab.at(nodes);
//   std::span<std::int32_t> lov = slab.at(leaves);
//
// Same lifetime rules as every arena loan (DESIGN.md §7): the arena
// outlives the slab, one thread only. Element types follow the ScratchVec
// contract (trivially copyable, alignment <= max_align_t — Arena buffers
// carry operator new[]'s fundamental alignment, so aligning offsets is
// sufficient).
#pragma once

#include <cstddef>
#include <span>
#include <type_traits>

#include "exec/arena.hpp"
#include "util/check.hpp"

namespace copath::exec {

/// A typed (offset, count) ticket into a Slab, issued by SlabLayout::add
/// and redeemed by Slab::at. Carrying the type in the ticket keeps the two
/// phases from disagreeing about element sizes.
template <typename T>
struct SlabSpan {
  std::size_t offset = 0;
  std::size_t count = 0;
};

/// Phase one: accumulate the arrays the slab must hold. add() aligns each
/// array to its element type and returns the ticket for phase two.
class SlabLayout {
 public:
  template <typename T>
  [[nodiscard]] SlabSpan<T> add(std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T> &&
                  std::is_trivially_destructible_v<T>);
    static_assert(alignof(T) <= alignof(std::max_align_t));
    bytes_ = align_up(bytes_, alignof(T));
    const SlabSpan<T> s{bytes_, count};
    bytes_ += count * sizeof(T);
    return s;
  }

  [[nodiscard]] std::size_t bytes() const { return bytes_; }

 private:
  static std::size_t align_up(std::size_t n, std::size_t a) {
    return (n + a - 1) & ~(a - 1);
  }

  std::size_t bytes_ = 0;
};

/// Phase two: the single arena loan. at() redeems tickets into typed spans
/// over the shared buffer; contents are uninitialized (callers fill every
/// slot, exactly like ScratchVec::assign-based code).
class Slab {
 public:
  Slab(Arena& arena, const SlabLayout& layout)
      : arena_(&arena),
        buf_(arena.acquire(layout.bytes() > 0 ? layout.bytes() : 1)),
        bytes_(layout.bytes()) {}

  Slab(const Slab&) = delete;
  Slab& operator=(const Slab&) = delete;
  ~Slab() { arena_->release(buf_); }

  template <typename T>
  [[nodiscard]] std::span<T> at(SlabSpan<T> s) {
    COPATH_DCHECK(s.offset + s.count * sizeof(T) <= bytes_ ||
                  s.count == 0);
    return {reinterpret_cast<T*>(buf_.data + s.offset), s.count};
  }

 private:
  Arena* arena_;
  Arena::Buffer buf_;
  std::size_t bytes_;
};

}  // namespace copath::exec
