// exec::Arena — the scratch-buffer pool behind exec::Native arrays.
//
// The pipeline allocates hundreds of typed scratch arrays per solve (every
// par/ primitive and every pipeline stage builds its working set fresh), and
// at serving sizes the allocator cost dominates: each fresh std::vector of a
// few hundred KB is an mmap plus a page-fault sweep. The arena replaces
// those with recycled raw buffers:
//
//  * Requests are rounded up to power-of-two size classes, so arrays of the
//    pipeline's slightly-different lengths (n, 2n-1, tour length, bracket
//    total, ...) collapse onto a handful of classes and recycle across
//    stages, repair rounds, and — when the arena is shared — whole solves.
//  * acquire/release are plain free-list pushes; after the first solve of a
//    given size the steady state performs zero heap allocations for
//    executor arrays (tests/exec_test.cpp asserts this).
//  * The arena owns every byte it ever allocated; release just returns a
//    buffer to the free list, so destruction order of arrays is arbitrary
//    and nothing leaks even when a solve throws mid-stage.
//
// Lifetime rules (DESIGN.md §7): an arena must outlive every array carved
// from it, and it is deliberately NOT thread-safe — executor arrays are
// created and destroyed only on the thread driving the solve (step/pfor
// bodies never allocate), so a lock would buy nothing. Use for_this_thread()
// to share one arena across the solves a worker thread performs; never pass
// one arena to two threads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/check.hpp"
#include "util/math.hpp"

namespace copath::exec {

class Arena {
 public:
  struct Stats {
    std::uint64_t acquires = 0;      // total buffer requests served
    std::uint64_t reuses = 0;        // served from the free list
    std::uint64_t fresh_allocs = 0;  // served by a new heap allocation
    std::uint64_t bytes_reserved = 0;  // capacity owned (live + free)
    std::uint64_t outstanding = 0;     // buffers currently acquired
  };

  /// A loan from the pool. `capacity` is the rounded size-class, at least
  /// the requested byte count; alignment is operator new[]'s fundamental
  /// alignment (>= alignof(std::max_align_t)).
  struct Buffer {
    std::byte* data = nullptr;
    std::size_t capacity = 0;
  };

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  ~Arena() { COPATH_DCHECK(stats_.outstanding == 0); }

  [[nodiscard]] Buffer acquire(std::size_t bytes) {
    const std::size_t cls = size_class(bytes);
    ++stats_.acquires;
    ++stats_.outstanding;
    for (std::size_t i = free_.size(); i-- > 0;) {
      if (free_[i].capacity == cls) {
        const Buffer b = free_[i];
        free_[i] = free_.back();
        free_.pop_back();
        ++stats_.reuses;
        return b;
      }
    }
    // for_overwrite: the Array constructor fills the buffer immediately —
    // a value-initializing new[] would memset the whole class first.
    owned_.push_back(std::make_unique_for_overwrite<std::byte[]>(cls));
    ++stats_.fresh_allocs;
    stats_.bytes_reserved += cls;
    return Buffer{owned_.back().get(), cls};
  }

  void release(Buffer b) {
    if (b.data == nullptr) return;
    COPATH_DCHECK(stats_.outstanding > 0);
    --stats_.outstanding;
    free_.push_back(b);
  }

  /// Drops every free buffer (memory pressure valve). Outstanding buffers
  /// are unaffected but their classes will re-allocate on next acquire.
  void trim() {
    COPATH_CHECK_MSG(stats_.outstanding == 0,
                     "Arena::trim with live arrays outstanding");
    free_.clear();
    owned_.clear();
    stats_.bytes_reserved = 0;
  }

  /// trim(), but only when the retained capacity exceeds `keep_bytes` —
  /// the steady-state valve for long-lived thread arenas: one outsized
  /// solve must not pin its working set on the thread forever
  /// (Backend::Adaptive calls this after every native-routed solve).
  void trim_over(std::uint64_t keep_bytes) {
    if (stats_.bytes_reserved > keep_bytes) trim();
  }

  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// The calling thread's private arena: one per solving thread, reused
  /// across every solve that thread performs (Backend::Adaptive's native
  /// route, Service workers, solve_batch pool workers).
  static Arena& for_this_thread() {
    thread_local Arena arena;
    return arena;
  }

 private:
  /// Power-of-two classes with a 256-byte floor: the pipeline's many
  /// near-equal lengths share classes, and tiny arrays (block sums,
  /// tournament levels) all land in one bucket.
  static std::size_t size_class(std::size_t bytes) {
    return util::next_pow2(bytes < 256 ? 256 : bytes);
  }

  std::vector<std::unique_ptr<std::byte[]>> owned_;
  std::vector<Buffer> free_;
  Stats stats_{};
};

}  // namespace copath::exec
