// exec::CheckedPram — the PRAM simulator as an executor.
//
// A thin adapter that owns a pram::Machine and forwards the executor
// surface to it verbatim, so programs running through CheckedPram get
// exactly the simulator's semantics: deferred writes committed at the
// end-of-step barrier, access-discipline enforcement (PramViolation on an
// EREW/CREW/CRCW breach), and step/work statistics identical bit-for-bit
// to driving the machine directly.
//
// pram::Machine itself is also given a Traits specialization here, so
// legacy call sites (tests, benches) that pass a machine straight into the
// generic par/ primitives keep compiling without an adapter object.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "exec/exec.hpp"
#include "pram/array.hpp"
#include "pram/machine.hpp"

namespace copath::exec {

/// The simulator is the executor: Machine already exposes step /
/// blocked_step / pfor / pfor_steps / processors / stats, and pram::Array
/// is constructed from a Machine&.
template <>
struct Traits<pram::Machine> {
  using Ctx = pram::Ctx;
  template <typename T>
  using Array = pram::Array<T>;

  template <typename T, typename... Args>
  static Array<T> make(pram::Machine& m, Args&&... args) {
    return Array<T>(m, std::forward<Args>(args)...);
  }
};

class CheckedPram {
 public:
  using Config = pram::Machine::Config;

  CheckedPram() = default;
  explicit CheckedPram(Config cfg) : machine_(cfg) {}

  /// The underlying simulator (host inspection, policy queries, ...).
  [[nodiscard]] pram::Machine& machine() { return machine_; }
  [[nodiscard]] const pram::Machine& machine() const { return machine_; }

  // --- Executor surface (forwarded verbatim) ---------------------------

  template <typename Body>
  void step(std::size_t procs, Body&& body) {
    machine_.step(procs, std::forward<Body>(body));
  }
  template <typename Body>
  void blocked_step(std::size_t procs, Body&& body) {
    machine_.blocked_step(procs, std::forward<Body>(body));
  }
  template <typename Body>
  void pfor(std::size_t items, Body&& body) {
    machine_.pfor(items, std::forward<Body>(body));
  }
  [[nodiscard]] std::size_t pfor_steps(std::size_t items) const {
    return machine_.pfor_steps(items);
  }
  [[nodiscard]] std::size_t processors() const {
    return machine_.processors();
  }
  void set_processors(std::size_t p) { machine_.set_processors(p); }
  [[nodiscard]] const pram::Stats& stats() const { return machine_.stats(); }
  void reset_stats() { machine_.reset_stats(); }

 private:
  pram::Machine machine_;
};

template <>
struct Traits<CheckedPram> {
  using Ctx = pram::Ctx;
  template <typename T>
  using Array = pram::Array<T>;

  template <typename T, typename... Args>
  static Array<T> make(CheckedPram& ex, Args&&... args) {
    return Array<T>(ex.machine(), std::forward<Args>(args)...);
  }
};

static_assert(Executor<pram::Machine>);
static_assert(Executor<CheckedPram>);

}  // namespace copath::exec
