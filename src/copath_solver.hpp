// copath::Solver — the one-stop request/response facade over every path
// cover engine in the library.
//
// A SolveRequest carries an Instance (a parsed cotree, cotree-algebra text,
// or an edge-list graph routed through the cograph recognizer) plus
// optional per-request SolveOptions overriding the solver's defaults. A
// SolveResult bundles everything the engines can report: the cover, the
// exact minimum (from the independently-tested counting recursion), the
// Hamiltonian path/cycle verdicts, the pipeline stage trace, the simulated
// PRAM cost, an optional independent validation report, and wall time.
//
//   copath::Solver solver;
//   auto res = solver.solve({copath::Instance::text("(* (+ a b) c)")});
//   // res.cover, res.optimal_size, res.hamiltonian_path, ...
//
// Backends dispatch through core::BackendRegistry (core/backend.hpp), so
// new engines plug in without touching callers. Solver::solve_batch fans a
// span of requests over one lazily-created util::ThreadPool that is reused
// across calls — the high-throughput entry point; per-instance machines run
// inline on the pool's workers so thread setup is paid once per Solver, not
// once per instance.
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "cograph/canonical.hpp"
#include "cograph/cotree.hpp"
#include "cograph/graph.hpp"
#include "cograph/recognition.hpp"
#include "core/backend.hpp"
#include "core/path_cover.hpp"
#include "core/pipeline.hpp"
#include "pram/stats.hpp"
#include "util/cancel.hpp"
#include "util/thread_pool.hpp"

namespace copath {

using core::Backend;

/// A problem instance in whichever form the caller has it. Resolution to a
/// cotree (parsing text / recognizing a graph) is lazy and cached — batch
/// pipelines pay it exactly once per instance, copies share the cache, and
/// the first resolution is std::call_once-guarded so sharing one Instance
/// across threads is safe.
class Instance {
 public:
  Instance() = default;

  /// An already-built cotree (owned).
  static Instance cotree(cograph::Cotree t);
  /// Cotree-algebra text, e.g. "(* (+ a b) (+ c d e))".
  static Instance text(std::string algebra);
  /// An explicit graph; resolution routes through recognize_cograph and
  /// fails (with the P4 witness in the error) unless it is a cograph.
  static Instance graph(cograph::Graph g);
  /// Raw binary canonical-signature bytes (CanonicalForm::signature) — the
  /// daemon's hot wire format. canonical() computes the form straight from
  /// the bytes (cograph::decode_signature_form: identity leaf
  /// permutations, hash folded during one validating walk) WITHOUT
  /// materializing the cotree, so a warm cache hit never builds a tree;
  /// resolve() runs the bounds-checked cograph::decode_signature
  /// (structured failure on malformed/untrusted bytes, never a crash) on
  /// the miss path that actually solves.
  static Instance signature(std::string signature_bytes);
  /// A non-owning view of a caller-held cotree (caller guarantees the
  /// cotree outlives the Instance; no copy is made).
  static Instance view(const cograph::Cotree& t);

  [[nodiscard]] bool empty() const {
    return std::holds_alternative<std::monostate>(source_);
  }

  /// The cotree form, materializing it on first use. Throws
  /// util::CheckError on parse failure or when a graph is not a cograph.
  [[nodiscard]] const cograph::Cotree& resolve() const;

  /// The canonical form (binary structural signature, structural hash,
  /// leaf permutations — see cograph/canonical.hpp), materialized on
  /// first use and shared by copies, so memoizing layers pay
  /// canonicalization once per logical instance. The human-facing algebra
  /// `key` is NOT built on this path (the field stays empty — call
  /// cograph::canonical_form(resolve()) when you want it); identity
  /// checks belong on `signature`/`hash`. Resolves the instance first;
  /// throws like resolve() on bad input.
  [[nodiscard]] const cograph::CanonicalForm& canonical() const;

  /// The undecoded source bytes, for byte-identity pre-dedup: (is_signature,
  /// bytes) for text- and signature-sourced instances, nullopt otherwise
  /// (tree/graph sources have no cheap byte identity). Identical bytes of
  /// the same kind denote the same logical instance, so a batch layer may
  /// share one resolution across them. The view borrows from this
  /// Instance; it dies with it.
  [[nodiscard]] std::optional<std::pair<bool, std::string_view>> raw_bytes()
      const {
    if (const auto* algebra = std::get_if<std::string>(&source_)) {
      return std::make_pair(false, std::string_view(*algebra));
    }
    if (const auto* sig = std::get_if<SignatureBytes>(&source_)) {
      return std::make_pair(true, std::string_view(sig->bytes));
    }
    return std::nullopt;
  }

 private:
  /// Distinguishes signature bytes from algebra text in the source variant.
  struct SignatureBytes {
    std::string bytes;
  };
  struct ResolveCache {
    std::once_flag once;
    std::optional<cograph::Cotree> tree;
  };
  struct CanonCache {
    std::once_flag once;
    std::optional<cograph::CanonicalForm> form;
  };

  std::variant<std::monostate, cograph::Cotree, std::string, cograph::Graph,
               const cograph::Cotree*, SignatureBytes>
      source_;
  /// Created by the text/graph factories; shared by copies so resolution
  /// happens once per logical instance.
  std::shared_ptr<ResolveCache> cache_;
  /// Created by every factory; shared by copies (canonicalization once per
  /// logical instance).
  std::shared_ptr<CanonCache> canon_;
};

/// Per-solve knobs. Everything beyond `backend` is advisory for backends
/// that do not use a PRAM machine.
struct SolveOptions {
  Backend backend = Backend::Sequential;
  /// Physical worker threads for PRAM machines (1 = inline execution). For
  /// Backend::Native, 0 selects hardware concurrency; inside solve_batch
  /// the value is clamped to the per-request budget (see solve_batch).
  std::size_t workers = 1;
  /// Virtual processor budget; 0 = the paper's n / log2(n).
  std::size_t processors = 0;
  /// Access discipline enforced by PRAM machines.
  pram::Policy policy = pram::Policy::EREW;
  /// Pipeline knobs (rank engine, repair cap) for PRAM backends.
  core::PipelineOptions pipeline{};
  /// Collect the per-stage PipelineTrace where supported.
  bool collect_trace = false;
  /// Routing model for Backend::Adaptive (nullptr = the calibrated
  /// process default). Must outlive every solve using these options.
  const core::CostModel* cost_model = nullptr;
  /// Run the independent validator on the produced cover (minimality is
  /// required only for exact backends).
  bool validate = false;
  /// Construct the Hamiltonian cycle order when one exists.
  bool want_hamiltonian_cycle = false;
  /// Compute optimal_size / minimum / Hamiltonicity verdicts (two extra
  /// O(n) host sweeps). Hot paths that only need the cover turn this off;
  /// SolveResult::optimal_size is then -1 and the verdict flags stay false
  /// (want_hamiltonian_cycle still works — the cycle attempt itself is the
  /// verdict).
  bool compute_verdicts = true;
  /// Worker threads for solve_batch; 0 = hardware concurrency. Read from
  /// the Solver's *defaults* when its pool is first created (per-request
  /// overrides are ignored — the pool is shared across the whole batch and
  /// reused for the Solver's lifetime).
  std::size_t batch_workers = 0;
  /// Cooperative cancellation token, polled at pipeline stage boundaries
  /// and inside Native's pfor chunks (see util/cancel.hpp). Borrowed: must
  /// outlive the solve. When it trips, the solve unwinds into a failed
  /// SolveResult whose error is util::kCancelledMsg or util::kDeadlineMsg.
  /// Excluded from cache keys (it never changes the computed answer).
  util::CancelToken* cancel = nullptr;
};

struct SolveRequest {
  Instance instance;
  /// Overrides the Solver's default options when set.
  std::optional<SolveOptions> options;
  /// Free-form tag copied into the result (batch bookkeeping).
  std::string label;
  /// Relative completion budget in milliseconds (0 = none). Honored by
  /// copath::Service, which stamps it to an absolute steady-clock deadline
  /// at admission and SHEDS the request — a structured "deadline exceeded"
  /// failure, the work never runs — if it is still queued when the budget
  /// ends. The synchronous Solver ignores it (a direct solve has no queue
  /// to expire in).
  std::uint32_t deadline_ms = 0;
  /// Owning handle for this request's cancel token (copath::Service arms
  /// the deadline on it and registers it with the worker watchdog; the
  /// net::Server trips it on client disconnect or a wire Cancel). Created
  /// by the Service at admission when absent and needed. The per-solve
  /// borrow in SolveOptions::cancel is derived from this, never set by
  /// callers directly.
  std::shared_ptr<util::CancelToken> cancel = nullptr;
};

/// Structured response. `ok` is false when the instance could not be
/// resolved or the backend rejected it; `error` then carries the reason and
/// every other field is default-initialized.
struct SolveResult {
  bool ok = false;
  std::string error;
  std::string label;
  Backend backend = Backend::Sequential;
  /// The engine that actually ran: equal to `backend` except under
  /// Backend::Adaptive, where it records the cost model's route
  /// (Sequential or Native).
  Backend routed = Backend::Sequential;

  std::size_t vertex_count = 0;
  core::PathCover cover;
  /// The exact minimum path cover size (Lemma 2.4 counting recursion) —
  /// independent of the backend, so heuristic covers can be scored.
  /// -1 when options.compute_verdicts is off.
  std::int64_t optimal_size = 0;
  /// cover.size() == optimal_size (always true for exact backends).
  bool minimum = false;
  bool hamiltonian_path = false;
  bool hamiltonian_cycle = false;
  /// Set when options.want_hamiltonian_cycle and a cycle exists.
  std::optional<std::vector<cograph::VertexId>> cycle;

  /// Simulated PRAM cost (PRAM backends only; see stats_valid).
  pram::Stats stats{};
  bool stats_valid = false;
  /// Pipeline stage trace (when options.collect_trace and supported).
  core::PipelineTrace trace{};
  bool trace_valid = false;
  /// Independent validation (when options.validate).
  core::ValidationReport validation{};

  /// Wall time of the backend run alone (excludes instance resolution,
  /// verdicts, and validation).
  double wall_ms = 0.0;
};

/// Count-only response (Lemma 2.4 workloads: path cover size and the
/// Hamiltonicity verdicts without reporting a cover).
struct CountResult {
  bool ok = false;
  std::string error;
  std::size_t vertex_count = 0;
  std::int64_t path_cover_size = 0;
  bool hamiltonian_path = false;
  bool hamiltonian_cycle = false;
  pram::Stats stats{};
  bool stats_valid = false;
  double wall_ms = 0.0;
};

class Solver {
 public:
  Solver() = default;
  explicit Solver(SolveOptions defaults) : defaults_(std::move(defaults)) {}

  [[nodiscard]] const SolveOptions& defaults() const { return defaults_; }

  /// Solves one request. Does not throw: resolution/backend failures come
  /// back as ok == false results with the reason in `error`.
  [[nodiscard]] SolveResult solve(const SolveRequest& req) const;
  /// Convenience: one instance, the solver's default options. The instance
  /// is not copied, so its resolution cache benefits repeat calls.
  [[nodiscard]] SolveResult solve(const Instance& inst) const {
    return solve_with(inst, {}, defaults_);
  }
  /// Borrowing form of solve(): explicit label and options, the instance
  /// neither copied nor moved (the Service keeps the instance — and the
  /// canonical form its cache key views — alive across the solve and the
  /// cache store).
  [[nodiscard]] SolveResult solve(const Instance& inst,
                                  const std::string& label,
                                  const SolveOptions& opts) const {
    return solve_with(inst, label, opts);
  }

  /// Solves every request, fanning instances across one shared
  /// util::ThreadPool (created lazily, reused across calls). Results are
  /// positionally aligned with `reqs` and identical to per-request solve()
  /// up to wall-clock fields. Per-instance PRAM machines are forced to
  /// inline execution (workers = 1) — parallelism comes from the batch.
  /// Native-capable requests (Backend::Native and Backend::Adaptive's
  /// native route) instead receive a per-request thread budget from a
  /// util::ThreadBudgeter sized to the pool: remainders are distributed to
  /// the earliest starters and budgets rebalance as requests complete, so
  /// a straggler tail inherits the freed cores instead of stranding them.
  /// The budget is also Backend::Adaptive's batch-pressure signal: a
  /// saturated batch (budget 1) routes every instance to the sequential
  /// sweep. Results are identical for any worker count.
  [[nodiscard]] std::vector<SolveResult> solve_batch(
      std::span<const SolveRequest> reqs);

  /// Count-only entry (Lemma 2.4): the minimum path cover size and the
  /// Hamiltonicity verdicts. Always runs the built-in counting engines —
  /// the backend (which must be registered) only selects the PRAM tree
  /// contraction (machine cost reported) vs the host post-order sweep;
  /// plug-in cover engines are not consulted here.
  [[nodiscard]] CountResult count(const SolveRequest& req) const;

 private:
  SolveResult solve_with(const Instance& inst, const std::string& label,
                         const SolveOptions& opts) const;

  SolveOptions defaults_;
  std::unique_ptr<util::ThreadPool> pool_;  // lazily built by solve_batch
};

}  // namespace copath
