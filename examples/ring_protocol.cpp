// Scenario: token-ring ordering — the "ring protocols" application from
// the paper's introduction.
//
// Stations are grouped into segments; stations in different segments can
// be wired adjacently on the ring (join), stations within a segment cannot
// (union) — a complete multipartite compatibility graph, i.e. a cograph.
// A Hamiltonian cycle is a valid token-ring visiting order; the Solver
// facade decides existence and constructs one in the same request. The
// feasibility sweep at the end runs as one batch.
#include <iostream>

#include "copath.hpp"

int main() {
  using namespace copath;

  const std::vector<std::size_t> segments{4, 3, 3, 2};
  const Cotree net = cograph::complete_multipartite(segments);
  std::cout << "network: complete multipartite with segments {4,3,3,2}, n="
            << net.vertex_count() << "\n";

  SolveOptions opts;
  opts.want_hamiltonian_cycle = true;
  Solver solver(opts);
  const SolveResult res = solver.solve(Instance::view(net));
  if (!res.ok) {
    std::cerr << "solve failed: " << res.error << "\n";
    return 1;
  }
  if (!res.hamiltonian_cycle) {
    std::cout << "no valid ring ordering exists\n";
    return 0;
  }
  const auto& ring = *res.cycle;
  std::cout << "token ring order: ";
  for (std::size_t i = 0; i < ring.size(); ++i) {
    if (i) std::cout << " -> ";
    std::cout << 's' << ring[i];
  }
  std::cout << " -> s" << ring[0] << "\n";

  // Check every hop against the compatibility oracle.
  const cograph::CotreeAdjacency adj(net);
  for (std::size_t i = 0; i < ring.size(); ++i) {
    const VertexId a = ring[i];
    const VertexId b = ring[(i + 1) % ring.size()];
    if (!adj.adjacent(a, b)) {
      std::cerr << "hop " << a << "->" << b << " is illegal!\n";
      return 1;
    }
  }
  std::cout << "all hops verified against segment constraints\n\n";

  // Degrade the network: one segment grows until the ring must break
  // (the paper's condition p(V) <= L(W) at the root split fails). The
  // whole sweep is one solve_batch call over the shared thread pool.
  std::cout << "segment-0 size sweep (ring feasibility):\n";
  std::vector<Cotree> sweep;
  for (std::size_t big = 4; big <= 12; ++big) {
    sweep.push_back(cograph::complete_multipartite({big, 3, 3, 2}));
  }
  std::vector<SolveRequest> reqs;
  for (const auto& t : sweep) {
    reqs.push_back(SolveRequest{Instance::view(t), std::nullopt, {}});
  }
  const auto results = solver.solve_batch(reqs);
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok) {
      std::cerr << "sweep solve failed: " << results[i].error << "\n";
      return 1;
    }
    std::cout << "  {" << 4 + i << ",3,3,2}: "
              << (results[i].hamiltonian_cycle ? "ring OK" : "no ring")
              << "  (min path cover = " << results[i].optimal_size << ")\n";
  }
  return 0;
}
