// Scenario: token-ring ordering — the "ring protocols" application from
// the paper's introduction.
//
// Stations are grouped into segments; stations in different segments can
// be wired adjacently on the ring (join), stations within a segment cannot
// (union) — a complete multipartite compatibility graph, i.e. a cograph.
// A Hamiltonian cycle is a valid token-ring visiting order; the paper's
// machinery decides existence and constructs one.
#include <iostream>

#include "copath.hpp"

int main() {
  using namespace copath;

  const std::vector<std::size_t> segments{4, 3, 3, 2};
  const Cotree net = cograph::complete_multipartite(segments);
  std::cout << "network: complete multipartite with segments {4,3,3,2}, n="
            << net.vertex_count() << "\n";

  if (!has_hamiltonian_cycle(net)) {
    std::cout << "no valid ring ordering exists\n";
    return 0;
  }
  const auto ring = hamiltonian_cycle(net);
  std::cout << "token ring order: ";
  for (std::size_t i = 0; i < ring->size(); ++i) {
    if (i) std::cout << " -> ";
    std::cout << 's' << (*ring)[i];
  }
  std::cout << " -> s" << (*ring)[0] << "\n";

  // Check every hop against the compatibility oracle.
  const cograph::CotreeAdjacency adj(net);
  for (std::size_t i = 0; i < ring->size(); ++i) {
    const VertexId a = (*ring)[i];
    const VertexId b = (*ring)[(i + 1) % ring->size()];
    if (!adj.adjacent(a, b)) {
      std::cerr << "hop " << a << "->" << b << " is illegal!\n";
      return 1;
    }
  }
  std::cout << "all hops verified against segment constraints\n\n";

  // Degrade the network: one segment grows until the ring must break
  // (the paper's condition p(V) <= L(W) at the root split fails).
  std::cout << "segment-0 size sweep (ring feasibility):\n";
  for (std::size_t big = 4; big <= 12; ++big) {
    const Cotree t = cograph::complete_multipartite({big, 3, 3, 2});
    std::cout << "  {" << big << ",3,3,2}: "
              << (has_hamiltonian_cycle(t) ? "ring OK" : "no ring")
              << "  (min path cover = " << path_cover_size(t) << ")\n";
  }
  return 0;
}
