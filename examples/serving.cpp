// Serving: the copath::Service front-end — async submission, the
// canonical memo cache, and duplicate coalescing.
//
// Simulates a small traffic mix: a handful of distinct cographs arriving
// as permuted/relabeled presentations (the way real batch inputs repeat),
// submitted concurrently from several client threads. Distinct instances
// compute once; every equivalent presentation after that is served from
// the cache through its own leaf permutation.
//
//   $ ./example_serving
#include <future>
#include <iostream>
#include <thread>
#include <vector>

#include "copath.hpp"

int main() {
  using namespace copath;

  // 1. The "traffic": four canonical classes, each also presented as
  //    commuted algebra text (children reordered — the same cograph).
  const std::vector<std::vector<std::string>> presentations = {
      {"(* (+ a b) (+ c d e))", "(* (+ e d c) (+ b a))"},
      {"(+ (* a b c) (* d e))", "(+ (* e d) (* c b a))"},
      {"(* a (+ b (* c (+ d e))))", "(* (+ (* (+ e d) c) b) a)"},
      {"(+ a b c d)", "(+ d c b a)"},
  };

  // 2. A service: async submit() -> std::future, bounded queue
  //    (backpressure), canonical-keyed result cache, in-flight coalescing.
  Service::Options opts;
  opts.workers = 4;
  opts.queue_capacity = 64;
  Service svc(opts);

  // 3. Four client threads each submit every presentation twice.
  std::vector<std::thread> clients;
  std::vector<std::vector<std::future<SolveResult>>> futures(4);
  for (std::size_t c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      for (int round = 0; round < 2; ++round) {
        for (const auto& cls : presentations) {
          for (const auto& text : cls) {
            futures[c].push_back(
                svc.submit({Instance::text(text), {}, "client-" +
                                                          std::to_string(c)}));
          }
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  std::size_t answered = 0;
  for (auto& per_client : futures) {
    for (auto& f : per_client) {
      const SolveResult res = f.get();
      if (!res.ok) {
        std::cerr << "solve failed: " << res.error << "\n";
        return 1;
      }
      ++answered;
    }
  }

  // 4. The cache story: 64 requests, 4 distinct canonical classes — at
  //    most a handful ever reach an engine.
  const auto stats = svc.stats();
  std::cout << "requests answered : " << answered << "\n"
            << "cache hits        : " << stats.cache_hits << "\n"
            << "cache misses      : " << stats.cache_misses << "\n"
            << "coalesced in-flight: " << stats.coalesced << "\n"
            << "engine computations: "
            << stats.cache_misses - stats.coalesced << "\n";

  // 5. Equivalent presentations share one cache entry because they share
  //    a canonical form (commutativity + relabeling quotient):
  const Instance a = Instance::text(presentations[0][0]);
  const Instance b = Instance::text(presentations[0][1]);
  std::cout << "canonical key of both presentations: "
            << canonical_form(a.resolve()).key << "\n (hashes "
            << (a.canonical().hash == b.canonical().hash ? "match" : "differ")
            << ", signatures "
            << (a.canonical().signature == b.canonical().signature
                    ? "match"
                    : "differ")
            << ")\n";

  // Every request answered, and the 16 presentations per class cannot all
  // have computed: a same-class request either hits the cache or coalesces.
  if (answered != 64 || stats.cache_hits + stats.coalesced == 0) {
    std::cerr << "unexpected serving stats\n";
    return 1;
  }
  return 0;
}
