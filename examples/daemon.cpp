// Serving over the network: an in-process copathd round trip.
//
// Starts a net::Server on an ephemeral loopback port (exactly what the
// copathd binary wraps), connects a net::Client, and exercises the three
// request shapes — algebra text, raw canonical-signature bytes (the hot
// path: reuses the canonicalizer's wire format, skips parsing AND
// canonical sorting server-side), and the admin verbs — then drains
// gracefully. Runs under ctest as an end-to-end smoke of the serving tier.
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "cograph/canonical.hpp"
#include "copath.hpp"
#include "net/client.hpp"
#include "net/server.hpp"

int main() {
  namespace proto = copath::net::protocol;

  copath::net::Server::Options opts;
  opts.port = 0;  // ephemeral: read the real one from server.port()
  copath::net::Server server(std::move(opts));
  std::thread loop([&server] { server.run(); });

  {
    copath::net::Client client("127.0.0.1", server.port());

    // 1. Text request: the server parses, canonicalizes, solves, caches.
    const char* algebra = "(* (+ a b) (+ c d e) f)";
    const proto::Response text = client.solve_text(algebra);
    std::cout << "text   : status=" << proto::to_string(text.status)
              << " paths=" << text.result.paths.size()
              << " optimal=" << text.result.optimal_size
              << " hamiltonian=" << text.result.hamiltonian_path << "\n";
    if (text.status != proto::Status::Ok || !text.result.ok) return 1;

    // 2. Signature request: ship the canonical form's binary signature —
    // the same bytes the server's result cache keys on, so this hits the
    // entry the text request just populated without any parsing.
    const copath::cograph::Cotree tree =
        copath::cograph::Cotree::parse(algebra);
    const auto form =
        copath::cograph::canonical_form(tree, /*with_algebra_key=*/false);
    const proto::Response sig = client.solve_signature(form.signature);
    std::cout << "sig    : status=" << proto::to_string(sig.status)
              << " paths=" << sig.result.paths.size()
              << " optimal=" << sig.result.optimal_size << "\n";
    if (sig.status != proto::Status::Ok || !sig.result.ok) return 1;
    if (sig.result.paths.size() != text.result.paths.size()) return 1;

    // 3. Batch request: one BatchSolve frame, one response frame with a
    // per-slot status table. Duplicates and the signature twin of slot 0
    // dedup inside the batch; the malformed text refuses only its slot.
    const std::vector<proto::BatchItem> items = {
        {/*is_signature=*/false, algebra},
        {/*is_signature=*/true, form.signature},  // canonical twin of slot 0
        {/*is_signature=*/false, "(+ x y)"},
        {/*is_signature=*/false, "(* broken"},  // fails alone
    };
    const proto::Response batch = client.solve_batch(items);
    if (batch.status != proto::Status::Ok ||
        batch.batch.size() != items.size()) {
      return 1;
    }
    for (std::size_t i = 0; i < batch.batch.size(); ++i) {
      const auto& slot = batch.batch[i];
      std::cout << "batch  : slot=" << i
                << " status=" << proto::to_string(slot.status)
                << (slot.status == proto::Status::Ok
                        ? " paths=" + std::to_string(slot.result.paths.size())
                        : " error=" + slot.error)
                << "\n";
    }
    if (batch.batch[0].status != proto::Status::Ok ||
        batch.batch[1].status != proto::Status::Ok ||
        batch.batch[2].status != proto::Status::Ok ||
        batch.batch[3].status != proto::Status::SolveError) {
      return 1;
    }

    // 4. Admin: health, then stats (expect the cache hit from step 2).
    if (client.health().status != proto::Status::Ok) return 1;
    const proto::Response stats = client.stats();
    for (const auto& [key, value] : stats.stats) {
      if (key == "cache_hits" || key == "completed") {
        std::cout << "stats  : " << key << "=" << value << "\n";
      }
    }

    // 5. Graceful drain: the ack arrives, then the server refuses new
    // work and closes once nothing is in flight.
    if (client.drain().status != proto::Status::Ok) return 1;
    std::cout << "drain  : acknowledged\n";
  }

  loop.join();  // run() returns once the drain completes
  std::cout << "daemon : drained cleanly\n";
  return 0;
}
