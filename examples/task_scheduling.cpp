// Scenario: mapping parallel programs onto linear processor arrays — one
// of the applications the paper's introduction cites for path covers.
//
// A program is built from modules by series composition (tasks in
// different modules can run back-to-back on one processor chain: a join)
// and parallel composition (tasks are independent and must not share a
// chain link: a union). Such task-compatibility graphs are exactly
// cographs. A minimum path cover = the minimum number of linear pipelines
// needed to host every task with adjacent tasks compatible.
#include <iostream>

#include "copath.hpp"

int main() {
  using namespace copath;

  // A synthetic build pipeline: three compilation groups that can feed one
  // another (join), each group holding independent translation units
  // (union), plus a final link stage compatible with everything.
  CotreeBuilder b;
  std::vector<cograph::NodeId> groups;
  const char* unit_names[3][4] = {{"lex0", "lex1", "lex2", "lex3"},
                                  {"parse0", "parse1", "parse2", "parse3"},
                                  {"opt0", "opt1", "opt2", "opt3"}};
  for (const auto& group : unit_names) {
    std::vector<cograph::NodeId> units;
    units.reserve(4);
    for (const char* name : group) units.push_back(b.leaf(name));
    groups.push_back(b.unite(units));
  }
  groups.push_back(b.leaf("link"));
  const Cotree program = std::move(b).build(b.join(groups));

  std::cout << "task compatibility cotree:\n"
            << program.to_ascii() << "\n";

  // One Solver request answers everything: the schedule, the chain count,
  // the simulated EREW cost, and an independent validation report.
  SolveOptions opts;
  opts.backend = Backend::Pram;  // Theorem 5.3 on the simulated EREW PRAM
  opts.validate = true;
  const Solver solver(opts);
  const SolveResult res = solver.solve(Instance::view(program));
  if (!res.ok) {
    std::cerr << "solve failed: " << res.error << "\n";
    return 1;
  }

  std::cout << "minimum processor chains required: " << res.optimal_size
            << "\n\n";
  std::cout << "schedule (each line = one processor chain):\n";
  for (std::size_t i = 0; i < res.cover.paths.size(); ++i) {
    std::cout << "  chain " << i << ": ";
    for (std::size_t j = 0; j < res.cover.paths[i].size(); ++j) {
      if (j) std::cout << " -> ";
      std::cout << program.name_of(res.cover.paths[i][j]);
    }
    std::cout << "\n";
  }
  std::cout << "\ncomputed on the EREW PRAM in " << res.stats.steps
            << " steps / " << res.stats.work << " work ("
            << "n = " << res.vertex_count << ")\n";

  if (!res.validation.ok) {
    std::cerr << "invalid schedule: " << res.validation.error << "\n";
    return 1;
  }
  std::cout << "schedule validated.\n";
  return 0;
}
