// Regenerates the paper's expository figures as text: the Fig 2 lower
// bound instance, Fig 3 binarization, and the §4 running example (Fig 10)
// with its bracket sequence and resulting path.
#include <iostream>

#include "cograph/binarize.hpp"
#include "copath.hpp"

int main() {
  using namespace copath;

  std::cout << "--- Fig 2: the OR lower-bound instance (bits 00000101) ---\n";
  const std::vector<std::uint8_t> bits{0, 0, 0, 0, 0, 1, 0, 1};
  const Cotree fig2 = cograph::or_instance(bits);
  std::cout << fig2.to_ascii();
  pram::Machine m({pram::Policy::EREW, 1, 8});
  const auto orres = core::or_via_path_cover(m, bits);
  std::cout << "minimum path cover: " << orres.path_cover_size << " (n+2="
            << bits.size() + 2 << ") => OR = " << orres.or_value << "\n"
            << "construction steps: " << orres.construction_steps
            << ", count steps: " << orres.count_steps << "\n\n";

  std::cout << "--- Fig 3: binarizing a 5-ary union node ---\n";
  const Cotree fig3 = Cotree::parse("(+ v1 v2 v3 v4 v5)");
  std::cout << "before: " << fig3.format() << "\n";
  const auto bc3 = cograph::binarize(fig3);
  std::cout << "after: " << bc3.size()
            << " nodes (left-deep comb of u1..u4 over the 5 leaves)\n\n";

  std::cout << "--- Fig 10: the bracket construction on "
               "(* (+ (* a b) c) (+ d e f)) ---\n";
  const Cotree fig10 = cograph::paper_fig10();
  std::cout << fig10.to_ascii();
  auto bc = cograph::binarize(fig10);
  const auto L = cograph::make_leftist(bc);
  const auto p = core::path_counts_host(bc, L);
  const auto bs = core::generate_brackets_host(bc, L, p);
  std::cout << "B(R) = " << bs.to_string() << "\n";
  std::cout << "(vertex ids: a..f = 0..5; ids 6,7 are the two dummy "
               "vertices of the Case-2 join)\n";

  core::ReferenceTrace trace;
  const PathCover cover = core::min_path_cover_reference(fig10, &trace);
  std::cout << "resulting Hamiltonian path: ";
  for (std::size_t i = 0; i < cover.paths[0].size(); ++i) {
    if (i) std::cout << " - ";
    std::cout << fig10.name_of(cover.paths[0][i]);
  }
  std::cout << "\nrepair rounds used: " << trace.repair_rounds
            << " (paper's Step 6 exchange)\n";
  const auto rep = validate_path_cover(fig10, cover, true);
  std::cout << "validated: " << (rep.ok ? "yes" : rep.error.c_str())
            << "\n";
  return 0;
}
