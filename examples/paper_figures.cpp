// Regenerates the paper's expository figures as text: the Fig 2 lower
// bound instance, Fig 3 binarization, and the §4 running example (Fig 10)
// with its bracket sequence and resulting path.
#include <iostream>

#include "cograph/binarize.hpp"
#include "copath.hpp"

int main() {
  using namespace copath;

  std::cout << "--- Fig 2: the OR lower-bound instance (bits 00000101) ---\n";
  const std::vector<std::uint8_t> bits{0, 0, 0, 0, 0, 1, 0, 1};
  const Cotree fig2 = cograph::or_instance(bits);
  std::cout << fig2.to_ascii();
  core::OrReductionOptions or_opt;
  or_opt.policy = pram::Policy::EREW;
  or_opt.processors = 8;
  const auto orres = core::or_via_path_cover(bits, or_opt);
  std::cout << "minimum path cover: " << orres.path_cover_size << " (n+2="
            << bits.size() + 2 << ") => OR = " << orres.or_value << "\n"
            << "construction steps: " << orres.construction_steps
            << ", count steps: " << orres.count_steps << "\n\n";

  std::cout << "--- Fig 3: binarizing a 5-ary union node ---\n";
  const Cotree fig3 = Cotree::parse("(+ v1 v2 v3 v4 v5)");
  std::cout << "before: " << fig3.format() << "\n";
  const auto bc3 = cograph::binarize(fig3);
  std::cout << "after: " << bc3.size()
            << " nodes (left-deep comb of u1..u4 over the 5 leaves)\n\n";

  std::cout << "--- Fig 10: the bracket construction on "
               "(* (+ (* a b) c) (+ d e f)) ---\n";
  const Cotree fig10 = cograph::paper_fig10();
  std::cout << fig10.to_ascii();
  auto bc = cograph::binarize(fig10);
  const auto L = cograph::make_leftist(bc);
  const auto p = core::path_counts_host(bc, L);
  const auto bs = core::generate_brackets_host(bc, L, p);
  std::cout << "B(R) = " << bs.to_string() << "\n";
  std::cout << "(vertex ids: a..f = 0..5; ids 6,7 are the two dummy "
               "vertices of the Case-2 join)\n";

  // The same bracket pipeline through the Solver facade, on the host
  // reference backend with trace collection and validation.
  SolveOptions opts;
  opts.backend = Backend::Reference;
  opts.collect_trace = true;
  opts.validate = true;
  const Solver solver(opts);
  const SolveResult res = solver.solve(Instance::view(fig10));
  if (!res.ok) {
    std::cerr << "solve failed: " << res.error << "\n";
    return 1;
  }
  std::cout << "resulting Hamiltonian path: ";
  for (std::size_t i = 0; i < res.cover.paths[0].size(); ++i) {
    if (i) std::cout << " - ";
    std::cout << fig10.name_of(res.cover.paths[0][i]);
  }
  std::cout << "\nrepair rounds used: " << res.trace.repair_rounds
            << " (paper's Step 6 exchange)\n";
  std::cout << "validated: "
            << (res.validation.ok ? "yes" : res.validation.error.c_str())
            << "\n";
  return 0;
}
