// Quickstart: build a cograph, compute a minimum path cover sequentially
// and in parallel, and verify both.
//
//   $ ./quickstart "(* (+ a b) (+ c d e))"
#include <iostream>

#include "copath.hpp"

int main(int argc, char** argv) {
  using namespace copath;

  // 1. A cograph, described in the cotree algebra: '+' = disjoint union,
  //    '*' = join (all edges across). Any expression works; the library
  //    normalizes it to the canonical cotree.
  const std::string expr =
      argc > 1 ? argv[1] : "(* (+ (* a b) c) (+ d e f))";
  const Cotree t = Cotree::parse(expr);
  std::cout << "cotree: " << t.format() << "\n" << t.to_ascii() << "\n";

  // 2. The minimum number of vertex-disjoint paths that cover the graph
  //    (Lemma 2.4 machinery).
  std::cout << "minimum path cover size: " << path_cover_size(t) << "\n";
  std::cout << "has Hamiltonian path:  "
            << (has_hamiltonian_path(t) ? "yes" : "no") << "\n";
  std::cout << "has Hamiltonian cycle: "
            << (has_hamiltonian_cycle(t) ? "yes" : "no") << "\n\n";

  const auto print_cover = [&](const char* label, const PathCover& c) {
    std::cout << label << " (" << c.paths.size() << " path(s)):\n";
    for (const auto& path : c.paths) {
      std::cout << "  ";
      for (std::size_t i = 0; i < path.size(); ++i) {
        if (i) std::cout << " - ";
        const std::string& nm = t.name_of(path[i]);
        std::cout << (nm.empty() ? "v" + std::to_string(path[i]) : nm);
      }
      std::cout << "\n";
    }
  };

  // 3. Sequential O(n) algorithm (Lemma 2.3).
  const PathCover seq = min_path_cover_sequential(t);
  print_cover("sequential cover", seq);

  // 4. The paper's parallel algorithm (Theorem 5.3) on a simulated EREW
  //    PRAM with n/log n processors; stats() carries the cost counters.
  pram::Stats stats;
  const PathCover par_cover = min_path_cover_parallel(t, /*workers=*/1,
                                                      &stats);
  print_cover("parallel cover", par_cover);
  std::cout << "PRAM cost: " << stats << "\n";

  // 5. Independent validation (vertex-disjointness, edges via the cotree
  //    LCA oracle, minimality).
  for (const auto* c : {&seq, &par_cover}) {
    const auto rep = validate_path_cover(t, *c, /*require_minimum=*/true);
    if (!rep.ok) {
      std::cerr << "validation failed: " << rep.error << "\n";
      return 1;
    }
  }
  std::cout << "both covers validated: minimum and edge-correct\n";
  return 0;
}
