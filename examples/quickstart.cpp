// Quickstart: build a cograph, solve it through the copath::Solver facade
// on the sequential and PRAM backends, and inspect the structured result.
//
//   $ ./example_quickstart "(* (+ a b) (+ c d e))"
#include <iostream>

#include "copath.hpp"

int main(int argc, char** argv) {
  using namespace copath;

  // 1. A cograph, described in the cotree algebra: '+' = disjoint union,
  //    '*' = join (all edges across). Any expression works; the library
  //    normalizes it to the canonical cotree.
  const std::string expr =
      argc > 1 ? argv[1] : "(* (+ (* a b) c) (+ d e f))";
  Cotree t;
  try {
    t = Cotree::parse(expr);
  } catch (const std::exception& e) {
    std::cerr << "could not parse \"" << expr << "\":\n  " << e.what()
              << "\n";
    return 1;
  }
  std::cout << "cotree: " << t.format() << "\n" << t.to_ascii() << "\n";

  const auto print_cover = [&](const char* label, const PathCover& c) {
    std::cout << label << " (" << c.paths.size() << " path(s)):\n";
    for (const auto& path : c.paths) {
      std::cout << "  ";
      for (std::size_t i = 0; i < path.size(); ++i) {
        if (i) std::cout << " - ";
        const std::string& nm = t.name_of(path[i]);
        std::cout << (nm.empty() ? "v" + std::to_string(path[i]) : nm);
      }
      std::cout << "\n";
    }
  };

  // 2. One request/response call does it all: the cover, the exact minimum
  //    (Lemma 2.4 machinery), the Hamiltonicity verdicts (the §1
  //    corollary), and an independent validation report.
  SolveOptions seq_opts;
  seq_opts.backend = Backend::Sequential;  // Lemma 2.3, O(n)
  seq_opts.validate = true;
  const Solver sequential(seq_opts);
  const SolveResult seq = sequential.solve(Instance::view(t));
  if (!seq.ok) {
    std::cerr << "solve failed: " << seq.error << "\n";
    return 1;
  }
  std::cout << "minimum path cover size: " << seq.optimal_size << "\n";
  std::cout << "has Hamiltonian path:  "
            << (seq.hamiltonian_path ? "yes" : "no") << "\n";
  std::cout << "has Hamiltonian cycle: "
            << (seq.hamiltonian_cycle ? "yes" : "no") << "\n\n";
  print_cover("sequential cover", seq.cover);

  // 3. Same request on the paper's parallel algorithm (Theorem 5.3): a
  //    simulated EREW PRAM with n/log n processors; the result carries the
  //    simulated cost counters.
  SolveOptions par_opts;
  par_opts.backend = Backend::Pram;
  par_opts.validate = true;
  const Solver parallel(par_opts);
  const SolveResult par = parallel.solve(Instance::view(t));
  if (!par.ok) {
    std::cerr << "solve failed: " << par.error << "\n";
    return 1;
  }
  print_cover("parallel cover", par.cover);
  std::cout << "PRAM cost: " << par.stats << "\n";

  // 4. Both covers were validated independently (vertex-disjointness,
  //    edges via the cotree LCA oracle, minimality).
  for (const SolveResult* res : {&seq, &par}) {
    if (!res->validation.ok) {
      std::cerr << "validation failed: " << res->validation.error << "\n";
      return 1;
    }
  }
  std::cout << "both covers validated: minimum and edge-correct\n";
  return 0;
}
