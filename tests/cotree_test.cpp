// Cotree representation: parsing, formatting, builder normalization,
// validation of the paper's structural properties (4)-(5).
#include <gtest/gtest.h>

#include "cograph/cotree.hpp"
#include "cograph/families.hpp"

namespace copath::cograph {
namespace {

TEST(Parse, RoundTripsCanonicalForm) {
  const std::string text = "(* (+ (* a b) c) (+ d e f))";
  const Cotree t = Cotree::parse(text);
  EXPECT_EQ(t.format(), text);
  EXPECT_EQ(t.vertex_count(), 6u);
  EXPECT_EQ(t.size(), 10u);  // 6 leaves + 4 internal nodes
}

TEST(Parse, FormatRoundTripsAcrossFamiliesAndRandomTrees) {
  // format() must be a fixed point of parse(): parse(format(t)) formats
  // back to the identical canonical string, structure included.
  std::vector<Cotree> trees;
  trees.push_back(clique(7));
  trees.push_back(independent_set(5));
  trees.push_back(star(6));
  trees.push_back(complete_multipartite({3, 2, 2}));
  trees.push_back(threshold_graph({1, 0, 1, 1, 0}));
  trees.push_back(caterpillar(15));
  for (unsigned seed = 0; seed < 20; ++seed) {
    RandomCotreeOptions opt;
    opt.seed = 1000 + seed;
    opt.skew = (seed % 4) * 0.25;
    trees.push_back(random_cotree(1 + (seed * 13) % 50, opt));
  }
  for (const auto& t : trees) {
    const std::string text = t.format();
    const Cotree re = Cotree::parse(text);
    EXPECT_EQ(re.format(), text);
    EXPECT_EQ(re.vertex_count(), t.vertex_count());
    EXPECT_EQ(re.size(), t.size());
    re.validate();
  }
}

TEST(KindChar, CoversEveryKindAndRejectsCorruptValues) {
  EXPECT_EQ(kind_char(NodeKind::Leaf), 'v');
  EXPECT_EQ(kind_char(NodeKind::Union), '+');
  EXPECT_EQ(kind_char(NodeKind::Join), '*');
  // A value outside the enum is a corrupted tree: loud failure, not '?'.
  EXPECT_THROW(kind_char(static_cast<NodeKind>(7)), util::CheckError);
}

TEST(Parse, SingleLeaf) {
  const Cotree t = Cotree::parse("x");
  EXPECT_EQ(t.vertex_count(), 1u);
  EXPECT_TRUE(t.is_leaf(t.root()));
  EXPECT_EQ(t.format(), "x");
}

TEST(Parse, NormalizesNestedSameKind) {
  // (+ a (+ b c)) must collapse to (+ a b c) — alternation property (5).
  const Cotree t = Cotree::parse("(+ a (+ b c))");
  EXPECT_EQ(t.format(), "(+ a b c)");
  EXPECT_EQ(t.child_count(t.root()), 3u);
}

TEST(Parse, CollapsesSingleChildWrappers) {
  const Cotree t = Cotree::parse("(* (+ a) b)");
  EXPECT_EQ(t.format(), "(* a b)");
}

TEST(Parse, RejectsGarbage) {
  EXPECT_THROW(Cotree::parse("(* a"), util::CheckError);
  EXPECT_THROW(Cotree::parse("(? a b)"), util::CheckError);
  EXPECT_THROW(Cotree::parse("(* a b) trailing"), util::CheckError);
  EXPECT_THROW(Cotree::parse("()"), util::CheckError);
}

TEST(Parse, WhitespaceInsensitive) {
  const Cotree t = Cotree::parse("  (*\n a\tb )  ");
  EXPECT_EQ(t.format(), "(* a b)");
}

TEST(Builder, AssignsVerticesInLeafOrder) {
  CotreeBuilder b;
  const NodeId x = b.leaf("x");
  const NodeId y = b.leaf("y");
  const NodeId z = b.leaf("z");
  const NodeId root = b.join({b.unite({x, y}), z});
  const Cotree t = std::move(b).build(root);
  EXPECT_EQ(t.vertex_count(), 3u);
  EXPECT_EQ(t.name_of(0), "x");
  EXPECT_EQ(t.name_of(1), "y");
  EXPECT_EQ(t.name_of(2), "z");
}

TEST(Builder, ExplicitVertexIds) {
  CotreeBuilder b;
  const NodeId x = b.leaf_with_vertex(2);
  const NodeId y = b.leaf_with_vertex(0);
  const NodeId z = b.leaf_with_vertex(1);
  const Cotree t = std::move(b).build(b.join({x, y, z}));
  EXPECT_EQ(t.vertex_of(t.leaf_of(2)), 2);
  EXPECT_EQ(t.vertex_of(t.leaf_of(0)), 0);
}

TEST(Builder, RejectsNonBijectiveExplicitIds) {
  CotreeBuilder b;
  const NodeId x = b.leaf_with_vertex(0);
  const NodeId y = b.leaf_with_vertex(0);
  EXPECT_THROW((void)std::move(b).build(b.join({x, y})),
               util::CheckError);
}

TEST(Validate, RejectsBrokenAlternation) {
  // from_parts checks property (5) directly.
  std::vector<NodeKind> kind{NodeKind::Union, NodeKind::Union,
                             NodeKind::Leaf, NodeKind::Leaf,
                             NodeKind::Leaf};
  std::vector<NodeId> parent{kNull, 0, 1, 1, 0};
  EXPECT_THROW(
      (void)Cotree::from_parts(std::move(kind), std::move(parent), 0),
      util::CheckError);
}

TEST(Validate, RejectsUnaryInternalNodes) {
  std::vector<NodeKind> kind{NodeKind::Union, NodeKind::Leaf};
  std::vector<NodeId> parent{kNull, 0};
  EXPECT_THROW(
      (void)Cotree::from_parts(std::move(kind), std::move(parent), 0),
      util::CheckError);
}

TEST(Complement, FlipsLabelsAndIsInvolution) {
  const Cotree t = Cotree::parse("(* (+ a b) c)");
  const Cotree c = t.complement();
  EXPECT_EQ(c.format(), "(+ (* a b) c)");
  EXPECT_EQ(c.complement().format(), t.format());
}

TEST(FromParts, BuildsDeepChainWithoutRecursion) {
  // A 100k-deep caterpillar must construct fine (no stack recursion).
  const Cotree t = caterpillar(100000);
  EXPECT_EQ(t.vertex_count(), 100000u);
}

TEST(Ascii, RendersEveryVertex) {
  const Cotree t = Cotree::parse("(* (+ a b) c)");
  const std::string art = t.to_ascii();
  EXPECT_NE(art.find('a'), std::string::npos);
  EXPECT_NE(art.find('b'), std::string::npos);
  EXPECT_NE(art.find('c'), std::string::npos);
  EXPECT_NE(art.find("1 (join)"), std::string::npos);
  EXPECT_NE(art.find("0 (union)"), std::string::npos);
}

TEST(Children, SpansAndParentsConsistent) {
  const Cotree t = Cotree::parse("(+ (* a b c) (* d e) f)");
  for (std::size_t v = 0; v < t.size(); ++v) {
    for (const NodeId c : t.children(static_cast<NodeId>(v))) {
      EXPECT_EQ(t.parent(c), static_cast<NodeId>(v));
    }
  }
  EXPECT_EQ(t.child_count(t.root()), 3u);
}

}  // namespace
}  // namespace copath::cograph
