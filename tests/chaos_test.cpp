// End-to-end resilience under deterministic fault injection:
//
//  * ChaosFaultInjector — the injector itself: seeded decision sequences
//    reproduce exactly, Nth-hit plans fire the planned hits and no others,
//    disarm_all silences every registered point.
//  * ResilienceRetryPolicy — the client backoff schedule is deterministic
//    in (seed, retry), jittered within [cap/2, cap], and retries only the
//    statuses that are refusals (never timeouts, never structural errors).
//  * ChaosEventLoop — the timed tick fires without IO traffic (the fix for
//    poll(-1) blocking sweeps forever).
//  * ResilienceDeadline — deadline-expired queued work is SHED with a
//    structured failure and the solve never runs (a counting backend
//    proves it), at the Service layer and over the wire.
//  * ResilienceOverload — bounded parking: past the caps the server
//    answers Overloaded instead of buffering, and a retrying client rides
//    through injected admission refusals.
//  * ChaosPersist — every persist-tier fault point (pwrite, mmap,
//    checksum) degrades to skipped appends or cold misses, never a crash
//    or a wrong answer.
//  * ChaosDaemon — an injected socket-write fault destroys one connection
//    exactly like a real peer reset; the server (and a retrying client)
//    survive.
//  * ChaosKillRestart — the headline drill: kill -9 a daemon child process
//    mid-batch, restart it on the same port and cache directory, and a
//    well-behaved client's RetryPolicy makes the outage invisible while
//    the persistent cache heals the restarted process.
//
// Every suite name starts with Chaos or Resilience so the CI TSan job
// picks the file up with one regex token. This file has a custom main():
// when COPATH_CHAOS_SERVER is set it runs a daemon instead of tests —
// that's how the kill -9 drill gets a clean child process to murder.
#include <gtest/gtest.h>

#include <csignal>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "copath.hpp"
#include "net/client.hpp"
#include "net/event_loop.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "testing.hpp"
#include "util/clock.hpp"
#include "util/fault.hpp"

namespace copath {
namespace {

namespace proto = net::protocol;
using proto::Status;
using proto::Verb;

/// No fault stays armed past its test, even on assertion failure.
struct FaultGuard {
  FaultGuard() { util::FaultInjector::instance().disarm_all(); }
  ~FaultGuard() { util::FaultInjector::instance().disarm_all(); }
};

/// A fresh cache directory under TMPDIR, recursively removed on exit.
struct TempDir {
  TempDir() {
    std::string tmpl = (std::filesystem::temp_directory_path() /
                        "copath_chaos_XXXXXX")
                           .string();
    char* made = ::mkdtemp(tmpl.data());
    EXPECT_NE(made, nullptr);
    path = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string path;
};

std::uint64_t counter(const proto::Response& resp, std::string_view key) {
  for (const auto& [k, v] : resp.stats) {
    if (k == key) return v;
  }
  ADD_FAILURE() << "counter not in response: " << key;
  return 0;
}

// Plug-in backends for deadline/ordering control. 212 sleeps on large
// instances (occupies a worker deterministically); 213 counts invocations
// (proves a shed request was never solved).
constexpr std::uint8_t kSleepyBackend = 212;
constexpr std::uint8_t kCountingBackend = 213;
std::atomic<std::uint64_t> g_counting_solves{0};

core::BackendOutput singleton_cover(const Cotree& t) {
  core::BackendOutput out;
  for (std::size_t v = 0; v < t.vertex_count(); ++v) {
    out.cover.paths.push_back({static_cast<VertexId>(v)});
  }
  return out;
}

void ensure_backends() {
  static const bool once = [] {
    BackendRegistry::instance().add(
        static_cast<Backend>(kSleepyBackend), "chaos-sleepy",
        [](const Cotree& t, const core::BackendConfig&) {
          if (t.vertex_count() >= 16) {
            std::this_thread::sleep_for(std::chrono::milliseconds(250));
          }
          return singleton_cover(t);
        },
        /*exact=*/false);
    BackendRegistry::instance().add(
        static_cast<Backend>(kCountingBackend), "chaos-counting",
        [](const Cotree& t, const core::BackendConfig&) {
          g_counting_solves.fetch_add(1, std::memory_order_relaxed);
          return singleton_cover(t);
        },
        /*exact=*/false);
    return true;
  }();
  (void)once;
}

// ------------------------------------------------------ ChaosFaultInjector

TEST(ChaosFaultInjector, SameSeedReproducesTheExactDecisionSequence) {
  FaultGuard guard;
  auto& fi = util::FaultInjector::instance();

  const auto run = [&fi](std::uint64_t seed) {
    fi.arm("persist.pwrite", 0.5, seed);
    std::vector<bool> decisions;
    for (int i = 0; i < 200; ++i) {
      decisions.push_back(fi.should_fail("persist.pwrite"));
    }
    return decisions;
  };

  const std::vector<bool> a = run(42);
  const auto st = fi.stats("persist.pwrite");
  EXPECT_EQ(st.evaluations, 200u);
  const auto injected =
      static_cast<std::uint64_t>(std::count(a.begin(), a.end(), true));
  EXPECT_EQ(st.injected, injected);
  // p = 0.5 over 200 draws: both outcomes must actually occur.
  EXPECT_GT(injected, 0u);
  EXPECT_LT(injected, 200u);

  EXPECT_EQ(run(42), a);        // re-arm, same seed: identical sequence
  EXPECT_NE(run(43), a);        // different seed: different sequence
}

TEST(ChaosFaultInjector, ArmedPointsAreIndependentStreams) {
  // Arming a second point must not perturb the first point's decisions —
  // each has its own PRNG stream keyed by (seed, name).
  FaultGuard guard;
  auto& fi = util::FaultInjector::instance();

  fi.arm("persist.pwrite", 0.5, 7);
  std::vector<bool> alone;
  for (int i = 0; i < 100; ++i) {
    alone.push_back(fi.should_fail("persist.pwrite"));
  }

  fi.arm("persist.pwrite", 0.5, 7);
  fi.arm("server.write", 0.5, 7);
  std::vector<bool> together;
  for (int i = 0; i < 100; ++i) {
    together.push_back(fi.should_fail("persist.pwrite"));
    (void)fi.should_fail("server.write");
  }
  EXPECT_EQ(together, alone);
}

TEST(ChaosFaultInjector, NthPlanFailsExactlyThePlannedHits) {
  FaultGuard guard;
  auto& fi = util::FaultInjector::instance();
  fi.arm_nth("service.admit", /*skip=*/2, /*count=*/3);
  std::vector<bool> got;
  for (int i = 0; i < 8; ++i) got.push_back(fi.should_fail("service.admit"));
  const std::vector<bool> want = {false, false, true, true,
                                  true,  false, false, false};
  EXPECT_EQ(got, want);
  EXPECT_EQ(fi.stats("service.admit").injected, 3u);
}

TEST(ChaosFaultInjector, DisarmAllSilencesEveryRegisteredPoint) {
  FaultGuard guard;
  auto& fi = util::FaultInjector::instance();
  for (const std::string_view point : util::kFaultPoints) {
    fi.arm(point, 1.0, 1);
    EXPECT_TRUE(util::fault_point(point)) << point;
  }
  fi.disarm_all();
  EXPECT_FALSE(fi.armed());
  for (const std::string_view point : util::kFaultPoints) {
    EXPECT_FALSE(util::fault_point(point)) << point;
  }
}

// --------------------------------------------------- ResilienceRetryPolicy

TEST(ResilienceRetryPolicy, BackoffIsDeterministicJitteredAndCapped) {
  net::RetryPolicy rp;
  rp.base_delay_ms = 10;
  rp.max_delay_ms = 100;
  rp.seed = 9;

  for (std::uint32_t retry = 1; retry <= 10; ++retry) {
    const std::uint32_t d = rp.delay_ms(retry);
    EXPECT_EQ(d, rp.delay_ms(retry)) << "non-deterministic at " << retry;
    const std::uint64_t cap = std::min<std::uint64_t>(
        rp.max_delay_ms, std::uint64_t{rp.base_delay_ms} << (retry - 1));
    EXPECT_GE(d, cap / 2) << retry;
    EXPECT_LE(d, cap) << retry;
  }
  // Same policy, different seed: some delay in the schedule differs
  // (that's the jitter; a fleet sharing a restart doesn't stampede).
  net::RetryPolicy other = rp;
  other.seed = 10;
  bool any_differs = false;
  for (std::uint32_t retry = 1; retry <= 10; ++retry) {
    any_differs = any_differs || other.delay_ms(retry) != rp.delay_ms(retry);
  }
  EXPECT_TRUE(any_differs);
}

TEST(ResilienceRetryPolicy, OnlyRefusalStatusesAreRetryable) {
  EXPECT_TRUE(net::RetryPolicy::retryable(Status::Draining));
  EXPECT_TRUE(net::RetryPolicy::retryable(Status::Overloaded));
  EXPECT_FALSE(net::RetryPolicy::retryable(Status::Ok));
  EXPECT_FALSE(net::RetryPolicy::retryable(Status::BadFrame));
  EXPECT_FALSE(net::RetryPolicy::retryable(Status::InvalidSignature));
  EXPECT_FALSE(net::RetryPolicy::retryable(Status::SolveError));
  EXPECT_FALSE(net::RetryPolicy::retryable(Status::VersionMismatch));
  // DeadlineExceeded means the budget is SPENT — retrying would blow
  // through the caller's latency contract, so the caller must decide.
  EXPECT_FALSE(net::RetryPolicy::retryable(Status::DeadlineExceeded));
}

// --------------------------------------------------------- ChaosEventLoop

TEST(ChaosEventLoop, TickFiresWithoutAnyIoTraffic) {
  // Regression for the poll(-1) event loop: with no fd activity and no
  // wake(), a tick must still fire (the server's sweeps depend on it).
  net::EventLoop loop;
  int ticks = 0;
  loop.set_tick(5, [&] {
    if (++ticks == 3) loop.stop();
  });
  const std::uint64_t t0 = util::steady_now_ms();
  loop.run();
  EXPECT_EQ(ticks, 3);
  EXPECT_GE(util::steady_now_ms() - t0, 10u);  // 3 ticks, 5ms apart
}

// ------------------------------------------------------ ResilienceDeadline

TEST(ResilienceDeadline, ExpiredQueuedRequestIsShedAndNeverSolved) {
  ensure_backends();
  Service::Options o;
  o.workers = 1;  // one worker: the sleepy job blocks the queue
  Service svc(o);

  SolveOptions slow_opts;
  slow_opts.backend = static_cast<Backend>(kSleepyBackend);
  SolveOptions count_opts;
  count_opts.backend = static_cast<Backend>(kCountingBackend);
  g_counting_solves.store(0, std::memory_order_relaxed);

  // The sleepy request occupies the only worker for ~250ms; the doomed
  // request's 40ms budget expires while it sits in the queue.
  auto slow = svc.submit(SolveRequest{
      Instance::text(testing::random_cotree(64, 1).format()), slow_opts,
      {}, 0});
  auto doomed = svc.submit(SolveRequest{
      Instance::text(testing::random_cotree(20, 2).format()), count_opts,
      {}, 40});

  const SolveResult slow_res = slow.get();
  EXPECT_TRUE(slow_res.ok) << slow_res.error;
  const SolveResult doomed_res = doomed.get();
  ASSERT_FALSE(doomed_res.ok);
  EXPECT_EQ(doomed_res.error, kErrDeadlineExceeded);
  // The whole point of shedding: zero worker time on dead work.
  EXPECT_EQ(g_counting_solves.load(std::memory_order_relaxed), 0u);

  const Service::Stats s = svc.stats();
  EXPECT_EQ(s.shed_expired, 1u);
  EXPECT_EQ(s.completed, s.submitted);
}

TEST(ResilienceDeadline, ExpiredBatchIsShedPerSlot) {
  ensure_backends();
  Service::Options o;
  o.workers = 1;
  Service svc(o);

  SolveOptions slow_opts;
  slow_opts.backend = static_cast<Backend>(kSleepyBackend);
  auto slow = svc.submit(SolveRequest{
      Instance::text(testing::random_cotree(64, 3).format()), slow_opts,
      {}, 0});

  std::vector<SolveRequest> batch;
  for (unsigned i = 0; i < 4; ++i) {
    batch.push_back(SolveRequest{
        Instance::text(testing::random_cotree(6 + i, 40 + i).format()),
        {}, {}, 30});
  }
  auto doomed = svc.submit_batch(std::move(batch));

  EXPECT_TRUE(slow.get().ok);
  const std::vector<SolveResult> results = doomed.get();
  ASSERT_EQ(results.size(), 4u);
  for (const SolveResult& r : results) {
    ASSERT_FALSE(r.ok);
    EXPECT_EQ(r.error, kErrDeadlineExceeded);
  }
  const Service::Stats s = svc.stats();
  EXPECT_EQ(s.shed_expired, 4u);  // counted per slot, not per dispatch
  EXPECT_EQ(s.completed, s.submitted);
}

TEST(ResilienceDeadline, DeadlineExceededTravelsTheWire) {
  ensure_backends();
  net::Server::Options sopts;
  sopts.service.workers = 1;
  auto server = std::make_unique<net::Server>(std::move(sopts));
  std::thread loop([&server] { server->run(); });
  {
    net::Client cli("127.0.0.1", server->port());
    proto::WireOptions slow_opts;
    slow_opts.flags = proto::kOptWantVerdicts | proto::kOptExplicitBackend;
    slow_opts.backend = kSleepyBackend;
    const std::uint64_t slow_seq = cli.send_solve_text(
        testing::random_cotree(64, 5).format(), slow_opts);
    const std::uint64_t doomed_seq = cli.send_solve_text(
        testing::random_cotree(8, 6).format(), {}, /*deadline_ms=*/50);
    cli.flush();

    const proto::Response first = cli.recv();
    const proto::Response second = cli.recv();
    EXPECT_EQ(first.seq, slow_seq);
    EXPECT_EQ(first.status, Status::Ok);
    EXPECT_EQ(second.seq, doomed_seq);
    EXPECT_EQ(second.status, Status::DeadlineExceeded) << second.error;

    const proto::Response st = cli.stats();
    EXPECT_EQ(counter(st, "shed_expired"), 1u);
  }
  server->request_drain();
  loop.join();
}

// ------------------------------------------------------ ResilienceOverload

TEST(ResilienceOverload, InjectedAdmissionRefusalIsStructured) {
  FaultGuard guard;
  util::FaultInjector::instance().arm("service.admit", 1.0, 3);
  Service svc;
  const SolveResult res = svc.submit(SolveRequest{
      Instance::text("(+ a b)"), {}, {}, 0}).get();
  ASSERT_FALSE(res.ok);
  EXPECT_EQ(res.error, kErrOverloaded);
  const Service::Stats s = svc.stats();
  EXPECT_EQ(s.completed, s.submitted);
}

TEST(ResilienceOverload, WireOverloadedSurfacesAndRetryClientRecovers) {
  FaultGuard guard;
  auto server = std::make_unique<net::Server>(net::Server::Options{});
  std::thread loop([&server] { server->run(); });
  {
    // A no-retry client surfaces the refusal as a status.
    net::Client plain("127.0.0.1", server->port());
    util::FaultInjector::instance().arm("service.admit", 1.0, 3);
    const proto::Response refused = plain.solve_text("(+ a b)");
    EXPECT_EQ(refused.status, Status::Overloaded);
    util::FaultInjector::instance().disarm("service.admit");

    // A retrying client rides through exactly two injected refusals and
    // succeeds on its third attempt.
    net::Client::Config cfg;
    cfg.retry.max_attempts = 4;
    cfg.retry.base_delay_ms = 1;
    cfg.retry.max_delay_ms = 4;
    net::Client retrying("127.0.0.1", server->port(), cfg);
    util::FaultInjector::instance().arm_nth("service.admit", 0, 2);
    const proto::Response ok = retrying.solve_text("(* a b c)");
    EXPECT_EQ(ok.status, Status::Ok) << ok.error;
    EXPECT_EQ(
        util::FaultInjector::instance().stats("service.admit").injected,
        2u);
  }
  server->request_drain();
  loop.join();
}

TEST(ResilienceOverload, BatchRetryMatchesTheSingleSolveConvenience) {
  // solve_batch routes through the same roundtrip_with_retry as
  // solve_text: a whole-frame Overloaded refusal (queue full, parking
  // disabled) is retried under the policy and the eventual reply carries
  // per-item results — parity with the single-solve conveniences, pinned
  // so a refactor cannot quietly drop batch retries.
  FaultGuard guard;
  ensure_backends();
  net::Server::Options sopts;
  sopts.max_parked = 0;  // queue-full refuses Overloaded immediately
  sopts.service.workers = 1;
  sopts.service.queue_capacity = 1;
  sopts.service.use_cache = false;
  auto server = std::make_unique<net::Server>(std::move(sopts));
  std::thread loop([&server] { server->run(); });
  {
    net::Client cli("127.0.0.1", server->port());
    net::Client observer("127.0.0.1", server->port());
    proto::WireOptions slow_opts;
    slow_opts.flags = proto::kOptWantVerdicts | proto::kOptExplicitBackend;
    slow_opts.backend = kSleepyBackend;

    // Occupy the worker and fill the 1-slot queue with sleepy solves.
    (void)cli.send_solve_text(testing::random_cotree(64, 4700).format(),
                              slow_opts);
    cli.flush();
    const auto wait_for = [&observer](std::string_view key,
                                      std::uint64_t value) {
      for (int spin = 0; spin < 500; ++spin) {
        if (counter(observer.stats(), key) == value) return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      return false;
    };
    ASSERT_TRUE(wait_for("in_flight", 1));
    (void)cli.send_solve_text(testing::random_cotree(65, 4701).format(),
                              slow_opts);
    cli.flush();
    ASSERT_TRUE(wait_for("queue_depth", 1));

    const proto::BatchItem items[] = {{false, "(+ a b)"}, {false, "(* c d)"}};

    // A no-retry client surfaces the whole-frame refusal as a status —
    // exactly what solve_text does in the same state.
    net::Client plain("127.0.0.1", server->port());
    const proto::Response refused = plain.solve_batch(items);
    EXPECT_EQ(refused.status, Status::Overloaded);

    // A retrying client rides through the refusals and lands the batch
    // once the sleepy pipeline drains a queue slot.
    net::Client::Config cfg;
    cfg.retry.max_attempts = 10;
    cfg.retry.base_delay_ms = 40;
    cfg.retry.max_delay_ms = 80;
    net::Client retrying("127.0.0.1", server->port(), cfg);
    const proto::Response ok = retrying.solve_batch(items);
    EXPECT_EQ(ok.status, Status::Ok) << ok.error;
    ASSERT_EQ(ok.batch.size(), 2u);
    for (const auto& item : ok.batch) {
      EXPECT_EQ(item.status, Status::Ok) << item.error;
    }

    // Drain the sleepy pipeline so teardown is clean.
    EXPECT_EQ(cli.recv().status, Status::Ok);
    EXPECT_EQ(cli.recv().status, Status::Ok);
  }
  server->request_drain();
  loop.join();
}

TEST(ResilienceOverload, ParkingDisabledRefusesOverloadedAtQueueFull) {
  ensure_backends();
  net::Server::Options sopts;
  sopts.max_parked = 0;  // never park: queue-full refuses immediately
  sopts.service.workers = 1;
  sopts.service.queue_capacity = 1;
  auto server = std::make_unique<net::Server>(std::move(sopts));
  std::thread loop([&server] { server->run(); });
  {
    net::Client cli("127.0.0.1", server->port());
    net::Client observer("127.0.0.1", server->port());
    proto::WireOptions slow_opts;
    slow_opts.flags = proto::kOptWantVerdicts | proto::kOptExplicitBackend;
    slow_opts.backend = kSleepyBackend;

    // Occupy the worker, then fill the 1-slot queue (distinct instances:
    // identical ones would coalesce, not queue).
    const std::uint64_t busy_seq = cli.send_solve_text(
        testing::random_cotree(64, 7).format(), slow_opts);
    cli.flush();
    const auto wait_for = [&observer](std::string_view key,
                                      std::uint64_t value) {
      for (int spin = 0; spin < 500; ++spin) {
        if (counter(observer.stats(), key) == value) return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      return false;
    };
    ASSERT_TRUE(wait_for("in_flight", 1));  // worker holds the sleepy job
    const std::uint64_t queued_seq = cli.send_solve_text(
        testing::random_cotree(65, 8).format(), slow_opts);
    cli.flush();
    ASSERT_TRUE(wait_for("queue_depth", 1));

    // Third request: queue full, parking disabled — refused Overloaded
    // without waiting for anything to finish.
    const std::uint64_t refused_seq = cli.send_solve_text(
        testing::random_cotree(8, 9).format(), slow_opts);
    const proto::Response refused = cli.recv();
    EXPECT_EQ(refused.seq, refused_seq);
    EXPECT_EQ(refused.status, Status::Overloaded);

    // The occupied pipeline still completes in order of completion.
    const proto::Response r1 = cli.recv();
    const proto::Response r2 = cli.recv();
    EXPECT_EQ(r1.seq, busy_seq);
    EXPECT_EQ(r2.seq, queued_seq);
    EXPECT_EQ(r1.status, Status::Ok);
    EXPECT_EQ(r2.status, Status::Ok);
    EXPECT_GE(counter(observer.stats(), "parked_refused"), 1u);
  }
  server->request_drain();
  loop.join();
}

// --------------------------------------------------------- ChaosPersist

TEST(ChaosPersist, PwriteFaultSkipsAppendsNeverCrashes) {
  FaultGuard guard;
  TempDir dir;
  Service::Options o;
  o.workers = 2;
  o.persist.dir = dir.path;
  Service svc(o);
  util::FaultInjector::instance().arm("persist.pwrite", 1.0, 5);
  for (unsigned i = 0; i < 6; ++i) {
    const SolveResult res = svc.submit(SolveRequest{
        Instance::text(testing::random_cotree(4 + i * 9, 300 + i).format()),
        {}, {}, 0}).get();
    EXPECT_TRUE(res.ok) << res.error;  // the answer never depends on L2
  }
  const Service::Stats s = svc.stats();
  EXPECT_TRUE(s.persist_enabled);
  EXPECT_EQ(s.persist.appends, 0u);
  EXPECT_GE(s.persist.append_skips, 6u);  // every write-through skipped
}

TEST(ChaosPersist, MmapFaultDegradesToColdMisses) {
  FaultGuard guard;
  TempDir dir;
  Service::Options o;
  o.workers = 2;
  o.persist.dir = dir.path;
  const std::string text = testing::random_cotree(24, 91).format();

  // The reader opens FIRST, while the log holds only its header, so its
  // mapping covers nothing. A second handle then appends a record; serving
  // it to the reader requires growing the mapping — the exact site where
  // the mmap fault is injected.
  Service reader(o);
  {
    Service writer(o);
    const SolveResult seeded = writer.submit(SolveRequest{
        Instance::text(text), {}, {}, 0}).get();
    ASSERT_TRUE(seeded.ok) << seeded.error;
    EXPECT_GE(writer.stats().persist.appends, 1u);
  }

  util::FaultInjector::instance().arm("persist.mmap", 1.0, 5);
  const SolveResult res = reader.submit(SolveRequest{
      Instance::text(text), {}, {}, 0}).get();
  EXPECT_TRUE(res.ok) << res.error;  // recomputed; never depends on L2
  EXPECT_GT(util::FaultInjector::instance().stats("persist.mmap").injected,
            0u);
  const Service::Stats s = reader.stats();
  EXPECT_EQ(s.persist.hits, 0u);    // lookup threw inside → cold miss
  EXPECT_GE(s.persist.misses, 1u);
  EXPECT_EQ(s.persist.appends, 0u);
  EXPECT_GE(s.persist.append_skips, 1u);  // write-through threw → skip
}

TEST(ChaosPersist, ChecksumFaultDropsRecordsNotCorrectness) {
  FaultGuard guard;
  TempDir dir;
  Service::Options o;
  o.workers = 2;
  o.persist.dir = dir.path;
  const std::string text = testing::random_cotree(28, 92).format();

  SolveResult first;
  {
    Service writer(o);
    first = writer.submit(SolveRequest{Instance::text(text), {}, {},
                                       0}).get();
    ASSERT_TRUE(first.ok) << first.error;
    EXPECT_GE(writer.stats().persist.appends, 1u);
  }

  // Restarted service, every checksum verification injected to fail: the
  // on-disk record is unreadable, so the instance recomputes — same
  // answer, no hit, no crash.
  util::FaultInjector::instance().arm("persist.checksum", 1.0, 5);
  Service reader(o);
  const SolveResult again = reader.submit(SolveRequest{
      Instance::text(text), {}, {}, 0}).get();
  ASSERT_TRUE(again.ok) << again.error;
  EXPECT_EQ(again.cover.paths, first.cover.paths);
  EXPECT_EQ(again.optimal_size, first.optimal_size);
  EXPECT_EQ(reader.stats().persist.hits, 0u);
}

// ----------------------------------------------------------- ChaosDaemon

TEST(ChaosDaemon, InjectedWriteFaultKillsTheConnNotTheServer) {
  FaultGuard guard;
  auto server = std::make_unique<net::Server>(net::Server::Options{});
  std::thread loop([&server] { server->run(); });
  {
    net::Client victim("127.0.0.1", server->port());
    util::FaultInjector::instance().arm("server.write", 1.0, 11);
    // The response write is injected to fail: the server destroys the
    // connection exactly as on a real ECONNRESET, and the client sees a
    // closed connection — a structured error, not a hang or a crash.
    EXPECT_THROW((void)victim.solve_text("(+ a b)"), util::CheckError);
    util::FaultInjector::instance().disarm("server.write");

    // The server is fine: a fresh connection solves normally.
    net::Client healthy("127.0.0.1", server->port());
    EXPECT_EQ(healthy.solve_text("(+ a b)").status, Status::Ok);
  }
  server->request_drain();
  loop.join();
}

TEST(ChaosDaemon, RetryClientRidesThroughAnInjectedPeerReset) {
  FaultGuard guard;
  auto server = std::make_unique<net::Server>(net::Server::Options{});
  std::thread loop([&server] { server->run(); });
  {
    net::Client::Config cfg;
    cfg.retry.max_attempts = 4;
    cfg.retry.base_delay_ms = 1;
    cfg.retry.max_delay_ms = 4;
    net::Client cli("127.0.0.1", server->port(), cfg);
    // Exactly the next server write fails (the response to our solve);
    // the handshake of the retry connection and the re-sent solve's
    // response are hits #2 and #3 and succeed.
    util::FaultInjector::instance().arm_nth("server.write", 0, 1);
    const proto::Response res = cli.solve_text("(* a b c)");
    EXPECT_EQ(res.status, Status::Ok) << res.error;
    EXPECT_EQ(util::FaultInjector::instance().stats("server.write").injected,
              1u);
  }
  server->request_drain();
  loop.join();
}

// ------------------------------------------------------- ChaosKillRestart

std::uint16_t pick_free_port() {
  std::uint16_t port = 0;
  const net::Fd listener = net::listen_tcp("127.0.0.1", 0, &port);
  return port;  // closed on return; SO_REUSEADDR lets the child rebind
}

/// Forks a child that re-execs THIS test binary in daemon mode (see
/// main() below). Returns the child pid once it is accepting connections.
pid_t spawn_chaos_server(std::uint16_t port, const std::string& cache_dir) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::setenv("COPATH_CHAOS_SERVER", "1", 1);
    ::setenv("COPATH_CHAOS_PORT", std::to_string(port).c_str(), 1);
    ::setenv("COPATH_CHAOS_DIR", cache_dir.c_str(), 1);
    ::execl("/proc/self/exe", "chaos_server", static_cast<char*>(nullptr));
    _exit(127);  // exec failed
  }
  EXPECT_GT(pid, 0);
  return pid;
}

bool wait_for_server(std::uint16_t port, int timeout_ms = 15000) {
  const std::uint64_t deadline =
      util::steady_now_ms() + static_cast<std::uint64_t>(timeout_ms);
  while (util::steady_now_ms() < deadline) {
    try {
      net::Client probe("127.0.0.1", port);
      if (probe.health().status == Status::Ok) return true;
    } catch (const util::CheckError&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  return false;
}

/// Kills and reaps the child on scope exit, whatever the test did.
struct ChildGuard {
  explicit ChildGuard(pid_t p) : pid(p) {}
  ~ChildGuard() { reap(SIGKILL); }
  void reap(int sig) {
    if (pid <= 0) return;
    ::kill(pid, sig);
    int status = 0;
    ::waitpid(pid, &status, 0);
    pid = -1;
  }
  pid_t pid;
};

TEST(ChaosKillRestart, Kill9MidBatchThenRestartIsInvisibleToRetryClient) {
  ensure_backends();
  TempDir dir;
  const std::uint16_t port = pick_free_port();

  auto child = std::make_unique<ChildGuard>(spawn_chaos_server(port,
                                                               dir.path));
  ASSERT_TRUE(wait_for_server(port));

  net::Client::Config cfg;
  cfg.request_timeout_ms = 20000;
  cfg.retry.max_attempts = 10;
  cfg.retry.base_delay_ms = 20;
  cfg.retry.max_delay_ms = 200;
  cfg.retry.seed = 7;
  net::Client cli("127.0.0.1", port, cfg);

  // Phase 1: populate the persistent cache over the wire and remember the
  // answers.
  std::vector<std::string> texts;
  for (unsigned i = 0; i < 8; ++i) {
    texts.push_back(testing::random_cotree(3 + i * 11, 9300 + i).format());
  }
  std::vector<proto::Response> first;
  for (const auto& t : texts) {
    first.push_back(cli.solve_text(t));
    ASSERT_EQ(first.back().status, Status::Ok) << first.back().error;
  }

  // Phase 2: put a slow batch plus a burst of pipelined solves in flight,
  // then kill -9 the daemon mid-work. Nothing about this is graceful.
  proto::WireOptions slow_opts;
  slow_opts.flags = proto::kOptWantVerdicts | proto::kOptExplicitBackend;
  slow_opts.backend = kSleepyBackend;
  const std::string big = testing::random_cotree(80, 9400).format();
  const proto::BatchItem items[] = {{false, big}, {false, big}};
  (void)cli.send_solve_batch(items, slow_opts);
  for (const auto& t : texts) (void)cli.send_solve_text(t);
  cli.flush();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  child->reap(SIGKILL);

  // Phase 3: restart on the same port and cache directory. The SAME
  // client object keeps working — its conveniences reconnect and retry
  // under the policy, so the outage is invisible to the caller.
  child = std::make_unique<ChildGuard>(spawn_chaos_server(port, dir.path));
  ASSERT_TRUE(wait_for_server(port));
  for (std::size_t i = 0; i < texts.size(); ++i) {
    const proto::Response again = cli.solve_text(texts[i]);
    ASSERT_EQ(again.status, Status::Ok) << again.error;
    EXPECT_EQ(again.result.optimal_size, first[i].result.optimal_size) << i;
    EXPECT_EQ(again.result.paths, first[i].result.paths) << i;
  }

  // The L2 healed the restarted process: phase-1 work served from disk,
  // and the new daemon's ledger balances.
  const proto::Response st = cli.stats();
  EXPECT_GE(counter(st, "l2_hits"), 1u);
  EXPECT_EQ(counter(st, "completed"), counter(st, "submitted"));

  // Graceful exit this time: drain and reap a clean 0.
  EXPECT_EQ(cli.drain().status, Status::Ok);
  int status = -1;
  ASSERT_EQ(::waitpid(child->pid, &status, 0), child->pid);
  child->pid = -1;
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

// ------------------------------------------------------- ResilienceStress

TEST(ResilienceStress, EveryRequestIsAnsweredExactlyOnceUnderChurn) {
  // Mixed churn: tight deadlines (some shed), 20% injected admission
  // refusals, four submitting threads. The invariant that holds the whole
  // resilience story together: every request is answered exactly once,
  // with ok or a structured refusal — completed == submitted, no sink
  // lost, no sink doubled.
  FaultGuard guard;
  Service::Options o;
  o.workers = 2;
  o.queue_capacity = 16;
  Service svc(o);
  util::FaultInjector::instance().arm("service.admit", 0.2, 77);

  std::vector<std::string> texts;
  for (unsigned i = 0; i < 6; ++i) {
    texts.push_back(testing::random_cotree(3 + i * 5, 7100 + i).format());
  }
  constexpr int kThreads = 4;
  constexpr int kPerThread = 40;
  std::atomic<std::uint64_t> answered{0};
  std::atomic<std::uint64_t> malformed{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        SolveRequest req{Instance::text(texts[(t + i) % texts.size()]),
                         {}, {}, (i % 3 == 0) ? 1u : 0u};
        svc.submit_async(std::move(req), [&](SolveResult res) {
          answered.fetch_add(1, std::memory_order_relaxed);
          const bool structured =
              res.ok || res.error == kErrDeadlineExceeded ||
              res.error == kErrOverloaded || res.error == kErrDraining ||
              res.error == kErrShutDown;
          if (!structured) malformed.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (auto& th : threads) th.join();
  svc.drain();

  EXPECT_EQ(answered.load(), std::uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(malformed.load(), 0u);
  const Service::Stats s = svc.stats();
  EXPECT_EQ(s.submitted, std::uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(s.completed, s.submitted);
}

// --------------------------------------------------------- ChaosWatchdog

/// Polls the server's Stats counter `key` until it reaches `value`.
bool wait_for_counter(net::Client& observer, std::string_view key,
                      std::uint64_t value) {
  for (int spin = 0; spin < 1500; ++spin) {
    if (counter(observer.stats(), key) >= value) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return false;
}

TEST(ChaosWatchdog, StalledSolveIsFreedWithinOneIntervalNotTheStallCap) {
  // The headline watchdog drill over the wire: a solve that stops
  // heartbeating (injected solve.stall) past --watchdog-ms gets its token
  // tripped and answers Cancelled in watchdog time — far below the 5s
  // stall cap, which is what the worker would burn if nobody tripped it.
  FaultGuard guard;
  net::Server::Options sopts;
  sopts.service.workers = 1;
  sopts.service.watchdog_ms = 50;
  auto server = std::make_unique<net::Server>(std::move(sopts));
  std::thread loop([&server] { server->run(); });
  {
    net::Client cli("127.0.0.1", server->port());
    util::FaultInjector::instance().arm_nth("solve.stall", 0, 1);
    const std::uint64_t t0 = util::steady_now_ms();
    const proto::Response res =
        cli.solve_text(testing::random_cotree(48, 4100).format());
    const std::uint64_t waited = util::steady_now_ms() - t0;
    EXPECT_EQ(res.status, Status::Cancelled) << res.error;
    EXPECT_EQ(res.error, util::kCancelledMsg);
    EXPECT_LT(waited, 3000u);  // watchdog time, not stall-cap time

    EXPECT_GE(counter(cli.stats(), "watchdog_cancels"), 1u);
    // The worker came back: the next solve is served normally.
    EXPECT_EQ(
        cli.solve_text(testing::random_cotree(12, 4101).format()).status,
        Status::Ok);
  }
  server->request_drain();
  loop.join();
}

TEST(ChaosWatchdog, StalledSolvePastItsDeadlineAnswersDeadlineExceeded) {
  // Same stall, but the request carries a deadline that passes while the
  // worker is wedged: the watchdog picks kDeadline over kCancelled, so
  // the client learns the truthful reason — its budget is spent.
  FaultGuard guard;
  net::Server::Options sopts;
  sopts.service.workers = 1;
  sopts.service.watchdog_ms = 50;
  auto server = std::make_unique<net::Server>(std::move(sopts));
  std::thread loop([&server] { server->run(); });
  {
    net::Client cli("127.0.0.1", server->port());
    util::FaultInjector::instance().arm_nth("solve.stall", 0, 1);
    const proto::Response res = cli.solve_text(
        testing::random_cotree(48, 4200).format(), {}, /*deadline_ms=*/30);
    EXPECT_EQ(res.status, Status::DeadlineExceeded) << res.error;
    EXPECT_EQ(res.error, util::kDeadlineMsg);
  }
  server->request_drain();
  loop.join();
}

// ----------------------------------------------------------- ChaosCancel

TEST(ChaosCancel, WireCancelCatchesAnInFlightSolve) {
  // Cancel an in-flight request by seq: the ack comes back Ok under the
  // Cancel frame's seq, and the target answers Cancelled under its own —
  // in cancel time, not in stall-cap time.
  FaultGuard guard;
  net::Server::Options sopts;
  sopts.service.workers = 1;
  auto server = std::make_unique<net::Server>(std::move(sopts));
  std::thread loop([&server] { server->run(); });
  {
    net::Client cli("127.0.0.1", server->port());
    net::Client observer("127.0.0.1", server->port());
    util::FaultInjector::instance().arm_nth("solve.stall", 0, 1);

    const std::uint64_t t0 = util::steady_now_ms();
    const std::uint64_t seq =
        cli.send_solve_text(testing::random_cotree(40, 4300).format());
    cli.flush();
    ASSERT_TRUE(wait_for_counter(observer, "in_flight", 1));
    const std::uint64_t cseq = cli.send_cancel(seq);
    cli.flush();

    proto::Response ack, victim;
    for (int i = 0; i < 2; ++i) {
      proto::Response r = cli.recv();
      (r.seq == cseq ? ack : victim) = std::move(r);
    }
    const std::uint64_t waited = util::steady_now_ms() - t0;
    EXPECT_EQ(ack.seq, cseq);
    EXPECT_EQ(ack.status, Status::Ok);
    EXPECT_EQ(victim.seq, seq);
    EXPECT_EQ(victim.status, Status::Cancelled) << victim.error;
    EXPECT_LT(waited, 3000u);

    EXPECT_GE(counter(observer.stats(), "cancel_frames"), 1u);
    EXPECT_EQ(cli.solve_text("(+ a b)").status, Status::Ok);
  }
  server->request_drain();
  loop.join();
}

TEST(ChaosCancel, QueuedRequestIsCancelledBeforeItEverRuns) {
  // Cancelling a request that is still QUEUED must refund the work
  // entirely: the counting backend proves the solve never executed.
  FaultGuard guard;
  ensure_backends();
  net::Server::Options sopts;
  sopts.service.workers = 1;
  sopts.service.use_cache = false;
  auto server = std::make_unique<net::Server>(std::move(sopts));
  std::thread loop([&server] { server->run(); });
  {
    net::Client cli("127.0.0.1", server->port());
    net::Client observer("127.0.0.1", server->port());
    proto::WireOptions slow;
    slow.flags = proto::kOptWantVerdicts | proto::kOptExplicitBackend;
    slow.backend = kSleepyBackend;
    proto::WireOptions counted;
    counted.flags = proto::kOptWantVerdicts | proto::kOptExplicitBackend;
    counted.backend = kCountingBackend;

    // Occupy the single worker, then queue a counted request behind it.
    const std::uint64_t busy_seq = cli.send_solve_text(
        testing::random_cotree(64, 4400).format(), slow);
    cli.flush();
    ASSERT_TRUE(wait_for_counter(observer, "in_flight", 1));
    g_counting_solves.store(0, std::memory_order_relaxed);
    const std::uint64_t queued_seq = cli.send_solve_text(
        testing::random_cotree(32, 4401).format(), counted);
    cli.flush();
    ASSERT_TRUE(wait_for_counter(observer, "queue_depth", 1));

    const std::uint64_t cseq = cli.send_cancel(queued_seq);
    cli.flush();

    bool saw_cancelled = false;
    for (int i = 0; i < 3; ++i) {
      const proto::Response r = cli.recv();
      if (r.seq == queued_seq) {
        EXPECT_EQ(r.status, Status::Cancelled) << r.error;
        saw_cancelled = true;
      } else if (r.seq == cseq) {
        EXPECT_EQ(r.status, Status::Ok);
      } else {
        EXPECT_EQ(r.seq, busy_seq);
        EXPECT_EQ(r.status, Status::Ok);
      }
    }
    EXPECT_TRUE(saw_cancelled);
    EXPECT_EQ(g_counting_solves.load(), 0) << "cancelled solve ran anyway";
  }
  server->request_drain();
  loop.join();
}

// ----------------------------------------------------- ResilienceDisconnect

TEST(ResilienceDisconnect, ClientGoneMidSolveFreesTheWorker) {
  // A peer that vanishes mid-solve must not strand its worker: the server
  // trips the connection's tokens on EOF, the stalled solve unwinds, and
  // the worker serves the next client — within cancel time, not the 5s
  // stall cap.
  FaultGuard guard;
  net::Server::Options sopts;
  sopts.service.workers = 1;
  auto server = std::make_unique<net::Server>(std::move(sopts));
  std::thread loop([&server] { server->run(); });
  {
    net::Client observer("127.0.0.1", server->port());
    util::FaultInjector::instance().arm_nth("solve.stall", 0, 1);
    {
      net::Client victim("127.0.0.1", server->port());
      (void)victim.send_solve_text(
          testing::random_cotree(40, 4500).format());
      victim.flush();
      ASSERT_TRUE(wait_for_counter(observer, "in_flight", 1));
    }  // victim's socket closes here, solve still stalled in the worker

    // The disconnect cancels the orphan (cancelled counter moves) and the
    // worker drains back to idle.
    ASSERT_TRUE(wait_for_counter(observer, "cancelled", 1));
    ASSERT_TRUE(wait_for_counter(observer, "completed", 1));
    const std::uint64_t t0 = util::steady_now_ms();
    EXPECT_EQ(observer.solve_text("(+ a b)").status, Status::Ok);
    EXPECT_LT(util::steady_now_ms() - t0, 3000u);
  }
  server->request_drain();
  loop.join();
}

// ----------------------------------------------------- ChaosCancelStorm

TEST(ChaosCancelStorm, EverySolveAnswersExactlyOnceUnderRacingCancels) {
  // The storm: a pipelined burst of slow solves, then a Cancel for every
  // one of them racing the completions. The exactly-once ledger must
  // balance — each solve seq answers once (Ok if the cancel lost the
  // race, Cancelled if it won), each cancel seq acks once, nothing is
  // dropped, doubled, or left hanging.
  FaultGuard guard;
  ensure_backends();
  net::Server::Options sopts;
  sopts.service.workers = 2;
  sopts.service.use_cache = false;  // identical-shape jobs must not coalesce
  auto server = std::make_unique<net::Server>(std::move(sopts));
  std::thread loop([&server] { server->run(); });
  {
    net::Client cli("127.0.0.1", server->port());
    proto::WireOptions slow;
    slow.flags = proto::kOptWantVerdicts | proto::kOptExplicitBackend;
    slow.backend = kSleepyBackend;

    constexpr unsigned kJobs = 10;
    std::vector<std::uint64_t> solve_seqs, cancel_seqs;
    for (unsigned i = 0; i < kJobs; ++i) {
      solve_seqs.push_back(cli.send_solve_text(
          testing::random_cotree(24 + i, 4600 + i).format(), slow));
    }
    cli.flush();
    for (const std::uint64_t seq : solve_seqs) {
      cancel_seqs.push_back(cli.send_cancel(seq));
    }
    cli.flush();

    std::map<std::uint64_t, proto::Response> by_seq;
    for (unsigned i = 0; i < 2 * kJobs; ++i) {
      proto::Response r = cli.recv();
      const auto [it, fresh] = by_seq.emplace(r.seq, std::move(r));
      ASSERT_TRUE(fresh) << "seq " << it->first << " answered twice";
    }

    unsigned completed = 0, cancelled = 0;
    for (const std::uint64_t seq : solve_seqs) {
      const auto it = by_seq.find(seq);
      ASSERT_NE(it, by_seq.end()) << "solve seq " << seq << " unanswered";
      ASSERT_TRUE(it->second.status == Status::Ok ||
                  it->second.status == Status::Cancelled)
          << proto::to_string(it->second.status);
      (it->second.status == Status::Ok ? completed : cancelled) += 1;
    }
    for (const std::uint64_t seq : cancel_seqs) {
      const auto it = by_seq.find(seq);
      ASSERT_NE(it, by_seq.end()) << "cancel seq " << seq << " unacked";
      EXPECT_EQ(it->second.status, Status::Ok);
    }
    EXPECT_EQ(completed + cancelled, kJobs);  // the ledger balances

    // The server's own ledger agrees, and it is still fully serviceable.
    const proto::Response st = cli.stats();
    EXPECT_EQ(counter(st, "completed"), counter(st, "submitted"));
    EXPECT_EQ(cli.solve_text("(+ a b)").status, Status::Ok);
  }
  server->request_drain();
  loop.join();
}

}  // namespace
}  // namespace copath

/// Daemon mode for the kill -9 drill: when COPATH_CHAOS_SERVER is set,
/// this binary IS the server child (fresh process, clean under ASan/TSan —
/// no fork-without-exec). Otherwise run the tests. This main() wins over
/// the one in gtest_main because the test object file is linked first.
int main(int argc, char** argv) {
  std::signal(SIGPIPE, SIG_IGN);  // dead peers are errors, not signals
  if (std::getenv("COPATH_CHAOS_SERVER") != nullptr) {
    copath::ensure_backends();  // the kill -9 drill solves on backend 212
    copath::net::Server::Options opts;
    opts.port = static_cast<std::uint16_t>(
        std::atoi(std::getenv("COPATH_CHAOS_PORT")));
    opts.service.workers = 2;
    opts.service.persist.dir = std::getenv("COPATH_CHAOS_DIR");
    copath::net::Server server(std::move(opts));
    server.run();  // until drained — or killed, that's the point
    return 0;
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
