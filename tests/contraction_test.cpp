// Binary tree contraction against direct recursive evaluation, using the
// path-count (max-plus) policy from the core module and a plain sum policy.
#include <gtest/gtest.h>

#include <functional>

#include "core/count.hpp"
#include "par/contraction.hpp"
#include "util/rng.hpp"

namespace copath::par {
namespace {

using core::PathCountPolicy;
using pram::Machine;
using pram::Policy;

BinTree random_full_tree(util::Rng& rng, std::size_t leaves) {
  BinTree t = BinTree::with_size(2 * leaves - 1);
  int next_id = 0;
  const std::function<int(std::size_t)> build =
      [&](std::size_t nl) -> int {
    const int id = next_id++;
    if (nl == 1) return id;
    const std::size_t ls = 1 + rng.below(nl - 1);
    const int l = build(ls);
    const int r = build(nl - ls);
    t.left[static_cast<std::size_t>(id)] = l;
    t.right[static_cast<std::size_t>(id)] = r;
    t.parent[static_cast<std::size_t>(l)] = id;
    t.parent[static_cast<std::size_t>(r)] = id;
    return id;
  };
  t.root = build(leaves);
  return t;
}

struct SumPolicy {
  using Value = std::int64_t;
  struct Func {
    std::int64_t add;
  };
  struct NodeOp {};
  static Func identity() { return {0}; }
  static Func compose(Func o, Func i) { return {o.add + i.add}; }
  static Value apply(Func f, Value x) { return x + f.add; }
  static Func partial_left(NodeOp, Value l) { return {l}; }
  static Func partial_right(NodeOp, Value r) { return {r}; }
  static Value full(NodeOp, Value l, Value r) { return l + r; }
};

struct Shape {
  std::size_t leaves;
  std::size_t p;
};

class ContractionSweep : public ::testing::TestWithParam<Shape> {};

TEST_P(ContractionSweep, SubtreeLeafSums) {
  const auto [leaves, p] = GetParam();
  util::Rng rng(leaves * 17 + p);
  const BinTree t = random_full_tree(rng, leaves);
  const std::size_t n = t.size();
  std::vector<std::int64_t> leaf_val(n, 1);
  std::vector<SumPolicy::NodeOp> ops(n);
  Machine m({Policy::EREW, 1, p});
  const auto got = tree_contract_eval<SumPolicy>(m, t, leaf_val, ops);
  // Every node's value should equal its leaf count.
  const std::function<std::int64_t(std::int32_t)> count =
      [&](std::int32_t v) -> std::int64_t {
    const auto vu = static_cast<std::size_t>(v);
    if (t.left[vu] == kNull) {
      EXPECT_EQ(got[vu], 1);
      return 1;
    }
    const std::int64_t c = count(t.left[vu]) + count(t.right[vu]);
    EXPECT_EQ(got[vu], c) << "node " << v;
    return c;
  };
  count(t.root);
}

TEST_P(ContractionSweep, MaxPlusPathCountPolicy) {
  const auto [leaves, p] = GetParam();
  util::Rng rng(leaves * 19 + p);
  const BinTree t = random_full_tree(rng, leaves);
  const std::size_t n = t.size();
  std::vector<std::int64_t> leaf_val(n, 1);
  std::vector<PathCountPolicy::NodeOp> ops(n, {0, 0});
  for (std::size_t v = 0; v < n; ++v) {
    if (t.left[v] == kNull) {
      leaf_val[v] = 1;
    } else if (rng.chance(0.5)) {
      ops[v] = {1, static_cast<std::int64_t>(rng.below(6))};
    }
  }
  Machine m({Policy::EREW, 1, p});
  const auto got = tree_contract_eval<PathCountPolicy>(m, t, leaf_val, ops);
  const std::function<std::int64_t(std::int32_t)> eval =
      [&](std::int32_t v) -> std::int64_t {
    const auto vu = static_cast<std::size_t>(v);
    if (t.left[vu] == kNull) return leaf_val[vu];
    const auto want = PathCountPolicy::full(ops[vu], eval(t.left[vu]),
                                            eval(t.right[vu]));
    EXPECT_EQ(got[vu], want) << "node " << v;
    return want;
  };
  eval(t.root);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ContractionSweep,
    ::testing::Values(Shape{1, 1}, Shape{2, 1}, Shape{3, 2}, Shape{17, 3},
                      Shape{64, 8}, Shape{200, 16}, Shape{333, 5}),
    [](const ::testing::TestParamInfo<Shape>& info) {
      return "l" + std::to_string(info.param.leaves) + "_p" +
             std::to_string(info.param.p);
    });

TEST(ContractionShape, DeepLeftChainEvaluates) {
  // Chain where every internal node is a join max(x - 1, 1): p collapses
  // to 1 all the way up regardless of depth.
  const std::size_t leaves = 200;
  BinTree t = BinTree::with_size(2 * leaves - 1);
  const auto L = static_cast<std::int32_t>(leaves);
  for (std::int32_t i = 0; i + 1 < L; ++i) {
    const std::int32_t leaf = L - 1 + i;
    t.right[static_cast<std::size_t>(i)] = leaf;
    t.parent[static_cast<std::size_t>(leaf)] = i;
    const std::int32_t lc = (i + 2 < L) ? i + 1 : 2 * L - 2;
    t.left[static_cast<std::size_t>(i)] = lc;
    t.parent[static_cast<std::size_t>(lc)] = i;
  }
  t.root = 0;
  std::vector<std::int64_t> leaf_val(t.size(), 1);
  std::vector<PathCountPolicy::NodeOp> ops(t.size(), {1, 1});
  Machine m({Policy::EREW, 1, 8});
  const auto got = tree_contract_eval<PathCountPolicy>(m, t, leaf_val, ops);
  EXPECT_EQ(got[0], 1);
}

TEST(ContractionCost, LogTimeLinearWork) {
  util::Rng rng(3);
  const std::size_t leaves = 1 << 12;
  const BinTree t = random_full_tree(rng, leaves);
  const std::size_t n = t.size();
  Machine m({Policy::EREW, 1, n / 13});
  std::vector<std::int64_t> leaf_val(n, 1);
  std::vector<SumPolicy::NodeOp> ops(n);
  (void)tree_contract_eval<SumPolicy>(m, t, leaf_val, ops);
  EXPECT_LE(m.stats().steps, 300 * 13);
  EXPECT_LE(m.stats().work, 400 * n);
}

}  // namespace
}  // namespace copath::par
