// The exec layer: Native-vs-Pram differential equivalence (covers, minima,
// Hamiltonicity) across generator families and random batches, CheckedPram
// contract preservation (EREW violations still throw, stats bit-for-bit),
// and the Native executor's primitive-level correctness. Instances come
// from the shared property-test harness (tests/testing.hpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "copath.hpp"
#include "core/pipeline_exec.hpp"
#include "par/brackets.hpp"
#include "par/euler.hpp"
#include "par/list_ranking.hpp"
#include "testing.hpp"
#include "util/rng.hpp"

namespace copath {
namespace {

using exec::CheckedPram;
using exec::Native;

std::vector<cograph::Cotree> family_instances() {
  return testing::large_families();
}

// ---------------------------------------------------------------- Native
// executor primitives against host references.

TEST(NativeExec, ScanReduceMatchHostReferences) {
  // Exercise both the sequential fast path (grain large) and the threaded
  // path (grain 1, 3 workers) on the same data.
  util::Rng rng(11);
  std::vector<std::int64_t> data(1777);
  for (auto& v : data) v = static_cast<std::int64_t>(rng.below(1000)) - 500;

  std::vector<std::int64_t> expect_excl(data.size());
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    expect_excl[i] = acc;
    acc += data[i];
  }

  for (const std::size_t workers : {1u, 3u}) {
    for (const std::size_t grain : {1u, 1u << 20}) {
      Native ex(Native::Config{workers, 0, grain});
      auto a = exec::make_array<std::int64_t>(ex, data);
      EXPECT_EQ(par::reduce(ex, a), acc);
      par::exclusive_scan(ex, a);
      EXPECT_EQ(a.to_vector(), expect_excl)
          << "workers=" << workers << " grain=" << grain;
    }
  }
}

TEST(NativeExec, BracketsAndListRankingMatchReferences) {
  util::Rng rng(29);
  const std::size_t n = 603;
  std::vector<std::int8_t> sign(n, 0);
  for (auto& s : sign) {
    const auto r = rng.below(3);
    s = r == 0 ? std::int8_t{1} : (r == 1 ? std::int8_t{-1} : std::int8_t{0});
  }
  const auto expect = par::match_brackets_seq(sign);

  Native ex(Native::Config{2, 0, 64});
  auto sign_arr = exec::make_array<std::int8_t>(ex, sign);
  auto match = exec::make_array<std::int64_t>(ex, n, std::int64_t{-1});
  par::match_brackets(ex, sign_arr, match);
  EXPECT_EQ(match.to_vector(), expect);

  // One list 0 -> 1 -> ... -> n-1 (shuffled ids): rank = distance to tail.
  std::vector<par::NodeId> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  for (std::size_t i = n; i-- > 1;) {
    std::swap(perm[i], perm[rng.below(i + 1)]);
  }
  std::vector<par::NodeId> next(n, par::kNull);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    next[static_cast<std::size_t>(perm[i])] = perm[i + 1];
  }
  auto next_arr = exec::make_array<par::NodeId>(ex, next);
  auto rank_c = exec::make_array<std::int64_t>(ex, n, std::int64_t{0});
  auto rank_w = exec::make_array<std::int64_t>(ex, n, std::int64_t{0});
  par::list_rank_contract(ex, next_arr, rank_c);
  par::list_rank_wyllie(ex, next_arr, rank_w);
  for (std::size_t i = 0; i < n; ++i) {
    const auto expected_rank =
        static_cast<std::int64_t>(n) - 1 - static_cast<std::int64_t>(i);
    EXPECT_EQ(rank_c.host(static_cast<std::size_t>(perm[i])), expected_rank);
    EXPECT_EQ(rank_w.host(static_cast<std::size_t>(perm[i])), expected_rank);
  }
}

TEST(NativeExec, HostShortcutsMatchPhaseStructuredPrimitives) {
  // A 1-worker pool always takes the one-pass host shortcuts; workers = 3
  // with zero grains always takes the phase-structured program. Both must
  // agree on every primitive output.
  util::Rng rng(41);
  const std::size_t n = 1453;
  std::vector<std::int64_t> data(n);
  for (auto& v : data) v = static_cast<std::int64_t>(rng.below(9)) - 4;

  Native host(Native::Config{1});
  Native par3(Native::Config{3, 0, 1, Native::Grains::none()});

  const auto scan_with = [&](Native& ex) {
    auto a = exec::make_array<std::int64_t>(ex, data);
    par::exclusive_scan(ex, a);
    return a.to_vector();
  };
  EXPECT_EQ(scan_with(host), scan_with(par3));

  const auto seg_with = [&](Native& ex) {
    auto a = exec::make_array<std::int64_t>(ex, data);
    std::vector<std::uint8_t> flags(n, 0);
    for (std::size_t i = 0; i < n; i += 97) flags[i] = 1;
    auto f = exec::make_array<std::uint8_t>(ex, flags);
    par::segmented_inclusive_scan(ex, a, f);
    return a.to_vector();
  };
  EXPECT_EQ(seg_with(host), seg_with(par3));

  const auto compact_with = [&](Native& ex) {
    std::vector<std::uint8_t> keep(n, 0);
    for (std::size_t i = 0; i < n; ++i) keep[i] = data[i] > 0 ? 1 : 0;
    auto k = exec::make_array<std::uint8_t>(ex, keep);
    auto out = exec::make_array<std::int64_t>(ex, n, std::int64_t{-1});
    const std::size_t total = par::compact_indices(ex, k, out);
    auto v = out.to_vector();
    v.resize(total);
    return v;
  };
  EXPECT_EQ(compact_with(host), compact_with(par3));
}

TEST(NativeExec, EulerHostDfsMatchesTourAndRankingProgram) {
  // The host-DFS shortcut must reproduce every EulerNumbers field the
  // tour + list-ranking program computes, on every tree shape.
  for (const auto& t : testing::large_families()) {
    const auto bc = cograph::binarize(t);
    pram::Machine m(pram::Machine::Config{pram::Policy::EREW, 1, 16});
    const auto want = par::euler_numbers(m, bc.tree);
    const auto got = par::euler_numbers_host(bc.tree);
    EXPECT_EQ(got.pre, want.pre);
    EXPECT_EQ(got.in, want.in);
    EXPECT_EQ(got.post, want.post);
    EXPECT_EQ(got.depth, want.depth);
    EXPECT_EQ(got.leaves, want.leaves);
    EXPECT_EQ(got.subtree, want.subtree);
    EXPECT_EQ(got.leafnum, want.leafnum);
    EXPECT_EQ(got.first_leaf, want.first_leaf);
    EXPECT_EQ(got.down_pos, want.down_pos);
    EXPECT_EQ(got.up_pos, want.up_pos);
    EXPECT_EQ(got.tour_length, want.tour_length);
  }
}

// ----------------------------------------------------------------- Arena

TEST(NativeExec, SteadyStateSolvesAllocateNothingInsidePipelineStages) {
  // The allocation-counting harness: with a shared arena, the first solve
  // warms the size classes and every later solve of the same instance
  // must run its pipeline stages entirely from recycled buffers.
  exec::Arena arena;
  const auto t = testing::random_cotree(3000, 90125);
  const auto solve_once = [&] {
    Native::Config cfg;
    cfg.workers = 1;
    cfg.arena = &arena;
    Native ex(cfg);
    return core::min_path_cover_exec(ex, t);
  };
  const auto cold = solve_once();
  const auto cold_allocs = arena.stats().fresh_allocs;
  EXPECT_GT(cold_allocs, 0u);
  for (int round = 0; round < 3; ++round) {
    const auto warm = solve_once();
    EXPECT_EQ(warm.paths, cold.paths);
    EXPECT_EQ(arena.stats().fresh_allocs, cold_allocs)
        << "steady-state solve " << round
        << " performed a fresh heap allocation inside the pipeline";
    EXPECT_EQ(arena.stats().outstanding, 0u);
  }
  EXPECT_GT(arena.stats().reuses, 0u);
}

TEST(NativeExec, ArenaRecyclesAcrossBatchedSolvesOfMixedSizes) {
  // Reset/reuse across batched solves (ASan runs this suite): alternating
  // sizes through one shared arena must neither leak, double-release, nor
  // serve a stale smaller buffer for a bigger request.
  exec::Arena arena;
  std::vector<cograph::Cotree> batch;
  for (unsigned i = 0; i < 12; ++i) {
    batch.push_back(testing::random_cotree(50 + (i * 431) % 1200, 777 + i));
  }
  std::vector<core::PathCover> first;
  for (int round = 0; round < 3; ++round) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      Native::Config cfg;
      cfg.workers = 1;
      cfg.arena = &arena;
      Native ex(cfg);
      auto cover = core::min_path_cover_exec(ex, batch[i]);
      if (round == 0) {
        first.push_back(std::move(cover));
      } else {
        EXPECT_EQ(cover.paths, first[i].paths) << "round " << round;
      }
      EXPECT_EQ(arena.stats().outstanding, 0u);
    }
  }
}

TEST(NativeExec, ForcedParallelPipelineMatchesHostShortcutPipeline) {
  // End to end: the phase-structured parallel path (workers 3, zero
  // grains) and the all-shortcut host path (workers 1) must produce the
  // identical cover.
  for (const auto& t : family_instances()) {
    Native host(Native::Config{1});
    const auto host_cover = core::min_path_cover_exec(host, t);

    Native::Config pc;
    pc.workers = 3;
    pc.grain = 1;
    pc.grains = Native::Grains::none();
    Native par_ex(pc);
    const auto par_cover = core::min_path_cover_exec(par_ex, t);
    EXPECT_EQ(par_cover.paths, host_cover.paths) << t.vertex_count();
  }
}

// ------------------------------------------------------------ CheckedPram
// adapter: contract preserved bit-for-bit after the refactor.

TEST(CheckedPramExec, StillRaisesPramViolationOnSeededErewBreach) {
  CheckedPram ex(CheckedPram::Config{pram::Policy::EREW, 1, 0});
  auto a = exec::make_array<std::int64_t>(ex, 8, std::int64_t{0});
  // Two processors write the same cell in one step: WRITE/WRITE breach.
  EXPECT_THROW(ex.step(2, [&](pram::Ctx& c, std::size_t) {
    a.put(c, 3, 1);
  }),
               pram::PramViolation);
  // Concurrent read of one cell is equally illegal under EREW...
  EXPECT_THROW(ex.step(2, [&](pram::Ctx& c, std::size_t) {
    (void)a.get(c, 5);
  }),
               pram::PramViolation);
  // ...and the machine stays usable afterwards for clean steps.
  ex.step(8, [&](pram::Ctx& c, std::size_t p) { a.put(c, p, 7); });
  EXPECT_EQ(a.host(4), 7);
}

TEST(CheckedPramExec, StatsMatchDirectMachineBitForBit) {
  const std::size_t n = 512;
  const auto run = [&](auto& ex) {
    auto a = exec::make_array<std::int64_t>(ex, n, std::int64_t{1});
    par::exclusive_scan(ex, a);
    auto keep = exec::make_array<std::uint8_t>(ex, n, std::uint8_t{1});
    auto out = exec::make_array<std::int64_t>(ex, n);
    par::compact_indices(ex, keep, out);
    return a.host(n - 1);
  };

  pram::Machine machine(
      pram::Machine::Config{pram::Policy::EREW, 1, n / 9});
  CheckedPram adapter(CheckedPram::Config{pram::Policy::EREW, 1, n / 9});
  EXPECT_EQ(run(machine), run(adapter));

  const pram::Stats& a = machine.stats();
  const pram::Stats& b = adapter.stats();
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.work, b.work);
  EXPECT_EQ(a.max_processors, b.max_processors);
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.writes, b.writes);
}

// ---------------------------------------------------------- Differential
// sweep: Backend::Native vs Backend::Pram end to end.

TEST(NativeBackend, RegisteredAndSelectableThroughSolver) {
  auto& reg = BackendRegistry::instance();
  const auto entry = reg.find(Backend::Native);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->name, "native");
  EXPECT_TRUE(entry->exact);
  EXPECT_EQ(core::backend_from_string("native"), Backend::Native);
}

TEST(NativeBackend, CoversMinimaAndVerdictsMatchPramOnEveryFamily) {
  for (const auto& t : family_instances()) {
    SolveOptions popt;
    popt.backend = Backend::Pram;
    popt.validate = true;
    const auto pres = Solver(popt).solve(Instance::view(t));
    ASSERT_TRUE(pres.ok) << pres.error;

    for (const std::size_t workers : {1u, 4u}) {
      SolveOptions nopt;
      nopt.backend = Backend::Native;
      nopt.workers = workers;
      nopt.validate = true;
      const auto nres = Solver(nopt).solve(Instance::view(t));
      ASSERT_TRUE(nres.ok) << nres.error;
      EXPECT_EQ(nres.cover.paths, pres.cover.paths)
          << "n=" << t.vertex_count() << " workers=" << workers;
      EXPECT_EQ(nres.optimal_size, pres.optimal_size);
      EXPECT_EQ(nres.minimum, pres.minimum);
      EXPECT_TRUE(nres.minimum);
      EXPECT_EQ(nres.hamiltonian_path, pres.hamiltonian_path);
      EXPECT_EQ(nres.hamiltonian_cycle, pres.hamiltonian_cycle);
      EXPECT_TRUE(nres.validation.ok) << nres.validation.error;
      // Native is not a PRAM run: simulated-cost stats stay invalid.
      EXPECT_FALSE(nres.stats_valid);
    }
  }
}

TEST(NativeBackend, RandomBatchOf120MatchesPramInstanceByInstance) {
  // The acceptance sweep: >= 100 random instances, Native == Pram on
  // covers, minima, and Hamiltonicity, batched through solve_batch.
  std::vector<cograph::Cotree> keep;
  keep.reserve(120);
  for (unsigned i = 0; i < 120; ++i) {
    keep.push_back(testing::random_cotree(1 + (i * 13) % 150, 424200 + i));
  }
  std::vector<SolveRequest> reqs(keep.size());
  for (std::size_t i = 0; i < keep.size(); ++i) {
    reqs[i].instance = Instance::view(keep[i]);
  }

  SolveOptions nopt;
  nopt.backend = Backend::Native;
  nopt.workers = 0;  // hardware; solve_batch clamps to the budget
  nopt.batch_workers = 3;
  Solver nsolver(nopt);
  const auto nres = nsolver.solve_batch(reqs);

  SolveOptions popt;
  popt.backend = Backend::Pram;
  const Solver psolver(popt);
  ASSERT_EQ(nres.size(), keep.size());
  for (std::size_t i = 0; i < keep.size(); ++i) {
    const auto pres = psolver.solve(Instance::view(keep[i]));
    ASSERT_TRUE(nres[i].ok) << i << ": " << nres[i].error;
    ASSERT_TRUE(pres.ok) << i << ": " << pres.error;
    EXPECT_EQ(nres[i].cover.paths, pres.cover.paths) << i;
    EXPECT_EQ(nres[i].optimal_size, pres.optimal_size) << i;
    EXPECT_EQ(nres[i].hamiltonian_path, pres.hamiltonian_path) << i;
    EXPECT_EQ(nres[i].hamiltonian_cycle, pres.hamiltonian_cycle) << i;
  }
}

TEST(NativeBackend, CountAndVerdictHelpersAgreeWithHost) {
  for (const auto& t : family_instances()) {
    SolveOptions opts;
    opts.backend = Backend::Native;
    const auto c = Solver(opts).count(SolveRequest{Instance::view(t), {}, {}});
    ASSERT_TRUE(c.ok) << c.error;
    EXPECT_EQ(c.path_cover_size, path_cover_size(t));
    EXPECT_EQ(c.hamiltonian_path, has_hamiltonian_path(t));
    EXPECT_EQ(c.hamiltonian_cycle, has_hamiltonian_cycle(t));
    EXPECT_FALSE(c.stats_valid);

    Native ex(Native::Config{1});
    EXPECT_EQ(core::has_hamiltonian_path_exec(ex, t),
              has_hamiltonian_path(t));
    EXPECT_EQ(core::has_hamiltonian_cycle_exec(ex, t),
              has_hamiltonian_cycle(t));
  }
}

TEST(NativeBackend, OrReductionAndScanProbeRunNative) {
  for (const auto& bits :
       {std::vector<std::uint8_t>{0, 0, 0, 0},
        std::vector<std::uint8_t>{0, 0, 1, 0},
        std::vector<std::uint8_t>{1, 1, 1, 1}}) {
    core::OrReductionOptions opt;
    opt.native = true;
    opt.workers = 2;
    const auto res = core::or_via_path_cover(bits, opt);
    const bool expect =
        std::any_of(bits.begin(), bits.end(), [](auto b) { return b != 0; });
    EXPECT_EQ(res.or_value, expect);
  }

  const auto probe = core::probe_scan_native(1 << 12, 2);
  EXPECT_EQ(probe.checksum, (1 << 12) - 1);
  EXPECT_GT(probe.stats.steps, 0u);
  EXPECT_EQ(probe.stats.reads, 0u);  // Native instruments nothing
}

}  // namespace
}  // namespace copath
