// Fuzz-style adversarial parser coverage: random byte mutations of valid
// cotree-algebra text, and raw byte soup, must either parse to a valid
// cotree or throw util::CheckError — never crash, hang, or leak. The CI
// ASan/UBSan job runs this suite with leak detection on, which is where
// the "never leak" half of the contract is enforced; the depth-cap test
// pins the recursive-descent hardening (kMaxParseDepth) that keeps
// adversarial nesting from overflowing the stack. The FuzzCacheFile suite
// extends the same contract to the persistent L2 cache's on-disk files:
// mutated logs and indexes must degrade to misses, never crash or lie.
#include <gtest/gtest.h>

#include <stdlib.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "copath.hpp"
#include "net/protocol.hpp"
#include "service/persist_cache.hpp"
#include "testing.hpp"
#include "util/rng.hpp"

namespace copath {
namespace {

/// Applies `count` random byte edits (replace / insert / delete, full
/// 0..255 byte range so non-ASCII and NULs are covered).
std::string mutate(std::string text, std::size_t count, util::Rng& rng) {
  for (std::size_t m = 0; m < count; ++m) {
    const auto op = rng.below(3);
    const auto byte = static_cast<char>(rng.below(256));
    if (text.empty() || op == 0) {
      text.insert(text.begin() +
                      static_cast<std::ptrdiff_t>(rng.below(text.size() + 1)),
                  byte);
    } else if (op == 1) {
      text[rng.below(text.size())] = byte;
    } else {
      text.erase(text.begin() +
                 static_cast<std::ptrdiff_t>(rng.below(text.size())));
    }
  }
  return text;
}

/// The fuzz oracle: parse either yields a cotree satisfying every
/// structural invariant (validate() re-checks the paper's properties), or
/// throws util::CheckError. Any other outcome — another exception type
/// escapes, a crash, a sanitizer report — fails the run.
void expect_parses_or_rejects(const std::string& text) {
  try {
    const Cotree t = Cotree::parse(text);
    t.validate();
    // A parsed tree must survive the format round trip inside the class.
    EXPECT_EQ(canonical_form(Cotree::parse(t.format())).key,
              canonical_form(t).key);
  } catch (const util::CheckError&) {
    // Structured rejection is the other acceptable outcome.
  }
}

TEST(FuzzParser, MutatedValidAlgebraParsesOrThrowsCheckError) {
  util::Rng rng(20260726);
  for (unsigned trial = 0; trial < 400; ++trial) {
    const Cotree t =
        testing::random_cotree(1 + rng.below(40), 17000 + trial);
    const std::string valid = t.format();
    const std::string text = mutate(valid, 1 + rng.below(8), rng);
    expect_parses_or_rejects(text);
  }
}

TEST(FuzzParser, RawByteSoupParsesOrThrowsCheckError) {
  util::Rng rng(424242);
  // Biased soup: half structural characters so bracket-shaped prefixes are
  // actually reached, half arbitrary bytes.
  const std::string alphabet = "(()))**++ vab\t\n";
  for (unsigned trial = 0; trial < 400; ++trial) {
    std::string text;
    const std::size_t len = rng.below(64);
    for (std::size_t i = 0; i < len; ++i) {
      if (rng.chance(0.5)) {
        text += alphabet[rng.below(alphabet.size())];
      } else {
        text += static_cast<char>(rng.below(256));
      }
    }
    expect_parses_or_rejects(text);
  }
}

// ----------------------------------------------------- binary signatures
//
// The daemon accepts raw CanonicalForm::signature bytes off a socket, so
// the decoder faces attacker-controlled input. Contract: signature_valid
// and decode_signature agree exactly (valid == decodes), a decode yields a
// structurally valid cotree whose re-canonicalization reproduces the input
// bytes bit-for-bit, and malformed bytes produce util::CheckError — never
// a crash, hang, over-allocation, or leak (enforced under ASan/UBSan).

/// The signature oracle: the two entry points must agree, and a decode
/// must produce a valid tree plus a form consistent with re-encoding.
void expect_decodes_or_rejects(const std::string& bytes) {
  std::string why;
  const bool valid = cograph::signature_valid(bytes, &why);
  if (!valid) {
    EXPECT_FALSE(why.empty());
    EXPECT_THROW((void)cograph::decode_signature(bytes), util::CheckError);
    EXPECT_THROW((void)cograph::decode_signature_form(bytes),
                 util::CheckError);
    return;
  }
  const cograph::DecodedSignature dec = cograph::decode_signature(bytes);
  dec.tree.validate();
  // The decoded tree IS the canonical representative of the bytes.
  const auto reform = canonical_form(dec.tree, /*with_algebra_key=*/false);
  EXPECT_EQ(reform.signature, bytes);
  EXPECT_EQ(reform.hash, dec.form.hash);
  // The tree-free form decode agrees with the tree-building one.
  const auto light = cograph::decode_signature_form(bytes);
  EXPECT_EQ(light.signature, dec.form.signature);
  EXPECT_EQ(light.hash, dec.form.hash);
  EXPECT_EQ(light.from_canonical, dec.form.from_canonical);
  // Identity permutations, by the post-order numbering argument.
  for (std::size_t v = 0; v < dec.form.to_canonical.size(); ++v) {
    EXPECT_EQ(dec.form.to_canonical[v], static_cast<cograph::VertexId>(v));
    EXPECT_EQ(dec.form.from_canonical[v],
              static_cast<cograph::VertexId>(v));
  }
}

TEST(FuzzSignature, ValidSignaturesRoundTripWithIdentityPermutations) {
  for (unsigned trial = 0; trial < 120; ++trial) {
    const Cotree t = testing::random_cotree(1 + trial % 60, 31000 + trial);
    const auto form = canonical_form(t, /*with_algebra_key=*/false);
    ASSERT_TRUE(cograph::signature_valid(form.signature));
    expect_decodes_or_rejects(form.signature);
    // Cross-check the hash against the sort-based canonicalizer.
    EXPECT_EQ(cograph::decode_signature_form(form.signature).hash,
              form.hash);
  }
}

TEST(FuzzSignature, MutatedValidSignaturesDecodeOrThrowCheckError) {
  util::Rng rng(20260808);
  for (unsigned trial = 0; trial < 400; ++trial) {
    const Cotree t =
        testing::random_cotree(1 + rng.below(48), 52000 + trial);
    const std::string valid =
        canonical_form(t, /*with_algebra_key=*/false).signature;
    expect_decodes_or_rejects(mutate(valid, 1 + rng.below(6), rng));
  }
}

TEST(FuzzSignature, RawByteSoupDecodesOrThrowsCheckError) {
  util::Rng rng(777);
  for (unsigned trial = 0; trial < 400; ++trial) {
    std::string bytes;
    const std::size_t len = rng.below(96);
    for (std::size_t i = 0; i < len; ++i) {
      // Biased toward the three tag bytes so deep stacks actually build.
      bytes += rng.chance(0.7) ? static_cast<char>(rng.below(3))
                               : static_cast<char>(rng.below(256));
    }
    expect_decodes_or_rejects(bytes);
  }
}

TEST(FuzzSignature, MalformedShapesAreRejectedWithStructuredReasons) {
  using std::string;
  const auto why_of = [](const string& bytes, std::size_t max_nodes =
                                                  cograph::kMaxSignatureNodes) {
    string why;
    EXPECT_FALSE(cograph::signature_valid(bytes, &why, max_nodes));
    return why;
  };
  // Empty stream.
  EXPECT_NE(why_of("").find("empty"), string::npos);
  // Unknown tag byte.
  EXPECT_NE(why_of("\x07").find("unknown tag"), string::npos);
  // Truncated LEB128 arity (join tag, then nothing).
  EXPECT_NE(why_of(string("\x00\x00\x02", 3)).find("truncated"),
            string::npos);
  // Arity < 2.
  EXPECT_NE(why_of(string("\x00\x02\x01", 3)).find("arity < 2"),
            string::npos);
  // Arity exceeding the available subtrees.
  EXPECT_NE(why_of(string("\x00\x00\x02\x03", 4)).find("exceeds"),
            string::npos);
  // Two roots (forest, never reduced).
  EXPECT_NE(why_of(string("\x00\x00", 2)).find("roots"), string::npos);
  // Same-kind child (non-canonical alternation).
  //   leaf leaf join(2) leaf join(2) — join under join.
  EXPECT_NE(
      why_of(string("\x00\x00\x02\x02\x00\x02\x02", 7)).find("same-kind"),
      string::npos);
  // Non-minimal LEB128 (arity 2 encoded in two bytes: 0x82 0x00).
  EXPECT_NE(
      why_of(string("\x00\x00\x02\x82\x00", 5)).find("non-minimal"),
      string::npos);
  // Node-count bomb: a million leaves against a tiny cap must be refused
  // at the cap, cheaply, not after building anything.
  EXPECT_NE(why_of(string(1 << 20, '\x00'), /*max_nodes=*/64)
                .find("node count"),
            string::npos);
  // LEB128 arity far out of range (shift cap).
  EXPECT_NE(
      why_of(string("\x00\x00\x02\xff\xff\xff\xff\xff\x7f", 9))
          .find("out of range"),
      string::npos);
}

TEST(FuzzSignature, ErrorsReportTheFailingBytePosition) {
  std::string why;
  EXPECT_FALSE(cograph::signature_valid(std::string("\x00\x07", 2), &why));
  EXPECT_NE(why.find("at byte 2"), std::string::npos) << why;
}

// ---------------------------------------------------- batch frame bodies
//
// BatchSolve bodies are the newest attacker-reachable surface: a u16 count
// followed by length-prefixed sub-bodies, validated structurally on the
// server's loop thread before anything is dispatched. Contract: a valid
// body round-trips through parse_batch_body; any mutation or byte soup
// either parses (mutations can land on payload bytes and stay
// well-formed) or is rejected with a non-empty structured reason — never
// a crash, hang, or over-allocation.

namespace proto = net::protocol;

/// Builds a syntactically valid batch BODY (the bytes after the options),
/// mixing text and signature items.
std::string valid_batch_body(util::Rng& rng) {
  const std::size_t count = 1 + rng.below(6);
  std::vector<std::string> bodies;
  std::vector<proto::BatchItem> items;
  bodies.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const Cotree t =
        testing::random_cotree(1 + rng.below(12), 61000 + rng.below(4096));
    if (rng.chance(0.5)) {
      bodies.push_back(t.format());
      items.push_back(proto::BatchItem{false, bodies.back()});
    } else {
      bodies.push_back(
          canonical_form(t, /*with_algebra_key=*/false).signature);
      items.push_back(proto::BatchItem{true, bodies.back()});
    }
  }
  std::string frame;
  proto::append_batch_request(frame, /*seq=*/1, proto::WireOptions{}, items);
  std::string payload;
  EXPECT_EQ(proto::extract_frame(frame, &payload), proto::Extract::Frame);
  proto::Request req;
  EXPECT_TRUE(proto::parse_request(payload, &req));
  return std::string(req.body);
}

/// The batch-body oracle: parse accepts with every item in bounds and
/// non-empty, or rejects with a structured reason. Both outcomes must
/// leave the items vector in a deterministic state (cleared on reject).
void expect_batch_parses_or_rejects(const std::string& body) {
  std::vector<proto::BatchItem> items;
  std::string why;
  if (proto::parse_batch_body(body, proto::kMaxBatchItems, &items, &why)) {
    EXPECT_FALSE(items.empty());
    EXPECT_LE(items.size(), proto::kMaxBatchItems);
    for (const proto::BatchItem& item : items) {
      EXPECT_FALSE(item.body.empty());
      // Every view must point inside the body the parser was given.
      EXPECT_GE(item.body.data(), body.data());
      EXPECT_LE(item.body.data() + item.body.size(),
                body.data() + body.size());
    }
  } else {
    EXPECT_FALSE(why.empty());
    EXPECT_TRUE(items.empty());
  }
}

TEST(FuzzBatchFrame, ValidBodiesRoundTrip) {
  util::Rng rng(20260801);
  for (unsigned trial = 0; trial < 120; ++trial) {
    std::vector<proto::BatchItem> items;
    std::string why;
    ASSERT_TRUE(proto::parse_batch_body(valid_batch_body(rng),
                                        proto::kMaxBatchItems, &items,
                                        &why))
        << why;
  }
}

TEST(FuzzBatchFrame, MutatedValidBodiesParseOrRejectStructurally) {
  util::Rng rng(20260802);
  for (unsigned trial = 0; trial < 400; ++trial) {
    expect_batch_parses_or_rejects(
        mutate(valid_batch_body(rng), 1 + rng.below(8), rng));
  }
}

TEST(FuzzBatchFrame, RawByteSoupParsesOrRejectsStructurally) {
  util::Rng rng(20260803);
  for (unsigned trial = 0; trial < 400; ++trial) {
    std::string body;
    const std::size_t len = rng.below(96);
    for (std::size_t i = 0; i < len; ++i) {
      // Biased toward tiny values so counts/kinds/lengths are often
      // plausible and the parser gets past the header.
      body += rng.chance(0.6) ? static_cast<char>(rng.below(4))
                              : static_cast<char>(rng.below(256));
    }
    expect_batch_parses_or_rejects(body);
  }
}

TEST(FuzzBatchFrame, LengthBombsAreRefusedWithoutAllocation) {
  // A count of kMaxBatchItems with a first item claiming a ~4 GiB body:
  // the parser must refuse on bounds, not reserve or read ahead.
  std::string body;
  body += '\xff';
  body += '\x03';  // count = 1023 (little-endian u16)
  body += '\x01';  // kind = text
  body.append(4, '\xff');  // len = 0xffffffff
  body += 'x';
  std::vector<proto::BatchItem> items;
  std::string why;
  EXPECT_FALSE(proto::parse_batch_body(body, proto::kMaxBatchItems, &items,
                                       &why));
  EXPECT_NE(why.find("truncated"), std::string::npos) << why;
}

TEST(FuzzParser, NestingBeyondTheDepthCapIsRejectedNotOverflowed) {
  // A legitimate-looking expression nested past kMaxParseDepth: the parser
  // must throw CheckError at the cap instead of blowing the stack.
  std::string deep;
  for (std::size_t d = 0; d <= cograph::kMaxParseDepth; ++d) {
    deep += d % 2 == 0 ? "(* x " : "(+ x ";
  }
  deep += 'y';
  deep.append(cograph::kMaxParseDepth + 1, ')');
  EXPECT_THROW((void)Cotree::parse(deep), util::CheckError);

  // One level *under* the cap still parses (the cap is not reachable by
  // accident on realistic input).
  std::string ok;
  const std::size_t depth = 200;
  for (std::size_t d = 0; d < depth; ++d) {
    ok += d % 2 == 0 ? "(* x " : "(+ x ";
  }
  ok += 'y';
  ok.append(depth, ')');
  const Cotree t = Cotree::parse(ok);
  t.validate();
  EXPECT_EQ(t.vertex_count(), depth + 1);
}

// ------------------------------------------------------------- L2 files

/// Seeds a persistent-cache directory with a few real records and hands
/// back the keys' instances (keys are rebuilt per probe — canonical_form
/// owns the signature bytes a CacheKeyRef borrows).
std::vector<Cotree> seed_cache_dir(const std::string& dir) {
  service::PersistCache::Config cfg;
  cfg.dir = dir;
  cfg.index_slots = 64;
  service::PersistCache cache(cfg);
  const Solver solver;
  std::vector<Cotree> trees;
  for (unsigned i = 0; i < 3; ++i) {
    trees.push_back(testing::random_cotree(4 + i * 9, 7700 + i));
    const Instance inst = Instance::view(trees.back());
    SolveResult res = solver.solve(inst);
    cache.append(
        service::make_cache_key(inst.canonical(), SolveOptions{}),
        service::to_canonical_space(std::move(res), inst.canonical()));
  }
  return trees;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(FuzzCacheFile, MutatedLogAndIndexNeverCrashAndNeverAnswerWrong) {
  // The fuzz oracle for the persistent tier: arbitrary byte edits to
  // l2.log / l2.idx must leave open + lookup + append working — corrupt
  // records degrade to misses (per-record checksums), never to crashes,
  // hangs, leaks (the ASan/UBSan CI job runs this suite), or wrong
  // answers (a hit must still decode to the exact stored result, which
  // mutation of THAT record's bytes makes checksum-impossible).
  char tmpl[] = "/tmp/copath_fuzz_l2_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;
  const std::vector<Cotree> trees = seed_cache_dir(dir);
  const std::string log_orig = slurp(dir + "/l2.log");
  const std::string idx_orig = slurp(dir + "/l2.idx");
  ASSERT_FALSE(log_orig.empty());
  ASSERT_FALSE(idx_orig.empty());

  util::Rng rng(20260808);
  const Solver solver;
  for (unsigned trial = 0; trial < 60; ++trial) {
    // Mutate one file (or both), sometimes heavily.
    const std::size_t edits = 1 + rng.below(trial % 10 == 0 ? 64 : 8);
    if (rng.chance(0.5)) {
      spit(dir + "/l2.log", mutate(log_orig, edits, rng));
    } else {
      spit(dir + "/l2.log", log_orig);
    }
    if (rng.chance(0.5)) {
      spit(dir + "/l2.idx", mutate(idx_orig, edits, rng));
    } else {
      spit(dir + "/l2.idx", idx_orig);
    }

    service::PersistCache::Config cfg;
    cfg.dir = dir;
    cfg.index_slots = 64;
    service::PersistCache cache(cfg);
    for (const Cotree& t : trees) {
      const Instance inst = Instance::view(t);
      const auto hit = cache.lookup(
          service::make_cache_key(inst.canonical(), SolveOptions{}));
      if (hit != nullptr) {
        // A surviving hit must be the true stored result, bit for bit.
        SolveResult want = solver.solve(inst);
        const SolveResult canon = service::to_canonical_space(
            std::move(want), inst.canonical());
        EXPECT_EQ(hit->cover.paths, canon.cover.paths);
        EXPECT_EQ(hit->optimal_size, canon.optimal_size);
      }
    }
    // Appends must keep working over whatever survived.
    const Cotree extra = testing::random_cotree(11, 90 + trial);
    const Instance inst = Instance::view(extra);
    SolveResult res = solver.solve(inst);
    cache.append(
        service::make_cache_key(inst.canonical(), SolveOptions{}),
        service::to_canonical_space(std::move(res), inst.canonical()));
  }
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

}  // namespace
}  // namespace copath
