// Fuzz-style adversarial parser coverage: random byte mutations of valid
// cotree-algebra text, and raw byte soup, must either parse to a valid
// cotree or throw util::CheckError — never crash, hang, or leak. The CI
// ASan/UBSan job runs this suite with leak detection on, which is where
// the "never leak" half of the contract is enforced; the depth-cap test
// pins the recursive-descent hardening (kMaxParseDepth) that keeps
// adversarial nesting from overflowing the stack.
#include <gtest/gtest.h>

#include <string>

#include "copath.hpp"
#include "testing.hpp"
#include "util/rng.hpp"

namespace copath {
namespace {

/// Applies `count` random byte edits (replace / insert / delete, full
/// 0..255 byte range so non-ASCII and NULs are covered).
std::string mutate(std::string text, std::size_t count, util::Rng& rng) {
  for (std::size_t m = 0; m < count; ++m) {
    const auto op = rng.below(3);
    const auto byte = static_cast<char>(rng.below(256));
    if (text.empty() || op == 0) {
      text.insert(text.begin() +
                      static_cast<std::ptrdiff_t>(rng.below(text.size() + 1)),
                  byte);
    } else if (op == 1) {
      text[rng.below(text.size())] = byte;
    } else {
      text.erase(text.begin() +
                 static_cast<std::ptrdiff_t>(rng.below(text.size())));
    }
  }
  return text;
}

/// The fuzz oracle: parse either yields a cotree satisfying every
/// structural invariant (validate() re-checks the paper's properties), or
/// throws util::CheckError. Any other outcome — another exception type
/// escapes, a crash, a sanitizer report — fails the run.
void expect_parses_or_rejects(const std::string& text) {
  try {
    const Cotree t = Cotree::parse(text);
    t.validate();
    // A parsed tree must survive the format round trip inside the class.
    EXPECT_EQ(canonical_form(Cotree::parse(t.format())).key,
              canonical_form(t).key);
  } catch (const util::CheckError&) {
    // Structured rejection is the other acceptable outcome.
  }
}

TEST(FuzzParser, MutatedValidAlgebraParsesOrThrowsCheckError) {
  util::Rng rng(20260726);
  for (unsigned trial = 0; trial < 400; ++trial) {
    const Cotree t =
        testing::random_cotree(1 + rng.below(40), 17000 + trial);
    const std::string valid = t.format();
    const std::string text = mutate(valid, 1 + rng.below(8), rng);
    expect_parses_or_rejects(text);
  }
}

TEST(FuzzParser, RawByteSoupParsesOrThrowsCheckError) {
  util::Rng rng(424242);
  // Biased soup: half structural characters so bracket-shaped prefixes are
  // actually reached, half arbitrary bytes.
  const std::string alphabet = "(()))**++ vab\t\n";
  for (unsigned trial = 0; trial < 400; ++trial) {
    std::string text;
    const std::size_t len = rng.below(64);
    for (std::size_t i = 0; i < len; ++i) {
      if (rng.chance(0.5)) {
        text += alphabet[rng.below(alphabet.size())];
      } else {
        text += static_cast<char>(rng.below(256));
      }
    }
    expect_parses_or_rejects(text);
  }
}

TEST(FuzzParser, NestingBeyondTheDepthCapIsRejectedNotOverflowed) {
  // A legitimate-looking expression nested past kMaxParseDepth: the parser
  // must throw CheckError at the cap instead of blowing the stack.
  std::string deep;
  for (std::size_t d = 0; d <= cograph::kMaxParseDepth; ++d) {
    deep += d % 2 == 0 ? "(* x " : "(+ x ";
  }
  deep += 'y';
  deep.append(cograph::kMaxParseDepth + 1, ')');
  EXPECT_THROW((void)Cotree::parse(deep), util::CheckError);

  // One level *under* the cap still parses (the cap is not reachable by
  // accident on realistic input).
  std::string ok;
  const std::size_t depth = 200;
  for (std::size_t d = 0; d < depth; ++d) {
    ok += d % 2 == 0 ? "(* x " : "(+ x ";
  }
  ok += 'y';
  ok.append(depth, ')');
  const Cotree t = Cotree::parse(ok);
  t.validate();
  EXPECT_EQ(t.vertex_count(), depth + 1);
}

}  // namespace
}  // namespace copath
