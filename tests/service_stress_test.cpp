// TSan stress suite for copath::Service: many submitter threads hammering
// submit() with a duplicate-heavy workload (few canonical classes, many
// shuffled/relabeled twins), concurrent stats() readers, and submit racing
// shutdown. Functional assertions are deliberately coarse (every future
// resolves, minima match the class) — the point of this suite is to give
// ThreadSanitizer a dense interleaving of queue, cache-shard, in-flight
// map, and promise traffic; the CI tsan job runs it by suite name.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <utility>
#include <vector>

#include "copath.hpp"
#include "testing.hpp"
#include "util/rng.hpp"

namespace copath {
namespace {

TEST(ServiceStress, ManyThreadsDuplicateHeavyHammer) {
  // 6 canonical classes x 4 presentations each; every submitter cycles
  // through all 24, so almost every request has concurrent twins.
  constexpr std::size_t kClasses = 6;
  constexpr std::size_t kVariantsPerClass = 4;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 30;

  std::vector<std::vector<Cotree>> variants(kClasses);
  std::vector<std::int64_t> expected(kClasses);
  util::Rng rng(6161);
  for (std::size_t c = 0; c < kClasses; ++c) {
    const Cotree base =
        testing::random_cotree(8 + c * 11, 550000 + c);
    expected[c] = path_cover_size(base);
    variants[c].push_back(base);
    for (std::size_t v = 1; v < kVariantsPerClass; ++v) {
      variants[c].push_back(testing::random_twin(variants[c][0], rng));
    }
  }

  Service::Options sopts;
  sopts.workers = 4;
  sopts.queue_capacity = 32;  // small enough that backpressure engages
  sopts.cache.shards = 4;
  sopts.cache.capacity = 64;
  Service svc(sopts);

  std::atomic<bool> stop_reader{false};
  std::thread reader([&] {  // concurrent stats() traffic (TSan coverage;
    std::uint64_t sink = 0;  // counters are relaxed, so no ordering claims)
    while (!stop_reader.load()) {
      sink += svc.stats().completed;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    (void)sink;
  });

  std::vector<std::thread> submitters;
  std::atomic<int> failures{0};
  for (int th = 0; th < kThreads; ++th) {
    submitters.emplace_back([&, th] {
      std::vector<std::pair<std::size_t, std::future<SolveResult>>> futs;
      futs.reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) {
        const std::size_t c =
            static_cast<std::size_t>(th + i) % kClasses;
        const std::size_t v =
            static_cast<std::size_t>(i) % kVariantsPerClass;
        std::string label = "t";
        label += std::to_string(th);
        futs.emplace_back(
            c, svc.submit(SolveRequest{Instance::view(variants[c][v]),
                                       {},
                                       std::move(label)}));
      }
      for (auto& [c, fut] : futs) {
        const SolveResult res = fut.get();
        if (!res.ok ||
            static_cast<std::int64_t>(res.cover.size()) != expected[c] ||
            res.optimal_size != expected[c] || !res.minimum) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : submitters) t.join();
  stop_reader.store(true);
  reader.join();

  EXPECT_EQ(failures.load(), 0);
  const auto stats = svc.stats();
  const auto total = static_cast<std::uint64_t>(kThreads * kPerThread);
  EXPECT_EQ(stats.submitted, total);
  EXPECT_EQ(stats.completed, total);
  // Every request performs exactly one cache probe.
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, total);
  EXPECT_LE(stats.coalesced, stats.cache_misses);
  // Duplicate-heavy by construction: the vast majority must be served
  // without recomputation (24 distinct presentations exist; allow slack
  // for first-touch misses and coalescing races).
  EXPECT_GE(stats.cache_hits + stats.coalesced, total - 48);
}

TEST(ServiceStress, SubmitRacesShutdownEveryFutureResolves) {
  for (int round = 0; round < 4; ++round) {
    Service::Options sopts;
    sopts.workers = 2;
    sopts.queue_capacity = 8;
    Service svc(sopts);
    const Cotree t = testing::random_cotree(12, 777);

    std::vector<std::thread> submitters;
    std::atomic<int> resolved{0};
    std::atomic<int> bad{0};
    for (int th = 0; th < 4; ++th) {
      submitters.emplace_back([&] {
        for (int i = 0; i < 25; ++i) {
          auto fut =
              svc.submit(SolveRequest{Instance::view(t), {}, {}});
          const SolveResult res = fut.get();
          resolved.fetch_add(1);
          // Either a real answer or the structured shutdown failure.
          const bool ok_answer = res.ok && res.cover.size() >= 1;
          const bool shut =
              !res.ok && res.error.find("shut down") != std::string::npos;
          if (!ok_answer && !shut) bad.fetch_add(1);
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5 * round));
    svc.shutdown();
    for (auto& th : submitters) th.join();
    EXPECT_EQ(resolved.load(), 100);
    EXPECT_EQ(bad.load(), 0);
  }
}

}  // namespace
}  // namespace copath
