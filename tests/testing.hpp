// The shared property-test harness for the copath suites.
//
// Before this header existed every suite grew its own ad-hoc generators;
// canonicalization and the service layer need *metamorphic* inputs — the
// same cograph presented as a shuffled, relabeled, or re-parsed twin — so
// the generators live here once and every suite draws from the same pool:
//
//  * family sweeps            the classic instances (cliques, stars,
//                             thresholds, the paper's figures) at the two
//                             scales the suites historically used
//  * random_cotree(n, seed)   size-parameterized random instances; shape
//                             knobs (skew, arity) are derived from the seed
//                             so a seed sweep covers shallow/deep/bushy
//                             trees without per-call tuning
//  * random_relabel           an isomorphic twin: vertex ids permuted
//                             uniformly (different graph labels, same
//                             structure)
//  * shuffle_children         a commutative twin: every internal node's
//                             child order permuted (the *same* graph —
//                             + and * are commutative)
//  * random_permutation       the raw ingredient, exposed for tests that
//                             need the permutation itself
//
// Everything is deterministic in the caller-supplied seed/Rng.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <numeric>
#include <vector>

#include "copath.hpp"
#include "util/rng.hpp"

namespace copath::testing {

/// Uniform random permutation of [0, n) (Fisher–Yates).
inline std::vector<cograph::VertexId> random_permutation(std::size_t n,
                                                         util::Rng& rng) {
  std::vector<cograph::VertexId> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  for (std::size_t i = n; i-- > 1;) {
    std::swap(perm[i], perm[rng.below(i + 1)]);
  }
  return perm;
}

/// Rebuilds `t` through CotreeBuilder, optionally permuting vertex ids
/// (`perm`: original id -> new id) and/or visiting every internal node's
/// children in a random order. Names are dropped (twins are anonymous).
inline cograph::Cotree rebuild_cotree(
    const cograph::Cotree& t,
    const std::vector<cograph::VertexId>* perm = nullptr,
    util::Rng* shuffle = nullptr) {
  if (t.size() == 0) return {};
  cograph::CotreeBuilder b;
  const std::function<cograph::NodeId(cograph::NodeId)> rec =
      [&](cograph::NodeId v) -> cograph::NodeId {
    if (t.is_leaf(v)) {
      const cograph::VertexId orig = t.vertex_of(v);
      return b.leaf_with_vertex(
          perm == nullptr ? orig
                          : (*perm)[static_cast<std::size_t>(orig)]);
    }
    std::vector<cograph::NodeId> kids(t.children(v).begin(),
                                      t.children(v).end());
    if (shuffle != nullptr) {
      for (std::size_t i = kids.size(); i-- > 1;) {
        std::swap(kids[i], kids[shuffle->below(i + 1)]);
      }
    }
    std::vector<cograph::NodeId> built;
    built.reserve(kids.size());
    for (const cograph::NodeId c : kids) built.push_back(rec(c));
    return b.node(t.kind(v), built);
  };
  return std::move(b).build(rec(t.root()));
}

/// An isomorphic twin: vertex ids permuted uniformly at random.
inline cograph::Cotree random_relabel(const cograph::Cotree& t,
                                      util::Rng& rng) {
  const auto perm = random_permutation(t.vertex_count(), rng);
  return rebuild_cotree(t, &perm, nullptr);
}

/// A commutative twin: same vertices, every child list shuffled. This is
/// the *same graph* — only the cotree presentation changes.
inline cograph::Cotree shuffle_children(const cograph::Cotree& t,
                                        util::Rng& rng) {
  return rebuild_cotree(t, nullptr, &rng);
}

/// Both at once: shuffled children AND relabeled vertices (the fully
/// adversarial member of the canonical equivalence class).
inline cograph::Cotree random_twin(const cograph::Cotree& t,
                                   util::Rng& rng) {
  const auto perm = random_permutation(t.vertex_count(), rng);
  return rebuild_cotree(t, &perm, &rng);
}

/// Size-parameterized random cotree. Shape knobs are derived from the
/// seed: a seed sweep alone covers balanced and skewed, binary and bushy
/// trees (skew in {0, .25, .5, .75}, mean arity in [2.0, 3.6]).
inline cograph::Cotree random_cotree(std::size_t vertices,
                                     std::uint64_t seed) {
  std::uint64_t s = seed;
  const std::uint64_t d = util::splitmix64(s);
  cograph::RandomCotreeOptions opt;
  opt.seed = seed;
  opt.skew = static_cast<double>(d % 4) * 0.25;
  opt.mean_arity = 2.0 + static_cast<double>((d >> 8) % 5) * 0.4;
  opt.join_root_probability = 0.5;
  return cograph::random_cotree(vertices, opt);
}

/// The small classic-family sweep (historically the solver suite's list;
/// every instance is BruteForce-sized except clique(9) by gating on
/// vertex_count in the caller).
inline std::vector<cograph::Cotree> small_families() {
  std::vector<cograph::Cotree> out;
  out.push_back(cograph::clique(9));
  out.push_back(cograph::independent_set(7));
  out.push_back(cograph::star(8));
  out.push_back(cograph::complete_bipartite(5, 3));
  out.push_back(cograph::complete_multipartite({4, 3, 2}));
  out.push_back(cograph::threshold_graph({1, 0, 1, 1, 0, 0, 1}));
  out.push_back(cograph::caterpillar(13));
  out.push_back(cograph::paper_fig10());
  out.push_back(random_cotree(14, 77));
  return out;
}

/// The larger family sweep (historically the exec suite's list): the same
/// families at stress sizes plus the paper's OR instance and three random
/// shapes.
inline std::vector<cograph::Cotree> large_families() {
  std::vector<cograph::Cotree> out;
  out.push_back(cograph::clique(64));
  out.push_back(cograph::independent_set(41));
  out.push_back(cograph::star(50));
  out.push_back(cograph::complete_bipartite(17, 9));
  out.push_back(cograph::complete_multipartite({9, 7, 5, 3}));
  out.push_back(cograph::threshold_graph(
      {1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0, 0, 1}));
  out.push_back(cograph::caterpillar(83));
  out.push_back(cograph::caterpillar(48, cograph::NodeKind::Union));
  out.push_back(cograph::paper_fig10());
  out.push_back(cograph::or_instance({0, 1, 0, 0, 1, 0}));
  for (const std::uint64_t seed : {7u, 19u, 23u}) {
    out.push_back(random_cotree(60 + static_cast<std::size_t>(seed), seed));
  }
  return out;
}

}  // namespace copath::testing
