// Regenerating the paper's figures (F1..F12 in DESIGN.md): each expository
// figure corresponds to a concrete structure this library can rebuild.
#include <gtest/gtest.h>

#include "cograph/binarize.hpp"
#include "cograph/families.hpp"
#include "core/brackets.hpp"
#include "core/count.hpp"
#include "core/reference.hpp"
#include "core/sequential.hpp"

namespace copath {
namespace {

using cograph::Cotree;
using cograph::NodeKind;

// Fig 1: a cograph and its cotree — parse/format/adjacency round trip.
TEST(Figures, Fig1CographAndCotree) {
  const Cotree t = Cotree::parse("(* (+ a b) (+ c (* d e)))");
  t.validate();
  const cograph::Graph g = cograph::Graph::from_cotree(t);
  // LCA(d, e) is a join: edge; LCA(a, b) is a union: no edge.
  EXPECT_TRUE(g.has_edge(3, 4));
  EXPECT_FALSE(g.has_edge(0, 1));
}

// Fig 2: the lower-bound cotree for bits 0,0,0,0,0,1,0,1.
TEST(Figures, Fig2LowerBoundInstance) {
  const std::vector<std::uint8_t> bits{0, 0, 0, 0, 0, 1, 0, 1};
  const Cotree t = cograph::or_instance(bits);
  // Root R is a 0-node; its 1-node child u holds y, z and the two 1-bits.
  EXPECT_EQ(t.kind(t.root()), NodeKind::Union);
  // R's children: u, x, and the six 0-bit leaves.
  EXPECT_EQ(t.child_count(t.root()), 8u);
  // k = 2 ones: cover size n - k + 2 = 8, and the path through y has
  // k + 2 = 4 vertices.
  EXPECT_EQ(core::path_cover_size(t), 8);
  const core::PathCover c = core::min_path_cover_sequential(t);
  std::size_t longest = 0;
  for (const auto& p : c.paths) longest = std::max(longest, p.size());
  EXPECT_EQ(longest, 4u);
}

// Fig 3: binarization replaces a k-ary node by a left-deep comb.
TEST(Figures, Fig3Binarization) {
  const Cotree t = Cotree::parse("(+ a b c d e)");
  const auto bc = cograph::binarize(t);
  EXPECT_EQ(bc.size(), 2 * 5 - 1);
  // The root of the comb has depth-(k-2) left spine.
  std::size_t spine = 0;
  std::int32_t v = bc.tree.root;
  while (v != -1 && bc.tree.left[static_cast<std::size_t>(v)] != -1) {
    ++spine;
    v = bc.tree.left[static_cast<std::size_t>(v)];
  }
  EXPECT_EQ(spine, 4u);  // k - 1 internal nodes along the left spine
}

// Fig 4, Case 1: p(v) > L(w) — bridges merge L(w)+1 paths.
TEST(Figures, Fig4Case1Bridging) {
  // join(independent 6, independent 2): p(v)=6 > L(w)=2 -> 4 paths.
  const Cotree t = Cotree::parse("(* (+ a b c d e f) (+ x y))");
  EXPECT_EQ(core::path_cover_size(t), 4);
  const auto c = core::min_path_cover_sequential(t);
  EXPECT_TRUE(core::validate_path_cover(t, c).ok);
}

// Fig 4/8, Case 2: p(v) <= L(w) — Hamiltonian path via bridges + inserts.
TEST(Figures, Fig4Case2Insertion) {
  const Cotree t = Cotree::parse("(* (+ a b c) (+ x y z w))");
  EXPECT_EQ(core::path_cover_size(t), 1);
}

// Fig 5: the reduced cotree — bridge/insert classification.
TEST(Figures, Fig5ReducedCotreeRoles) {
  auto bc = cograph::binarize(cograph::paper_fig10());
  const auto L = cograph::make_leftist(bc);
  const auto p = core::path_counts_host(bc, L);
  const auto bs = core::generate_brackets_host(bc, L, p);
  std::size_t bridges = 0, inserts = 0, primaries = 0;
  for (std::size_t id = 0; id < bs.real_count; ++id) {
    bridges += bs.role[id] == core::Role::Bridge;
    inserts += bs.role[id] == core::Role::Insert;
    primaries += bs.role[id] == core::Role::Primary;
  }
  EXPECT_EQ(primaries, 2u);  // a, c
  EXPECT_EQ(bridges, 1u);    // d
  EXPECT_EQ(inserts, 3u);    // b, e, f
}

// Figs 6-9 + 10: path trees via brackets; inorder of the tree is the path.
TEST(Figures, Fig10BracketsToPath) {
  core::ReferenceTrace trace;
  const auto c =
      core::min_path_cover_reference(cograph::paper_fig10(), &trace);
  ASSERT_EQ(c.paths.size(), 1u);
  EXPECT_EQ(c.paths[0].size(), 6u);
  EXPECT_TRUE(core::validate_path_cover(cograph::paper_fig10(), c).ok);
}

// Figs 11-12: dummy vertices — exactly 2 p(v) - 2 per Case-2 1-node.
TEST(Figures, Fig11DummyBudget) {
  // join(union of 3 edges, 5 singles): the left side keeps L(v)=6 >= 5
  // under the leftist reorder, with p(v) = 3 <= L(w) = 5 -> Case 2 with
  // 2 p(v) - 2 = 4 dummies.
  const Cotree t =
      Cotree::parse("(* (+ (* a b) (* c d) (* e f)) (+ v w x y z))");
  auto bc = cograph::binarize(t);
  const auto L = cograph::make_leftist(bc);
  const auto p = core::path_counts_host(bc, L);
  const auto bs = core::generate_brackets_host(bc, L, p);
  EXPECT_EQ(bs.dummy_count, 2u * 3 - 2);
}

TEST(Figures, AsciiRenderingOfFig1) {
  const Cotree t = Cotree::parse("(* (+ a b) c)");
  const std::string art = t.to_ascii();
  EXPECT_NE(art.find("1 (join)"), std::string::npos);
}

}  // namespace
}  // namespace copath
