// cograph::canonical_form — the soundness surface the memo cache stands
// on. Metamorphic identity: every member of an instance's equivalence
// class (shuffled children, relabeled leaves, re-parsed text) produces the
// identical canonical key and hash. Discrimination: non-isomorphic family
// pairs produce distinct keys. Isomorphism: the leaf permutations are
// mutually inverse and `from_canonical` maps canonical adjacency onto the
// original graph's adjacency exactly.
#include <gtest/gtest.h>

#include "copath.hpp"
#include "testing.hpp"
#include "util/rng.hpp"

namespace copath {
namespace {

TEST(Canonical, EmptyAndSingletonForms) {
  const auto empty = canonical_form(Cotree{});
  EXPECT_EQ(empty.key, "()");
  EXPECT_TRUE(empty.to_canonical.empty());

  const auto leaf = canonical_form(Cotree::parse("x"));
  EXPECT_EQ(leaf.key, "v");
  ASSERT_EQ(leaf.to_canonical.size(), 1u);
  EXPECT_EQ(leaf.to_canonical[0], 0);
  EXPECT_EQ(leaf.from_canonical[0], 0);
  EXPECT_NE(leaf.hash, empty.hash);
}

TEST(Canonical, MetamorphicTwinsShareKeyAndHash) {
  util::Rng rng(11);
  for (int trial = 0; trial < 60; ++trial) {
    const Cotree t =
        testing::random_cotree(1 + rng.below(80), 5000 + trial);
    const auto base = canonical_form(t);

    // The two permutations are mutually inverse bijections.
    ASSERT_EQ(base.to_canonical.size(), t.vertex_count());
    ASSERT_EQ(base.from_canonical.size(), t.vertex_count());
    for (std::size_t v = 0; v < t.vertex_count(); ++v) {
      const auto slot = base.to_canonical[v];
      ASSERT_GE(slot, 0);
      ASSERT_LT(static_cast<std::size_t>(slot), t.vertex_count());
      EXPECT_EQ(base.from_canonical[static_cast<std::size_t>(slot)],
                static_cast<VertexId>(v));
    }

    util::Rng twin_rng(900 + trial);
    const Cotree shuffled = testing::shuffle_children(t, twin_rng);
    const Cotree relabeled = testing::random_relabel(t, twin_rng);
    const Cotree both = testing::random_twin(t, twin_rng);
    const Cotree reparsed = Cotree::parse(t.format());
    for (const Cotree* twin : {&shuffled, &relabeled, &both, &reparsed}) {
      const auto f = canonical_form(*twin);
      EXPECT_EQ(f.key, base.key) << "trial " << trial;
      EXPECT_EQ(f.hash, base.hash) << "trial " << trial;
    }

    // Idempotence: the canonical key *is* a cotree expression, and its
    // canonical form is itself.
    const auto again = canonical_form(Cotree::parse(base.key));
    EXPECT_EQ(again.key, base.key);
    EXPECT_EQ(again.hash, base.hash);
  }
}

TEST(Canonical, NonIsomorphicFamilyPairsAreDistinct) {
  std::vector<Cotree> fams = testing::small_families();
  // A few near-miss pairs on top of the classic list.
  fams.push_back(cograph::complete_bipartite(4, 4));
  fams.push_back(cograph::complete_bipartite(2, 6));
  fams.push_back(cograph::threshold_graph({1, 0, 1}));
  fams.push_back(cograph::threshold_graph({0, 1, 1}));
  std::vector<CanonicalForm> forms;
  forms.reserve(fams.size());
  for (const auto& t : fams) forms.push_back(canonical_form(t));
  for (std::size_t i = 0; i < forms.size(); ++i) {
    for (std::size_t j = i + 1; j < forms.size(); ++j) {
      EXPECT_NE(forms[i].key, forms[j].key) << i << " vs " << j;
      EXPECT_NE(forms[i].hash, forms[j].hash) << i << " vs " << j;
    }
  }
}

TEST(Canonical, ComplementChangesTheClass) {
  // K_{3,3} and its complement (two disjoint triangles) are not
  // isomorphic; the canonical form must separate them.
  const Cotree t = cograph::complete_bipartite(3, 3);
  EXPECT_NE(canonical_form(t).key, canonical_form(t.complement()).key);
}

TEST(Canonical, FromCanonicalIsAGraphIsomorphism) {
  util::Rng rng(23);
  for (int trial = 0; trial < 20; ++trial) {
    const Cotree t =
        testing::random_cotree(2 + rng.below(28), 7100 + trial);
    const auto form = canonical_form(t);
    // The canonical key is itself a cotree expression: parse it to get the
    // canonical representative and compare adjacency through the map.
    const Cotree canon = Cotree::parse(form.key);
    ASSERT_EQ(canon.vertex_count(), t.vertex_count());
    const cograph::CotreeAdjacency orig(t);
    const cograph::CotreeAdjacency mapped(canon);
    const auto n = t.vertex_count();
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = a + 1; b < n; ++b) {
        EXPECT_EQ(mapped.adjacent(static_cast<VertexId>(a),
                                  static_cast<VertexId>(b)),
                  orig.adjacent(form.from_canonical[a],
                                form.from_canonical[b]))
            << "trial " << trial << " slots " << a << "," << b;
      }
    }
  }
}

TEST(Canonical, InstanceExposesTheFormLazilyAndShared) {
  const Instance a = Instance::text("(* (+ a b) (+ c d e))");
  const Instance c = Instance::text("(* (+ e d c) (+ b a))");
  // Instance::canonical() is the hot serving form: binary signature and
  // hash, no algebra key (canonical_form(t) builds that one).
  EXPECT_EQ(a.canonical().signature, c.canonical().signature);
  EXPECT_EQ(a.canonical().hash, c.canonical().hash);
  EXPECT_TRUE(a.canonical().key.empty());
  // Copies share the materialized form.
  const Instance a2 = a;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_EQ(&a2.canonical(), &a.canonical());

  const Instance empty;
  EXPECT_THROW((void)empty.canonical(), util::CheckError);
  const Instance bad = Instance::text("(* oops");
  EXPECT_THROW((void)bad.canonical(), util::CheckError);
  // The error repeats instead of poisoning the shared cache.
  EXPECT_THROW((void)bad.canonical(), util::CheckError);
}

}  // namespace
}  // namespace copath
