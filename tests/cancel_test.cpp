// Cooperative cancellation (util/cancel.hpp) and its solver plumbing:
// CancelToken semantics (first trip wins, deadline self-trip, heartbeat
// stamping, canonical error strings), SolveOptions::cancel end to end
// through every backend (a pre-tripped token unwinds into a structured
// Cancelled result, never a throw), the armed-but-untripped differential
// (attaching a token must not perturb answers), and the Service-level
// watchdog/deadline surface (watchdog_cancels, mid-solve deadline trips).
//
// Suite names start with Cancel / Watchdog so the CI TSan job picks the
// whole file up with its suite regex.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "copath.hpp"
#include "testing.hpp"
#include "util/cancel.hpp"
#include "util/clock.hpp"
#include "util/fault.hpp"

namespace copath {
namespace {

// ------------------------------------------------------------ CancelToken

TEST(CancelToken, StartsDisarmedAndUntripped) {
  util::CancelToken tok;
  EXPECT_FALSE(tok.cancelled());
  EXPECT_EQ(tok.reason(), util::CancelToken::Reason::kNone);
  EXPECT_EQ(tok.deadline_at_ms(), 0u);
  EXPECT_EQ(tok.last_beat_ms(), 0u);
  EXPECT_FALSE(tok.poll());
  EXPECT_NO_THROW(tok.checkpoint());
}

TEST(CancelToken, FirstTripWinsOverLaterReasons) {
  util::CancelToken tok;
  tok.cancel(util::CancelToken::Reason::kDeadline);
  EXPECT_TRUE(tok.cancelled());
  EXPECT_EQ(tok.reason(), util::CancelToken::Reason::kDeadline);
  // A later explicit cancel must not rewrite the recorded reason: the
  // first cause is the one the client gets told about.
  tok.cancel(util::CancelToken::Reason::kCancelled);
  EXPECT_EQ(tok.reason(), util::CancelToken::Reason::kDeadline);
}

TEST(CancelToken, PollStampsTheHeartbeat) {
  util::CancelToken tok;
  const std::uint64_t before = util::steady_now_ms();
  EXPECT_FALSE(tok.poll());
  const std::uint64_t beat = tok.last_beat_ms();
  EXPECT_GE(beat, before);
  EXPECT_LE(beat, util::steady_now_ms());
}

TEST(CancelToken, PollSelfTripsOnceTheDeadlinePasses) {
  util::CancelToken tok;
  tok.set_deadline(util::steady_now_ms() + std::uint64_t{60} * 60 * 1000);
  EXPECT_FALSE(tok.poll());  // an hour out: not yet
  tok.set_deadline(1);       // the distant past
  EXPECT_TRUE(tok.poll());
  EXPECT_EQ(tok.reason(), util::CancelToken::Reason::kDeadline);
  // Disarming after the trip does not untrip — trips are permanent.
  tok.set_deadline(0);
  EXPECT_TRUE(tok.cancelled());
}

TEST(CancelToken, CheckpointThrowsTheCanonicalMessage) {
  {
    util::CancelToken tok;
    tok.cancel(util::CancelToken::Reason::kCancelled);
    EXPECT_THROW(
        {
          try {
            tok.checkpoint();
          } catch (const util::CancelledError& e) {
            EXPECT_STREQ(e.what(), util::kCancelledMsg);
            throw;
          }
        },
        util::CancelledError);
  }
  {
    util::CancelToken tok;
    tok.set_deadline(1);
    EXPECT_THROW(
        {
          try {
            tok.checkpoint();
          } catch (const util::CancelledError& e) {
            EXPECT_STREQ(e.what(), util::kDeadlineMsg);
            throw;
          }
        },
        util::CancelledError);
  }
}

TEST(CancelToken, ConcurrentTripsAgreeOnOneReason) {
  // Many threads race cancel() with both reasons; afterwards exactly one
  // reason is recorded and every observer agrees on it.
  util::CancelToken tok;
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&tok, i] {
      tok.cancel(i % 2 == 0 ? util::CancelToken::Reason::kCancelled
                            : util::CancelToken::Reason::kDeadline);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_TRUE(tok.cancelled());
  const auto reason = tok.reason();
  EXPECT_TRUE(reason == util::CancelToken::Reason::kCancelled ||
              reason == util::CancelToken::Reason::kDeadline);
}

// --------------------------------------------------- Solver-level unwind

/// Every backend checks the token once before solving (a pre-tripped
/// token never does work); Native and Adaptive additionally checkpoint
/// at each pipeline stage boundary, which is where mid-solve trips land.
std::vector<Backend> cancel_backends() {
  return {Backend::Sequential, Backend::Parallel, Backend::Native,
          Backend::Adaptive};
}

TEST(CancelSolve, PreTrippedTokenAnswersCancelledNotAThrow) {
  const Cotree t = testing::random_cotree(300, 4242);
  for (Backend b : cancel_backends()) {
    util::CancelToken tok;
    tok.cancel(util::CancelToken::Reason::kCancelled);
    SolveOptions opts;
    opts.backend = b;
    opts.cancel = &tok;
    const Solver solver(opts);
    const SolveResult res = solver.solve(Instance::view(t));
    EXPECT_FALSE(res.ok) << core::to_string(b);
    EXPECT_EQ(res.error, util::kCancelledMsg) << core::to_string(b);
  }
}

TEST(CancelSolve, ExpiredDeadlineAnswersDeadlineExceeded) {
  const Cotree t = testing::random_cotree(300, 4243);
  for (Backend b : cancel_backends()) {
    util::CancelToken tok;
    tok.set_deadline(1);  // long past; first checkpoint self-trips
    SolveOptions opts;
    opts.backend = b;
    opts.cancel = &tok;
    const Solver solver(opts);
    const SolveResult res = solver.solve(Instance::view(t));
    EXPECT_FALSE(res.ok) << core::to_string(b);
    EXPECT_EQ(res.error, util::kDeadlineMsg) << core::to_string(b);
    EXPECT_EQ(tok.reason(), util::CancelToken::Reason::kDeadline);
  }
}

TEST(CancelSolve, ArmedButUntrippedTokenChangesNothing) {
  // The differential: the same instances solved with no token and with an
  // armed-but-never-tripped token (far-future deadline, so every poll
  // does real work) must produce identical structured results.
  for (unsigned i = 0; i < 6; ++i) {
    const Cotree t = testing::random_cotree(40 + i * 90, 9100 + i);
    SolveOptions plain;
    plain.backend = Backend::Native;
    const SolveResult want = Solver(plain).solve(Instance::view(t));
    ASSERT_TRUE(want.ok) << want.error;

    util::CancelToken tok;
    tok.set_deadline(util::steady_now_ms() + std::uint64_t{10} * 60 * 1000);
    SolveOptions armed = plain;
    armed.cancel = &tok;
    const SolveResult got = Solver(armed).solve(Instance::view(t));
    ASSERT_TRUE(got.ok) << got.error;

    EXPECT_EQ(got.cover.paths, want.cover.paths) << "instance " << i;
    EXPECT_EQ(got.optimal_size, want.optimal_size) << "instance " << i;
    EXPECT_EQ(got.minimum, want.minimum) << "instance " << i;
    EXPECT_EQ(got.hamiltonian_path, want.hamiltonian_path)
        << "instance " << i;
    EXPECT_EQ(got.hamiltonian_cycle, want.hamiltonian_cycle)
        << "instance " << i;
    EXPECT_EQ(got.validation.ok, want.validation.ok) << "instance " << i;
    // The solve beat the heartbeat at least once (checkpoints ran), yet
    // the token never tripped.
    EXPECT_GT(tok.last_beat_ms(), 0u) << "instance " << i;
    EXPECT_FALSE(tok.cancelled()) << "instance " << i;
  }
}

TEST(CancelSolve, BatchMembersAfterATripAreCancelledToo) {
  // solve_batch shares one coordinator: once the token trips, remaining
  // members answer structurally instead of burning CPU.
  util::CancelToken tok;
  std::vector<Cotree> trees;
  std::vector<SolveRequest> reqs;
  for (unsigned i = 0; i < 4; ++i) {
    trees.push_back(testing::random_cotree(200, 7300 + i));
  }
  SolveOptions opts;
  opts.backend = Backend::Native;
  opts.cancel = &tok;
  for (const auto& t : trees) {
    SolveRequest r;
    r.instance = Instance::view(t);
    r.options = opts;
    reqs.push_back(std::move(r));
  }
  tok.cancel(util::CancelToken::Reason::kCancelled);
  Solver solver(opts);
  const auto results = solver.solve_batch(reqs);
  ASSERT_EQ(results.size(), reqs.size());
  for (const auto& res : results) {
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(res.error, util::kCancelledMsg);
  }
}

// ------------------------------------------------------ Service watchdog

TEST(WatchdogService, DeadlineTripsMidSolveNotJustAtAdmission) {
  // A solve that is already RUNNING when its deadline passes must still
  // come back DeadlineExceeded: admission-time shedding alone cannot do
  // this — the mid-flight trip is the tentpole behavior.
  util::FaultInjector::instance().disarm_all();
  Service::Options sopts;
  sopts.workers = 1;
  sopts.use_cache = false;
  sopts.use_express = false;
  sopts.solve.backend = Backend::Native;
  Service svc(sopts);
  const Cotree t = testing::random_cotree(600, 31007);
  SolveRequest req;
  req.instance = Instance::view(t);
  req.deadline_ms = 1;  // expires while queued or mid-solve
  auto fut = svc.submit(std::move(req));
  const SolveResult res = fut.get();
  // Either the queue shed it (still DeadlineExceeded) or the solve was
  // entered and tripped at a checkpoint; both are the same structured
  // answer.
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.error, kErrDeadlineExceeded);
  svc.drain();
}

TEST(WatchdogService, SilentWorkerIsTrippedWithinTheInterval) {
  // solve.stall makes the worker sit without heartbeating; the supervisor
  // must trip its token within ~one watchdog interval and the request
  // must answer structurally (the thread is never killed).
  util::FaultInjector::instance().disarm_all();
  Service::Options sopts;
  sopts.workers = 1;
  sopts.use_cache = false;
  sopts.use_express = false;
  sopts.watchdog_ms = 50;
  sopts.solve.backend = Backend::Native;
  Service svc(sopts);
  util::FaultInjector::instance().arm("solve.stall", 1.0, 1);

  const auto t0 = util::steady_now_ms();
  SolveRequest req;
  req.instance = Instance::text("(* (+ a b) (+ c d))");
  auto fut = svc.submit(std::move(req));
  const SolveResult res = fut.get();
  const auto waited = util::steady_now_ms() - t0;
  util::FaultInjector::instance().disarm_all();

  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.error, kErrCancelled);
  // Generous bound (sanitizer builds are slow), but far below the 5s
  // stall cap: proves the watchdog freed the worker, not the stall timer.
  EXPECT_LT(waited, 3000u);
  const auto stats = svc.stats();
  EXPECT_GE(stats.watchdog_cancels, 1u);
  EXPECT_GE(stats.cancelled, 1u);

  // The freed worker keeps serving: the next request succeeds.
  SolveRequest next;
  next.instance = Instance::text("(* a b c)");
  const SolveResult after = svc.submit(std::move(next)).get();
  EXPECT_TRUE(after.ok) << after.error;
  svc.drain();
}

TEST(WatchdogService, BeatingSolvesAreNeverTripped) {
  // A healthy (heartbeating) solve under a tight watchdog must complete
  // normally — the watchdog watches silence, not latency.
  util::FaultInjector::instance().disarm_all();
  Service::Options sopts;
  sopts.workers = 2;
  sopts.use_cache = false;
  sopts.use_express = false;  // keep solves on the checkpointed pipeline
  sopts.watchdog_ms = 40;
  sopts.solve.backend = Backend::Native;
  Service svc(sopts);
  std::vector<std::future<SolveResult>> futs;
  std::vector<Cotree> trees;
  for (unsigned i = 0; i < 8; ++i) {
    trees.push_back(testing::random_cotree(500 + i * 40, 6200 + i));
  }
  for (const auto& t : trees) {
    SolveRequest req;
    req.instance = Instance::view(t);
    futs.push_back(svc.submit(std::move(req)));
  }
  for (auto& f : futs) {
    const SolveResult res = f.get();
    EXPECT_TRUE(res.ok) << res.error;
  }
  EXPECT_EQ(svc.stats().watchdog_cancels, 0u);
  svc.drain();
}

}  // namespace
}  // namespace copath
