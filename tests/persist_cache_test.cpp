// The persistent L2 result cache (service/persist_cache.hpp): OptionsKey
// byte-stability (the 24 raw key bytes ARE the on-disk format), write /
// lookup / reopen round trips through the record codec, crash-safety
// (torn tails, bit flips, garbage headers, lost indexes — every corruption
// degrades to a cold miss, never to a crash or a wrong answer), and the
// multi-process contract: two Services over one cache directory serve
// permuted twins written by the other instance bitwise-identical to their
// own RAM-warm hits, plus the copathd admin surface (l2_* Stats counters,
// the CacheCompact verb, and the L1 clear()-resets-counters regression).
//
// Every suite name starts with PersistCache so the CI TSan job picks the
// whole file up with one regex token.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "copath.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "service/persist_cache.hpp"
#include "testing.hpp"
#include "util/rng.hpp"

namespace copath {
namespace {

namespace proto = net::protocol;

/// A fresh cache directory under TMPDIR, recursively removed on exit.
struct TempDir {
  TempDir() {
    std::string tmpl = (std::filesystem::temp_directory_path() /
                        "copath_l2_XXXXXX")
                           .string();
    char* made = ::mkdtemp(tmpl.data());
    EXPECT_NE(made, nullptr);
    path = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  [[nodiscard]] std::string file(const char* name) const {
    return path + "/" + name;
  }
  std::string path;
};

std::string read_file(const std::string& p) {
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in.good()) << p;
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

void write_file(const std::string& p, const std::string& bytes) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  EXPECT_TRUE(out.good()) << p;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

service::PersistCache::Config small_cfg(const std::string& dir) {
  service::PersistCache::Config cfg;
  cfg.dir = dir;
  cfg.index_slots = 256;
  return cfg;
}

/// A real canonical-space result for `t` (what Service::process stores).
SolveResult canonical_result(const Cotree& t, const SolveOptions& opts) {
  const Instance inst = Instance::view(t);
  const Solver solver(opts);
  SolveResult res = solver.solve(inst);
  EXPECT_TRUE(res.ok) << res.error;
  return service::to_canonical_space(std::move(res),
                                     inst.canonical());
}

/// Field-by-field equality over everything the record codec carries —
/// the "bitwise identical" acceptance check for disk round trips.
void expect_result_exact(const SolveResult& got, const SolveResult& want,
                         const std::string& what) {
  ASSERT_EQ(got.ok, want.ok) << what << ": " << got.error;
  EXPECT_EQ(got.error, want.error) << what;
  EXPECT_EQ(got.label, want.label) << what;
  EXPECT_EQ(got.backend, want.backend) << what;
  EXPECT_EQ(got.routed, want.routed) << what;
  EXPECT_EQ(got.vertex_count, want.vertex_count) << what;
  EXPECT_EQ(got.cover.paths, want.cover.paths) << what;
  EXPECT_EQ(got.optimal_size, want.optimal_size) << what;
  EXPECT_EQ(got.minimum, want.minimum) << what;
  EXPECT_EQ(got.hamiltonian_path, want.hamiltonian_path) << what;
  EXPECT_EQ(got.hamiltonian_cycle, want.hamiltonian_cycle) << what;
  EXPECT_EQ(got.cycle, want.cycle) << what;
  ASSERT_EQ(got.stats_valid, want.stats_valid) << what;
  if (want.stats_valid) {
    EXPECT_EQ(got.stats.steps, want.stats.steps) << what;
    EXPECT_EQ(got.stats.work, want.stats.work) << what;
    EXPECT_EQ(got.stats.max_processors, want.stats.max_processors) << what;
    EXPECT_EQ(got.stats.reads, want.stats.reads) << what;
    EXPECT_EQ(got.stats.writes, want.stats.writes) << what;
    EXPECT_EQ(got.stats.cells, want.stats.cells) << what;
  }
  ASSERT_EQ(got.trace_valid, want.trace_valid) << what;
  if (want.trace_valid) {
    EXPECT_EQ(got.trace.bracket_length, want.trace.bracket_length) << what;
    EXPECT_EQ(got.trace.dummy_count, want.trace.dummy_count) << what;
    EXPECT_EQ(got.trace.repair_rounds, want.trace.repair_rounds) << what;
    EXPECT_EQ(got.trace.path_count, want.trace.path_count) << what;
    EXPECT_EQ(got.trace.stages, want.trace.stages) << what;
  }
  EXPECT_EQ(got.validation.ok, want.validation.ok) << what;
  EXPECT_EQ(got.validation.error, want.validation.error) << what;
}

std::uint64_t counter(const proto::Response& resp, std::string_view key) {
  for (const auto& [k, v] : resp.stats) {
    if (k == key) return v;
  }
  ADD_FAILURE() << "counter not in response: " << key;
  return 0;
}

// ---------------------------------------------------------- OptionsKey

TEST(PersistCacheOptionsKey, PadBytesAreZeroEvenOnDirtyMemory) {
  // OptionsKey is memcmp'd and hashed from raw bytes (and memcmp'd
  // straight out of mmap'd records), so two keys built from equivalent
  // SolveOptions must be byte-identical even when the destination memory
  // was dirty. options_key() memsets before filling; the explicit `pad`
  // member makes the tail representation-unique.
  SolveOptions opts;
  opts.want_hamiltonian_cycle = true;
  opts.processors = 7;

  alignas(service::OptionsKey) unsigned char a[sizeof(service::OptionsKey)];
  alignas(service::OptionsKey) unsigned char b[sizeof(service::OptionsKey)];
  std::memset(a, 0xFF, sizeof(a));
  std::memset(b, 0xA5, sizeof(b));
  auto* ka = new (a) service::OptionsKey(service::options_key(opts));
  auto* kb = new (b) service::OptionsKey(service::options_key(opts));
  EXPECT_EQ(std::memcmp(ka, kb, sizeof(service::OptionsKey)), 0);
  // The four explicit pad bytes sit at the end of the 24-byte layout and
  // must read back zero through the raw-byte view.
  const auto* raw = reinterpret_cast<const unsigned char*>(ka);
  for (std::size_t i = sizeof(service::OptionsKey) - 4;
       i < sizeof(service::OptionsKey); ++i) {
    EXPECT_EQ(raw[i], 0u) << "pad byte " << i;
  }
  ka->~OptionsKey();
  kb->~OptionsKey();
}

TEST(PersistCacheOptionsKey, KeyBytesRoundTripThroughTheL2RecordFormat) {
  // Two keys sharing a signature but differing only in options must land
  // in — and be found from — distinct on-disk records: the 24 raw key
  // bytes embedded in each record are the discriminator.
  TempDir dir;
  service::PersistCache cache(small_cfg(dir.path));

  const Cotree t = cograph::clique(12);  // Hamiltonian: the two options
                                         // provably differ in output
  const auto form = canonical_form(t);
  SolveOptions plain;
  SolveOptions cycle;
  cycle.want_hamiltonian_cycle = true;

  const SolveResult plain_res = canonical_result(t, plain);
  const SolveResult cycle_res = canonical_result(t, cycle);
  ASSERT_NE(plain_res.cycle.has_value(), cycle_res.cycle.has_value());

  cache.append(service::make_cache_key(form, plain), plain_res);
  cache.append(service::make_cache_key(form, cycle), cycle_res);

  const auto got_plain = cache.lookup(service::make_cache_key(form, plain));
  const auto got_cycle = cache.lookup(service::make_cache_key(form, cycle));
  ASSERT_NE(got_plain, nullptr);
  ASSERT_NE(got_cycle, nullptr);
  expect_result_exact(*got_plain, plain_res, "plain options");
  expect_result_exact(*got_cycle, cycle_res, "cycle options");
}

// ------------------------------------------------------------ Unit tier

TEST(PersistCache, MissAppendHitAndReopenHitAreExact) {
  TempDir dir;
  const Cotree t = testing::random_cotree(40, 7001);
  const auto form = canonical_form(t);
  const SolveOptions opts;
  const SolveResult canon = canonical_result(t, opts);

  {
    service::PersistCache cache(small_cfg(dir.path));
    EXPECT_EQ(cache.lookup(service::make_cache_key(form, opts)), nullptr);
    cache.append(service::make_cache_key(form, opts), canon);
    const auto hit = cache.lookup(service::make_cache_key(form, opts));
    ASSERT_NE(hit, nullptr);
    expect_result_exact(*hit, canon, "same-process hit");
    const auto s = cache.stats();
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.appends, 1u);
    EXPECT_EQ(s.records, 1u);
  }
  // A fresh instance over the same directory — the restart case — must
  // serve the identical bytes.
  service::PersistCache reopened(small_cfg(dir.path));
  EXPECT_EQ(reopened.stats().records, 1u);
  const auto hit = reopened.lookup(service::make_cache_key(form, opts));
  ASSERT_NE(hit, nullptr);
  expect_result_exact(*hit, canon, "reopen hit");

  // Different result-affecting options: a clean miss, not a collision.
  SolveOptions other;
  other.want_hamiltonian_cycle = true;
  EXPECT_EQ(reopened.lookup(service::make_cache_key(form, other)), nullptr);
}

TEST(PersistCache, AppendDeduplicatesAgainstDisk) {
  TempDir dir;
  service::PersistCache cache(small_cfg(dir.path));
  const Cotree t = testing::random_cotree(16, 88);
  const auto form = canonical_form(t);
  const SolveOptions opts;
  const SolveResult canon = canonical_result(t, opts);

  cache.append(service::make_cache_key(form, opts), canon);
  const std::uint64_t bytes_after_first = cache.stats().log_bytes;
  cache.append(service::make_cache_key(form, opts), canon);
  const auto s = cache.stats();
  EXPECT_EQ(s.appends, 1u);
  EXPECT_EQ(s.append_dups, 1u);
  EXPECT_EQ(s.records, 1u);
  EXPECT_EQ(s.log_bytes, bytes_after_first);  // nothing written twice
}

TEST(PersistCache, CompactKeepsEveryLiveRecordReachable) {
  TempDir dir;
  service::PersistCache cache(small_cfg(dir.path));
  const SolveOptions opts;
  std::vector<Cotree> trees;
  std::vector<SolveResult> canons;
  for (unsigned i = 0; i < 6; ++i) {
    trees.push_back(testing::random_cotree(4 + i * 7, 5100 + i));
    canons.push_back(canonical_result(trees.back(), opts));
    cache.append(
        service::make_cache_key(canonical_form(trees[i]), opts),
        canons.back());
  }

  const auto report = cache.compact();
  EXPECT_EQ(report.live_records, 6u);
  EXPECT_EQ(report.dropped_records, 0u);
  EXPECT_GT(report.bytes_after, 0u);
  EXPECT_EQ(cache.stats().compactions, 1u);

  for (unsigned i = 0; i < trees.size(); ++i) {
    const auto form = canonical_form(trees[i]);
    const auto hit = cache.lookup(service::make_cache_key(form, opts));
    ASSERT_NE(hit, nullptr) << "record " << i << " lost by compaction";
    expect_result_exact(*hit, canons[i], "post-compact record");
  }

  // A second process-equivalent opened AFTER compaction reads the new
  // generation directly.
  service::PersistCache fresh(small_cfg(dir.path));
  EXPECT_EQ(fresh.stats().records, 6u);
}

TEST(PersistCache, CompactionHonorsTheCapDroppingColdestFirst) {
  // The LRU half of compaction: when the live records alone exceed
  // max_log_bytes, the coldest (oldest last-access stamp) go first and
  // recently-touched keys survive. Lookups re-stamp records in place, so
  // "recently touched" is a property of reads, not writes.
  TempDir dir;
  const SolveOptions opts;
  std::vector<Cotree> trees;
  std::vector<SolveResult> canons;
  std::uint64_t full_bytes = 0;
  {
    service::PersistCache cache(small_cfg(dir.path));  // default (huge) cap
    for (unsigned i = 0; i < 8; ++i) {
      trees.push_back(testing::random_cotree(24 + i, 6400 + i));
      canons.push_back(canonical_result(trees.back(), opts));
      cache.append(service::make_cache_key(canonical_form(trees[i]), opts),
                   canons.back());
    }
    full_bytes = cache.stats().log_bytes;

    // Cross a wall-clock second so the touches below get a NEWER stamp
    // than the appends (the stamp is second-granular).
    const auto start = std::time(nullptr);
    while (std::time(nullptr) == start) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    for (unsigned i : {2u, 5u, 7u}) {
      ASSERT_NE(cache.lookup(
                    service::make_cache_key(canonical_form(trees[i]), opts)),
                nullptr);
    }
  }

  // Reopen with a cap that cannot hold all 8: compaction must evict, and
  // must pick the untouched (colder) records.
  service::PersistCache::Config tight = small_cfg(dir.path);
  tight.max_log_bytes = full_bytes / 2;
  service::PersistCache cache(tight);
  const auto report = cache.compact();
  EXPECT_GT(report.lru_dropped, 0u);
  EXPECT_GE(report.dropped_records, report.lru_dropped);
  EXPECT_LE(report.bytes_after, tight.max_log_bytes);
  EXPECT_LT(report.bytes_after, report.bytes_before);

  // Every touched key survived; the evicted ones degrade to clean misses.
  for (unsigned i : {2u, 5u, 7u}) {
    const auto hit = cache.lookup(
        service::make_cache_key(canonical_form(trees[i]), opts));
    ASSERT_NE(hit, nullptr) << "touched record " << i << " evicted";
    expect_result_exact(*hit, canons[i], "LRU survivor");
  }
  std::size_t evicted = 0;
  for (unsigned i : {0u, 1u, 3u, 4u, 6u}) {
    if (cache.lookup(service::make_cache_key(canonical_form(trees[i]),
                                             opts)) == nullptr) {
      ++evicted;
    }
  }
  EXPECT_EQ(evicted, report.lru_dropped);
  EXPECT_GE(evicted, 1u);
}

TEST(PersistCache, LookupRestampsSurviveTheRecordChecksum) {
  // The re-stamp is a 4-byte in-place write OUTSIDE the checksummed
  // payload: a touched record must still verify and decode exactly.
  TempDir dir;
  service::PersistCache cache(small_cfg(dir.path));
  const Cotree t = testing::random_cotree(30, 6500);
  const auto form = canonical_form(t);
  const SolveOptions opts;
  const SolveResult canon = canonical_result(t, opts);
  cache.append(service::make_cache_key(form, opts), canon);
  for (int i = 0; i < 3; ++i) {
    const auto hit = cache.lookup(service::make_cache_key(form, opts));
    ASSERT_NE(hit, nullptr) << "restamp corrupted the record, pass " << i;
    expect_result_exact(*hit, canon, "restamped record");
  }
  // And a fresh process (fresh open-time scan) still accepts the log.
  service::PersistCache reopened(small_cfg(dir.path));
  EXPECT_EQ(reopened.stats().records, 1u);
  EXPECT_EQ(reopened.stats().corrupt_dropped, 0u);
  EXPECT_NE(reopened.lookup(service::make_cache_key(form, opts)), nullptr);
}

// --------------------------------------------------------- Crash safety

TEST(PersistCacheCrash, TruncatedTailDegradesToMissNeverCrashes) {
  TempDir dir;
  const SolveOptions opts;
  std::vector<Cotree> trees;
  for (unsigned i = 0; i < 3; ++i) {
    trees.push_back(testing::random_cotree(10 + i * 9, 9200 + i));
  }
  {
    service::PersistCache cache(small_cfg(dir.path));
    for (const auto& t : trees) {
      cache.append(service::make_cache_key(canonical_form(t), opts),
                   canonical_result(t, opts));
    }
  }
  // Chop bytes off the last record — the kill-during-write shape.
  const auto log = dir.file("l2.log");
  const auto size = std::filesystem::file_size(log);
  std::filesystem::resize_file(log, size - 7);

  service::PersistCache cache(small_cfg(dir.path));
  EXPECT_GE(cache.stats().corrupt_dropped, 1u);
  EXPECT_EQ(cache.stats().records, 2u);
  // The surviving prefix still serves; the torn record is a miss.
  for (unsigned i = 0; i < 2; ++i) {
    EXPECT_NE(cache.lookup(service::make_cache_key(canonical_form(trees[i]),
                                                   opts)),
              nullptr)
        << i;
  }
  const auto torn_form = canonical_form(trees[2]);
  EXPECT_EQ(cache.lookup(service::make_cache_key(torn_form, opts)), nullptr);
  // And the cache heals: re-appending the torn key overwrites the tail.
  cache.append(service::make_cache_key(torn_form, opts),
               canonical_result(trees[2], opts));
  EXPECT_NE(cache.lookup(service::make_cache_key(torn_form, opts)), nullptr);
}

TEST(PersistCacheCrash, BitFlippedRecordFailsItsChecksumAndMisses) {
  TempDir dir;
  const Cotree t = testing::random_cotree(24, 4100);
  const auto form = canonical_form(t);
  const SolveOptions opts;
  const SolveResult canon = canonical_result(t, opts);
  {
    service::PersistCache cache(small_cfg(dir.path));
    cache.append(service::make_cache_key(form, opts), canon);
  }
  // Flip one payload byte past the record header (offset 16 file header +
  // 16 record header + a few payload bytes in).
  const auto log = dir.file("l2.log");
  std::string bytes = read_file(log);
  ASSERT_GT(bytes.size(), 40u);
  bytes[38] = static_cast<char>(bytes[38] ^ 0x10);
  write_file(log, bytes);

  service::PersistCache cache(small_cfg(dir.path));
  EXPECT_EQ(cache.lookup(service::make_cache_key(form, opts)), nullptr);
  EXPECT_GE(cache.stats().corrupt_dropped, 1u);
  // Appending the same key again restores service.
  cache.append(service::make_cache_key(form, opts), canon);
  const auto hit = cache.lookup(service::make_cache_key(form, opts));
  ASSERT_NE(hit, nullptr);
  expect_result_exact(*hit, canon, "healed after bit flip");
}

TEST(PersistCacheCrash, GarbageLogHeaderResetsToColdNotWrong) {
  TempDir dir;
  const Cotree t = testing::random_cotree(15, 66);
  const auto form = canonical_form(t);
  const SolveOptions opts;
  {
    service::PersistCache cache(small_cfg(dir.path));
    cache.append(service::make_cache_key(form, opts),
                 canonical_result(t, opts));
  }
  std::string bytes = read_file(dir.file("l2.log"));
  for (std::size_t i = 0; i < 16 && i < bytes.size(); ++i) {
    bytes[i] = static_cast<char>(0xDB);
  }
  write_file(dir.file("l2.log"), bytes);

  service::PersistCache cache(small_cfg(dir.path));
  EXPECT_EQ(cache.stats().records, 0u);  // reset to empty — cold, not wrong
  EXPECT_EQ(cache.lookup(service::make_cache_key(form, opts)), nullptr);
  cache.append(service::make_cache_key(form, opts),
               canonical_result(t, opts));
  EXPECT_NE(cache.lookup(service::make_cache_key(form, opts)), nullptr);
}

TEST(PersistCacheCrash, CorruptOrMissingIndexIsRebuiltFromTheLog) {
  TempDir dir;
  const SolveOptions opts;
  std::vector<Cotree> trees;
  for (unsigned i = 0; i < 4; ++i) {
    trees.push_back(testing::random_cotree(6 + i * 11, 3300 + i));
  }
  {
    service::PersistCache cache(small_cfg(dir.path));
    for (const auto& t : trees) {
      cache.append(service::make_cache_key(canonical_form(t), opts),
                   canonical_result(t, opts));
    }
  }
  // Garbage index: every lookup must still hit (rebuilt from the log).
  write_file(dir.file("l2.idx"), std::string(777, '\x5A'));
  {
    service::PersistCache cache(small_cfg(dir.path));
    for (const auto& t : trees) {
      EXPECT_NE(
          cache.lookup(service::make_cache_key(canonical_form(t), opts)),
          nullptr);
    }
  }
  // Deleted index: same story.
  std::filesystem::remove(dir.file("l2.idx"));
  service::PersistCache cache(small_cfg(dir.path));
  for (const auto& t : trees) {
    EXPECT_NE(
        cache.lookup(service::make_cache_key(canonical_form(t), opts)),
        nullptr);
  }
}

TEST(PersistCacheCrash, TornTailFromAKilledAppendIsOverwrittenInPlace) {
  TempDir dir;
  const Cotree t = testing::random_cotree(20, 12);
  const auto form = canonical_form(t);
  const SolveOptions opts;
  {
    service::PersistCache cache(small_cfg(dir.path));
    cache.append(service::make_cache_key(form, opts),
                 canonical_result(t, opts));
  }
  // Simulate a process killed mid-append: a record header promising more
  // payload than was ever written, followed by a few garbage bytes.
  const auto log = dir.file("l2.log");
  std::string bytes = read_file(log);
  const std::size_t valid_end = bytes.size();
  std::string torn(16, '\0');
  torn[0] = '\x40';  // payload_len = 64, but only 5 payload bytes follow
  torn += "abcde";
  write_file(log, bytes + torn);

  service::PersistCache cache(small_cfg(dir.path));
  EXPECT_GE(cache.stats().corrupt_dropped, 1u);
  EXPECT_EQ(cache.stats().log_bytes, valid_end);  // prefix ends before torn
  EXPECT_NE(cache.lookup(service::make_cache_key(form, opts)), nullptr);

  // The next append lands ON the torn bytes (the log never shrinks, it
  // overwrites), and the new record is immediately servable.
  const Cotree u = testing::random_cotree(9, 13);
  const auto uform = canonical_form(u);
  cache.append(service::make_cache_key(uform, opts),
               canonical_result(u, opts));
  EXPECT_NE(cache.lookup(service::make_cache_key(uform, opts)), nullptr);
  EXPECT_GT(cache.stats().log_bytes, valid_end);
  EXPECT_LE(std::filesystem::file_size(log),
            valid_end + torn.size() + cache.stats().log_bytes);
}

// ------------------------------------------------- Multi-process sharing

void expect_equal_core(const SolveResult& got, const SolveResult& want,
                       const std::string& what) {
  ASSERT_EQ(got.ok, want.ok) << what << ": " << got.error;
  EXPECT_EQ(got.backend, want.backend) << what;
  EXPECT_EQ(got.vertex_count, want.vertex_count) << what;
  EXPECT_EQ(got.cover.paths, want.cover.paths) << what;
  EXPECT_EQ(got.optimal_size, want.optimal_size) << what;
  EXPECT_EQ(got.minimum, want.minimum) << what;
  EXPECT_EQ(got.hamiltonian_path, want.hamiltonian_path) << what;
  EXPECT_EQ(got.hamiltonian_cycle, want.hamiltonian_cycle) << what;
  EXPECT_EQ(got.cycle, want.cycle) << what;
}

TEST(PersistCacheSharing, TwoServicesOneDirMatchUncachedAndEachOther) {
  // The acceptance differential: Service A and Service B share one cache
  // directory (two PersistCache instances, the real file-lock protocol —
  // flock is per open-file-description, so even in-process these two
  // genuinely exclude each other). Every cold solve must match the
  // uncached Solver bitwise; every permuted twin served by B from a file
  // WRITTEN BY A must be bitwise-identical to A's own RAM-warm answer for
  // that twin, and a valid minimum cover of the twin.
  TempDir dir;
  util::Rng rng(2026'08'08);
  Service::Options sopts;
  sopts.workers = 2;
  sopts.persist.dir = dir.path;
  Service a(sopts);
  Service b(sopts);
  const Solver uncached(sopts.solve);

  for (unsigned i = 0; i < 20; ++i) {
    const Cotree base = testing::random_cotree(2 + (i * 13) % 80, 777 + i);
    const Cotree twin = testing::random_twin(base, rng);

    // Cold solve through A == uncached Solver, bitwise.
    const SolveResult ra =
        a.submit(SolveRequest{Instance::view(base), {}, {}}).get();
    const SolveResult ref = uncached.solve(Instance::view(base));
    expect_equal_core(ra, ref, "cold A vs uncached");

    // B has a cold L1 — its first sight of the twin can only be served
    // from the file A just wrote. A's own twin answer is a RAM-warm L1
    // hit. Disk-warm must equal RAM-warm bitwise.
    const SolveResult bt =
        b.submit(SolveRequest{Instance::view(twin), {}, {}}).get();
    const SolveResult at =
        a.submit(SolveRequest{Instance::view(twin), {}, {}}).get();
    expect_equal_core(bt, at, "disk-warm B vs RAM-warm A");
    const auto report = validate_path_cover(twin, bt.cover,
                                            /*require_minimum=*/true);
    EXPECT_TRUE(report.ok) << i << ": " << report.error;
  }

  const auto astats = a.stats();
  const auto bstats = b.stats();
  EXPECT_TRUE(astats.persist_enabled);
  EXPECT_GE(astats.persist.appends, 20u);
  EXPECT_GE(bstats.persist.hits, 20u);       // every twin came off disk
  EXPECT_GE(bstats.persist_promotions, 20u);  // ...and was promoted to L1
}

TEST(PersistCacheSharing, RestartServesDiskWarmIdenticalToFirstRun) {
  TempDir dir;
  Service::Options sopts;
  sopts.workers = 2;
  sopts.persist.dir = dir.path;
  std::vector<Cotree> trees;
  for (unsigned i = 0; i < 12; ++i) {
    trees.push_back(testing::random_cotree(3 + i * 6, 6040 + i));
  }

  std::vector<SolveResult> first;
  {
    Service svc(sopts);
    for (const auto& t : trees) {
      first.push_back(
          svc.submit(SolveRequest{Instance::view(t), {}, {}}).get());
      ASSERT_TRUE(first.back().ok) << first.back().error;
    }
    EXPECT_GE(svc.stats().persist.appends, trees.size());
  }  // "restart": the first Service (and its RAM cache) is gone

  Service svc(sopts);
  for (std::size_t i = 0; i < trees.size(); ++i) {
    const SolveResult again =
        svc.submit(SolveRequest{Instance::view(trees[i]), {}, {}}).get();
    expect_equal_core(again, first[i], "disk-warm restart");
  }
  const auto s = svc.stats();
  EXPECT_GE(s.persist.hits, trees.size());
  EXPECT_GE(s.persist_promotions, trees.size());
  EXPECT_EQ(s.persist.appends, 0u);  // nothing re-solved, nothing written
}

// ------------------------------------------------------- Daemon surface

TEST(PersistCacheDaemon, StatsCompactAndCounterResetOverTheWire) {
  TempDir dir;
  net::Server::Options opts;
  opts.port = 0;
  opts.service.workers = 2;
  opts.service.persist.dir = dir.path;
  auto server = std::make_unique<net::Server>(std::move(opts));
  std::thread loop([&server] { server->run(); });

  {
    net::Client cli("127.0.0.1", server->port());
    const std::string text = testing::random_cotree(30, 505).format();

    // Cold solve writes through to disk; warm solve hits L1.
    ASSERT_EQ(cli.solve_text(text).status, proto::Status::Ok);
    ASSERT_EQ(cli.solve_text(text).status, proto::Status::Ok);
    proto::Response st = cli.stats();
    ASSERT_EQ(st.status, proto::Status::Ok);
    EXPECT_EQ(counter(st, "l2_enabled"), 1u);
    EXPECT_GE(counter(st, "l2_appends"), 1u);
    EXPECT_GE(counter(st, "cache_hits"), 1u);
    EXPECT_GE(counter(st, "cache_misses"), 1u);

    // CacheCompact clears+resets L1 and compacts the disk tier.
    const proto::Response comp = cli.compact();
    ASSERT_EQ(comp.status, proto::Status::Ok);
    EXPECT_EQ(comp.verb, proto::Verb::CacheCompact);
    EXPECT_GE(counter(comp, "l1_dropped"), 1u);
    EXPECT_EQ(counter(comp, "l2_enabled"), 1u);
    EXPECT_GE(counter(comp, "l2_live_records"), 1u);

    // The clear() regression: L1 counters must RESET, not survive the
    // clear (hits/misses describe the current cache epoch).
    st = cli.stats();
    EXPECT_EQ(counter(st, "cache_hits"), 0u);
    EXPECT_EQ(counter(st, "cache_misses"), 0u);
    EXPECT_GE(counter(st, "l2_compactions"), 1u);

    // With L1 empty the same instance is now served from the compacted
    // persistent tier — and promoted back.
    ASSERT_EQ(cli.solve_text(text).status, proto::Status::Ok);
    st = cli.stats();
    EXPECT_GE(counter(st, "l2_hits"), 1u);
    EXPECT_GE(counter(st, "l2_promotions"), 1u);
  }

  server->request_drain();
  loop.join();
}

TEST(PersistCacheDaemon, RestartOverTheWireServesDiskWarmBitwiseEqual) {
  // The in-process restart differential (RestartServesDiskWarmIdentical-
  // ToFirstRun), extended to the wire path: daemon A populates the cache
  // directory over TCP and drains cleanly; daemon B on the SAME directory
  // must serve every instance disk-warm — identical wire results, l2 hits,
  // zero re-appends.
  TempDir dir;
  std::vector<std::string> texts;
  for (unsigned i = 0; i < 10; ++i) {
    texts.push_back(testing::random_cotree(3 + i * 7, 8100 + i).format());
  }
  const auto serve = [&dir] {
    net::Server::Options opts;
    opts.port = 0;
    opts.service.workers = 2;
    opts.service.persist.dir = dir.path;
    return std::make_unique<net::Server>(std::move(opts));
  };
  const auto expect_wire_equal = [](const proto::WireResult& got,
                                    const proto::WireResult& want,
                                    unsigned i) {
    EXPECT_EQ(got.vertex_count, want.vertex_count) << i;
    EXPECT_EQ(got.optimal_size, want.optimal_size) << i;
    EXPECT_EQ(got.minimum, want.minimum) << i;
    EXPECT_EQ(got.hamiltonian_path, want.hamiltonian_path) << i;
    EXPECT_EQ(got.hamiltonian_cycle, want.hamiltonian_cycle) << i;
    EXPECT_EQ(got.paths, want.paths) << i;
  };

  std::vector<proto::Response> first;
  {
    auto server = serve();
    std::thread loop([&server] { server->run(); });
    {
      net::Client cli("127.0.0.1", server->port());
      for (const auto& t : texts) {
        first.push_back(cli.solve_text(t));
        ASSERT_EQ(first.back().status, proto::Status::Ok)
            << first.back().error;
      }
      const proto::Response st = cli.stats();
      EXPECT_GE(counter(st, "l2_appends"), texts.size());
    }
    server->request_drain();
    loop.join();
  }  // daemon A is gone; only the cache directory survives

  auto server = serve();
  std::thread loop([&server] { server->run(); });
  {
    net::Client cli("127.0.0.1", server->port());
    for (std::size_t i = 0; i < texts.size(); ++i) {
      const proto::Response again = cli.solve_text(texts[i]);
      ASSERT_EQ(again.status, proto::Status::Ok) << again.error;
      expect_wire_equal(again.result, first[i].result,
                        static_cast<unsigned>(i));
    }
    const proto::Response st = cli.stats();
    EXPECT_GE(counter(st, "l2_hits"), texts.size());
    EXPECT_GE(counter(st, "l2_promotions"), texts.size());
    EXPECT_EQ(counter(st, "l2_appends"), 0u);  // nothing recomputed
  }
  server->request_drain();
  loop.join();
}

}  // namespace
}  // namespace copath
