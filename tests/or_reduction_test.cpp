// Theorem 2.2's reduction: OR of n bits answered through path cover
// counting, with the O(1)-step construction the paper requires.
#include <gtest/gtest.h>

#include "core/or_reduction.hpp"
#include "util/rng.hpp"

namespace copath::core {
namespace {

using pram::Machine;
using pram::Policy;

TEST(OrReduction, AllZeroIsFalse) {
  Machine m({Policy::EREW, 1, 0});
  const auto res = or_via_path_cover(m, std::vector<std::uint8_t>(16, 0));
  EXPECT_FALSE(res.or_value);
  EXPECT_EQ(res.path_cover_size, 16 + 2);
}

TEST(OrReduction, SingleOneIsTrue) {
  for (std::size_t pos = 0; pos < 8; ++pos) {
    std::vector<std::uint8_t> bits(8, 0);
    bits[pos] = 1;
    Machine m({Policy::EREW, 1, 0});
    const auto res = or_via_path_cover(m, bits);
    EXPECT_TRUE(res.or_value) << "pos=" << pos;
    EXPECT_EQ(res.path_cover_size, 7 + 2);
  }
}

TEST(OrReduction, CountFormulaMatchesPaper) {
  // k ones => path containing y has k + 2 vertices and the cover has
  // n - k + 2 paths (paper §2).
  for (std::size_t k = 0; k <= 12; ++k) {
    std::vector<std::uint8_t> bits(12, 0);
    for (std::size_t i = 0; i < k; ++i) bits[i] = 1;
    Machine m({Policy::EREW, 1, 0});
    const auto res = or_via_path_cover(m, bits);
    EXPECT_EQ(res.path_cover_size, static_cast<std::int64_t>(12 - k) + 2);
    EXPECT_EQ(res.or_value, k > 0);
  }
}

TEST(OrReduction, RandomAgainstDirectOr) {
  util::Rng rng(44);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 1 + rng.below(64);
    std::vector<std::uint8_t> bits(n);
    bool want = false;
    for (auto& b : bits) {
      b = rng.chance(0.1) ? 1 : 0;
      want |= b != 0;
    }
    Machine m({Policy::EREW, 1, 0});
    EXPECT_EQ(or_via_path_cover(m, bits).or_value, want);
  }
}

TEST(OrReduction, ConstructionIsConstantSteps) {
  // The paper's reduction builds T(G) in O(1) time with n processors; with
  // maximum parallelism the construction must take exactly one step
  // regardless of n.
  for (const std::size_t n : {8u, 256u, 4096u}) {
    Machine m({Policy::EREW, 1, 0});  // one processor per element
    const auto res = or_via_path_cover(m, std::vector<std::uint8_t>(n, 1));
    EXPECT_EQ(res.construction_steps, 1u) << "n=" << n;
    EXPECT_GT(res.count_steps, 0u);
  }
}

TEST(OrReduction, CountStepsScaleLogarithmically) {
  std::uint64_t prev = 0;
  for (const std::size_t logn : {8u, 10u, 12u}) {
    const std::size_t n = std::size_t{1} << logn;
    Machine m({Policy::EREW, 1, std::max<std::size_t>(1, n / logn)});
    const auto res = or_via_path_cover(m, std::vector<std::uint8_t>(n, 0));
    if (prev != 0) EXPECT_LT(res.count_steps, prev * 2);
    prev = res.count_steps;
  }
}

}  // namespace
}  // namespace copath::core
