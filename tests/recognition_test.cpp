// Cograph recognition: cotree -> graph -> cotree round trips, P4
// detection, and agreement with the brute-force P4-freeness test.
#include <gtest/gtest.h>

#include "cograph/families.hpp"
#include "cograph/recognition.hpp"
#include "util/rng.hpp"

namespace copath::cograph {
namespace {

bool graphs_equal(const Graph& a, const Graph& b) {
  if (a.vertex_count() != b.vertex_count()) return false;
  const auto n = static_cast<VertexId>(a.vertex_count());
  for (VertexId u = 0; u < n; ++u)
    for (VertexId v = u + 1; v < n; ++v)
      if (a.has_edge(u, v) != b.has_edge(u, v)) return false;
  return true;
}

bool has_induced_p4(const Graph& g) {
  const auto n = static_cast<VertexId>(g.vertex_count());
  for (VertexId a = 0; a < n; ++a)
    for (VertexId b = 0; b < n; ++b)
      for (VertexId c = 0; c < n; ++c)
        for (VertexId d = 0; d < n; ++d) {
          if (a == b || a == c || a == d || b == c || b == d || c == d)
            continue;
          if (g.has_edge(a, b) && g.has_edge(b, c) && g.has_edge(c, d) &&
              !g.has_edge(a, c) && !g.has_edge(a, d) && !g.has_edge(b, d))
            return true;
        }
  return false;
}

TEST(Recognition, RoundTripsRandomCotrees) {
  util::Rng rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    RandomCotreeOptions opt;
    opt.seed = 8800 + static_cast<unsigned>(trial);
    const Cotree t = random_cotree(1 + rng.below(50), opt);
    const Graph g = Graph::from_cotree(t);
    const RecognitionResult res = recognize_cograph(g);
    ASSERT_TRUE(res.is_cograph()) << "trial " << trial;
    EXPECT_TRUE(graphs_equal(g, Graph::from_cotree(*res.cotree)));
  }
}

TEST(Recognition, P4IsRejectedWithWitness) {
  Graph p4(4);
  p4.add_edge(0, 1);
  p4.add_edge(1, 2);
  p4.add_edge(2, 3);
  p4.finalize();
  const RecognitionResult res = recognize_cograph(p4);
  EXPECT_FALSE(res.is_cograph());
  ASSERT_EQ(res.p4_witness.size(), 4u);
  const auto& w = res.p4_witness;
  EXPECT_TRUE(p4.has_edge(w[0], w[1]));
  EXPECT_TRUE(p4.has_edge(w[1], w[2]));
  EXPECT_TRUE(p4.has_edge(w[2], w[3]));
  EXPECT_FALSE(p4.has_edge(w[0], w[2]));
  EXPECT_FALSE(p4.has_edge(w[0], w[3]));
  EXPECT_FALSE(p4.has_edge(w[1], w[3]));
}

TEST(Recognition, C5IsRejected) {
  Graph c5(5);
  for (VertexId v = 0; v < 5; ++v) c5.add_edge(v, (v + 1) % 5);
  c5.finalize();
  EXPECT_FALSE(recognize_cograph(c5).is_cograph());
}

TEST(Recognition, AgreesWithBruteForceOnRandomGraphs) {
  util::Rng rng(55);
  int cographs = 0;
  for (int trial = 0; trial < 120; ++trial) {
    const std::size_t n = 1 + rng.below(8);
    Graph g(n);
    const double p = rng.uniform();
    for (VertexId u = 0; u < static_cast<VertexId>(n); ++u)
      for (VertexId v = u + 1; v < static_cast<VertexId>(n); ++v)
        if (rng.chance(p)) g.add_edge(u, v);
    g.finalize();
    const bool want = !has_induced_p4(g);
    const RecognitionResult res = recognize_cograph(g);
    ASSERT_EQ(res.is_cograph(), want) << "trial " << trial;
    if (want) {
      ++cographs;
      EXPECT_TRUE(graphs_equal(g, Graph::from_cotree(*res.cotree)));
    }
  }
  EXPECT_GT(cographs, 10);  // the sweep must actually exercise both sides
}

TEST(Recognition, EmptyAndSingleton) {
  EXPECT_TRUE(recognize_cograph(Graph(0)).is_cograph());
  const RecognitionResult res = recognize_cograph(Graph(1));
  ASSERT_TRUE(res.is_cograph());
  EXPECT_EQ(res.cotree->vertex_count(), 1u);
}

TEST(Recognition, DisconnectedCliques) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  g.add_edge(3, 5);
  g.finalize();
  const RecognitionResult res = recognize_cograph(g);
  ASSERT_TRUE(res.is_cograph());
  EXPECT_EQ(res.cotree->kind(res.cotree->root()), NodeKind::Union);
  EXPECT_EQ(res.cotree->child_count(res.cotree->root()), 2u);
}

}  // namespace
}  // namespace copath::cograph
