// Lemma 2.3: the sequential O(n) algorithm — validity, minimality, and
// agreement with the exact brute force.
#include <gtest/gtest.h>

#include "baseline/brute_force.hpp"
#include "cograph/families.hpp"
#include "core/count.hpp"
#include "core/sequential.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace copath::core {
namespace {

using cograph::Cotree;
using cograph::RandomCotreeOptions;

void expect_valid_minimum(const Cotree& t, const PathCover& cover) {
  const ValidationReport rep = validate_path_cover(t, cover, true);
  ASSERT_TRUE(rep.ok) << rep.error << " on " << t.format();
}

TEST(Sequential, SingleVertex) {
  const PathCover c = min_path_cover_sequential(Cotree::parse("a"));
  ASSERT_EQ(c.paths.size(), 1u);
  EXPECT_EQ(c.paths[0], std::vector<VertexId>{0});
}

TEST(Sequential, CliqueGivesHamiltonianPath) {
  const PathCover c = min_path_cover_sequential(cograph::clique(8));
  EXPECT_TRUE(c.is_hamiltonian_path());
  expect_valid_minimum(cograph::clique(8), c);
}

TEST(Sequential, IndependentSetGivesSingletons) {
  const PathCover c =
      min_path_cover_sequential(cograph::independent_set(7));
  EXPECT_EQ(c.paths.size(), 7u);
  for (const auto& p : c.paths) EXPECT_EQ(p.size(), 1u);
}

TEST(Sequential, RandomSweepIsValidAndMinimum) {
  util::Rng rng(808);
  for (int trial = 0; trial < 150; ++trial) {
    RandomCotreeOptions opt;
    opt.seed = 50000 + static_cast<unsigned>(trial);
    opt.skew = (trial % 4) * 0.3;
    opt.mean_arity = 2.0 + (trial % 3) * 0.9;
    const Cotree t = cograph::random_cotree(1 + rng.below(120), opt);
    expect_valid_minimum(t, min_path_cover_sequential(t));
  }
}

TEST(Sequential, MatchesBruteForcePathCount) {
  util::Rng rng(909);
  for (int trial = 0; trial < 120; ++trial) {
    RandomCotreeOptions opt;
    opt.seed = 60000 + static_cast<unsigned>(trial);
    const Cotree t = cograph::random_cotree(1 + rng.below(10), opt);
    const cograph::Graph g = cograph::Graph::from_cotree(t);
    const PathCover c = min_path_cover_sequential(t);
    EXPECT_EQ(static_cast<std::int64_t>(c.paths.size()),
              baseline::min_path_cover_size_exact(g));
  }
}

TEST(Sequential, FamiliesAreHandled) {
  for (const auto& t :
       {cograph::star(6), cograph::complete_bipartite(5, 2),
        cograph::complete_multipartite({3, 3, 2}),
        cograph::threshold_graph({1, 0, 1, 0, 1}),
        cograph::caterpillar(23, cograph::NodeKind::Join),
        cograph::caterpillar(24, cograph::NodeKind::Union),
        cograph::paper_fig10()}) {
    expect_valid_minimum(t, min_path_cover_sequential(t));
  }
}

TEST(Sequential, DeepCaterpillarRunsWithoutRecursionIssues) {
  const Cotree t = cograph::caterpillar(200000);
  const PathCover c = min_path_cover_sequential(t);
  EXPECT_EQ(static_cast<std::int64_t>(c.paths.size()), path_cover_size(t));
  EXPECT_EQ(c.vertex_total(), 200000u);
}

TEST(Sequential, LinearTimeScaling) {
  // ns/vertex should not grow with n (sanity check on the O(n) claim; kept
  // loose to stay robust on slow CI machines).
  RandomCotreeOptions opt;
  opt.seed = 5;
  const Cotree small = cograph::random_cotree(1 << 12, opt);
  const Cotree big = cograph::random_cotree(1 << 16, opt);
  util::WallTimer t1;
  (void)min_path_cover_sequential(small);
  const double per_small = t1.nanos() / (1 << 12);
  util::WallTimer t2;
  (void)min_path_cover_sequential(big);
  const double per_big = t2.nanos() / (1 << 16);
  EXPECT_LT(per_big, 20 * per_small + 1e4);
}

TEST(Validator, CatchesBadCovers) {
  const Cotree t = Cotree::parse("(+ (* a b) c)");
  // Missing vertex.
  EXPECT_FALSE(validate_path_cover(t, PathCover{{{0, 1}}}, false).ok);
  // Duplicate vertex.
  EXPECT_FALSE(
      validate_path_cover(t, PathCover{{{0, 1}, {1, 2}}}, false).ok);
  // Non-edge inside a path (a and c are not adjacent).
  EXPECT_FALSE(validate_path_cover(t, PathCover{{{0, 2}, {1}}}, false).ok);
  // Valid but not minimum.
  EXPECT_TRUE(validate_path_cover(t, PathCover{{{0}, {1}, {2}}}, false).ok);
  EXPECT_FALSE(validate_path_cover(t, PathCover{{{0}, {1}, {2}}}, true).ok);
  // Valid and minimum.
  EXPECT_TRUE(validate_path_cover(t, PathCover{{{0, 1}, {2}}}, true).ok);
}

}  // namespace
}  // namespace copath::core
