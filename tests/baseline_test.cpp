// Baselines: exact DP oracle self-consistency, the naive level-synchronous
// parallelization, and the greedy heuristic.
#include <gtest/gtest.h>

#include "baseline/brute_force.hpp"
#include "baseline/greedy.hpp"
#include "baseline/naive_parallel.hpp"
#include "cograph/families.hpp"
#include "core/count.hpp"
#include "util/rng.hpp"

namespace copath::baseline {
namespace {

using cograph::Cotree;
using cograph::Graph;
using cograph::RandomCotreeOptions;
using pram::Machine;
using pram::Policy;

TEST(BruteForce, KnownValues) {
  EXPECT_EQ(min_path_cover_size_exact(Graph::from_cotree(cograph::clique(5))),
            1);
  EXPECT_EQ(min_path_cover_size_exact(
                Graph::from_cotree(cograph::independent_set(4))),
            4);
  EXPECT_EQ(min_path_cover_size_exact(
                Graph::from_cotree(cograph::complete_bipartite(4, 2))),
            2);
}

TEST(BruteForce, ReconstructionIsValidAndOptimal) {
  util::Rng rng(31);
  for (int trial = 0; trial < 60; ++trial) {
    RandomCotreeOptions opt;
    opt.seed = 111 + static_cast<unsigned>(trial);
    const Cotree t = cograph::random_cotree(1 + rng.below(9), opt);
    const Graph g = Graph::from_cotree(t);
    const auto cover = min_path_cover_exact(g);
    EXPECT_EQ(static_cast<std::int64_t>(cover.paths.size()),
              min_path_cover_size_exact(g));
    // Validate directly against g.
    std::vector<std::uint8_t> seen(g.vertex_count(), 0);
    for (const auto& p : cover.paths) {
      for (std::size_t i = 0; i < p.size(); ++i) {
        ASSERT_FALSE(seen[static_cast<std::size_t>(p[i])]);
        seen[static_cast<std::size_t>(p[i])] = 1;
        if (i + 1 < p.size()) ASSERT_TRUE(g.has_edge(p[i], p[i + 1]));
      }
    }
  }
}

TEST(BruteForce, HamiltonianCycleOnSmallFamilies) {
  EXPECT_TRUE(
      has_hamiltonian_cycle_exact(Graph::from_cotree(cograph::clique(4))));
  EXPECT_FALSE(has_hamiltonian_cycle_exact(
      Graph::from_cotree(cograph::star(3))));
}

TEST(NaiveParallel, ValidAndMinimalOnRandomCotrees) {
  util::Rng rng(32);
  for (int trial = 0; trial < 60; ++trial) {
    RandomCotreeOptions opt;
    opt.seed = 222 + static_cast<unsigned>(trial);
    opt.skew = (trial % 3) * 0.4;
    const Cotree t = cograph::random_cotree(1 + rng.below(100), opt);
    Machine m({Policy::EREW, 1, 16});
    const core::PathCover c = min_path_cover_naive_parallel(m, t);
    const auto rep = core::validate_path_cover(t, c, true);
    ASSERT_TRUE(rep.ok) << rep.error << "\n" << t.format();
  }
}

TEST(NaiveParallel, TimeIsLinearWhereThePipelineIsLogarithmic) {
  // The naive baseline's per-1-node merge is sequential in L(w), so its
  // step count is Θ(n) on every shape (deep chains make every *level*
  // cheap but numerous; balanced trees make the top merges huge). The
  // optimal pipeline does the same instances in O(log n) steps — this is
  // the separation bench E5 quantifies.
  const auto naive_steps = [](std::size_t n) {
    Machine m({Policy::EREW, 1, n});
    (void)min_path_cover_naive_parallel(m, cograph::caterpillar(n));
    return m.stats().steps;
  };
  const auto s1 = naive_steps(1 << 10);
  const auto s2 = naive_steps(1 << 11);
  EXPECT_GT(s1, (1u << 10) / 2);              // Θ(n) level count
  EXPECT_GT(static_cast<double>(s2), 1.7 * static_cast<double>(s1))
      << "naive steps must scale linearly in n";
}

TEST(Greedy, CoversEveryVertexWithRealEdges) {
  util::Rng rng(33);
  for (int trial = 0; trial < 40; ++trial) {
    RandomCotreeOptions opt;
    opt.seed = 333 + static_cast<unsigned>(trial);
    const Cotree t = cograph::random_cotree(1 + rng.below(60), opt);
    const Graph g = Graph::from_cotree(t);
    const core::PathCover c = min_path_cover_greedy(g);
    const auto rep = core::validate_path_cover(t, c, false);
    ASSERT_TRUE(rep.ok) << rep.error;
    // Greedy can only be worse than the optimum.
    EXPECT_GE(static_cast<std::int64_t>(c.paths.size()),
              core::path_cover_size(t));
  }
}

TEST(Greedy, EmpiricalGapStaysSmallOnCographs) {
  // Empirically the min-degree / both-ends greedy is remarkably strong on
  // cographs (the join structure keeps high-degree connectors available).
  // We record the gap rather than asserting suboptimality — on these
  // sweeps it has never exceeded +1 path; a future regression that makes
  // greedy *worse* than that would be a real behaviour change.
  util::Rng rng(34);
  std::int64_t worst_gap = 0;
  for (int trial = 0; trial < 200; ++trial) {
    RandomCotreeOptions opt;
    opt.seed = 444 + static_cast<unsigned>(trial);
    const Cotree t = cograph::random_cotree(4 + rng.below(40), opt);
    const Graph g = Graph::from_cotree(t);
    const auto gap =
        static_cast<std::int64_t>(min_path_cover_greedy(g).paths.size()) -
        core::path_cover_size(t);
    ASSERT_GE(gap, 0);
    worst_gap = std::max(worst_gap, gap);
  }
  EXPECT_LE(worst_gap, 1);
}

}  // namespace
}  // namespace copath::baseline
