// The service layer: MpmcQueue semantics, ResultCache unit behavior
// (full-key collision check, LRU eviction, stats), the canonical-space
// result remapping, and copath::Service end to end — the >= 100-instance
// cache differential (cached results bitwise-equal to the uncached path),
// permuted-twin soundness, in-flight duplicate coalescing (concurrent
// identical requests compute once), error paths, and shutdown draining.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "copath.hpp"
#include "testing.hpp"
#include "util/rng.hpp"

namespace copath {
namespace {

// ------------------------------------------------------------- MpmcQueue

TEST(MpmcQueue, FifoAcrossProducersAndConsumersDrainsEverything) {
  util::MpmcQueue<int> q(16);
  constexpr int kProducers = 3;
  constexpr int kPerProducer = 200;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        int item = p * kPerProducer + i;
        ASSERT_TRUE(q.push(item));
      }
    });
  }
  std::atomic<int> seen{0};
  std::vector<std::thread> consumers;
  std::array<std::atomic<int>, kProducers * kPerProducer> got{};
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      while (auto item = q.pop()) {
        got[static_cast<std::size_t>(*item)].fetch_add(1);
        seen.fetch_add(1);
      }
    });
  }
  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(seen.load(), kProducers * kPerProducer);
  for (const auto& g : got) EXPECT_EQ(g.load(), 1);  // exactly-once delivery
}

TEST(MpmcQueue, PushBlocksOnFullUntilAConsumerDrains) {
  util::MpmcQueue<int> q(1);
  int first = 1;
  ASSERT_TRUE(q.push(first));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    int second = 2;
    ASSERT_TRUE(q.push(second));  // must block: capacity 1, queue full
    second_pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(second_pushed.load());  // still parked on backpressure
  EXPECT_EQ(q.pop().value(), 1);
  producer.join();
  EXPECT_TRUE(second_pushed.load());
  EXPECT_EQ(q.pop().value(), 2);
}

TEST(MpmcQueue, CloseFailsPushesKeepsItemAndDrainsTheRest) {
  util::MpmcQueue<int> q(4);
  int a = 1, b = 2;
  ASSERT_TRUE(q.push(a));
  ASSERT_TRUE(q.push(b));
  q.close();
  int c = 42;
  EXPECT_FALSE(q.push(c));
  EXPECT_EQ(c, 42);  // rejected item left intact for the caller
  EXPECT_FALSE(q.try_push(c));
  EXPECT_EQ(q.pop().value(), 1);  // pre-close items still delivered
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_EQ(q.pop(), std::nullopt);  // closed and drained
}

// ----------------------------------------------------------- ResultCache

std::shared_ptr<const SolveResult> result_with_size(std::int64_t marker) {
  SolveResult res;
  res.ok = true;
  res.optimal_size = marker;
  return std::make_shared<const SolveResult>(std::move(res));
}

/// Binary signature of "(+ v v)" / "(* v v)": two leaves then the
/// internal tag with LEB128 arity 2 — hand-assembled so the collision
/// tests exercise exactly the byte-stream the canonicalizer emits.
std::string sig2(char kind_tag) {
  std::string s;
  s += cograph::kSigLeaf;
  s += cograph::kSigLeaf;
  s += kind_tag;
  s += '\x02';
  return s;
}

TEST(ResultCache, HashCollisionsAreDisambiguatedByTheFullKey) {
  service::ResultCache cache(service::ResultCache::Config{2, 16});
  // Three keys engineered onto the same 64-bit hash (and so the same
  // shard): only the full binary key — signature memcmp plus the packed
  // options — tells them apart.
  service::OptionsKey seq;
  seq.backend = 0;
  service::OptionsKey pram;
  pram.backend = 2;
  service::CacheKey k1{42, sig2(cograph::kSigUnion), seq};
  service::CacheKey k2{42, sig2(cograph::kSigJoin), seq};
  service::CacheKey k3{42, sig2(cograph::kSigUnion), pram};
  cache.insert(k1.ref(), result_with_size(101));
  cache.insert(k2.ref(), result_with_size(202));
  cache.insert(k3.ref(), result_with_size(303));
  EXPECT_EQ(cache.lookup(k1.ref())->optimal_size, 101);
  EXPECT_EQ(cache.lookup(k2.ref())->optimal_size, 202);
  EXPECT_EQ(cache.lookup(k3.ref())->optimal_size, 303);
  EXPECT_EQ(cache.size(), 3u);
  const auto s = cache.stats();
  EXPECT_EQ(s.hits, 3u);
  EXPECT_EQ(s.misses, 0u);
  EXPECT_EQ(s.insertions, 3u);
}

TEST(ResultCache, SignaturePrefixAndLengthCollisionsMiss) {
  // Signatures that are prefixes of one another (same hash, same options)
  // must not compare equal: the length check guards the memcmp.
  service::ResultCache cache(service::ResultCache::Config{1, 8});
  std::string shallow = sig2(cograph::kSigUnion);       // (+ v v)
  std::string deep = shallow + sig2(cograph::kSigJoin)  // two subtrees…
                     + static_cast<char>(cograph::kSigUnion);
  deep += '\x02';  // …joined under a '+' root
  service::CacheKey a{7, shallow, {}};
  service::CacheKey b{7, deep, {}};
  cache.insert(a.ref(), result_with_size(1));
  EXPECT_EQ(cache.lookup(b.ref()), nullptr);
  cache.insert(b.ref(), result_with_size(2));
  EXPECT_EQ(cache.lookup(a.ref())->optimal_size, 1);
  EXPECT_EQ(cache.lookup(b.ref())->optimal_size, 2);
}

TEST(ResultCache, LruEvictionPerShardWithStats) {
  service::ResultCache cache(service::ResultCache::Config{1, 2});
  service::CacheKey k1{1, "a", {}};
  service::CacheKey k2{2, "b", {}};
  service::CacheKey k3{3, "c", {}};
  cache.insert(k1.ref(), result_with_size(1));
  cache.insert(k2.ref(), result_with_size(2));
  ASSERT_NE(cache.lookup(k1.ref()), nullptr);  // k1 refreshed; k2 now LRU
  cache.insert(k3.ref(), result_with_size(3));  // evicts k2
  EXPECT_EQ(cache.lookup(k2.ref()), nullptr);
  EXPECT_NE(cache.lookup(k1.ref()), nullptr);
  EXPECT_NE(cache.lookup(k3.ref()), nullptr);
  const auto s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(cache.size(), 2u);

  // Re-inserting an existing key refreshes in place (no eviction).
  cache.insert(k1.ref(), result_with_size(11));
  EXPECT_EQ(cache.lookup(k1.ref())->optimal_size, 11);
  EXPECT_EQ(cache.stats().evictions, 1u);

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.lookup(k1.ref()), nullptr);
}

TEST(ResultCache, CanonicalSpaceRoundTripRemapsCoverAndCycle) {
  const Cotree t = Cotree::parse("(* (+ a b) c)");
  const auto form = canonical_form(t);
  SolveResult res;
  res.ok = true;
  res.cover.paths = {{0, 2, 1}};
  res.cycle = std::vector<VertexId>{0, 2, 1};
  const SolveResult canon = service::to_canonical_space(res, form);
  // to_canonical then from_canonical is the identity on this instance.
  const SolveResult back = service::from_canonical_space(canon, form);
  EXPECT_EQ(back.cover.paths, res.cover.paths);
  EXPECT_EQ(back.cycle, res.cycle);
  // And the canonical-space cover is a permutation image, not a copy.
  std::vector<VertexId> expect = res.cover.paths[0];
  for (auto& v : expect) v = form.to_canonical[static_cast<std::size_t>(v)];
  EXPECT_EQ(canon.cover.paths[0], expect);
}

// --------------------------------------------------------------- Service

/// Builds "r<round>-<i>" without operator+ chains (GCC 12's -Wrestrict
/// false-positives on nested string operator+ under heavy inlining).
std::string run_label(unsigned round, unsigned i) {
  std::string s = "r";
  s += std::to_string(round);
  s += '-';
  s += std::to_string(i);
  return s;
}

void expect_equal_core(const SolveResult& got, const SolveResult& want,
                       const std::string& what) {
  ASSERT_EQ(got.ok, want.ok) << what << ": " << got.error;
  EXPECT_EQ(got.backend, want.backend) << what;
  EXPECT_EQ(got.vertex_count, want.vertex_count) << what;
  EXPECT_EQ(got.cover.paths, want.cover.paths) << what;
  EXPECT_EQ(got.optimal_size, want.optimal_size) << what;
  EXPECT_EQ(got.minimum, want.minimum) << what;
  EXPECT_EQ(got.hamiltonian_path, want.hamiltonian_path) << what;
  EXPECT_EQ(got.hamiltonian_cycle, want.hamiltonian_cycle) << what;
  EXPECT_EQ(got.cycle, want.cycle) << what;
}

TEST(Service, CacheDifferentialOn120RandomInstancesMatchesUncachedBitwise) {
  // The acceptance bar: >= 100 random instances, every cached answer —
  // cold miss AND warm hit — bitwise-equal to the uncached Solver path on
  // covers, minima, and verdicts.
  std::vector<Cotree> keep;
  keep.reserve(120);
  for (unsigned i = 0; i < 120; ++i) {
    keep.push_back(testing::random_cotree(1 + (i * 11) % 90, 660000 + i));
  }

  Service::Options sopts;
  sopts.workers = 2;
  sopts.solve.validate = true;
  Service svc(sopts);
  const Solver uncached(sopts.solve);

  for (unsigned round = 0; round < 2; ++round) {  // round 1 is all-warm
    std::vector<std::future<SolveResult>> futures;
    futures.reserve(keep.size());
    for (unsigned i = 0; i < keep.size(); ++i) {
      SolveRequest req;
      req.instance = Instance::view(keep[i]);
      req.label = run_label(round, i);
      if (i % 7 == 0) {
        SolveOptions o = sopts.solve;
        o.want_hamiltonian_cycle = true;
        req.options = o;
      }
      futures.push_back(svc.submit(std::move(req)));
    }
    for (unsigned i = 0; i < keep.size(); ++i) {
      SolveRequest ref_req;
      ref_req.instance = Instance::view(keep[i]);
      if (i % 7 == 0) {
        SolveOptions o = sopts.solve;
        o.want_hamiltonian_cycle = true;
        ref_req.options = o;
      }
      const SolveResult want = uncached.solve(ref_req);
      const SolveResult got = futures[i].get();
      expect_equal_core(got, want, run_label(round, i));
      EXPECT_EQ(got.label, run_label(round, i));
      EXPECT_TRUE(got.validation.ok) << got.validation.error;
    }
  }
  const auto stats = svc.stats();
  EXPECT_EQ(stats.submitted, 240u);
  EXPECT_EQ(stats.completed, 240u);
  // Round 2 is fully warm; round 1 may already coalesce/hit duplicates.
  EXPECT_GE(stats.cache_hits, 120u);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, 240u);
}

TEST(Service, PermutedAndRelabeledTwinsHitTheCacheAndStaySound) {
  util::Rng rng(505);
  Service::Options sopts;
  sopts.workers = 2;
  Service svc(sopts);
  std::uint64_t expected_hits = 0;
  for (unsigned i = 0; i < 40; ++i) {
    const Cotree base = testing::random_cotree(2 + (i * 9) % 70, 88000 + i);
    const Cotree twin = testing::random_twin(base, rng);
    const auto want_size = path_cover_size(base);

    auto fb = svc.submit(SolveRequest{Instance::view(base), {}, "base"});
    const SolveResult rb = fb.get();
    ASSERT_TRUE(rb.ok) << rb.error;

    auto ft = svc.submit(SolveRequest{Instance::view(twin), {}, "twin"});
    const SolveResult rt = ft.get();
    ASSERT_TRUE(rt.ok) << rt.error;
    ++expected_hits;

    // Verdicts and minima are isomorphism invariants: bitwise equal.
    EXPECT_EQ(rt.optimal_size, want_size);
    EXPECT_EQ(rt.optimal_size, rb.optimal_size);
    EXPECT_EQ(rt.minimum, rb.minimum);
    EXPECT_EQ(rt.hamiltonian_path, rb.hamiltonian_path);
    EXPECT_EQ(rt.hamiltonian_cycle, rb.hamiltonian_cycle);
    // The replayed cover must be a *valid minimum cover of the twin* (it
    // need not be the cover a direct solve of the twin would emit).
    const auto report = validate_path_cover(twin, rt.cover,
                                            /*require_minimum=*/true);
    EXPECT_TRUE(report.ok) << i << ": " << report.error;
  }
  EXPECT_GE(svc.stats().cache_hits, expected_hits);
}

TEST(Service, ConcurrentIdenticalRequestsComputeOnce) {
  // A deliberately slow custom backend counts engine invocations; 8
  // concurrent identical requests over 4 workers must reach it exactly
  // once — the rest coalesce onto the in-flight computation (or hit the
  // cache if they arrive after it finishes).
  static std::atomic<int> invocations{0};
  const auto slow_backend = static_cast<Backend>(210);
  BackendRegistry::instance().add(
      slow_backend, "slow-singletons",
      [](const Cotree& t, const core::BackendConfig&) {
        invocations.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(300));
        core::BackendOutput out;
        for (std::size_t v = 0; v < t.vertex_count(); ++v) {
          out.cover.paths.push_back({static_cast<VertexId>(v)});
        }
        return out;
      },
      /*exact=*/false);

  Service::Options sopts;
  sopts.workers = 4;
  sopts.solve.backend = slow_backend;
  Service svc(sopts);
  const Cotree t = cograph::independent_set(6);
  std::vector<std::future<SolveResult>> futures;
  futures.reserve(8);
  for (int i = 0; i < 8; ++i) {
    futures.push_back(svc.submit(
        SolveRequest{Instance::view(t), {}, "dup-" + std::to_string(i)}));
  }
  for (int i = 0; i < 8; ++i) {
    const SolveResult res = futures[static_cast<std::size_t>(i)].get();
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.label, "dup-" + std::to_string(i));
    EXPECT_EQ(res.cover.size(), 6u);
    EXPECT_TRUE(res.minimum);  // singletons are minimum on the empty graph
  }
  EXPECT_EQ(invocations.load(), 1);
  const auto stats = svc.stats();
  EXPECT_EQ(stats.completed, 8u);
  EXPECT_EQ(stats.coalesced + stats.cache_hits, 7u);
}

TEST(Service, DisablingTheCacheStillServesCorrectly) {
  Service::Options sopts;
  sopts.workers = 2;
  sopts.use_cache = false;
  Service svc(sopts);
  // The serving default is Backend::Adaptive — mirror it in the reference.
  const Solver reference(sopts.solve);
  for (unsigned i = 0; i < 10; ++i) {
    const Cotree t = testing::random_cotree(1 + i * 5, 313 + i);
    auto fut = svc.submit(SolveRequest{Instance::view(t), {}, {}});
    expect_equal_core(fut.get(), reference.solve(Instance::view(t)),
                      "uncached inst " + std::to_string(i));
  }
  const auto stats = svc.stats();
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_misses, 0u);
  EXPECT_EQ(stats.cache.insertions, 0u);
}

TEST(Service, NonStandardThrowingBackendFailsStructurally) {
  // A plug-in engine throwing something that is not a std::exception must
  // come back as an ok == false result — not std::terminate the worker.
  const auto throwing = static_cast<Backend>(220);
  BackendRegistry::instance().add(
      throwing, "throws-int",
      [](const Cotree&, const core::BackendConfig&) -> core::BackendOutput {
        throw 42;  // NOLINT(hicpp-exception-baseclass)
      },
      /*exact=*/false);
  const Cotree t = cograph::independent_set(4);
  for (const bool use_cache : {true, false}) {
    Service::Options sopts;
    sopts.workers = 2;
    sopts.solve.backend = throwing;
    sopts.use_cache = use_cache;
    Service svc(sopts);
    auto fut = svc.submit(SolveRequest{Instance::view(t), {}, "boom"});
    const SolveResult res = fut.get();
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.error.find("non-standard"), std::string::npos)
        << res.error;
    EXPECT_EQ(res.label, "boom");
    // The worker survives: a normal request still succeeds afterwards.
    SolveOptions ok_opts;
    auto ok_fut =
        svc.submit(SolveRequest{Instance::view(t), ok_opts, "after"});
    EXPECT_TRUE(ok_fut.get().ok);
  }
}

TEST(Service, BadInstancesFailStructurallyWithoutPoisoning) {
  Service svc(Service::Options{});
  auto bad = svc.submit(SolveRequest{Instance::text("(* broken"), {}, "b"});
  const SolveResult rb = bad.get();
  EXPECT_FALSE(rb.ok);
  EXPECT_FALSE(rb.error.empty());
  EXPECT_EQ(rb.label, "b");

  auto empty = svc.submit(SolveRequest{});
  EXPECT_FALSE(empty.get().ok);

  auto good = svc.submit(SolveRequest{Instance::text("(* x y)"), {}, "g"});
  const SolveResult rg = good.get();
  ASSERT_TRUE(rg.ok) << rg.error;
  EXPECT_TRUE(rg.hamiltonian_path);
  // Failures are not cached.
  EXPECT_EQ(svc.stats().cache.insertions, 1u);
}

TEST(Service, EvictionUnderTinyCapacityKeepsServingCorrectly) {
  Service::Options sopts;
  sopts.workers = 1;
  sopts.cache.shards = 1;
  sopts.cache.capacity = 2;
  Service svc(sopts);
  std::vector<Cotree> keep;
  for (unsigned i = 0; i < 6; ++i) {
    keep.push_back(testing::random_cotree(5 + i * 7, 41000 + i));
  }
  for (unsigned round = 0; round < 3; ++round) {
    for (const auto& t : keep) {
      auto fut = svc.submit(SolveRequest{Instance::view(t), {}, {}});
      const SolveResult res = fut.get();
      ASSERT_TRUE(res.ok) << res.error;
      EXPECT_EQ(static_cast<std::int64_t>(res.cover.size()),
                path_cover_size(t));
    }
  }
  EXPECT_GT(svc.stats().cache.evictions, 0u);
}

TEST(Service, ShutdownDrainsQueuedWorkAndFailsLateSubmits) {
  Service::Options sopts;
  sopts.workers = 1;
  Service svc(sopts);
  std::vector<Cotree> keep;
  std::vector<std::future<SolveResult>> futures;
  for (unsigned i = 0; i < 12; ++i) {
    keep.push_back(testing::random_cotree(10 + i, 99000 + i));
  }
  for (const auto& t : keep) {
    futures.push_back(svc.submit(SolveRequest{Instance::view(t), {}, {}}));
  }
  svc.shutdown();  // everything already enqueued must still be answered
  for (auto& f : futures) {
    EXPECT_TRUE(f.get().ok);
  }
  auto late = svc.submit(SolveRequest{Instance::text("(* a b)"), {}, {}});
  const SolveResult res = late.get();
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("shut down"), std::string::npos) << res.error;
  svc.shutdown();  // idempotent
}

TEST(Service, DrainRefusesWithItsOwnReasonAndAdvertisesState) {
  // drain() and shutdown() (the destructor path) are distinct teardowns:
  // the daemon advertises a drain to clients, so refusals must say
  // "draining" — a retryable condition — and stats().draining must flip.
  Service svc;
  EXPECT_TRUE(svc.submit(SolveRequest{Instance::text("(+ a b)"), {}, {}})
                  .get()
                  .ok);
  EXPECT_FALSE(svc.stats().draining);

  svc.drain();  // blocks until everything accepted has been answered
  EXPECT_TRUE(svc.stats().draining);
  EXPECT_EQ(svc.stats().in_flight, 0u);

  auto late = svc.submit(SolveRequest{Instance::text("(* a b)"), {}, {}});
  const SolveResult res = late.get();
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("draining"), std::string::npos) << res.error;
  svc.drain();  // idempotent, like shutdown()
}

TEST(Service, StatsTrackQueueDepthAndInFlight) {
  // A one-worker service with a slow plug-in backend: while the worker
  // sleeps inside request #1, requests #2 and #3 must be visible as
  // queue_depth, and all three as in_flight — the numbers the daemon's
  // backpressure window is calibrated against. After the futures resolve,
  // both gauges must read zero.
  BackendRegistry::instance().add(
      static_cast<Backend>(212), "slow-for-stats",
      [](const Cotree& t, const core::BackendConfig&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
        core::BackendOutput out;
        for (std::size_t v = 0; v < t.vertex_count(); ++v) {
          out.cover.paths.push_back({static_cast<VertexId>(v)});
        }
        return out;
      },
      /*exact=*/false);
  Service::Options sopts;
  sopts.workers = 1;
  sopts.use_cache = false;  // three distinct computes, no coalescing
  sopts.solve.backend = static_cast<Backend>(212);
  Service svc(sopts);

  std::vector<std::future<SolveResult>> futures;
  futures.push_back(svc.submit(SolveRequest{Instance::text("(+ a b)"), {}, {}}));
  futures.push_back(svc.submit(SolveRequest{Instance::text("(* a b)"), {}, {}}));
  futures.push_back(
      svc.submit(SolveRequest{Instance::text("(+ a b c)"), {}, {}}));

  // The lone worker holds request #1 for 200ms; sample inside that window.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const Service::Stats mid = svc.stats();
  EXPECT_EQ(mid.in_flight, 3u);
  EXPECT_GE(mid.queue_depth, 1u);  // the worker may have popped #2 already

  for (auto& f : futures) {
    EXPECT_TRUE(f.get().ok);
  }
  const Service::Stats done = svc.stats();
  EXPECT_EQ(done.in_flight, 0u);
  EXPECT_EQ(done.queue_depth, 0u);
  EXPECT_EQ(done.submitted, 3u);
  EXPECT_EQ(done.completed, 3u);
}

}  // namespace
}  // namespace copath
