// End-to-end flows across module boundaries: raw graph -> recognition ->
// parallel cover -> validation; all algorithms agreeing on one instance;
// property sweeps combining every engine.
#include <gtest/gtest.h>

#include "baseline/brute_force.hpp"
#include "baseline/naive_parallel.hpp"
#include "cograph/families.hpp"
#include "cograph/recognition.hpp"
#include "core/count.hpp"
#include "core/pipeline.hpp"
#include "core/reference.hpp"
#include "core/sequential.hpp"
#include "util/rng.hpp"

namespace copath {
namespace {

using cograph::Cotree;
using cograph::Graph;
using cograph::RandomCotreeOptions;
using pram::Machine;
using pram::Policy;

TEST(Integration, RawGraphToParallelCover) {
  // A user starts from edges, not a cotree.
  Graph g(7);
  // join(K3, union(K2, 2 singletons)) built by hand.
  for (const auto [u, v] : std::vector<std::pair<int, int>>{
           {0, 1}, {0, 2}, {1, 2}, {3, 4}}) {
    g.add_edge(u, v);
  }
  for (int a = 0; a < 3; ++a)
    for (int b = 3; b < 7; ++b) g.add_edge(a, b);
  g.finalize();
  const auto rec = cograph::recognize_cograph(g);
  ASSERT_TRUE(rec.is_cograph());
  Machine m({Policy::EREW, 1, 4});
  const core::PathCover c = core::min_path_cover_pram(m, *rec.cotree);
  const auto rep = core::validate_path_cover(*rec.cotree, c, true);
  ASSERT_TRUE(rep.ok) << rep.error;
  // Cover must also be valid for the *original* graph.
  for (const auto& p : c.paths) {
    for (std::size_t i = 0; i + 1 < p.size(); ++i)
      ASSERT_TRUE(g.has_edge(p[i], p[i + 1]));
  }
}

TEST(Integration, AllAlgorithmsAgreeOnPathCount) {
  util::Rng rng(2718);
  for (int trial = 0; trial < 40; ++trial) {
    RandomCotreeOptions opt;
    opt.seed = 5550 + static_cast<unsigned>(trial);
    opt.skew = (trial % 4) * 0.3;
    const Cotree t = cograph::random_cotree(1 + rng.below(60), opt);
    const auto want = core::path_cover_size(t);

    const auto seq = core::min_path_cover_sequential(t);
    EXPECT_EQ(static_cast<std::int64_t>(seq.paths.size()), want);

    const auto ref = core::min_path_cover_reference(t);
    EXPECT_EQ(static_cast<std::int64_t>(ref.paths.size()), want);

    Machine m1({Policy::EREW, 1, 8});
    const auto pram_cover = core::min_path_cover_pram(m1, t);
    EXPECT_EQ(static_cast<std::int64_t>(pram_cover.paths.size()), want);

    Machine m2({Policy::EREW, 1, 8});
    const auto naive = baseline::min_path_cover_naive_parallel(m2, t);
    EXPECT_EQ(static_cast<std::int64_t>(naive.paths.size()), want);

    if (t.vertex_count() <= 10) {
      const Graph g = Graph::from_cotree(t);
      EXPECT_EQ(baseline::min_path_cover_size_exact(g), want);
    }
  }
}

TEST(Integration, ThresholdGraphPipelineFromCreationSequence) {
  util::Rng rng(31415);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<std::uint8_t> bits(1 + rng.below(60));
    for (auto& b : bits) b = rng.chance(0.5) ? 1 : 0;
    const Cotree t = cograph::threshold_graph(bits);
    Machine m({Policy::EREW, 1, 8});
    const auto cover = core::min_path_cover_pram(m, t);
    EXPECT_TRUE(core::validate_path_cover(t, cover, true).ok);
  }
}

TEST(Integration, ComplementsAreConsistent) {
  // p(G) and p(co-G) both computable; complement of complement = identity.
  util::Rng rng(161);
  for (int trial = 0; trial < 20; ++trial) {
    RandomCotreeOptions opt;
    opt.seed = 7770 + static_cast<unsigned>(trial);
    const Cotree t = cograph::random_cotree(2 + rng.below(30), opt);
    const Cotree tc = t.complement();
    const auto c1 = core::min_path_cover_sequential(tc);
    EXPECT_TRUE(core::validate_path_cover(tc, c1, true).ok);
    EXPECT_EQ(core::path_cover_size(tc.complement()),
              core::path_cover_size(t));
  }
}

TEST(Integration, LargeInstanceEndToEnd) {
  RandomCotreeOptions opt;
  opt.seed = 424242;
  const std::size_t n = 20000;
  const Cotree t = cograph::random_cotree(n, opt);
  Machine m({Policy::Unchecked, 1, n / 15});
  const auto cover = core::min_path_cover_pram(m, t);
  EXPECT_EQ(static_cast<std::int64_t>(cover.paths.size()),
            core::path_cover_size(t));
  EXPECT_EQ(cover.vertex_total(), n);
  // Full validation (LCA-oracle edge checks) on the large instance too.
  EXPECT_TRUE(core::validate_path_cover(t, cover, true).ok);
}

TEST(Integration, EveryPolicyRunsThePipeline) {
  RandomCotreeOptions opt;
  opt.seed = 999;
  const Cotree t = cograph::random_cotree(50, opt);
  for (const auto policy :
       {Policy::EREW, Policy::CREW, Policy::CRCW_Arbitrary,
        Policy::Unchecked}) {
    Machine m({policy, 1, 8});
    const auto cover = core::min_path_cover_pram(m, t);
    EXPECT_TRUE(core::validate_path_cover(t, cover, true).ok)
        << to_string(policy);
  }
}

}  // namespace
}  // namespace copath
