// End-to-end flows across module boundaries, driven through the
// copath::Solver facade: raw graph -> recognition -> parallel cover ->
// validation; all backends agreeing on one instance; property sweeps
// combining every engine.
#include <gtest/gtest.h>

#include "copath.hpp"
#include "util/rng.hpp"

namespace copath {
namespace {

using cograph::RandomCotreeOptions;

TEST(Integration, RawGraphToParallelCover) {
  // A user starts from edges, not a cotree.
  Graph g(7);
  // join(K3, union(K2, 2 singletons)) built by hand.
  for (const auto& [u, v] : std::vector<std::pair<int, int>>{
           {0, 1}, {0, 2}, {1, 2}, {3, 4}}) {
    g.add_edge(u, v);
  }
  for (int a = 0; a < 3; ++a)
    for (int b = 3; b < 7; ++b) g.add_edge(a, b);
  g.finalize();

  SolveOptions opts;
  opts.backend = Backend::Pram;
  opts.processors = 4;
  opts.validate = true;
  const Solver solver(opts);
  const auto res = solver.solve(Instance::graph(g));
  ASSERT_TRUE(res.ok) << res.error;
  ASSERT_TRUE(res.validation.ok) << res.validation.error;
  // Cover must also be valid for the *original* graph.
  for (const auto& p : res.cover.paths) {
    for (std::size_t i = 0; i + 1 < p.size(); ++i)
      ASSERT_TRUE(g.has_edge(p[i], p[i + 1]));
  }
}

TEST(Integration, AllBackendsAgreeOnPathCount) {
  util::Rng rng(2718);
  for (int trial = 0; trial < 40; ++trial) {
    RandomCotreeOptions opt;
    opt.seed = 5550 + static_cast<unsigned>(trial);
    opt.skew = (trial % 4) * 0.3;
    const Cotree t = cograph::random_cotree(1 + rng.below(60), opt);
    const auto want = path_cover_size(t);

    for (const Backend b :
         {Backend::Sequential, Backend::Reference, Backend::Pram,
          Backend::NaiveParallel}) {
      SolveOptions opts;
      opts.backend = b;
      opts.processors = 8;
      const auto res = Solver(opts).solve(Instance::view(t));
      ASSERT_TRUE(res.ok) << core::to_string(b) << ": " << res.error;
      EXPECT_EQ(static_cast<std::int64_t>(res.cover.size()), want)
          << core::to_string(b);
    }

    if (t.vertex_count() <= 10) {
      SolveOptions opts;
      opts.backend = Backend::BruteForce;
      const auto res = Solver(opts).solve(Instance::view(t));
      ASSERT_TRUE(res.ok) << res.error;
      EXPECT_EQ(static_cast<std::int64_t>(res.cover.size()), want);
    }
  }
}

TEST(Integration, ThresholdGraphPipelineFromCreationSequence) {
  util::Rng rng(31415);
  SolveOptions opts;
  opts.backend = Backend::Pram;
  opts.processors = 8;
  opts.validate = true;
  const Solver solver(opts);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<std::uint8_t> bits(1 + rng.below(60));
    for (auto& b : bits) b = rng.chance(0.5) ? 1 : 0;
    const auto res =
        solver.solve(Instance::cotree(cograph::threshold_graph(bits)));
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_TRUE(res.validation.ok) << res.validation.error;
  }
}

TEST(Integration, ComplementsAreConsistent) {
  // p(G) and p(co-G) both computable; complement of complement = identity.
  util::Rng rng(161);
  SolveOptions opts;
  opts.validate = true;
  const Solver solver(opts);
  for (int trial = 0; trial < 20; ++trial) {
    RandomCotreeOptions opt;
    opt.seed = 7770 + static_cast<unsigned>(trial);
    const Cotree t = cograph::random_cotree(2 + rng.below(30), opt);
    const Cotree tc = t.complement();
    const auto res = solver.solve(Instance::view(tc));
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_TRUE(res.validation.ok) << res.validation.error;
    EXPECT_EQ(path_cover_size(tc.complement()), path_cover_size(t));
  }
}

TEST(Integration, LargeInstanceEndToEnd) {
  RandomCotreeOptions opt;
  opt.seed = 424242;
  const std::size_t n = 20000;
  const Cotree t = cograph::random_cotree(n, opt);
  SolveOptions opts;
  opts.backend = Backend::Pram;
  opts.policy = pram::Policy::Unchecked;
  opts.processors = n / 15;
  opts.validate = true;  // full LCA-oracle validation at scale too
  const auto res = Solver(opts).solve(Instance::view(t));
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(static_cast<std::int64_t>(res.cover.size()), res.optimal_size);
  EXPECT_EQ(res.cover.vertex_total(), n);
  EXPECT_TRUE(res.validation.ok) << res.validation.error;
}

TEST(Integration, EveryPolicyRunsThePipeline) {
  RandomCotreeOptions opt;
  opt.seed = 999;
  const Cotree t = cograph::random_cotree(50, opt);
  for (const auto policy :
       {pram::Policy::EREW, pram::Policy::CREW,
        pram::Policy::CRCW_Arbitrary, pram::Policy::Unchecked}) {
    SolveOptions opts;
    opts.backend = Backend::Pram;
    opts.policy = policy;
    opts.processors = 8;
    opts.validate = true;
    const auto res = Solver(opts).solve(Instance::view(t));
    ASSERT_TRUE(res.ok) << to_string(policy) << ": " << res.error;
    EXPECT_TRUE(res.validation.ok) << to_string(policy);
  }
}

TEST(Integration, BatchServesMixedWorkloadsAcrossFamilies) {
  // A "production" mix: different families, sizes, input forms, and
  // backends in one batch, validated end to end.
  std::vector<Cotree> keep;
  keep.push_back(cograph::clique(40));
  keep.push_back(cograph::complete_bipartite(20, 11));
  keep.push_back(cograph::caterpillar(61));
  keep.push_back(cograph::threshold_graph({1, 0, 0, 1, 1, 0, 1, 0}));
  RandomCotreeOptions opt;
  opt.seed = 8888;
  keep.push_back(cograph::random_cotree(120, opt));

  std::vector<SolveRequest> reqs;
  for (std::size_t i = 0; i < keep.size(); ++i) {
    SolveRequest req;
    req.instance = Instance::view(keep[i]);
    SolveOptions o;
    o.backend = i % 2 == 0 ? Backend::Pram : Backend::Sequential;
    o.validate = true;
    req.options = o;
    reqs.push_back(std::move(req));
  }
  reqs.push_back(SolveRequest{Instance::text("(* (+ a b) (+ c d))"),
                              std::nullopt, "text"});
  Graph g = Graph::from_cotree(cograph::star(6));
  reqs.push_back(SolveRequest{Instance::graph(g), std::nullopt, "graph"});

  SolveOptions defaults;
  defaults.validate = true;
  defaults.batch_workers = 2;
  Solver solver(defaults);
  const auto results = solver.solve_batch(reqs);
  ASSERT_EQ(results.size(), reqs.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok) << i << ": " << results[i].error;
    EXPECT_TRUE(results[i].validation.ok) << results[i].validation.error;
    EXPECT_TRUE(results[i].minimum);
  }
}

}  // namespace
}  // namespace copath
