// Lemma 2.4: counting the minimum path cover — host recursion vs PRAM
// contraction vs exact brute force.
#include <gtest/gtest.h>

#include "baseline/brute_force.hpp"
#include "cograph/families.hpp"
#include "core/count.hpp"
#include "util/rng.hpp"

namespace copath::core {
namespace {

using cograph::Cotree;
using cograph::RandomCotreeOptions;
using pram::Machine;
using pram::Policy;

struct Shape {
  std::size_t n;
  std::size_t p;
  par::RankEngine engine;
};

class CountSweep : public ::testing::TestWithParam<Shape> {};

TEST_P(CountSweep, PramMatchesHost) {
  const auto [n, p, engine] = GetParam();
  util::Rng rng(n * 3 + p);
  for (int trial = 0; trial < 6; ++trial) {
    RandomCotreeOptions opt;
    opt.seed = n * 100 + static_cast<unsigned>(trial);
    opt.skew = (trial % 3) * 0.4;
    const Cotree t = cograph::random_cotree(1 + rng.below(n), opt);
    auto bc = cograph::binarize(t);
    const auto leaf_count = cograph::make_leftist(bc);
    const auto host = path_counts_host(bc, leaf_count);
    Machine m({Policy::EREW, 1, p});
    const auto pram_counts = path_counts_pram(m, bc, leaf_count);
    ASSERT_EQ(host.size(), pram_counts.size());
    for (std::size_t v = 0; v < host.size(); ++v)
      ASSERT_EQ(host[v], pram_counts[v]) << "node " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CountSweep,
    ::testing::Values(Shape{2, 1, par::RankEngine::Contract},
                      Shape{10, 2, par::RankEngine::Contract},
                      Shape{60, 4, par::RankEngine::Wyllie},
                      Shape{60, 4, par::RankEngine::Contract},
                      Shape{200, 16, par::RankEngine::Contract}),
    [](const ::testing::TestParamInfo<Shape>& info) {
      return "n" + std::to_string(info.param.n) + "_p" +
             std::to_string(info.param.p) +
             (info.param.engine == par::RankEngine::Contract ? "_c" : "_w");
    });

TEST(Count, MatchesBruteForceOnSmallCographs) {
  util::Rng rng(404);
  for (int trial = 0; trial < 200; ++trial) {
    RandomCotreeOptions opt;
    opt.seed = 30000 + static_cast<unsigned>(trial);
    const Cotree t = cograph::random_cotree(1 + rng.below(9), opt);
    const cograph::Graph g = cograph::Graph::from_cotree(t);
    ASSERT_EQ(path_cover_size(t),
              baseline::min_path_cover_size_exact(g))
        << "trial " << trial << " cotree " << t.format();
  }
}

TEST(Count, RecurrenceSpotChecks) {
  // p(join(V,W)) = max(p(V) - |W|, 1) with the leftist order.
  EXPECT_EQ(path_cover_size(Cotree::parse("(* (+ a b c) d)")), 2);
  EXPECT_EQ(path_cover_size(Cotree::parse("(* (+ a b c d e) (+ x y))")), 3);
  EXPECT_EQ(path_cover_size(Cotree::parse("(+ (* a b) (* c d))")), 2);
  EXPECT_EQ(path_cover_size(Cotree::parse("(* a b)")), 1);
}

TEST(Count, HamiltonianPathPredicate) {
  EXPECT_TRUE(has_hamiltonian_path(cograph::clique(5)));
  EXPECT_FALSE(has_hamiltonian_path(cograph::independent_set(2)));
  EXPECT_TRUE(has_hamiltonian_path(cograph::complete_bipartite(3, 3)));
  EXPECT_TRUE(has_hamiltonian_path(cograph::complete_bipartite(4, 3)));
  EXPECT_FALSE(has_hamiltonian_path(cograph::complete_bipartite(5, 3)));
}

TEST(Count, SingleVertex) {
  EXPECT_EQ(path_cover_size(Cotree::parse("solo")), 1);
}

TEST(CountCost, LemmaBound) {
  // Lemma 2.4: O(log n) steps, O(n) work with P = n / log2 n.
  RandomCotreeOptions opt;
  opt.seed = 12;
  const std::size_t n = 1 << 13;
  const Cotree t = cograph::random_cotree(n, opt);
  auto bc = cograph::binarize(t);
  const auto leaf_count = cograph::make_leftist(bc);
  Machine m({Policy::EREW, 1, (2 * n) / 13});
  (void)path_counts_pram(m, bc, leaf_count);
  EXPECT_LE(m.stats().steps, 400 * 13);
  EXPECT_LE(m.stats().work, 500 * n);
}

}  // namespace
}  // namespace copath::core
